// Package eventpf_test carries one testing.B benchmark per table and figure
// of the paper's evaluation (§7). Each benchmark regenerates its experiment
// at a reduced scale and reports the headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's entire results section. Larger inputs (closer to
// the paper's) are available through cmd/ppftables -scale.
package eventpf_test

import (
	"math"
	"os"
	"strconv"
	"testing"

	"eventpf"
)

// benchScale keeps `go test -bench=.` to minutes; cmd/ppftables exposes the
// same experiments at any scale. Under -short (the CI perf job) every figure
// benchmark drops to benchScaleShort, trading absolute fidelity for a run
// that finishes in well under a minute — the resulting metrics are only
// compared against other -short runs, so the comparison stays sound.
const (
	benchScale      = 0.05
	benchScaleShort = 0.01
)

func suite() *eventpf.Suite {
	scale := benchScale
	if testing.Short() {
		scale = benchScaleShort
	}
	opt := eventpf.Options{Scale: scale}
	// EVENTPF_SLICES above 1 runs every simulation time-parallel
	// (scripts/bench.sh sets it from SLICES and stamps the value into the
	// BENCH meta, since sliced timings are only comparable to sliced ones).
	if s := os.Getenv("EVENTPF_SLICES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			opt.Slices = n
		}
	}
	return eventpf.NewSuite(opt)
}

// BenchmarkTable1Config reports the Table 1 machine configuration (a
// correctness anchor: the bench fails if the defaults drift).
func BenchmarkTable1Config(b *testing.B) {
	b.ReportAllocs()
	cfg := eventpf.DefaultMachineConfig()
	if cfg.Width != 3 || cfg.ROB != 40 || cfg.LQ != 16 || cfg.SQ != 32 {
		b.Fatalf("core config drifted: %+v", cfg)
	}
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.MSHRs != 12 || cfg.L2.SizeBytes != 1<<20 {
		b.Fatal("cache config drifted")
	}
	if cfg.Prefetcher.NumPPUs != 12 || cfg.Prefetcher.ObsQueue != 40 || cfg.Prefetcher.ReqQueue != 200 {
		b.Fatal("prefetcher config drifted")
	}
	for i := 0; i < b.N; i++ {
		_ = eventpf.DefaultMachineConfig()
	}
}

// BenchmarkTable2Benchmarks checks the benchmark roster.
func BenchmarkTable2Benchmarks(b *testing.B) {
	b.ReportAllocs()
	if len(eventpf.Benchmarks()) != 8 {
		b.Fatalf("want 8 benchmarks, have %d", len(eventpf.Benchmarks()))
	}
	for i := 0; i < b.N; i++ {
		_ = eventpf.Benchmarks()
	}
}

// BenchmarkFig7Speedups regenerates Figure 7 and reports the geometric-mean
// speedup of the manual scheme (the paper's 3.0x headline).
func BenchmarkFig7Speedups(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0
		for _, r := range rows {
			if v := r.Speedup[eventpf.Manual]; v > 0 {
				prod *= v
				n++
			}
		}
		b.ReportMetric(pow(prod, 1/float64(n)), "manual-geomean-x")
	}
}

// BenchmarkFig8aUtilisation regenerates Figure 8(a).
func BenchmarkFig8aUtilisation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.Utilisation
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-utilisation")
	}
}

// BenchmarkFig8bHitRates regenerates Figure 8(b).
func BenchmarkFig8bHitRates(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		var dSum float64
		for _, r := range rows {
			dSum += r.L1HitPF - r.L1HitNoPF
		}
		b.ReportMetric(dSum/float64(len(rows)), "mean-L1-hit-gain")
	}
}

// BenchmarkFig9aClockSweep regenerates Figure 9(a): PPU frequency sweep.
func BenchmarkFig9aClockSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig9a()
		if err != nil {
			b.Fatal(err)
		}
		gain := 0.0
		for _, r := range rows {
			gain += r.Speedup[2000] - r.Speedup[250]
		}
		b.ReportMetric(gain/float64(len(rows)), "mean-2GHz-vs-250MHz-gain")
	}
}

// BenchmarkFig9bPPUCount regenerates Figure 9(b): PPU count × clock for
// G500-CSR (the paper's count-frequency equivalence).
func BenchmarkFig9bPPUCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := suite().Fig9b()
		if err != nil {
			b.Fatal(err)
		}
		// Report the paper's equivalence check: 6 PPUs @1 GHz vs 12 @500 MHz.
		var a, c float64
		for _, cell := range cells {
			if cell.PPUs == 6 && cell.MHz == 1000 {
				a = cell.Speedup
			}
			if cell.PPUs == 12 && cell.MHz == 500 {
				c = cell.Speedup
			}
		}
		b.ReportMetric(a/c, "6@1GHz-over-12@500MHz")
	}
}

// BenchmarkFig10Activity regenerates Figure 10: PPU activity factors.
func BenchmarkFig10Activity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		maxAct := 0.0
		for _, r := range rows {
			if r.Max > maxAct {
				maxAct = r.Max
			}
		}
		b.ReportMetric(maxAct, "max-activity-factor")
	}
}

// BenchmarkFig11Blocking regenerates Figure 11: events vs blocking.
func BenchmarkFig11Blocking(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64 = 10
		for _, r := range rows {
			if ratio := r.Blocked / r.Events; ratio < worst {
				worst = ratio
			}
		}
		b.ReportMetric(worst, "worst-blocked-over-events")
	}
}

// BenchmarkInstrOverhead regenerates the §7.1 software-prefetch dynamic
// instruction increases.
func BenchmarkInstrOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().InstrOverhead()
		if err != nil {
			b.Fatal(err)
		}
		maxPct := 0.0
		for _, r := range rows {
			if r.IncreasePct > maxPct {
				maxPct = r.IncreasePct
			}
		}
		b.ReportMetric(maxPct, "max-instr-increase-pct")
	}
}

// BenchmarkExtraMem regenerates the §7.2 extra-memory-traffic analysis.
func BenchmarkExtraMem(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().ExtraMem()
		if err != nil {
			b.Fatal(err)
		}
		maxPct := 0.0
		for _, r := range rows {
			if r.ExtraPct > maxPct {
				maxPct = r.ExtraPct
			}
		}
		b.ReportMetric(maxPct, "max-extra-mem-pct")
	}
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// BenchmarkFig12Adaptive regenerates the adaptive-control study: the online
// controller against every static scheme and the hindsight oracle. The
// headline metric is the adaptive-over-oracle geomean ratio (1.0 = the
// controller matches a scheme picked per benchmark with perfect hindsight);
// switches-total confirms the controller actually adapted rather than
// riding one arm.
func BenchmarkFig12Adaptive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig12()
		if err != nil {
			b.Fatal(err)
		}
		logSum, n := 0.0, 0
		var switches int64
		for _, r := range rows {
			if r.Oracle > 0 && r.Adaptive > 0 {
				logSum += math.Log(r.Adaptive / r.Oracle)
				n++
			}
			switches += r.Switches
		}
		b.ReportMetric(math.Exp(logSum/float64(n)), "adaptive-over-oracle-geomean")
		b.ReportMetric(float64(switches), "switches-total")
	}
}
