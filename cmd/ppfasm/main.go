// Command ppfasm assembles, disassembles and sizes PPU prefetch kernels.
//
// Usage:
//
//	ppfasm kernel.s            # assemble, print binary size + disassembly
//	ppfasm -hex kernel.s       # also dump the binary encoding as hex
//	echo 'vaddr r1' | ppfasm - # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eventpf/internal/ppu"
)

func main() {
	hex := flag.Bool("hex", false, "dump the binary encoding as hex words")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ppfasm [-hex] <kernel.s | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppfasm: %v\n", err)
		os.Exit(1)
	}

	prog, err := ppu.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppfasm: %v\n", err)
		os.Exit(1)
	}

	bin := ppu.Encode(prog)
	fmt.Printf("%d instructions, %d bytes encoded\n\n", len(prog), len(bin))
	fmt.Print(ppu.Disassemble(prog))
	if *hex {
		fmt.Println()
		for i := 0; i+4 <= len(bin); i += 4 {
			fmt.Printf("%08x", uint32(bin[i])|uint32(bin[i+1])<<8|uint32(bin[i+2])<<16|uint32(bin[i+3])<<24)
			if (i/4)%4 == 3 {
				fmt.Println()
			} else {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}

	// Round-trip sanity: what we print must reassemble identically.
	back, err := ppu.Decode(bin)
	if err != nil || len(back) != len(prog) {
		fmt.Fprintf(os.Stderr, "ppfasm: internal: decode mismatch: %v\n", err)
		os.Exit(1)
	}
}
