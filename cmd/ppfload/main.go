// Command ppfload drives a running ppfserve with a configurable mix of
// fresh and duplicate simulation requests and reports what the service
// did with them: submit→done latency percentiles, cache/dedup hit rate,
// and — scraped from /metrics — whether any duplicate was ever
// re-simulated (the suite memo-miss delta must equal the number of
// distinct configs sent).
//
// Usage:
//
//	ppfload -addr http://localhost:8091 -n 200 -c 8 -dup 0.5 -assert 0.5
//
// With -assert set, the exit code is nonzero when the observed hit rate
// falls below the threshold or when the server simulated a duplicate.
//
// -addr takes a comma-separated list of targets (requests round-robin
// across them; /metrics and /benchmarks come from the first — point it at
// the cluster coordinator, whose /metrics merges the whole fleet). The
// chaos flags kill a worker process mid-run:
//
//	ppfload -addr http://localhost:8090 -n 200 -dup 0.5 -assert 0.5 \
//	        -kill-pid $WORKER_PID -kill-after 50
//
// which asserts that failover never re-simulated a duplicate (the merged
// memo-miss delta, tombstones included, still equals the distinct configs).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

type spec struct {
	Bench  string  `json:"bench"`
	Scheme string  `json:"scheme"`
	Scale  float64 `json:"scale"`
}

type submitResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Dedup  bool   `json:"dedup"`
	Error  string `json:"error"`
}

type outcome struct {
	latency time.Duration
	cached  bool
	dedup   bool
	key     string
	retries int
	err     error
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8091", "comma-separated ppfserve/coordinator base URLs (round-robin; metrics from the first)")
		n       = flag.Int("n", 100, "total requests to send")
		conc    = flag.Int("c", 8, "concurrent in-flight requests")
		rps     = flag.Float64("rps", 0, "target request rate (0 = as fast as -c allows)")
		dup     = flag.Float64("dup", 0.5, "fraction of requests that repeat an earlier config")
		benches = flag.String("bench", "", "comma-separated benchmarks (default: ask the server)")
		schemes = flag.String("scheme", "stride,ghb-regular", "comma-separated schemes to mix")
		scale   = flag.Float64("scale", 0.02, "input scale for every request")
		seed    = flag.Int64("seed", 1, "RNG seed for the request mix")
		assert  = flag.Float64("assert", -1, "fail unless hit rate >= this and no duplicate re-simulated (-1 = report only)")

		killPid   = flag.Int("kill-pid", 0, "chaos: SIGKILL this pid mid-run (with -kill-after)")
		killAfter = flag.Int("kill-after", 0, "chaos: kill after this many completed requests")
	)
	flag.Parse()

	targets := splitList(*addr)
	if len(targets) == 0 {
		fatalf("need at least one -addr target")
	}
	benchList, err := resolveBenches(targets[0], *benches)
	if err != nil {
		fatalf("resolving benchmark list: %v", err)
	}
	schemeList := splitList(*schemes)
	if len(benchList) == 0 || len(schemeList) == 0 {
		fatalf("need at least one benchmark and one scheme")
	}

	before, err := scrapeMetrics(targets[0])
	if err != nil {
		fatalf("scraping /metrics before run: %v", err)
	}

	specs, distinctPlanned := buildMix(benchList, schemeList, *scale, *n, *dup, *seed)
	fmt.Printf("ppfload: %d requests (%d distinct configs, dup ratio %.0f%%) against %s\n",
		len(specs), distinctPlanned, *dup*100, strings.Join(targets, ", "))

	outcomes := fire(targets, specs, *conc, *rps, &chaosKill{pid: *killPid, after: *killAfter})

	after, err := scrapeMetrics(targets[0])
	if err != nil {
		fatalf("scraping /metrics after run: %v", err)
	}
	ok := report(outcomes, before, after, *assert)
	if !ok {
		os.Exit(1)
	}
}

// resolveBenches returns the explicit -bench list, or asks the server's
// /benchmarks endpoint when none was given.
func resolveBenches(addr, explicit string) ([]string, error) {
	if explicit != "" {
		return splitList(explicit), nil
	}
	resp, err := http.Get(addr + "/benchmarks")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Benchmarks, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildMix deterministically expands the bench×scheme cross product into a
// request sequence: each request is either the next unused config or — with
// probability dup — a repeat of one already sent. Returns the sequence and
// how many distinct configs it contains.
func buildMix(benches, schemes []string, scale float64, n int, dup float64, seed int64) ([]spec, int) {
	var pool []spec
	for _, b := range benches {
		for _, sc := range schemes {
			pool = append(pool, spec{Bench: b, Scheme: sc, Scale: scale})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	seq := make([]spec, 0, n)
	used := 0
	for len(seq) < n {
		repeat := used > 0 && (rng.Float64() < dup || used == len(pool))
		if repeat {
			seq = append(seq, pool[rng.Intn(used)])
		} else {
			seq = append(seq, pool[used])
			used++
		}
	}
	return seq, used
}

// chaosKill configures the mid-run worker kill: after `after` requests
// complete, `pid` gets SIGKILL — the hard-death half of the failover story
// (SIGTERM drain is a different, graceful path).
type chaosKill struct {
	pid, after int
	done       int64
	once       sync.Once
}

func (c *chaosKill) completed() {
	if c.pid <= 0 {
		return
	}
	if atomic.AddInt64(&c.done, 1) >= int64(c.after) {
		c.once.Do(func() {
			fmt.Printf("  chaos: SIGKILL pid %d after %d completed requests\n", c.pid, c.after)
			if err := syscall.Kill(c.pid, syscall.SIGKILL); err != nil {
				fmt.Fprintf(os.Stderr, "ppfload: chaos kill failed: %v\n", err)
			}
		})
	}
}

// fire sends every spec through a bounded worker pool, round-robining
// requests across the targets and pacing admissions to the target rate when
// one is set. Each request uses ?wait=1 so the measured latency spans
// submit → terminal state; 429s are retried after the server's Retry-After
// hint (capped so a wedged server cannot hang the run).
func fire(targets []string, specs []spec, conc int, rps float64, chaos *chaosKill) []outcome {
	jobs := make(chan int)
	outcomes := make([]outcome, len(specs))
	var wg sync.WaitGroup
	client := &http.Client{} // no timeout: ?wait=1 legitimately blocks for a full simulation
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = post(client, targets[i%len(targets)], specs[i])
				chaos.completed()
			}
		}()
	}
	var tick *time.Ticker
	if rps > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / rps))
		defer tick.Stop()
	}
	for i := range specs {
		if tick != nil {
			<-tick.C
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return outcomes
}

func post(client *http.Client, addr string, sp spec) outcome {
	body, _ := json.Marshal(sp)
	start := time.Now()
	var out outcome
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(addr+"/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			out.err = err
			break
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			out.retries++
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		var sr submitResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			out.err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
			break
		}
		out.key = sr.Key
		out.cached = sr.Cached
		out.dedup = sr.Dedup
		if resp.StatusCode != http.StatusOK {
			out.err = fmt.Errorf("status %d: %s", resp.StatusCode, sr.Error)
		}
		break
	}
	out.latency = time.Since(start)
	return out
}

func report(outcomes []outcome, before, after map[string]int64, assert float64) bool {
	var (
		lats              []time.Duration
		cached, dedup     int
		errs, retries     int
		total             = len(outcomes)
		distinct          = map[string]struct{}{}
		elapsedSimulating int
	)
	for _, o := range outcomes {
		lats = append(lats, o.latency)
		retries += o.retries
		if o.err != nil {
			errs++
			continue
		}
		if o.key != "" {
			distinct[o.key] = struct{}{}
		}
		switch {
		case o.cached:
			cached++
		case o.dedup:
			dedup++
		default:
			elapsedSimulating++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	hits := cached + dedup
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	missDelta := after["ppfserve_memo_misses"] - before["ppfserve_memo_misses"]

	fmt.Printf("  latency  p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	fmt.Printf("  hit rate %.1f%%  (cached=%d dedup=%d simulated=%d errors=%d retries=%d)\n",
		hitRate*100, cached, dedup, elapsedSimulating, errs, retries)
	fmt.Printf("  distinct configs sent=%d  server memo-miss delta=%d\n", len(distinct), missDelta)

	ok := true
	if errs > 0 {
		fmt.Printf("  FAIL: %d requests errored\n", errs)
		ok = false
	}
	if missDelta > int64(len(distinct)) {
		fmt.Printf("  FAIL: server simulated %d configs but only %d distinct were sent — a duplicate was re-simulated\n",
			missDelta, len(distinct))
		ok = false
	} else {
		fmt.Printf("  no duplicate request was re-simulated\n")
	}
	if assert >= 0 && hitRate < assert {
		fmt.Printf("  FAIL: hit rate %.1f%% below asserted minimum %.1f%%\n", hitRate*100, assert*100)
		ok = false
	}
	if assert < 0 {
		return true // report-only mode
	}
	return ok
}

func scrapeMetrics(addr string) (map[string]int64, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	m := map[string]int64{}
	for _, line := range strings.Split(string(raw), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		if v, err := strconv.ParseInt(f[1], 10, 64); err == nil {
			m[f[0]] = v
		}
	}
	return m, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ppfload: "+format+"\n", args...)
	os.Exit(1)
}
