// Command ppfserve is the simulation-as-a-service daemon: it accepts
// benchmark×scheme×config jobs over HTTP/JSON, runs them on a bounded
// worker pool, serves repeated requests from a content-addressed result
// cache, streams per-job progress over SSE, and exposes server + simulator
// metrics.
//
// Usage (single server):
//
//	ppfserve -addr :8091 -workers 4 -queue 64
//
//	curl -s localhost:8091/jobs -d '{"bench":"HJ-2","scheme":"manual","scale":0.05}'
//	curl -s localhost:8091/jobs/j1
//	curl -N  localhost:8091/jobs/j1/events      # SSE progress stream
//	curl -s  localhost:8091/jobs/j1/result      # canonical result JSON
//	curl -s  localhost:8091/metrics
//
// Cluster mode shards the service: one coordinator routes each job by
// rendezvous hashing of its content key to the worker that already holds
// the cached bytes, replicates completed results, and fails streams over
// when a worker dies.
//
//	ppfserve -cluster -addr :8090                                # coordinator
//	ppfserve -addr :8091 -coordinator http://localhost:8090      # worker 1
//	ppfserve -addr :8092 -coordinator http://localhost:8090      # worker 2
//
//	curl -s localhost:8090/jobs -d '{"bench":"HJ-2","scheme":"stride"}'
//	curl -s localhost:8090/workers
//	curl -s localhost:8090/metrics              # merged across the fleet
//
// The first SIGINT/SIGTERM drains gracefully (in-flight jobs finish, queued
// jobs are rejected, new submissions get 503); a second one force-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"eventpf/internal/cluster"
	"eventpf/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8091", "listen address")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		scale     = flag.Float64("default-scale", 0.05, "input scale when a job omits one")
		maxScale  = flag.Float64("max-scale", 1.0, "largest accepted input scale")
		cacheN    = flag.Int("cache", 4096, "content-addressed result cache entries")
		cacheMB   = flag.Int("cache-mb", 256, "result cache byte cap in MiB (LRU eviction)")
		eventHist = flag.Int("event-history", 256, "per-job retained progress events; older fold into a snapshot")

		coordinatorMode = flag.Bool("cluster", false, "run as a cluster coordinator (route to registered workers; no local simulation)")
		replicas        = flag.Int("replicas", 2, "coordinator: workers holding each completed result")
		coordURL        = flag.String("coordinator", "", "worker: coordinator base URL to register with (enables cluster worker mode)")
		name            = flag.String("name", "", "worker: stable cluster name (default w<port>)")
		advertise       = flag.String("advertise", "", "worker: base URL peers reach this worker at (default http://127.0.0.1:<port>)")
	)
	flag.Parse()

	if *coordinatorMode {
		runCoordinator(*addr, *replicas, *scale)
		return
	}

	srv := serve.NewServer(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		DefaultScale: *scale,
		MaxScale:     *maxScale,
		CacheEntries: *cacheN,
		CacheBytes:   int64(*cacheMB) << 20,
		EventHistory: *eventHist,
		IDPrefix:     idPrefix(*coordURL, *name, *addr),
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Cluster worker mode: register with the coordinator and keep
	// heartbeating until shutdown starts, then deregister so the
	// coordinator routes around us while we drain.
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	if *coordURL != "" {
		self := cluster.WorkerInfo{
			ID:  workerName(*name, *addr),
			URL: advertiseURL(*advertise, *addr),
		}
		fmt.Printf("ppfserve: cluster worker %s (%s) registering with %s\n", self.ID, self.URL, *coordURL)
		go cluster.Heartbeat(hbCtx, *coordURL, self, 0)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		serve.HandleSignals(srv, sigc,
			func() {
				hbCancel() // deregister from the coordinator
				_ = hs.Shutdown(context.Background())
			},
			func(code int) { fmt.Fprintln(os.Stderr, "ppfserve: forced exit"); os.Exit(code) })
		close(done)
	}()

	fmt.Printf("ppfserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ppfserve: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("ppfserve: drained, bye")
}

// runCoordinator serves the cluster router: no local simulation, only ring
// membership, proxying, replication, and merged metrics. It holds no job
// state worth draining, so the first signal shuts it down gracefully and
// the second force-exits.
func runCoordinator(addr string, replicas int, scale float64) {
	c := cluster.NewCoordinator(cluster.Config{Replicas: replicas, DefaultScale: scale})
	hs := &http.Server{Addr: addr, Handler: c.Handler()}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "ppfserve: forced exit")
			os.Exit(1)
		}()
		c.Close()
		_ = hs.Shutdown(context.Background())
	}()

	fmt.Printf("ppfserve: coordinator listening on %s (replicas=%d)\n", addr, replicas)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ppfserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ppfserve: coordinator stopped, bye")
}

// workerName derives a stable cluster name from -name or the listen port.
func workerName(name, addr string) string {
	if name != "" {
		return name
	}
	if _, port, err := net.SplitHostPort(addr); err == nil {
		return "w" + port
	}
	return "w" + addr
}

// advertiseURL derives the URL peers reach this worker at. Wildcard and
// empty hosts advertise loopback — right for the localhost quickstart;
// multi-host deployments pass -advertise explicitly.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// idPrefix keeps job IDs unique across the fleet: cluster workers prefix
// with their name, single servers keep the short "j" form.
func idPrefix(coordURL, name, addr string) string {
	if coordURL == "" {
		return ""
	}
	return workerName(name, addr) + "-"
}
