// Command ppfserve is the simulation-as-a-service daemon: it accepts
// benchmark×scheme×config jobs over HTTP/JSON, runs them on a bounded
// worker pool, serves repeated requests from a content-addressed result
// cache, streams per-job progress over SSE, and exposes server + simulator
// metrics.
//
// Usage:
//
//	ppfserve -addr :8091 -workers 4 -queue 64
//
//	curl -s localhost:8091/jobs -d '{"bench":"HJ-2","scheme":"manual","scale":0.05}'
//	curl -s localhost:8091/jobs/j1
//	curl -N  localhost:8091/jobs/j1/events      # SSE progress stream
//	curl -s  localhost:8091/jobs/j1/result      # canonical result JSON
//	curl -s  localhost:8091/metrics
//
// The first SIGINT/SIGTERM drains gracefully (in-flight jobs finish, queued
// jobs are rejected, new submissions get 503); a second one force-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"eventpf/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8091", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		scale    = flag.Float64("default-scale", 0.05, "input scale when a job omits one")
		maxScale = flag.Float64("max-scale", 1.0, "largest accepted input scale")
		cacheN   = flag.Int("cache", 4096, "content-addressed result cache entries")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		DefaultScale: *scale,
		MaxScale:     *maxScale,
		CacheEntries: *cacheN,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		serve.HandleSignals(srv, sigc,
			func() { _ = hs.Shutdown(context.Background()) },
			func(code int) { fmt.Fprintln(os.Stderr, "ppfserve: forced exit"); os.Exit(code) })
		close(done)
	}()

	fmt.Printf("ppfserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ppfserve: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("ppfserve: drained, bye")
}
