// Command ppfsim runs one benchmark under one prefetching scheme and prints
// the run's statistics.
//
// Usage:
//
//	ppfsim -bench HJ-8 -scheme manual -scale 0.25
//	ppfsim -bench HJ-8 -scheme manual -baseline -parallel 2
//	ppfsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"eventpf/internal/adaptive"
	"eventpf/internal/harness"
	"eventpf/internal/sim"
	"eventpf/internal/system"
	"eventpf/internal/trace"
	"eventpf/internal/tracein"
	"eventpf/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "HJ-2", "benchmark name (see -list or -list-benches)")
		traceIn   = flag.String("trace-in", "", "replay a captured trace file (ppftracegen output or a ChampSim trace) instead of -bench")
		schemeStr = flag.String("scheme", "manual", "one of: "+strings.Join(harness.SchemeNames(), " "))
		scale     = flag.Float64("scale", 0.25, "input scale relative to the default reduced input")
		ppus      = flag.Int("ppus", 0, "override PPU count (0 = default 12)")
		ppuMHz    = flag.Int("ppu-mhz", 0, "override PPU clock in MHz (0 = default 1000)")
		baseline  = flag.Bool("baseline", false, "also run without prefetching and report the speedup")
		parallel  = flag.Int("parallel", 0, "with -baseline, run both simulations concurrently (0 = GOMAXPROCS, 1 = serial)")
		slices    = flag.Int("slices", 0, "time-parallel slices per run: >1 splits the run across cores via functional warming (approximate but deterministic), 0 keeps the exact serial engine")
		traceN    = flag.Int("trace", 0, "dump the last N prefetcher trace events after the run")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the run to this file")
		metrics   = flag.Bool("metrics", false, "print the metrics registry (counters + queue-occupancy histograms) after the run")
		jsonOut   = flag.Bool("json", false, "emit the full result record as JSON")
		sample    = flag.Bool("sample", false, "run under SMARTS-style interval sampling (detailed intervals + functionally-warmed fast-forward)")
		sWarm     = flag.Int64("sample-warm", 0, "with -sample, detailed warmup ops before each measurement interval (0 = default)")
		sMeasure  = flag.Int64("sample-measure", 0, "with -sample, measured ops per detailed interval (0 = default)")
		sFF       = flag.Int64("sample-ff", 0, "with -sample, fast-forwarded ops between detailed intervals (0 = default)")
		aInterval = flag.Int64("adaptive-interval", 0, "adaptive scheme: decision interval in engine ticks (0 = default)")
		aEpsilon  = flag.Int("adaptive-epsilon", -1, "adaptive scheme: explore 1-in-N decisions, 0 disables (-1 = default)")
		aSeed     = flag.Uint64("adaptive-seed", 0, "adaptive scheme: exploration RNG seed (0 = default)")
		aArms     = flag.String("adaptive-arms", "", "adaptive scheme: comma-separated candidate menu (empty = default)")
		aTrial    = flag.Int("adaptive-trial", 0, "adaptive scheme: measured intervals per sweep trial (0 = default)")
		aPfTrial  = flag.Int("adaptive-pf-trial", 0, "adaptive scheme: measured intervals per pf-arm trial (0 = default)")
		aPhase    = flag.Int64("adaptive-phase", 0, "adaptive scheme: phase-change miss-rate threshold in per-mille (0 = default)")
		aCool     = flag.Int("adaptive-cooldown", -1, "adaptive scheme: phase-detector cooldown intervals (-1 = default)")
		showAdapt = flag.Bool("show-adaptive", false, "print the effective adaptive controller configuration and exit")
		ckptOut   = flag.String("checkpoint-out", "", "simulate -checkpoint-ops micro-ops, write a resumable checkpoint to this file, and exit")
		ckptOps   = flag.Int64("checkpoint-ops", 0, "with -checkpoint-out, how many retired micro-ops to simulate before checkpointing")
		ckptIn    = flag.String("checkpoint-in", "", "resume the run described by this checkpoint file and complete it")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		listBench = flag.Bool("list-benches", false, "print every resolvable benchmark name (Table 2 rows and extras), one per line, and exit")
		listSch   = flag.Bool("list-schemes", false, "print the registered scheme names, one per line, and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	if *list {
		fmt.Print(harness.Table2())
		return
	}
	if *listBench {
		// Column 1 is the parseable name; scripts should select on it ($1),
		// not the whole line. Mirrors -list-schemes.
		for _, b := range workloads.Menu() {
			origin := "table2"
			if workloads.IsExtra(b) {
				origin = "extra"
			}
			fmt.Printf("%-10s %-7s %-40s %s\n", b.Name, origin, b.Pattern, b.Input)
		}
		return
	}
	if *listSch {
		// Column 1 is the parseable name; scripts should select on it
		// ($1), not the whole line.
		for _, s := range harness.AllSchemes {
			info, _ := s.Info()
			prog, fig7 := "-", "-"
			if info.Machine.IsProgrammable() {
				prog = "programmable"
			}
			if info.Fig7 {
				fig7 = "fig7"
			}
			fmt.Printf("%-15s %-12s %-5s %s\n", info.Name, prog, fig7, info.Description)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *ckptIn != "" {
		f, err := os.Open(*ckptIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		res, err := harness.ResumeCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		emitResult(res, *jsonOut)
		return
	}

	var b *workloads.Benchmark
	if *traceIn != "" {
		b = tracein.Bench(*traceIn)
	} else {
		var err error
		b, err = workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(2)
		}
	}
	scheme, ok := harness.ParseScheme(*schemeStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppfsim: unknown scheme %q; valid: %s\n",
			*schemeStr, strings.Join(harness.SchemeNames(), " "))
		os.Exit(2)
	}

	opt := harness.Options{Scale: *scale, PPUs: *ppus, PPUMHz: *ppuMHz, TraceLast: *traceN,
		Parallel: *parallel, Slices: *slices}
	if *aInterval != 0 || *aEpsilon >= 0 || *aSeed != 0 || *aArms != "" || *aTrial > 0 || *aPfTrial > 0 || *aPhase > 0 || *aCool >= 0 {
		cfg := system.DefaultConfig()
		if *aInterval != 0 {
			cfg.Adaptive.IntervalTicks = sim.Ticks(*aInterval)
		}
		if *aEpsilon >= 0 {
			cfg.Adaptive.Epsilon = *aEpsilon
		}
		if *aSeed != 0 {
			cfg.Adaptive.Seed = *aSeed
		}
		if *aArms != "" {
			cfg.Adaptive.Arms = *aArms
		}
		if *aTrial > 0 {
			cfg.Adaptive.TrialIntervals = *aTrial
		}
		if *aPfTrial > 0 {
			cfg.Adaptive.PfTrialIntervals = *aPfTrial
		}
		if *aPhase > 0 {
			cfg.Adaptive.PhasePerMille = *aPhase
		}
		if *aCool >= 0 {
			cfg.Adaptive.Cooldown = *aCool
		}
		if err := cfg.Adaptive.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(2)
		}
		opt.Config = &cfg
	}
	if *showAdapt {
		cfg, err := harness.ConfigFor(opt, scheme)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(2)
		}
		a := cfg.Adaptive
		fmt.Printf("policy=%s interval=%d epsilon=%d seed=%d arms=%s\n",
			adaptive.PolicyName, a.IntervalTicks, a.Epsilon, a.Seed, a.Arms)
		return
	}
	if *sample {
		sc := system.DefaultSampleConfig()
		if *sWarm > 0 {
			sc.WarmupOps = *sWarm
		}
		if *sMeasure > 0 {
			sc.MeasureOps = *sMeasure
		}
		if *sFF > 0 {
			sc.FFOps = *sFF
		}
		opt.Sample = &sc
	}

	if *ckptOut != "" {
		spec := harness.JobSpec{Bench: b.Name, Scheme: scheme.String(),
			Scale: *scale, PPUs: *ppus, PPUMHz: *ppuMHz}
		f, err := os.Create(*ckptOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		cp, err := harness.SaveCheckpoint(f, spec, *ckptOps)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint: %s %s at %d ops (digest %016x) written to %s\n",
			cp.Job.Bench, cp.Job.Scheme, cp.WarmupOps, cp.Digest, *ckptOut)
		return
	}

	var collector *trace.Collector
	if *traceOut != "" {
		collector = trace.NewCollector()
		opt.TraceSink = collector
	}
	var reg *trace.Registry
	if *metrics {
		reg = trace.NewRegistry()
		opt.Metrics = reg
	}

	var res, base harness.Result
	var err error
	runBaseline := *baseline && scheme != harness.NoPF
	switch {
	case runBaseline:
		// A two-pair suite overlaps the measured run with its no-prefetch
		// baseline; results are bit-identical to two serial harness.Run
		// calls because each simulation is deterministic. Instrumentation
		// attaches only to the measured run (RunInstrumented hooks fire on
		// the goroutine that simulates that pair), and the sink is wrapped
		// in trace.Locked so sharing it wider would also be safe — no more
		// serial fallback when tracing is on.
		instOpt := opt
		instOpt.TraceSink, instOpt.Metrics = nil, nil
		s := harness.NewSuite(instOpt)
		measured := harness.Pair{Bench: b, Scheme: scheme}
		inst := &harness.Instrument{Metrics: reg}
		if collector != nil {
			inst.Sink = trace.Locked(collector)
		}
		err = forBoth(
			func() error { var e error; res, e = s.RunInstrumented(context.Background(), measured, inst); return e },
			func() error { var e error; base, e = s.Run(harness.Pair{Bench: b, Scheme: harness.NoPF}); return e },
		)
	default:
		res, err = harness.Run(b, scheme, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		// EncodeResult is the canonical encoding ppfserve caches; using it
		// here keeps the CLI and the daemon byte-identical for one config.
		if err := harness.EncodeResult(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	printResult(res)
	if res.Trace != nil {
		fmt.Println("\nlast prefetcher events:")
		res.Trace.Dump(os.Stdout)
	}
	if collector != nil {
		lay, lerr := harness.LayoutFor(opt, scheme)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", lerr)
			os.Exit(1)
		}
		if werr := writeChromeTrace(*traceOut, collector.Events(), lay); werr != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d simulator events exported to %s\n", len(collector.Events()), *traceOut)
	}
	if reg != nil {
		fmt.Println("\nmetrics:")
		fmt.Print(reg.Format())
	}

	if runBaseline {
		fmt.Printf("\nno-pf cycles   %12d\nspeedup        %12.2fx\n",
			base.Cycles, harness.Speedup(base, res))
	}
}

// emitResult prints a standalone result (checkpoint resumes) in the same
// JSON or text form the normal path uses.
func emitResult(res harness.Result, jsonOut bool) {
	if jsonOut {
		if err := harness.EncodeResult(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "ppfsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	printResult(res)
}

func writeChromeTrace(path string, events []trace.Event, lay trace.Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events, lay); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// forBoth runs the two closures concurrently and returns the first error,
// preferring a's (the measured run) so error messages stay deterministic.
func forBoth(a, b func() error) error {
	errA := make(chan error, 1)
	go func() { errA <- a() }()
	errB := b()
	if err := <-errA; err != nil {
		return err
	}
	return errB
}

func printResult(r harness.Result) {
	fmt.Printf("benchmark      %12s\nscheme         %12s\n", r.Benchmark, r.Scheme)
	fmt.Printf("cycles         %12d\ninstructions   %12d\nipc            %12.3f\n",
		r.Cycles, r.Core.Ops, float64(r.Core.Ops)/float64(r.Cycles))
	fmt.Printf("L1 hit rate    %12.3f\nL2 hit rate    %12.3f\n",
		r.L1.ReadHitRate(), r.L2.ReadHitRate())
	fmt.Printf("DRAM reads     %12d\nbranch mispred %12d\n", r.DRAM.Reads, r.Core.Mispredicts)
	if r.PF.KernelRuns > 0 {
		fmt.Printf("kernel runs    %12d\nprefetches     %12d issued, %12d generated\n",
			r.PF.KernelRuns, r.PF.Issued, r.PF.PFGenerated)
		fmt.Printf("pf utilisation %12.3f\n", r.L1.PrefetchUtilisation())
		fmt.Printf("obs dropped    %12d\nreq dropped    %12d\n", r.PF.ObsDropped, r.PF.ReqDropped)
	}
	if r.Baseline.Issued > 0 {
		fmt.Printf("hw-pf issued   %12d (of %d generated)\n", r.Baseline.Issued, r.Baseline.Generated)
	}
	if r.Pass != nil {
		fmt.Printf("compiler pass  %12d chains converted, %d failed, %d kernels\n",
			r.Pass.Converted, r.Pass.Failed, len(r.Pass.Kernels))
	}
	if s := r.Sampled; s != nil {
		fmt.Printf("sampled        %12d of %d ops detailed (%d intervals)\nest. cycles    %12d\n",
			s.DetailedOps, s.TotalOps, s.Intervals, s.EstimatedCycles)
	}
	if tp := r.TimeParallel; tp != nil {
		var warm int64
		for _, w := range tp.WarmOps {
			warm += w
		}
		fmt.Printf("time-parallel  %12d slices (%d ops functionally warmed)\n", tp.Slices, warm)
	}
}
