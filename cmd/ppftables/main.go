// Command ppftables regenerates the paper's tables and figures (Tables 1–2,
// Figures 7–11, the §7 textual analyses, and the repository's own Figure 12
// adaptive-control study) as aligned text tables.
//
// Usage:
//
//	ppftables                 # every experiment at the default scale
//	ppftables -exp fig7       # one experiment
//	ppftables -scale 1.0      # full reduced-input size (slower)
//	ppftables -parallel 8     # cap the worker pool (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eventpf/internal/harness"
)

var experiments = []string{
	"table1", "table2", "fig7", "fig8a", "fig8b", "fig9a", "fig9b",
	"fig10", "fig11", "fig12", "instrs", "extramem", "ablation", "ctxswitch",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1 table2 fig7 fig8a fig8b fig9a fig9b fig10 fig11 fig12 instrs extramem ablation ctxswitch) or 'all'")
		scale    = flag.Float64("scale", 0.15, "input scale relative to the default reduced inputs")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	suite := harness.NewSuite(harness.Options{Scale: *scale, Parallel: *parallel})
	todo := experiments
	if *exp != "all" {
		todo = []string{*exp}
	}
	for _, id := range todo {
		start := time.Now()
		out, err := runExperiment(suite, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppftables: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (scale %.2f, %v) ==\n%s\n", id, *scale, time.Since(start).Round(time.Millisecond), out)
	}
}

func runExperiment(s *harness.Suite, id string) (string, error) {
	switch id {
	case "table1":
		return harness.Table1(s.Opt), nil
	case "table2":
		return harness.Table2(), nil
	case "fig7":
		rows, err := s.Fig7()
		if err != nil {
			return "", err
		}
		return harness.FormatFig7(rows), nil
	case "fig8a", "fig8b":
		rows, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return harness.FormatFig8(rows), nil
	case "fig9a":
		rows, err := s.Fig9a()
		if err != nil {
			return "", err
		}
		return harness.FormatFig9a(rows), nil
	case "fig9b":
		cells, err := s.Fig9b()
		if err != nil {
			return "", err
		}
		return harness.FormatFig9b(cells), nil
	case "fig10":
		rows, err := s.Fig10()
		if err != nil {
			return "", err
		}
		return harness.FormatFig10(rows), nil
	case "fig11":
		rows, err := s.Fig11()
		if err != nil {
			return "", err
		}
		return harness.FormatFig11(rows), nil
	case "fig12":
		rows, err := s.Fig12()
		if err != nil {
			return "", err
		}
		return harness.FormatFig12(rows), nil
	case "instrs":
		rows, err := s.InstrOverhead()
		if err != nil {
			return "", err
		}
		return harness.FormatInstrOverhead(rows), nil
	case "extramem":
		rows, err := s.ExtraMem()
		if err != nil {
			return "", err
		}
		return harness.FormatExtraMem(rows), nil
	case "ablation":
		rows, err := s.Ablations()
		if err != nil {
			return "", err
		}
		return harness.FormatAblations(rows), nil
	case "ctxswitch":
		rows, err := s.ContextSwitches()
		if err != nil {
			return "", err
		}
		return harness.FormatContextSwitches(rows), nil
	}
	return "", fmt.Errorf("unknown experiment %q", id)
}
