// Command ppftrace analyses a Chrome trace-event JSON exported by
// ppfsim -trace-out: it reconstructs each tagged prefetch chain from the
// prefetcher's generate/enqueue/issue/fill/drop instants and prints a
// per-kernel latency breakdown of the generate→enqueue→issue→fill path.
//
// Usage:
//
//	ppfsim -bench hj8 -scheme manual -trace-out t.json
//	ppftrace t.json
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// traceFile matches the subset of the Chrome trace-event format the
// exporter writes; unknown fields are ignored.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Args map[string]any `json:"args"`
}

// chain is one prefetch request's reconstructed lifecycle. Timestamps are
// µs; NaN marks a stage the request never reached.
type chain struct {
	kernel   int
	gen      float64
	enq      float64
	issue    float64
	fill     float64
	filled   bool
	dropped  bool
	dropWhy  string
	sawStage bool // any stage beyond generate observed
}

func main() {
	if len(os.Args) != 2 || os.Args[1] == "-h" || os.Args[1] == "--help" {
		fmt.Fprintln(os.Stderr, "usage: ppftrace <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppftrace: %v\n", err)
		os.Exit(1)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "ppftrace: %s is not Chrome trace-event JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}

	chains := map[int64]*chain{}
	get := func(args map[string]any) (int64, *chain, bool) {
		v, ok := args["id"]
		if !ok {
			return 0, nil, false
		}
		f, ok := v.(float64)
		if !ok {
			return 0, nil, false
		}
		id := int64(f)
		c, ok := chains[id]
		if !ok {
			c = &chain{kernel: -1, gen: math.NaN(), enq: math.NaN(),
				issue: math.NaN(), fill: math.NaN()}
			chains[id] = c
		}
		return id, c, true
	}
	num := func(args map[string]any, key string) (int, bool) {
		if f, ok := args[key].(float64); ok {
			return int(f), true
		}
		return 0, false
	}

	for _, e := range tf.TraceEvents {
		if e.Ph != "i" || e.Args == nil {
			continue
		}
		switch e.Name {
		case "generate":
			_, c, ok := get(e.Args)
			if !ok {
				continue
			}
			c.gen = e.Ts
			if k, ok := num(e.Args, "kernel"); ok {
				c.kernel = k
			}
		case "enqueue":
			if _, c, ok := get(e.Args); ok {
				c.enq, c.sawStage = e.Ts, true
			}
		case "issue":
			if _, c, ok := get(e.Args); ok {
				c.issue, c.sawStage = e.Ts, true
			}
		case "fill":
			if _, c, ok := get(e.Args); ok {
				c.fill, c.sawStage = e.Ts, true
				if b, isB := e.Args["filled"].(bool); isB {
					c.filled = b
				}
			}
		case "drop":
			if _, c, ok := get(e.Args); ok {
				c.dropped, c.sawStage = true, true
				if s, isS := e.Args["reason"].(string); isS {
					c.dropWhy = s
				}
			}
		}
	}

	type row struct {
		kernel                           int
		chains, fills, resident, drops   int
		genEnq, enqIss, issFill, genFill stageMean
		dropWhy                          map[string]int
	}
	rows := map[int]*row{}
	for _, c := range chains {
		if math.IsNaN(c.gen) {
			continue // chain began before tracing or exporter truncation
		}
		r, ok := rows[c.kernel]
		if !ok {
			r = &row{kernel: c.kernel, dropWhy: map[string]int{}}
			rows[c.kernel] = r
		}
		r.chains++
		r.genEnq.add(c.gen, c.enq)
		r.enqIss.add(c.enq, c.issue)
		if c.filled {
			r.issFill.add(c.issue, c.fill)
			r.genFill.add(c.gen, c.fill)
			r.fills++
		} else if !math.IsNaN(c.fill) {
			r.resident++
		}
		if c.dropped {
			r.drops++
			r.dropWhy[c.dropWhy]++
		}
	}

	kernels := make([]int, 0, len(rows))
	for k := range rows {
		kernels = append(kernels, k)
	}
	sort.Ints(kernels)

	fmt.Printf("%-8s %8s %8s %8s %8s %11s %11s %11s %11s\n",
		"kernel", "chains", "fills", "resident", "drops",
		"gen→enq", "enq→iss", "iss→fill", "gen→fill")
	for _, k := range kernels {
		r := rows[k]
		fmt.Printf("%-8d %8d %8d %8d %8d %9.0fns %9.0fns %9.0fns %9.0fns\n",
			r.kernel, r.chains, r.fills, r.resident, r.drops,
			r.genEnq.mean(), r.enqIss.mean(), r.issFill.mean(), r.genFill.mean())
		if r.drops > 0 {
			reasons := make([]string, 0, len(r.dropWhy))
			for why := range r.dropWhy {
				reasons = append(reasons, why)
			}
			sort.Strings(reasons)
			for _, why := range reasons {
				fmt.Printf("%-8s   dropped at %s: %d\n", "", why, r.dropWhy[why])
			}
		}
	}
	if len(rows) == 0 {
		fmt.Println("no prefetch chains in trace (was the run using the programmable prefetcher?)")
	}
}

// stageMean accumulates the mean of (end-start) over chains that reached
// both endpoints.
type stageMean struct {
	sum float64 // microseconds
	n   int
}

func (m *stageMean) add(start, end float64) {
	if math.IsNaN(start) || math.IsNaN(end) {
		return
	}
	m.sum += end - start
	m.n++
}

// mean returns the stage latency in nanoseconds (trace timestamps are µs).
func (m *stageMean) mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n) * 1000
}
