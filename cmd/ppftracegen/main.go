// Command ppftracegen captures a benchmark's micro-op stream to a trace file
// in the native tracein format, for later replay with ppfsim -trace-in (or
// any other front end via JobSpec.Trace). The capture run simulates in full
// timing detail under the chosen scheme — the stream itself is
// scheme-independent (prefetchers never change committed ops), so no-pf, the
// default, is the cheapest choice.
//
// Usage:
//
//	ppftracegen -bench RandAcc -scale 0.1 -o randacc.ppft.gz
//	ppfsim -trace-in randacc.ppft.gz -scheme stride
//
// An output path ending in .gz is gzip-compressed; Open auto-detects either
// form on replay.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"eventpf/internal/cpu"
	"eventpf/internal/harness"
	"eventpf/internal/tracein"
	"eventpf/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "RandAcc", "benchmark to capture (see ppfsim -list-benches)")
		schemeStr = flag.String("scheme", "no-pf", "scheme to simulate during capture: "+strings.Join(harness.SchemeNames(), " "))
		scale     = flag.Float64("scale", 0.25, "input scale relative to the default reduced input")
		out       = flag.String("o", "", "output trace path (required; a .gz suffix gzip-compresses)")
		formatVer = flag.Bool("format-version", false, "print the native trace-format version and exit")
	)
	flag.Parse()

	if *formatVer {
		fmt.Println(tracein.FormatVersion)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ppftracegen: -o is required")
		os.Exit(2)
	}
	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppftracegen: %v\n", err)
		os.Exit(2)
	}
	scheme, ok := harness.ParseScheme(*schemeStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "ppftracegen: unknown scheme %q; valid: %s\n",
			*schemeStr, strings.Join(harness.SchemeNames(), " "))
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppftracegen: %v\n", err)
		os.Exit(1)
	}
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(*out, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	sink := tracein.NewWriter(w, tracein.Meta{
		Bench:  b.Name,
		Scheme: scheme.String(),
		Scale:  *scale,
		Tool:   "ppftracegen",
	})

	opt := harness.Options{Scale: *scale, OpSink: sink}
	res, runErr := harness.Run(b, scheme, opt)

	err = sink.Close()
	if zw != nil {
		if zerr := zw.Close(); err == nil {
			err = zerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if runErr != nil {
		os.Remove(*out)
		fmt.Fprintf(os.Stderr, "ppftracegen: %v\n", runErr)
		os.Exit(1)
	}
	if err != nil {
		os.Remove(*out)
		fmt.Fprintf(os.Stderr, "ppftracegen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("captured %s under %s: %d ops (%d loads, %d stores, %d branches) in %d cycles -> %s\n",
		b.Name, scheme, sink.Count(),
		sink.KindCount(cpu.OpLoad), sink.KindCount(cpu.OpStore), sink.KindCount(cpu.OpBranch),
		res.Cycles, *out)
}
