// Package eventpf is a Go reproduction of "An Event-Triggered Programmable
// Prefetcher for Irregular Workloads" (Ainsworth & Jones, ASPLOS 2018): a
// cycle-level simulator of an out-of-order core with two cache levels, TLB
// and DDR3 DRAM, carrying the paper's programmable prefetcher — an address
// filter, observation queue, scheduler, a pool of tiny programmable prefetch
// units (PPUs), EWMA look-ahead calculators and a tagged prefetch-request
// path — plus the paper's compiler passes (software-prefetch conversion,
// pragma event generation, automatic prefetch insertion) over a small SSA
// IR with a textual form.
//
// Quick start:
//
//	bench, _ := eventpf.BenchmarkByName("HJ-8")
//	base, _ := eventpf.Run(bench, eventpf.NoPF, eventpf.Options{Scale: 0.25})
//	man, _ := eventpf.Run(bench, eventpf.Manual, eventpf.Options{Scale: 0.25})
//	fmt.Printf("speedup %.2fx\n", eventpf.Speedup(base, man))
//
// For custom workloads, build a machine directly, write the timed kernel in
// the IR (eventpf.NewIRBuilder), write PPU event kernels in the assembly
// dialect (eventpf.Assemble), and run; see examples/ for complete programs.
package eventpf

import (
	"eventpf/internal/compiler"
	"eventpf/internal/harness"
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// Scheme selects a prefetching scheme (one Figure 7 bar).
type Scheme = harness.Scheme

// The paper's comparison schemes plus the competitor prefetchers. These are
// registry-assigned ids (vars, not consts): new schemes can be added with
// harness.Register without renumbering.
var (
	NoPF          = harness.NoPF
	Stride        = harness.Stride
	GHBRegular    = harness.GHBRegular
	GHBLarge      = harness.GHBLarge
	Software      = harness.Software
	Pragma        = harness.Pragma
	Converted     = harness.Converted
	Manual        = harness.Manual
	ManualBlocked = harness.ManualBlocked
	RPT           = harness.RPT
	GHBDelta      = harness.GHBDelta
	TSKID         = harness.TSKID
	Adaptive      = harness.Adaptive
)

// Options adjusts a run; see harness.Options.
type Options = harness.Options

// Result is one benchmark × scheme measurement.
type Result = harness.Result

// Benchmark is one of the paper's Table 2 workloads.
type Benchmark = workloads.Benchmark

// Benchmarks returns the eight Table 2 benchmarks in paper order.
func Benchmarks() []*Benchmark { return workloads.All }

// BenchmarkByName finds a Table 2 benchmark ("G500-CSR", "HJ-8", …).
func BenchmarkByName(name string) (*Benchmark, bool) {
	b, err := workloads.ByName(name)
	return b, err == nil
}

// Run executes one benchmark under one scheme, validating the computation
// against the benchmark's oracle.
func Run(b *Benchmark, s Scheme, opt Options) (Result, error) { return harness.Run(b, s, opt) }

// Speedup returns base.Cycles / run.Cycles.
func Speedup(base, run Result) float64 { return harness.Speedup(base, run) }

// Suite memoises runs across experiments and fans independent simulations
// out over a bounded worker pool (Options.Parallel, default GOMAXPROCS);
// it regenerates every figure of the paper's evaluation. See the
// Fig7…Fig11 methods, Prefetch and Run.
type Suite = harness.Suite

// Pair names one benchmark×scheme measurement (with optional PPU sizing)
// for Suite.Prefetch and Suite.Run.
type Pair = harness.Pair

// NewSuite prepares an experiment suite.
func NewSuite(opt Options) *Suite { return harness.NewSuite(opt) }

// Machine-level API, for building custom workloads against the simulator.

// MachineConfig sizes the simulated machine (Table 1 defaults).
type MachineConfig = system.Config

// MachineScheme selects the hardware prefetcher a machine carries.
type MachineScheme = system.Scheme

// Machine prefetching schemes (registry-assigned ids; see system.RegisterScheme).
var (
	MachineNoPF         = system.NoPF
	MachineStride       = system.StridePF
	MachineGHBRegular   = system.GHBRegular
	MachineGHBLarge     = system.GHBLarge
	MachineProgrammable = system.Programmable
	MachineRPT          = system.RPT
	MachineGHBDelta     = system.GHBDelta
	MachineTSKID        = system.TSKID
)

// Machine is one assembled simulation instance.
type Machine = system.Machine

// DefaultMachineConfig returns the paper's Table 1 configuration.
func DefaultMachineConfig() MachineConfig { return system.DefaultConfig() }

// NewMachine assembles a machine carrying the given prefetching scheme.
func NewMachine(cfg MachineConfig, s MachineScheme) *Machine { return system.New(cfg, s) }

// RangeConfig is one prefetcher address-filter entry (§4.2).
type RangeConfig = prefetch.RangeConfig

// NoKernel marks an unset kernel slot in a RangeConfig.
const NoKernel = prefetch.NoKernel

// IR construction, for writing custom timed kernels.

// IRBuilder constructs kernel functions in the SSA IR.
type IRBuilder = ir.Builder

// IRFn is a built kernel function.
type IRFn = ir.Fn

// IROp is an IR instruction opcode.
type IROp = ir.Op

// NewIRBuilder starts a kernel function with the given argument count.
func NewIRBuilder(name string, nargs int) *IRBuilder { return ir.NewBuilder(name, nargs) }

// PPU kernel authoring.

// PPUInstr is one PPU instruction.
type PPUInstr = ppu.Instr

// Assemble parses PPU kernel assembly (see internal/ppu for the dialect).
func Assemble(src string) ([]PPUInstr, error) { return ppu.Assemble(src) }

// MustAssemble is Assemble, panicking on error.
func MustAssemble(src string) []PPUInstr { return ppu.MustAssemble(src) }

// Compiler passes (§6).

// CompilerAlloc hands out kernel ids and filter slots across passes.
type CompilerAlloc = compiler.Alloc

// CompilerResult reports what a pass produced.
type CompilerResult = compiler.Result

// NewCompilerAlloc returns a fresh id allocator for the passes.
func NewCompilerAlloc() *CompilerAlloc { return compiler.NewAlloc() }

// ConvertSoftwarePrefetches runs the paper's Algorithm 1 on fn in place,
// returning the generated PPU kernels.
func ConvertSoftwarePrefetches(fn *IRFn, a *CompilerAlloc) (*CompilerResult, error) {
	return compiler.ConvertSoftwarePrefetches(fn, a)
}

// GeneratePragmaEvents runs the §6.4 pragma pass on fn in place.
func GeneratePragmaEvents(fn *IRFn, a *CompilerAlloc) (*CompilerResult, error) {
	return compiler.GeneratePragmaEvents(fn, a)
}

// Disassemble renders a PPU kernel with instruction indices.
func Disassemble(prog []PPUInstr) string { return ppu.Disassemble(prog) }

// IR opcodes usable with IRBuilder.Bin.
const (
	IRAdd    = ir.Add
	IRSub    = ir.Sub
	IRMul    = ir.Mul
	IRDiv    = ir.Div
	IRAnd    = ir.And
	IROr     = ir.Or
	IRXor    = ir.Xor
	IRShl    = ir.Shl
	IRShr    = ir.Shr
	IRCmpEQ  = ir.CmpEQ
	IRCmpNE  = ir.CmpNE
	IRCmpLT  = ir.CmpLT
	IRCmpLTU = ir.CmpLTU
	IRCmpGE  = ir.CmpGE
	IRCmpGEU = ir.CmpGEU
)

// IRValue identifies an SSA value within a function under construction.
type IRValue = ir.Value

// IRNoValue marks an unused operand (e.g. a void return).
const IRNoValue = ir.NoValue

// ParseIR reads the textual IR form produced by (*IRFn).String back into a
// function.
func ParseIR(src string) (*IRFn, error) { return ir.Parse(src) }

// InsertSoftwarePrefetches runs the automatic software-prefetch-insertion
// pass (the paper's reference [2], CGO 2017) on fn in place, returning how
// many indirect loads were instrumented.
func InsertSoftwarePrefetches(fn *IRFn, dist int64) int {
	return compiler.InsertSoftwarePrefetches(fn, dist)
}

// PrefetchTracer is the ring tracer attachable via Options.TraceLast.
type PrefetchTracer = prefetch.RingTracer
