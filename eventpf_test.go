package eventpf_test

import (
	"strings"
	"testing"

	"eventpf"
)

func TestFacadeBenchmarkRoster(t *testing.T) {
	bs := eventpf.Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %d, want 8", len(bs))
	}
	for _, b := range bs {
		got, ok := eventpf.BenchmarkByName(b.Name)
		if !ok || got != b {
			t.Errorf("BenchmarkByName(%s) failed", b.Name)
		}
	}
}

func TestFacadeRunAndSpeedup(t *testing.T) {
	b, _ := eventpf.BenchmarkByName("HJ-2")
	opt := eventpf.Options{Scale: 0.01}
	base, err := eventpf.Run(b, eventpf.NoPF, opt)
	if err != nil {
		t.Fatal(err)
	}
	man, err := eventpf.Run(b, eventpf.Manual, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s := eventpf.Speedup(base, man); s <= 0 {
		t.Errorf("speedup = %v", s)
	}
}

func TestFacadeIRAndAssembler(t *testing.T) {
	b := eventpf.NewIRBuilder("f", 1)
	e := b.NewBlock("entry")
	b.SetBlock(e)
	v := b.Add(b.Arg(0), b.Const(1))
	b.Ret(v)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	back, err := eventpf.ParseIR(fn.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(back.String(), "add") {
		t.Error("parsed IR lost the add")
	}

	prog, err := eventpf.Assemble("vaddr r1\npf r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Errorf("assembled %d instrs, want 3", len(prog))
	}
	if !strings.Contains(eventpf.Disassemble(prog), "vaddr") {
		t.Error("disassembly missing vaddr")
	}
}

func TestFacadeCompilerPipeline(t *testing.T) {
	// plain indirect loop → auto swpf → conversion, via the facade only.
	b := eventpf.NewIRBuilder("pipe", 3)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	aB, bB, n := b.Arg(0), b.Arg(1), b.Arg(2)
	zero := b.Const(0)
	b.Br(head)
	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	b.CondBr(b.Bin(eventpf.IRCmpLTU, x, n), body, exit)
	b.SetBlock(body)
	three := b.Const(3)
	av := b.Load(b.Add(aB, b.Shl(x, three)), "A")
	bv := b.Load(b.Add(bB, b.Shl(av, three)), "B")
	acc2 := b.Add(acc, bv)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(acc)
	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, acc2)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if n := eventpf.InsertSoftwarePrefetches(fn, 16); n != 1 {
		t.Fatalf("instrumented %d, want 1", n)
	}
	res, err := eventpf.ConvertSoftwarePrefetches(fn, eventpf.NewCompilerAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converted == 0 || len(res.Kernels) == 0 {
		t.Errorf("pipeline produced no kernels: %+v", res)
	}
}

func TestFacadeCustomMachine(t *testing.T) {
	m := eventpf.NewMachine(eventpf.DefaultMachineConfig(), eventpf.MachineProgrammable)
	arr := m.Arena.AllocWords("a", 64)
	m.RegisterKernel(1, eventpf.MustAssemble("vaddr r1\naddi r1, r1, 64\npf r1\nhalt"))
	m.PF.SetRange(0, eventpf.RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: eventpf.NoKernel, EWMAGroup: -1})

	b := eventpf.NewIRBuilder("t", 1)
	e := b.NewBlock("entry")
	b.SetBlock(e)
	v := b.Load(b.Arg(0), "a")
	b.Ret(v)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(m.NewInterp(fn, arr.Base))
	if res.PF.KernelRuns != 1 {
		t.Errorf("kernel runs = %d, want 1", res.PF.KernelRuns)
	}
}
