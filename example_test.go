package eventpf_test

import (
	"fmt"

	"eventpf"
)

// ExampleAssemble shows the figure 4(b) "on_A_load" kernel: on a demand
// load of array A, prefetch two cache lines ahead, chaining to kernel 2.
func ExampleAssemble() {
	prog, err := eventpf.Assemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`)
	if err != nil {
		panic(err)
	}
	fmt.Print(eventpf.Disassemble(prog))
	// Output:
	//   0: vaddr r1
	//   1: addi r1, r1, 128
	//   2: pftag r1, 2
	//   3: halt
}

// ExampleNewIRBuilder builds, prints and reparses a tiny kernel.
func ExampleNewIRBuilder() {
	b := eventpf.NewIRBuilder("double", 1)
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	x := b.Arg(0)
	two := b.Const(2)
	b.Ret(b.Mul(x, two))
	fn, err := b.Finish()
	if err != nil {
		panic(err)
	}
	if _, err := eventpf.ParseIR(fn.String()); err != nil {
		panic(err)
	}
	fmt.Print(fn.String())
	// Output:
	// func double(1 args) {
	// b0 <entry>:
	//   v0 = arg 0
	//   v1 = const 2
	//   v2 = mul v0, v1
	//   ret v2
	// }
}
