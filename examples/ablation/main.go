// Ablation sweeps the prefetcher's design parameters on HJ-8 — the
// benchmark that exercises every structure (chained events, tags, both
// queues, the scheduler) — and prints how the speedup responds, extending
// the paper's evaluation with the sensitivity data DESIGN.md calls out.
package main

import (
	"fmt"
	"log"

	"eventpf"
)

func main() {
	suite := eventpf.NewSuite(eventpf.Options{Scale: 0.05})

	rows, err := suite.Ablations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HJ-8 manual-scheme speedup vs design parameters:")
	last := ""
	for _, r := range rows {
		if r.Parameter != last {
			fmt.Printf("\n  %s:\n", r.Parameter)
			last = r.Parameter
		}
		fmt.Printf("    %6d → %5.2fx\n", r.Value, r.Speedup)
	}

	cs, err := suite.ContextSwitches()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIntSort manual-scheme speedup vs context-switch flushes (§5.3):")
	for _, r := range cs {
		label := "never"
		if r.IntervalCycles > 0 {
			label = fmt.Sprintf("every %d cycles", r.IntervalCycles)
		}
		fmt.Printf("    %-22s → %5.2fx\n", label, r.Speedup)
	}
}
