// Compilerdemo shows the paper's §6 compiler pipeline end to end on the
// Figure 5 loop: first Algorithm 1 applied to hand-written software
// prefetches — the IR before conversion, the IR after (prefetch and its
// address generation gone, configuration instructions in the preheader) and
// the generated PPU event kernels — and then the fully automatic path,
// where the CGO'17 insertion pass writes the software prefetches itself.
package main

import (
	"fmt"
	"log"

	"eventpf"
)

func main() {
	fn := buildFigure5a()
	fmt.Println("=== IR before conversion (figure 5a) ===")
	fmt.Println(fn.String())

	res, err := eventpf.ConvertSoftwarePrefetches(fn, eventpf.NewCompilerAlloc())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== conversion: %d chain(s) converted, %d kernels ===\n\n",
		res.Converted, len(res.Kernels))

	fmt.Println("=== IR after conversion ===")
	fmt.Println(fn.String())

	for id := 1; id <= len(res.Kernels); id++ {
		fmt.Printf("=== PPU kernel %d ===\n%s\n", id, eventpf.Disassemble(res.Kernels[id]))
	}

	// The fully automatic pipeline: no annotations at all.
	plain := buildFigure5Plain()
	n := eventpf.InsertSoftwarePrefetches(plain, 16)
	res2, err := eventpf.ConvertSoftwarePrefetches(plain, eventpf.NewCompilerAlloc())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== automatic pipeline (plain loop, no annotations) ===\n")
	fmt.Printf("inserted %d software-prefetch chain(s); converted %d into %d kernels\n",
		n, res2.Converted, len(res2.Kernels))
}

// buildFigure5Plain is figure 5 without any prefetching at all.
func buildFigure5Plain() *eventpf.IRFn {
	b := eventpf.NewIRBuilder("fig5plain", 4)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	aB, bB, cB, n := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	cond := b.Bin(eventpf.IRCmpLTU, x, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	three := b.Const(3)
	av := b.Load(b.Add(aB, b.Shl(x, three)), "A")
	bv := b.Load(b.Add(bB, b.Shl(av, three)), "B")
	cv := b.Load(b.Add(cB, b.Shl(bv, three)), "C")
	acc2 := b.Add(acc, cv)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, acc2)
	fn, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return fn
}

// buildFigure5a: for (x = 0; x < N; x++) { swpf(&C[B[A[x+16]]]); acc += C[B[A[x]]]; }
func buildFigure5a() *eventpf.IRFn {
	b := eventpf.NewIRBuilder("fig5a", 4)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	aB, bB, cB, n := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	cond := b.Bin(eventpf.IRCmpLTU, x, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	three := b.Const(3)
	dist := b.Const(16)
	xd := b.Add(x, dist)
	avD := b.Load(b.Add(aB, b.Shl(xd, three)), "A")
	bvD := b.Load(b.Add(bB, b.Shl(avD, three)), "B")
	b.SWPf(b.Add(cB, b.Shl(bvD, three)), "C")

	av := b.Load(b.Add(aB, b.Shl(x, three)), "A")
	bv := b.Load(b.Add(bB, b.Shl(av, three)), "B")
	cv := b.Load(b.Add(cB, b.Shl(bv, three)), "C")
	acc2 := b.Add(acc, cv)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, acc2)

	fn, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return fn
}
