// Graphbfs runs the Graph500 CSR breadth-first search with the manual event
// kernels and shows what the prefetcher machinery did: per-PPU activity
// factors (the paper's Figure 10 for one benchmark), kernel/event counts and
// the effect on cache hit rates.
package main

import (
	"fmt"
	"log"
	"strings"

	"eventpf"
)

func main() {
	bench, ok := eventpf.BenchmarkByName("G500-CSR")
	if !ok {
		log.Fatal("benchmark missing")
	}
	opt := eventpf.Options{Scale: 0.25}

	base, err := eventpf.Run(bench, eventpf.NoPF, opt)
	if err != nil {
		log.Fatal(err)
	}
	man, err := eventpf.Run(bench, eventpf.Manual, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("G500-CSR breadth-first search (scale %.2f)\n\n", opt.Scale)
	fmt.Printf("%-28s %12d cycles\n", "no prefetching:", base.Cycles)
	fmt.Printf("%-28s %12d cycles  (%.2fx)\n\n", "manual event kernels:",
		man.Cycles, eventpf.Speedup(base, man))

	fmt.Printf("L1 read hit rate: %.2f -> %.2f\n", base.L1.ReadHitRate(), man.L1.ReadHitRate())
	fmt.Printf("L2 read hit rate: %.2f -> %.2f\n", base.L2.ReadHitRate(), man.L2.ReadHitRate())
	fmt.Printf("events handled:   %d (of which %d fills)\n",
		man.PF.KernelRuns, man.PF.FillObservations)
	fmt.Printf("prefetches:       %d issued, %d dropped on overflow\n\n",
		man.PF.Issued, man.PF.ReqDropped+man.PF.MSHRDrops+man.PF.TLBDrops)

	fmt.Println("PPU activity factors (lowest-id-first scheduling, §7.2):")
	for i, a := range man.Activity {
		bar := strings.Repeat("#", int(a*50))
		fmt.Printf("  ppu%-2d %5.2f %s\n", i, a, bar)
	}
}
