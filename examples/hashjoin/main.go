// Hashjoin demonstrates the full custom-workload path of the library: it
// builds the paper's Figure 1 hash-join probe from scratch — data in the
// machine's functional memory, the timed kernel in the SSA IR, and
// hand-written PPU event kernels forming the key → bucket → node chain —
// then compares execution with and without the programmable prefetcher.
package main

import (
	"fmt"
	"log"

	"eventpf"
)

const (
	nTuples = 1 << 14
	hashMul = 0x9E3779B97F4A7C15
	logNB   = 11 // 2048 buckets → ~8 tuples per chain
	shift   = 64 - logNB
)

func main() {
	base := run(false)
	pf := run(true)
	fmt.Printf("\nno prefetcher:           %8d cycles\n", base)
	fmt.Printf("programmable prefetcher: %8d cycles  → %.2fx speedup\n",
		pf, float64(base)/float64(pf))
}

// run builds the machine + data + kernel and returns the cycle count.
func run(prefetcher bool) int64 {
	scheme := eventpf.MachineNoPF
	if prefetcher {
		scheme = eventpf.MachineProgrammable
	}
	m := eventpf.NewMachine(eventpf.DefaultMachineConfig(), scheme)

	// Build relation R as a chained hash table and the probe keys S.
	skey := m.Arena.AllocWords("skey", nTuples)
	htab := m.Arena.AllocWords("htab", 1<<logNB)
	nodes := m.Arena.AllocWords("nodes", nTuples*8) // one line per node

	seed := uint64(7)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed
	}
	var expected uint64
	for i := uint64(0); i < nTuples; i++ {
		k := next() | 1
		m.Backing.Write64(skey.Base+i*8, k)
		h := (k * hashMul) >> shift
		slot := nodes.Base + i*64
		head := htab.Base + h*8
		m.Backing.Write64(slot, k)                         // node.key
		m.Backing.Write64(slot+8, k&0xFF)                  // node.val
		m.Backing.Write64(slot+16, m.Backing.Read64(head)) // node.next
		m.Backing.Write64(head, slot)
		expected += k & 0xFF
	}

	if prefetcher {
		installKernels(m, skey.Base, skey.End(), htab.Base)
	}

	fn := buildProbeKernel()
	it := m.NewInterp(fn, skey.Base, htab.Base, nTuples, hashMul, shift)
	res := m.Run(it)

	got, ok := it.Result()
	if !ok || got != expected {
		log.Fatalf("join result %d (ok=%v), want %d", got, ok, expected)
	}
	return res.Cycles
}

// buildProbeKernel is Figure 1 in IR: for each probe key, hash, fetch the
// bucket head, walk the chain accumulating matching values.
func buildProbeKernel() *eventpf.IRFn {
	b := eventpf.NewIRBuilder("probe", 5)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	wHead := b.NewBlock("walk.head")
	wBody := b.NewBlock("walk.body")
	wMatch := b.NewBlock("walk.match")
	wLatch := b.NewBlock("walk.latch")
	wExit := b.NewBlock("walk.exit")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	skeyB, htabB, n, mul, sh := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3), b.Arg(4)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(3)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	cond := b.Bin(eventpf.IRCmpLTU, x, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	k := b.Load(b.Add(skeyB, b.Shl(x, eight)), "skey")
	h := b.Bin(eventpf.IRShr, b.Mul(k, mul), sh)
	p0 := b.Load(b.Add(htabB, b.Shl(h, eight)), "htab")
	b.Br(wHead)

	b.SetBlock(wHead)
	p := b.Phi()
	wacc := b.Phi()
	alive := b.Bin(eventpf.IRCmpNE, p, zero)
	b.CondBr(alive, wBody, wExit)

	b.SetBlock(wBody)
	nk := b.Load(p, "nodes")
	isMatch := b.Bin(eventpf.IRCmpEQ, nk, k)
	b.CondBr(isMatch, wMatch, wLatch)

	b.SetBlock(wMatch)
	nv := b.Load(b.Add(p, b.Const(8)), "nodes")
	waccM := b.Add(wacc, nv)
	b.Br(wLatch)

	b.SetBlock(wLatch)
	waccJ := b.Phi()
	b.SetPhiArgs(waccJ, wacc, waccM)
	pn := b.Load(b.Add(p, b.Const(16)), "nodes")
	b.Br(wHead)
	b.SetPhiArgs(p, p0, pn)
	b.SetPhiArgs(wacc, acc, waccJ)

	b.SetBlock(wExit)
	x2 := b.Add(x, one)
	b.Br(head)
	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, wacc)

	b.SetBlock(exit)
	b.Ret(acc)

	fn, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return fn
}

// installKernels programs the prefetcher with the event chain of §5:
// key stream → hashed bucket → node walk.
func installKernels(m *eventpf.Machine, keyLo, keyHi, htabBase uint64) {
	// Event 1, on probe-key loads: fetch the key EWMA-distance ahead.
	m.RegisterKernel(1, eventpf.MustAssemble(`
		ldewma r2, e0
		shli   r2, r2, 3
		vaddr  r1
		add    r1, r1, r2
		pftag  r1, 2
		halt
	`))
	// Event 2: future key arrived; hash it and fetch the bucket head.
	m.RegisterKernel(2, eventpf.MustAssemble(`
		lddata r1
		ldg    r2, g0
		mul    r1, r1, r2
		ldg    r3, g1
		shr    r1, r1, r3
		shli   r1, r1, 3
		ldg    r4, g2
		add    r1, r1, r4
		pftag  r1, 3
		halt
	`))
	// Event 3: bucket head arrived; chase the first node.
	m.RegisterKernel(3, eventpf.MustAssemble(`
		lddata r1
		movi   r2, 0
		beq    r1, r2, done
		pftag  r1, 4
	done:
		halt
	`))
	// Event 4: node arrived; walk to the next node (kernel-level loop the
	// compiler passes cannot express).
	m.RegisterKernel(4, eventpf.MustAssemble(`
		ldlinei r1, 16
		movi    r2, 0
		beq     r1, r2, done
		pftag   r1, 4
	done:
		halt
	`))
	m.PF.SetGlobal(0, hashMul)
	m.PF.SetGlobal(1, shift)
	m.PF.SetGlobal(2, htabBase)
	m.PF.SetRange(0, eventpf.RangeConfig{
		Lo: keyLo, Hi: keyHi,
		LoadKernel: 1, PFKernel: eventpf.NoKernel,
		EWMAGroup: 0, Interval: true, TimedStart: true,
	})
}
