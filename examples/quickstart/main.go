// Quickstart: run one paper benchmark with and without the programmable
// prefetcher and print the headline comparison.
package main

import (
	"fmt"
	"log"

	"eventpf"
)

func main() {
	bench, ok := eventpf.BenchmarkByName("HJ-8")
	if !ok {
		log.Fatal("benchmark missing")
	}
	opt := eventpf.Options{Scale: 0.1}

	base, err := eventpf.Run(bench, eventpf.NoPF, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10d cycles  (L1 hit rate %.2f)\n",
		"no prefetching:", base.Cycles, base.L1.ReadHitRate())

	for _, s := range []eventpf.Scheme{
		eventpf.Stride, eventpf.Software, eventpf.Pragma,
		eventpf.Converted, eventpf.Manual,
	} {
		r, err := eventpf.Run(bench, s, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d cycles  %5.2fx speedup  (L1 hit rate %.2f)\n",
			s.String()+":", r.Cycles, eventpf.Speedup(base, r), r.L1.ReadHitRate())
	}
}
