module eventpf

go 1.23
