// Package adaptive implements online adaptive prefetcher control: a
// controller that hosts several candidate prefetch units ("arms") on one
// machine and, at a fixed decision interval, picks which arm observes the
// L1 demand stream and issues prefetches. The mechanism follows Pythia's
// reward-driven online knob selection and Puppeteer's per-phase prefetcher
// manager: retired micro-ops per interval are the reward, an epsilon-greedy
// bandit with a deterministic seeded RNG exploits the best-reward arm, and
// a two-speed EWMA pair over the L1 miss rate detects phase changes, each
// of which triggers a fresh sweep trialling every arm for one interval.
//
// Structurally the controller is a baseline.Unit like any other hardware
// prefetcher: the system package builds it from the scheme registry, so no
// machine field or switch is adaptive-specific, and the fork/checkpoint
// protocol works unchanged (the controller's pending decision tick is a
// typed remappable handler, its policy state is plain value state).
//
// Gating works at the snoop level. Every candidate unit attaches to the L1
// by chaining a closure onto l1.OnDemandAccess at construction; the
// controller builds each arm with the hook temporarily cleared, captures
// the closure the arm installed, and installs its own dispatcher as the
// real hook. Only the active arm's snoop sees demand accesses, so inactive
// arms neither train nor issue — but their issue queues keep draining
// (in-flight prefetches complete, as they would in hardware) because the
// OnMSHRFree pump chain is left intact.
package adaptive

import (
	"fmt"
	"strings"

	"eventpf/internal/baseline"
	"eventpf/internal/mem"
	"eventpf/internal/prefetch"
	"eventpf/internal/sim"
	"eventpf/internal/stats"
	"eventpf/internal/trace"
)

// PolicyName names the decision policy for benchmark metadata: a sweep on
// every detected phase change, epsilon-greedy exploitation in between.
const PolicyName = "sweep-epsilon-greedy"

// Config sizes the adaptive controller. It is comparable (plain scalars and
// a string), so fork compatibility can reject controller changes with a
// simple inequality, and it rides inside system.Config without making that
// struct uncomparable.
type Config struct {
	// Arms is the comma-separated candidate menu. Recognised names are
	// "off" (no prefetching), "pf" (the machine's programmable prefetcher)
	// and whatever the scheme registration's builder accepts — the default
	// system menu offers "stride", "stride-d2" (degree-2 stride),
	// "ghb-delta", "rpt" and "tskid".
	Arms string
	// IntervalTicks is the decision interval in engine ticks (a core cycle
	// is sim.ClockFromMHz(3200) = 5 ticks).
	IntervalTicks sim.Ticks
	// Epsilon explores a random arm for one interval in every Epsilon
	// decisions (0 disables exploration).
	Epsilon int
	// Seed seeds the exploration RNG; runs with equal seeds are
	// byte-identical.
	Seed uint64
	// TrialIntervals is how many intervals a sweep measures each arm for
	// (after the settle interval).
	TrialIntervals int
	// PfTrialIntervals is the trial length for the "pf" arm. The
	// programmable prefetcher warms up far more slowly than the table
	// prefetchers: its chained kernels must run a full lookahead distance
	// ahead of the core before any benefit shows, which on list-walk
	// workloads is a delayed step ~10 intervals out, invisible to a short
	// trial.
	PfTrialIntervals int
	// PhasePerMille is the fast-over-slow miss-rate EWMA gap (in
	// per-mille of demand accesses) that declares a phase change. The
	// signal is directional: only a rising miss rate fires.
	PhasePerMille int64
	// Cooldown is how many intervals phase detection holds off after a
	// phase change — it must outlast the sweep the change triggers
	// (1 settle + the trial length per arm), so the wildly different miss
	// rates of the arms under trial are not themselves read as phase
	// changes.
	Cooldown int
	// PfIdleIntervals demotes an active "pf" arm after this many
	// consecutive steady-state intervals with heavy demand traffic but zero
	// prefetcher fills (0 disables). The programmable prefetcher's event
	// kernels are range-filtered: when the program leaves the covered data
	// structures the unit goes structurally blind, which no reward or
	// miss-rate signal distinguishes from "working fine" — the miss rate
	// may even fall (the uncovered phase can be cache-friendlier). Zero
	// fills under load is unambiguous, so it triggers a sweep of the other
	// arms; the pf arm sits that sweep out and its provably-stale reward is
	// forgotten.
	PfIdleIntervals int
}

// DefaultConfig returns the default controller: a five-arm menu, a 4000
// core-cycle interval, 1-in-64 exploration, and a 200-per-mille phase
// threshold.
func DefaultConfig() Config {
	return Config{
		Arms:             "off,stride,stride-d2,ghb-delta,pf",
		IntervalTicks:    20000,
		Epsilon:          128,
		Seed:             1,
		TrialIntervals:   3,
		PfTrialIntervals: 24,
		PhasePerMille:    200,
		Cooldown:         40,
		PfIdleIntervals:  4,
	}
}

// ArmNames splits the configured menu.
func (c Config) ArmNames() []string {
	parts := strings.Split(c.Arms, ",")
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// Validate rejects configurations the controller cannot run.
func (c Config) Validate() error {
	if len(c.ArmNames()) < 2 {
		return fmt.Errorf("adaptive: menu %q needs at least two arms", c.Arms)
	}
	if c.IntervalTicks <= 0 {
		return fmt.Errorf("adaptive: interval %d must be positive", c.IntervalTicks)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("adaptive: epsilon %d must not be negative", c.Epsilon)
	}
	if c.TrialIntervals < 1 {
		return fmt.Errorf("adaptive: trial length %d must be at least one interval", c.TrialIntervals)
	}
	if c.PfTrialIntervals < 1 {
		return fmt.Errorf("adaptive: pf trial length %d must be at least one interval", c.PfTrialIntervals)
	}
	if c.PhasePerMille <= 0 {
		return fmt.Errorf("adaptive: phase threshold %d must be positive", c.PhasePerMille)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("adaptive: cooldown %d must not be negative", c.Cooldown)
	}
	if c.PfIdleIntervals < 0 {
		return fmt.Errorf("adaptive: pf idle threshold %d must not be negative", c.PfIdleIntervals)
	}
	return nil
}

// Builder constructs one named candidate unit against the host machine's
// L1/TLB, sized from the machine configuration. It returns nil for an
// unknown name. The system scheme registration supplies it, so this package
// does not depend on the system package's Config.
type Builder func(name string) baseline.Unit

// arm is one hosted candidate: its unit (nil for "off" and "pf") and the L1
// demand snoop it installed at construction (nil for "off").
type arm struct {
	name  string
	unit  baseline.Unit
	snoop func(addr uint64, pc int, hit bool)
}

// ArmIntervals reports how many decision intervals one arm was active.
type ArmIntervals struct {
	Arm       string
	Intervals int64
}

// Stats summarises a run of the controller for the Result record.
type Stats struct {
	Intervals    int64 // decision ticks taken
	Switches     int64 // active-arm changes
	Sweeps       int64 // phase-triggered re-sweeps (the initial sweep is not counted)
	Explores     int64 // epsilon-greedy exploration intervals
	PhaseChanges int64 // phase-detector firings
	IdleDemotes  int64 // pf-arm demotions for issuing nothing under load
	// FinalArm is the arm active when the run finished.
	FinalArm string
	// MissPerMille, AccuracyPerMille and ChainLatTicks are the final sensor
	// EWMA values (miss rate and prefetch accuracy in per-mille, mean
	// generation-to-fill latency in ticks).
	MissPerMille     int64
	AccuracyPerMille int64
	ChainLatTicks    int64
	// ArmIntervals breaks Intervals down per arm, menu order.
	ArmIntervals []ArmIntervals
}

// Unit is the adaptive controller: a baseline.Unit hosting the candidate
// arms and the decision policy.
type Unit struct {
	eng *sim.Engine
	cfg Config
	l1  *mem.Cache
	pf  *prefetch.Prefetcher
	bus *trace.Bus

	arms   []arm
	active int
	// pfArm is the menu index of the "pf" arm, -1 if absent.
	pfArm int

	// Host taps, bound by BindHost: the retired-op counter (reward) and
	// the run-finished predicate (stops the tick re-arming).
	ops  func() int64
	done func() bool

	tickH tickHandler

	// Per-interval sensor accumulators (reset every tick). Demands and
	// misses are counted by the dispatcher itself; the prefetch sensors
	// are deltas of the L1/PF counters since the previous tick.
	intDemands, intMisses int64
	lastOps               int64
	lastUsed, lastDead    int64
	lastFillSum           sim.Ticks
	lastFillCount         int64

	// Phase detector: fast and slow EWMAs over the per-interval miss rate.
	fast, slow stats.EWMA
	// Sensor EWMAs exported for observability (accuracy, chain latency).
	acc, lat stats.EWMA
	// reward holds one ops-per-interval EWMA per arm; Reset on each sweep
	// so stale phases cannot outvote fresh trials.
	reward   []stats.EWMA
	armIvals []int64

	sweeping bool
	trial    int
	// lastSteady is the active arm's reward EWMA at the previous
	// steady-state decision, 0 right after a switch. While the reward is
	// still rising the arm is protected from challenges: a ramping
	// prefetcher's measured reward understates its eventual steady state,
	// and the compounding arms (pf) ramp for a long time.
	lastSteady int64
	// trialMid snapshots the arm-under-trial's reward EWMA at the trial
	// midpoint; trialExt counts extensions granted because the end value
	// was still above it. Only the pf arm earns extensions: it is the one
	// arm whose warm-up outlasts any fixed trial, while for the table
	// prefetchers a mid-vs-end comparison over a short trial is noise.
	trialMid int64
	trialExt int
	// inTrial marks a measured trial of the active arm outside a sweep.
	// Every non-sweep arm change starts one — epsilon-greedy explores and
	// exploit switches alike — so a stale rival reward is always verified
	// by a fresh measurement before it can govern, and can lose the
	// controller at most one trial per program phase.
	inTrial bool
	// meas counts the measured intervals of the current trial (settle
	// intervals excluded).
	meas int
	// settleLeft counts intervals to skip after an arm switch: the
	// pipeline still carries the previous arm's in-flight prefetches, so
	// reward attribution and policy decisions wait them out. Leaving the
	// pf arm needs a longer settle — its chained kernels keep completing
	// (and helping the successor) until the launched chains die out.
	settleLeft int
	// idleIvals counts consecutive steady-state intervals the active pf arm
	// spent blind: heavy demand traffic, zero fills (see PfIdleIntervals).
	idleIvals int
	// skip is the menu index a sweep leaves out (-1 none): an idle-demoted
	// pf arm has just proven it cannot see the current phase, so trialling
	// it again would only waste the longest trial in the sweep.
	skip int
	cool int
	rng  uint64

	stats Stats

	mIntervals, mSwitches, mSweeps, mExplores, mPhases, mIdle *trace.Counter
}

// tickHandler fires the periodic decision tick. A typed pointer-shaped
// handler (like the machine's context-switch flush) so the pending tick
// survives a machine fork via remap translation.
type tickHandler struct{ u *Unit }

// Handle implements sim.Handler.
func (h tickHandler) Handle(at sim.Ticks, _, _ uint64) { h.u.tick(at) }

// New builds the controller. It must run after the machine's programmable
// prefetcher has installed its L1 hooks (the "pf" arm is the snoop found on
// the cache at entry) and before anything else touches l1.OnDemandAccess.
// Invalid configurations and unknown arm names panic: the menu is machine
// configuration, validated by CLIs before construction.
func New(eng *sim.Engine, cfg Config, l1 *mem.Cache, pf *prefetch.Prefetcher, build Builder) *Unit {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	u := &Unit{
		eng:  eng,
		cfg:  cfg,
		l1:   l1,
		pf:   pf,
		fast: stats.NewEWMA(2),
		slow: stats.NewEWMA(8),
		acc:  stats.NewEWMA(4),
		lat:  stats.NewEWMA(4),
		rng:  cfg.Seed,
		// The run opens with a sweep (every arm gets one trial), under
		// cooldown so the sweep's own miss-rate churn cannot fire the
		// phase detector.
		sweeping: true,
		cool:     cfg.Cooldown,
	}
	u.tickH.u = u
	u.pfArm = -1
	u.skip = -1

	pfSnoop := l1.OnDemandAccess
	for _, name := range cfg.ArmNames() {
		switch name {
		case "off":
			u.arms = append(u.arms, arm{name: name})
		case "pf":
			if pf == nil || pfSnoop == nil {
				panic("adaptive: \"pf\" arm requires the programmable prefetcher")
			}
			if u.pfArm < 0 {
				u.pfArm = len(u.arms)
			}
			u.arms = append(u.arms, arm{name: name, snoop: pfSnoop})
		default:
			l1.OnDemandAccess = nil
			unit := build(name)
			if unit == nil {
				panic(fmt.Sprintf("adaptive: unknown arm %q in menu %q", name, cfg.Arms))
			}
			u.arms = append(u.arms, arm{name: name, unit: unit, snoop: l1.OnDemandAccess})
		}
	}
	u.reward = make([]stats.EWMA, len(u.arms))
	for i := range u.reward {
		u.reward[i] = stats.NewEWMA(2)
	}
	u.armIvals = make([]int64, len(u.arms))
	l1.OnDemandAccess = u.onDemand
	return u
}

// BindHost connects the controller to its host machine — ops reads the
// core's retired micro-op counter (the reward signal), done reports whether
// the run has finished (so the tick stops re-arming and the engine can
// drain) — and arms the first decision tick. The system package calls it
// once the core exists.
func (u *Unit) BindHost(ops func() int64, done func() bool) {
	u.ops = ops
	u.done = done
	u.eng.ScheduleAfter(u.cfg.IntervalTicks, u.tickH, 0, 0)
}

// onDemand is the L1 demand-stream dispatcher: it counts the interval's
// sensor inputs and forwards the access to the active arm only.
func (u *Unit) onDemand(addr uint64, pc int, hit bool) {
	u.intDemands++
	if !hit {
		u.intMisses++
	}
	if s := u.arms[u.active].snoop; s != nil {
		s(addr, pc, hit)
	}
}

// tick is one controller decision.
func (u *Unit) tick(at sim.Ticks) {
	if u.done() {
		return // run over: let the engine drain
	}
	u.stats.Intervals++
	u.mIntervals.Inc()
	u.armIvals[u.active]++

	cur := u.ops()
	gained := cur - u.lastOps
	u.lastOps = cur

	demands, fills := u.observeSensors()
	if u.cool > 0 {
		u.cool--
	}
	if u.settleLeft > 0 {
		// Mixed-pipeline interval after a switch: measure nothing, decide
		// nothing; the next interval is attributed cleanly.
		u.settleLeft--
		u.eng.ScheduleAfter(u.cfg.IntervalTicks, u.tickH, 0, 0)
		return
	}
	u.observeReward(u.active, gained)

	if u.cfg.PfIdleIntervals > 0 && u.active == u.pfArm && !u.sweeping && !u.inTrial &&
		demands >= idleMinDemands && fills == 0 {
		u.idleIvals++
	} else {
		u.idleIvals = 0
	}

	// Directional phase signal: the detector fires only when the miss
	// rate is rising — the program entered territory the active arm
	// handles worse, so everything should be re-trialled. A falling miss
	// rate is the active arm doing its job (prefetcher ramp-up looks
	// exactly like that) and is no reason to abandon it; switches toward
	// arms that merely look better elsewhere go through challenger().
	delta := u.fast.Value() - u.slow.Value()
	switch {
	// The phase EWMAs reset on every switch (a different arm means a
	// different miss-rate baseline, not a different program phase), so the
	// detector additionally waits for the slow EWMA to re-warm.
	case u.cool == 0 && u.slow.Samples() >= phaseWarm && delta >= u.cfg.PhasePerMille:
		u.stats.PhaseChanges++
		u.mPhases.Inc()
		u.bus.Emit(trace.Event{At: at, Kind: trace.AdaptivePhase,
			A: int32(u.fast.Value()), B: int32(u.slow.Value()), C: -1})
		u.cool = u.cfg.Cooldown
		u.startSweep(at, -1)
	case u.cool == 0 && u.idleIvals >= u.cfg.PfIdleIntervals:
		// The pf arm is structurally blind to this phase: demand traffic is
		// heavy and it has issued nothing for PfIdleIntervals straight.
		// Re-trial everything else; its stale reward is meaningless here.
		u.stats.IdleDemotes++
		u.mIdle.Inc()
		u.bus.Emit(trace.Event{At: at, Kind: trace.AdaptivePhase,
			A: int32(u.fast.Value()), B: int32(u.slow.Value()), C: 1})
		u.cool = u.cfg.Cooldown
		u.idleIvals = 0
		u.startSweep(at, u.pfArm)
	case u.sweeping:
		u.meas++
		if u.meas < u.trialLen(u.active) {
			break // keep measuring this arm
		}
		u.meas = 0
		u.trial++
		if u.trial == u.skip {
			u.trial++
		}
		if u.trial < len(u.arms) {
			u.activate(at, u.trial, trace.SwitchSweep)
		} else {
			u.sweeping = false
			u.activate(at, u.decide(), trace.SwitchExploit)
		}
	case u.inTrial:
		u.meas++
		if u.meas == (u.trialLen(u.active)+1)/2 {
			u.trialMid = u.reward[u.active].Value()
		}
		if u.meas < u.trialLen(u.active) {
			break // keep measuring the arm under trial
		}
		if u.active == u.pfArm && u.trialExt < maxTrialExt && u.reward[u.active].Value() > u.trialMid {
			// Still climbing at the end of the trial: a verdict now would
			// understate the arm. Grant another trial length.
			u.trialExt++
			u.meas = 0
			break
		}
		u.inTrial, u.meas = false, 0
		if b := u.decide(); b != u.active {
			u.startTrial(at, b, trace.SwitchExploit)
		}
	case u.cfg.Epsilon > 0 && u.rnd()%uint64(u.cfg.Epsilon) == 0:
		u.stats.Explores++
		u.mExplores.Inc()
		u.startTrial(at, int(u.rnd()%uint64(len(u.arms))), trace.SwitchExplore)
	default:
		v := u.reward[u.active].Value()
		rising := v > u.lastSteady
		u.lastSteady = v
		if rising {
			break // still ramping: hold the arm, re-decide once it plateaus
		}
		if b := u.challenger(); b != u.active {
			u.startTrial(at, b, trace.SwitchExploit)
		}
	}
	u.eng.ScheduleAfter(u.cfg.IntervalTicks, u.tickH, 0, 0)
}

// idleMinDemands is the demand-access floor below which an interval says
// nothing about the pf arm being idle: a quiet core produces no fills from
// any prefetcher.
const idleMinDemands = 64

// observeSensors folds the interval's sensor inputs into the EWMAs: the
// dispatcher-counted miss rate (phase signal), and the L1/PF counter deltas
// for prefetch accuracy and chain latency. It returns the interval's demand
// and prefetcher-fill counts for the idle detector.
func (u *Unit) observeSensors() (demands, fills int64) {
	demands = u.intDemands
	var mr int64
	if u.intDemands > 0 {
		mr = u.intMisses * 1000 / u.intDemands
	}
	u.intDemands, u.intMisses = 0, 0
	u.fast.Observe(mr)
	u.slow.Observe(mr)

	used := u.l1.Stats.PrefetchUsed - u.lastUsed
	dead := u.l1.Stats.PrefetchDead - u.lastDead
	u.lastUsed, u.lastDead = u.l1.Stats.PrefetchUsed, u.l1.Stats.PrefetchDead
	if used+dead > 0 {
		u.acc.Observe(used * 1000 / (used + dead))
	}
	if u.pf != nil {
		fills = u.pf.Stats.FillCount - u.lastFillCount
		lat := u.pf.Stats.FillLatencySum - u.lastFillSum
		u.lastFillCount, u.lastFillSum = u.pf.Stats.FillCount, u.pf.Stats.FillLatencySum
		if fills > 0 {
			u.lat.Observe(int64(lat) / fills)
		}
	}
	return demands, fills
}

// phaseWarm is how many post-switch miss-rate samples the slow EWMA needs
// before the phase detector trusts the fast/slow gap again.
const phaseWarm = 8

// observeReward folds one interval's retired-op count into arm i's reward
// EWMA, winsorised at twice the current average: single-interval spikes
// (invocation boundaries retire queued work in a burst) must not freeze an
// inflated reward onto an arm, while a genuine sustained improvement still
// gets through — consecutive high samples raise the cap geometrically.
func (u *Unit) observeReward(i int, gained int64) {
	e := &u.reward[i]
	if e.Warm() {
		if m := e.Value() * 2; m > 0 && gained > m {
			gained = m
		}
	}
	e.Observe(gained)
}

// maxTrialExt bounds how many times a trial extends while the arm's reward
// is still rising, so a noisy plateau cannot stretch a trial unboundedly.
const maxTrialExt = 4

// startTrial switches to arm i and measures it for its trial length before
// the next decision, extending while the reward still climbs.
func (u *Unit) startTrial(at sim.Ticks, i int, reason int32) {
	u.inTrial = true
	u.meas = 0
	u.trialMid = 0
	u.trialExt = 0
	u.activate(at, i, reason)
}

// decide picks the arm a decision point should run: the best-reward arm,
// except that the "pf" arm wins whenever it is within 25% of that best.
// The bias encodes a real asymmetry a per-trial reward cannot see: the
// programmable prefetcher's benefit compounds with tenure — its chained
// kernels run further and further ahead of the core the longer it stays
// active — so a trial-length measurement systematically understates it,
// while the table prefetchers show their steady state almost immediately.
// An arm that beats pf by more than the margin still wins.
func (u *Unit) decide() int {
	b := u.best()
	if u.pfArm >= 0 && b != u.pfArm && u.reward[u.pfArm].Warm() &&
		u.reward[u.pfArm].Value()*5 >= u.reward[b].Value()*4 {
		return u.pfArm
	}
	return b
}

// challenger returns the arm that should displace the steady-state active
// arm. A rival's (possibly stale) reward must beat the active arm's fresh
// one by more than 12.5% — steady state should not flap on noise — except
// for the pf arm, whose challenge rides the decide() tenure bias; either
// way the switch starts a verification trial, so a spurious challenge
// costs one trial and refreshes the rival's reward.
func (u *Unit) challenger() int {
	c := u.decide()
	if c == u.active {
		return u.active
	}
	if c == u.pfArm || u.reward[c].Value()*8 > u.reward[u.active].Value()*9 {
		return c
	}
	return u.active
}

// trialLen is the measured length of a trial of arm i.
func (u *Unit) trialLen(i int) int {
	if u.arms[i].name == "pf" {
		return u.cfg.PfTrialIntervals
	}
	return u.cfg.TrialIntervals
}

// startSweep begins trialling every arm in turn, forgetting the previous
// phase's rewards. A non-negative skip leaves that arm out of the sweep
// entirely: with its reward reset and never re-warmed, best() and decide()
// cannot return to it until a later sweep or exploration re-measures it.
func (u *Unit) startSweep(at sim.Ticks, skip int) {
	u.stats.Sweeps++
	u.mSweeps.Inc()
	u.sweeping = true
	u.inTrial = false
	u.skip = skip
	u.trial = 0
	u.meas = 0
	for i := range u.reward {
		u.reward[i].Reset()
	}
	if u.trial == u.skip {
		u.trial++
	}
	u.activate(at, u.trial, trace.SwitchSweep)
}

// best returns the warmed arm with the highest reward EWMA, ties broken to
// the lowest menu index (deterministic).
func (u *Unit) best() int {
	bi, bv := 0, int64(-1)
	for i := range u.reward {
		if !u.reward[i].Warm() {
			continue
		}
		if v := u.reward[i].Value(); v > bv {
			bv, bi = v, i
		}
	}
	return bi
}

// activate switches the active arm, emitting the decision as a trace event
// and counting it.
func (u *Unit) activate(at sim.Ticks, i int, reason int32) {
	if i == u.active {
		return
	}
	u.stats.Switches++
	u.mSwitches.Inc()
	u.bus.Emit(trace.Event{At: at, Kind: trace.AdaptiveSwitch,
		A: int32(u.active), B: int32(i), C: reason})
	u.settleLeft = 1
	if u.arms[u.active].name == "pf" && u.arms[i].name != "pf" {
		u.settleLeft = 3
	}
	u.active = i
	u.lastSteady = 0
	// The miss-rate baseline belongs to the outgoing arm; re-warm the
	// phase detector against the incoming one.
	u.fast.Reset()
	u.slow.Reset()
}

// rnd steps the seeded splitmix64 exploration RNG.
func (u *Unit) rnd() uint64 {
	u.rng += 0x9E3779B97F4A7C15
	z := u.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ActiveArm returns the name of the currently active arm.
func (u *Unit) ActiveArm() string { return u.arms[u.active].name }

// Stats implements baseline.Unit: the hosted arms' issue counters, summed.
func (u *Unit) Stats() baseline.IssuerStats {
	var t baseline.IssuerStats
	for _, a := range u.arms {
		if a.unit == nil {
			continue
		}
		s := a.unit.Stats()
		t.Generated += s.Generated
		t.Issued += s.Issued
		t.TLBDrops += s.TLBDrops
		t.QueueDrop += s.QueueDrop
	}
	return t
}

// ControllerStats snapshots the controller's run summary for the Result.
func (u *Unit) ControllerStats() Stats {
	s := u.stats
	s.FinalArm = u.arms[u.active].name
	s.MissPerMille = u.slow.Value()
	s.AccuracyPerMille = u.acc.Value()
	s.ChainLatTicks = u.lat.Value()
	s.ArmIntervals = make([]ArmIntervals, len(u.arms))
	for i, a := range u.arms {
		s.ArmIntervals[i] = ArmIntervals{Arm: a.name, Intervals: u.armIvals[i]}
	}
	return s
}

// AttachTrace points decision-event emission at bus (nil-safe, like every
// component's bus).
func (u *Unit) AttachTrace(bus *trace.Bus) { u.bus = bus }

// AttachMetrics registers the adaptive_* counters with reg.
func (u *Unit) AttachMetrics(reg *trace.Registry) {
	u.mIntervals = reg.Counter("adaptive_intervals")
	u.mSwitches = reg.Counter("adaptive_switches")
	u.mSweeps = reg.Counter("adaptive_sweeps")
	u.mExplores = reg.Counter("adaptive_explores")
	u.mPhases = reg.Counter("adaptive_phase_changes")
	u.mIdle = reg.Counter("adaptive_idle_demotions")
}
