package adaptive

import (
	"strings"
	"testing"
)

func TestDefaultConfigValidates(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestArmNames(t *testing.T) {
	c := Config{Arms: " off , stride,,pf "}
	got := c.ArmNames()
	want := []string{"off", "stride", "pf"}
	if len(got) != len(want) {
		t.Fatalf("ArmNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArmNames = %v, want %v", got, want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"one-arm menu", func(c *Config) { c.Arms = "pf" }, "at least two arms"},
		{"empty menu", func(c *Config) { c.Arms = " , " }, "at least two arms"},
		{"zero interval", func(c *Config) { c.IntervalTicks = 0 }, "interval"},
		{"negative epsilon", func(c *Config) { c.Epsilon = -1 }, "epsilon"},
		{"zero trial", func(c *Config) { c.TrialIntervals = 0 }, "trial length"},
		{"zero pf trial", func(c *Config) { c.PfTrialIntervals = 0 }, "pf trial length"},
		{"zero phase threshold", func(c *Config) { c.PhasePerMille = 0 }, "phase threshold"},
		{"negative cooldown", func(c *Config) { c.Cooldown = -1 }, "cooldown"},
		{"negative idle threshold", func(c *Config) { c.PfIdleIntervals = -1 }, "idle threshold"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, c)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}
