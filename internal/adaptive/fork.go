package adaptive

import (
	"fmt"

	"eventpf/internal/baseline"
	"eventpf/internal/sim"
)

// Fork support. The controller's dispatcher and the arms' snoop closures are
// rebuilt identically by the fork's own constructor (same menu, same order),
// so only value state is copied: the policy scalars, the sensor and reward
// EWMAs, the RNG and the hosted arms' own state, pairwise. The pending
// decision tick lives in the parent's event queue and re-targets the fork
// through the registered tickH pair; the tick the fork's constructor armed
// is discarded when the fork's event queue is overwritten by the parent's.

// RegisterFork records the controller's handler pairs for a fork: its own
// decision tick plus every hosted arm's handlers, pairwise.
func (u *Unit) RegisterFork(src baseline.Unit, remap *sim.Remap) error {
	su, ok := src.(*Unit)
	if !ok {
		return fmt.Errorf("adaptive: fork of %T into %T", src, u)
	}
	if len(u.arms) != len(su.arms) {
		return fmt.Errorf("adaptive: fork across different menus (%d vs %d arms)", len(su.arms), len(u.arms))
	}
	remap.Register(su.tickH, u.tickH)
	for i := range u.arms {
		if (u.arms[i].unit == nil) != (su.arms[i].unit == nil) || u.arms[i].name != su.arms[i].name {
			return fmt.Errorf("adaptive: fork arm %d mismatch (%q vs %q)", i, su.arms[i].name, u.arms[i].name)
		}
		if u.arms[i].unit == nil {
			continue
		}
		if err := u.arms[i].unit.RegisterFork(su.arms[i].unit, remap); err != nil {
			return fmt.Errorf("adaptive: arm %q: %w", u.arms[i].name, err)
		}
	}
	return nil
}

// CopyStateFrom deep-copies the controller and every hosted arm.
func (u *Unit) CopyStateFrom(src baseline.Unit) error {
	su, ok := src.(*Unit)
	if !ok {
		return fmt.Errorf("adaptive: fork of %T into %T", src, u)
	}
	if len(u.arms) != len(su.arms) {
		return fmt.Errorf("adaptive: fork across different menus (%d vs %d arms)", len(su.arms), len(u.arms))
	}
	u.active = su.active
	u.intDemands, u.intMisses = su.intDemands, su.intMisses
	u.lastOps = su.lastOps
	u.lastUsed, u.lastDead = su.lastUsed, su.lastDead
	u.lastFillSum, u.lastFillCount = su.lastFillSum, su.lastFillCount
	u.fast, u.slow, u.acc, u.lat = su.fast, su.slow, su.acc, su.lat
	u.reward = append(u.reward[:0], su.reward...)
	u.armIvals = append(u.armIvals[:0], su.armIvals...)
	u.sweeping, u.inTrial, u.trial, u.meas = su.sweeping, su.inTrial, su.trial, su.meas
	u.trialMid, u.trialExt = su.trialMid, su.trialExt
	u.cool, u.rng = su.cool, su.rng
	u.settleLeft = su.settleLeft
	u.idleIvals, u.skip = su.idleIvals, su.skip
	u.lastSteady = su.lastSteady
	u.stats = su.stats
	for i := range u.arms {
		if u.arms[i].unit == nil {
			continue
		}
		if err := u.arms[i].unit.CopyStateFrom(su.arms[i].unit); err != nil {
			return fmt.Errorf("adaptive: arm %q: %w", u.arms[i].name, err)
		}
	}
	return nil
}
