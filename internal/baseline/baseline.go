// Package baseline implements the two hardware prefetchers the paper
// compares against (Table 1): a Chen–Baer reference-prediction-table stride
// prefetcher with degree 8, and a Nesbit–Smith global-history-buffer Markov
// prefetcher in "regular" (SRAM-sized) and "large" (1 GiB-state) variants.
// Both observe the L1's demand stream and inject prefetch requests through
// a shared TLB-translating issuer, so their traffic competes for the same
// MSHRs and DRAM banks as everything else.
package baseline

import (
	"eventpf/internal/mem"
	"eventpf/internal/sim"
)

// IssuerStats counts baseline prefetch traffic.
type IssuerStats struct {
	Generated int64
	Issued    int64
	TLBDrops  int64
	QueueDrop int64
}

// issuer queues prefetch addresses and drains them into the L1 through the
// TLB, one translation at a time, exactly like the programmable prefetcher's
// request queue (§4.6) so comparisons are apples to apples.
type issuer struct {
	eng     *sim.Engine
	l1      *mem.Cache
	tlb     *mem.TLB
	queue   []uint64
	limit   int
	pumping bool
	transH  issuerTransHandler
	stats   IssuerStats
}

// issuerTransHandler receives the queued prefetch's translation; a is the
// target address (one translation in flight at a time, so the address rides
// in the event payload and no record table is needed).
type issuerTransHandler struct{ is *issuer }

func (h issuerTransHandler) Handle(_ sim.Ticks, a, ok uint64) {
	is := h.is
	is.pumping = false
	if ok == 0 {
		is.stats.TLBDrops++
	} else if is.l1.FreeMSHRs() > 0 {
		is.stats.Issued++
		req := is.l1.Pool.Get()
		req.Addr, req.Kind, req.PC = a, mem.Prefetch, -1
		req.Tag, req.TimedAt = mem.NoTag, -1
		is.l1.Access(req)
	}
	is.pump()
}

func newIssuer(eng *sim.Engine, l1 *mem.Cache, tlb *mem.TLB, limit int) *issuer {
	is := &issuer{eng: eng, l1: l1, tlb: tlb, limit: limit}
	is.transH.is = is
	prev := l1.OnMSHRFree
	l1.OnMSHRFree = func() {
		if prev != nil {
			prev()
		}
		is.pump()
	}
	return is
}

func (is *issuer) push(addr uint64) {
	is.stats.Generated++
	if len(is.queue) >= is.limit {
		is.stats.QueueDrop++
		return
	}
	is.queue = append(is.queue, addr)
	is.pump()
}

func (is *issuer) pump() {
	if is.pumping || len(is.queue) == 0 || is.l1.FreeMSHRs() == 0 {
		return
	}
	is.pumping = true
	addr := is.queue[0]
	n := copy(is.queue, is.queue[1:])
	is.queue = is.queue[:n]
	is.tlb.TranslateTo(addr, is.transH, addr)
}

// StrideConfig sizes the reference prediction table.
type StrideConfig struct {
	Entries int // table entries, indexed by load PC
	Degree  int // prefetch degree (Table 1: 8)
	Queue   int
}

// DefaultStrideConfig returns the Table 1 stride prefetcher.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{Entries: 256, Degree: 8, Queue: 64}
}

type rptState uint8

const (
	rptInitial rptState = iota
	rptTransient
	rptSteady
	rptNoPred
)

type rptEntry struct {
	pc       int
	lastAddr uint64
	stride   int64
	state    rptState
	lastTgt  uint64 // furthest line already prefetched, to avoid re-issue
}

// Stride is the reference-prediction-table prefetcher [Chen & Baer].
type Stride struct {
	cfg   StrideConfig
	table []rptEntry
	is    *issuer
}

// NewStride attaches a stride prefetcher to the L1's demand snoop.
func NewStride(eng *sim.Engine, cfg StrideConfig, l1 *mem.Cache, tlb *mem.TLB) *Stride {
	s := &Stride{cfg: cfg, table: make([]rptEntry, cfg.Entries), is: newIssuer(eng, l1, tlb, cfg.Queue)}
	prev := l1.OnDemandAccess
	l1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if prev != nil {
			prev(addr, pc, hit)
		}
		s.observe(addr, pc)
	}
	return s
}

// Stats returns issue counters.
func (s *Stride) Stats() IssuerStats { return s.is.stats }

func (s *Stride) observe(addr uint64, pc int) {
	if pc < 0 {
		return
	}
	e := &s.table[pc%len(s.table)]
	if e.pc != pc {
		*e = rptEntry{pc: pc, lastAddr: addr, state: rptInitial}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	switch {
	case stride == 0:
		// Same address again: no information.
		return
	case stride == e.stride:
		if e.state < rptSteady {
			e.state++
		} else {
			e.state = rptSteady
		}
	default:
		if e.state == rptSteady {
			e.state = rptInitial
		} else {
			e.state = rptNoPred
		}
		e.stride = stride
		e.lastAddr = addr
		return
	}
	e.lastAddr = addr
	if e.state != rptSteady {
		return
	}
	// Steady: cover the next Degree strides, skipping lines already covered.
	last := e.lastTgt
	for d := 1; d <= s.cfg.Degree; d++ {
		tgt := uint64(int64(addr) + int64(d)*e.stride)
		line := mem.LineAddr(tgt)
		if line == mem.LineAddr(addr) || (last != 0 && sameDirectionCovered(e.stride, line, last)) {
			continue
		}
		s.is.push(tgt)
		e.lastTgt = line
	}
}

func sameDirectionCovered(stride int64, line, last uint64) bool {
	if stride > 0 {
		return line <= last
	}
	return line >= last
}

// GHBConfig sizes the Markov global-history-buffer prefetcher.
type GHBConfig struct {
	IndexSize int // index table entries (hashed by miss address)
	GHBSize   int // history buffer entries
	Depth     int // total prefetches per trigger (Table 1: 16)
	Width     int // prior occurrences examined (Table 1: 6)
	Queue     int
}

// RegularGHBConfig is the SRAM-sized configuration from Table 1.
func RegularGHBConfig() GHBConfig {
	return GHBConfig{IndexSize: 2048, GHBSize: 2048, Depth: 16, Width: 6, Queue: 64}
}

// LargeGHBConfig models the 1 GiB-state study variant: effectively unbounded
// history with zero-latency state access.
func LargeGHBConfig() GHBConfig {
	return GHBConfig{IndexSize: 1 << 26, GHBSize: 1 << 26, Depth: 16, Width: 6, Queue: 64}
}

type ghbEntry struct {
	line uint64
	prev int32 // index of previous occurrence of the same line, -1 if none
}

// GHB is a global-history-buffer Markov prefetcher (G/AC organisation):
// misses are appended to a circular history buffer, linked by address; on a
// miss, the successors of prior occurrences of the same address are
// predicted to recur and prefetched.
type GHB struct {
	cfg      GHBConfig
	ghb      []ghbEntry
	head     int // next write position
	count    int
	index    map[uint64]int32 // line -> most recent GHB position
	indexAge []uint64         // insertion order, for deterministic eviction
	is       *issuer
}

// NewGHB attaches a Markov GHB prefetcher to the L1's demand snoop. It
// trains on demand misses only.
func NewGHB(eng *sim.Engine, cfg GHBConfig, l1 *mem.Cache, tlb *mem.TLB) *GHB {
	g := &GHB{
		cfg: cfg,
		// The buffer keeps at most GHBSize entries; the "large" variant's
		// 2^26 is clamped to 2^22, which is still far beyond any working
		// set our reduced inputs generate (i.e. effectively unbounded).
		ghb:   make([]ghbEntry, 0, min(cfg.GHBSize, 1<<22)),
		index: make(map[uint64]int32),
		is:    newIssuer(eng, l1, tlb, cfg.Queue),
	}
	prev := l1.OnDemandAccess
	l1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if prev != nil {
			prev(addr, pc, hit)
		}
		if !hit {
			g.observeMiss(mem.LineAddr(addr))
		}
	}
	return g
}

// Stats returns issue counters.
func (g *GHB) Stats() IssuerStats { return g.is.stats }

func (g *GHB) observeMiss(line uint64) {
	// Predict successors of earlier occurrences of this line, then record
	// the new occurrence.
	budget := g.cfg.Depth
	per := (g.cfg.Depth + g.cfg.Width - 1) / g.cfg.Width
	occ, have := g.lookup(line)
	for w := 0; w < g.cfg.Width && have && budget > 0; w++ {
		for d := 1; d <= per && budget > 0; d++ {
			idx := int(occ) + d
			if e, ok := g.at(idx); ok && e.line != line {
				g.is.push(e.line)
				budget--
			}
		}
		e, ok := g.at(int(occ))
		if !ok || e.prev < 0 {
			break
		}
		if _, ok := g.at(int(e.prev)); !ok {
			break
		}
		occ = e.prev
	}
	g.insert(line)
}

// positions are monotonically increasing virtual indices; the buffer keeps
// the last GHBSize of them.
func (g *GHB) at(pos int) (ghbEntry, bool) {
	if pos >= g.count || pos < g.count-len(g.ghb) || pos < 0 {
		return ghbEntry{}, false
	}
	return g.ghb[pos%cap(g.ghb)], true
}

func (g *GHB) lookup(line uint64) (int32, bool) {
	pos, ok := g.index[line]
	if !ok {
		return 0, false
	}
	if _, live := g.at(int(pos)); !live {
		delete(g.index, line)
		return 0, false
	}
	return pos, true
}

func (g *GHB) insert(line uint64) {
	prev := int32(-1)
	if p, ok := g.lookup(line); ok {
		prev = p
	}
	pos := g.count
	slot := pos % cap(g.ghb)
	if len(g.ghb) < cap(g.ghb) {
		g.ghb = append(g.ghb, ghbEntry{})
	}
	g.ghb[slot] = ghbEntry{line: line, prev: prev}
	g.count++
	if _, ok := g.index[line]; !ok {
		g.indexAge = append(g.indexAge, line)
	}
	g.index[line] = int32(pos)
	// Bound the index for the regular configuration: evict the oldest
	// entries (deterministically) once past capacity.
	for len(g.index) > g.cfg.IndexSize && len(g.indexAge) > 0 {
		victim := g.indexAge[0]
		g.indexAge = g.indexAge[1:]
		if _, ok := g.index[victim]; ok {
			delete(g.index, victim)
		}
	}
}
