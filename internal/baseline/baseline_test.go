package baseline

import (
	"testing"

	"eventpf/internal/mem"
	"eventpf/internal/sim"
)

type stubLevel struct {
	eng     *sim.Engine
	latency sim.Ticks
}

func (s *stubLevel) Access(req *mem.Request) {
	if req.Kind == mem.Writeback {
		return
	}
	if h := req.Completer(); h != nil {
		a := req.CompA
		s.eng.After(s.latency, func() { h.Handle(s.eng.Now(), a, 0) })
	}
}

type fixture struct {
	eng *sim.Engine
	bk  *mem.Backing
	l1  *mem.Cache
	tlb *mem.TLB
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	bk := mem.NewBacking()
	clk := sim.ClockFromMHz(3200)
	l1 := mem.NewCache(eng, clk, mem.CacheConfig{
		Name: "L1", SizeBytes: 32 << 10, Ways: 2, HitCycles: 2, MSHRs: 12,
	}, &stubLevel{eng: eng, latency: 2000})
	tlb := mem.NewTLB(eng, clk, mem.DefaultTLBConfig(), bk)
	return &fixture{eng: eng, bk: bk, l1: l1, tlb: tlb}
}

func (f *fixture) mapRange(lo, hi uint64) {
	for a := mem.PageAddr(lo); a < hi; a += mem.PageSize {
		f.bk.MapPage(a)
	}
}

func (f *fixture) load(addr uint64, pc int) {
	f.l1.Access(&mem.Request{Addr: addr, Kind: mem.Load, PC: pc, Tag: mem.NoTag, TimedAt: -1})
	f.eng.Run()
}

func TestStrideDetectsSteadyStream(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x40000)
	s := NewStride(f.eng, DefaultStrideConfig(), f.l1, f.tlb)

	for i := uint64(0); i < 16; i++ {
		f.load(0x10000+i*64, 7)
	}
	if s.Stats().Issued == 0 {
		t.Fatalf("stride issued nothing: %+v", s.Stats())
	}
	// After training, lines well ahead of the stream should be resident.
	if !f.l1.Contains(0x10000 + 18*64) {
		t.Error("line 2 ahead of the stream not prefetched")
	}
}

func TestStrideIgnoresRandomStream(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x200000)
	s := NewStride(f.eng, DefaultStrideConfig(), f.l1, f.tlb)
	seed := uint64(99)
	for i := 0; i < 50; i++ {
		seed = seed*6364136223846793005 + 1
		f.load(0x10000+(seed%0x1F0000)&^7, 7)
	}
	if got := s.Stats().Issued; got > 5 {
		t.Errorf("stride issued %d prefetches on a random stream", got)
	}
}

func TestStrideTracksNegativeStride(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x40000)
	s := NewStride(f.eng, DefaultStrideConfig(), f.l1, f.tlb)
	for i := 16; i >= 0; i-- {
		f.load(0x20000+uint64(i)*64, 3)
	}
	if s.Stats().Issued == 0 {
		t.Error("no prefetches for negative stride")
	}
}

func TestStrideSeparatePCs(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x100000)
	s := NewStride(f.eng, DefaultStrideConfig(), f.l1, f.tlb)
	// Two interleaved streams from different PCs: both should train.
	for i := uint64(0); i < 12; i++ {
		f.load(0x10000+i*64, 1)
		f.load(0x80000+i*128, 2)
	}
	if !f.l1.Contains(0x10000+13*64) || !f.l1.Contains(0x80000+13*128) {
		t.Errorf("interleaved streams not both prefetched (issued=%d)", s.Stats().Issued)
	}
}

func TestGHBRepredictsRepeatedSequence(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x100000, 0x900000)
	g := NewGHB(f.eng, RegularGHBConfig(), f.l1, f.tlb)

	// An irregular-but-repeating miss sequence. Addresses are far apart so
	// every access misses (no spatial reuse); each full pass repeats the
	// same order, which is exactly what a Markov predictor learns.
	seq := []uint64{0x100000, 0x300040, 0x240080, 0x5000c0, 0x180100, 0x700140}
	for pass := 0; pass < 2; pass++ {
		for _, a := range seq {
			f.load(a, 1)
		}
		// Evict by touching conflicting lines far away (same sets).
		for _, a := range seq {
			f.load(a+1<<21, 2)
			f.load(a+1<<22, 3)
		}
	}
	if g.Stats().Issued == 0 {
		t.Fatalf("GHB issued nothing on repeating sequence: %+v", g.Stats())
	}
}

func TestGHBSilentOnFirstPass(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x100000, 0x400000)
	g := NewGHB(f.eng, RegularGHBConfig(), f.l1, f.tlb)
	for i := uint64(0); i < 40; i++ {
		f.load(0x100000+i*8192+((i*i)%32)*64, 1) // no repeats
	}
	if got := g.Stats().Issued; got != 0 {
		t.Errorf("GHB issued %d prefetches with no history", got)
	}
}

func TestGHBRegularForgetsBeyondCapacity(t *testing.T) {
	f := newFixture(t)
	cfg := RegularGHBConfig()
	cfg.GHBSize = 32
	cfg.IndexSize = 32
	f.mapRange(0x100000, 0x2000000)
	g := NewGHB(f.eng, cfg, f.l1, f.tlb)

	seq := make([]uint64, 100) // far larger than the 32-entry history
	for i := range seq {
		seq[i] = 0x100000 + uint64(i)*128*64
	}
	for pass := 0; pass < 2; pass++ {
		for _, a := range seq {
			f.load(a, 1)
		}
	}
	// With only 32 entries of history over a 100-miss loop, predictions on
	// the second pass are mostly impossible.
	if got := g.Stats().Issued; got > 20 {
		t.Errorf("tiny GHB issued %d prefetches; capacity limit not modelled", got)
	}

	// Control: the large configuration predicts the second pass.
	f2 := newFixture(t)
	f2.mapRange(0x100000, 0x2000000)
	g2 := NewGHB(f2.eng, LargeGHBConfig(), f2.l1, f2.tlb)
	for pass := 0; pass < 2; pass++ {
		for _, a := range seq {
			f2.load(a, 1)
		}
	}
	if g2.Stats().Issued == 0 {
		t.Error("large GHB failed to predict a repeated 100-miss loop")
	}
}

func TestIssuerDropsOnQueueLimit(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x100000)
	is := newIssuer(f.eng, f.l1, f.tlb, 4)
	for i := uint64(0); i < 100; i++ {
		is.push(0x10000 + i*64)
	}
	f.eng.Run()
	if is.stats.QueueDrop == 0 {
		t.Error("no queue drops despite tiny queue limit")
	}
	if is.stats.Issued == 0 {
		t.Error("nothing issued")
	}
}

func TestIssuerDropsUnmapped(t *testing.T) {
	f := newFixture(t)
	is := newIssuer(f.eng, f.l1, f.tlb, 16)
	is.push(0xdeadbeef000)
	f.eng.Run()
	if is.stats.TLBDrops != 1 {
		t.Errorf("TLBDrops = %d, want 1", is.stats.TLBDrops)
	}
}

// Property: the stride prefetcher never prefetches for PCs it has not seen
// at least three accesses from (training discipline).
func TestStrideRequiresTraining(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x40000)
	s := NewStride(f.eng, DefaultStrideConfig(), f.l1, f.tlb)
	f.load(0x10000, 4)
	f.load(0x10040, 4)
	if got := s.Stats().Generated; got != 0 {
		t.Errorf("stride generated %d prefetches after 2 accesses, want 0", got)
	}
}

// Property: GHB predictions never exceed Depth per trigger.
func TestGHBDepthBound(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x100000, 0x4000000)
	cfg := RegularGHBConfig()
	g := NewGHB(f.eng, cfg, f.l1, f.tlb)
	// Many repetitions of a long sequence maximise available history.
	seq := make([]uint64, 40)
	for i := range seq {
		seq[i] = 0x100000 + uint64(i)*8192*8
	}
	for pass := 0; pass < 4; pass++ {
		before := g.Stats().Generated
		for _, a := range seq {
			f.load(a, 1)
		}
		perTrigger := (g.Stats().Generated - before + int64(len(seq)) - 1) / int64(len(seq))
		if perTrigger > int64(cfg.Depth) {
			t.Fatalf("pass %d: %d predictions per trigger > depth %d", pass, perTrigger, cfg.Depth)
		}
	}
}

// The stride prefetcher resets its entry when a different PC aliases into
// the same table slot (tag mismatch), rather than mixing streams.
func TestStrideTagMismatchResets(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x200000)
	cfg := DefaultStrideConfig()
	cfg.Entries = 4 // force aliasing: PCs 1 and 5 share a slot
	s := NewStride(f.eng, cfg, f.l1, f.tlb)
	for i := uint64(0); i < 6; i++ {
		f.load(0x10000+i*64, 1)
		f.load(0x100000+i*4096, 5)
	}
	// Each access evicts the other PC's entry, so neither stream can reach
	// the steady state and nothing may be prefetched.
	if got := s.Stats().Generated; got != 0 {
		t.Errorf("aliasing PCs still generated %d prefetches", got)
	}
}
