package baseline

import "testing"

func TestRPTDetectsSteadyStream(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x40000)
	r := NewRPT(f.eng, DefaultRPTConfig(), f.l1, f.tlb)

	for i := uint64(0); i < 16; i++ {
		f.load(0x10000+i*64, 7)
	}
	if r.Stats().Issued == 0 {
		t.Fatalf("RPT issued nothing on a steady stream: %+v", r.Stats())
	}
	// Lookahead 2, degree 2: lines 2 and 3 ahead should be resident.
	if !f.l1.Contains(0x10000+17*64) || !f.l1.Contains(0x10000+18*64) {
		t.Error("lines ahead of the stream not prefetched")
	}
}

// The four-state automaton must lock an alternating (never-correct) access
// pattern into NoPrediction: after the initial transitions, no prefetches.
func TestRPTNoPredLockout(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x40000)
	r := NewRPT(f.eng, DefaultRPTConfig(), f.l1, f.tlb)
	for i := 0; i < 20; i++ {
		f.load(0x10000, 3)
		f.load(0x10000+64, 3)
	}
	// Initial→Transient→NoPred costs two observations that may each issue up
	// to Degree prefetches; everything after must be silent.
	if got := r.Stats().Generated; got > 2*int64(DefaultRPTConfig().Degree) {
		t.Errorf("RPT generated %d prefetches while alternating; NoPrediction lockout broken", got)
	}
}

// From Steady, one outlier drops only to Initial keeping the stride, so a
// resuming stream re-enters Steady on the next access instead of retraining.
func TestRPTSteadyGraceKeepsStride(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x80000)
	r := NewRPT(f.eng, DefaultRPTConfig(), f.l1, f.tlb)
	for i := uint64(0); i < 8; i++ {
		f.load(0x10000+i*64, 9)
	}
	before := r.Stats().Generated
	f.load(0x40000, 9) // outlier: Steady → Initial, stride kept
	// Resume the stream from the outlier: the very next correct stride must
	// transition Initial → Steady and keep prefetching.
	for i := uint64(1); i < 4; i++ {
		f.load(0x40000+i*64, 9)
	}
	if got := r.Stats().Generated; got <= before {
		t.Errorf("RPT generated no prefetches after the one-outlier grace (before=%d after=%d)",
			before, got)
	}
}

// The delta-correlating GHB predicts a *repeating delta pattern* even though
// every address is new — the case that defeats the Markov (same-address) GHB.
func TestDeltaRepredictsRepeatedDeltaPattern(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x100000, 0x4000000)
	g := NewGHBDelta(f.eng, DefaultDeltaConfig(), f.l1, f.tlb)

	deltas := []uint64{0x1040, 0x2080, 0x30c0} // distinct lines, all misses
	addr := uint64(0x100000)
	for i := 0; i < 12; i++ {
		f.load(addr, 1)
		addr += deltas[i%len(deltas)]
	}
	if g.Stats().Issued == 0 {
		t.Fatalf("delta GHB issued nothing on a repeating delta pattern: %+v", g.Stats())
	}
}

func TestDeltaSilentWithoutRepetition(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x100000, 0x4000000)
	g := NewGHBDelta(f.eng, DefaultDeltaConfig(), f.l1, f.tlb)
	addr := uint64(0x100000)
	for i := uint64(1); i < 40; i++ {
		f.load(addr, 1)
		addr += i * 0x1040 // strictly growing deltas: no delta ever recurs
	}
	if got := g.Stats().Issued; got != 0 {
		t.Errorf("delta GHB issued %d prefetches with no repeating delta", got)
	}
}

// T-SKID learns that accesses by one PC (the trigger) predict a later miss
// by another PC (the target) and prefetches the target's extrapolated line.
func TestTSKIDLearnsTriggerTarget(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x2000000)
	u := NewTSKID(f.eng, DefaultTSKIDConfig(), f.l1, f.tlb)

	// PC 1 touches stream A; a fixed distance later PC 2 misses in stream B.
	for i := uint64(0); i < 24; i++ {
		f.load(0x10000+i*4096, 1)
		f.load(0x1000000+i*4096, 2)
	}
	if u.Stats().Generated == 0 {
		t.Fatalf("T-SKID generated nothing on a trigger→target pattern: %+v", u.Stats())
	}
}

// Timing discipline: a learned delay beyond the lead margin must delay the
// issue rather than firing immediately.
func TestTSKIDDelaysIssue(t *testing.T) {
	f := newFixture(t)
	f.mapRange(0x10000, 0x2000000)
	cfg := DefaultTSKIDConfig()
	u := NewTSKID(f.eng, cfg, f.l1, f.tlb)

	for i := uint64(0); i < 6; i++ {
		f.load(0x10000+i*4096, 1)
		// Let simulated time pass between trigger and target so the learned
		// delay exceeds LeadTicks and the issue path goes through the
		// scheduled handler.
		f.eng.After(4*cfg.LeadTicks, func() {})
		f.eng.Run()
		f.load(0x1000000+i*4096, 2)
	}
	// Trigger once more and stop the stream: the prefetch for the next target
	// line must arrive only after the engine advances past the delay.
	f.load(0x10000+6*4096, 1)
	next := uint64(0x1000000 + 6*4096)
	f.eng.Run() // drains the delayed issue and its memory round trip
	if u.Stats().Generated == 0 {
		t.Fatalf("T-SKID generated nothing: %+v", u.Stats())
	}
	if !f.l1.Contains(next) {
		t.Errorf("target line %#x not prefetched after the learned delay", next)
	}
}
