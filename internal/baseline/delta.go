package baseline

import (
	"eventpf/internal/mem"
	"eventpf/internal/sim"
)

// DeltaConfig sizes the delta-correlating global-history-buffer prefetcher.
type DeltaConfig struct {
	GHBSize int // history buffer entries (miss lines)
	AITSize int // address-index table entries, hashed by delta
	Width   int // prior occurrences of the current delta examined
	Depth   int // predictions replayed per occurrence
	Queue   int
}

// DefaultDeltaConfig mirrors the classic G/DC sizings (1K-entry GHB and
// index, 3-wide × 3-deep fan-out).
func DefaultDeltaConfig() DeltaConfig {
	return DeltaConfig{GHBSize: 1024, AITSize: 1024, Width: 3, Depth: 3, Queue: 64}
}

// deltaEntry is one history slot: the miss line plus a link to the previous
// entry that was reached by the same delta (virtual position, -1 if none).
type deltaEntry struct {
	line uint64
	prev int32
}

// aitSlot maps a delta to the most recent GHB position reached by it.
// Direct-mapped and overwritten on every insert, like the exemplar's AIT.
type aitSlot struct {
	delta int64
	pos   int32
	valid bool
}

// GHBDelta is a delta-correlating global-history-buffer prefetcher (G/DC
// organisation): misses append their line to a circular history buffer and
// are linked by the *delta* from the previous miss rather than by address.
// On a miss, the chain of prior occurrences of the same delta is walked
// Width deep, and from each occurrence the next Depth deltas are replayed
// from the current address — so a recurring stream of irregular strides is
// re-predicted wholesale, where the Markov (G/AC) unit needs the very same
// addresses to recur.
type GHBDelta struct {
	cfg      DeltaConfig
	ghb      []deltaEntry
	count    int // monotone virtual position of the next insert
	ait      []aitSlot
	lastLine uint64
	haveLast bool
	is       *issuer
}

// NewGHBDelta attaches a delta-correlating GHB prefetcher to the L1's
// demand snoop. Like the Markov GHB it trains on demand misses only.
func NewGHBDelta(eng *sim.Engine, cfg DeltaConfig, l1 *mem.Cache, tlb *mem.TLB) *GHBDelta {
	g := &GHBDelta{
		cfg: cfg,
		ghb: make([]deltaEntry, 0, cfg.GHBSize),
		ait: make([]aitSlot, cfg.AITSize),
		is:  newIssuer(eng, l1, tlb, cfg.Queue),
	}
	prev := l1.OnDemandAccess
	l1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if prev != nil {
			prev(addr, pc, hit)
		}
		if !hit {
			g.observeMiss(mem.LineAddr(addr))
		}
	}
	return g
}

// Stats returns issue counters.
func (g *GHBDelta) Stats() IssuerStats { return g.is.stats }

func (g *GHBDelta) observeMiss(line uint64) {
	prev := int32(-1)
	if g.haveLast {
		delta := int64(line) - int64(g.lastLine)
		slot := &g.ait[uint64(delta)%uint64(len(g.ait))]
		if slot.valid && slot.delta == delta {
			if _, live := g.at(int(slot.pos)); live {
				prev = slot.pos
			}
		}
		*slot = aitSlot{delta: delta, pos: int32(g.count), valid: true}
	}
	pos := g.count
	g.insert(deltaEntry{line: line, prev: prev})
	g.lastLine, g.haveLast = line, true

	// Fan out: walk Width prior occurrences of this delta; from each, replay
	// the Depth deltas that followed it, accumulated onto the current line.
	occ := prev
	for w := 0; w < g.cfg.Width && occ >= 0; w++ {
		base := line
		for d := 1; d <= g.cfg.Depth; d++ {
			cur, okCur := g.at(int(occ) + d)
			before, okBefore := g.at(int(occ) + d - 1)
			if !okCur || !okBefore || int(occ)+d >= pos {
				break
			}
			base = uint64(int64(base) + int64(cur.line) - int64(before.line))
			if base != line {
				g.is.push(base)
			}
		}
		e, ok := g.at(int(occ))
		if !ok {
			break
		}
		occ = e.prev
	}
}

// at resolves a virtual position against the circular buffer; the buffer
// keeps the last GHBSize positions.
func (g *GHBDelta) at(pos int) (deltaEntry, bool) {
	if pos < 0 || pos >= g.count || pos < g.count-len(g.ghb) {
		return deltaEntry{}, false
	}
	return g.ghb[pos%cap(g.ghb)], true
}

func (g *GHBDelta) insert(e deltaEntry) {
	slot := g.count % cap(g.ghb)
	if len(g.ghb) < cap(g.ghb) {
		g.ghb = append(g.ghb, deltaEntry{})
	}
	g.ghb[slot] = e
	g.count++
}
