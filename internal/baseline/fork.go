package baseline

import (
	"fmt"

	"eventpf/internal/sim"
)

// Fork support: the baseline prefetchers hold plain value state (tables,
// queues, counters) plus one handler adapter each (the issuer's translation
// handler); their L1 snoop closures are rebuilt identically by the fork's
// own constructors, so only state is copied.

func (is *issuer) registerFork(src *issuer, remap *sim.Remap) {
	remap.Register(src.transH, is.transH)
}

func (is *issuer) copyStateFrom(src *issuer) {
	is.queue = append(is.queue[:0], src.queue...)
	is.pumping = src.pumping
	is.stats = src.stats
}

// RegisterFork records the stride prefetcher's handler pair for a fork.
func (s *Stride) RegisterFork(src *Stride, remap *sim.Remap) {
	s.is.registerFork(src.is, remap)
}

// CopyStateFrom copies src's prediction table and issuer state.
func (s *Stride) CopyStateFrom(src *Stride) error {
	if len(s.table) != len(src.table) {
		return fmt.Errorf("baseline: fork of stride prefetcher into different table size")
	}
	copy(s.table, src.table)
	s.is.copyStateFrom(src.is)
	return nil
}

// RegisterFork records the GHB prefetcher's handler pair for a fork.
func (g *GHB) RegisterFork(src *GHB, remap *sim.Remap) {
	g.is.registerFork(src.is, remap)
}

// CopyStateFrom copies src's history buffer, index and issuer state.
func (g *GHB) CopyStateFrom(src *GHB) error {
	if cap(g.ghb) != cap(src.ghb) {
		return fmt.Errorf("baseline: fork of GHB prefetcher into different buffer size")
	}
	g.ghb = append(g.ghb[:0], src.ghb...)
	g.head = src.head
	g.count = src.count
	for line := range g.index {
		delete(g.index, line)
	}
	for line, pos := range src.index {
		g.index[line] = pos
	}
	g.indexAge = append(g.indexAge[:0], src.indexAge...)
	g.is.copyStateFrom(src.is)
	return nil
}
