package baseline

import (
	"fmt"

	"eventpf/internal/sim"
)

// Fork support: the baseline prefetchers hold plain value state (tables,
// queues, counters) plus handler adapters (the issuer's translation handler,
// TSKID's delayed-issue handler); their L1 snoop closures are rebuilt
// identically by the fork's own constructors, so only state is copied. Every
// unit implements the Unit interface's fork half by type-asserting src: the
// system fork always pairs units built from the same scheme spec, so a
// mismatch is a wiring bug reported as an error.

func (is *issuer) registerFork(src *issuer, remap *sim.Remap) {
	remap.Register(src.transH, is.transH)
}

func (is *issuer) copyStateFrom(src *issuer) {
	is.queue = append(is.queue[:0], src.queue...)
	is.pumping = src.pumping
	is.stats = src.stats
}

// forkMismatch reports a unit forked into a different concrete type.
func forkMismatch(dst, src Unit) error {
	return fmt.Errorf("baseline: fork of %T into %T", src, dst)
}

// RegisterFork records the stride prefetcher's handler pair for a fork.
func (s *Stride) RegisterFork(src Unit, remap *sim.Remap) error {
	ss, ok := src.(*Stride)
	if !ok {
		return forkMismatch(s, src)
	}
	s.is.registerFork(ss.is, remap)
	return nil
}

// CopyStateFrom copies src's prediction table and issuer state.
func (s *Stride) CopyStateFrom(src Unit) error {
	ss, ok := src.(*Stride)
	if !ok {
		return forkMismatch(s, src)
	}
	if len(s.table) != len(ss.table) {
		return fmt.Errorf("baseline: fork of stride prefetcher into different table size")
	}
	copy(s.table, ss.table)
	s.is.copyStateFrom(ss.is)
	return nil
}

// RegisterFork records the GHB prefetcher's handler pair for a fork.
func (g *GHB) RegisterFork(src Unit, remap *sim.Remap) error {
	sg, ok := src.(*GHB)
	if !ok {
		return forkMismatch(g, src)
	}
	g.is.registerFork(sg.is, remap)
	return nil
}

// CopyStateFrom copies src's history buffer, index and issuer state.
func (g *GHB) CopyStateFrom(src Unit) error {
	sg, ok := src.(*GHB)
	if !ok {
		return forkMismatch(g, src)
	}
	if cap(g.ghb) != cap(sg.ghb) {
		return fmt.Errorf("baseline: fork of GHB prefetcher into different buffer size")
	}
	g.ghb = append(g.ghb[:0], sg.ghb...)
	g.head = sg.head
	g.count = sg.count
	for line := range g.index {
		delete(g.index, line)
	}
	for line, pos := range sg.index {
		g.index[line] = pos
	}
	g.indexAge = append(g.indexAge[:0], sg.indexAge...)
	g.is.copyStateFrom(sg.is)
	return nil
}

// RegisterFork records the RPT prefetcher's handler pair for a fork.
func (r *RPT) RegisterFork(src Unit, remap *sim.Remap) error {
	sr, ok := src.(*RPT)
	if !ok {
		return forkMismatch(r, src)
	}
	r.is.registerFork(sr.is, remap)
	return nil
}

// CopyStateFrom copies src's reference prediction table and issuer state.
func (r *RPT) CopyStateFrom(src Unit) error {
	sr, ok := src.(*RPT)
	if !ok {
		return forkMismatch(r, src)
	}
	if len(r.table) != len(sr.table) {
		return fmt.Errorf("baseline: fork of RPT prefetcher into different table size")
	}
	copy(r.table, sr.table)
	r.is.copyStateFrom(sr.is)
	return nil
}

// RegisterFork records the delta-GHB prefetcher's handler pair for a fork.
func (g *GHBDelta) RegisterFork(src Unit, remap *sim.Remap) error {
	sg, ok := src.(*GHBDelta)
	if !ok {
		return forkMismatch(g, src)
	}
	g.is.registerFork(sg.is, remap)
	return nil
}

// CopyStateFrom copies src's history buffer, index table and issuer state.
func (g *GHBDelta) CopyStateFrom(src Unit) error {
	sg, ok := src.(*GHBDelta)
	if !ok {
		return forkMismatch(g, src)
	}
	if cap(g.ghb) != cap(sg.ghb) || len(g.ait) != len(sg.ait) {
		return fmt.Errorf("baseline: fork of delta-GHB prefetcher into different sizing")
	}
	g.ghb = append(g.ghb[:0], sg.ghb...)
	g.count = sg.count
	copy(g.ait, sg.ait)
	g.lastLine, g.haveLast = sg.lastLine, sg.haveLast
	g.is.copyStateFrom(sg.is)
	return nil
}

// RegisterFork records the timing prefetcher's handler pairs for a fork:
// the issuer's translation handler plus the delayed-issue handler, whose
// pending events (scheduled prefetches not yet due) live in the parent's
// event queue and must re-target the fork.
func (t *TSKID) RegisterFork(src Unit, remap *sim.Remap) error {
	st, ok := src.(*TSKID)
	if !ok {
		return forkMismatch(t, src)
	}
	t.is.registerFork(st.is, remap)
	remap.Register(st.issueH, t.issueH)
	return nil
}

// CopyStateFrom copies src's trackers, trigger→target table, recent-PC ring
// and issuer state.
func (t *TSKID) CopyStateFrom(src Unit) error {
	st, ok := src.(*TSKID)
	if !ok {
		return forkMismatch(t, src)
	}
	if len(t.trackers) != len(st.trackers) || len(t.targets) != len(st.targets) ||
		len(t.recent) != len(st.recent) {
		return fmt.Errorf("baseline: fork of TSKID prefetcher into different sizing")
	}
	copy(t.trackers, st.trackers)
	copy(t.targets, st.targets)
	copy(t.recent, st.recent)
	t.recentN = st.recentN
	t.is.copyStateFrom(st.is)
	return nil
}
