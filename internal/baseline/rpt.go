package baseline

import (
	"eventpf/internal/mem"
	"eventpf/internal/sim"
)

// RPTConfig sizes the Chen–Baer reference prediction table.
type RPTConfig struct {
	Entries   int // tagged table entries, indexed by load PC
	Degree    int // prefetches issued per steady access
	Lookahead int // stride multiples the first prefetch runs ahead of the access
	Queue     int
}

// DefaultRPTConfig returns a classic RPT sizing: a 256-entry table issuing
// two prefetches from two strides ahead, the look-ahead compensating for
// training on in-order retirement rather than issue.
func DefaultRPTConfig() RPTConfig {
	return RPTConfig{Entries: 256, Degree: 2, Lookahead: 2, Queue: 32}
}

// rptFSM is the four-state automaton of Chen & Baer's reference prediction
// table ("Effective Hardware-Based Data Prefetching for High-Performance
// Processors", IEEE ToC 1995): Initial, Transient, Steady, NoPrediction.
type rptFSM uint8

const (
	fsmInitial rptFSM = iota
	fsmTransient
	fsmSteady
	fsmNoPred
)

type rptSlot struct {
	pc       int
	prevAddr uint64
	stride   int64
	state    rptFSM
}

// RPT is the Chen–Baer reference-prediction-table prefetcher: a tagged,
// PC-indexed table whose entries run the four-state stride automaton and
// prefetch Lookahead strides ahead while not in NoPrediction. It differs
// from the Table 1 Stride unit (an aggressive degree-8 variant) in following
// the paper's exact transition rules, so it serves as the conservative
// classic-stride competitor in the Figure 7 matrix.
type RPT struct {
	cfg   RPTConfig
	table []rptSlot
	is    *issuer
}

// NewRPT attaches a reference-prediction-table prefetcher to the L1's
// demand snoop.
func NewRPT(eng *sim.Engine, cfg RPTConfig, l1 *mem.Cache, tlb *mem.TLB) *RPT {
	r := &RPT{cfg: cfg, table: make([]rptSlot, cfg.Entries), is: newIssuer(eng, l1, tlb, cfg.Queue)}
	prev := l1.OnDemandAccess
	l1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if prev != nil {
			prev(addr, pc, hit)
		}
		r.observe(addr, pc)
	}
	return r
}

// Stats returns issue counters.
func (r *RPT) Stats() IssuerStats { return r.is.stats }

func (r *RPT) observe(addr uint64, pc int) {
	if pc < 0 {
		return
	}
	e := &r.table[pc%len(r.table)]
	if e.pc != pc {
		*e = rptSlot{pc: pc, prevAddr: addr, state: fsmInitial}
		return
	}
	if addr == e.prevAddr {
		return // same address: no new information
	}
	correct := int64(addr)-int64(e.prevAddr) == e.stride
	// The 1995 paper's transitions: a correct prediction walks toward
	// Steady, an incorrect one retrains the stride and walks toward
	// NoPrediction — except from Steady, which keeps its stride and drops
	// only to Initial, giving one access of grace before retraining.
	switch e.state {
	case fsmInitial:
		if correct {
			e.state = fsmSteady
		} else {
			e.stride = int64(addr) - int64(e.prevAddr)
			e.state = fsmTransient
		}
	case fsmTransient:
		if correct {
			e.state = fsmSteady
		} else {
			e.stride = int64(addr) - int64(e.prevAddr)
			e.state = fsmNoPred
		}
	case fsmSteady:
		if !correct {
			e.state = fsmInitial
		}
	case fsmNoPred:
		if correct {
			e.state = fsmTransient
		} else {
			e.stride = int64(addr) - int64(e.prevAddr)
		}
	}
	e.prevAddr = addr
	if e.state == fsmNoPred || e.stride == 0 {
		return
	}
	for d := 0; d < r.cfg.Degree; d++ {
		tgt := uint64(int64(addr) + int64(r.cfg.Lookahead+d)*e.stride)
		if mem.LineAddr(tgt) == mem.LineAddr(addr) {
			continue
		}
		r.is.push(tgt)
	}
}
