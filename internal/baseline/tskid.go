package baseline

import (
	"eventpf/internal/mem"
	"eventpf/internal/sim"
)

// TSKIDConfig sizes the timing (T-SKID-style) prefetcher.
type TSKIDConfig struct {
	Trackers  int       // per-PC stride trackers (target-address prediction)
	Targets   int       // trigger→target association table entries
	RecentPCs int       // recently-accessed-PC ring scanned for trigger candidates
	LeadTicks sim.Ticks // margin subtracted from the learned delay so the line lands early
	MaxDelay  sim.Ticks // trigger→target distances beyond this are not learned
	Queue     int
}

// DefaultTSKIDConfig: 256-entry tables, an 8-deep trigger window, and a
// 2000-tick (125 ns) lead margin — roughly an L2 miss ahead of the target.
func DefaultTSKIDConfig() TSKIDConfig {
	return TSKIDConfig{Trackers: 256, Targets: 256, RecentPCs: 8,
		LeadTicks: 2000, MaxDelay: 1 << 20, Queue: 64}
}

// tskidTracker is one per-PC stride tracker: last line address and the last
// observed stride, used to extrapolate the target PC's next address.
type tskidTracker struct {
	pc       int
	lastAddr uint64
	stride   int64
}

// tskidTarget is one learned trigger→target association: accesses by
// trigger predict that target will miss `delay` ticks later.
type tskidTarget struct {
	trigger int
	target  int
	delay   sim.Ticks
	valid   bool
}

// tskidRecent is one slot of the recently-accessed-PC ring.
type tskidRecent struct {
	pc   int
	tick sim.Ticks
}

// TSKID is a timing prefetcher in the spirit of T-SKID (DPC3): instead of
// issuing a predicted address immediately — where it can land so early it is
// evicted, or so late it saves nothing — it learns *when* to issue. A miss
// at a target PC is linked back to the oldest recent access by another PC
// (the trigger) together with the observed trigger→target distance; from
// then on, every access by the trigger schedules a prefetch of the target
// PC's extrapolated next line, delayed until the learned distance minus a
// lead margin has elapsed. Address prediction itself is a plain per-PC
// stride tracker — the novelty carried here is the decoupled timing, which
// is what the paper's evaluation isolates.
type TSKID struct {
	cfg      TSKIDConfig
	eng      *sim.Engine
	trackers []tskidTracker
	targets  []tskidTarget
	recent   []tskidRecent
	recentN  int // total pushes; ring head is recentN % len(recent)
	issueH   tskidIssueHandler
	is       *issuer
}

// tskidIssueHandler fires a delayed prefetch: a is the target address. A
// typed handler (not a closure) so pending delayed issues survive a machine
// fork via the remap table.
type tskidIssueHandler struct{ u *TSKID }

// Handle implements sim.Handler.
func (h tskidIssueHandler) Handle(_ sim.Ticks, a, _ uint64) { h.u.is.push(a) }

// NewTSKID attaches a timing prefetcher to the L1's demand snoop.
func NewTSKID(eng *sim.Engine, cfg TSKIDConfig, l1 *mem.Cache, tlb *mem.TLB) *TSKID {
	t := &TSKID{
		cfg:      cfg,
		eng:      eng,
		trackers: make([]tskidTracker, cfg.Trackers),
		targets:  make([]tskidTarget, cfg.Targets),
		recent:   make([]tskidRecent, cfg.RecentPCs),
		is:       newIssuer(eng, l1, tlb, cfg.Queue),
	}
	t.issueH.u = t
	prev := l1.OnDemandAccess
	l1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if prev != nil {
			prev(addr, pc, hit)
		}
		t.observe(addr, pc, hit)
	}
	return t
}

// Stats returns issue counters.
func (t *TSKID) Stats() IssuerStats { return t.is.stats }

func (t *TSKID) observe(addr uint64, pc int, hit bool) {
	if pc < 0 {
		return
	}
	now := t.eng.Now()
	line := mem.LineAddr(addr)

	// Train the per-PC stride tracker.
	tr := &t.trackers[pc%len(t.trackers)]
	if tr.pc != pc {
		*tr = tskidTracker{pc: pc, lastAddr: line}
	} else if line != tr.lastAddr {
		tr.stride = int64(line) - int64(tr.lastAddr)
		tr.lastAddr = line
	}

	// Trigger side: an access by a learned trigger PC schedules the target
	// PC's next line for the learned time.
	tg := &t.targets[pc%len(t.targets)]
	if tg.valid && tg.trigger == pc {
		if pred, ok := t.predict(tg.target); ok {
			if delay := tg.delay - t.cfg.LeadTicks; delay > 0 {
				t.eng.ScheduleAfter(delay, t.issueH, pred, 0)
			} else {
				t.is.push(pred)
			}
		}
	}

	// Target side: a miss links back to the oldest in-window recent access
	// by another PC, learning the trigger and the trigger→target distance.
	if !hit {
		if trig, dist, ok := t.findTrigger(pc, now); ok {
			t.targets[trig%len(t.targets)] = tskidTarget{
				trigger: trig, target: pc, delay: dist, valid: true,
			}
		}
	}

	t.recent[t.recentN%len(t.recent)] = tskidRecent{pc: pc, tick: now}
	t.recentN++
}

// predict extrapolates the target PC's next line from its stride tracker.
func (t *TSKID) predict(targetPC int) (uint64, bool) {
	tr := &t.trackers[targetPC%len(t.trackers)]
	if tr.pc != targetPC || tr.stride == 0 {
		return 0, false
	}
	return uint64(int64(tr.lastAddr) + tr.stride), true
}

// findTrigger scans the recent-PC ring oldest-first for the earliest access
// by a different PC within the learning window.
func (t *TSKID) findTrigger(targetPC int, now sim.Ticks) (int, sim.Ticks, bool) {
	n := len(t.recent)
	start := t.recentN - n
	if start < 0 {
		start = 0
	}
	for i := start; i < t.recentN; i++ {
		r := t.recent[i%n]
		if r.pc == targetPC {
			continue
		}
		if dist := now - r.tick; dist > 0 && dist <= t.cfg.MaxDelay {
			return r.pc, dist, true
		}
	}
	return 0, 0, false
}
