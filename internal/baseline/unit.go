package baseline

import "eventpf/internal/sim"

// Unit is one hardware prefetcher attached to the L1's demand stream. The
// system package holds whichever unit the machine's scheme registered
// through this one interface, so adding a prefetcher never adds a
// per-scheme field or switch outside its own constructor.
//
// RegisterFork and CopyStateFrom implement the machine fork protocol
// (system.Machine.ForkWith): src is always the same concrete type built
// under an identical configuration; implementations type-assert and report
// a mismatch as an error rather than panicking.
type Unit interface {
	// Stats returns the unit's issue counters.
	Stats() IssuerStats
	// RegisterFork records the (src handler, this handler) pairs a fork's
	// event-queue copy needs to translate pending events.
	RegisterFork(src Unit, remap *sim.Remap) error
	// CopyStateFrom deep-copies src's prediction state and issuer queue.
	CopyStateFrom(src Unit) error
}
