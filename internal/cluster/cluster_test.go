package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"eventpf/internal/harness"
	"eventpf/internal/serve"
)

// testWorker is one stubbed ppfserve instance: a real serve.Server (so the
// cache, dedup, SSE, and /metrics paths are the production ones) whose
// simulation is replaced by a counting stub — runs is exactly the number of
// re-simulations the cluster allowed.
type testWorker struct {
	id   string
	srv  *serve.Server
	hs   *httptest.Server
	runs atomic.Int64
}

func stubResult() []byte { return []byte("{\"stub\":true}\n") }

func newTestWorker(t *testing.T, coordURL, id string, run func(*serve.Job) ([]byte, error)) *testWorker {
	t.Helper()
	w := &testWorker{id: id}
	w.srv = serve.NewServer(serve.Config{Workers: 1, QueueDepth: 16, IDPrefix: id + "-"})
	w.srv.SetRunner(func(jb *serve.Job) ([]byte, error) {
		w.runs.Add(1)
		if run != nil {
			return run(jb)
		}
		return stubResult(), nil
	})
	w.hs = httptest.NewServer(w.srv.Handler())
	t.Cleanup(w.hs.Close)
	registerWorker(t, coordURL, WorkerInfo{ID: id, URL: w.hs.URL})
	return w
}

func registerWorker(t *testing.T, coordURL string, info WorkerInfo) {
	t.Helper()
	body, _ := json.Marshal(info)
	resp, err := http.Post(coordURL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("registering %s: %v", info.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registering %s: status %d", info.ID, resp.StatusCode)
	}
}

// newTestCluster starts a coordinator plus n stub workers named w0..w{n-1}.
// Backoff and jitter are pinned so failover retries are instant.
func newTestCluster(t *testing.T, n int) (*Coordinator, *httptest.Server, []*testWorker) {
	t.Helper()
	c := NewCoordinator(Config{
		RetryBase: time.Millisecond,
		RetryCap:  2 * time.Millisecond,
		Jitter:    func() float64 { return 0 },
		// Workers in tests register once and never heartbeat; keep the
		// liveness window far beyond test runtime so only explicit
		// ejection (transport failure, DELETE /register) removes them.
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  100,
	})
	t.Cleanup(c.Close)
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(hs.Close)
	workers := make([]*testWorker, n)
	for i := range workers {
		workers[i] = newTestWorker(t, hs.URL, fmt.Sprintf("w%d", i), nil)
	}
	return c, hs, workers
}

func submitSpec(t *testing.T, baseURL string, sp harness.JobSpec, query string) (*http.Response, workerSubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(sp)
	resp, err := http.Post(baseURL+"/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr workerSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp, sr
}

func scrapeCluster(t *testing.T, coordURL string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var name string
		var v int64
		if _, err := fmt.Sscanf(sc.Text(), "%s %d", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func keyOf(t *testing.T, sp harness.JobSpec) string {
	t.Helper()
	resolved, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return resolved.Key()
}

// TestRankWorkersProperties pins the three properties routing depends on:
// determinism, balance (every worker owns some keys), and the rendezvous
// invariant that removing one worker only promotes survivors — it never
// reorders them — so the runner-up order doubles as the failover order.
func TestRankWorkersProperties(t *testing.T) {
	ids := []string{"w0", "w1", "w2", "w3"}
	owners := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := rankWorkers(key, ids)
		if len(order) != len(ids) {
			t.Fatalf("rank dropped workers: %v", order)
		}
		again := rankWorkers(key, ids)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("rank not deterministic for %s: %v vs %v", key, order, again)
			}
		}
		owners[order[0]]++

		// Remove the top worker: the rest must keep their relative order.
		var without []string
		for _, id := range ids {
			if id != order[0] {
				without = append(without, id)
			}
		}
		reduced := rankWorkers(key, without)
		for j := range reduced {
			if reduced[j] != order[j+1] {
				t.Fatalf("removing owner reordered survivors for %s: %v vs %v", key, reduced, order)
			}
		}
	}
	for _, id := range ids {
		if owners[id] == 0 {
			t.Errorf("worker %s owns no keys out of 200 — hash badly skewed: %v", id, owners)
		}
	}
}

// TestRouteDuplicatesToSameWorker: every submission of a key lands on its
// rendezvous owner, duplicates are served from that worker's cache with
// byte-identical results, and the cluster-wide simulation count equals the
// number of distinct configs.
func TestRouteDuplicatesToSameWorker(t *testing.T) {
	_, hs, workers := newTestCluster(t, 3)
	ids := []string{"w0", "w1", "w2"}

	specs := []harness.JobSpec{
		{Bench: "HJ-2", Scheme: "stride", Scale: 0.02},
		{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.02},
		{Bench: "RandAcc", Scheme: "stride", Scale: 0.02},
		{Bench: "G500-CSR", Scheme: "no-pf", Scale: 0.02},
	}
	for _, sp := range specs {
		key := keyOf(t, sp)
		owner := rankWorkers(key, ids)[0]

		resp1, sr1 := submitSpec(t, hs.URL, sp, "?wait=1")
		if resp1.StatusCode != http.StatusOK {
			t.Fatalf("first submit of %v: status %d (%s)", sp, resp1.StatusCode, sr1.Error)
		}
		if !strings.HasPrefix(sr1.ID, owner+"-") {
			t.Errorf("job %s for key %.12s ran on the wrong worker (want owner %s)", sr1.ID, key, owner)
		}

		resp2, sr2 := submitSpec(t, hs.URL, sp, "")
		if resp2.StatusCode != http.StatusOK || !sr2.Cached {
			t.Errorf("duplicate of %v not served from cache: status %d cached=%v", sp, resp2.StatusCode, sr2.Cached)
		}
		if !bytes.Equal(sr1.Result, sr2.Result) {
			t.Errorf("duplicate result differs from original for %v", sp)
		}
	}

	var runs int64
	for _, w := range workers {
		runs += w.runs.Load()
	}
	if runs != int64(len(specs)) {
		t.Errorf("cluster simulated %d times for %d distinct configs", runs, len(specs))
	}
}

// TestFailoverMidStreamNoResim is the ISSUE acceptance scenario: three
// workers, the key's owner dies mid-SSE-stream while a replica already
// holds the replicated result, and the client must see one gap-free,
// strictly-increasing seq chain ending in done — served from the replica's
// cache, with zero additional simulations.
func TestFailoverMidStreamNoResim(t *testing.T) {
	c, hs, workers := newTestCluster(t, 3)
	ids := []string{"w0", "w1", "w2"}
	sp := harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.02}
	key := keyOf(t, sp)
	order := rankWorkers(key, ids)
	byID := map[string]*testWorker{}
	for _, w := range workers {
		byID[w.id] = w
	}
	owner := byID[order[0]]

	// The owner's sim publishes progress then wedges — the job never
	// completes there. The replicas already hold the canonical bytes (the
	// replication a completed prior run would have performed).
	started := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)
	owner.srv.SetRunner(func(jb *serve.Job) ([]byte, error) {
		owner.runs.Add(1)
		jb.Publish(serve.ProgressEvent{State: serve.StateRunning, Phase: "simulating", Events: 100})
		jb.Publish(serve.ProgressEvent{State: serve.StateRunning, Phase: "simulating", Events: 200})
		close(started)
		<-gate
		return stubResult(), nil
	})
	byID[order[1]].srv.CachePut(key, stubResult())
	byID[order[2]].srv.CachePut(key, stubResult())

	_, sr := submitSpec(t, hs.URL, sp, "")
	if !strings.HasPrefix(sr.ID, owner.id+"-") {
		t.Fatalf("job %s did not route to owner %s", sr.ID, owner.id)
	}
	<-started

	resp, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var events []serve.ProgressEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev serve.ProgressEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		events = append(events, ev)
		if len(events) == 4 {
			// queued, running(starting), and both progress events arrived:
			// kill the owner mid-stream, hard.
			owner.hs.CloseClientConnections()
			owner.hs.Close()
		}
	}

	if len(events) < 5 {
		t.Fatalf("only %d events before the stream closed: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != int64(i) {
			t.Fatalf("seq chain has a gap at %d (seq %d): %+v", i, ev.Seq, events)
		}
	}
	last := events[len(events)-1]
	if last.State != serve.StateDone {
		t.Fatalf("chain ended in %s (%s), want done", last.State, last.Error)
	}
	if !strings.Contains(last.Phase, "replica") {
		t.Errorf("terminal event not marked as replica-served: %+v", last)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.State.Terminal() {
			t.Errorf("terminal state %s before the end of the chain", ev.State)
		}
	}

	var runs int64
	for _, w := range workers {
		runs += w.runs.Load()
	}
	if runs != 1 {
		t.Errorf("failover re-simulated: %d total runs, want 1 (owner only)", runs)
	}
	if got := c.m.sseFailovers.Load(); got != 1 {
		t.Errorf("sse failovers = %d, want 1", got)
	}
}

// TestPeerFillOnMembershipChange: after a result is computed and
// replicated, a new worker that takes over the key's ownership is filled
// from the previous owner before its first submit — so rebalancing is a
// cache hit, never a re-simulation.
func TestPeerFillOnMembershipChange(t *testing.T) {
	_, hs, workers := newTestCluster(t, 2)
	ids := []string{"w0", "w1"}
	sp := harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.02}
	key := keyOf(t, sp)
	runnerUp := rankWorkers(key, ids)[1]
	byID := map[string]*testWorker{}
	for _, w := range workers {
		byID[w.id] = w
	}

	resp, sr := submitSpec(t, hs.URL, sp, "?wait=1")
	if resp.StatusCode != http.StatusOK || sr.State != serve.StateDone {
		t.Fatalf("seed run failed: status %d state %s", resp.StatusCode, sr.State)
	}
	// The coordinator replicates asynchronously; wait for the runner-up to
	// hold the bytes.
	waitFor(t, "replication to the runner-up", func() bool {
		r, err := http.Get(byID[runnerUp].hs.URL + "/cache/" + key)
		if err != nil {
			return false
		}
		r.Body.Close()
		return r.StatusCode == http.StatusOK
	})

	// Pick a joining worker ID that outranks both incumbents for this key,
	// so the new worker becomes the owner the moment it registers.
	newID := ""
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("nw%d", i)
		if rankWorkers(key, append([]string{id}, ids...))[0] == id {
			newID = id
			break
		}
	}
	if newID == "" {
		t.Fatal("could not find an ID that outranks the incumbents")
	}
	nw := newTestWorker(t, hs.URL, newID, nil)

	resp2, sr2 := submitSpec(t, hs.URL, sp, "")
	if resp2.StatusCode != http.StatusOK || !sr2.Cached {
		t.Fatalf("post-rebalance submit: status %d cached=%v (%s)", resp2.StatusCode, sr2.Cached, sr2.Error)
	}
	if nw.runs.Load() != 0 {
		t.Errorf("new owner re-simulated %d times after taking over the key", nw.runs.Load())
	}
	m := scrapeCluster(t, hs.URL)
	if m["cluster_peer_fills"] < 1 {
		t.Errorf("cluster_peer_fills = %d, want >= 1", m["cluster_peer_fills"])
	}
	// The fill landed in the new owner's cache via PUT /cache.
	r, err := http.Get(nw.hs.URL + "/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("new owner's cache has no entry for the key after peer fill")
	}
}

// TestMetricsMergeSurvivesWorkerDeath: a departed worker's last-scraped
// counters fold into the merged /metrics view (the tombstone), so
// cluster-wide memo-miss accounting — what ppfload's zero-re-simulation
// assertion reads — survives losing the worker that did the simulating.
func TestMetricsMergeSurvivesWorkerDeath(t *testing.T) {
	_, hs, workers := newTestCluster(t, 2)
	sp := harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.02}

	resp, sr := submitSpec(t, hs.URL, sp, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run failed: status %d", resp.StatusCode)
	}
	ownerID, _, _ := strings.Cut(sr.ID, "-")

	before := scrapeCluster(t, hs.URL) // also scrapes + snapshots every worker
	if before["ppfserve_cache_misses"] < 1 {
		t.Fatalf("merged cache_misses = %d before death, want >= 1", before["ppfserve_cache_misses"])
	}

	for _, w := range workers {
		if w.id == ownerID {
			w.hs.CloseClientConnections()
			w.hs.Close()
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/register/"+ownerID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	after := scrapeCluster(t, hs.URL)
	if after["ppfserve_cache_misses"] < before["ppfserve_cache_misses"] {
		t.Errorf("merged cache_misses dropped from %d to %d after worker death — tombstone lost",
			before["ppfserve_cache_misses"], after["ppfserve_cache_misses"])
	}
	if after["cluster_workers_departed"] != 1 {
		t.Errorf("cluster_workers_departed = %d, want 1", after["cluster_workers_departed"])
	}
	if after["cluster_workers_live"] != 1 {
		t.Errorf("cluster_workers_live = %d, want 1", after["cluster_workers_live"])
	}
}

// TestHeartbeatRegistersAndDeregisters: the worker-side heartbeat loop
// appears in /workers shortly after starting and disappears promptly when
// its context is cancelled (deregistration, not TTL expiry).
func TestHeartbeatRegistersAndDeregisters(t *testing.T) {
	c := NewCoordinator(Config{HeartbeatEvery: 20 * time.Millisecond, HeartbeatMiss: 3})
	defer c.Close()
	hs := httptest.NewServer(c.Handler())
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Heartbeat(ctx, hs.URL, WorkerInfo{ID: "hb1", URL: "http://127.0.0.1:1"}, 10*time.Millisecond)

	listed := func() bool {
		resp, err := http.Get(hs.URL + "/workers")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var body struct {
			Workers []WorkerInfo `json:"workers"`
		}
		if json.NewDecoder(resp.Body).Decode(&body) != nil {
			return false
		}
		for _, w := range body.Workers {
			if w.ID == "hb1" {
				return true
			}
		}
		return false
	}
	waitFor(t, "heartbeat registration", listed)
	cancel()
	waitFor(t, "heartbeat deregistration", func() bool { return !listed() })
}
