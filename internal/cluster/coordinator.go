package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eventpf/internal/harness"
	"eventpf/internal/workloads"
)

// Config sizes the coordinator. The zero value is usable.
type Config struct {
	// Replicas is how many workers hold each completed result: the ring
	// owner plus Replicas-1 runner-up replicas (default 2). Failover can
	// only avoid re-simulation when at least one replica survives.
	Replicas int
	// DefaultScale is substituted into routed specs that omit scale before
	// hashing, so the coordinator and every worker derive the same content
	// key (default 0.05 — keep it equal to the workers' -default-scale).
	DefaultScale float64
	// HeartbeatEvery is the registration refresh interval advertised to
	// workers and the coordinator's own health-check cadence (default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many missed heartbeats eject a worker
	// (default 3).
	HeartbeatMiss int
	// RetryBase and RetryCap bound the exponential backoff between proxy
	// attempts on successive replicas (defaults 50ms and 1s); each delay
	// gets up to 50% random jitter so synchronized clients do not retry in
	// lockstep.
	RetryBase time.Duration
	RetryCap  time.Duration
	// RouteHistory caps the job-ID → worker routing table (default 4096).
	RouteHistory int
	// KeyHistory caps the content-key → holders table that drives peer
	// fill (default 8192).
	KeyHistory int
	// ScrapeTimeout bounds each worker /metrics scrape (default 2s).
	ScrapeTimeout time.Duration
	// Client performs proxied requests (default: no timeout, because
	// ?wait=1 submissions legitimately block for a full simulation).
	Client *http.Client
	// Jitter returns a pseudo-random float in [0,1) for backoff jitter;
	// tests may pin it (default math/rand).
	Jitter func() float64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 0.05
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.RouteHistory <= 0 {
		c.RouteHistory = 4096
	}
	if c.KeyHistory <= 0 {
		c.KeyHistory = 8192
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// route remembers where a proxied job lives: which worker, under which
// upstream ID, and the spec + content key needed to re-place it on another
// replica if that worker dies mid-stream.
type route struct {
	workerID   string
	upstreamID string
	key        string
	spec       harness.JobSpec
}

// clusterMetrics are the coordinator's own counters, merged into /metrics
// alongside the workers' lines.
type clusterMetrics struct {
	routed       atomic.Int64 // POST /jobs bodies routed
	proxyRetries atomic.Int64 // failed attempts retried on the next replica
	peerFills    atomic.Int64 // results copied old owner → new owner
	peerFillErrs atomic.Int64 // peer-fill attempts that found/copied nothing
	replications atomic.Int64 // results copied owner → runner-up replicas
	sseFailovers atomic.Int64 // SSE streams re-attached after a worker died
	noWorkers    atomic.Int64 // submissions refused: empty ring
}

// Coordinator routes jobs across registered ppfserve workers. It holds no
// simulation state of its own — only the ring membership, the routing and
// holder tables, and merged metrics — so it restarts cheaply: routes and
// holder hints rebuild as traffic flows (a lost hint only costs one worker
// cache miss, never a wrong result).
type Coordinator struct {
	cfg Config
	mux *http.ServeMux
	reg *registry
	m   clusterMetrics

	mu          sync.Mutex
	routes      map[string]*route
	routeOrder  []string
	holders     map[string][]string // content key → worker IDs holding its bytes
	holderOrder []string
	replicating map[string]bool // keys with an in-flight replication

	stopOnce sync.Once
	stopc    chan struct{}
}

// NewCoordinator builds a coordinator and starts its health-check loop.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:         cfg.withDefaults(),
		reg:         newRegistry(),
		routes:      map[string]*route{},
		holders:     map[string][]string{},
		replicating: map[string]bool{},
		stopc:       make(chan struct{}),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /register", c.handleRegister)
	c.mux.HandleFunc("DELETE /register/{id}", c.handleDeregister)
	c.mux.HandleFunc("GET /workers", c.handleWorkers)
	c.mux.HandleFunc("POST /jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /jobs/{id}/result", c.handleJobResult)
	c.mux.HandleFunc("GET /jobs/{id}/events", c.handleJobEvents)
	c.mux.HandleFunc("DELETE /jobs/{id}", c.handleJobCancel)
	c.mux.HandleFunc("GET /benchmarks", c.handleBenchmarks)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	go c.healthLoop()
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health-check loop.
func (c *Coordinator) Close() { c.stopOnce.Do(func() { close(c.stopc) }) }

// healthLoop ejects workers whose heartbeats went stale and keeps each
// live worker's metrics snapshot fresh, so a worker that dies between
// /metrics calls still leaves recent counters in its tombstone.
func (c *Coordinator) healthLoop() {
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case now := <-t.C:
			ttl := c.cfg.HeartbeatEvery * time.Duration(c.cfg.HeartbeatMiss+1)
			for _, id := range c.reg.stale(now, ttl) {
				c.reg.remove(id)
			}
			c.scrapeLiveWorkers()
		}
	}
}

// registerResponse tells a worker how often to re-register.
type registerResponse struct {
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	Workers          int     `json:"workers"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info WorkerInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil || info.ID == "" || info.URL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "registration needs {id, url}"})
		return
	}
	c.reg.upsert(info, time.Now())
	writeJSON(w, http.StatusOK, registerResponse{
		HeartbeatSeconds: c.cfg.HeartbeatEvery.Seconds(),
		Workers:          len(c.reg.liveWorkers()),
	})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	c.reg.remove(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.reg.liveWorkers()})
}

func (c *Coordinator) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"benchmarks": workloads.MenuNames(),
		"schemes":    harness.SchemeNames(),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": len(c.reg.liveWorkers()),
	})
}

// rankLive returns the live workers in rendezvous order for a content key.
func (c *Coordinator) rankLive(key string) []WorkerInfo {
	live := c.reg.liveWorkers()
	ids := make([]string, len(live))
	byID := make(map[string]WorkerInfo, len(live))
	for i, wk := range live {
		ids[i] = wk.ID
		byID[wk.ID] = wk
	}
	out := make([]WorkerInfo, 0, len(live))
	for _, id := range rankWorkers(key, ids) {
		out = append(out, byID[id])
	}
	return out
}

// recordRoute remembers which worker owns a proxied job ID, evicting the
// oldest record past the cap.
func (c *Coordinator) recordRoute(id string, rt *route) {
	c.mu.Lock()
	if _, ok := c.routes[id]; !ok {
		c.routeOrder = append(c.routeOrder, id)
		for len(c.routeOrder) > c.cfg.RouteHistory {
			delete(c.routes, c.routeOrder[0])
			c.routeOrder = c.routeOrder[1:]
		}
	}
	c.routes[id] = rt
	c.mu.Unlock()
}

func (c *Coordinator) routeOf(id string) (*route, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rt, ok := c.routes[id]
	return rt, ok
}

// handleMetrics merges every worker's /metrics into one registry view:
// counters summed across live workers plus the departed tombstones,
// per-worker detail lines for the load-balancing gauges, and the
// coordinator's own cluster_* counters.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c.scrapeLiveWorkers()
	perWorker, departed, departedN := c.reg.snapshot()

	merged := map[string]int64{}
	for _, m := range perWorker {
		for name, v := range m {
			if summable(name) || !isQuantile(name) {
				merged[name] += v
			} else if v > merged[name] {
				merged[name] = v // cross-worker p50/p99/max: take the worst
			}
		}
	}
	for name, v := range departed {
		merged[name] += v
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, merged[name])
	}

	// Per-worker detail: enough to read each worker's hit rate and load.
	detail := []string{
		"ppfserve_cache_hits", "ppfserve_cache_misses", "ppfserve_memo_misses",
		"ppfserve_jobs_inflight", "ppfserve_queue_depth",
	}
	wids := make([]string, 0, len(perWorker))
	for id := range perWorker {
		wids = append(wids, id)
	}
	sort.Strings(wids)
	for _, id := range wids {
		for _, name := range detail {
			fmt.Fprintf(w, "%s{worker=%q} %d\n", name, id, perWorker[id][name])
		}
	}

	for _, kv := range []struct {
		name string
		v    int64
	}{
		{"cluster_workers_live", int64(len(perWorker))},
		{"cluster_workers_departed", int64(departedN)},
		{"cluster_jobs_routed", c.m.routed.Load()},
		{"cluster_proxy_retries", c.m.proxyRetries.Load()},
		{"cluster_peer_fills", c.m.peerFills.Load()},
		{"cluster_peer_fill_errors", c.m.peerFillErrs.Load()},
		{"cluster_replications", c.m.replications.Load()},
		{"cluster_sse_failovers", c.m.sseFailovers.Load()},
		{"cluster_no_worker_rejections", c.m.noWorkers.Load()},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
}

func isQuantile(name string) bool {
	return !summable(name) && (len(name) > 4 &&
		(name[len(name)-4:] == "_p50" || name[len(name)-4:] == "_p99" || name[len(name)-4:] == "_max"))
}

// errorResponse mirrors the workers' non-2xx JSON body shape.
type errorResponse struct {
	Error           string   `json:"error"`
	ValidBenchmarks []string `json:"valid_benchmarks,omitempty"`
	ValidSchemes    []string `json:"valid_schemes,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
