package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"time"
)

// Heartbeat registers a worker with the coordinator and keeps re-registering
// every interval — registration doubles as the heartbeat — until ctx is
// cancelled, then deregisters so the coordinator stops routing new jobs at a
// draining worker immediately instead of waiting out the liveness window.
// The coordinator's advertised interval (heartbeat_seconds in the register
// response) overrides `every`. Registration errors are retried on the next
// tick: a worker outliving a coordinator restart re-appears on its own.
func Heartbeat(ctx context.Context, coordinator string, self WorkerInfo, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	client := &http.Client{Timeout: 5 * time.Second}
	body, _ := json.Marshal(self)

	register := func() time.Duration {
		resp, err := client.Post(coordinator+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		var rr registerResponse
		if json.NewDecoder(resp.Body).Decode(&rr) == nil && rr.HeartbeatSeconds > 0 {
			return time.Duration(rr.HeartbeatSeconds * float64(time.Second))
		}
		return 0
	}

	if d := register(); d > 0 {
		every = d
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			req, err := http.NewRequest(http.MethodDelete,
				coordinator+"/register/"+url.PathEscape(self.ID), nil)
			if err == nil {
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			return
		case <-t.C:
			if d := register(); d > 0 && d != every {
				every = d
				t.Reset(every)
			}
		}
	}
}
