package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"eventpf/internal/harness"
	"eventpf/internal/serve"
)

// The peer-fill protocol keeps "never simulate the same config twice" true
// across membership changes:
//
//   - When a job completes, the coordinator copies its canonical bytes from
//     the owner to the next Replicas-1 workers on the key's rendezvous
//     order (replicate), so losing the owner loses no results.
//   - When routing a key whose ring owner is not among its known holders —
//     a worker joined and took over the key, or a failover target is about
//     to receive it — the coordinator first copies the bytes from any
//     surviving holder into the new owner (maybePeerFill), so the submit
//     that follows is a cache hit, not a re-simulation.
//
// Holder hints are advisory: losing one costs a worker cache miss (the
// worker's own suite memo still dedups concurrent repeats), never a wrong
// result, because the content key pins the bytes to the config.

// addHolder records that a worker holds the cached bytes for a key.
func (c *Coordinator) addHolder(key, workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, ok := c.holders[key]
	if !ok {
		c.holderOrder = append(c.holderOrder, key)
		for len(c.holderOrder) > c.cfg.KeyHistory {
			delete(c.holders, c.holderOrder[0])
			c.holderOrder = c.holderOrder[1:]
		}
	}
	for _, id := range ids {
		if id == workerID {
			return
		}
	}
	c.holders[key] = append(ids, workerID)
}

// holdersOf returns the recorded holders of a key.
func (c *Coordinator) holdersOf(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.holders[key]...)
}

// dropHolder forgets a stale holder hint (evicted or dead).
func (c *Coordinator) dropHolder(key, workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.holders[key]
	for i, id := range ids {
		if id == workerID {
			c.holders[key] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// maybePeerFill copies a key's cached bytes from a surviving holder into
// `target` when the target is not yet a holder — the ownership-transfer
// half of rebalancing. No-op when the key was never completed or the
// target already has it.
func (c *Coordinator) maybePeerFill(key string, target WorkerInfo) {
	holders := c.holdersOf(key)
	if len(holders) == 0 {
		return
	}
	for _, id := range holders {
		if id == target.ID {
			return // already a holder
		}
	}
	for _, id := range holders {
		src, ok := c.reg.get(id)
		if !ok {
			continue // dead holder; tombstoned elsewhere
		}
		b, ok := c.cacheFetch(src, key)
		if !ok {
			c.dropHolder(key, id) // evicted on that worker; hint was stale
			continue
		}
		if c.cachePush(target, key, b) {
			c.addHolder(key, target.ID)
			c.m.peerFills.Add(1)
			return
		}
	}
	c.m.peerFillErrs.Add(1)
}

// replicate waits for a routed job to finish (by coalescing onto it with a
// ?wait=1 duplicate — the worker's in-flight dedup makes this free), then
// copies the canonical bytes to the key's runner-up replicas. One
// replication runs per key at a time.
func (c *Coordinator) replicate(owner WorkerInfo, key string, spec harness.JobSpec) {
	c.mu.Lock()
	if c.replicating[key] {
		c.mu.Unlock()
		return
	}
	c.replicating[key] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.replicating, key)
		c.mu.Unlock()
	}()

	body, _ := json.Marshal(spec)
	resp, err := c.cfg.Client.Post(owner.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return // owner died mid-run; nothing to replicate
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return // failed/unsupported jobs have no result to copy
	}
	var sr workerSubmitResponse
	if json.Unmarshal(raw, &sr) != nil || sr.State != serve.StateDone {
		return
	}
	// Fetch the stored canonical bytes (NOT the inline result, whose
	// whitespace the JSON envelope re-indents) so replicas serve
	// byte-identical responses.
	b, ok := c.cacheFetch(owner, key)
	if !ok {
		return
	}
	c.addHolder(key, owner.ID)
	copies := 0
	for _, wk := range c.rankLive(key) {
		if wk.ID == owner.ID {
			continue
		}
		if copies >= c.cfg.Replicas-1 {
			break
		}
		if c.cachePush(wk, key, b) {
			c.addHolder(key, wk.ID)
			c.m.replications.Add(1)
		}
		copies++
	}
}

// cacheFetch reads a worker's stored bytes for a content key.
func (c *Coordinator) cacheFetch(wk WorkerInfo, key string) ([]byte, bool) {
	resp, err := c.cfg.Client.Get(wk.URL + "/cache/" + key)
	if err != nil {
		c.ejectDead(wk, err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil || len(b) == 0 {
		return nil, false
	}
	return b, true
}

// cachePush writes bytes into a worker's cache under a content key.
func (c *Coordinator) cachePush(wk WorkerInfo, key string, b []byte) bool {
	req, err := http.NewRequest(http.MethodPut, wk.URL+"/cache/"+key, bytes.NewReader(b))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.ejectDead(wk, err)
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK
}
