package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"eventpf/internal/harness"
	"eventpf/internal/serve"
	"eventpf/internal/workloads"
)

// workerSubmitResponse is the slice of a worker's POST /jobs body the
// coordinator needs for bookkeeping; the client still receives the
// worker's bytes verbatim.
type workerSubmitResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  serve.State     `json:"state"`
	Cached bool            `json:"cached"`
	Dedup  bool            `json:"dedup"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// handleSubmit resolves the spec locally (same fold as the workers, so the
// content key — and therefore the route — is decided before any network
// hop), walks the key's replica order with capped exponential backoff +
// jitter, peer-fills ahead of ownership changes, and forwards the chosen
// worker's response verbatim.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec harness.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	c.m.routed.Add(1)
	if spec.Scale == 0 {
		// Make the scale explicit so every worker hashes the same key no
		// matter how its own default is configured.
		spec.Scale = c.cfg.DefaultScale
	}
	resolved, err := spec.Resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:           err.Error(),
			ValidBenchmarks: workloads.MenuNames(),
			ValidSchemes:    harness.SchemeNames(),
		})
		return
	}
	key := resolved.Key()
	order := c.rankLive(key)
	if len(order) == 0 {
		c.m.noWorkers.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no live workers registered"})
		return
	}

	body, _ := json.Marshal(spec)
	query := ""
	if r.URL.RawQuery != "" {
		query = "?" + r.URL.RawQuery
	}
	var lastErr error
	for i, wk := range order {
		if i > 0 {
			c.m.proxyRetries.Add(1)
			time.Sleep(c.backoff(i - 1))
		}
		// If this worker is not yet a holder of an already-computed result
		// (it just joined, or it is a failover target), fill it from a peer
		// before submitting so it never re-simulates.
		c.maybePeerFill(key, wk)

		resp, err := c.cfg.Client.Post(wk.URL+"/jobs"+query, "application/json", bytes.NewReader(body))
		if err != nil {
			c.ejectDead(wk, err)
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			c.ejectDead(wk, err)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining: still alive (finishing in-flight jobs), just not
			// admitting. Route around it without ejecting.
			lastErr = fmt.Errorf("worker %s is draining", wk.ID)
			continue
		}

		var sr workerSubmitResponse
		if json.Unmarshal(raw, &sr) == nil {
			if sr.ID != "" {
				c.recordRoute(sr.ID, &route{workerID: wk.ID, upstreamID: sr.ID, key: key, spec: spec})
			}
			if sr.Cached {
				c.addHolder(key, wk.ID)
			} else if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
				go c.replicate(wk, key, spec)
			}
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra) // backpressure hint survives the proxy
		}
		copyRaw(w, resp.StatusCode, resp.Header.Get("Content-Type"), raw)
		return
	}
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("no worker could take the job: %v", lastErr),
	})
}

// backoff returns the capped exponential delay before retry n (0-based),
// with up to 50% jitter so synchronized retries spread out.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.RetryBase << uint(n)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	jitter := c.cfg.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	return d + time.Duration(jitter()*0.5*float64(d))
}

// ejectDead removes a worker that failed at the transport level; its
// tombstone counters stay in the merged metrics.
func (c *Coordinator) ejectDead(wk WorkerInfo, _ error) {
	c.reg.remove(wk.ID)
}

// handleJob proxies a job status lookup to the worker that owns the ID.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.proxyJobGet(w, r, "")
}

// handleJobResult proxies the canonical result bytes; if the owning worker
// died, any surviving holder of the content key serves them instead.
func (c *Coordinator) handleJobResult(w http.ResponseWriter, r *http.Request) {
	c.proxyJobGet(w, r, "/result")
}

func (c *Coordinator) proxyJobGet(w http.ResponseWriter, r *http.Request, suffix string) {
	rt, ok := c.routeOf(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job routed through this coordinator"})
		return
	}
	if wk, ok := c.reg.get(rt.workerID); ok {
		resp, err := c.cfg.Client.Get(wk.URL + "/jobs/" + rt.upstreamID + suffix)
		if err == nil {
			defer resp.Body.Close()
			copyResponse(w, resp)
			return
		}
		c.ejectDead(wk, err)
	}
	if suffix == "/result" {
		if b, ok := c.fetchFromHolders(rt.key); ok {
			copyRaw(w, http.StatusOK, "application/json", b)
			return
		}
	}
	writeJSON(w, http.StatusBadGateway, errorResponse{Error: "worker holding this job is gone"})
}

func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rt, ok := c.routeOf(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job routed through this coordinator"})
		return
	}
	wk, ok := c.reg.get(rt.workerID)
	if !ok {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "worker holding this job is gone"})
		return
	}
	req, _ := http.NewRequestWithContext(r.Context(), http.MethodDelete, wk.URL+"/jobs/"+rt.upstreamID, nil)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.ejectDead(wk, err)
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "worker holding this job is gone"})
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// stateRank orders lifecycle states so a failover re-attach can drop
// duplicate "queued"/"running" transitions the client already saw.
func stateRank(s serve.State) int {
	switch s {
	case serve.StateQueued:
		return 0
	case serve.StateRunning:
		return 1
	default:
		return 2
	}
}

// handleJobEvents streams a job's SSE chain through the coordinator. The
// coordinator re-numbers events densely with its own counter; when the
// upstream worker dies mid-stream it re-places the job on the next live
// replica (peer-filling first), drops the replacement's duplicate
// lifecycle prefix, and continues the chain — so the client sees one
// gap-free, strictly increasing seq chain with a single terminal event no
// matter how many workers died along the way.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rt, ok := c.routeOf(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job routed through this coordinator"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	out := int64(0) // next client-facing seq
	sentRank := -1
	cur := *rt
	tried := map[string]bool{}
	for hop := 0; hop < len(c.reg.liveWorkers())+2; hop++ {
		if wk, ok := c.reg.get(cur.workerID); ok {
			tried[wk.ID] = true
			if c.streamEvents(w, r, fl, wk, cur.upstreamID, &out, &sentRank) {
				return // terminal event delivered
			}
			if r.Context().Err() != nil {
				return // client went away
			}
		}
		// The upstream ended without a terminal event: the worker died or
		// evicted the job. Re-place the job on the next live replica.
		c.m.sseFailovers.Add(1)
		next, sr, ok := c.failoverSubmit(rt.key, rt.spec, tried)
		if !ok {
			serve.WriteSSE(w, serve.ProgressEvent{
				Seq: out, State: serve.StateFailed, Phase: "failover",
				Error: "worker lost mid-stream and no replica could take the job",
			})
			fl.Flush()
			return
		}
		if sr.Cached || sr.State == serve.StateDone {
			// The replica already holds the result (replication or peer
			// fill): close the chain without re-simulating.
			if sentRank < stateRank(serve.StateRunning) {
				serve.WriteSSE(w, serve.ProgressEvent{Seq: out, State: serve.StateRunning, Phase: "failover"})
				out++
			}
			serve.WriteSSE(w, serve.ProgressEvent{
				Seq: out, State: serve.StateDone, Phase: "failover: served from replica cache",
			})
			fl.Flush()
			return
		}
		cur = route{workerID: next.ID, upstreamID: sr.ID, key: rt.key, spec: rt.spec}
		c.recordRoute(r.PathValue("id"), &cur) // later /result lookups follow the job
	}
	serve.WriteSSE(w, serve.ProgressEvent{
		Seq: out, State: serve.StateFailed, Phase: "failover", Error: "failover attempts exhausted",
	})
	fl.Flush()
}

// streamEvents forwards one upstream SSE stream, re-numbering seqs with
// the coordinator's dense counter and dropping lifecycle duplicates after
// a failover. Returns true when a terminal event was delivered.
func (c *Coordinator) streamEvents(w http.ResponseWriter, r *http.Request, fl http.Flusher,
	wk WorkerInfo, upstreamID string, out *int64, sentRank *int) bool {

	resp, err := c.cfg.Client.Get(wk.URL + "/jobs/" + upstreamID + "/events")
	if err != nil {
		c.ejectDead(wk, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	// Unblock the scanner when the client disconnects.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.Context().Done():
			resp.Body.Close()
		case <-done:
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev serve.ProgressEvent
		if json.Unmarshal([]byte(data), &ev) != nil {
			continue
		}
		if rk := stateRank(ev.State); rk < *sentRank {
			continue // duplicate queued/running replay after a failover
		} else if rk > *sentRank {
			*sentRank = rk
		}
		ev.Seq = *out
		*out++
		serve.WriteSSE(w, ev)
		fl.Flush()
		if ev.State.Terminal() {
			return true
		}
	}
	return false
}

// failoverSubmit re-places a job's spec on the best untried live replica,
// peer-filling the target first so an already-computed result is served
// from cache rather than re-simulated. Returns the worker and its decoded
// submit response.
func (c *Coordinator) failoverSubmit(key string, spec harness.JobSpec, tried map[string]bool) (WorkerInfo, workerSubmitResponse, bool) {
	body, _ := json.Marshal(spec)
	for i, wk := range c.rankLive(key) {
		if tried[wk.ID] {
			continue
		}
		tried[wk.ID] = true
		if i > 0 {
			time.Sleep(c.backoff(0))
		}
		c.maybePeerFill(key, wk)
		resp, err := c.cfg.Client.Post(wk.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			c.ejectDead(wk, err)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode == http.StatusServiceUnavailable {
			continue
		}
		var sr workerSubmitResponse
		if json.Unmarshal(raw, &sr) != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted) {
			continue
		}
		if sr.Cached {
			c.addHolder(key, wk.ID)
		}
		if sr.ID != "" {
			go c.replicate(wk, key, spec)
		}
		return wk, sr, true
	}
	return WorkerInfo{}, workerSubmitResponse{}, false
}

// copyResponse forwards an upstream response verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// copyRaw writes already-read upstream bytes verbatim.
func copyRaw(w http.ResponseWriter, code int, contentType string, b []byte) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(code)
	_, _ = w.Write(b)
}
