package cluster

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerInfo identifies one ppfserve worker: a stable ID (used on the hash
// ring and as its job-ID prefix) and the base URL peers reach it at.
type WorkerInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// workerState is the registry's view of one live worker.
type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
	// metrics is the last successful /metrics scrape; when the worker is
	// ejected these counters fold into the departed aggregate so cluster
	// totals (memo misses above all) survive worker death.
	metrics map[string]int64
}

// registry tracks live workers and the folded counters of departed ones.
type registry struct {
	mu       sync.Mutex
	live     map[string]*workerState
	departed map[string]int64 // summed counters of every ejected worker
	departedN int
}

func newRegistry() *registry {
	return &registry{
		live:     map[string]*workerState{},
		departed: map[string]int64{},
	}
}

// upsert registers or refreshes a worker, returning true when it is new.
func (r *registry) upsert(info WorkerInfo, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.live[info.ID]
	if ok {
		w.info = info
		w.lastBeat = now
		return false
	}
	r.live[info.ID] = &workerState{info: info, lastBeat: now}
	return true
}

// remove ejects a worker, folding its last-known counters into the
// departed aggregate. Idempotent.
func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.live[id]
	if !ok {
		return false
	}
	for name, v := range w.metrics {
		if summable(name) {
			r.departed[name] += v
		}
	}
	r.departedN++
	delete(r.live, id)
	return true
}

// get returns a live worker's info.
func (r *registry) get(id string) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.live[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return w.info, true
}

// liveWorkers lists live workers sorted by ID.
func (r *registry) liveWorkers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.live))
	for _, w := range r.live {
		out = append(out, w.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// stale returns the IDs of workers whose last heartbeat predates the TTL.
func (r *registry) stale(now time.Time, ttl time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, w := range r.live {
		if now.Sub(w.lastBeat) > ttl {
			out = append(out, id)
		}
	}
	return out
}

// setMetrics records a worker's latest /metrics scrape.
func (r *registry) setMetrics(id string, m map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.live[id]; ok {
		w.metrics = m
	}
}

// snapshot returns a copy of every live worker's last scrape, the departed
// aggregate, and the departed count.
func (r *registry) snapshot() (perWorker map[string]map[string]int64, departed map[string]int64, departedN int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	perWorker = make(map[string]map[string]int64, len(r.live))
	for id, w := range r.live {
		m := make(map[string]int64, len(w.metrics))
		for k, v := range w.metrics {
			m[k] = v
		}
		perWorker[id] = m
	}
	departed = make(map[string]int64, len(r.departed))
	for k, v := range r.departed {
		departed[k] = v
	}
	return perWorker, departed, r.departedN
}

// summable reports whether a metric line is a monotonic counter that can
// be summed across workers and folded into the departed aggregate. Gauges
// (queue depth, inflight, …) and histogram quantiles are not.
func summable(name string) bool {
	switch name {
	case "ppfserve_queue_depth", "ppfserve_queue_capacity", "ppfserve_workers",
		"ppfserve_jobs_inflight", "ppfserve_cache_entries", "ppfserve_cache_bytes",
		"ppfserve_draining":
		return false
	}
	return !strings.HasSuffix(name, "_p50") && !strings.HasSuffix(name, "_p99") &&
		!strings.HasSuffix(name, "_max")
}
