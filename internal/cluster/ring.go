// Package cluster shards the simulation service across many ppfserve
// workers behind one thin coordinator. Jobs route by rendezvous hashing of
// their SHA-256 content address (harness.Job.Key), so every duplicate
// request for the same resolved config lands on the worker that already
// holds the cached bytes; completed results replicate to the next replica
// on the ring, a newly-responsible worker peer-fills from the previous
// owner before simulating, and a dead worker's traffic fails over to its
// replicas with capped exponential backoff. The shape mirrors the paper's
// own scaling unit — many small identical units behind one scheduler —
// applied one level up.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// rankWorkers orders worker IDs by rendezvous (highest-random-weight)
// score for a content key, best first. Every node computes the same order
// independently, membership changes move only the keys whose top-ranked
// worker joined or left (~1/n of the space), and — unlike a ring walk —
// the runner-up order doubles as the replica and failover order.
func rankWorkers(key string, ids []string) []string {
	type scored struct {
		id    string
		score uint64
	}
	ranked := make([]scored, 0, len(ids))
	for _, id := range ids {
		ranked = append(ranked, scored{id: id, score: rendezvousScore(key, id)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.id
	}
	return out
}

// rendezvousScore hashes (worker, key) into a uint64. SHA-256 keeps the
// score family in the same hash universe as the content keys themselves,
// and its avalanche behaviour gives the near-uniform spread rendezvous
// hashing needs for balance.
func rendezvousScore(key, id string) uint64 {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}
