package cluster

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// scrapeLiveWorkers refreshes every live worker's /metrics snapshot in
// parallel. Scrapes are bounded by ScrapeTimeout so one hung worker cannot
// stall the merged /metrics view; a failed scrape keeps the previous
// snapshot (liveness is the heartbeat's job, not the scraper's).
func (c *Coordinator) scrapeLiveWorkers() {
	live := c.reg.liveWorkers()
	if len(live) == 0 {
		return
	}
	client := &http.Client{Timeout: c.cfg.ScrapeTimeout}
	var wg sync.WaitGroup
	for _, wk := range live {
		wg.Add(1)
		go func(wk WorkerInfo) {
			defer wg.Done()
			if m, ok := scrapeMetrics(client, wk.URL); ok {
				c.reg.setMetrics(wk.ID, m)
			}
		}(wk)
	}
	wg.Wait()
}

// scrapeMetrics fetches one worker's /metrics and parses its
// "name value" lines.
func scrapeMetrics(client *http.Client, baseURL string) (map[string]int64, bool) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, true
}

// fetchFromHolders retrieves a key's canonical result bytes from any live
// recorded holder — the read path's fallback when the worker that owned the
// job ID has died but its result was replicated.
func (c *Coordinator) fetchFromHolders(key string) ([]byte, bool) {
	for _, id := range c.holdersOf(key) {
		wk, ok := c.reg.get(id)
		if !ok {
			continue
		}
		if b, ok := c.cacheFetch(wk, key); ok {
			return b, true
		}
		c.dropHolder(key, id)
	}
	return nil, false
}
