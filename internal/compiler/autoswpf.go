package compiler

import (
	"eventpf/internal/ir"
)

// InsertSoftwarePrefetches implements the paper's reference [2]
// (Ainsworth & Jones, "Software prefetching for indirect memory accesses",
// CGO 2017) over our IR: for every loop with a recognised induction
// variable it finds stride-indirect loads — loads whose address depends on
// exactly one other in-loop load that is itself affine in the induction
// variable — and inserts
//
//	swpf(&index[i + 2*dist])   // keep the index stream ahead of its use
//	k := index[i + dist]       // look-ahead load of the index
//	swpf(&target[k])           // prefetch the future indirect target
//
// in the block of the indirect load. The pass gives the paper's §6.4
// pipeline its front half: plain loop → software prefetches → (Algorithm 1)
// → programmable events.
//
// dist is the look-ahead distance in elements; 0 selects the default 16.
// The return value counts instrumented indirect loads.
func InsertSoftwarePrefetches(fn *ir.Fn, dist int64) int {
	if dist <= 0 {
		dist = 16
	}
	loops := fn.Loops()
	db := fn.DefBlocks()
	idom := fn.Dominators()

	inserted := 0
	for _, l := range loops {
		if l.Induction == nil {
			continue
		}
		for _, target := range terminalIndirectLoads(fn, l, db, idom) {
			if instrumentLoad(fn, l, db, target, dist) {
				inserted++
			}
		}
	}
	return inserted
}

// instrumentLoad inserts the prefetch sequence for one indirect load: an
// index-stream prefetch at twice the distance, look-ahead loads for each
// intermediate level of the chain, and a software prefetch of the final
// target. Declines (returning false) on shapes the CGO pass cannot handle.
func instrumentLoad(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, target ir.Value, dist int64) bool {
	iv := l.Induction
	chain, err := buildChain(fn, l, db, iv, fn.Instr(target).A)
	if err != nil || len(chain) < 2 {
		return false
	}
	if _, ok := affineOf(fn, l, db, chain[0].root, iv.Phi); !ok {
		return false
	}

	block := db[target]

	// iv + dist and iv + 2*dist.
	distC := fn.NewInstr(ir.Instr{Op: ir.Const, A: ir.NoValue, B: ir.NoValue, Imm: dist})
	fn.InsertBeforeTerminator(block, distC)
	iv1 := fn.NewInstr(ir.Instr{Op: ir.Add, A: iv.Phi, B: distC})
	fn.InsertBeforeTerminator(block, iv1)
	iv2 := fn.NewInstr(ir.Instr{Op: ir.Add, A: iv1, B: distC})
	fn.InsertBeforeTerminator(block, iv2)

	// swpf(&index[iv + 2*dist]): keep the stride stream itself ahead.
	sym := fn.Instr(chain[1].input).Sym
	idxAddr2, ok := cloneExpr(fn, block, chain[0].root, map[ir.Value]ir.Value{iv.Phi: iv2})
	if !ok {
		return false
	}
	swpfIdx := fn.NewInstr(ir.Instr{Op: ir.SWPf, A: idxAddr2, B: ir.NoValue, Sym: sym})
	fn.InsertBeforeTerminator(block, swpfIdx)

	// Walk the chain at distance dist: load each intermediate level,
	// prefetch the last. chain[k].root computed with the substitutions
	// accumulated so far; chain[k].input (for k ≥ 1) is the load feeding
	// the next level.
	subst := map[ir.Value]ir.Value{iv.Phi: iv1}
	for k := 0; k < len(chain)-1; k++ {
		addr, ok := cloneExpr(fn, block, chain[k].root, subst)
		if !ok {
			return false
		}
		ld := fn.NewInstr(ir.Instr{Op: ir.Load, A: addr, B: ir.NoValue,
			Sym: fn.Instr(chain[k+1].input).Sym})
		fn.InsertBeforeTerminator(block, ld)
		subst[chain[k+1].input] = ld
	}
	tgtAddr, ok := cloneExpr(fn, block, chain[len(chain)-1].root, subst)
	if !ok {
		return false
	}
	swpfTgt := fn.NewInstr(ir.Instr{Op: ir.SWPf, A: tgtAddr, B: ir.NoValue,
		Sym: fn.Instr(target).Sym})
	fn.InsertBeforeTerminator(block, swpfTgt)
	return true
}

// cloneExpr copies the expression DAG rooted at v into block (before its
// terminator), substituting values per subst; values outside the cone
// (loop invariants, or substitution keys) are referenced directly. Returns
// false on ops it cannot clone.
func cloneExpr(fn *ir.Fn, block ir.BlockID, v ir.Value, subst map[ir.Value]ir.Value) (ir.Value, bool) {
	if nv, ok := subst[v]; ok {
		return nv, true
	}
	in := fn.Instr(v)
	switch {
	case in.Op == ir.Const || in.Op == ir.Arg:
		return v, true
	case in.Op == ir.Load || in.Op == ir.Phi:
		// Reached an unsubstituted load or phi: reference it directly —
		// legal only if it dominates the block, which holds for the cones
		// buildChain accepts. The caller's substitution map handles the
		// one load that must be replaced.
		return v, true
	case in.Op.IsBinary():
		a, okA := cloneExpr(fn, block, in.A, subst)
		if !okA {
			return ir.NoValue, false
		}
		b, okB := cloneExpr(fn, block, in.B, subst)
		if !okB {
			return ir.NoValue, false
		}
		if a == in.A && b == in.B {
			return v, true // nothing substituted below: reuse the original
		}
		nv := fn.NewInstr(ir.Instr{Op: in.Op, A: a, B: b})
		fn.InsertBeforeTerminator(block, nv)
		return nv, true
	}
	return ir.NoValue, false
}
