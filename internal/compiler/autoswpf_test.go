package compiler

import (
	"testing"

	"eventpf/internal/cpu"
	"eventpf/internal/ir"
	"eventpf/internal/mem"
)

func TestAutoSWPfInstrumentsIndirectLoop(t *testing.T) {
	fn := buildFigure5(t, false, false) // plain acc += C[B[A[x]]]
	n := InsertSoftwarePrefetches(fn, 16)
	if n != 1 {
		t.Fatalf("instrumented %d loads, want 1 (the C access)", n)
	}
	if err := fn.Verify(); err != nil {
		t.Fatalf("pass broke the function: %v\n%s", err, fn)
	}
	if got := countOps(fn, ir.SWPf); got != 2 {
		t.Errorf("software prefetches = %d, want 2 (index + target)", got)
	}
	// Two extra look-ahead loads (the A and B levels of the chain).
	if got := countOps(fn, ir.Load); got != 5 {
		t.Errorf("loads = %d, want 5", got)
	}
}

func TestAutoSWPfPreservesSemantics(t *testing.T) {
	plain := buildFigure5(t, false, false)
	auto := buildFigure5(t, false, false)
	if InsertSoftwarePrefetches(auto, 8) != 1 {
		t.Fatal("instrumentation failed")
	}

	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	const n = 200
	a := arena.AllocWords("A", n+64)
	b := arena.AllocWords("B", n+64)
	c := arena.AllocWords("C", n+64)
	seed := uint64(5)
	for i := uint64(0); i < n+64; i++ {
		seed = seed*6364136223846793005 + 1
		bk.Write64(a.Base+i*8, seed%n)
		bk.Write64(b.Base+i*8, (seed>>7)%n)
		bk.Write64(c.Base+i*8, seed&0xFFF)
	}

	run := func(fn *ir.Fn) uint64 {
		it := ir.NewInterp(fn, bk, nil, new(int64), a.Base, b.Base, c.Base, n)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		v, _ := it.Result()
		return v
	}
	if got, want := run(auto), run(plain); got != want {
		t.Errorf("instrumented result %d != plain %d", got, want)
	}
}

func TestAutoSWPfThenConversionPipeline(t *testing.T) {
	// The §6.4 pipeline: plain loop → auto software prefetches →
	// Algorithm 1 → event kernels, no hand-written annotations at all.
	fn := buildFigure5(t, false, false)
	if InsertSoftwarePrefetches(fn, 16) != 1 {
		t.Fatal("instrumentation failed")
	}
	res, err := ConvertSoftwarePrefetches(fn, NewAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converted != 2 {
		t.Fatalf("converted %d chains (failed %d: %v), want 2", res.Converted, res.Failed, res.Errors)
	}
	// The full A→B→C chain converts to three kernels plus the index stream.
	if len(res.Kernels) < 4 {
		t.Errorf("kernels = %d, want ≥ 4", len(res.Kernels))
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := countOps(fn, ir.SWPf); got != 0 {
		t.Errorf("%d software prefetches survive the full pipeline", got)
	}
}

func TestAutoSWPfSkipsPlainStrideLoop(t *testing.T) {
	// A loop with only a strided load has no indirection to instrument.
	b := ir.NewBuilder("stride", 2)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	base, n := b.Arg(0), b.Arg(1)
	zero := b.Const(0)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi()
	acc := b.Phi()
	b.CondBr(b.Bin(ir.CmpLTU, i, n), body, exit)
	b.SetBlock(body)
	v := b.Load(b.Add(base, b.Shl(i, b.Const(3))), "arr")
	acc2 := b.Add(acc, v)
	i2 := b.Add(i, b.Const(1))
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(acc)
	b.SetPhiArgs(i, zero, i2)
	b.SetPhiArgs(acc, zero, acc2)
	fn := b.MustFinish()

	if n := InsertSoftwarePrefetches(fn, 16); n != 0 {
		t.Errorf("instrumented %d loads in a stride-only loop", n)
	}
}

func TestAutoSWPfEmitsMicroOps(t *testing.T) {
	// The inserted prefetches must reach the core as OpSWPf micro-ops.
	fn := buildFigure5(t, false, false)
	InsertSoftwarePrefetches(fn, 4)
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	a := arena.AllocWords("A", 64)
	b := arena.AllocWords("B", 64)
	c := arena.AllocWords("C", 64)
	it := ir.NewInterp(fn, bk, nil, new(int64), a.Base, b.Base, c.Base, 8)
	swpf := 0
	for {
		op, ok := it.Next()
		if !ok {
			break
		}
		if op.Kind == cpu.OpSWPf {
			swpf++
		}
	}
	if swpf != 16 { // 2 per iteration × 8 iterations
		t.Errorf("swpf micro-ops = %d, want 16", swpf)
	}
}
