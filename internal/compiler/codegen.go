package compiler

import (
	"fmt"
	"sort"

	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// codegenCtx carries shared state while compiling one chain's events.
type codegenCtx struct {
	fn *ir.Fn
	l  *ir.Loop
	db []ir.BlockID
	iv *ir.InductionVar

	// gregs maps loop-invariant IR values to prefetcher global registers;
	// entries are added on demand and later materialised as CfgGlobal
	// instructions in the preheader.
	gregs map[ir.Value]int
	alloc *Alloc

	// trigger is the affine form of the first event's prefetch address
	// (base + coeff*iv + off), used to reconstruct the induction variable
	// from the observed address.
	trigger affine

	// ewmaGroup, if ≥0, makes the first event add the EWMA look-ahead
	// distance to the reconstructed induction variable (pragma pass);
	// conversion instead inherits the constant distance already present in
	// the software prefetch's address expression.
	ewmaGroup int
}

func (cc *codegenCtx) gregFor(v ir.Value) int {
	if g, ok := cc.gregs[v]; ok {
		return g
	}
	g := cc.alloc.greg()
	cc.gregs[v] = g
	return g
}

// compileEvent lowers one event to PPU instructions. chainTag is the kernel
// id to tag the emitted prefetch with (fires on fill), or ppu.NoTag for the
// last event in the chain.
func (cc *codegenCtx) compileEvent(ev *event, chainTag int) ([]ppu.Instr, error) {
	fn := cc.fn
	var prog []ppu.Instr
	regs := map[ir.Value]uint8{}
	next := uint8(1)
	var free []uint8

	// Remaining-use counts let registers be recycled once a value is dead;
	// the root is kept live for the final prefetch.
	uses := map[ir.Value]int{ev.root: 1}
	for _, v := range ev.cone {
		in := fn.Instr(v)
		for _, o := range []ir.Value{in.A, in.B} {
			if o != ir.NoValue {
				uses[o]++
			}
		}
	}
	alloc := func(v ir.Value) (uint8, error) {
		if r, ok := regs[v]; ok {
			return r, nil
		}
		var r uint8
		if len(free) > 0 {
			r = free[len(free)-1]
			free = free[:len(free)-1]
		} else {
			if next >= ppu.NumRegs {
				return 0, fmt.Errorf("event needs more than %d registers", ppu.NumRegs-1)
			}
			r = next
			next++
		}
		regs[v] = r
		return r, nil
	}
	release := func(v ir.Value) {
		uses[v]--
		if uses[v] == 0 {
			if r, ok := regs[v]; ok {
				free = append(free, r)
				delete(regs, v)
			}
		}
	}

	// Materialise a leaf value into a register.
	materialise := func(v ir.Value) error {
		if _, ok := regs[v]; ok {
			return nil
		}
		in := fn.Instr(v)
		r, err := alloc(v)
		if err != nil {
			return err
		}
		switch {
		case v == ev.input:
			// The loaded value that triggered this event: forwarded in the
			// captured cache line at the trigger address's offset.
			prog = append(prog, ppu.Instr{Op: ppu.LDDATA, Rd: r})
		case v == cc.iv.Phi:
			// Reconstruct x from the observed address:
			//   x = (vaddr - base) >> log2(coeff)   (§6.3)
			shift, ok := log2(cc.trigger.coeff)
			if !ok {
				return fmt.Errorf("element size %d not a power of two", cc.trigger.coeff)
			}
			prog = append(prog, ppu.Instr{Op: ppu.VADDR, Rd: r})
			if cc.trigger.base != ir.NoValue {
				baseReg, err := alloc(ir.Value(-2 - int(cc.trigger.base))) // pseudo-slot
				if err != nil {
					return err
				}
				prog = append(prog,
					ppu.Instr{Op: ppu.LDG, Rd: baseReg, Imm: int64(cc.gregFor(cc.trigger.base))},
					ppu.Instr{Op: ppu.SUB, Rd: r, Ra: r, Rb: baseReg})
			}
			prog = append(prog, ppu.Instr{Op: ppu.SHRI, Rd: r, Ra: r, Imm: shift})
			if cc.ewmaGroup >= 0 {
				laReg, err := alloc(ir.Value(-1000)) // pseudo-slot for look-ahead
				if err != nil {
					return err
				}
				prog = append(prog,
					ppu.Instr{Op: ppu.LDEWMA, Rd: laReg, Imm: int64(cc.ewmaGroup)},
					ppu.Instr{Op: ppu.ADD, Rd: r, Ra: r, Rb: laReg})
			}
		case in.Op == ir.Const:
			prog = append(prog, ppu.Instr{Op: ppu.MOVI, Rd: r, Imm: in.Imm})
		default:
			// Loop-invariant value: configured into a global register.
			prog = append(prog, ppu.Instr{Op: ppu.LDG, Rd: r, Imm: int64(cc.gregFor(v))})
		}
		return nil
	}

	// Emit the cone in dependence order (SSA ids ascend with definition
	// order, so sorting gives a topological order).
	cone := append([]ir.Value(nil), ev.cone...)
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })

	// Leaves first.
	inCone := map[ir.Value]bool{}
	for _, v := range cone {
		inCone[v] = true
	}
	for _, v := range cone {
		in := fn.Instr(v)
		for _, o := range []ir.Value{in.A, in.B} {
			if o == ir.NoValue || inCone[o] {
				continue
			}
			if err := materialise(o); err != nil {
				return nil, err
			}
		}
	}
	if len(cone) == 0 {
		// Root itself is a leaf (e.g. prefetch of A[x] directly).
		if err := materialise(ev.root); err != nil {
			return nil, err
		}
	}

	opFor := map[ir.Op]ppu.Opcode{
		ir.Add: ppu.ADD, ir.Sub: ppu.SUB, ir.Mul: ppu.MUL,
		ir.And: ppu.AND, ir.Or: ppu.OR, ir.Xor: ppu.XOR,
		ir.Shl: ppu.SHL, ir.Shr: ppu.SHR,
	}
	for _, v := range cone {
		in := fn.Instr(v)
		op, ok := opFor[in.Op]
		if !ok {
			return nil, fmt.Errorf("op %s not supported on PPUs", in.Op)
		}
		ra, okA := regs[in.A]
		rb, okB := regs[in.B]
		if !okA || !okB {
			return nil, fmt.Errorf("internal: operand of v%d not materialised", v)
		}
		release(in.A)
		release(in.B)
		rd, err := alloc(v)
		if err != nil {
			return nil, err
		}
		prog = append(prog, ppu.Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
	}

	rootReg, ok := regs[ev.root]
	if !ok {
		return nil, fmt.Errorf("internal: root v%d not materialised", ev.root)
	}
	if chainTag != ppu.NoTag {
		prog = append(prog, ppu.Instr{Op: ppu.PFTAG, Ra: rootReg, Imm: int64(chainTag)})
	} else {
		prog = append(prog, ppu.Instr{Op: ppu.PF, Ra: rootReg})
	}
	prog = append(prog, ppu.Instr{Op: ppu.HALT})
	return prog, nil
}

// compileChain lowers every event of a chain, allocating kernel ids so each
// event's prefetch tags the next event's kernel.
func (cc *codegenCtx) compileChain(chain []*event) (map[int][]ppu.Instr, int, error) {
	ids := make([]int, len(chain))
	for i := range chain {
		ids[i] = cc.alloc.kernel()
	}
	kernels := make(map[int][]ppu.Instr, len(chain))
	for i, ev := range chain {
		tag := ppu.NoTag
		if i+1 < len(chain) {
			tag = ids[i+1]
		}
		prog, err := cc.compileEvent(ev, tag)
		if err != nil {
			return nil, 0, err
		}
		kernels[ids[i]] = prog
	}
	return kernels, ids[0], nil
}
