// Package compiler implements the paper's §6 compiler assistance over our
// IR: conversion of software-prefetch instructions into programmable-
// prefetcher event kernels (Algorithm 1), and automatic event generation
// for loops annotated with "#pragma prefetch" (§6.4). Both passes rewrite
// the function in place — inserting configuration instructions in the loop
// preheader and removing dead prefetch code — and return the PPU kernels
// to load into the prefetcher.
package compiler

import (
	"fmt"

	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// Alloc hands out kernel ids, filter-table slots, global registers and EWMA
// groups so several compiled loops in one program do not collide.
type Alloc struct {
	NextKernel int
	NextSlot   int
	NextGReg   int
	NextEWMA   int
}

// NewAlloc returns an allocator starting at kernel id 1 (0 is reserved).
func NewAlloc() *Alloc { return &Alloc{NextKernel: 1} }

func (a *Alloc) kernel() int { k := a.NextKernel; a.NextKernel++; return k }
func (a *Alloc) slot() int   { s := a.NextSlot; a.NextSlot++; return s }
func (a *Alloc) greg() int {
	g := a.NextGReg
	a.NextGReg++
	if g >= ppu.NumGlobals {
		panic("compiler: out of prefetcher global registers")
	}
	return g
}
func (a *Alloc) ewma() int {
	e := a.NextEWMA
	a.NextEWMA++
	if e >= 8 {
		panic("compiler: out of EWMA groups")
	}
	return e
}

// Result reports what a pass produced.
type Result struct {
	// Kernels are the generated PPU programs, keyed by kernel id.
	Kernels map[int][]ppu.Instr
	// Converted counts prefetches (or discovered patterns) successfully
	// turned into event chains; Failed counts the ones left untouched.
	Converted int
	Failed    int
	// Errors records why each failed conversion was rejected.
	Errors []string
}

// affine is the result of analysing an address expression as
// base + Coeff*iv + Off, where base is a single loop-invariant value.
type affine struct {
	base  ir.Value
	coeff int64
	off   int64
}

// affineOf decomposes the address expression rooted at v. iv may be
// ir.NoValue when no induction variable is expected. Loads act as opaque
// leaves and make the decomposition fail (callers split on loads first).
func affineOf(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, v ir.Value, iv ir.Value) (affine, bool) {
	in := fn.Instr(v)
	if v == iv {
		return affine{base: ir.NoValue, coeff: 1}, true
	}
	if fn.LoopInvariant(l, v, db) {
		if in.Op == ir.Const {
			return affine{base: ir.NoValue, off: in.Imm}, true
		}
		return affine{base: v, coeff: 0}, true
	}
	switch in.Op {
	case ir.Add, ir.Sub:
		a, okA := affineOf(fn, l, db, in.A, iv)
		b, okB := affineOf(fn, l, db, in.B, iv)
		if !okA || !okB {
			return affine{}, false
		}
		if in.Op == ir.Sub {
			if b.base != ir.NoValue {
				return affine{}, false
			}
			b.coeff, b.off = -b.coeff, -b.off
		}
		if a.base != ir.NoValue && b.base != ir.NoValue {
			return affine{}, false // two symbolic bases: not our shape
		}
		base := a.base
		if base == ir.NoValue {
			base = b.base
		}
		return affine{base: base, coeff: a.coeff + b.coeff, off: a.off + b.off}, true
	case ir.Mul:
		return affineMulShift(fn, l, db, in, iv, func(x, k int64) int64 { return x * k })
	case ir.Shl:
		return affineMulShift(fn, l, db, in, iv, func(x, k int64) int64 { return x << uint(k) })
	}
	return affine{}, false
}

func affineMulShift(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, in *ir.Instr, iv ir.Value,
	apply func(x, k int64) int64) (affine, bool) {
	a, okA := affineOf(fn, l, db, in.A, iv)
	b, okB := affineOf(fn, l, db, in.B, iv)
	if !okA || !okB {
		return affine{}, false
	}
	// Exactly one side must be a pure constant.
	if b.base == ir.NoValue && b.coeff == 0 {
		return affine{base: a.base, coeff: apply(a.coeff, b.off), off: apply(a.off, b.off)}, true
	}
	if in.Op == ir.Mul && a.base == ir.NoValue && a.coeff == 0 {
		return affine{base: b.base, coeff: apply(b.coeff, a.off), off: apply(b.off, a.off)}, true
	}
	return affine{}, false
}

func log2(x int64) (int64, bool) {
	if x <= 0 || x&(x-1) != 0 {
		return 0, false
	}
	n := int64(0)
	for x > 1 {
		x >>= 1
		n++
	}
	return n, true
}

// event is one step of a prefetch chain: a cone of instructions recomputing
// an address, triggered either by a demand-load observation (first event,
// input == NoValue, address derived from the induction variable) or by the
// fill of the previous event's prefetch (input == the load instruction
// whose data the fill supplies).
type event struct {
	cone   []ir.Value
	input  ir.Value
	root   ir.Value
	usesIV bool
}

// buildChain performs the paper's backwards depth-first analysis from an
// address expression, splitting into single-load events (§6.1). It returns
// the chain ordered first-event-first.
func buildChain(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, iv *ir.InductionVar, addr ir.Value) ([]*event, error) {
	var chain []*event
	root := addr
	input := ir.NoValue // filled per iteration: the load ending each event
	for depth := 0; ; depth++ {
		if depth > 8 {
			return nil, fmt.Errorf("prefetch chain deeper than 8 events")
		}
		ev := &event{root: root, input: input}
		var loads []ir.Value
		seen := map[ir.Value]bool{}
		var visit func(v ir.Value) error
		visit = func(v ir.Value) error {
			if seen[v] {
				return nil
			}
			seen[v] = true
			in := fn.Instr(v)
			if v == iv.Phi {
				ev.usesIV = true
				return nil
			}
			if fn.LoopInvariant(l, v, db) {
				return nil // leaf: global register or constant
			}
			switch in.Op {
			case ir.Load:
				loads = append(loads, v)
				return nil
			case ir.Phi:
				return fmt.Errorf("non-induction phi v%d in address expression", v)
			case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr:
				ev.cone = append(ev.cone, v)
				if err := visit(in.A); err != nil {
					return err
				}
				return visit(in.B)
			default:
				return fmt.Errorf("unsupported op %s (v%d) in address expression", in.Op, v)
			}
		}
		if err := visit(root); err != nil {
			return nil, err
		}
		if len(loads) > 1 {
			return nil, fmt.Errorf("event needs %d loaded values at once", len(loads))
		}
		if len(loads) == 1 && ev.usesIV {
			return nil, fmt.Errorf("event mixes induction variable and loaded value")
		}
		chain = append([]*event{ev}, chain...)
		if len(loads) == 0 {
			if !ev.usesIV {
				return nil, fmt.Errorf("address is loop-invariant; nothing to convert")
			}
			return chain, nil
		}
		// Continue analysis from the load's own address: it becomes the
		// previous event, and this event is triggered by its fill.
		ld := loads[0]
		ev.input = ld
		root = fn.Instr(ld).A
		input = ir.NoValue
	}
}
