package compiler

import (
	"testing"

	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// buildFigure5 builds the paper's figure 5(a):
//
//	for (x = 0; x < N; x++) { swpf(&C[B[A[x+n]]]); acc += C[B[A[x]]]; }
//
// Args: 0=A, 1=B, 2=C, 3=N. withSWPf=false gives figure 5(b) (pragma form).
func buildFigure5(t testing.TB, withSWPf, withPragma bool) *ir.Fn {
	t.Helper()
	b := ir.NewBuilder("fig5", 4)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	aB, bB, cB, n := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	cond := b.Bin(ir.CmpLTU, x, n)
	b.CondBr(cond, body, exit)
	if withPragma {
		b.MarkPragma(head)
	}

	b.SetBlock(body)
	eight := b.Const(8)
	if withSWPf {
		dist := b.Const(16)
		xd := b.Add(x, dist)
		av := b.Load(b.Add(aB, b.Mul(xd, eight)), "A")
		bv := b.Load(b.Add(bB, b.Mul(av, eight)), "B")
		b.SWPf(b.Add(cB, b.Mul(bv, eight)), "C")
	}
	av := b.Load(b.Add(aB, b.Mul(x, eight)), "A")
	bv := b.Load(b.Add(bB, b.Mul(av, eight)), "B")
	cv := b.Load(b.Add(cB, b.Mul(bv, eight)), "C")
	acc2 := b.Add(acc, cv)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, acc2)
	return b.MustFinish()
}

func countOps(fn *ir.Fn, op ir.Op) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, v := range b.Instrs {
			if fn.Instr(v).Op == op {
				n++
			}
		}
	}
	return n
}

func TestConvertFigure5(t *testing.T) {
	fn := buildFigure5(t, true, false)
	loadsBefore := countOps(fn, ir.Load)

	res, err := ConvertSoftwarePrefetches(fn, NewAlloc())
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if res.Converted != 1 || res.Failed != 0 {
		t.Fatalf("converted=%d failed=%d, want 1/0", res.Converted, res.Failed)
	}
	// Three events: A (iv-triggered), B (on A fill), C (on B fill).
	if len(res.Kernels) != 3 {
		t.Fatalf("kernels = %d, want 3", len(res.Kernels))
	}
	if countOps(fn, ir.SWPf) != 0 {
		t.Error("software prefetch not removed")
	}
	// The duplicated A[x+n] and B[...] loads must be dead-code-eliminated.
	loadsAfter := countOps(fn, ir.Load)
	if loadsAfter != loadsBefore-2 {
		t.Errorf("loads after conversion = %d, want %d (prefetch loads removed)",
			loadsAfter, loadsBefore-2)
	}
	// Configuration instructions appear: 1 bounds + globals (B and C bases).
	if got := countOps(fn, ir.Cfg); got < 3 {
		t.Errorf("cfg instructions = %d, want ≥ 3", got)
	}
	if err := fn.Verify(); err != nil {
		t.Fatalf("function invalid after pass: %v", err)
	}
}

func TestConvertedKernelsChainCorrectly(t *testing.T) {
	fn := buildFigure5(t, true, false)
	res, err := ConvertSoftwarePrefetches(fn, NewAlloc())
	if err != nil {
		t.Fatal(err)
	}
	// Find the first event (kernel 1 from a fresh Alloc). It must use
	// vaddr (address reconstruction) and end in a tagged prefetch.
	k1 := res.Kernels[1]
	if k1 == nil {
		t.Fatalf("kernel 1 missing; have %v", keys(res.Kernels))
	}
	hasVaddr, hasPftag := false, false
	for _, in := range k1 {
		if in.Op == ppu.VADDR {
			hasVaddr = true
		}
		if in.Op == ppu.PFTAG {
			hasPftag = true
		}
	}
	if !hasVaddr || !hasPftag {
		t.Errorf("first event kernel lacks vaddr/pftag:\n%s", ppu.Disassemble(k1))
	}
	// The last event ends in an untagged pf.
	k3 := res.Kernels[3]
	last := k3[len(k3)-2] // before halt
	if last.Op != ppu.PF {
		t.Errorf("final event does not end the chain:\n%s", ppu.Disassemble(k3))
	}
}

func keys(m map[int][]ppu.Instr) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestConvertFailsOnListWalk(t *testing.T) {
	// while (p) { swpf(p->next); p = p->next; } — the address comes from a
	// non-induction phi, which Algorithm 1 rejects (the paper's G500-List
	// case).
	b := ir.NewBuilder("list", 1)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	p0 := b.Arg(0)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	p := b.Phi()
	i := b.Phi() // induction variable exists, but the swpf doesn't use it
	cond := b.Bin(ir.CmpNE, p, zero)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	b.SWPf(p, "node")
	next := b.Load(p, "node")
	one := b.Const(1)
	i2 := b.Add(i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(ir.NoValue)
	b.SetPhiArgs(p, p0, next)
	b.SetPhiArgs(i, zero, i2)
	fn := b.MustFinish()

	res, err := ConvertSoftwarePrefetches(fn, NewAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converted != 0 || res.Failed != 1 {
		t.Errorf("converted=%d failed=%d, want 0/1", res.Converted, res.Failed)
	}
	if countOps(fn, ir.SWPf) != 1 {
		t.Error("unconvertible software prefetch should stay in place")
	}
}

func TestPragmaFigure5(t *testing.T) {
	fn := buildFigure5(t, false, true)
	res, err := GeneratePragmaEvents(fn, NewAlloc())
	if err != nil {
		t.Fatalf("pragma: %v", err)
	}
	if res.Converted != 1 {
		t.Fatalf("converted=%d, want 1 (the C[B[A[x]]] chain)", res.Converted)
	}
	if len(res.Kernels) != 3 {
		t.Fatalf("kernels = %d, want 3", len(res.Kernels))
	}
	// First event must consult the EWMA for look-ahead.
	k1 := res.Kernels[1]
	hasEWMA := false
	for _, in := range k1 {
		if in.Op == ppu.LDEWMA {
			hasEWMA = true
		}
	}
	if !hasEWMA {
		t.Errorf("pragma first event lacks EWMA look-ahead:\n%s", ppu.Disassemble(k1))
	}
	// The original loads are untouched.
	if got := countOps(fn, ir.Load); got != 3 {
		t.Errorf("loads = %d, want 3", got)
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPragmaSkipsControlFlowLoads(t *testing.T) {
	// A loop whose indirect load sits behind a data-dependent branch: the
	// pragma pass must skip it (complicated control flow, §6.4).
	b := ir.NewBuilder("cf", 3)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	then := b.NewBlock("then")
	latch := b.NewBlock("latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	aB, bB, n := b.Arg(0), b.Arg(1), b.Arg(2)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	cond := b.Bin(ir.CmpLTU, x, n)
	b.CondBr(cond, body, exit)
	b.MarkPragma(head)

	b.SetBlock(body)
	eight := b.Const(8)
	av := b.Load(b.Add(aB, b.Mul(x, eight)), "A")
	isOdd := b.And(av, b.Const(1))
	b.CondBr(isOdd, then, latch)

	b.SetBlock(then)
	b.Load(b.Add(bB, b.Mul(av, eight)), "B") // indirect, but conditional
	b.Br(latch)

	b.SetBlock(latch)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(ir.NoValue)
	b.SetPhiArgs(x, zero, x2)
	fn := b.MustFinish()

	res, err := GeneratePragmaEvents(fn, NewAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converted != 0 {
		t.Errorf("converted=%d, want 0: the indirect load is control-dependent", res.Converted)
	}
}

func TestAffineAnalysis(t *testing.T) {
	fn := buildFigure5(t, false, false)
	loops := fn.Loops()
	if len(loops) != 1 {
		t.Fatal("expected one loop")
	}
	l := loops[0]
	db := fn.DefBlocks()
	// Find the A load: its address should be affine base=A coeff=8.
	for _, b := range fn.Blocks {
		for _, v := range b.Instrs {
			in := fn.Instr(v)
			if in.Op == ir.Load && in.Sym == "A" {
				a, ok := affineOf(fn, l, db, in.A, l.Induction.Phi)
				if !ok || a.coeff != 8 || a.base == ir.NoValue {
					t.Errorf("affine(A addr) = %+v ok=%v, want coeff 8 with base", a, ok)
				}
			}
		}
	}
}

func TestLoopBoundRecognised(t *testing.T) {
	fn := buildFigure5(t, false, false)
	l := fn.Loops()[0]
	bound, ok := fn.LoopBound(l)
	if !ok {
		t.Fatal("loop bound not recognised")
	}
	if fn.Instr(bound).Op != ir.Arg || fn.Instr(bound).Imm != 3 {
		t.Errorf("bound = v%d (%s), want arg 3", bound, fn.Instr(bound).Op)
	}
}

func TestDeadCodeElimKeepsSideEffects(t *testing.T) {
	b := ir.NewBuilder("dce", 1)
	e := b.NewBlock("entry")
	b.SetBlock(e)
	base := b.Arg(0)
	dead := b.Add(base, b.Const(8)) // unused
	live := b.Add(base, b.Const(16))
	b.Store(live, base, "out")
	b.Ret(ir.NoValue)
	fn := b.MustFinish()
	_ = dead
	removed := fn.DeadCodeElim()
	if removed == 0 {
		t.Error("nothing removed")
	}
	if countOps(fn, ir.Store) != 1 {
		t.Error("store removed")
	}
	if fn.Instr(live).Op == ir.Nop {
		t.Error("live address computation removed")
	}
}
