package compiler

import (
	"fmt"

	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// ConvertSoftwarePrefetches is the paper's Algorithm 1: it rewrites every
// convertible software-prefetch instruction inside a loop with a recognised
// induction variable into a chain of programmable-prefetcher event kernels,
// inserts the configuration instructions in the loop preheader, removes the
// software prefetch and dead-code-eliminates its address generation.
//
// Prefetches it cannot convert (no induction variable, multiple loads
// feeding one event, non-induction phi nodes, unsupported ops) are left in
// place as ordinary software prefetches and counted in Result.Failed.
func ConvertSoftwarePrefetches(fn *ir.Fn, alloc *Alloc) (*Result, error) {
	res := &Result{Kernels: map[int][]ppu.Instr{}}
	loops := fn.Loops()
	db := fn.DefBlocks()

	type target struct {
		v    ir.Value
		loop *ir.Loop
	}
	var targets []target
	for _, b := range fn.Blocks {
		l := innermostLoop(loops, b.ID)
		if l == nil || l.Induction == nil {
			continue
		}
		for _, v := range b.Instrs {
			if fn.Instr(v).Op == ir.SWPf {
				targets = append(targets, target{v, l})
			}
		}
	}

	converted := false
	for _, tg := range targets {
		if err := convertOne(fn, tg.loop, db, tg.v, alloc, res, -1); err != nil {
			res.Failed++
			res.Errors = append(res.Errors, err.Error())
			continue
		}
		fn.RemoveInstr(tg.v)
		res.Converted++
		converted = true
	}
	if converted {
		fn.DeadCodeElim()
		if err := fn.Verify(); err != nil {
			return nil, fmt.Errorf("compiler: pass broke the function: %v", err)
		}
	}
	return res, nil
}

func innermostLoop(loops []*ir.Loop, b ir.BlockID) *ir.Loop {
	var best *ir.Loop
	for _, l := range loops {
		if !l.Contains(b) {
			continue
		}
		if best == nil || len(l.Blocks) < len(best.Blocks) {
			best = l
		}
	}
	return best
}

// convertOne converts the address expression of the instruction at v (a
// SWPf for the conversion pass, a Load for the pragma pass) into an event
// chain plus configuration. ewmaGroup ≥ 0 requests dynamic look-ahead.
func convertOne(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, v ir.Value,
	alloc *Alloc, res *Result, ewmaGroup int) error {

	iv := l.Induction
	addr := fn.Instr(v).A
	chain, err := buildChain(fn, l, db, iv, addr)
	if err != nil {
		return err
	}

	// The first event must be reconstructible from an observed address:
	// base + coeff*iv + off with a single invariant base and pow-2 coeff.
	trig, ok := affineOf(fn, l, db, chain[0].root, iv.Phi)
	if !ok || trig.base == ir.NoValue || trig.coeff <= 0 {
		return fmt.Errorf("first event's address is not affine in the induction variable")
	}
	if _, ok := log2(trig.coeff); !ok {
		return fmt.Errorf("element size %d is not a power of two", trig.coeff)
	}

	bound, ok := fn.LoopBound(l)
	if !ok {
		return fmt.Errorf("loop bound not recognised")
	}
	pre := fn.Preheader(l)
	if pre < 0 {
		return fmt.Errorf("loop has no unique preheader")
	}

	cc := &codegenCtx{
		fn: fn, l: l, db: db, iv: iv,
		gregs: map[ir.Value]int{}, alloc: alloc,
		trigger: trig, ewmaGroup: ewmaGroup,
	}
	kernels, firstID, err := cc.compileChain(chain)
	if err != nil {
		return err
	}

	// Preheader configuration: hi = base + bound*coeff, then the bounds and
	// one global-register write per loop-invariant the kernels read.
	coeffC := fn.NewInstr(ir.Instr{Op: ir.Const, A: ir.NoValue, B: ir.NoValue, Imm: trig.coeff})
	fn.InsertBeforeTerminator(pre, coeffC)
	span := fn.NewInstr(ir.Instr{Op: ir.Mul, A: bound, B: coeffC})
	fn.InsertBeforeTerminator(pre, span)
	hi := fn.NewInstr(ir.Instr{Op: ir.Add, A: trig.base, B: span})
	fn.InsertBeforeTerminator(pre, hi)

	info := ir.CfgInfo{
		Kind: ir.CfgBounds, Slot: alloc.slot(),
		LoadKernel: firstID, PFKernel: ir.NoKernelID, EWMAGroup: -1,
	}
	if ewmaGroup >= 0 {
		info.EWMAGroup = ewmaGroup
		info.Interval = true
		info.TimedStart = true
	}
	cfgB := fn.NewInstr(ir.Instr{Op: ir.Cfg, A: ir.NoValue, B: ir.NoValue,
		Info: &info, Args: []ir.Value{trig.base, hi}})
	fn.InsertBeforeTerminator(pre, cfgB)

	for inv, greg := range cc.gregs {
		gi := ir.CfgInfo{Kind: ir.CfgGlobal, GReg: greg}
		cfgG := fn.NewInstr(ir.Instr{Op: ir.Cfg, A: ir.NoValue, B: ir.NoValue,
			Info: &gi, Args: []ir.Value{inv}})
		fn.InsertBeforeTerminator(pre, cfgG)
	}

	for id, prog := range kernels {
		res.Kernels[id] = prog
	}
	return nil
}
