package compiler

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// GeneratePragmaEvents implements §6.4: for every loop whose header carries
// "#pragma prefetch", it discovers loads that feature indirection (their
// address depends on another load that is itself strided by the induction
// variable), builds the same event chains the conversion pass would, and
// configures EWMA-driven look-ahead since no explicit prefetch distance is
// available. Loads behind data-dependent control flow inside the loop are
// skipped — the pass, like the paper's, does not handle complicated control
// flow — which is why it underperforms manual events on the benchmarks with
// inner loops.
func GeneratePragmaEvents(fn *ir.Fn, alloc *Alloc) (*Result, error) {
	res := &Result{Kernels: map[int][]ppu.Instr{}}
	loops := fn.Loops()
	db := fn.DefBlocks()
	idom := fn.Dominators()

	for _, l := range loops {
		if !fn.Block(l.Header).Pragma || l.Induction == nil {
			continue
		}
		group := alloc.ewma()
		converted := 0
		for _, root := range terminalIndirectLoads(fn, l, db, idom) {
			if err := convertOne(fn, l, db, root, alloc, res, group); err != nil {
				res.Failed++
				res.Errors = append(res.Errors, err.Error())
				continue
			}
			res.Converted++
			converted++
		}
		if converted == 0 {
			res.Failed++
		}
	}
	if res.Converted > 0 {
		if err := fn.Verify(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// terminalIndirectLoads finds loads in blocks executed every iteration
// (blocks dominating the latch) whose address depends on at least one other
// in-loop load, and whose own value does not feed a deeper load address —
// i.e. the ends of dependent-load chains, the accesses most likely to miss.
func terminalIndirectLoads(fn *ir.Fn, l *ir.Loop, db []ir.BlockID, idom []ir.BlockID) []ir.Value {
	var loads []ir.Value
	inStraightLine := func(b ir.BlockID) bool {
		return l.Contains(b) && ir.Dominates(idom, b, l.Latch)
	}
	for _, b := range fn.Blocks {
		if !inStraightLine(b.ID) {
			continue
		}
		for _, v := range b.Instrs {
			if fn.Instr(v).Op == ir.Load {
				loads = append(loads, v)
			}
		}
	}

	// dependsOnLoad reports whether the address expression of ld reaches
	// another in-loop load (bounded walk; cycles impossible in SSA uses).
	var reachesLoad func(v ir.Value, depth int) bool
	reachesLoad = func(v ir.Value, depth int) bool {
		if depth > 64 {
			return false
		}
		in := fn.Instr(v)
		if fn.LoopInvariant(l, v, db) {
			return false
		}
		switch in.Op {
		case ir.Load:
			return true
		case ir.Phi:
			return false
		}
		for _, o := range []ir.Value{in.A, in.B} {
			if o != ir.NoValue && reachesLoad(o, depth+1) {
				return true
			}
		}
		return false
	}

	feedsAddress := map[ir.Value]bool{}
	for _, ld := range loads {
		// Mark every load reachable from ld's address as address-feeding.
		var walk func(v ir.Value, depth int)
		walk = func(v ir.Value, depth int) {
			if depth > 64 {
				return
			}
			in := fn.Instr(v)
			if fn.LoopInvariant(l, v, db) || in.Op == ir.Phi {
				return
			}
			if in.Op == ir.Load {
				feedsAddress[v] = true
				walk(in.A, depth+1)
				return
			}
			for _, o := range []ir.Value{in.A, in.B} {
				if o != ir.NoValue {
					walk(o, depth+1)
				}
			}
		}
		walk(fn.Instr(ld).A, 0)
	}

	var out []ir.Value
	for _, ld := range loads {
		if feedsAddress[ld] {
			continue // an intermediate level: covered by the deeper chain
		}
		if reachesLoad(fn.Instr(ld).A, 0) {
			out = append(out, ld)
		}
	}
	return out
}
