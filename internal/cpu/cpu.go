// Package cpu models the main out-of-order core of Table 1 as a
// window-based timing model: micro-ops dispatch in order into a reorder
// buffer, execute when their data dependences resolve (loads going to the
// memory hierarchy), and retire in order. That reproduces the first-order
// behaviour the paper leans on — independent loads overlap up to
// ROB/LQ/MSHR limits while dependent loads serialise (Figure 2) — without
// simulating a full pipeline.
package cpu

import (
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// OpKind classifies a micro-op.
type OpKind int

// Micro-op kinds.
const (
	OpInt    OpKind = iota // 1-cycle integer ALU op
	OpMul                  // 3-cycle multiply
	OpDiv                  // 12-cycle divide
	OpLoad                 // demand load through the cache hierarchy
	OpStore                // store, retired into a write buffer
	OpSWPf                 // software prefetch instruction
	OpBranch               // conditional branch
	OpConfig               // prefetcher configuration instruction
)

// NoDep marks an unused dependence slot.
const NoDep int64 = -1

// MicroOp is one dynamic instruction. Deps name earlier ops (by dynamic ID,
// assigned in stream order) whose results this op consumes.
type MicroOp struct {
	Kind  OpKind
	PC    int      // static instruction id (stride prefetcher, branch predictor)
	Addr  uint64   // memory ops and software prefetches
	Deps  [2]int64 // producing op IDs, NoDep if unused
	Taken bool     // branches: resolved direction
	Do    func()   // OpConfig: side effect applied at dispatch
}

// Stream supplies micro-ops in program order.
type Stream interface {
	// Next returns the next micro-op, or ok=false at end of program.
	Next() (op MicroOp, ok bool)
}

// Config sizes the core (Table 1 defaults come from the harness package).
type Config struct {
	Clock             sim.Clock
	Width             int   // dispatch/retire width
	ROB               int   // reorder buffer entries
	LQ                int   // load queue entries
	SQ                int   // store queue entries
	MispredictPenalty int64 // cycles of redirect after a mispredicted branch
}

// Ports connect the core to the memory system and prefetch paths.
type Ports struct {
	// Load issues a demand load; h.Handle(at, a, 0) must fire at completion
	// time. The handler-plus-payload shape keeps the per-load path free of
	// closure allocations.
	Load func(addr uint64, pc int, h sim.Handler, a uint64)
	// Store posts a demand store (timing-relevant only for cache state).
	Store func(addr uint64, pc int)
	// SWPrefetch issues a software-prefetch request.
	SWPrefetch func(addr uint64)
}

// Stats describes one finished run.
type Stats struct {
	Ops         int64 // dynamic micro-ops retired
	Loads       int64
	Stores      int64
	Branches    int64
	Mispredicts int64
	SWPrefetch  int64
	FinishTick  sim.Ticks
	Cycles      int64 // FinishTick in core cycles
}

const completionRing = 256 // must exceed any plausible ROB size

type robEntry struct {
	id         int64
	kind       OpKind
	addr       uint64
	pc         int
	deps       [2]int64
	readyAt    sim.Ticks // max of resolved dep completion times and dispatch
	unresolved int       // count of deps whose completion is still unknown
	issued     bool
	mispred    bool      // mispredicted branch: install redirect stall at issue
	completeAt sim.Ticks // -1 until known
}

// Core is the timing model. Create with New, then call Run.
type Core struct {
	eng   *sim.Engine
	cfg   Config
	ports Ports

	stream     Stream
	pendingOp  MicroOp // dispatch-rejected op, delivered before the stream
	hasPending bool
	nextID     int64
	// rob is a fixed ring buffer of cfg.ROB entries: robHead indexes the
	// oldest entry, robN counts occupancy. Retiring moves the head instead of
	// re-slicing, so the window's backing array lives for the whole run.
	rob        []robEntry
	robHead    int
	robN       int
	completion [completionRing]sim.Ticks
	known      [completionRing]bool
	// ringAddr/ringPC mirror each op's address and PC, indexed like the
	// completion ring, so a delayed load launch can be scheduled with just
	// the op id as payload (the entry is still in the window at launch time,
	// and completionRing > ROB keeps the slot from being reused under it).
	ringAddr   [completionRing]uint64
	ringPC     [completionRing]int32
	inflightLd int
	inflightSt int
	// unissuedN counts window entries with issued == false. It lets the
	// scheduler decide "can anything issue before the next load completion?"
	// without scanning the window every cycle.
	unissuedN int
	// dirty is set whenever window state changes between ticks in a way a
	// tick could act on — an op dispatched, or a completion recorded — and
	// cleared at the start of every full tick. While clear (and dispatch is
	// provably a no-op), a tick cannot retire, issue or dispatch anything,
	// so it can skip straight to scheduling its successor (see idleTick).
	dirty bool

	tickH     tickHandler
	launchH   launchHandler
	loadDoneH loadDoneHandler
	storeH    storeHandler
	swpfH     swpfHandler

	stallUntil      sim.Ticks // branch redirect: no dispatch before this
	redirectPending bool      // a mispredicted branch has not yet resolved
	tickPending     bool
	done            bool
	onDone          func()

	bp    branchPredictor
	Stats Stats

	// Bus, if set, receives CoreStall/CoreStallEnd events. Emission is
	// transition-gated (stallActive) so a stall spanning many ticks costs
	// two events, not one per tick, and a nil bus costs one branch.
	Bus         *trace.Bus
	stallActive [4]bool

	// OpBus, if set, receives one CoreDispatch event per dispatched micro-op
	// — the trace-capture feed (internal/tracein). It is separate from Bus so
	// that attaching an ordinary tracer never pays for, or sees, the per-op
	// stream; with no capture attached the cost is one branch per dispatch.
	OpBus *trace.Bus
}

// depDistMax caps a recorded dependence distance at what fits a uint32 half
// of Event.Dur. Any distance beyond the window (see depCompletion) resolves
// as "already retired", so clamping far-back producers is timing-neutral.
const depDistMax = 1<<31 - 1

// packDeps encodes a dispatched op's two dependence distances (id minus
// producer id, 0 for NoDep) into one word, low half Deps[0], high half
// Deps[1].
func packDeps(id int64, deps [2]int64) uint64 {
	var packed uint64
	for i, d := range deps {
		if d == NoDep {
			continue
		}
		rel := id - d
		if rel > depDistMax {
			rel = depDistMax
		}
		packed |= uint64(rel) << (32 * i)
	}
	return packed
}

// setStall emits a CoreStall/CoreStallEnd pair boundary when the given
// stall reason changes state; purely observational, never affects timing.
func (c *Core) setStall(reason int32, on bool) {
	if c.Bus == nil || c.stallActive[reason] == on {
		return
	}
	c.stallActive[reason] = on
	kind := trace.CoreStall
	if !on {
		kind = trace.CoreStallEnd
	}
	c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: kind, A: reason})
}

// New builds a core.
func New(eng *sim.Engine, cfg Config, ports Ports) *Core {
	if cfg.Width <= 0 || cfg.ROB <= 0 || cfg.ROB >= completionRing {
		panic("cpu: invalid core configuration")
	}
	c := &Core{eng: eng, cfg: cfg, ports: ports}
	c.rob = make([]robEntry, cfg.ROB)
	c.tickH.c = c
	c.launchH.c = c
	c.loadDoneH.c = c
	c.storeH.c = c
	c.swpfH.c = c
	c.bp.init()
	return c
}

// robAt returns the i-th oldest window entry (i < robN).
func (c *Core) robAt(i int) *robEntry {
	p := c.robHead + i
	if p >= len(c.rob) {
		p -= len(c.rob)
	}
	return &c.rob[p]
}

func (c *Core) robPush(e robEntry) {
	p := c.robHead + c.robN
	if p >= len(c.rob) {
		p -= len(c.rob)
	}
	c.rob[p] = e
	c.robN++
	c.unissuedN++
	c.dirty = true
}

func (c *Core) robPop() {
	c.robHead++
	if c.robHead == len(c.rob) {
		c.robHead = 0
	}
	c.robN--
}

// tickHandler runs one core cycle; the recurring tick event carries it
// instead of a per-tick method-value closure.
type tickHandler struct{ c *Core }

func (h tickHandler) Handle(sim.Ticks, uint64, uint64) { h.c.tick() }

// launchHandler issues a load whose operands resolved in the future; a is
// the op id, resolved to address/PC through the mirror rings.
type launchHandler struct{ c *Core }

func (h launchHandler) Handle(_ sim.Ticks, a, _ uint64) { h.c.launchLoad(int64(a)) }

// loadDoneHandler receives a demand-load completion; a is the op id.
type loadDoneHandler struct{ c *Core }

func (h loadDoneHandler) Handle(at sim.Ticks, a, _ uint64) { h.c.loadComplete(int64(a), at) }

// storeHandler posts a retiring store to the memory port; a is the address,
// b the PC.
type storeHandler struct{ c *Core }

func (h storeHandler) Handle(_ sim.Ticks, a, b uint64) { h.c.ports.Store(a, int(int64(b))) }

// swpfHandler posts a software prefetch; a is the address.
type swpfHandler struct{ c *Core }

func (h swpfHandler) Handle(_ sim.Ticks, a, _ uint64) { h.c.ports.SWPrefetch(a) }

// Run begins executing the stream; onDone is called when the last op
// retires. Run must be called before the engine runs.
func (c *Core) Run(s Stream, onDone func()) {
	c.stream = s
	c.onDone = onDone
	c.scheduleTick(c.eng.Now())
}

func (c *Core) scheduleTick(at sim.Ticks) {
	if c.tickPending || c.done {
		return
	}
	c.tickPending = true
	c.eng.Schedule(c.cfg.Clock.NextEdge(at), c.tickH, 0, 0)
}

func (c *Core) wake() { c.scheduleTick(c.eng.Now()) }

func (c *Core) depCompletion(id int64) (sim.Ticks, bool) {
	if id == NoDep {
		return 0, true
	}
	// Anything older than the window is certainly retired.
	if id < c.nextID-int64(c.cfg.ROB)-8 {
		return 0, true
	}
	slot := id % completionRing
	if c.known[slot] {
		return c.completion[slot], true
	}
	return 0, false
}

func (c *Core) recordCompletion(id int64, at sim.Ticks) {
	slot := id % completionRing
	c.completion[slot] = at
	c.known[slot] = true
	c.dirty = true
}

func (c *Core) tick() {
	c.tickPending = false
	now := c.eng.Now()

	if c.idleTick(now) {
		// Nothing to do this cycle: keep the tick chain alive (so event
		// ordering — and therefore timing — is bit-identical to a full
		// tick that finds no work) but skip the window scans.
		c.scheduleTick(now + c.cfg.Clock.Period)
		return
	}
	c.dirty = false

	c.retire(now)
	c.resolveAndIssue(now)
	c.dispatch(now)

	if c.robN == 0 && c.streamDone() {
		c.finish(now)
		return
	}
	c.scheduleNext(now)
}

// idleTick reports whether this tick provably cannot change core state, so
// tick() may skip retire/resolveAndIssue/dispatch and only reschedule. The
// conditions mirror what each stage needs to make progress:
//
//   - retire: the head has no recorded completion (completions only arrive
//     via recordCompletion, which sets dirty);
//   - resolveAndIssue: the previous full tick issued everything resolvable,
//     and nothing was dispatched or completed since (dirty is clear), so
//     every unissued entry still waits on an unrecorded dependency;
//   - dispatch: the stream is gone, the window is full, or dispatch is
//     stalled behind a redirect.
//
// A tracer (Bus) disables the fast path so stall-transition events are
// emitted on the exact cycle they occur.
func (c *Core) idleTick(now sim.Ticks) bool {
	if c.dirty || c.Bus != nil || c.robN == 0 || c.unissuedN == 0 {
		return false
	}
	if c.robAt(0).completeAt >= 0 {
		return false
	}
	return c.stream == nil || c.robN >= c.cfg.ROB || now < c.stallUntil || c.redirectPending
}

func (c *Core) streamDone() bool { return c.stream == nil && !c.hasPending }

func (c *Core) retire(now sim.Ticks) {
	retired := 0
	for retired < c.cfg.Width && c.robN > 0 {
		head := c.robAt(0)
		if head.completeAt < 0 || head.completeAt > now {
			break
		}
		switch head.kind {
		case OpLoad:
			c.inflightLd--
			c.Stats.Loads++
		case OpStore:
			c.inflightSt--
			c.Stats.Stores++
		case OpBranch:
			c.Stats.Branches++
		case OpSWPf:
			c.Stats.SWPrefetch++
		}
		c.Stats.Ops++
		c.Stats.FinishTick = now
		c.robPop()
		retired++
	}
	c.setStall(trace.StallRetire, retired == 0 && c.robN > 0 && c.robAt(0).completeAt < 0)
}

func (c *Core) resolveAndIssue(now sim.Ticks) {
	// Stop once every entry that was unissued on entry has been examined;
	// everything after the last of them is already issued.
	target := c.unissuedN
	for i, seen := 0, 0; i < c.robN && seen < target; i++ {
		e := c.robAt(i)
		if e.issued {
			continue
		}
		seen++
		if e.unresolved > 0 {
			e.unresolved = 0
			for _, d := range e.deps {
				if at, ok := c.depCompletion(d); ok {
					if at > e.readyAt {
						e.readyAt = at
					}
				} else {
					e.unresolved++
				}
			}
			if e.unresolved > 0 {
				continue
			}
		}
		c.issue(e, now)
	}
}

func (c *Core) issue(e *robEntry, now sim.Ticks) {
	c.unissuedN--
	start := e.readyAt
	if start < now {
		start = now
	}
	cyc := func(n int64) sim.Ticks { return c.cfg.Clock.Cycles(n) }
	switch e.kind {
	case OpInt, OpConfig, OpSWPf, OpStore, OpBranch:
		e.completeAt = start + cyc(1)
	case OpMul:
		e.completeAt = start + cyc(3)
	case OpDiv:
		e.completeAt = start + cyc(12)
	case OpLoad:
		e.issued = true
		e.completeAt = -1
		if start > now {
			c.eng.Schedule(start, c.launchH, uint64(e.id), 0)
		} else {
			c.ports.Load(e.addr, e.pc, c.loadDoneH, uint64(e.id))
		}
		return
	}
	e.issued = true
	c.recordCompletion(e.id, e.completeAt)
	if e.mispred {
		c.stallUntil = e.completeAt + c.cfg.Clock.Cycles(c.cfg.MispredictPenalty)
		c.redirectPending = false
	}
	if e.kind == OpStore && c.ports.Store != nil {
		c.eng.Schedule(e.completeAt, c.storeH, e.addr, uint64(int64(e.pc)))
	}
	if e.kind == OpSWPf && c.ports.SWPrefetch != nil {
		c.eng.Schedule(e.completeAt, c.swpfH, e.addr, 0)
	}
}

// launchLoad fires a delayed load issue: the op is still in the window, so
// its address and PC are read back from the mirror rings.
func (c *Core) launchLoad(id int64) {
	slot := id % completionRing
	c.ports.Load(c.ringAddr[slot], int(c.ringPC[slot]), c.loadDoneH, uint64(id))
}

func (c *Core) loadComplete(id int64, at sim.Ticks) {
	c.recordCompletion(id, at)
	// Window ids are consecutive, so the op's slot is a direct offset from
	// the head (out of range means it is no longer in the window).
	if c.robN > 0 {
		if i := id - c.robAt(0).id; i >= 0 && i < int64(c.robN) {
			c.robAt(int(i)).completeAt = at
		}
	}
	c.wake()
}

func (c *Core) dispatch(now sim.Ticks) {
	if c.stream == nil {
		return
	}
	if now < c.stallUntil || c.redirectPending {
		c.setStall(trace.StallRedirect, true)
		return
	}
	c.setStall(trace.StallRedirect, false)
	for n := 0; n < c.cfg.Width; n++ {
		if c.robN >= c.cfg.ROB {
			return
		}
		op, ok := c.nextOp()
		if !ok {
			c.stream = nil
			return
		}
		switch op.Kind {
		case OpLoad:
			if c.inflightLd >= c.cfg.LQ {
				// No LQ entry: hold the op until one frees at retirement.
				c.setStall(trace.StallLQ, true)
				c.pendingOp, c.hasPending = op, true
				return
			}
			c.inflightLd++
			c.setStall(trace.StallLQ, false)
		case OpStore:
			if c.inflightSt >= c.cfg.SQ {
				c.setStall(trace.StallSQ, true)
				c.pendingOp, c.hasPending = op, true
				return
			}
			c.inflightSt++
			c.setStall(trace.StallSQ, false)
		case OpConfig:
			if op.Do != nil {
				op.Do()
			}
		}
		id := c.nextID
		c.nextID++
		if c.OpBus != nil {
			var flags int32
			if op.Taken {
				flags = 1
			}
			c.OpBus.Emit(trace.Event{
				At: now, Kind: trace.CoreDispatch, Addr: op.Addr, ID: id,
				A: int32(op.Kind), B: int32(op.PC), C: flags,
				Dur: sim.Ticks(packDeps(id, op.Deps)),
			})
		}
		slot := id % completionRing
		c.known[slot] = false
		c.ringAddr[slot] = op.Addr
		c.ringPC[slot] = int32(op.PC)
		e := robEntry{
			id: id, kind: op.Kind, addr: op.Addr, pc: op.PC,
			deps: op.Deps, readyAt: now, completeAt: -1,
		}
		for _, d := range e.deps {
			if at, ok := c.depCompletion(d); ok {
				if at > e.readyAt {
					e.readyAt = at
				}
			} else {
				e.unresolved++
			}
		}
		c.robPush(e)
		if op.Kind == OpBranch {
			if c.bp.predictAndUpdate(op.PC, op.Taken) != op.Taken {
				c.Stats.Mispredicts++
				// Redirect: no further dispatch until the branch resolves
				// plus the front-end refill penalty. The stall is installed
				// when the branch issues (its resolve time is then known).
				c.robAt(c.robN - 1).mispred = true
				c.redirectPending = true
				return
			}
		}
	}
}

// nextOp pulls the next micro-op, honouring a previously rejected one.
func (c *Core) nextOp() (MicroOp, bool) {
	if c.hasPending {
		c.hasPending = false
		return c.pendingOp, true
	}
	return c.stream.Next()
}

func (c *Core) scheduleNext(now sim.Ticks) {
	// Prefer simply ticking next cycle while forward progress is plausible:
	// something retireable, issueable or dispatchable soon.
	next := now + c.cfg.Clock.Period

	if c.robN > 0 {
		head := c.robAt(0)
		if head.completeAt >= 0 {
			// Head has a known completion: tick then (or next cycle if past).
			if head.completeAt > next {
				next = head.completeAt
			}
			c.scheduleTick(next)
			return
		}
		// Head incomplete. If there are unissued ops that may become ready,
		// tick next cycle; if everything issued and waiting on memory, sleep
		// until a load callback wakes us. (Replacing the dense tick chain
		// with a sleep here is NOT timing-neutral: a completion landing
		// exactly on a clock edge behind an already-queued tick event takes
		// effect a cycle later than a fresh wake would. The idleTick fast
		// path in tick() makes the dense chain cheap instead.)
		if c.unissuedN > 0 {
			c.scheduleTick(next)
			return
		}
		if c.stream != nil && c.robN < c.cfg.ROB && now >= c.stallUntil && !c.redirectPending {
			c.scheduleTick(next)
			return
		}
		if c.stallUntil > now {
			c.scheduleTick(c.stallUntil)
			return
		}
		return // idle: a load completion will wake us
	}
	// ROB empty but stream still has ops (we were stalled): tick again.
	if c.stream != nil {
		if c.stallUntil > next {
			next = c.stallUntil
		}
		c.scheduleTick(next)
	}
}

func (c *Core) finish(now sim.Ticks) {
	c.done = true
	c.Stats.FinishTick = now
	c.Stats.Cycles = int64(now / c.cfg.Clock.Period)
	if c.onDone != nil {
		c.onDone()
	}
}

// branchPredictor is a small gshare predictor: XOR of PC and global history
// indexing a table of 2-bit counters.
type branchPredictor struct {
	history uint32
	table   []uint8
}

const (
	bpBits    = 12
	bpEntries = 1 << bpBits
)

func (b *branchPredictor) init() {
	b.table = make([]uint8, bpEntries)
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
}

func (b *branchPredictor) predictAndUpdate(pc int, taken bool) bool {
	idx := (uint32(pc) ^ b.history) & (bpEntries - 1)
	ctr := b.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		b.table[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history = ((b.history << 1) | boolBit(taken)) & (bpEntries - 1)
	return pred
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Window reports the reorder-buffer occupancy, outstanding loads and the
// completion state of the window head (diagnostics).
func (c *Core) Window() (rob, loads int, headComplete bool, headKind OpKind) {
	if c.robN > 0 {
		head := c.robAt(0)
		headComplete = head.completeAt >= 0
		headKind = head.kind
	}
	return c.robN, c.inflightLd, headComplete, headKind
}
