package cpu

import (
	"testing"

	"eventpf/internal/sim"
)

type sliceStream struct {
	ops []MicroOp
	i   int
}

func (s *sliceStream) Next() (MicroOp, bool) {
	if s.i >= len(s.ops) {
		return MicroOp{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

func intOp(deps ...int64) MicroOp {
	op := MicroOp{Kind: OpInt, Deps: [2]int64{NoDep, NoDep}}
	for i, d := range deps {
		op.Deps[i] = d
	}
	return op
}

func loadOp(addr uint64, deps ...int64) MicroOp {
	op := MicroOp{Kind: OpLoad, Addr: addr, Deps: [2]int64{NoDep, NoDep}}
	for i, d := range deps {
		op.Deps[i] = d
	}
	return op
}

// fixedMem services loads with constant latency.
type fixedMem struct {
	eng      *sim.Engine
	latency  sim.Ticks
	issued   int
	maxInFly int
	inFlight int
}

func (m *fixedMem) ports() Ports {
	return Ports{Load: func(addr uint64, pc int, h sim.Handler, a uint64) {
		m.issued++
		m.inFlight++
		if m.inFlight > m.maxInFly {
			m.maxInFly = m.inFlight
		}
		m.eng.After(m.latency, func() {
			m.inFlight--
			h.Handle(m.eng.Now(), a, 0)
		})
	}}
}

func testConfig() Config {
	return Config{
		Clock: sim.ClockFromMHz(3200), Width: 3, ROB: 40, LQ: 16, SQ: 32,
		MispredictPenalty: 10,
	}
}

func runOps(t *testing.T, cfg Config, latency sim.Ticks, ops []MicroOp) (*Core, *fixedMem) {
	t.Helper()
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: latency}
	core := New(eng, cfg, mem.ports())
	finished := false
	core.Run(&sliceStream{ops: ops}, func() { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("core never finished")
	}
	return core, mem
}

func TestIndependentLoadsOverlap(t *testing.T) {
	const n = 8
	var ops []MicroOp
	for i := 0; i < n; i++ {
		ops = append(ops, loadOp(uint64(i*64)))
	}
	core, mem := runOps(t, testConfig(), 1000, ops)
	if mem.maxInFly < 4 {
		t.Errorf("max loads in flight = %d, want ≥4 (MLP)", mem.maxInFly)
	}
	// Overlapped: total ≪ n × latency.
	if core.Stats.FinishTick > 3*1000 {
		t.Errorf("finish at %d ticks; %d independent loads should overlap", core.Stats.FinishTick, n)
	}
}

func TestDependentLoadsSerialise(t *testing.T) {
	const n = 8
	var ops []MicroOp
	for i := 0; i < n; i++ {
		if i == 0 {
			ops = append(ops, loadOp(0))
		} else {
			ops = append(ops, loadOp(uint64(i*64), int64(i-1)))
		}
	}
	core, mem := runOps(t, testConfig(), 1000, ops)
	if mem.maxInFly != 1 {
		t.Errorf("max loads in flight = %d, want 1 (dependent chain)", mem.maxInFly)
	}
	if core.Stats.FinishTick < n*1000 {
		t.Errorf("finish at %d ticks, want ≥ %d (serialised)", core.Stats.FinishTick, n*1000)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// One load at the head blocks retirement; int ops fill the small window,
	// so the trailing loads cannot dispatch until the head load completes.
	// Total time is therefore ≥ two serialised memory latencies.
	cfg := testConfig()
	cfg.ROB = 8
	var ops []MicroOp
	ops = append(ops, loadOp(0))
	for i := 0; i < 7; i++ {
		ops = append(ops, intOp())
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, loadOp(uint64(64+i*64)))
	}
	const lat = 10000
	core, mem := runOps(t, cfg, lat, ops)
	if core.Stats.FinishTick < 2*lat {
		t.Errorf("finish at %d, want ≥ %d: full ROB must serialise the load groups",
			core.Stats.FinishTick, 2*lat)
	}
	if mem.maxInFly > 4 {
		t.Errorf("max in flight = %d, want ≤ 4", mem.maxInFly)
	}

	// Control: with a large ROB all five loads overlap.
	cfg.ROB = 40
	core2, _ := runOps(t, cfg, lat, ops)
	if core2.Stats.FinishTick >= 2*lat {
		t.Errorf("large-ROB finish at %d, want < %d (all loads overlap)",
			core2.Stats.FinishTick, 2*lat)
	}
}

func TestLQLimitsOutstandingLoads(t *testing.T) {
	cfg := testConfig()
	cfg.LQ = 2
	var ops []MicroOp
	for i := 0; i < 10; i++ {
		ops = append(ops, loadOp(uint64(i*64)))
	}
	_, mem := runOps(t, cfg, 5000, ops)
	if mem.maxInFly > 2 {
		t.Errorf("max in flight = %d, want ≤ LQ=2", mem.maxInFly)
	}
}

func TestIntChainLatency(t *testing.T) {
	// A chain of n dependent 1-cycle int ops takes at least n cycles.
	const n = 20
	var ops []MicroOp
	for i := 0; i < n; i++ {
		if i == 0 {
			ops = append(ops, intOp())
		} else {
			ops = append(ops, intOp(int64(i-1)))
		}
	}
	core, _ := runOps(t, testConfig(), 0, ops)
	if core.Stats.Cycles < n {
		t.Errorf("cycles = %d, want ≥ %d for dependent int chain", core.Stats.Cycles, n)
	}
	if core.Stats.Ops != n {
		t.Errorf("ops retired = %d, want %d", core.Stats.Ops, n)
	}
}

func TestWidthLimitsThroughput(t *testing.T) {
	// 300 independent int ops on a 3-wide machine need ≥100 cycles.
	var ops []MicroOp
	for i := 0; i < 300; i++ {
		ops = append(ops, intOp())
	}
	core, _ := runOps(t, testConfig(), 0, ops)
	if core.Stats.Cycles < 100 {
		t.Errorf("cycles = %d, want ≥ 100 (3-wide)", core.Stats.Cycles)
	}
	if core.Stats.Cycles > 130 {
		t.Errorf("cycles = %d, want ≈100 for independent ops", core.Stats.Cycles)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// Alternating taken/not-taken branches confound the predictor at first;
	// compare against always-taken branches, which it learns quickly.
	mk := func(pattern func(i int) bool) []MicroOp {
		var ops []MicroOp
		for i := 0; i < 400; i++ {
			ops = append(ops, MicroOp{Kind: OpBranch, PC: 1, Taken: pattern(i),
				Deps: [2]int64{NoDep, NoDep}})
		}
		return ops
	}
	// An LCG-driven direction sequence is unlearnable by gshare; a constant
	// direction is learnt after a few cold mispredictions.
	lcg := uint64(12345)
	random := func(i int) bool {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg>>63 == 1
	}
	steady, _ := runOps(t, testConfig(), 0, mk(func(i int) bool { return true }))
	noisy, _ := runOps(t, testConfig(), 0, mk(random))
	if noisy.Stats.Mispredicts <= steady.Stats.Mispredicts {
		t.Errorf("mispredicts: noisy=%d steady=%d", noisy.Stats.Mispredicts, steady.Stats.Mispredicts)
	}
	if noisy.Stats.Cycles <= steady.Stats.Cycles {
		t.Errorf("cycles: noisy=%d steady=%d; mispredicts should cost time",
			noisy.Stats.Cycles, steady.Stats.Cycles)
	}
}

func TestConfigOpSideEffect(t *testing.T) {
	ran := false
	ops := []MicroOp{
		{Kind: OpConfig, Deps: [2]int64{NoDep, NoDep}, Do: func() { ran = true }},
		intOp(),
	}
	runOps(t, testConfig(), 0, ops)
	if !ran {
		t.Error("config op side effect did not run")
	}
}

func TestSWPrefetchPort(t *testing.T) {
	eng := sim.NewEngine()
	var pfAddrs []uint64
	ports := Ports{
		Load:       func(addr uint64, pc int, h sim.Handler, a uint64) { h.Handle(eng.Now(), a, 0) },
		SWPrefetch: func(addr uint64) { pfAddrs = append(pfAddrs, addr) },
	}
	core := New(eng, testConfig(), ports)
	ops := []MicroOp{{Kind: OpSWPf, Addr: 0xbeef0, Deps: [2]int64{NoDep, NoDep}}}
	core.Run(&sliceStream{ops: ops}, nil)
	eng.Run()
	if len(pfAddrs) != 1 || pfAddrs[0] != 0xbeef0 {
		t.Errorf("software prefetches issued: %#x", pfAddrs)
	}
	if core.Stats.SWPrefetch != 1 {
		t.Errorf("SWPrefetch stat = %d, want 1", core.Stats.SWPrefetch)
	}
}

func TestStorePort(t *testing.T) {
	eng := sim.NewEngine()
	stores := 0
	ports := Ports{
		Load:  func(addr uint64, pc int, h sim.Handler, a uint64) { h.Handle(eng.Now(), a, 0) },
		Store: func(addr uint64, pc int) { stores++ },
	}
	core := New(eng, testConfig(), ports)
	ops := []MicroOp{{Kind: OpStore, Addr: 0x100, Deps: [2]int64{NoDep, NoDep}}}
	core.Run(&sliceStream{ops: ops}, nil)
	eng.Run()
	if stores != 1 || core.Stats.Stores != 1 {
		t.Errorf("stores seen=%d stat=%d, want 1", stores, core.Stats.Stores)
	}
}

func TestLoadDependentComputeWaits(t *testing.T) {
	// int op depending on a slow load must not complete before the load.
	ops := []MicroOp{
		loadOp(0),
		intOp(0),
	}
	core, _ := runOps(t, testConfig(), 2000, ops)
	if core.Stats.FinishTick < 2000 {
		t.Errorf("finished at %d, want ≥ load latency 2000", core.Stats.FinishTick)
	}
}

func TestStatsCountKinds(t *testing.T) {
	ops := []MicroOp{
		intOp(), loadOp(0),
		{Kind: OpStore, Addr: 8, Deps: [2]int64{NoDep, NoDep}},
		{Kind: OpBranch, Taken: true, Deps: [2]int64{NoDep, NoDep}},
		{Kind: OpMul, Deps: [2]int64{NoDep, NoDep}},
		{Kind: OpDiv, Deps: [2]int64{NoDep, NoDep}},
	}
	core, _ := runOps(t, testConfig(), 100, ops)
	s := core.Stats
	if s.Ops != 6 || s.Loads != 1 || s.Stores != 1 || s.Branches != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSQLimitsOutstandingStores(t *testing.T) {
	cfg := testConfig()
	cfg.SQ = 2
	var ops []MicroOp
	// A long-latency load at the head keeps stores from retiring, so the
	// 2-entry store queue must throttle dispatch.
	ops = append(ops, loadOp(0))
	for i := 0; i < 6; i++ {
		ops = append(ops, MicroOp{Kind: OpStore, Addr: uint64(64 + i*64),
			Deps: [2]int64{NoDep, NoDep}})
	}
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: 5000}
	stores := 0
	ports := mem.ports()
	ports.Store = func(addr uint64, pc int) { stores++ }
	core := New(eng, cfg, ports)
	core.Run(&sliceStream{ops: ops}, nil)
	eng.RunUntil(2500)
	if stores > 2 {
		t.Errorf("%d stores issued while head load blocks retirement, want ≤ SQ=2", stores)
	}
	eng.Run()
	if core.Stats.Stores != 6 {
		t.Errorf("stores retired = %d, want 6", core.Stats.Stores)
	}
}

func TestMulDivLatencies(t *testing.T) {
	// A dependent chain of n multiplies takes ≈3n cycles; divides ≈12n.
	mk := func(kind OpKind, n int) []MicroOp {
		var ops []MicroOp
		for i := 0; i < n; i++ {
			op := MicroOp{Kind: kind, Deps: [2]int64{NoDep, NoDep}}
			if i > 0 {
				op.Deps[0] = int64(i - 1)
			}
			ops = append(ops, op)
		}
		return ops
	}
	mul, _ := runOps(t, testConfig(), 0, mk(OpMul, 20))
	div, _ := runOps(t, testConfig(), 0, mk(OpDiv, 20))
	if mul.Stats.Cycles < 60 {
		t.Errorf("mul chain = %d cycles, want ≥ 60", mul.Stats.Cycles)
	}
	if div.Stats.Cycles < 240 {
		t.Errorf("div chain = %d cycles, want ≥ 240", div.Stats.Cycles)
	}
	if div.Stats.Cycles <= mul.Stats.Cycles {
		t.Error("div chain not slower than mul chain")
	}
}

func TestPredictableBranchesLearnt(t *testing.T) {
	// A loop-closing branch pattern (taken, taken, ..., not-taken) repeated:
	// gshare should reach high accuracy after warmup.
	var ops []MicroOp
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 8; i++ {
			ops = append(ops, MicroOp{Kind: OpBranch, PC: 3, Taken: i != 7,
				Deps: [2]int64{NoDep, NoDep}})
		}
	}
	core, _ := runOps(t, testConfig(), 0, ops)
	rate := float64(core.Stats.Mispredicts) / float64(core.Stats.Branches)
	if rate > 0.10 {
		t.Errorf("mispredict rate %.2f on a periodic pattern, want < 0.10", rate)
	}
}
