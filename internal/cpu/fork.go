package cpu

import "eventpf/internal/sim"

// RegisterFork records the core's five handler adapters as counterparts of
// src's, so pending tick/launch/completion events and MSHR waiter lists
// captured from the parent resolve to this core after a machine fork.
func (c *Core) RegisterFork(src *Core, remap *sim.Remap) {
	remap.Register(src.tickH, c.tickH)
	remap.Register(src.launchH, c.launchH)
	remap.Register(src.loadDoneH, c.loadDoneH)
	remap.Register(src.storeH, c.storeH)
	remap.Register(src.swpfH, c.swpfH)
}

// CopyStateFrom copies src's complete execution state — window, completion
// rings, in-flight counts, stall/redirect state, branch predictor and stats.
// The micro-op stream and completion callback cannot be copied (both are
// bound to parent-owned state), so the caller supplies the fork's own:
// stream must be a clone of src's stream positioned at the same op, or nil
// if src's stream was already exhausted.
func (c *Core) CopyStateFrom(src *Core, stream Stream, onDone func()) {
	c.pendingOp = src.pendingOp // only loads/stores park here; Do is always nil
	c.hasPending = src.hasPending
	c.nextID = src.nextID
	copy(c.rob, src.rob)
	c.robHead = src.robHead
	c.robN = src.robN
	c.completion = src.completion
	c.known = src.known
	c.ringAddr = src.ringAddr
	c.ringPC = src.ringPC
	c.inflightLd = src.inflightLd
	c.inflightSt = src.inflightSt
	c.unissuedN = src.unissuedN
	c.dirty = src.dirty
	c.stallUntil = src.stallUntil
	c.redirectPending = src.redirectPending
	c.tickPending = src.tickPending
	c.done = src.done
	c.stream = stream
	c.onDone = onDone
	c.bp.history = src.bp.history
	copy(c.bp.table, src.bp.table)
	c.Stats = src.Stats
}

// SwapStream replaces the core's micro-op stream. Only legal before the core
// has pulled any op (between Run and the first tick): the replacement must
// deliver the same ops from position zero, possibly filtered — time-parallel
// slicing wraps the stream in its slice window this way.
func (c *Core) SwapStream(s Stream) { c.stream = s }

// StreamActive reports whether the core still holds a live micro-op stream
// (false once the stream has been exhausted), so a fork knows whether it
// must clone the stream.
func (c *Core) StreamActive() bool { return c.stream != nil }

// WarmBranch trains the branch predictor on a branch consumed during
// sampling fast-forward (functional warming): predictor state advances
// exactly as a detailed dispatch would have advanced it, but no prediction
// outcome is acted on and no timing state changes.
func (c *Core) WarmBranch(pc int, taken bool) { c.bp.predictAndUpdate(pc, taken) }
