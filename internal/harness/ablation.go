package harness

import (
	"fmt"
	"strings"

	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// AblationRow is one design-parameter sensitivity measurement, run on HJ-8
// (the benchmark that exercises every prefetcher structure: chains, tags,
// queues and the scheduler).
type AblationRow struct {
	Parameter string
	Value     int
	Speedup   float64
}

// Ablations measures sensitivity to the design parameters DESIGN.md calls
// out: observation-queue depth, prefetch-request-queue depth, and the MSHR
// count shared with demand traffic. The mutated-Config runs cannot use the
// suite memo, so they fan out directly on the worker pool; rows come back
// in the fixed job order regardless of completion order.
//
// Queue-depth cells differ only in the prefetcher's queue limits, which a
// machine fork may change, so they share one warmed parent instead of each
// re-simulating the warmup; MSHR cells change cache geometry and run in
// full.
func (s *Suite) Ablations() ([]AblationRow, error) {
	b := workloads.HJ8
	base, err := s.run(b, NoPF)
	if err != nil {
		return nil, err
	}

	type job struct {
		param    string
		value    int
		forkable bool
		mutate   func(cfg *system.Config)
	}
	var jobs []job
	for _, q := range []int{5, 10, 40, 160} {
		q := q
		jobs = append(jobs, job{"obs-queue", q, true, func(cfg *system.Config) { cfg.Prefetcher.ObsQueue = q }})
	}
	for _, q := range []int{25, 50, 200, 800} {
		q := q
		jobs = append(jobs, job{"req-queue", q, true, func(cfg *system.Config) { cfg.Prefetcher.ReqQueue = q }})
	}
	for _, m := range []int{6, 12, 24} {
		m := m
		jobs = append(jobs, job{"l1-mshrs", m, false, func(cfg *system.Config) { cfg.L1.MSHRs = m }})
	}

	cellOpt := func(i int) Options {
		cfg := system.DefaultConfig()
		jobs[i].mutate(&cfg)
		opt := s.Opt
		opt.Config = &cfg
		return opt
	}

	// One warmup serves every forkable cell.
	warmOpt := s.Opt
	dcfg := system.DefaultConfig()
	warmOpt.Config = &dcfg
	s.sem <- struct{}{}
	w, err := Warm(b, Manual, warmOpt, base.Core.Ops/2)
	<-s.sem
	if err != nil {
		return nil, err
	}
	conts := make([]*RunCont, len(jobs))
	if !w.Done() {
		for i, j := range jobs {
			if !j.forkable {
				continue
			}
			cfg, err := ConfigFor(cellOpt(i), Manual)
			if err != nil {
				return nil, err
			}
			conts[i], err = w.Fork(cfg)
			if err != nil {
				return nil, err
			}
		}
	}

	rows := make([]AblationRow, len(jobs))
	err = s.fanOut(len(jobs), func(i int) error {
		var r Result
		var err error
		if conts[i] != nil {
			r, err = conts[i].Finish()
		} else {
			r, err = Run(b, Manual, cellOpt(i))
		}
		if err != nil {
			return err
		}
		rows[i] = AblationRow{Parameter: jobs[i].param, Value: jobs[i].value, Speedup: Speedup(base, r)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblations renders the sensitivity table.
func FormatAblations(rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %10s\n", "parameter", "value", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8d %9.2fx\n", r.Parameter, r.Value, r.Speedup)
	}
	return sb.String()
}

// ContextSwitchRow measures the cost of periodically flushing the
// prefetcher (§5.3): with infrequent switches the loss should be small.
type ContextSwitchRow struct {
	IntervalCycles int64 // 0 = never
	Speedup        float64
}

// ContextSwitches measures prefetcher-flush sensitivity on IntSort.
func (s *Suite) ContextSwitches() ([]ContextSwitchRow, error) {
	b := workloads.IntSort
	base, err := s.run(b, NoPF)
	if err != nil {
		return nil, err
	}
	intervals := []int64{0, 1_000_000, 100_000, 10_000}
	rows := make([]ContextSwitchRow, len(intervals))
	err = s.fanOut(len(intervals), func(i int) error {
		cfg := system.DefaultConfig()
		cfg.ContextSwitchTicks = intervals[i] * 5 // core cycles → ticks
		opt := s.Opt
		opt.Config = &cfg
		r, err := Run(b, Manual, opt)
		if err != nil {
			return err
		}
		rows[i] = ContextSwitchRow{IntervalCycles: intervals[i], Speedup: Speedup(base, r)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatContextSwitches renders the flush-sensitivity table.
func FormatContextSwitches(rows []ContextSwitchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %10s\n", "switch interval", "speedup")
	for _, r := range rows {
		label := "never"
		if r.IntervalCycles > 0 {
			label = fmt.Sprintf("%d cycles", r.IntervalCycles)
		}
		fmt.Fprintf(&sb, "%-18s %9.2fx\n", label, r.Speedup)
	}
	return sb.String()
}
