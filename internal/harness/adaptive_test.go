package harness

import (
	"bytes"
	"sync"
	"testing"

	"eventpf/internal/workloads"
)

// TestAdaptiveDeterministic pins the adaptive controller's reproducibility
// contract: for a fixed config (seed included), two independent runs of the
// same job must produce byte-identical results, and the controller must have
// actually exercised its machinery (the initial sweep alone guarantees arm
// switches on any run longer than a handful of intervals).
func TestAdaptiveDeterministic(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Scale: 0.02}
	first, err := Run(b, Adaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(b, Adaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, first), encode(t, second)) {
		t.Errorf("two adaptive runs of the same job differ (%d vs %d cycles)",
			first.Cycles, second.Cycles)
	}
	if first.Adaptive == nil {
		t.Fatal("adaptive run reported no controller stats")
	}
	if first.Adaptive.Switches < 1 {
		t.Errorf("adaptive run never switched arms (stats: %+v)", *first.Adaptive)
	}
}

// TestAdaptiveForkMatchesStraightThrough extends the fork byte-identity gate
// to the adaptive scheme: the controller carries more live state than any
// static scheme (sensor EWMAs, per-arm rewards, sweep/trial progress, RNG),
// and all of it must survive a fork mid-run.
func TestAdaptiveForkMatchesStraightThrough(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Scale: goldenScale}
	straight, err := Run(b, Adaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(t, straight)

	w, err := Warm(b, Adaptive, opt, straight.Core.Ops/3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Done() {
		t.Fatalf("program finished during warmup (%d ops): no fork point to test", straight.Core.Ops/3)
	}
	contA, err := w.Fork(w.Machine().Cfg)
	if err != nil {
		t.Fatal(err)
	}
	contB, err := w.Fork(w.Machine().Cfg)
	if err != nil {
		t.Fatal(err)
	}

	results := make([]Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, f := range []func() (Result, error){contA.Finish, contB.Finish, w.Resume} {
		wg.Add(1)
		go func(i int, f func() (Result, error)) {
			defer wg.Done()
			results[i], errs[i] = f()
		}(i, f)
	}
	wg.Wait()
	for i, name := range []string{"fork A", "fork B", "resumed parent"} {
		if errs[i] != nil {
			t.Fatalf("%s: %v", name, errs[i])
		}
		if got := encode(t, results[i]); !bytes.Equal(got, want) {
			t.Errorf("%s: result bytes differ from straight-through run\n(got %d cycles, want %d)",
				name, results[i].Cycles, straight.Cycles)
		}
	}
}

// TestAdaptiveForkRejectsPolicyChange: the controller's copied state (arm
// menu, reward table, RNG stream) is shaped by its config, so a fork that
// changes any adaptive knob must be refused like a cache-geometry change.
func TestAdaptiveForkRejectsPolicyChange(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Warm(b, Adaptive, Options{Scale: 0.02}, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Machine().ForkWith(w.Machine().Cfg); err != nil {
		t.Errorf("unchanged config should fork: %v", err)
	}
	bad := w.Machine().Cfg
	bad.Adaptive.IntervalTicks *= 2
	if _, err := w.Machine().ForkWith(bad); err == nil {
		t.Error("interval change must not fork")
	}
	bad = w.Machine().Cfg
	bad.Adaptive.Seed++
	if _, err := w.Machine().ForkWith(bad); err == nil {
		t.Error("seed change must not fork")
	}
}
