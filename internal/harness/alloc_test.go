package harness

import (
	"testing"

	"eventpf/internal/workloads"
)

// TestMachineRunAllocBudget extends the engine-only zero-alloc test from the
// sim package to a complete machine: one full (small) HJ-2 run under the
// programmable prefetcher must stay within a fixed allocation budget. The
// budget is dominated by one-time construction — machine assembly, arena
// data, IR stream generation — and measured at ~65k allocations; the bound
// leaves ~3× headroom for runtime/map noise. What it cannot absorb is any
// per-event or per-request allocation creeping back into the steady-state
// loop: this run simulates hundreds of thousands of events, so even one
// closure per event or one Request per access blows the budget immediately.
func TestMachineRunAllocBudget(t *testing.T) {
	const budget = 200_000

	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := Run(b, Manual, Options{Scale: 0.02}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm any lazy process-wide state before counting
	allocs := testing.AllocsPerRun(3, run)
	if allocs > budget {
		t.Errorf("full machine run allocated %.0f objects, budget %d — "+
			"a steady-state path has started allocating (closure scheduling, "+
			"unpooled requests, or queue churn)", allocs, budget)
	}
}
