package harness

import (
	"encoding/json"
	"fmt"
	"io"
)

// A checkpoint is a deterministic-replay descriptor, not a memory image:
// because every simulation is deterministic, "the machine after N retired
// micro-ops of job J" is fully described by (J, N) plus a digest of the
// state reached, which the resume verifies after replaying the warmup. That
// keeps the file format trivially stable across internal state layout
// changes while still catching any divergence (simulator code or inputs
// changed since the save) instead of silently continuing from the wrong
// state.

// CheckpointVersion is the current checkpoint file format version.
const CheckpointVersion = 1

// Checkpoint is the on-disk form written by SaveCheckpoint.
type Checkpoint struct {
	Version   int     `json:"version"`
	Job       JobSpec `json:"job"`
	WarmupOps int64   `json:"warmup_ops"`
	// Digest fingerprints the machine state at the checkpoint
	// (system.Machine.Digest).
	Digest uint64 `json:"digest"`
}

// SaveCheckpoint advances the job's simulation until warmupOps micro-ops
// have retired and writes the replay descriptor for the paused state to w.
func SaveCheckpoint(w io.Writer, spec JobSpec, warmupOps int64) (*Checkpoint, error) {
	if warmupOps <= 0 {
		return nil, fmt.Errorf("harness: checkpoint warmup must be positive, got %d", warmupOps)
	}
	job, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	wr, err := warmJob(job, warmupOps)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Job: JobSpec{Bench: job.Bench.Name, Scheme: job.Scheme.String(),
			Scale: job.Scale, PPUs: job.PPUs, PPUMHz: job.PPUMHz},
		WarmupOps: warmupOps,
		Digest:    wr.Machine().Digest(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// ResumeCheckpoint reads a checkpoint, deterministically replays its warmup,
// verifies the state digest matches the one recorded at save time, and
// completes the run. The result is byte-identical to an uninterrupted run of
// the same job.
func ResumeCheckpoint(r io.Reader) (Result, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return Result{}, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return Result{}, fmt.Errorf("harness: checkpoint version %d not supported (want %d)", cp.Version, CheckpointVersion)
	}
	job, err := cp.Job.Resolve()
	if err != nil {
		return Result{}, fmt.Errorf("harness: resolving checkpoint job: %w", err)
	}
	wr, err := warmJob(job, cp.WarmupOps)
	if err != nil {
		return Result{}, err
	}
	if got := wr.Machine().Digest(); got != cp.Digest {
		return Result{}, fmt.Errorf("harness: checkpoint digest mismatch: replay reached %016x, checkpoint recorded %016x (simulator or inputs changed since the save)", got, cp.Digest)
	}
	return wr.Resume()
}

func warmJob(job Job, warmupOps int64) (*WarmRun, error) {
	opt := Options{Scale: job.Scale, PPUs: job.PPUs, PPUMHz: job.PPUMHz}
	return Warm(job.Bench, job.Scheme, opt, warmupOps)
}
