package harness

import (
	"fmt"
	"os"
	"testing"

	"eventpf/internal/compiler"
	"eventpf/internal/mem"
	"eventpf/internal/sim"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// TestDebugFillBreakdown classifies prefetch fills, resident hits and dead
// evictions by data-structure region, for the manual or converted scheme.
// Usage: DIAG_BENCH=HJ-2 DIAG_MODE=manual go test -run TestDebugFillBreakdown -v
func TestDebugFillBreakdown(t *testing.T) {
	name := os.Getenv("DIAG_BENCH")
	if name == "" {
		t.Skip("set DIAG_BENCH")
	}
	mode := os.Getenv("DIAG_MODE")
	b, _ := workloads.ByName(name)
	m := system.New(system.DefaultConfig(), system.Programmable)
	inst := b.Build(m, 0.25)

	var fn interface{ String() string }
	_ = fn
	variant := workloads.Plain
	if mode == "converted" {
		variant = workloads.SWPf
	}
	irFn := inst.BuildFn(variant)
	if mode == "converted" {
		pass, err := compiler.ConvertSoftwarePrefetches(irFn, compiler.NewAlloc())
		if err != nil {
			t.Fatal(err)
		}
		for id, prog := range pass.Kernels {
			m.RegisterKernel(id, prog)
		}
	} else {
		inst.Manual(m)
	}

	classify := func(line uint64) string {
		for _, r := range m.Arena.Regions() {
			if line >= r.Base && line < r.End() {
				return r.Name
			}
		}
		return "?"
	}
	fills, hits, dead := map[string]int{}, map[string]int{}, map[string]int{}
	prevFill := m.L1.OnPrefetchFill
	m.L1.OnPrefetchFill = func(line uint64, tag int, at sim.Ticks, filled bool) {
		if filled {
			fills[classify(line)]++
		} else {
			hits[classify(line)]++
		}
		if prevFill != nil {
			prevFill(line, tag, at, filled)
		}
	}
	m.L1.OnPrefetchDead = func(line uint64) { dead[classify(line)]++ }

	var miss map[string]int = map[string]int{}
	prevDem := m.L1.OnDemandAccess
	m.L1.OnDemandAccess = func(addr uint64, pc int, hit bool) {
		if !hit {
			miss[classify(mem.LineAddr(addr))]++
		}
		if prevDem != nil {
			prevDem(addr, pc, hit)
		}
	}

	it := m.NewInterp(irFn, inst.Runs[0].Args...)
	if inst.Runs[0].Before != nil {
		inst.Runs[0].Before(m)
	}
	res := m.Run(it)
	fmt.Printf("mode=%s cycles=%d la=%d\nfills: %v\nhits:  %v\ndead:  %v\ndemand misses: %v\n",
		mode, res.Cycles, res.Lookaheads[0], fills, hits, dead, miss)
}
