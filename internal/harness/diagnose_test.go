package harness

import (
	"fmt"
	"os"
	"testing"

	"eventpf/internal/workloads"
)

// TestDiagnose prints detailed per-scheme statistics for one benchmark.
// Usage: DIAG_BENCH=HJ-8 DIAG_SCALE=0.1 go test ./internal/harness -run TestDiagnose -v
func TestDiagnose(t *testing.T) {
	name := os.Getenv("DIAG_BENCH")
	if name == "" {
		t.Skip("set DIAG_BENCH to run")
	}
	scale := 0.1
	fmt.Sscanf(os.Getenv("DIAG_SCALE"), "%f", &scale)
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(b, NoPF, Options{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("%-14s cycles=%-9d ipc=%.3f l1=%.3f l2=%.3f dramR=%-7d avgDramLat=%d\n",
		"no-pf", base.Cycles, float64(base.Core.Ops)/float64(base.Cycles),
		base.L1.ReadHitRate(), base.L2.ReadHitRate(), base.DRAM.Reads, avgLat(base))
	for _, s := range []Scheme{Stride, GHBLarge, Software, Pragma, Converted, Manual, ManualBlocked} {
		r, err := Run(b, s, Options{Scale: scale})
		if err == ErrUnsupported {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		fillLat := int64(0)
		if r.PF.FillCount > 0 {
			fillLat = int64(r.PF.FillLatencySum) / r.PF.FillCount / 5
		}
		issueLat := int64(0)
		if r.PF.IssueCount > 0 {
			issueLat = int64(r.PF.IssueLatencySum) / r.PF.IssueCount / 5
		}
		fmt.Printf("%-14s cycles=%-9d sp=%.2fx l1=%.3f l2=%.3f dramR=%-7d dramLat=%-5d late=%-6d issued=%-7d fillLat=%-6d issueLat=%-6d pfHit=%-7d pfFill=%-7d gated=%-8d drops=%d/%d/%d util=%.2f la=%d\n",
			s, r.Cycles, Speedup(base, r), r.L1.ReadHitRate(), r.L2.ReadHitRate(),
			r.DRAM.Reads, avgLat(r), r.L1.LateMerges, r.PF.Issued, fillLat, issueLat, r.L1.PrefetchHits, r.L1.PrefetchFills, r.PF.PumpGated,
			r.PF.ObsDropped, r.PF.ReqDropped, r.PF.MSHRDrops,
			r.L1.PrefetchUtilisation(), r.Lookaheads[0])
	}
}

func avgLat(r Result) int64 {
	if r.DRAM.Reads == 0 {
		return 0
	}
	return int64(r.DRAM.LatencySum) / r.DRAM.Reads / 5
}
