package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eventpf/internal/system"
	"eventpf/internal/trace"
	"eventpf/internal/workloads"
)

// Suite memoises runs so experiments that share measurements (Figures 7, 8
// and 11 all need the no-prefetch baseline) do not repeat simulations, and
// fans independent simulations out over a bounded worker pool. Each
// simulation's Machine lives on exactly one worker goroutine; the memo is a
// singleflight, so concurrent figure generators requesting the same
// benchmark×scheme pair share one run. Because every simulation is
// deterministic, results are bit-identical however they are scheduled.
type Suite struct {
	Opt Options

	mu    sync.Mutex
	cache map[string]*suiteCall
	sem   chan struct{} // worker pool: one token per concurrent simulation

	// memoHits/memoMisses count Key lookups that joined an existing entry
	// (finished or in flight) versus ones that started a simulation. They
	// are atomics so the serving layer's /metrics scrape can read them
	// without taking the suite lock.
	memoHits   atomic.Int64
	memoMisses atomic.Int64
}

// suiteCall is one memoised (possibly in-flight) measurement.
type suiteCall struct {
	done chan struct{} // closed when res/err are valid
	res  Result
	err  error
}

// NewSuite prepares a suite; opt.Scale scales every benchmark input and
// opt.Parallel sizes the worker pool (0 = GOMAXPROCS).
func NewSuite(opt Options) *Suite {
	n := opt.Parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Suite{
		Opt:   opt,
		cache: map[string]*suiteCall{},
		sem:   make(chan struct{}, n),
	}
}

// Pair names one memoisable measurement: a benchmark×scheme pair, with the
// optional PPU-sizing overrides the Figure 9 sweeps use and the per-job
// scale override the serving layer uses (0 = suite default).
type Pair struct {
	Bench  *workloads.Benchmark
	Scheme Scheme
	PPUs   int
	PPUMHz int
	Scale  float64
	// Slices overrides the suite's time-parallel slice count for this pair
	// (0 = suite default, see Options.Slices).
	Slices int
}

// Key folds the pair's overrides down to their effective values so that,
// e.g., the Figure 9(a) 1000 MHz point and the default Manual run share one
// simulation, and schemes that never touch a PPU collapse onto one entry
// regardless of requested sizing. Two pairs with equal keys are guaranteed
// to simulate identically under this suite; the serving layer's
// content-addressed cache hashes the same folded values (JobSpec.Key).
func (s *Suite) Key(p Pair) string {
	ppus, mhz := foldSizing(p.Scheme, p.PPUs, p.PPUMHz, s.Opt)
	scale := p.Scale
	if scale == 0 {
		scale = s.Opt.Scale
	}
	if scale == 0 {
		scale = 1.0
	}
	key := fmt.Sprintf("%s/%s/p%d/f%d/s%g", p.Bench.Name, p.Scheme, ppus, mhz, scale)
	slices := p.Slices
	if slices == 0 {
		slices = s.Opt.Slices
	}
	if slices > 1 {
		// Sliced results are approximate, so they must never share an entry
		// with exact serial ones; the suffix appears only when slicing so
		// every pre-existing key is unchanged.
		key += fmt.Sprintf("/k%d", slices)
	}
	return key
}

// foldSizing resolves requested PPU sizing against the option defaults:
// explicit values win, then option-level overrides, then the machine
// configuration; schemes without a programmable prefetcher fold to zero
// because sizing cannot affect them. Which schemes are programmable comes
// from the registry, not a scheme list.
func foldSizing(scheme Scheme, ppus, mhz int, opt Options) (int, int) {
	if ppus == 0 {
		ppus = opt.PPUs
	}
	if mhz == 0 {
		mhz = opt.PPUMHz
	}
	if info, ok := scheme.Info(); ok && info.Machine.IsProgrammable() {
		cfg := optConfig(opt)
		if ppus == 0 {
			ppus = cfg.Prefetcher.NumPPUs
		}
		if mhz == 0 {
			mhz = int(16000 / cfg.Prefetcher.PPUClock.Period) // ticks → MHz
		}
	} else { // no programmable prefetcher: sizing cannot affect the run
		ppus, mhz = 0, 0
	}
	return ppus, mhz
}

// MemoStats reports how many pair lookups joined an existing memo entry
// (hits) versus started a new simulation (misses). Safe to call while the
// suite is running.
func (s *Suite) MemoStats() (hits, misses int64) {
	return s.memoHits.Load(), s.memoMisses.Load()
}

// FillMetrics exports the memo counters into a metrics registry under
// "suite.memo.hits"/"suite.memo.misses" (set, not added, so repeated fills
// of one registry stay idempotent). The serving layer's cache-hit-ratio
// metrics build on these.
func (s *Suite) FillMetrics(reg *trace.Registry) {
	hits, misses := s.MemoStats()
	reg.Counter("suite.memo.hits").N = hits
	reg.Counter("suite.memo.misses").N = misses
}

func (s *Suite) run(b *workloads.Benchmark, sch Scheme) (Result, error) {
	return s.runPair(Pair{Bench: b, Scheme: sch})
}

// Run returns the memoised measurement for p, simulating it on the worker
// pool if it is not cached yet. Callers that need several pairs should
// Prefetch them first so the simulations overlap.
func (s *Suite) Run(p Pair) (Result, error) { return s.runPair(p) }

// RunCtx is Run with cancellation: a caller that stops waiting (queued job
// cancelled, client disconnected) returns ctx.Err() without consuming a
// worker. Once a simulation has started it always runs to completion — a
// cancelled waiter never poisons the memo entry other callers share.
func (s *Suite) RunCtx(ctx context.Context, p Pair) (Result, error) {
	return s.runPairCtx(ctx, p, nil)
}

// Instrument attaches per-run observers to a memoised measurement. The
// hooks fire only when this call actually executes the simulation: a memo
// hit returns the shared result untouched, so the sink and registry stay
// confined to the one goroutine that simulates.
type Instrument struct {
	// Sink receives the run's machine-wide trace events (progress feeds).
	Sink trace.Sink
	// Metrics receives the run's counters and queue-occupancy histograms.
	Metrics *trace.Registry
	// Started, if non-nil, is called on the simulating goroutine just
	// before the simulation begins (job state transitions).
	Started func()
}

// RunInstrumented is RunCtx with per-run instrumentation. This is how the
// serving layer streams progress from inside the singleflight: the first
// request for a key simulates with its sink attached, duplicates share the
// result without re-simulating or double-instrumenting.
func (s *Suite) RunInstrumented(ctx context.Context, p Pair, inst *Instrument) (Result, error) {
	return s.runPairCtx(ctx, p, inst)
}

func (s *Suite) runPair(p Pair) (Result, error) {
	return s.runPairCtx(context.Background(), p, nil)
}

// runPairCtx returns the memoised measurement for p, running it if needed.
// The first caller for a key executes the simulation (holding a worker-pool
// token); later callers block on the same entry without consuming a worker,
// so a full fan-out can never deadlock the pool. A first caller cancelled
// while still waiting for a worker token removes its entry so a later
// request can retry; waiters that joined it inherit the cancellation error.
func (s *Suite) runPairCtx(ctx context.Context, p Pair, inst *Instrument) (Result, error) {
	key := s.Key(p)
	s.mu.Lock()
	c, ok := s.cache[key]
	if ok {
		s.memoHits.Add(1)
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	s.memoMisses.Add(1)
	c = &suiteCall{done: make(chan struct{})}
	s.cache[key] = c
	s.mu.Unlock()

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
		c.err = ctx.Err()
		close(c.done)
		return Result{}, ctx.Err()
	}
	opt := s.Opt
	if p.PPUs != 0 {
		opt.PPUs = p.PPUs
	}
	if p.PPUMHz != 0 {
		opt.PPUMHz = p.PPUMHz
	}
	if p.Scale != 0 {
		opt.Scale = p.Scale
	}
	if p.Slices != 0 {
		opt.Slices = p.Slices
	}
	if inst != nil {
		if inst.Sink != nil {
			opt.TraceSink = inst.Sink
		}
		if inst.Metrics != nil {
			opt.Metrics = inst.Metrics
		}
		if inst.Started != nil {
			inst.Started()
		}
	}
	c.res, c.err = Run(p.Bench, p.Scheme, opt)
	<-s.sem
	close(c.done)
	return c.res, c.err
}

// claim reserves the memo entry for p if nobody holds it yet, returning the
// entry to fill. A false return means the pair is already simulated or in
// flight elsewhere — the caller must not simulate it. Claimed entries count
// as memo misses (a simulation will happen for them), and MUST be completed
// with fill or waiters block forever.
func (s *Suite) claim(p Pair) (*suiteCall, bool) {
	key := s.Key(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[key]; ok {
		return nil, false
	}
	c := &suiteCall{done: make(chan struct{})}
	s.cache[key] = c
	s.memoMisses.Add(1)
	return c, true
}

// fill completes a claimed memo entry.
func fill(c *suiteCall, res Result, err error) {
	c.res, c.err = res, err
	close(c.done)
}

// sweepForked simulates one benchmark's Manual runs across several PPU
// clocks by running the warmup phase once: the machine is warmed at the
// suite's default clock to two thirds of the no-prefetch dynamic op count,
// checkpointed there, and forked into one continuation per clock point still
// missing from the memo. The default-clock point is byte-identical to a full
// run (forking is exact); other clock points treat the shared warmup as
// functional warming — the sweep measures steady-state behaviour, which is
// exactly what Figure 9 plots. Falls back to full runs when the program is
// too short to leave a fork point.
func (s *Suite) sweepForked(b *workloads.Benchmark, ppus int, clocks []int) error {
	type point struct {
		pair Pair
		call *suiteCall
	}
	var todo []point
	for _, mhz := range clocks {
		p := Pair{Bench: b, Scheme: Manual, PPUs: ppus, PPUMHz: mhz}
		if c, ok := s.claim(p); ok {
			todo = append(todo, point{pair: p, call: c})
		}
	}
	if len(todo) == 0 {
		return nil
	}
	abort := func(err error) error {
		for _, pt := range todo {
			fill(pt.call, Result{}, err)
		}
		return err
	}

	// fullRuns simulates each claimed point independently, in full.
	fullRuns := func() error {
		for _, pt := range todo {
			pt := pt
			go func() {
				s.sem <- struct{}{}
				defer func() { <-s.sem }()
				opt := s.Opt
				opt.PPUs, opt.PPUMHz = pt.pair.PPUs, pt.pair.PPUMHz
				res, err := Run(b, Manual, opt)
				fill(pt.call, res, err)
			}()
		}
		// Join through the memo so errors propagate in order.
		for _, pt := range todo {
			if _, err := s.runPair(pt.pair); err != nil {
				return err
			}
		}
		return nil
	}

	if s.Opt.Slices > 1 {
		// Under time-parallel execution a pair's result must not depend on
		// which path — a sliced Run or an exact forked continuation — claims
		// its memo entry first, so the shared serial warmup is skipped and
		// every point runs in full (slicing internally).
		return fullRuns()
	}

	base, err := s.run(b, NoPF) // sizes the warmup from the op count
	if err != nil {
		return abort(err)
	}

	warmOpt := s.Opt
	if ppus != 0 {
		warmOpt.PPUs = ppus
	}
	s.sem <- struct{}{} // the warmup is a simulation: hold a worker token
	w, err := Warm(b, Manual, warmOpt, base.Core.Ops*2/3)
	<-s.sem
	if err != nil {
		return abort(err)
	}
	if w.Done() {
		// Program shorter than the warmup: no fork point.
		return fullRuns()
	}

	// Fork sequentially (forking reads the paused parent), then complete
	// the continuations in parallel on the worker pool.
	conts := make([]*RunCont, len(todo))
	for i, pt := range todo {
		opt := s.Opt
		opt.PPUs, opt.PPUMHz = pt.pair.PPUs, pt.pair.PPUMHz
		cfg, err := ConfigFor(opt, Manual)
		if err != nil {
			return abort(err)
		}
		conts[i], err = w.Fork(cfg)
		if err != nil {
			return abort(err)
		}
	}
	return forEach(len(todo), func(i int) error {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		res, err := conts[i].Finish()
		fill(todo[i].call, res, err)
		return err
	})
}

// Prefetch runs every pair concurrently on the worker pool, warming the
// memo so the figure generators' subsequent collection loops hit the cache.
// ErrUnsupported pairs (the paper's missing bars) are not errors; the first
// other failure is returned after all workers finish.
func (s *Suite) Prefetch(pairs []Pair) error {
	return forEach(len(pairs), func(i int) error {
		_, err := s.runPair(pairs[i])
		if errors.Is(err, ErrUnsupported) {
			return nil
		}
		return err
	})
}

// fanOut runs n independent jobs on the suite's worker pool and waits for
// all of them; used for configurations the memo cannot key (custom Config
// mutations in the ablations). fn must confine everything it builds to its
// own call.
func (s *Suite) fanOut(n int, fn func(i int) error) error {
	return forEach(n, func(i int) error {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		return fn(i)
	})
}

// forEach runs fn(0..n-1) on separate goroutines, waits for all, and
// returns the lowest-indexed error so a parallel suite reports the same
// failure a serial one would have hit first.
func forEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// crossAll builds the cross product of every Table 2 benchmark with the
// given schemes, the request shape shared by most figures.
func crossAll(schemes ...Scheme) []Pair {
	var pairs []Pair
	for _, b := range workloads.All {
		for _, sch := range schemes {
			pairs = append(pairs, Pair{Bench: b, Scheme: sch})
		}
	}
	return pairs
}

// Fig7Row is one benchmark's bars in Figure 7: speedup over no prefetching.
// Missing bars (PageRank software/converted) are NaN.
type Fig7Row struct {
	Benchmark string
	Speedup   map[Scheme]float64
}

// Fig7 reproduces Figure 7: speedups for all schemes on all benchmarks.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	var pairs []Pair
	for _, b := range workloads.All {
		pairs = append(pairs, Pair{Bench: b, Scheme: NoPF})
		for _, sch := range Schemes {
			pairs = append(pairs, Pair{Bench: b, Scheme: sch})
		}
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Benchmark: b.Name, Speedup: map[Scheme]float64{}}
		for _, sch := range Schemes {
			r, err := s.run(b, sch)
			if err == ErrUnsupported {
				row.Speedup[sch] = math.NaN()
				continue
			}
			if err != nil {
				return nil, err
			}
			row.Speedup[sch] = Speedup(base, r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig7 renders the Figure 7 data as an aligned text table.
func FormatFig7(rows []Fig7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "bench")
	for _, sch := range Schemes {
		fmt.Fprintf(&sb, " %12s", sch)
	}
	sb.WriteByte('\n')
	geo := map[Scheme][]float64{}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s", r.Benchmark)
		for _, sch := range Schemes {
			v := r.Speedup[sch]
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, " %12s", "-")
			} else {
				fmt.Fprintf(&sb, " %11.2fx", v)
				geo[sch] = append(geo[sch], v)
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-10s", "geomean")
	for _, sch := range Schemes {
		fmt.Fprintf(&sb, " %11.2fx", geomean(geo[sch]))
	}
	sb.WriteByte('\n')
	return sb.String()
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Fig8Row is one benchmark's Figure 8 data: prefetch utilisation before L1
// eviction (8a) and the L1 read hit rate without/with the programmable
// prefetcher (8b), plus the L2 hit rates behind the G500-List annotation.
type Fig8Row struct {
	Benchmark   string
	Utilisation float64
	L1HitNoPF   float64
	L1HitPF     float64
	L2HitNoPF   float64
	L2HitPF     float64
}

// Fig8 reproduces Figure 8.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	if err := s.Prefetch(crossAll(NoPF, Manual)); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		man, err := s.run(b, Manual)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{
			Benchmark:   b.Name,
			Utilisation: man.L1.PrefetchUtilisation(),
			L1HitNoPF:   base.L1.ReadHitRate(),
			L1HitPF:     man.L1.ReadHitRate(),
			L2HitNoPF:   base.L2.ReadHitRate(),
			L2HitPF:     man.L2.ReadHitRate(),
		})
	}
	return rows, nil
}

// FormatFig8 renders both Figure 8 panels.
func FormatFig8(rows []Fig8Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %10s %10s %10s %10s\n",
		"bench", "pf-util(8a)", "L1 no-pf", "L1 pf", "L2 no-pf", "L2 pf")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.2f %10.2f %10.2f %10.2f %10.2f\n",
			r.Benchmark, r.Utilisation, r.L1HitNoPF, r.L1HitPF, r.L2HitNoPF, r.L2HitPF)
	}
	return sb.String()
}

// Fig9aClocks are the PPU frequencies swept in Figure 9(a).
var Fig9aClocks = []int{250, 500, 1000, 2000}

// Fig9bClocks and Fig9bPPUs are the Figure 9(b) sweep dimensions.
var (
	Fig9bClocks = []int{125, 250, 500, 1000, 2000, 4000}
	Fig9bPPUs   = []int{3, 6, 12}
)

// Fig9aRow is one benchmark's speedup as PPU frequency varies (12 PPUs).
type Fig9aRow struct {
	Benchmark string
	Speedup   map[int]float64 // MHz → speedup over no prefetching
}

// Fig9a reproduces Figure 9(a). Each benchmark's clock points share one
// warmup: the machine is warmed once at the default clock and forked per
// point (sweepForked), so the sweep costs little more than one run per
// benchmark instead of one per point.
func (s *Suite) Fig9a() ([]Fig9aRow, error) {
	if err := s.Prefetch(crossAll(NoPF)); err != nil {
		return nil, err
	}
	if err := forEach(len(workloads.All), func(i int) error {
		return s.sweepForked(workloads.All[i], 0, Fig9aClocks)
	}); err != nil {
		return nil, err
	}
	var rows []Fig9aRow
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		row := Fig9aRow{Benchmark: b.Name, Speedup: map[int]float64{}}
		for _, mhz := range Fig9aClocks {
			r, err := s.runPair(Pair{Bench: b, Scheme: Manual, PPUMHz: mhz})
			if err != nil {
				return nil, err
			}
			row.Speedup[mhz] = Speedup(base, r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig9a renders the Figure 9(a) series.
func FormatFig9a(rows []Fig9aRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "bench")
	for _, mhz := range Fig9aClocks {
		fmt.Fprintf(&sb, " %8dMHz", mhz)
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s", r.Benchmark)
		for _, mhz := range Fig9aClocks {
			fmt.Fprintf(&sb, " %10.2fx", r.Speedup[mhz])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig9bCell is one (PPU count, frequency) point for G500-CSR.
type Fig9bCell struct {
	PPUs    int
	MHz     int
	Speedup float64
}

// Fig9b reproduces Figure 9(b): G500-CSR speedup across PPU count and clock.
// One warmup per PPU count, forked per clock point (sweepForked).
func (s *Suite) Fig9b() ([]Fig9bCell, error) {
	if _, err := s.run(workloads.G500CSR, NoPF); err != nil {
		return nil, err
	}
	if err := forEach(len(Fig9bPPUs), func(i int) error {
		return s.sweepForked(workloads.G500CSR, Fig9bPPUs[i], Fig9bClocks)
	}); err != nil {
		return nil, err
	}
	base, err := s.run(workloads.G500CSR, NoPF)
	if err != nil {
		return nil, err
	}
	var cells []Fig9bCell
	for _, ppus := range Fig9bPPUs {
		for _, mhz := range Fig9bClocks {
			r, err := s.runPair(Pair{Bench: workloads.G500CSR, Scheme: Manual, PPUs: ppus, PPUMHz: mhz})
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig9bCell{PPUs: ppus, MHz: mhz, Speedup: Speedup(base, r)})
		}
	}
	return cells, nil
}

// FormatFig9b renders the Figure 9(b) grid.
func FormatFig9b(cells []Fig9bCell) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "PPUs")
	for _, mhz := range Fig9bClocks {
		fmt.Fprintf(&sb, " %8dMHz", mhz)
	}
	sb.WriteByte('\n')
	for _, ppus := range Fig9bPPUs {
		fmt.Fprintf(&sb, "%-8d", ppus)
		for _, mhz := range Fig9bClocks {
			for _, c := range cells {
				if c.PPUs == ppus && c.MHz == mhz {
					fmt.Fprintf(&sb, " %10.2fx", c.Speedup)
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig10Row is one benchmark's PPU activity distribution (Figure 10): the
// fraction of time each of the 12 units is awake, with the scheduler's
// lowest-id-first policy making the spread informative.
type Fig10Row struct {
	Benchmark                string
	Activity                 []float64 // per PPU, unit id order
	Min, Q1, Median, Q3, Max float64
}

// Fig10 reproduces Figure 10.
func (s *Suite) Fig10() ([]Fig10Row, error) {
	if err := s.Prefetch(crossAll(Manual)); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, b := range workloads.All {
		r, err := s.run(b, Manual)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{Benchmark: b.Name, Activity: r.Activity}
		sorted := append([]float64(nil), r.Activity...)
		sort.Float64s(sorted)
		q := func(f float64) float64 {
			idx := f * float64(len(sorted)-1)
			lo := int(idx)
			if lo >= len(sorted)-1 {
				return sorted[len(sorted)-1]
			}
			frac := idx - float64(lo)
			return sorted[lo]*(1-frac) + sorted[lo+1]*frac
		}
		row.Min, row.Q1, row.Median, row.Q3, row.Max = q(0), q(0.25), q(0.5), q(0.75), q(1)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig10 renders the Figure 10 box data.
func FormatFig10(rows []Fig10Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %6s %6s %6s %6s %6s\n", "bench", "min", "q1", "med", "q3", "max")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			r.Benchmark, r.Min, r.Q1, r.Median, r.Q3, r.Max)
	}
	return sb.String()
}

// Fig11Row compares event-triggered execution with blocking on
// intermediate loads (Figure 11).
type Fig11Row struct {
	Benchmark string
	Blocked   float64
	Events    float64
}

// Fig11 reproduces Figure 11.
func (s *Suite) Fig11() ([]Fig11Row, error) {
	if err := s.Prefetch(crossAll(NoPF, Manual, ManualBlocked)); err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		ev, err := s.run(b, Manual)
		if err != nil {
			return nil, err
		}
		bl, err := s.run(b, ManualBlocked)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Benchmark: b.Name,
			Blocked:   Speedup(base, bl),
			Events:    Speedup(base, ev),
		})
	}
	return rows, nil
}

// FormatFig11 renders the Figure 11 comparison.
func FormatFig11(rows []Fig11Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s\n", "bench", "blocked", "events")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %9.2fx %9.2fx\n", r.Benchmark, r.Blocked, r.Events)
	}
	return sb.String()
}

// InstrRow is the §7.1 dynamic-instruction-overhead analysis of software
// prefetching.
type InstrRow struct {
	Benchmark   string
	PlainOps    int64
	SWPfOps     int64
	IncreasePct float64
}

// InstrOverhead reproduces the §7.1 instruction-increase numbers
// (paper: IntSort +113 %, RandAcc +83 %, HJ-2 +56 %).
func (s *Suite) InstrOverhead() ([]InstrRow, error) {
	if err := s.Prefetch(crossAll(NoPF, Software)); err != nil {
		return nil, err
	}
	var rows []InstrRow
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		sw, err := s.run(b, Software)
		if err == ErrUnsupported {
			continue
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, InstrRow{
			Benchmark:   b.Name,
			PlainOps:    base.Core.Ops,
			SWPfOps:     sw.Core.Ops,
			IncreasePct: 100 * (float64(sw.Core.Ops)/float64(base.Core.Ops) - 1),
		})
	}
	return rows, nil
}

// FormatInstrOverhead renders the instruction-overhead analysis.
func FormatInstrOverhead(rows []InstrRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s\n", "bench", "plain ops", "swpf ops", "increase")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12d %12d %9.0f%%\n", r.Benchmark, r.PlainOps, r.SWPfOps, r.IncreasePct)
	}
	return sb.String()
}

// ExtraMemRow is the §7.2 extra-memory-traffic analysis: DRAM reads with
// the programmable prefetcher relative to no prefetching
// (paper: G500-List +40 %, G500-CSR +16 %, the rest negligible).
type ExtraMemRow struct {
	Benchmark string
	BaseReads int64
	PFReads   int64
	ExtraPct  float64
	// Chain latency of the Manual run's prefetches, in ticks: mean
	// generation→L1-issue and generation→memory-fill delays, with resident
	// hits (targets already in the L1) counted apart from real fills.
	MeanIssueTicks float64
	MeanFillTicks  float64
	Fills          int64
	ResidentHits   int64
}

// ExtraMem reproduces the extra-memory-access analysis.
func (s *Suite) ExtraMem() ([]ExtraMemRow, error) {
	if err := s.Prefetch(crossAll(NoPF, Manual)); err != nil {
		return nil, err
	}
	var rows []ExtraMemRow
	for _, b := range workloads.All {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		man, err := s.run(b, Manual)
		if err != nil {
			return nil, err
		}
		row := ExtraMemRow{
			Benchmark:    b.Name,
			BaseReads:    base.DRAM.Reads,
			PFReads:      man.DRAM.Reads,
			ExtraPct:     100 * (float64(man.DRAM.Reads)/float64(base.DRAM.Reads) - 1),
			Fills:        man.PF.FillCount,
			ResidentHits: man.PF.ResidentHits,
		}
		if man.PF.IssueCount > 0 {
			row.MeanIssueTicks = float64(man.PF.IssueLatencySum) / float64(man.PF.IssueCount)
		}
		if man.PF.FillCount > 0 {
			row.MeanFillTicks = float64(man.PF.FillLatencySum) / float64(man.PF.FillCount)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatExtraMem renders the extra-traffic analysis with the prefetch-chain
// latency breakdown (ticks; 16 ticks = 1 ns).
func FormatExtraMem(rows []ExtraMemRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s %11s %11s %10s %10s\n",
		"bench", "no-pf reads", "pf reads", "extra", "gen→issue", "gen→fill", "fills", "resident")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12d %12d %9.0f%% %11.0f %11.0f %10d %10d\n",
			r.Benchmark, r.BaseReads, r.PFReads, r.ExtraPct,
			r.MeanIssueTicks, r.MeanFillTicks, r.Fills, r.ResidentHits)
	}
	return sb.String()
}

// Table1 renders the simulated-machine configuration (the paper's Table 1).
func Table1(opt Options) string {
	cfg := *optConfig(opt)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Core      %d-wide OoO @%d MHz, ROB %d, LQ %d, SQ %d, mispredict %d cycles\n",
		cfg.Width, cfg.CoreMHz, cfg.ROB, cfg.LQ, cfg.SQ, cfg.MispredictPenalty)
	fmt.Fprintf(&sb, "L1D       %d KB %d-way, %d-cycle hit, %d MSHRs\n",
		cfg.L1.SizeBytes>>10, cfg.L1.Ways, cfg.L1.HitCycles, cfg.L1.MSHRs)
	fmt.Fprintf(&sb, "L2        %d KB %d-way, %d-cycle hit, %d MSHRs\n",
		cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.HitCycles, cfg.L2.MSHRs)
	fmt.Fprintf(&sb, "TLB       L1 %d-entry, L2 %d-entry %d-way (%d-cycle), %d walkers\n",
		cfg.TLB.L1Entries, cfg.TLB.L2Entries, cfg.TLB.L2Ways, cfg.TLB.L2HitCycles, cfg.TLB.Walks)
	fmt.Fprintf(&sb, "DRAM      DDR3-%d-ish %d-%d-%d, %d banks, %d B rows\n",
		cfg.DRAM.BusMHz*2, cfg.DRAM.TRCD, cfg.DRAM.TCAS, cfg.DRAM.TRP, cfg.DRAM.Banks, cfg.DRAM.RowBytes)
	fmt.Fprintf(&sb, "Prefetch  %d PPUs @%d ticks/cycle, obs queue %d, request queue %d\n",
		cfg.Prefetcher.NumPPUs, cfg.Prefetcher.PPUClock.Period, cfg.Prefetcher.ObsQueue, cfg.Prefetcher.ReqQueue)
	fmt.Fprintf(&sb, "Stride    RPT %d entries, degree %d\n", cfg.Stride.Entries, cfg.Stride.Degree)
	fmt.Fprintf(&sb, "GHB       Markov depth %d width %d, index/GHB %d/%d (regular)\n",
		cfg.GHB.Depth, cfg.GHB.Width, cfg.GHB.IndexSize, cfg.GHB.GHBSize)
	return sb.String()
}

func optConfig(opt Options) *system.Config {
	if opt.Config != nil {
		return opt.Config
	}
	cfg := system.DefaultConfig()
	return &cfg
}

// Table2 renders the benchmark summary (the paper's Table 2).
func Table2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %-45s %s\n", "bench", "source", "pattern", "paper input")
	for _, b := range workloads.All {
		fmt.Fprintf(&sb, "%-10s %-10s %-45s %s\n", b.Name, b.Source, b.Pattern, b.Input)
	}
	return sb.String()
}

// Fig12Row is one benchmark's row in the adaptive-control study (the
// repository's Figure 12, not a paper figure): speedup over no prefetching
// for the online adaptive controller, for every static Figure 7 scheme, and
// for the oracle-best static — the per-benchmark maximum a scheme picked
// with perfect hindsight would achieve. Statics a benchmark does not
// support are NaN, as in Figure 7.
type Fig12Row struct {
	Benchmark string
	Adaptive  float64
	// Oracle is the best static speedup on this benchmark; OracleScheme
	// names the static that achieved it.
	Oracle       float64
	OracleScheme Scheme
	Static       map[Scheme]float64
	// Switches and IdleDemotes summarise the controller's activity.
	Switches    int64
	IdleDemotes int64
}

// fig12Benches is the Figure 12 row set: every Table 2 benchmark plus the
// Extra workloads (the synthetic phase-alternation study), which figure
// sweeps over All deliberately exclude.
func fig12Benches() []*workloads.Benchmark {
	benches := append([]*workloads.Benchmark{}, workloads.All...)
	return append(benches, workloads.Extra...)
}

// Fig12 runs the adaptive-control comparison: the adaptive controller
// against every static scheme and the oracle-best static, on the Table 2
// benchmarks plus the Extra phase-alternation workload.
func (s *Suite) Fig12() ([]Fig12Row, error) {
	benches := fig12Benches()
	var pairs []Pair
	for _, b := range benches {
		pairs = append(pairs, Pair{Bench: b, Scheme: NoPF}, Pair{Bench: b, Scheme: Adaptive})
		for _, sch := range Schemes {
			pairs = append(pairs, Pair{Bench: b, Scheme: sch})
		}
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for _, b := range benches {
		base, err := s.run(b, NoPF)
		if err != nil {
			return nil, err
		}
		ad, err := s.run(b, Adaptive)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{
			Benchmark: b.Name,
			Adaptive:  Speedup(base, ad),
			Oracle:    math.NaN(),
			Static:    map[Scheme]float64{},
		}
		if ad.Adaptive != nil {
			row.Switches = ad.Adaptive.Switches
			row.IdleDemotes = ad.Adaptive.IdleDemotes
		}
		for _, sch := range Schemes {
			r, err := s.run(b, sch)
			if err == ErrUnsupported {
				row.Static[sch] = math.NaN()
				continue
			}
			if err != nil {
				return nil, err
			}
			v := Speedup(base, r)
			row.Static[sch] = v
			if math.IsNaN(row.Oracle) || v > row.Oracle {
				row.Oracle, row.OracleScheme = v, sch
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig12 renders the adaptive-control study. The closing geomean row
// is the acceptance check for the adaptive controller: its geomean should
// sit within a few percent of the hindsight oracle's, and above every
// static's.
func FormatFig12(rows []Fig12Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %9s %9s %-10s", "bench", "adaptive", "oracle", "(scheme)")
	for _, sch := range Schemes {
		fmt.Fprintf(&sb, " %12s", sch)
	}
	sb.WriteByte('\n')
	var adGeo, orGeo []float64
	geo := map[Scheme][]float64{}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.2fx %8.2fx %-10s", r.Benchmark, r.Adaptive, r.Oracle, r.OracleScheme)
		adGeo = append(adGeo, r.Adaptive)
		orGeo = append(orGeo, r.Oracle)
		for _, sch := range Schemes {
			v := r.Static[sch]
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, " %12s", "-")
			} else {
				fmt.Fprintf(&sb, " %11.2fx", v)
				geo[sch] = append(geo[sch], v)
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-10s %8.2fx %8.2fx %-10s", "geomean", geomean(adGeo), geomean(orGeo), "")
	for _, sch := range Schemes {
		fmt.Fprintf(&sb, " %11.2fx", geomean(geo[sch]))
	}
	sb.WriteByte('\n')
	return sb.String()
}
