package harness

import (
	"math"
	"strings"
	"testing"

	"eventpf/internal/workloads"
)

// figScale keeps figure-regeneration tests fast; shapes are asserted at
// larger scale by the directional tests and EXPERIMENTS.md runs.
const figScale = 0.02

func TestFig7StructureAndFormatting(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads.All) {
		t.Fatalf("rows = %d, want %d", len(rows), len(workloads.All))
	}
	for _, r := range rows {
		for _, sch := range Schemes {
			v, ok := r.Speedup[sch]
			if !ok {
				t.Errorf("%s missing %s", r.Benchmark, sch)
				continue
			}
			if r.Benchmark == "PageRank" && (sch == Software || sch == Converted) {
				if !math.IsNaN(v) {
					t.Errorf("PageRank %s should be a missing bar", sch)
				}
				continue
			}
			if math.IsNaN(v) || v <= 0 {
				t.Errorf("%s/%s speedup = %v", r.Benchmark, sch, v)
			}
		}
	}
	out := FormatFig7(rows)
	for _, b := range workloads.All {
		if !strings.Contains(out, b.Name) {
			t.Errorf("formatted table missing %s", b.Name)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Error("formatted table missing geomean row")
	}
}

func TestFig8ValuesInRange(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for name, v := range map[string]float64{
			"utilisation": r.Utilisation,
			"l1-nopf":     r.L1HitNoPF, "l1-pf": r.L1HitPF,
			"l2-nopf": r.L2HitNoPF, "l2-pf": r.L2HitPF,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v out of [0,1]", r.Benchmark, name, v)
			}
		}
	}
	if out := FormatFig8(rows); !strings.Contains(out, "pf-util") {
		t.Error("format header missing")
	}
}

func TestFig10QuartilesOrdered(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Activity) != 12 {
			t.Errorf("%s has %d PPUs, want 12", r.Benchmark, len(r.Activity))
		}
		if !(r.Min <= r.Q1 && r.Q1 <= r.Median && r.Median <= r.Q3 && r.Q3 <= r.Max) {
			t.Errorf("%s quartiles out of order: %+v", r.Benchmark, r)
		}
		// Lowest-id-first scheduling: PPU 0 must be the busiest.
		for i, a := range r.Activity {
			if a > r.Activity[0]+1e-9 {
				t.Errorf("%s: PPU %d busier than PPU 0", r.Benchmark, i)
			}
		}
	}
}

func TestFig11AllRowsPresent(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads.All) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Blocked <= 0 || r.Events <= 0 {
			t.Errorf("%s: blocked=%v events=%v", r.Benchmark, r.Blocked, r.Events)
		}
	}
}

func TestInstrOverheadPositive(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.InstrOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // PageRank has no software variant
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.IncreasePct <= 0 {
			t.Errorf("%s: software prefetch added no instructions (%+.0f%%)",
				r.Benchmark, r.IncreasePct)
		}
	}
}

func TestExtraMemReported(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	rows, err := s.ExtraMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BaseReads <= 0 || r.PFReads <= 0 {
			t.Errorf("%s: dram reads base=%d pf=%d", r.Benchmark, r.BaseReads, r.PFReads)
		}
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(Options{Scale: figScale})
	a, err := s.run(workloads.HJ2, NoPF)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run(workloads.HJ2, NoPF)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("cache returned a different result")
	}
	if len(s.cache) != 1 {
		t.Errorf("cache has %d entries, want 1", len(s.cache))
	}
}

func TestTable1MentionsEveryStructure(t *testing.T) {
	out := Table1(Options{})
	for _, want := range []string{"Core", "L1D", "L2", "TLB", "DRAM", "Prefetch", "Stride", "GHB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ListsAllBenchmarks(t *testing.T) {
	out := Table2()
	for _, b := range workloads.All {
		if !strings.Contains(out, b.Name) {
			t.Errorf("Table2 missing %s", b.Name)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if !math.IsNaN(geomean(nil)) {
		t.Error("geomean(nil) should be NaN")
	}
}
