package harness

import (
	"fmt"

	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// WarmRun is a run paused at a retired-micro-op boundary: the warmup
// executed exactly once, ready to be forked into many sweep continuations
// (Figure 9's clock points, ablation cells) or resumed to completion.
//
// A WarmRun is confined to one goroutine. Fork the continuations you need
// first — forking reads the paused parent — then Finish each RunCont on any
// goroutine you like; forked machines share nothing mutable.
type WarmRun struct{ rs *runSetup }

// Warm prepares b×scheme under opt and advances the simulation until the
// core has retired warmupOps micro-ops (or the program finished, if it is
// shorter — check Done).
func Warm(b *workloads.Benchmark, scheme Scheme, opt Options, warmupOps int64) (*WarmRun, error) {
	rs, err := prepare(b, scheme, opt)
	if err != nil {
		return nil, err
	}
	rs.m.Start(rs.stream)
	rs.m.RunUntilOps(warmupOps)
	return &WarmRun{rs: rs}, nil
}

// Done reports whether the program already completed during warmup (no fork
// point left — sweep callers should fall back to full runs).
func (w *WarmRun) Done() bool { return w.rs.m.Done() }

// Machine exposes the paused machine, e.g. for checkpoint digests.
func (w *WarmRun) Machine() *system.Machine { return w.rs.m }

// Fork clones the warmed run under cfg (same structural sizing; PPU clock,
// queue limits and context-switch period may differ) without advancing
// either copy. With cfg equal to the parent's, completing the fork yields
// byte-identical results to completing the parent.
func (w *WarmRun) Fork(cfg system.Config) (*RunCont, error) {
	f, err := w.rs.m.ForkWith(cfg)
	if err != nil {
		return nil, err
	}
	fs, ok := f.Stream().(*seq)
	if !ok {
		return nil, fmt.Errorf("harness: forked machine lost its stream (program finished during warmup?)")
	}
	return &RunCont{rs: &runSetup{
		b: w.rs.b, scheme: w.rs.scheme, m: f, stream: fs,
		inst: w.rs.inst, pass: w.rs.pass,
	}}, nil
}

// Resume completes the parent run itself. The WarmRun must not be forked or
// resumed again afterwards.
func (w *WarmRun) Resume() (Result, error) {
	return (&RunCont{rs: w.rs}).Finish()
}

// RunCont is a forked (or resumed) continuation ready to complete.
type RunCont struct{ rs *runSetup }

// Finish drains the simulation to completion, validates the benchmark's
// oracle against this machine's memory, and assembles the Result.
func (c *RunCont) Finish() (Result, error) {
	c.rs.m.Drain()
	return c.rs.collect(c.rs.m.Finish())
}
