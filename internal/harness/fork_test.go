package harness

import (
	"bytes"
	"sync"
	"testing"

	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// TestForkMatchesStraightThrough is the checkpoint/fork correctness gate:
// for each golden benchmark×scheme pair, warming a machine partway, forking
// it (twice, completed concurrently, so the race detector can see any shared
// state between siblings) and resuming the parent must all produce results
// byte-identical to an uninterrupted run.
func TestForkMatchesStraightThrough(t *testing.T) {
	for _, gp := range goldenPairs {
		gp := gp
		t.Run(gp.bench+"/"+gp.scheme.String(), func(t *testing.T) {
			t.Parallel()
			b, err := workloads.ByName(gp.bench)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Scale: goldenScale}
			straight, err := Run(b, gp.scheme, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := encode(t, straight)

			w, err := Warm(b, gp.scheme, opt, straight.Core.Ops/3)
			if err != nil {
				t.Fatal(err)
			}
			if w.Done() {
				t.Fatalf("program finished during warmup (%d ops): no fork point to test", straight.Core.Ops/3)
			}
			contA, err := w.Fork(w.Machine().Cfg)
			if err != nil {
				t.Fatal(err)
			}
			contB, err := w.Fork(w.Machine().Cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Complete both siblings and the parent concurrently: each
			// machine is confined to its own goroutine, and any aliased
			// state between them shows up as a data race or a byte diff.
			results := make([]Result, 3)
			errs := make([]error, 3)
			var wg sync.WaitGroup
			for i, f := range []func() (Result, error){contA.Finish, contB.Finish, w.Resume} {
				wg.Add(1)
				go func(i int, f func() (Result, error)) {
					defer wg.Done()
					results[i], errs[i] = f()
				}(i, f)
			}
			wg.Wait()
			for i, name := range []string{"fork A", "fork B", "resumed parent"} {
				if errs[i] != nil {
					t.Fatalf("%s: %v", name, errs[i])
				}
				if got := encode(t, results[i]); !bytes.Equal(got, want) {
					t.Errorf("%s: result bytes differ from straight-through run\n(got %d cycles, want %d)",
						name, results[i].Cycles, straight.Cycles)
				}
			}
		})
	}
}

func encode(t *testing.T, r Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestForkRejectsStructuralChanges pins the compatibility contract: sweeps
// may retarget the PPU clock across a fork, but anything that reshapes
// copied state must be refused.
func TestForkRejectsStructuralChanges(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Warm(b, Manual, Options{Scale: 0.02}, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	okCfg := w.Machine().Cfg
	okCfg.Prefetcher.PPUClock = mustClock(500)
	if _, err := w.Machine().ForkWith(okCfg); err != nil {
		t.Errorf("clock-only change should fork: %v", err)
	}
	bad := w.Machine().Cfg
	bad.L1.MSHRs *= 2
	if _, err := w.Machine().ForkWith(bad); err == nil {
		t.Error("cache-geometry change must not fork")
	}
	bad = w.Machine().Cfg
	bad.Prefetcher.NumPPUs = 3
	if _, err := w.Machine().ForkWith(bad); err == nil {
		t.Error("PPU-count change must not fork")
	}
}

// TestCheckpointRoundTrip saves a checkpoint, resumes it, and requires the
// resumed result to be byte-identical to an uninterrupted run of the same
// job — the property the CI checkpoint smoke also exercises end to end.
func TestCheckpointRoundTrip(t *testing.T) {
	spec := JobSpec{Bench: "HJ-2", Scheme: "manual", Scale: goldenScale}
	job, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	straight, err := Run(job.Bench, job.Scheme, Options{Scale: job.Scale})
	if err != nil {
		t.Fatal(err)
	}

	var file bytes.Buffer
	cp, err := SaveCheckpoint(&file, spec, straight.Core.Ops/2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Digest == 0 {
		t.Error("checkpoint digest should fingerprint real state")
	}
	resumed, err := ResumeCheckpoint(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, resumed), encode(t, straight)) {
		t.Errorf("resumed result differs from straight-through run (got %d cycles, want %d)",
			resumed.Cycles, straight.Cycles)
	}

	// A checkpoint against different inputs must be refused, not resumed.
	bad := file.Bytes()
	tampered := bytes.Replace(bad, []byte(`"warmup_ops": `), []byte(`"warmup_ops": 1`), 1)
	if _, err := ResumeCheckpoint(bytes.NewReader(tampered)); err == nil {
		t.Error("digest mismatch should fail the resume")
	}
}

// TestSampledRunCPIError bounds the SMARTS sampling error at small scale:
// the estimated whole-program cycle count must stay within a loose band of
// the full run's, while simulating only a fraction of ops in detail. The
// functional side (oracle check) must hold exactly.
func TestSampledRunCPIError(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(b, Manual, Options{Scale: goldenScale})
	if err != nil {
		t.Fatal(err)
	}
	sc := system.SampleConfig{WarmupOps: 1_000, MeasureOps: 4_000, FFOps: 15_000}
	sampled, err := Run(b, Manual, Options{Scale: goldenScale, Sample: &sc})
	if err != nil {
		t.Fatal(err)
	}
	st := sampled.Sampled
	if st == nil {
		t.Fatal("sampled run did not report sampling stats")
	}
	if st.TotalOps != full.Core.Ops {
		t.Errorf("sampled run consumed %d ops, full run %d — functional execution diverged", st.TotalOps, full.Core.Ops)
	}
	if st.DetailedOps >= st.TotalOps*3/4 {
		t.Errorf("sampling detailed %d of %d ops — not actually fast-forwarding", st.DetailedOps, st.TotalOps)
	}
	relErr := float64(st.EstimatedCycles-full.Cycles) / float64(full.Cycles)
	if relErr < 0 {
		relErr = -relErr
	}
	t.Logf("full %d cycles, estimated %d (%.1f%% error, %d/%d ops detailed)",
		full.Cycles, st.EstimatedCycles, 100*relErr, st.DetailedOps, st.TotalOps)
	if relErr > 0.35 {
		t.Errorf("sampled CPI estimate off by %.1f%% (full %d, estimated %d)", 100*relErr, full.Cycles, st.EstimatedCycles)
	}
}

// TestSuiteSimulatesBaselineOnce asserts the no-prefetch baseline dedup
// across figures: Figure 8, Figure 11 and the instruction-overhead analysis
// all need every benchmark's NoPF (and mostly Manual) runs, and the memo
// must simulate each exactly once per suite.
func TestSuiteSimulatesBaselineOnce(t *testing.T) {
	s := NewSuite(Options{Scale: 0.02})
	if _, err := s.Fig8(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig11(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstrOverhead(); err != nil {
		t.Fatal(err)
	}
	_, misses := s.MemoStats()
	// Fig8 simulates no-pf + manual for each benchmark; Fig11 adds only
	// manual-blocked; InstrOverhead adds only software. Anything above
	// 4×benchmarks means a baseline re-simulated.
	want := int64(4 * len(workloads.All))
	if misses != want {
		t.Errorf("suite simulated %d unique runs, want %d — a shared baseline was re-simulated", misses, want)
	}
}

// TestForkAllocBudget pins the allocation cost of forking a warmed machine.
// A fork necessarily builds a second machine, so the budget is far above the
// steady-state (zero-alloc) simulation gates, but it must stay bounded: the
// sweep fan-out forks dozens of machines per figure.
func TestForkAllocBudget(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Warm(b, Manual, Options{Scale: 0.02}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if w.Done() {
		t.Fatal("program finished during warmup; pick a smaller warmup")
	}
	m := w.Machine()
	avg := testing.AllocsPerRun(3, func() {
		if _, err := m.Fork(); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 6_000
	if avg > budget {
		t.Errorf("Machine.Fork allocated %.0f objects, budget %d", avg, budget)
	}
	t.Logf("Machine.Fork: %.0f allocs (budget %d)", avg, budget)
}
