package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"eventpf/internal/workloads"
)

// updateGolden regenerates the committed golden result files instead of
// comparing against them:
//
//	go test ./internal/harness -run TestGoldenResults -update-golden
//
// Only do this when a change is *supposed* to alter simulated timing; the
// whole point of the goldens is that performance work (pooling, closure-free
// scheduling, queue recycling) must NOT move a single byte of any result.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden result files")

// goldenPairs are the pinned benchmark×scheme measurements. They are chosen
// to cover every allocation-sensitive path: manual exercises the full
// event-triggered prefetcher (kernels, tagged chains, EWMA), manual-blocked
// the Figure 11 suspended-VM path, stride the baseline issuer, and no-pf the
// bare core+cache+DRAM+TLB stack.
var goldenPairs = []struct {
	bench  string
	scheme Scheme
}{
	{"HJ-2", NoPF},
	{"HJ-2", Manual},
	{"RandAcc", Stride},
	{"G500-CSR", ManualBlocked},
	// Every remaining pre-registry scheme, pinned across the scheme-registry
	// refactor: collapsing the dispatch switches into one table must not move
	// a single byte of any scheme's result.
	{"HJ-2", GHBRegular},
	{"HJ-2", GHBLarge},
	{"HJ-2", Software},
	{"HJ-2", Pragma},
	{"HJ-2", Converted},
	// The registry-added competitor prefetchers. RandAcc's random-walk access
	// stream exercises the timing and delta paths hardest; their presence here
	// also puts each new unit through the fork byte-identity test.
	{"RandAcc", RPT},
	{"RandAcc", GHBDelta},
	{"RandAcc", TSKID},
}

const goldenScale = 0.05

func goldenPath(bench string, scheme Scheme) string {
	return filepath.Join("testdata", "golden_"+bench+"_"+scheme.String()+".json")
}

// TestGoldenResults pins the exact EncodeResult bytes (and therefore every
// cycle count, stat counter and EWMA value) of four representative runs.
// Any change to simulated behaviour — intended or not — fails here; pure
// performance work must keep these bytes identical.
func TestGoldenResults(t *testing.T) {
	for _, gp := range goldenPairs {
		gp := gp
		t.Run(gp.bench+"/"+gp.scheme.String(), func(t *testing.T) {
			t.Parallel()
			b, err := workloads.ByName(gp.bench)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(b, gp.scheme, Options{Scale: goldenScale})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := EncodeResult(&buf, res); err != nil {
				t.Fatal(err)
			}
			path := goldenPath(gp.bench, gp.scheme)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s under %s: result bytes differ from golden %s\n"+
					"cycles: got %d\nsimulated behaviour changed; if intended, rerun with -update-golden",
					gp.bench, gp.scheme, path, res.Cycles)
			}
		})
	}
}
