package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"eventpf/internal/tracein"
	"eventpf/internal/workloads"
)

// JobSpec is one simulation request as the outside world states it: a wire
// format shared by ppfserve's POST /jobs body, ppfload's request generator
// and any future batch front end. All fields except Bench and Scheme are
// optional; zero values take the Table 1 / Table 2 defaults.
type JobSpec struct {
	// Bench is a Table 2 benchmark name; matching ignores case and
	// punctuation (workloads.ByName).
	Bench string `json:"bench"`
	// Trace, if set, is a path to a captured trace file (internal/tracein)
	// replayed in place of a named benchmark; Bench must then be empty. The
	// path is resolved on the machine that simulates, and it becomes part of
	// the content key — note the key does not cover the file's bytes, so a
	// cache shared across machines must only see stable trace paths.
	Trace string `json:"trace,omitempty"`
	// Scheme is a Figure 7 scheme name ("no-pf", "stride", … "manual").
	Scheme string `json:"scheme"`
	// Scale multiplies the benchmark's default reduced input; 0 means 1.0
	// (servers typically substitute their own default before resolving).
	Scale float64 `json:"scale,omitempty"`
	// PPUs and PPUMHz override the prefetcher sizing (0 = default).
	PPUs   int `json:"ppus,omitempty"`
	PPUMHz int `json:"ppu_mhz,omitempty"`
	// Slices, if above 1, runs the simulation time-parallel across that
	// many op-count slices (approximate but deterministic; see
	// harness.Options.Slices). 0 or 1 is the exact serial engine.
	Slices int `json:"slices,omitempty"`
}

// Job is a resolved, canonical JobSpec: the benchmark and scheme exist, and
// every field is folded to its effective value, so two Jobs describe the
// same simulation if and only if they are equal (and hash to the same Key).
type Job struct {
	Bench  *workloads.Benchmark
	Scheme Scheme
	Scale  float64
	PPUs   int
	PPUMHz int
	Slices int
}

// Resolve validates the spec and folds it to canonical form: benchmark and
// scheme names are resolved (an unknown name's error lists the valid ones),
// scale defaults to 1.0, and PPU sizing is folded exactly like the Suite
// memo key — defaults filled in for programmable schemes, zeroed for
// schemes a PPU cannot affect — so the content hash never distinguishes
// requests the simulator cannot.
func (j JobSpec) Resolve() (Job, error) {
	var b *workloads.Benchmark
	switch {
	case j.Trace != "" && j.Bench != "":
		return Job{}, fmt.Errorf("harness: job names both bench %q and trace %q; pick one", j.Bench, j.Trace)
	case j.Trace != "":
		b = tracein.Bench(j.Trace)
	default:
		var err error
		b, err = workloads.ByName(j.Bench)
		if err != nil {
			return Job{}, err
		}
	}
	scheme, ok := ParseScheme(j.Scheme)
	if !ok {
		return Job{}, &UnknownSchemeError{Name: j.Scheme}
	}
	if j.Scale < 0 {
		return Job{}, fmt.Errorf("harness: scale %g must be positive", j.Scale)
	}
	scale := j.Scale
	if scale == 0 {
		scale = 1.0
	}
	if j.PPUs < 0 || j.PPUMHz < 0 {
		return Job{}, fmt.Errorf("harness: PPU sizing %d×%dMHz must not be negative", j.PPUs, j.PPUMHz)
	}
	if j.Slices < 0 {
		return Job{}, fmt.Errorf("harness: slices %d must not be negative", j.Slices)
	}
	slices := j.Slices
	if slices == 1 {
		slices = 0 // one slice is the serial engine: fold to the default spelling
	}
	ppus, mhz := foldSizing(scheme, j.PPUs, j.PPUMHz, Options{})
	return Job{Bench: b, Scheme: scheme, Scale: scale, PPUs: ppus, PPUMHz: mhz, Slices: slices}, nil
}

// Pair converts the job to the Suite's memo request. The pair carries the
// job's scale, so one suite serves jobs at any mix of scales.
func (j Job) Pair() Pair {
	return Pair{Bench: j.Bench, Scheme: j.Scheme, Scale: j.Scale, PPUs: j.PPUs, PPUMHz: j.PPUMHz, Slices: j.Slices}
}

// Canonical renders the resolved config in the fixed textual form the
// content hash covers. The field order is part of the cache format; the
// slices term appears only on sliced jobs, so every serial job's key is
// unchanged from before time-parallel execution existed.
func (j Job) Canonical() string {
	c := fmt.Sprintf("bench=%s;scheme=%s;scale=%g;ppus=%d;mhz=%d",
		j.Bench.Name, j.Scheme, j.Scale, j.PPUs, j.PPUMHz)
	if j.Slices > 1 {
		c += fmt.Sprintf(";slices=%d", j.Slices)
	}
	return c
}

// Key is the job's content address: the hex SHA-256 of the canonical
// resolved config. Every request that must simulate identically — whatever
// spelling, casing or redundant sizing the client used — has the same Key,
// so a result cache indexed by it can never serve the wrong result and
// never simulates one config twice.
func (j Job) Key() string {
	sum := sha256.Sum256([]byte(j.Canonical()))
	return hex.EncodeToString(sum[:])
}

// EncodeResult writes the canonical JSON encoding of a Result: the exact
// bytes ppfsim -json prints and ppfserve caches and serves, so "the daemon's
// answer is byte-identical to the CLI's" is a property of this one function.
func EncodeResult(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
