package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"eventpf/internal/trace"
	"eventpf/internal/workloads"
)

// TestMemoCountersPinned is the satellite regression test: a repeated Suite
// run has exactly one miss and one hit per repetition, and FillMetrics
// exports those counts (idempotently) into a registry.
func TestMemoCountersPinned(t *testing.T) {
	s := NewSuite(Options{Scale: testScale, Parallel: 2})
	p := Pair{Bench: workloads.HJ2, Scheme: NoPF}
	for i := 0; i < 3; i++ {
		if _, err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := s.MemoStats()
	if hits != 2 || misses != 1 {
		t.Errorf("memo stats after 3 identical runs: hits=%d misses=%d, want 2/1", hits, misses)
	}
	// A second distinct pair is one more miss; re-running it one more hit.
	q := Pair{Bench: workloads.HJ2, Scheme: Stride}
	if err := s.Prefetch([]Pair{q, q}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(q); err != nil {
		t.Fatal(err)
	}
	hits, misses = s.MemoStats()
	if misses != 2 {
		t.Errorf("memo misses = %d, want 2 (two distinct configs simulated)", misses)
	}
	if hits != 4 {
		t.Errorf("memo hits = %d, want 4", hits)
	}

	reg := trace.NewRegistry()
	s.FillMetrics(reg)
	s.FillMetrics(reg) // set semantics: filling twice must not double
	if got := reg.Counter("suite.memo.hits").N; got != hits {
		t.Errorf("registry suite.memo.hits = %d, want %d", got, hits)
	}
	if got := reg.Counter("suite.memo.misses").N; got != misses {
		t.Errorf("registry suite.memo.misses = %d, want %d", got, misses)
	}
}

// TestRunCtxCancelledWaiter: a context cancelled before the suite can start
// the simulation returns promptly with ctx.Err() and leaves the memo clean,
// so a later request for the same pair still works.
func TestRunCtxCancelledWaiter(t *testing.T) {
	s := NewSuite(Options{Scale: testScale, Parallel: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Pair{Bench: workloads.RandAcc, Scheme: NoPF}
	// The pool has one worker and nothing running, so the only cancellation
	// window that is guaranteed regardless of scheduling is "cancelled
	// before the call": the semaphore select sees ctx.Done() already closed
	// — either arm may win, so accept success or context.Canceled, but a
	// follow-up uncancelled run must always succeed.
	if _, err := s.RunCtx(ctx, p); err != nil && err != context.Canceled {
		t.Fatalf("RunCtx with cancelled ctx: %v", err)
	}
	if _, err := s.RunCtx(context.Background(), p); err != nil {
		t.Fatalf("run after cancelled attempt: %v", err)
	}
}

// TestPairScaleExtendsMemoKey: the same bench×scheme at two scales must be
// two memo entries (the serving layer relies on this), while scale 0 folds
// onto the suite default.
func TestPairScaleExtendsMemoKey(t *testing.T) {
	s := NewSuite(Options{Scale: testScale, Parallel: 2})
	base := Pair{Bench: workloads.HJ2, Scheme: NoPF}
	dflt := base
	dflt.Scale = testScale // explicit default scale: same key
	other := base
	other.Scale = testScale * 2
	if s.Key(base) != s.Key(dflt) {
		t.Errorf("explicit default scale changed the key: %q vs %q", s.Key(base), s.Key(dflt))
	}
	if s.Key(base) == s.Key(other) {
		t.Errorf("different scales share key %q", s.Key(base))
	}
	r1, err := s.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r2.Cycles {
		t.Error("runs at different scales returned identical cycle counts; memo likely collided")
	}
}

func TestJobSpecResolveAndKey(t *testing.T) {
	// Spelling, casing and redundant sizing must all fold onto one key.
	specs := []JobSpec{
		{Bench: "HJ-2", Scheme: "manual", Scale: 0.1},
		{Bench: "hj2", Scheme: "manual", Scale: 0.1},
		{Bench: "hj_2", Scheme: "manual", Scale: 0.1, PPUs: 12, PPUMHz: 1000},
	}
	var keys []string
	for _, sp := range specs {
		j, err := sp.Resolve()
		if err != nil {
			t.Fatalf("Resolve(%+v): %v", sp, err)
		}
		keys = append(keys, j.Key())
	}
	if keys[0] != keys[1] || keys[0] != keys[2] {
		t.Errorf("equivalent specs hash differently: %v", keys)
	}
	if len(keys[0]) != 64 {
		t.Errorf("key %q is not a hex sha256", keys[0])
	}

	// Sizing on a scheme with no PPU folds to zero: same content address.
	a, err := JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.1, PPUs: 4, PPUMHz: 250}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("PPU sizing changed a no-pf key: %s vs %s", a.Canonical(), b.Canonical())
	}

	// Distinct configs must not collide.
	c, err := JobSpec{Bench: "HJ-2", Scheme: "manual", Scale: 0.1, PPUs: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == keys[0] {
		t.Error("different PPU count produced the same key")
	}

	// Errors carry the valid menu.
	if _, err := (JobSpec{Bench: "nope", Scheme: "manual"}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), "hj2") {
		t.Errorf("unknown bench error %v does not list valid names", err)
	}
	if _, err := (JobSpec{Bench: "HJ-2", Scheme: "nope"}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), "manual-blocked") {
		t.Errorf("unknown scheme error %v does not list valid schemes", err)
	}
	if _, err := (JobSpec{Bench: "HJ-2", Scheme: "manual", Scale: -1}).Resolve(); err == nil {
		t.Error("negative scale resolved")
	}
}

// TestSchemeRoundTrip pins ParseScheme/UnmarshalText against String.
func TestSchemeRoundTrip(t *testing.T) {
	for _, sch := range AllSchemes {
		got, ok := ParseScheme(sch.String())
		if !ok || got != sch {
			t.Errorf("ParseScheme(%q) = %v, %v", sch.String(), got, ok)
		}
		var u Scheme
		if err := u.UnmarshalText([]byte(sch.String())); err != nil || u != sch {
			t.Errorf("UnmarshalText(%q) = %v, %v", sch.String(), u, err)
		}
	}
	if _, ok := ParseScheme("bogus"); ok {
		t.Error("ParseScheme(bogus) succeeded")
	}
}

// TestEncodeResultDeterministic: the canonical encoding of the same config
// is byte-identical across independent simulations — the property ppfserve's
// content-addressed cache serves under.
func TestEncodeResultDeterministic(t *testing.T) {
	j, err := JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: testScale}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res, err := Run(j.Bench, j.Scheme, Options{Scale: j.Scale})
		if err != nil {
			t.Fatal(err)
		}
		if err := EncodeResult(&bufs[i], res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("two runs of the same config encode differently")
	}
}

// TestJobSpecSlices pins the slices term of the content key: absent on
// serial jobs (so every pre-slicing key is unchanged), folded away for the
// equivalent spelling slices=1, present only on genuinely sliced jobs, and
// negative values rejected.
func TestJobSpecSlices(t *testing.T) {
	serial, err := JobSpec{Bench: "HJ-2", Scheme: "stride"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(serial.Canonical(), "slices") {
		t.Errorf("serial canonical %q mentions slices", serial.Canonical())
	}
	one, err := JobSpec{Bench: "HJ-2", Scheme: "stride", Slices: 1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if one.Key() != serial.Key() {
		t.Error("slices=1 keys differently from the serial default")
	}
	sliced, err := JobSpec{Bench: "HJ-2", Scheme: "stride", Slices: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sliced.Canonical(), ";slices=4") {
		t.Errorf("sliced canonical %q lacks the slices term", sliced.Canonical())
	}
	if sliced.Key() == serial.Key() {
		t.Error("sliced job shares the serial job's key")
	}
	if sliced.Pair().Slices != 4 {
		t.Errorf("Pair().Slices = %d, want 4", sliced.Pair().Slices)
	}
	if _, err := (JobSpec{Bench: "HJ-2", Scheme: "stride", Slices: -1}).Resolve(); err == nil {
		t.Error("negative slices accepted")
	}
}
