package harness

import (
	"errors"
	"strings"
	"testing"

	"eventpf/internal/ir"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// TestParallelSuiteMatchesSerial is the central determinism guarantee of
// the worker-pool suite: the same benchmark×scheme run twice serially and
// once through a wide parallel suite must agree on every architectural
// count. Run with -race, this also proves each Machine stays confined to
// its goroutine.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	benches := []*workloads.Benchmark{workloads.HJ2, workloads.RandAcc, workloads.G500CSR}
	schemes := []Scheme{NoPF, Stride, Manual}

	type key struct {
		b string
		s Scheme
	}
	serial := map[key]Result{}
	for _, b := range benches {
		for _, sch := range schemes {
			r1, err := Run(b, sch, Options{Scale: testScale})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, sch, err)
			}
			r2, err := Run(b, sch, Options{Scale: testScale})
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", b.Name, sch, err)
			}
			if r1.Cycles != r2.Cycles {
				t.Fatalf("%s/%s: serial reruns disagree: %d vs %d cycles", b.Name, sch, r1.Cycles, r2.Cycles)
			}
			serial[key{b.Name, sch}] = r1
		}
	}

	s := NewSuite(Options{Scale: testScale, Parallel: 8})
	var pairs []Pair
	for _, b := range benches {
		for _, sch := range schemes {
			pairs = append(pairs, Pair{Bench: b, Scheme: sch})
		}
	}
	if err := s.Prefetch(pairs); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		got, err := s.Run(p)
		if err != nil {
			t.Fatalf("%s/%s: %v", p.Bench.Name, p.Scheme, err)
		}
		want := serial[key{p.Bench.Name, p.Scheme}]
		if got.Cycles != want.Cycles {
			t.Errorf("%s/%s: parallel %d cycles, serial %d", p.Bench.Name, p.Scheme, got.Cycles, want.Cycles)
		}
		if got.Core.Ops != want.Core.Ops || got.DRAM.Reads != want.DRAM.Reads ||
			got.L1 != want.L1 || got.L2 != want.L2 ||
			got.PF.KernelRuns != want.PF.KernelRuns || got.PF.Issued != want.PF.Issued {
			t.Errorf("%s/%s: parallel stats diverge from serial: %+v vs %+v",
				p.Bench.Name, p.Scheme, got.Result, want.Result)
		}
	}
}

// TestPrefetchSharesBaseline checks the singleflight memo: requesting the
// same pair many times concurrently must leave exactly one cache entry per
// distinct configuration.
func TestPrefetchSharesBaseline(t *testing.T) {
	s := NewSuite(Options{Scale: testScale, Parallel: 4})
	pairs := []Pair{
		{Bench: workloads.HJ2, Scheme: NoPF},
		{Bench: workloads.HJ2, Scheme: NoPF},
		{Bench: workloads.HJ2, Scheme: NoPF},
		{Bench: workloads.HJ2, Scheme: Manual},
		// Explicit default sizing must collapse onto the default Manual run.
		{Bench: workloads.HJ2, Scheme: Manual, PPUs: 12, PPUMHz: 1000},
	}
	if err := s.Prefetch(pairs); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	if n != 2 {
		t.Errorf("cache has %d entries, want 2 (shared baseline + shared manual)", n)
	}
}

// TestPrefetchIgnoresUnsupported mirrors the paper's missing Figure 7 bars:
// a batch containing an unsupported pair must still succeed.
func TestPrefetchIgnoresUnsupported(t *testing.T) {
	s := NewSuite(Options{Scale: testScale, Parallel: 2})
	err := s.Prefetch([]Pair{
		{Bench: workloads.PageRank, Scheme: Software},
		{Bench: workloads.HJ2, Scheme: NoPF},
	})
	if err != nil {
		t.Fatalf("Prefetch with an unsupported pair: %v", err)
	}
	if _, err := s.Run(Pair{Bench: workloads.PageRank, Scheme: Software}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("collecting the unsupported pair: %v, want ErrUnsupported", err)
	}
}

// TestParallelFigureGeneratorsShareOneSuite drives two figure generators
// that overlap on the no-prefetch baseline through one suite; under -race
// this exercises concurrent memo access from the fan-out paths.
func TestParallelFigureGeneratorsShareOneSuite(t *testing.T) {
	s := NewSuite(Options{Scale: figScale, Parallel: 8})
	rows8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	rows11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != len(workloads.All) || len(rows11) != len(workloads.All) {
		t.Fatalf("rows: fig8 %d, fig11 %d", len(rows8), len(rows11))
	}
	// Same suite, same memo: Fig11's Manual results derive from the exact
	// runs Fig8 already measured, so the two figures must agree.
	serial := NewSuite(Options{Scale: figScale, Parallel: 1})
	srows, err := serial.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows11 {
		if rows11[i] != srows[i] {
			t.Errorf("fig11 row %d: parallel %+v, serial %+v", i, rows11[i], srows[i])
		}
	}
}

// TestRunRejectsEmptyInstance pins the guard for benchmark instances with
// no kernel invocations: a clear error, not a nil-interpreter panic.
func TestRunRejectsEmptyInstance(t *testing.T) {
	empty := &workloads.Benchmark{
		Name: "empty",
		Build: func(m *system.Machine, scale float64) *workloads.Instance {
			return &workloads.Instance{
				BuildFn: func(v workloads.Variant) *ir.Fn {
					b := ir.NewBuilder("noop", 0)
					b.SetBlock(b.NewBlock("entry"))
					b.Ret(b.Const(0))
					return b.MustFinish()
				},
				Check: func(m *system.Machine, ret uint64, hasRet bool) error { return nil },
			}
		},
	}
	_, err := Run(empty, NoPF, Options{Scale: testScale})
	if err == nil {
		t.Fatal("Run on an instance with no runs succeeded, want error")
	}
	if !strings.Contains(err.Error(), "no runs") {
		t.Errorf("error %q does not name the empty-runs condition", err)
	}
}
