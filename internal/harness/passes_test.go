package harness

import (
	"testing"

	"eventpf/internal/workloads"
)

// TestConversionCoverage pins down which benchmarks the software-prefetch
// conversion pass handles: everything with a software-prefetch variant must
// convert every prefetch it contains (the paper's Algorithm 1 coverage).
func TestConversionCoverage(t *testing.T) {
	want := map[string]int{ // chains converted per benchmark
		"G500-CSR":  1,
		"G500-List": 1,
		"HJ-2":      2, // key-stream prefetch + hashed-bucket chain
		"HJ-8":      2,
		"RandAcc":   1,
		"IntSort":   2,
		"ConjGrad":  3, // cols, vals, and the indirect vector chain
	}
	for _, b := range workloads.All {
		if b.Name == "PageRank" {
			continue
		}
		r, err := Run(b, Converted, Options{Scale: 0.02})
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if r.Pass.Converted != want[b.Name] {
			t.Errorf("%s: %d chains converted (failed %d: %v), want %d",
				b.Name, r.Pass.Converted, r.Pass.Failed, r.Pass.Errors, want[b.Name])
		}
	}
}

// TestPragmaCoverage pins down the pragma pass: it finds indirect chains in
// straight-line loop bodies and skips control-dependent ones.
func TestPragmaCoverage(t *testing.T) {
	want := map[string]int{
		"G500-CSR":  2, // queue→rowptr[v] and queue→rowptr[v+1]
		"G500-List": 2, // queue→head[v] plus the swpf-free second chain
		"HJ-2":      1, // key→bucket; the matched-value load is conditional
		"HJ-8":      2, // key→bucket-head chain
		"PageRank":  2, // src→rank_old and dst→rank_new
		"RandAcc":   1, // state→table
		"IntSort":   1, // key→count
		"ConjGrad":  1, // cols→vector
	}
	for _, b := range workloads.All {
		r, err := Run(b, Pragma, Options{Scale: 0.02})
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if r.Pass.Converted < 1 {
			t.Errorf("%s: pragma found no chains (errors: %v)", b.Name, r.Pass.Errors)
		}
		if w, ok := want[b.Name]; ok && r.Pass.Converted != w {
			t.Logf("%s: pragma found %d chains (reference expectation %d)",
				b.Name, r.Pass.Converted, w)
		}
	}
}
