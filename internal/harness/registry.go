package harness

import (
	"fmt"
	"strings"

	"eventpf/internal/baseline"
	"eventpf/internal/compiler"
	"eventpf/internal/ir"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// Scheme is one bar of Figure 7 (plus the Figure 11 blocked variant and the
// competitor prefetchers added alongside the registry).
//
// A scheme is a registry entry, not an enum case: Register installs a
// SchemeInfo describing everything the harness needs to run it — the
// parseable name, the benchmark variant to build, the machine scheme to
// assemble, the compiler pass or manual-kernel installation to apply, and
// any configuration adjustment. Run/prepare, ConfigFor, LayoutFor, the
// figure matrices and the JSON (un)marshalling all consult the same table,
// so adding a scheme is one Register call with no switch to extend, and an
// unregistered value is a typed error everywhere instead of a silent
// fall-through.
type Scheme int

// SchemeInfo describes one comparison scheme.
type SchemeInfo struct {
	// Name is the parseable name used by CLIs, JSON and the serving layer.
	Name string
	// Description is the one-line summary ppfsim -list-schemes prints.
	Description string
	// Machine selects the hardware prefetcher the simulated machine carries.
	Machine system.Scheme
	// Variant selects which build of the benchmark runs (plain, software
	// prefetch, or pragma-annotated). The zero value is workloads.Plain.
	Variant workloads.Variant
	// Fig7 includes the scheme as a bar in the Figure 7 matrix.
	Fig7 bool
	// Pass, if non-nil, is the compiler pass run over the benchmark function;
	// the produced kernels are registered with the machine. PassName labels
	// pass failures ("<bench>: <PassName> pass: ...").
	Pass     func(*ir.Fn, *compiler.Alloc) (*compiler.Result, error)
	PassName string
	// Manual installs the benchmark's hand-written prefetch kernels.
	Manual bool
	// Configure, if non-nil, adjusts the resolved machine configuration.
	// explicit reports whether the caller supplied Options.Config — defaults
	// (like ghb-large's big sizing) must apply only when it is false, so
	// explicit overrides are always honoured.
	Configure func(cfg *system.Config, explicit bool)
}

var schemeInfos []SchemeInfo

// Register adds a comparison scheme to the registry and returns its id. Ids
// are assigned in registration order; the built-in schemes register at
// package init, keeping their historical values (NoPF=0 … ManualBlocked=8).
func Register(info SchemeInfo) Scheme {
	if info.Name == "" {
		panic("harness: Register: scheme needs a name")
	}
	for _, prev := range schemeInfos {
		if prev.Name == info.Name {
			panic(fmt.Sprintf("harness: Register: duplicate scheme name %q", info.Name))
		}
	}
	if !info.Machine.Valid() {
		panic(fmt.Sprintf("harness: Register(%q): unregistered machine scheme %d",
			info.Name, int(info.Machine)))
	}
	schemeInfos = append(schemeInfos, info)
	return Scheme(len(schemeInfos) - 1)
}

// The paper's comparison schemes, plus the competitor prefetchers.
var (
	// NoPF is the no-prefetching baseline every speedup is relative to.
	NoPF = Register(SchemeInfo{Name: "no-pf", Machine: system.NoPF,
		Description: "no prefetching; the baseline every speedup is relative to"})
	// Stride is the Table 1 degree-8 stride prefetcher.
	Stride = Register(SchemeInfo{Name: "stride", Machine: system.StridePF, Fig7: true,
		Description: "reference-prediction-table stride prefetcher, degree 8 (Table 1)"})
	// GHBRegular is the SRAM-sized Markov GHB prefetcher.
	GHBRegular = Register(SchemeInfo{Name: "ghb-regular", Machine: system.GHBRegular, Fig7: true,
		Description: "SRAM-sized Markov global-history-buffer prefetcher"})
	// GHBLarge is the 1 GiB-state Markov GHB study variant: the same machine
	// scheme as GHBRegular, with the large sizing applied as a *default* —
	// an explicit Options.Config keeps its own cfg.GHB.
	GHBLarge = Register(SchemeInfo{
		Name: "ghb-large", Machine: system.GHBLarge, Fig7: true,
		Description: "Markov GHB with effectively unbounded (1 GiB) state",
		Configure: func(cfg *system.Config, explicit bool) {
			if !explicit {
				cfg.GHB = baseline.LargeGHBConfig()
			}
		},
	})
	// Software runs the software-prefetch build on a machine with no
	// hardware prefetcher.
	Software = Register(SchemeInfo{
		Name: "software", Machine: system.NoPF, Variant: workloads.SWPf, Fig7: true,
		Description: "software-prefetch build, no hardware prefetcher",
	})
	// Pragma runs the plain build under kernels generated from programmer
	// pragmas (§6.2).
	Pragma = Register(SchemeInfo{
		Name: "pragma", Machine: system.Programmable, Variant: workloads.Pragma, Fig7: true,
		Pass: compiler.GeneratePragmaEvents, PassName: "pragma",
		Description: "event kernels generated from programmer pragmas (§6.2)",
	})
	// Converted runs the software-prefetch build with the prefetches
	// converted into event kernels (§6.1).
	Converted = Register(SchemeInfo{
		Name: "converted", Machine: system.Programmable, Variant: workloads.SWPf, Fig7: true,
		Pass: compiler.ConvertSoftwarePrefetches, PassName: "conversion",
		Description: "software prefetches converted into event kernels (§6.1)",
	})
	// Manual runs the hand-written event kernels (§6.3).
	Manual = Register(SchemeInfo{
		Name: "manual", Machine: system.Programmable, Fig7: true, Manual: true,
		Description: "hand-written event kernels on the programmable prefetcher (§6.3)",
	})
	// ManualBlocked is the Figure 11 variant: events replaced by blocking
	// loads inside the PPUs.
	ManualBlocked = Register(SchemeInfo{
		Name: "manual-blocked", Machine: system.Programmable, Manual: true,
		Description: "Figure 11 variant: events replaced by blocking loads in the PPUs",
		Configure: func(cfg *system.Config, explicit bool) {
			cfg.Prefetcher.Blocked = true
		},
	})
	// RPT is the Chen–Baer reference-prediction-table competitor.
	RPT = Register(SchemeInfo{Name: "rpt", Machine: system.RPT, Fig7: true,
		Description: "Chen–Baer four-state reference prediction table"})
	// GHBDelta is the delta-correlating (G/DC) GHB competitor.
	GHBDelta = Register(SchemeInfo{Name: "ghb-delta", Machine: system.GHBDelta, Fig7: true,
		Description: "GHB delta-correlation (G/DC) prefetcher"})
	// TSKID is the T-SKID-style timing-prefetch competitor.
	TSKID = Register(SchemeInfo{Name: "tskid", Machine: system.TSKID, Fig7: true,
		Description: "T-SKID-style trigger/target prefetcher with learned issue delay"})
	// Adaptive is the online adaptive controller (internal/adaptive): the
	// programmable prefetcher plus a menu of baseline units hosted on one
	// machine, phase-detected and switched at runtime. It runs the plain
	// build with the manual kernels installed (the "pf" arm), and stays out
	// of Figure 7 so the static matrices and goldens are unchanged; the
	// Figure 12 experiment compares it against every static scheme.
	Adaptive = Register(SchemeInfo{
		Name: "adaptive", Machine: system.Adaptive, Manual: true,
		Description: "online controller switching between candidate prefetchers per phase",
	})
)

// Derived views of the registry, fixed after package init.
var (
	// Schemes lists the Figure 7 bars in presentation (registration) order.
	Schemes []Scheme
	// AllSchemes lists every registered scheme, including NoPF and the
	// Figure 11 blocked variant that Schemes omits.
	AllSchemes []Scheme

	schemeByName map[string]Scheme
)

// init builds the derived views after every Register call in the var block
// above has run (package-level init() is guaranteed to follow variable
// initialisation).
func init() {
	schemeByName = make(map[string]Scheme, len(schemeInfos))
	for i, info := range schemeInfos {
		s := Scheme(i)
		schemeByName[info.Name] = s
		AllSchemes = append(AllSchemes, s)
		if info.Fig7 {
			Schemes = append(Schemes, s)
		}
	}
}

// Info returns the scheme's registry entry.
func (s Scheme) Info() (SchemeInfo, bool) {
	if s < 0 || int(s) >= len(schemeInfos) {
		return SchemeInfo{}, false
	}
	return schemeInfos[s], true
}

func (s Scheme) String() string {
	if info, ok := s.Info(); ok {
		return info.Name
	}
	return fmt.Sprintf("unknown(%d)", int(s))
}

// MarshalText makes schemes render as their names in JSON output.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText is the inverse of MarshalText, so schemes round-trip
// through JSON job records.
func (s *Scheme) UnmarshalText(text []byte) error {
	sch, ok := ParseScheme(string(text))
	if !ok {
		return &UnknownSchemeError{Name: string(text)}
	}
	*s = sch
	return nil
}

// ParseScheme resolves a scheme name as printed by Scheme.String
// ("no-pf", "ghb-large", "manual-blocked", "rpt", …).
func ParseScheme(s string) (Scheme, bool) {
	sch, ok := schemeByName[s]
	return sch, ok
}

// SchemeNames returns every scheme's parseable name, registration order.
func SchemeNames() []string {
	names := make([]string, len(schemeInfos))
	for i, info := range schemeInfos {
		names[i] = info.Name
	}
	return names
}

// UnknownSchemeError reports a scheme name that is not registered, or a
// numeric Scheme value outside the registry (e.g. decoded from a stale job
// record). It is a typed error so callers can distinguish "bad request"
// from simulation failures; its message lists the valid menu.
type UnknownSchemeError struct {
	// Name is the unparseable name, if the scheme arrived as text.
	Name string
	// Scheme is the out-of-range value, if it arrived as a number.
	Scheme Scheme
}

func (e *UnknownSchemeError) Error() string {
	what := e.Name
	if what == "" {
		what = fmt.Sprintf("%d", int(e.Scheme))
	}
	return fmt.Sprintf("harness: unknown scheme %q; valid schemes: %s",
		what, strings.Join(SchemeNames(), ", "))
}
