package harness

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"eventpf/internal/baseline"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// The registry is the single source of truth: every derived view must agree
// with it, the JSON encoding must round-trip through it, and the competitor
// schemes must appear in every menu.
func TestRegistryDerivedViews(t *testing.T) {
	if len(AllSchemes) != len(SchemeNames()) {
		t.Fatalf("AllSchemes (%d) and SchemeNames (%d) disagree", len(AllSchemes), len(SchemeNames()))
	}
	for i, s := range AllSchemes {
		if int(s) != i {
			t.Errorf("AllSchemes[%d] = %d; registration ids must be dense", i, int(s))
		}
		info, ok := s.Info()
		if !ok {
			t.Fatalf("scheme %d has no registry entry", int(s))
		}
		if SchemeNames()[i] != info.Name {
			t.Errorf("SchemeNames()[%d] = %q, want %q", i, SchemeNames()[i], info.Name)
		}
		// JSON round-trip, generated from the registry rather than a
		// hand-kept list.
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Scheme
		if err := json.Unmarshal(data, &back); err != nil || back != s {
			t.Errorf("JSON round-trip of %s: got %v, err %v", s, back, err)
		}
	}
	// The Figure 7 list is the registry filtered by Fig7, in order.
	want := 0
	for _, s := range AllSchemes {
		info, _ := s.Info()
		if !info.Fig7 {
			continue
		}
		if want >= len(Schemes) || Schemes[want] != s {
			t.Fatalf("Schemes does not match the registry's Fig7 filter at %d", want)
		}
		want++
	}
	if want != len(Schemes) {
		t.Fatalf("Schemes has %d extra entries", len(Schemes)-want)
	}
	// The competitors are registered, parseable and in the Figure 7 matrix.
	for _, name := range []string{"rpt", "ghb-delta", "tskid"} {
		s, ok := ParseScheme(name)
		if !ok {
			t.Fatalf("competitor %q not registered", name)
		}
		found := false
		for _, f := range Schemes {
			found = found || f == s
		}
		if !found {
			t.Errorf("competitor %q missing from the Fig7 scheme list", name)
		}
	}
}

// An unregistered scheme value or name is a typed *UnknownSchemeError from
// every entry point — never a silent no-pf run.
func TestUnknownSchemeTypedError(t *testing.T) {
	bad := Scheme(9999)
	assertTyped := func(what string, err error) {
		t.Helper()
		var use *UnknownSchemeError
		if !errors.As(err, &use) {
			t.Fatalf("%s: error %v is not an *UnknownSchemeError", what, err)
		}
		if !strings.Contains(err.Error(), "manual-blocked") || !strings.Contains(err.Error(), "tskid") {
			t.Errorf("%s: error %q does not list the valid scheme menu", what, err)
		}
	}

	_, err := ConfigFor(Options{}, bad)
	assertTyped("ConfigFor", err)

	_, err = LayoutFor(Options{}, bad)
	assertTyped("LayoutFor", err)

	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(b, bad, Options{Scale: 0.01})
	assertTyped("Run", err)

	var s Scheme
	err = s.UnmarshalText([]byte("bogus"))
	assertTyped("UnmarshalText", err)
	var use *UnknownSchemeError
	if errors.As(err, &use) && use.Name != "bogus" {
		t.Errorf("UnmarshalText error carries name %q, want %q", use.Name, "bogus")
	}

	_, err = JobSpec{Bench: "HJ-2", Scheme: "bogus"}.Resolve()
	assertTyped("JobSpec.Resolve", err)
}

// Regression for the ghb-large sizing bug: system.New used to rebuild the
// unit from baseline.LargeGHBConfig() unconditionally, ignoring a caller's
// cfg.GHB. The large sizing must be a default (no explicit Config) only.
func TestGHBLargeHonoursConfigOverride(t *testing.T) {
	cfg, err := ConfigFor(Options{}, GHBLarge)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GHB != baseline.LargeGHBConfig() {
		t.Errorf("default ghb-large sizing = %+v, want LargeGHBConfig", cfg.GHB)
	}

	custom := system.DefaultConfig()
	custom.GHB = baseline.RegularGHBConfig()
	got, err := ConfigFor(Options{Config: &custom}, GHBLarge)
	if err != nil {
		t.Fatal(err)
	}
	if got.GHB != custom.GHB {
		t.Errorf("explicit cfg.GHB overridden to %+v", got.GHB)
	}
}

// Behavioural half of the regression: ghb-large forced to the regular sizing
// must simulate exactly like ghb-regular (same machine, same unit config) —
// under the seed code it silently ran with the 1 GiB table instead.
func TestGHBLargeOverrideChangesSimulation(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	custom := system.DefaultConfig()
	custom.GHB = baseline.RegularGHBConfig()
	opt := Options{Scale: 0.05, Config: &custom}

	large, err := Run(b, GHBLarge, opt)
	if err != nil {
		t.Fatal(err)
	}
	regular, err := Run(b, GHBRegular, opt)
	if err != nil {
		t.Fatal(err)
	}
	if large.Cycles != regular.Cycles || large.Baseline != regular.Baseline {
		t.Errorf("ghb-large with regular sizing diverged from ghb-regular: %d/%+v vs %d/%+v",
			large.Cycles, large.Baseline, regular.Cycles, regular.Baseline)
	}
}
