// Package harness runs benchmarks under the paper's comparison schemes and
// regenerates every table and figure of the evaluation (§7). It is the glue
// between workloads, the compiler passes and the simulated machine.
package harness

import (
	"fmt"

	"eventpf/internal/compiler"
	"eventpf/internal/cpu"
	"eventpf/internal/ir"
	"eventpf/internal/mem"
	"eventpf/internal/prefetch"
	"eventpf/internal/sim"
	"eventpf/internal/system"
	"eventpf/internal/trace"
	"eventpf/internal/workloads"
)

// ErrUnsupported reports a benchmark/scheme pair that does not exist, such
// as software prefetching for PageRank (§7.1).
var ErrUnsupported = fmt.Errorf("harness: scheme not applicable to this benchmark")

// Options adjusts a run away from the Table 1 defaults.
type Options struct {
	// Scale multiplies the benchmark's default reduced input size;
	// 0 means 1.0.
	Scale float64
	// PPUs and PPUMHz override the prefetcher sizing (Figure 9); 0 keeps
	// the default 12 units at 1000 MHz.
	PPUs   int
	PPUMHz int
	// Config, if non-nil, replaces the whole machine configuration.
	Config *system.Config
	// TraceLast, if positive, attaches a ring tracer of that size to the
	// programmable prefetcher and returns it in Result.Trace.
	TraceLast int
	// TraceSink, if non-nil, is attached to the machine-wide trace bus and
	// receives typed events from every component (core, caches, TLB, DRAM,
	// prefetcher). The sink runs on the simulation goroutine: pass a
	// per-run sink, or wrap a shared one in trace.Locked before letting a
	// parallel Suite's runs write to it concurrently.
	TraceSink trace.Sink
	// Metrics, if non-nil, receives the machine's counters and
	// queue-occupancy histograms. Same confinement rule as TraceSink.
	Metrics *trace.Registry
	// OpSink, if non-nil, is attached to the core's dedicated micro-op trace
	// bus and receives one trace.CoreDispatch event per dispatched op — the
	// capture feed for tracein.Writer. If the sink also implements
	// CaptureSink, BeginCapture runs with the machine's memory regions after
	// the benchmark's data is built and before the first op. Same confinement
	// rule as TraceSink.
	OpSink trace.Sink
	// Parallel bounds how many simulations a Suite runs concurrently;
	// 0 means GOMAXPROCS. Run itself is always a single simulation on the
	// calling goroutine — each Machine stays confined to one goroutine.
	Parallel int
	// Sample, if non-nil, runs under SMARTS-style interval sampling: only
	// the configured detailed intervals are simulated in timing detail, the
	// rest executes functionally with cache/TLB/predictor warming. The
	// result's Sampled field reports the whole-program cycle estimate.
	Sample *system.SampleConfig
	// Slices, if above 1, runs time-parallel: the dynamic op stream is cut
	// into that many contiguous slices, each fast-forwarded functionally to
	// its boundary on a forked machine and detail-simulated concurrently
	// (system.RunTimeParallel). Approximate but deterministic; ignored when
	// Sample is set, and silently serial when the stream cannot be forked
	// or the program is too short to slice. 0 or 1 keeps the exact serial
	// engine — results then stay byte-identical to earlier versions.
	Slices int
}

// CaptureSink is an optional extension of trace.Sink for op-trace capture:
// a sink that also wants the machine's memory-region table (to reproduce the
// page map on replay) receives it once per run, after the benchmark builds
// its data and before any op is dispatched. tracein.Writer implements it.
type CaptureSink interface {
	trace.Sink
	BeginCapture(regions []mem.Region)
}

// Result is one benchmark × scheme measurement.
type Result struct {
	Benchmark string
	Scheme    Scheme
	system.Result
	// Pass reports compiler-pass statistics for Pragma/Converted runs.
	Pass *compiler.Result
	// Trace holds the retained prefetcher events when Options.TraceLast > 0.
	Trace *prefetch.RingTracer
}

// Run executes one benchmark under one scheme and validates the result
// against the benchmark's oracle.
func Run(b *workloads.Benchmark, scheme Scheme, opt Options) (Result, error) {
	rs, err := prepare(b, scheme, opt)
	if err != nil {
		return Result{}, err
	}
	var sys system.Result
	switch {
	case opt.Sample != nil:
		sys = rs.m.RunSampled(rs.stream, *opt.Sample)
	case opt.Slices > 1:
		sys, err = rs.runSliced(b, scheme, opt)
		if err != nil {
			return Result{}, err
		}
	default:
		sys = rs.m.Run(rs.stream)
	}
	return rs.collect(sys)
}

// runSliced executes the prepared run time-parallel. The slice boundaries
// need the program's dynamic op count up front, which only a functional
// execution can provide, so a throwaway counting machine drains a second
// copy of the stream first (interpreters execute at Next time; the count
// costs a functional pass, a small fraction of one detailed slice). After a
// sliced run the setup's machine and stream are retargeted at the final
// slice's — the pair that reached end of program and carries the state the
// oracle check needs.
func (rs *runSetup) runSliced(b *workloads.Benchmark, scheme Scheme, opt Options) (system.Result, error) {
	total, err := countOps(b, scheme, opt)
	if err != nil {
		return system.Result{}, err
	}
	sys, fm, err := rs.m.RunTimeParallel(rs.stream, system.TimeParallelConfig{
		Slices:   opt.Slices,
		TotalOps: total,
	})
	if err != nil {
		return system.Result{}, err
	}
	if fm != rs.m {
		fs, ok := fm.Stream().(*seq)
		if !ok {
			return system.Result{}, fmt.Errorf("harness: %s: final slice stream is %T, not a run sequence", b.Name, fm.Stream())
		}
		rs.m = fm
		rs.stream = fs
	}
	return sys, nil
}

// countOps measures the benchmark's dynamic op count by draining a second,
// throwaway copy of the stream functionally — no events, no timing, its own
// machine. Observers are stripped: the counting pass must not double-fire
// capture hooks or emit trace events.
func countOps(b *workloads.Benchmark, scheme Scheme, opt Options) (int64, error) {
	opt.TraceLast = 0
	opt.TraceSink = nil
	opt.Metrics = nil
	opt.OpSink = nil
	opt.Slices = 0
	rs, err := prepare(b, scheme, opt)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		if _, ok := rs.stream.Next(); !ok {
			break
		}
		n++
	}
	if err := rs.stream.streamErr(); err != nil {
		return 0, fmt.Errorf("harness: %s: counting pass: %w", b.Name, err)
	}
	return n, nil
}

// runSetup is a prepared but not yet completed run: the assembled machine,
// its micro-op stream, and everything the post-run oracle check and result
// assembly need. It is the unit the fork/checkpoint machinery hands around —
// a fork produces a new runSetup over the cloned machine and stream.
type runSetup struct {
	b      *workloads.Benchmark
	scheme Scheme
	m      *system.Machine
	stream *seq
	inst   *workloads.Instance
	tracer *prefetch.RingTracer
	pass   *compiler.Result
}

// prepare assembles the machine, applies the scheme's compiler pass or
// manual kernels, and builds the micro-op stream, stopping just short of
// running anything.
func prepare(b *workloads.Benchmark, scheme Scheme, opt Options) (*runSetup, error) {
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	info, ok := scheme.Info()
	if !ok {
		return nil, &UnknownSchemeError{Scheme: scheme}
	}
	cfg, err := ConfigFor(opt, scheme)
	if err != nil {
		return nil, err
	}

	m := system.New(cfg, info.Machine)
	inst := b.Build(m, opt.Scale)
	rs := &runSetup{b: b, scheme: scheme, m: m, inst: inst}

	if opt.TraceLast > 0 && m.PF != nil {
		rs.tracer = prefetch.NewRingTracer(opt.TraceLast)
		m.PF.Tracer = rs.tracer
	}
	if opt.TraceSink != nil {
		m.AttachTrace(trace.NewBus(opt.TraceSink))
	}
	if opt.Metrics != nil {
		m.AttachMetrics(opt.Metrics)
	}
	if opt.OpSink != nil {
		if cs, ok := opt.OpSink.(CaptureSink); ok {
			cs.BeginCapture(m.Arena.Regions())
		}
		m.AttachOpTrace(trace.NewBus(opt.OpSink))
	}

	if inst.StreamFn != nil {
		// A stream-fed instance (trace replay) has no IR: there is nothing
		// for the compiler passes to transform and no address expressions for
		// software prefetching, so only plain-variant, pass-less schemes
		// apply. Manual applicability is decided below, like everywhere else.
		if info.Variant != workloads.Plain || info.Pass != nil {
			return nil, ErrUnsupported
		}
		if err := applyManual(m, info, inst); err != nil {
			return nil, err
		}
		st, err := inst.StreamFn()
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
		}
		rs.stream = &seq{all: []cpu.Stream{st}}
		return rs, nil
	}

	fn := inst.BuildFn(info.Variant)
	if fn == nil {
		return nil, ErrUnsupported
	}
	if len(inst.Runs) == 0 {
		// Without this guard the post-run oracle check would dereference a
		// nil final interpreter.
		return nil, fmt.Errorf("harness: %s: benchmark instance has no runs", b.Name)
	}

	if info.Pass != nil {
		pass, err := info.Pass(fn, compiler.NewAlloc())
		if err != nil {
			return nil, fmt.Errorf("%s: %s pass: %w", b.Name, info.PassName, err)
		}
		for id, prog := range pass.Kernels {
			m.RegisterKernel(id, prog)
		}
		rs.pass = pass
	}
	if err := applyManual(m, info, inst); err != nil {
		return nil, err
	}

	var streams []cpu.Stream
	for _, run := range inst.Runs {
		it := m.NewInterp(fn, run.Args...)
		if run.Before != nil {
			streams = append(streams, &hookStream{before: run.Before, m: m, inner: it})
		} else {
			streams = append(streams, it)
		}
	}
	rs.stream = &seq{all: streams}
	return rs, nil
}

// applyManual installs a benchmark's hand-written PPU kernels for a Manual
// scheme. A benchmark with no hand-written kernels (BTree's descent exceeds a
// single fill-triggered event; replayed traces carry no kernels at all) is
// unsupported on a machine whose only prefetcher is the programmable one —
// but still runs on schemes like adaptive that merely include it as an arm,
// which then simply never switch to an unconfigured programmable prefetcher.
func applyManual(m *system.Machine, info SchemeInfo, inst *workloads.Instance) error {
	if !info.Manual {
		return nil
	}
	if inst.Manual == nil {
		if spec, ok := info.Machine.Spec(); ok && spec.Programmable && spec.NewUnit == nil {
			return ErrUnsupported
		}
		return nil
	}
	inst.Manual(m)
	return nil
}

// collect validates the oracle against the machine that ran and assembles
// the harness Result.
func (rs *runSetup) collect(sys system.Result) (Result, error) {
	res := Result{Benchmark: rs.b.Name, Scheme: rs.scheme, Result: sys,
		Pass: rs.pass, Trace: rs.tracer}
	var ret uint64
	var hasRet bool
	if rs.inst.StreamFn == nil {
		// Stream-fed instances (trace replay) have no interpreter and no
		// return value; their oracle is the decode state, checked below.
		last := rs.stream.lastInterp()
		if last == nil {
			return res, fmt.Errorf("harness: %s: run finished without a final interpreter", rs.b.Name)
		}
		ret, hasRet = last.Result()
	}
	if err := rs.inst.Check(rs.m, ret, hasRet); err != nil {
		return res, fmt.Errorf("%s under %s: oracle mismatch: %w", rs.b.Name, rs.scheme, err)
	}
	// A stream that tracks its own error state (a trace replayer) is
	// consulted directly: under time-parallel slicing the instance's Check
	// closure holds the original stream, which stopped at its slice
	// boundary — the final slice's clone is the one that must have decoded
	// cleanly to end of trace.
	if err := rs.stream.streamErr(); err != nil {
		return res, fmt.Errorf("%s under %s: stream error: %w", rs.b.Name, rs.scheme, err)
	}
	return res, nil
}

// ConfigFor resolves the machine configuration a Run with these options and
// scheme would use (exported so CLIs can derive the trace Layout that
// matches the run). Scheme defaults (ghb-large's big sizing, the blocked
// mode) come from the registry entry's Configure hook; an unregistered
// scheme is an *UnknownSchemeError.
func ConfigFor(opt Options, scheme Scheme) (system.Config, error) {
	info, ok := scheme.Info()
	if !ok {
		return system.Config{}, &UnknownSchemeError{Scheme: scheme}
	}
	cfg := system.DefaultConfig()
	explicit := opt.Config != nil
	if explicit {
		cfg = *opt.Config
	}
	if opt.PPUs > 0 {
		cfg.Prefetcher.NumPPUs = opt.PPUs
	}
	if opt.PPUMHz > 0 {
		cfg.Prefetcher.PPUClock = mustClock(opt.PPUMHz)
	}
	if info.Configure != nil {
		info.Configure(&cfg, explicit)
	}
	return cfg, nil
}

// LayoutFor describes the traced resources of a run with these options and
// scheme, for the Chrome exporter.
func LayoutFor(opt Options, scheme Scheme) (trace.Layout, error) {
	info, ok := scheme.Info()
	if !ok {
		return trace.Layout{}, &UnknownSchemeError{Scheme: scheme}
	}
	cfg, err := ConfigFor(opt, scheme)
	if err != nil {
		return trace.Layout{}, err
	}
	lay := trace.Layout{
		DRAMBanks:  cfg.DRAM.Banks,
		L1MSHRs:    cfg.L1.MSHRs,
		L2MSHRs:    cfg.L2.MSHRs,
		TLBWalkers: cfg.TLB.Walks,
	}
	if info.Machine.IsProgrammable() {
		lay.PPUs = cfg.Prefetcher.NumPPUs
	}
	return lay, nil
}

// hookStream runs a workload callback (e.g. Graph500's parent reset)
// against its machine when its first micro-op is pulled, then delegates.
// Keeping the callback and machine as separate fields (rather than a bound
// closure) is what lets a fork re-target the hook at the cloned machine.
type hookStream struct {
	before func(*system.Machine)
	m      *system.Machine
	fired  bool
	inner  cpu.Stream
}

func (h *hookStream) Next() (cpu.MicroOp, bool) {
	if !h.fired {
		h.fired = true
		h.before(h.m)
	}
	return h.inner.Next()
}

// seq concatenates the per-invocation micro-op streams of one run (several
// kernels sharing one dynamic-op counter) and implements
// system.ForkableStream so a machine paused mid-run can be forked. It
// advances by index, keeping every stream reachable for cloning and for the
// post-run oracle check.
type seq struct {
	all []cpu.Stream
	pos int
}

func (s *seq) Next() (cpu.MicroOp, bool) {
	for s.pos < len(s.all) {
		if op, ok := s.all[s.pos].Next(); ok {
			return op, true
		}
		s.pos++
	}
	return cpu.MicroOp{}, false
}

// ForkStream implements system.ForkableStream: every stream is cloned at its
// exact position, re-bound to the fork's backing store, config sink and
// micro-op counter.
func (s *seq) ForkStream(f *system.Machine) (cpu.Stream, error) {
	c := &seq{all: make([]cpu.Stream, len(s.all)), pos: s.pos}
	for i, st := range s.all {
		cs, err := forkStream(st, f)
		if err != nil {
			return nil, err
		}
		c.all[i] = cs
	}
	return c, nil
}

func forkStream(st cpu.Stream, f *system.Machine) (cpu.Stream, error) {
	switch st := st.(type) {
	case *ir.Interp:
		return st.Clone(f.Backing, f, f.Counter), nil
	case *hookStream:
		inner, err := forkStream(st.inner, f)
		if err != nil {
			return nil, err
		}
		return &hookStream{before: st.before, m: f, fired: st.fired, inner: inner}, nil
	case system.StreamCloner:
		// Leaf streams that open a second cursor over their source — a
		// trace replayer re-opening its file.
		return st.CloneStream(f)
	}
	return nil, fmt.Errorf("harness: stream %T does not support forking", st)
}

// lastInterp returns the final invocation's interpreter, whose return value
// the oracle check consumes.
func (s *seq) lastInterp() *ir.Interp {
	if len(s.all) == 0 {
		return nil
	}
	switch st := s.all[len(s.all)-1].(type) {
	case *ir.Interp:
		return st
	case *hookStream:
		if it, ok := st.inner.(*ir.Interp); ok {
			return it
		}
	}
	return nil
}

// errStream is a stream that latches its own error state (decode failures
// cannot surface through Next); tracein.Replayer implements it.
type errStream interface{ Err() error }

// streamErr returns the first latched error of any member stream.
func (s *seq) streamErr() error {
	for _, st := range s.all {
		if h, ok := st.(*hookStream); ok {
			st = h.inner
		}
		if es, ok := st.(errStream); ok {
			if err := es.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Speedup returns base cycles / this run's cycles.
func Speedup(base, run Result) float64 {
	return float64(base.Cycles) / float64(run.Cycles)
}

func mustClock(mhz int) sim.Clock { return sim.ClockFromMHz(mhz) }
