// Package harness runs benchmarks under the paper's comparison schemes and
// regenerates every table and figure of the evaluation (§7). It is the glue
// between workloads, the compiler passes and the simulated machine.
package harness

import (
	"fmt"

	"eventpf/internal/compiler"
	"eventpf/internal/cpu"
	"eventpf/internal/ir"
	"eventpf/internal/prefetch"
	"eventpf/internal/sim"
	"eventpf/internal/system"
	"eventpf/internal/trace"
	"eventpf/internal/workloads"
)

// Scheme is one bar of Figure 7 (plus the Figure 11 blocked variant).
type Scheme int

// The paper's comparison schemes.
const (
	NoPF Scheme = iota
	Stride
	GHBRegular
	GHBLarge
	Software
	Pragma
	Converted
	Manual
	ManualBlocked // Figure 11: events replaced by blocking loads
)

// Schemes lists the Figure 7 bars in presentation order.
var Schemes = []Scheme{Stride, GHBRegular, GHBLarge, Software, Pragma, Converted, Manual}

func (s Scheme) String() string {
	switch s {
	case NoPF:
		return "no-pf"
	case Stride:
		return "stride"
	case GHBRegular:
		return "ghb-regular"
	case GHBLarge:
		return "ghb-large"
	case Software:
		return "software"
	case Pragma:
		return "pragma"
	case Converted:
		return "converted"
	case Manual:
		return "manual"
	case ManualBlocked:
		return "manual-blocked"
	}
	return "unknown"
}

// MarshalText makes schemes render as their names in JSON output.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// ErrUnsupported reports a benchmark/scheme pair that does not exist, such
// as software prefetching for PageRank (§7.1).
var ErrUnsupported = fmt.Errorf("harness: scheme not applicable to this benchmark")

// Options adjusts a run away from the Table 1 defaults.
type Options struct {
	// Scale multiplies the benchmark's default reduced input size;
	// 0 means 1.0.
	Scale float64
	// PPUs and PPUMHz override the prefetcher sizing (Figure 9); 0 keeps
	// the default 12 units at 1000 MHz.
	PPUs   int
	PPUMHz int
	// Config, if non-nil, replaces the whole machine configuration.
	Config *system.Config
	// TraceLast, if positive, attaches a ring tracer of that size to the
	// programmable prefetcher and returns it in Result.Trace.
	TraceLast int
	// TraceSink, if non-nil, is attached to the machine-wide trace bus and
	// receives typed events from every component (core, caches, TLB, DRAM,
	// prefetcher). The sink runs on the simulation goroutine: pass a
	// per-run sink, or wrap a shared one in trace.Locked before letting a
	// parallel Suite's runs write to it concurrently.
	TraceSink trace.Sink
	// Metrics, if non-nil, receives the machine's counters and
	// queue-occupancy histograms. Same confinement rule as TraceSink.
	Metrics *trace.Registry
	// Parallel bounds how many simulations a Suite runs concurrently;
	// 0 means GOMAXPROCS. Run itself is always a single simulation on the
	// calling goroutine — each Machine stays confined to one goroutine.
	Parallel int
}

// Result is one benchmark × scheme measurement.
type Result struct {
	Benchmark string
	Scheme    Scheme
	system.Result
	// Pass reports compiler-pass statistics for Pragma/Converted runs.
	Pass *compiler.Result
	// Trace holds the retained prefetcher events when Options.TraceLast > 0.
	Trace *prefetch.RingTracer
}

// Run executes one benchmark under one scheme and validates the result
// against the benchmark's oracle.
func Run(b *workloads.Benchmark, scheme Scheme, opt Options) (Result, error) {
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	cfg := ConfigFor(opt, scheme)

	m := system.New(cfg, machineScheme(scheme))
	inst := b.Build(m, opt.Scale)

	var tracer *prefetch.RingTracer
	if opt.TraceLast > 0 && m.PF != nil {
		tracer = prefetch.NewRingTracer(opt.TraceLast)
		m.PF.Tracer = tracer
	}
	if opt.TraceSink != nil {
		m.AttachTrace(trace.NewBus(opt.TraceSink))
	}
	if opt.Metrics != nil {
		m.AttachMetrics(opt.Metrics)
	}

	fn := inst.BuildFn(variantFor(scheme))
	if fn == nil {
		return Result{}, ErrUnsupported
	}
	if len(inst.Runs) == 0 {
		// Without this guard the post-run oracle check would dereference a
		// nil final interpreter.
		return Result{}, fmt.Errorf("harness: %s: benchmark instance has no runs", b.Name)
	}

	res := Result{Benchmark: b.Name, Scheme: scheme}
	switch scheme {
	case Converted:
		pass, err := compiler.ConvertSoftwarePrefetches(fn, compiler.NewAlloc())
		if err != nil {
			return res, fmt.Errorf("%s: conversion pass: %w", b.Name, err)
		}
		for id, prog := range pass.Kernels {
			m.RegisterKernel(id, prog)
		}
		res.Pass = pass
	case Pragma:
		pass, err := compiler.GeneratePragmaEvents(fn, compiler.NewAlloc())
		if err != nil {
			return res, fmt.Errorf("%s: pragma pass: %w", b.Name, err)
		}
		for id, prog := range pass.Kernels {
			m.RegisterKernel(id, prog)
		}
		res.Pass = pass
	case Manual, ManualBlocked:
		inst.Manual(m)
	}

	var streams []cpu.Stream
	var last *ir.Interp
	for _, run := range inst.Runs {
		run := run
		it := m.NewInterp(fn, run.Args...)
		last = it
		if run.Before != nil {
			streams = append(streams, &hookStream{hook: func() { run.Before(m) }, inner: it})
		} else {
			streams = append(streams, it)
		}
	}
	res.Result = m.Run(ir.Seq(streams...))
	res.Trace = tracer

	ret, hasRet := last.Result()
	if err := inst.Check(m, ret, hasRet); err != nil {
		return res, fmt.Errorf("%s under %s: oracle mismatch: %w", b.Name, scheme, err)
	}
	return res, nil
}

// ConfigFor resolves the machine configuration a Run with these options and
// scheme would use (exported so CLIs can derive the trace Layout that
// matches the run).
func ConfigFor(opt Options, scheme Scheme) system.Config {
	cfg := system.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	if opt.PPUs > 0 {
		cfg.Prefetcher.NumPPUs = opt.PPUs
	}
	if opt.PPUMHz > 0 {
		cfg.Prefetcher.PPUClock = mustClock(opt.PPUMHz)
	}
	if scheme == ManualBlocked {
		cfg.Prefetcher.Blocked = true
	}
	return cfg
}

// LayoutFor describes the traced resources of a run with these options and
// scheme, for the Chrome exporter.
func LayoutFor(opt Options, scheme Scheme) trace.Layout {
	cfg := ConfigFor(opt, scheme)
	lay := trace.Layout{
		DRAMBanks:  cfg.DRAM.Banks,
		L1MSHRs:    cfg.L1.MSHRs,
		L2MSHRs:    cfg.L2.MSHRs,
		TLBWalkers: cfg.TLB.Walks,
	}
	if machineScheme(scheme) == system.Programmable {
		lay.PPUs = cfg.Prefetcher.NumPPUs
	}
	return lay
}

func machineScheme(s Scheme) system.Scheme {
	switch s {
	case Stride:
		return system.StridePF
	case GHBRegular:
		return system.GHBRegular
	case GHBLarge:
		return system.GHBLarge
	case Pragma, Converted, Manual, ManualBlocked:
		return system.Programmable
	default: // NoPF, Software
		return system.NoPF
	}
}

func variantFor(s Scheme) workloads.Variant {
	switch s {
	case Software, Converted:
		return workloads.SWPf
	case Pragma:
		return workloads.Pragma
	default:
		return workloads.Plain
	}
}

// hookStream runs a functional callback (e.g. Graph500's parent reset)
// when its first micro-op is pulled, then delegates.
type hookStream struct {
	hook  func()
	fired bool
	inner cpu.Stream
}

func (h *hookStream) Next() (cpu.MicroOp, bool) {
	if !h.fired {
		h.fired = true
		h.hook()
	}
	return h.inner.Next()
}

// Speedup returns base cycles / this run's cycles.
func Speedup(base, run Result) float64 {
	return float64(base.Cycles) / float64(run.Cycles)
}

func mustClock(mhz int) sim.Clock { return sim.ClockFromMHz(mhz) }
