package harness

import (
	"errors"
	"testing"

	"eventpf/internal/workloads"
)

// testScale keeps unit-test runs small; the directional assertions use a
// slightly larger scale where needed.
const testScale = 0.04

// TestEveryBenchmarkEverySchemeComputesCorrectly is the central integration
// test: all 8 benchmarks under all schemes (plus the blocked mode), each
// validated against its pure-Go oracle. Prefetching must never change
// answers.
func TestEveryBenchmarkEverySchemeComputesCorrectly(t *testing.T) {
	all := append([]Scheme{NoPF}, Schemes...)
	all = append(all, ManualBlocked)
	for _, b := range workloads.All {
		for _, s := range all {
			t.Run(b.Name+"/"+s.String(), func(t *testing.T) {
				_, err := Run(b, s, Options{Scale: testScale})
				if errors.Is(err, ErrUnsupported) {
					if b.Name == "PageRank" && (s == Software || s == Converted) {
						return // the paper's missing bars
					}
					t.Fatalf("unexpectedly unsupported")
				}
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestPageRankHasNoSoftwareVariant(t *testing.T) {
	_, err := Run(workloads.PageRank, Software, Options{Scale: testScale})
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("PageRank software prefetch should be unsupported, got %v", err)
	}
}

func TestManualBeatsNoPFEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("directional assertions need a non-trivial scale")
	}
	for _, b := range workloads.All {
		base, err := Run(b, NoPF, Options{Scale: 0.12})
		if err != nil {
			t.Fatalf("%s/nopf: %v", b.Name, err)
		}
		man, err := Run(b, Manual, Options{Scale: 0.12})
		if err != nil {
			t.Fatalf("%s/manual: %v", b.Name, err)
		}
		sp := Speedup(base, man)
		if sp < 1.1 {
			t.Errorf("%s: manual speedup %.2fx, want ≥ 1.1x (base %d, manual %d cycles)",
				b.Name, sp, base.Cycles, man.Cycles)
		} else {
			t.Logf("%s: manual speedup %.2fx", b.Name, sp)
		}
	}
}

func TestBlockedSlowerThanEventsOnChainedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("directional assertion")
	}
	ev, err := Run(workloads.HJ8, Manual, Options{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Run(workloads.HJ8, ManualBlocked, Options{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Cycles <= ev.Cycles {
		t.Errorf("HJ-8 blocked (%d cycles) not slower than event-triggered (%d)",
			bl.Cycles, ev.Cycles)
	}
}

func TestCompilerPassesConvertWhereExpected(t *testing.T) {
	cases := []struct {
		b          *workloads.Benchmark
		scheme     Scheme
		minKernels int
	}{
		{workloads.IntSort, Converted, 2},
		{workloads.HJ2, Converted, 2},
		{workloads.HJ8, Converted, 3},
		{workloads.ConjGrad, Converted, 2},
		{workloads.RandAcc, Converted, 2},
		{workloads.IntSort, Pragma, 2},
		{workloads.PageRank, Pragma, 2},
		{workloads.ConjGrad, Pragma, 2},
	}
	for _, tc := range cases {
		res, err := Run(tc.b, tc.scheme, Options{Scale: testScale})
		if err != nil {
			t.Errorf("%s/%s: %v", tc.b.Name, tc.scheme, err)
			continue
		}
		if res.Pass == nil || len(res.Pass.Kernels) < tc.minKernels {
			got := 0
			if res.Pass != nil {
				got = len(res.Pass.Kernels)
			}
			t.Errorf("%s/%s: %d kernels generated, want ≥ %d",
				tc.b.Name, tc.scheme, got, tc.minKernels)
		}
	}
}

func TestG500ListConversionLimited(t *testing.T) {
	// The list walk cannot be expressed as events by either pass; only the
	// queue→head chain converts.
	res, err := Run(workloads.G500List, Converted, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass.Converted == 0 {
		t.Error("queue→head chain should convert")
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range []Scheme{Manual, GHBRegular, GHBLarge, Stride, Converted} {
		a, err := Run(workloads.HJ2, s, Options{Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(workloads.HJ2, s, Options{Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.PF.KernelRuns != b.PF.KernelRuns ||
			a.DRAM.Reads != b.DRAM.Reads {
			t.Errorf("%s: two identical runs differ: %d/%d cycles, %d/%d dram reads",
				s, a.Cycles, b.Cycles, a.DRAM.Reads, b.DRAM.Reads)
		}
	}
}

func TestPPUOverridesApply(t *testing.T) {
	res, err := Run(workloads.IntSort, Manual, Options{Scale: testScale, PPUs: 3, PPUMHz: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activity) != 3 {
		t.Errorf("activity factors for %d PPUs, want 3", len(res.Activity))
	}
}
