package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eventpf/internal/system"
	"eventpf/internal/tracein"
	"eventpf/internal/workloads"
)

// timeParallelPairs are the golden pairs the sliced engine is held to: an
// irregular manual-prefetch run (full event-triggered machinery), a
// baseline-issuer run, and a multi-invocation benchmark with per-run hooks
// (Graph500's parent reset), which exercises the hookStream re-fire path
// inside every slice's functional prefix.
var timeParallelPairs = []struct {
	bench  string
	scheme Scheme
}{
	{"HJ-2", Manual},
	{"RandAcc", Stride},
	{"G500-CSR", ManualBlocked},
}

// TestTimeParallelGoldenPairs pins the sliced engine's three contracts on
// the golden pairs: determinism (two -slices 4 runs are byte-identical,
// whatever the goroutine schedule — run under -race in CI), functional
// exactness (every dynamic op is detail-simulated in exactly one slice, so
// stitched op counts match the serial run and the oracle check passes), and
// accuracy (stitched CPI within 2% of serial).
func TestTimeParallelGoldenPairs(t *testing.T) {
	for _, tp := range timeParallelPairs {
		tp := tp
		t.Run(tp.bench+"/"+tp.scheme.String(), func(t *testing.T) {
			t.Parallel()
			b, err := workloads.ByName(tp.bench)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Run(b, tp.scheme, Options{Scale: goldenScale})
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Scale: goldenScale, Slices: 4}
			first, err := Run(b, tp.scheme, opt)
			if err != nil {
				t.Fatalf("sliced run: %v", err)
			}
			second, err := Run(b, tp.scheme, opt)
			if err != nil {
				t.Fatalf("second sliced run: %v", err)
			}
			if !bytes.Equal(encode(t, first), encode(t, second)) {
				t.Errorf("two sliced runs differ: %d vs %d cycles", first.Cycles, second.Cycles)
			}

			st := first.TimeParallel
			if st == nil {
				t.Fatal("sliced run did not report TimeParallel stats")
			}
			if st.Slices != 4 {
				t.Errorf("effective slices = %d, want 4", st.Slices)
			}
			var detail int64
			for _, d := range st.DetailOps {
				detail += d
			}
			if detail != serial.Core.Ops || first.Core.Ops != serial.Core.Ops {
				t.Errorf("sliced runs detailed %d ops (stitched Core.Ops %d), serial %d — slicing dropped or duplicated ops",
					detail, first.Core.Ops, serial.Core.Ops)
			}

			relErr := float64(first.Cycles-serial.Cycles) / float64(serial.Cycles)
			if relErr < 0 {
				relErr = -relErr
			}
			t.Logf("serial %d cycles, sliced %d (%.2f%% error; warm %v, detail %v)",
				serial.Cycles, first.Cycles, 100*relErr, st.WarmOps, st.DetailOps)
			if relErr > 0.02 {
				t.Errorf("sliced CPI off by %.2f%% (serial %d, sliced %d), want <= 2%%",
					100*relErr, serial.Cycles, first.Cycles)
			}
		})
	}
}

// TestTimeParallelSerialOptionByteStable pins the opt-out: Slices of 0 and 1
// take the exact serial engine and their encodings carry no TimeParallel
// block — byte-for-byte what the run produced before slicing existed (the
// golden files assert the same against the committed history).
func TestTimeParallelSerialOptionByteStable(t *testing.T) {
	b, err := workloads.ByName("HJ-2")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(b, Manual, Options{Scale: goldenScale})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		res, err := Run(b, Manual, Options{Scale: goldenScale, Slices: k})
		if err != nil {
			t.Fatalf("Slices=%d: %v", k, err)
		}
		if !bytes.Equal(encode(t, plain), encode(t, res)) {
			t.Errorf("Slices=%d result differs from plain serial run", k)
		}
	}
}

// TestTimeParallelShortProgramFallsBack asks for far more slices than
// MinSliceOps permits; the clamp must force serial execution with a result
// byte-identical to a plain run (and no TimeParallel block).
func TestTimeParallelShortProgramFallsBack(t *testing.T) {
	b, err := workloads.ByName("RandAcc")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(b, Stride, Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, Stride, Options{Scale: 0.01, Slices: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeParallel != nil && res.TimeParallel.Slices >= 4096 {
		t.Errorf("clamp did not bite: %d effective slices over %d ops",
			res.TimeParallel.Slices, plain.Core.Ops)
	}
	if plain.Core.Ops < 2*4096 {
		// Program genuinely too short to slice at all: must be exactly serial.
		if !bytes.Equal(encode(t, plain), encode(t, res)) {
			t.Error("forced-serial fallback differs from plain run")
		}
	}
}

// TestTimeParallelTraceReplay slices a replayed trace: the replayer must
// clone itself (a second decode cursor per slice), each slice fast-forwards
// over decoded records, results are deterministic, and CPI stays within the
// 2% band of a serial replay. A truncated trace must still fail the run —
// the decode-state oracle has to catch the final slice's short stream.
func TestTimeParallelTraceReplay(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.05)
	serial, err := Run(tracein.Bench(path), GHBRegular, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(tracein.Bench(path), GHBRegular, Options{Slices: 4})
	if err != nil {
		t.Fatalf("sliced replay: %v", err)
	}
	second, err := Run(tracein.Bench(path), GHBRegular, Options{Slices: 4})
	if err != nil {
		t.Fatalf("second sliced replay: %v", err)
	}
	if !bytes.Equal(encode(t, first), encode(t, second)) {
		t.Error("two sliced replays differ")
	}
	if first.TimeParallel == nil {
		t.Fatal("sliced replay did not slice (trace too short for MinSliceOps?)")
	}
	if first.Core.Ops != serial.Core.Ops {
		t.Errorf("sliced replay detailed %d ops, serial %d", first.Core.Ops, serial.Core.Ops)
	}
	relErr := float64(first.Cycles-serial.Cycles) / float64(serial.Cycles)
	if relErr < 0 {
		relErr = -relErr
	}
	t.Logf("serial replay %d cycles, sliced %d (%.2f%% error)", serial.Cycles, first.Cycles, 100*relErr)
	if relErr > 0.02 {
		t.Errorf("sliced replay CPI off by %.2f%%, want <= 2%%", 100*relErr)
	}

	// Corrupt tail: the damage lands in the final slice's detail window, and
	// the post-run decode check must reject the run.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.ppft")
	if err := os.WriteFile(cut, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(tracein.Bench(cut), GHBRegular, Options{Slices: 4})
	var fe *tracein.FormatError
	if !errors.As(err, &fe) {
		t.Errorf("sliced truncated replay error = %v, want *tracein.FormatError", err)
	}
}

// TestSampledTraceReplay covers RunSampled over a decoded stream — sampling
// a -trace-in instance. Fast-forward must execute the replayed ops
// functionally (all trace records consumed, decode clean through the
// trailer) and the CPI estimate must stay in the same loose band the
// IR-driven sampling test allows.
func TestSampledTraceReplay(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.05)
	full, err := Run(tracein.Bench(path), Stride, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := system.SampleConfig{WarmupOps: 1_000, MeasureOps: 4_000, FFOps: 15_000}
	sampled, err := Run(tracein.Bench(path), Stride, Options{Sample: &sc})
	if err != nil {
		t.Fatalf("sampled replay: %v", err)
	}
	st := sampled.Sampled
	if st == nil {
		t.Fatal("sampled replay did not report sampling stats")
	}
	if st.TotalOps != full.Core.Ops {
		t.Errorf("sampled replay consumed %d ops, full replay %d — fast-forward lost trace records",
			st.TotalOps, full.Core.Ops)
	}
	if st.DetailedOps >= st.TotalOps*3/4 {
		t.Errorf("sampling detailed %d of %d ops — not actually fast-forwarding", st.DetailedOps, st.TotalOps)
	}
	relErr := float64(st.EstimatedCycles-full.Cycles) / float64(full.Cycles)
	if relErr < 0 {
		relErr = -relErr
	}
	t.Logf("full replay %d cycles, estimated %d (%.1f%% error, %d/%d ops detailed)",
		full.Cycles, st.EstimatedCycles, 100*relErr, st.DetailedOps, st.TotalOps)
	if relErr > 0.35 {
		t.Errorf("sampled replay CPI estimate off by %.1f%%", 100*relErr)
	}
}
