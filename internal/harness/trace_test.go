package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"eventpf/internal/tracein"
	"eventpf/internal/workloads"
)

// captureTrace runs b at the given scale under no-pf with a capture sink
// attached and returns the path of the written trace.
func captureTrace(t *testing.T, b *workloads.Benchmark, scale float64) string {
	t.Helper()
	var buf bytes.Buffer
	sink := tracein.NewWriter(&buf, tracein.Meta{Bench: b.Name, Scale: scale, Tool: "test"})
	if _, err := Run(b, NoPF, Options{Scale: scale, OpSink: sink}); err != nil {
		t.Fatalf("capture run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close capture: %v", err)
	}
	path := filepath.Join(t.TempDir(), "capture.ppft")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCaptureReplayByteIdentity pins the tentpole contract: a no-pf capture
// of a plain-variant run replays through the timed pipeline with results
// bit-identical to simulating the benchmark directly, for every
// non-programmable scheme. Two bench × scheme pairs keep the run time down
// while covering a stride-friendly and an irregular stream.
func TestCaptureReplayByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		bench  *workloads.Benchmark
		scheme Scheme
		scale  float64
	}{
		{workloads.RandAcc, Stride, 0.02},
		{workloads.HJ2, RPT, 0.02},
	} {
		path := captureTrace(t, tc.bench, tc.scale)
		direct, err := Run(tc.bench, tc.scheme, Options{Scale: tc.scale})
		if err != nil {
			t.Fatalf("%s/%s direct: %v", tc.bench.Name, tc.scheme, err)
		}
		replay, err := Run(tracein.Bench(path), tc.scheme, Options{})
		if err != nil {
			t.Fatalf("%s/%s replay: %v", tc.bench.Name, tc.scheme, err)
		}
		if !reflect.DeepEqual(direct.Result, replay.Result) {
			t.Errorf("%s/%s: replayed result differs from direct run:\ndirect %+v\nreplay %+v",
				tc.bench.Name, tc.scheme, direct.Result, replay.Result)
		}
	}
}

// TestReplayDeterminism replays one trace twice and demands identical
// results — the property the CI trace-smoke job checks end to end.
func TestReplayDeterminism(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.02)
	b := tracein.Bench(path)
	a, err := Run(b, GHBRegular, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(tracein.Bench(path), GHBRegular, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Result, c.Result) {
		t.Errorf("two replays differ:\n%+v\n%+v", a.Result, c.Result)
	}
}

// TestTraceSchemeApplicability pins which schemes can consume a replayed
// trace: everything that neither rewrites IR nor depends on hand-written
// kernels runs; variant, pass and manual-only schemes report ErrUnsupported
// (skipped, not failed). Adaptive must run — its programmable arm simply
// stays unconfigured.
func TestTraceSchemeApplicability(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.02)
	mustRun := []Scheme{NoPF, Stride, GHBRegular, RPT, GHBDelta, TSKID, Adaptive}
	for _, s := range mustRun {
		if _, err := Run(tracein.Bench(path), s, Options{}); err != nil {
			t.Errorf("replay under %s: %v", s, err)
		}
	}
	for _, s := range []Scheme{Software, Pragma, Converted, Manual, ManualBlocked} {
		if _, err := Run(tracein.Bench(path), s, Options{}); !errors.Is(err, ErrUnsupported) {
			t.Errorf("replay under %s: err = %v, want ErrUnsupported", s, err)
		}
	}
}

// TestReplayRejectsCorruptTrace checks the replay oracle: a truncated trace
// must fail the run (via the decode-state check), not silently time a short
// program.
func TestReplayRejectsCorruptTrace(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.02)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.ppft")
	if err := os.WriteFile(cut, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(tracein.Bench(cut), NoPF, Options{})
	var fe *tracein.FormatError
	if !errors.As(err, &fe) {
		t.Errorf("truncated replay error = %v, want *tracein.FormatError", err)
	}
}

func TestJobSpecTrace(t *testing.T) {
	path := captureTrace(t, workloads.RandAcc, 0.02)
	job, err := JobSpec{Trace: path, Scheme: "stride"}.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if job.Bench.Name != "trace:"+path {
		t.Errorf("resolved bench = %q", job.Bench.Name)
	}
	if !strings.Contains(job.Canonical(), "trace:"+path) {
		t.Errorf("Canonical %q does not carry the trace path", job.Canonical())
	}
	if res, err := Run(job.Bench, job.Scheme, Options{}); err != nil || res.Cycles == 0 {
		t.Errorf("resolved trace job failed: %v", err)
	}
	if _, err := (JobSpec{Bench: "RandAcc", Trace: path, Scheme: "stride"}).Resolve(); err == nil {
		t.Error("Resolve accepted both bench and trace")
	}
}
