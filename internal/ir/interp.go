package ir

import (
	"fmt"

	"eventpf/internal/cpu"
	"eventpf/internal/mem"
)

// ConfigSink receives the effects of Cfg instructions when they dispatch on
// the simulated core; the system package implements it over the
// programmable prefetcher.
type ConfigSink interface {
	Configure(info CfgInfo, args []uint64)
}

// NopSink discards configuration (used when running without the
// programmable prefetcher; the instructions still cost pipeline slots).
type NopSink struct{}

// Configure implements ConfigSink by doing nothing.
func (NopSink) Configure(CfgInfo, []uint64) {}

// Interp executes a function against the functional backing store while
// producing the corresponding micro-op stream for the core timing model:
// one micro-op per dynamic arithmetic, memory, branch or configuration
// instruction, with data dependences threaded through SSA values (and
// through phis, so loop-carried chains such as linked-list walks serialise
// exactly as they would in hardware).
type Interp struct {
	fn    *Fn
	bk    *mem.Backing
	sink  ConfigSink
	args  []uint64
	env   []uint64
	envOp []int64

	block *Block
	idx   int

	counter *int64 // shared dynamic micro-op numbering across a core run

	steps    int64
	maxSteps int64
	done     bool
	ret      uint64
	hasRet   bool
}

// NewInterp prepares an execution of fn. counter is the shared dynamic
// micro-op counter for the core run (so several interpreters can be
// sequenced into one stream); pass new(int64) for a standalone run.
func NewInterp(fn *Fn, bk *mem.Backing, sink ConfigSink, counter *int64, args ...uint64) *Interp {
	if len(args) != fn.NArgs {
		panic(fmt.Sprintf("ir: %s expects %d args, got %d", fn.Name, fn.NArgs, len(args)))
	}
	if sink == nil {
		sink = NopSink{}
	}
	it := &Interp{
		fn:       fn,
		bk:       bk,
		sink:     sink,
		args:     args,
		env:      make([]uint64, len(fn.Instrs)),
		envOp:    make([]int64, len(fn.Instrs)),
		counter:  counter,
		maxSteps: 1 << 40,
	}
	for i := range it.envOp {
		it.envOp[i] = cpu.NoDep
	}
	it.block = fn.Block(fn.Entry)
	return it
}

// Clone returns an interpreter positioned at exactly the same dynamic
// instruction as it, re-bound to a forked machine's backing store, config
// sink and shared micro-op counter. The function body is immutable and
// shared; the SSA environment and control position are deep-copied, so the
// clone and the original advance independently.
func (it *Interp) Clone(bk *mem.Backing, sink ConfigSink, counter *int64) *Interp {
	if sink == nil {
		sink = NopSink{}
	}
	c := &Interp{
		fn:       it.fn,
		bk:       bk,
		sink:     sink,
		args:     it.args,
		env:      append([]uint64(nil), it.env...),
		envOp:    append([]int64(nil), it.envOp...),
		idx:      it.idx,
		counter:  counter,
		steps:    it.steps,
		maxSteps: it.maxSteps,
		done:     it.done,
		ret:      it.ret,
		hasRet:   it.hasRet,
	}
	if it.block != nil {
		c.block = c.fn.Block(it.block.ID)
	}
	return c
}

// SetMaxSteps bounds dynamic instruction count (a runaway-loop guard for
// tests); exceeding it panics.
func (it *Interp) SetMaxSteps(n int64) { it.maxSteps = n }

// Done reports whether execution has returned.
func (it *Interp) Done() bool { return it.done }

// Result returns the function's return value, valid once Done.
func (it *Interp) Result() (uint64, bool) { return it.ret, it.hasRet }

// Ops reports how many micro-ops this interpreter has emitted so far.
func (it *Interp) Ops() int64 { return *it.counter }

func (it *Interp) enterBlock(from BlockID, to BlockID) {
	b := it.fn.Block(to)
	// Evaluate phis in parallel: read all incomings before writing any.
	var vals []uint64
	var ops []int64
	n := 0
	for _, v := range b.Instrs {
		in := it.fn.Instr(v)
		if in.Op != Phi {
			break
		}
		pi := -1
		for i, p := range b.Preds {
			if p == from {
				pi = i
				break
			}
		}
		if pi == -1 {
			panic(fmt.Sprintf("ir: %s: edge b%d→b%d has no pred slot", it.fn.Name, from, to))
		}
		a := in.Args[pi]
		vals = append(vals, it.env[a])
		ops = append(ops, it.envOp[a])
		n++
	}
	for i := 0; i < n; i++ {
		v := b.Instrs[i]
		it.env[v] = vals[i]
		it.envOp[v] = ops[i]
	}
	it.block = b
	it.idx = n
}

func (it *Interp) newOp() int64 {
	id := *it.counter
	*it.counter++
	return id
}

// Next implements cpu.Stream.
func (it *Interp) Next() (cpu.MicroOp, bool) {
	for !it.done {
		it.steps++
		if it.steps > it.maxSteps {
			panic(fmt.Sprintf("ir: %s exceeded %d steps", it.fn.Name, it.maxSteps))
		}
		v := it.block.Instrs[it.idx]
		in := it.fn.Instr(v)

		switch in.Op {
		case Nop:
			it.idx++

		case Const:
			it.env[v] = uint64(in.Imm)
			it.envOp[v] = cpu.NoDep
			it.idx++

		case Arg:
			it.env[v] = it.args[in.Imm]
			it.envOp[v] = cpu.NoDep
			it.idx++

		case Phi:
			panic("ir: phi encountered mid-block (verifier should prevent this)")

		case Load:
			addr := it.env[in.A]
			it.env[v] = it.bk.Read64(addr)
			id := it.newOp()
			it.envOp[v] = id
			dep := it.envOp[in.A]
			it.idx++
			return cpu.MicroOp{Kind: cpu.OpLoad, PC: int(v), Addr: addr,
				Deps: [2]int64{dep, cpu.NoDep}}, true

		case Store:
			addr := it.env[in.A]
			it.bk.Write64(addr, it.env[in.B])
			it.newOp()
			it.idx++
			return cpu.MicroOp{Kind: cpu.OpStore, PC: int(v), Addr: addr,
				Deps: [2]int64{it.envOp[in.A], it.envOp[in.B]}}, true

		case SWPf:
			addr := it.env[in.A]
			it.newOp()
			it.idx++
			return cpu.MicroOp{Kind: cpu.OpSWPf, PC: int(v), Addr: addr,
				Deps: [2]int64{it.envOp[in.A], cpu.NoDep}}, true

		case Cfg:
			args := make([]uint64, len(in.Args))
			var dep int64 = cpu.NoDep
			for i, a := range in.Args {
				args[i] = it.env[a]
				if it.envOp[a] != cpu.NoDep {
					dep = it.envOp[a]
				}
			}
			info := *in.Info
			sink := it.sink
			it.newOp()
			it.idx++
			return cpu.MicroOp{Kind: cpu.OpConfig, PC: int(v),
				Deps: [2]int64{dep, cpu.NoDep},
				Do:   func() { sink.Configure(info, args) }}, true

		case Br:
			it.enterBlock(it.block.ID, in.Blocks[0])

		case CondBr:
			cond := it.env[in.A]
			taken := cond != 0
			target := in.Blocks[1]
			if taken {
				target = in.Blocks[0]
			}
			dep := it.envOp[in.A]
			from := it.block.ID
			it.newOp()
			it.enterBlock(from, target)
			return cpu.MicroOp{Kind: cpu.OpBranch, PC: int(v), Taken: taken,
				Deps: [2]int64{dep, cpu.NoDep}}, true

		case Ret:
			if in.A != NoValue {
				it.ret = it.env[in.A]
				it.hasRet = true
			}
			it.done = true

		default: // binary ops
			a, b := it.env[in.A], it.env[in.B]
			it.env[v] = evalBin(in.Op, a, b)
			id := it.newOp()
			it.envOp[v] = id
			kind := cpu.OpInt
			switch in.Op {
			case Mul:
				kind = cpu.OpMul
			case Div, Rem:
				kind = cpu.OpDiv
			}
			it.idx++
			return cpu.MicroOp{Kind: kind, PC: int(v),
				Deps: [2]int64{it.envOp[in.A], it.envOp[in.B]}}, true
		}
	}
	return cpu.MicroOp{}, false
}

func evalBin(op Op, a, b uint64) uint64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			panic("ir: division by zero")
		}
		return a / b
	case Rem:
		if b == 0 {
			panic("ir: remainder by zero")
		}
		return a % b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (b & 63)
	case Shr:
		return a >> (b & 63)
	case CmpEQ:
		return bool64(a == b)
	case CmpNE:
		return bool64(a != b)
	case CmpLT:
		return bool64(int64(a) < int64(b))
	case CmpLTU:
		return bool64(a < b)
	case CmpGE:
		return bool64(int64(a) >= int64(b))
	case CmpGEU:
		return bool64(a >= b)
	}
	panic("ir: evalBin on " + op.String())
}

func bool64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Seq concatenates micro-op streams: used to run several kernels (sharing
// one dynamic-op counter) back to back on the core.
func Seq(streams ...cpu.Stream) cpu.Stream { return &seqStream{rest: streams} }

type seqStream struct{ rest []cpu.Stream }

func (s *seqStream) Next() (cpu.MicroOp, bool) {
	for len(s.rest) > 0 {
		if op, ok := s.rest[0].Next(); ok {
			return op, true
		}
		s.rest = s.rest[1:]
	}
	return cpu.MicroOp{}, false
}
