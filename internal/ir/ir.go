// Package ir defines the small SSA intermediate representation in which the
// benchmarks' timed kernels are written, playing the role LLVM IR plays in
// the paper. The same IR form feeds three consumers: the interpreter (which
// executes the kernel functionally and drives the simulated core with one
// micro-op per dynamic instruction), the software-prefetch-to-event
// conversion pass (the paper's Algorithm 1), and the pragma event-generation
// pass (§6.4).
package ir

import "fmt"

// Op is an IR instruction opcode.
type Op int

// Instruction opcodes. All values are 64-bit integers; addresses are values.
const (
	Nop   Op = iota // removed instruction (left by DCE)
	Const           // materialise Imm
	Arg             // function argument Imm

	Add
	Sub
	Mul
	Div // unsigned
	Rem // unsigned
	And
	Or
	Xor
	Shl
	Shr // logical

	CmpEQ // 1 if A == B else 0
	CmpNE
	CmpLT  // signed
	CmpLTU // unsigned
	CmpGE  // signed
	CmpGEU // unsigned

	Phi // one incoming value per predecessor, in Preds order

	Load  // *A
	Store // *A = B
	SWPf  // software prefetch of address A
	Cfg   // prefetcher configuration (CfgInfo + evaluated Args)

	Br     // unconditional jump to Blocks[0]
	CondBr // if A != 0 jump to Blocks[0] else Blocks[1]
	Ret    // return A (or nothing if A == NoValue)
)

var opNames = map[Op]string{
	Nop: "nop", Const: "const", Arg: "arg",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLTU: "cmpltu",
	CmpGE: "cmpge", CmpGEU: "cmpgeu",
	Phi: "phi", Load: "load", Store: "store", SWPf: "swpf", Cfg: "cfg",
	Br: "br", CondBr: "condbr", Ret: "ret",
}

func (o Op) String() string { return opNames[o] }

// IsBinary reports whether the op takes two value operands A and B.
func (o Op) IsBinary() bool { return o >= Add && o <= CmpGEU }

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == Br || o == CondBr || o == Ret }

// Value identifies an instruction (and its SSA result) within a function.
type Value int

// NoValue marks an unused operand slot.
const NoValue Value = -1

// BlockID identifies a basic block within a function.
type BlockID int

// CfgKind selects which prefetcher-configuration action a Cfg instruction
// performs; the arguments are the instruction's Args, evaluated at run time.
type CfgKind int

// Configuration kinds.
const (
	// CfgBounds installs an address-filter range: Args = [lo, hi].
	CfgBounds CfgKind = iota
	// CfgGlobal writes a prefetcher global register: Args = [value].
	CfgGlobal
)

// NoKernelID marks an unset kernel reference in CfgInfo.
const NoKernelID = -1

// CfgInfo carries the compile-time constants of a Cfg instruction.
type CfgInfo struct {
	Kind       CfgKind
	Slot       int  // filter-table slot (CfgBounds)
	LoadKernel int  // kernel id run on demand-load observations, -1 none
	PFKernel   int  // kernel id run on prefetch-fill observations, -1 none
	EWMAGroup  int  // EWMA group this range participates in, -1 none
	Interval   bool // range is the EWMA interval source (e.g. the base array)
	TimedStart bool // loads here start a timed prefetch chain
	TimedEnd   bool // fills here end a timed prefetch chain
	GReg       int  // global register index (CfgGlobal)
}

// Instr is one IR instruction.
type Instr struct {
	Op     Op
	A, B   Value      // primary operands (NoValue if unused)
	Imm    int64      // Const value, Arg index
	Args   []Value    // Phi incoming values; Cfg arguments
	Blocks [2]BlockID // branch targets
	Info   *CfgInfo   // Cfg only
	Sym    string     // optional annotation: region name for memory ops
}

// Operands appends all value operands of the instruction to dst.
func (in *Instr) Operands(dst []Value) []Value {
	if in.A != NoValue {
		dst = append(dst, in.A)
	}
	if in.B != NoValue {
		dst = append(dst, in.B)
	}
	for _, a := range in.Args {
		if a != NoValue {
			dst = append(dst, a)
		}
	}
	return dst
}

// Block is a basic block: a run of instructions ending in a terminator.
type Block struct {
	ID     BlockID
	Instrs []Value
	Preds  []BlockID
	// Pragma marks a loop header annotated "#pragma prefetch" (§6.4).
	Pragma bool
	// Name is an optional label for printing.
	Name string
}

// Fn is a single-function IR unit. Functions cannot call other functions,
// mirroring the paper's restriction on PPU kernels and keeping benchmark
// kernels self-contained.
type Fn struct {
	Name   string
	NArgs  int
	Instrs []Instr
	Blocks []*Block
	Entry  BlockID
}

// Instr returns the instruction defining v.
func (f *Fn) Instr(v Value) *Instr { return &f.Instrs[v] }

// Block returns the block with the given id.
func (f *Fn) Block(id BlockID) *Block { return f.Blocks[id] }

// Succs returns the successor block ids of b.
func (f *Fn) Succs(b *Block) []BlockID {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := f.Instr(b.Instrs[len(b.Instrs)-1])
	switch last.Op {
	case Br:
		return []BlockID{last.Blocks[0]}
	case CondBr:
		return []BlockID{last.Blocks[0], last.Blocks[1]}
	}
	return nil
}

// defBlock returns the block containing each instruction.
func (f *Fn) defBlocks() []BlockID {
	db := make([]BlockID, len(f.Instrs))
	for i := range db {
		db[i] = -1
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			db[v] = b.ID
		}
	}
	return db
}

// Builder constructs a Fn incrementally. Typical use:
//
//	b := ir.NewBuilder("kernel", 2)
//	entry, loop, exit := b.NewBlock("entry"), b.NewBlock("loop"), b.NewBlock("exit")
//	b.SetBlock(entry)
//	...
//	fn := b.Finish()
type Builder struct {
	fn  *Fn
	cur *Block
}

// NewBuilder starts a function with the given name and argument count.
func NewBuilder(name string, nargs int) *Builder {
	return &Builder{fn: &Fn{Name: name, NArgs: nargs}}
}

// NewBlock adds an empty block.
func (b *Builder) NewBlock(name string) BlockID {
	blk := &Block{ID: BlockID(len(b.fn.Blocks)), Name: name}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk.ID
}

// SetBlock directs subsequent instructions into blk.
func (b *Builder) SetBlock(blk BlockID) { b.cur = b.fn.Blocks[blk] }

// Current returns the block under construction.
func (b *Builder) Current() BlockID { return b.cur.ID }

// MarkPragma annotates blk as a "#pragma prefetch" loop header.
func (b *Builder) MarkPragma(blk BlockID) { b.fn.Blocks[blk].Pragma = true }

func (b *Builder) emit(in Instr) Value {
	if b.cur == nil {
		panic("ir: no current block")
	}
	v := Value(len(b.fn.Instrs))
	b.fn.Instrs = append(b.fn.Instrs, in)
	b.cur.Instrs = append(b.cur.Instrs, v)
	return v
}

// Const materialises a constant.
func (b *Builder) Const(imm int64) Value {
	return b.emit(Instr{Op: Const, A: NoValue, B: NoValue, Imm: imm})
}

// Arg reads function argument i.
func (b *Builder) Arg(i int) Value {
	if i < 0 || i >= b.fn.NArgs {
		panic("ir: argument index out of range")
	}
	return b.emit(Instr{Op: Arg, A: NoValue, B: NoValue, Imm: int64(i)})
}

// Bin emits a binary operation.
func (b *Builder) Bin(op Op, x, y Value) Value {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return b.emit(Instr{Op: op, A: x, B: y})
}

// Convenience wrappers for the common binary ops.
func (b *Builder) Add(x, y Value) Value { return b.Bin(Add, x, y) }
func (b *Builder) Sub(x, y Value) Value { return b.Bin(Sub, x, y) }
func (b *Builder) Mul(x, y Value) Value { return b.Bin(Mul, x, y) }
func (b *Builder) And(x, y Value) Value { return b.Bin(And, x, y) }
func (b *Builder) Xor(x, y Value) Value { return b.Bin(Xor, x, y) }
func (b *Builder) Shl(x, y Value) Value { return b.Bin(Shl, x, y) }
func (b *Builder) Shr(x, y Value) Value { return b.Bin(Shr, x, y) }

// Phi emits a phi node; complete it with SetPhiArgs once the incoming values
// exist (loop-carried values are not known when the header is built).
func (b *Builder) Phi() Value {
	return b.emit(Instr{Op: Phi, A: NoValue, B: NoValue})
}

// SetPhiArgs sets the incoming values of phi, one per predecessor of its
// block, in predecessor order.
func (b *Builder) SetPhiArgs(phi Value, args ...Value) {
	in := b.fn.Instr(phi)
	if in.Op != Phi {
		panic("ir: SetPhiArgs on non-phi")
	}
	in.Args = append([]Value(nil), args...)
}

// Load emits *addr; sym optionally names the region for readability and for
// the compiler's bounds inference.
func (b *Builder) Load(addr Value, sym string) Value {
	return b.emit(Instr{Op: Load, A: addr, B: NoValue, Sym: sym})
}

// Store emits *addr = val.
func (b *Builder) Store(addr, val Value, sym string) Value {
	return b.emit(Instr{Op: Store, A: addr, B: val, Sym: sym})
}

// SWPf emits a software prefetch of addr.
func (b *Builder) SWPf(addr Value, sym string) Value {
	return b.emit(Instr{Op: SWPf, A: addr, B: NoValue, Sym: sym})
}

// Cfg emits a prefetcher-configuration instruction.
func (b *Builder) Cfg(info CfgInfo, args ...Value) Value {
	ci := info
	return b.emit(Instr{Op: Cfg, A: NoValue, B: NoValue, Info: &ci, Args: append([]Value(nil), args...)})
}

// Br ends the current block with a jump, recording the predecessor edge.
func (b *Builder) Br(target BlockID) {
	b.emit(Instr{Op: Br, A: NoValue, B: NoValue, Blocks: [2]BlockID{target, -1}})
	b.addPred(target)
}

// CondBr ends the current block with a conditional branch.
func (b *Builder) CondBr(cond Value, then, els BlockID) {
	b.emit(Instr{Op: CondBr, A: cond, B: NoValue, Blocks: [2]BlockID{then, els}})
	b.addPred(then)
	b.addPred(els)
}

// Ret ends the current block returning v (NoValue for void).
func (b *Builder) Ret(v Value) {
	b.emit(Instr{Op: Ret, A: v, B: NoValue, Blocks: [2]BlockID{-1, -1}})
}

func (b *Builder) addPred(target BlockID) {
	t := b.fn.Blocks[target]
	t.Preds = append(t.Preds, b.cur.ID)
}

// Finish verifies and returns the function.
func (b *Builder) Finish() (*Fn, error) {
	if err := b.fn.Verify(); err != nil {
		return nil, err
	}
	return b.fn, nil
}

// MustFinish is Finish, panicking on verification failure; for use in
// benchmark definitions where the IR is fixed at build time.
func (b *Builder) MustFinish() *Fn {
	fn, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("ir: %s: %v", b.fn.Name, err))
	}
	return fn
}
