package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"eventpf/internal/cpu"
	"eventpf/internal/mem"
)

// buildSumLoop builds: for (i = 0; i < n; i++) acc += arr[i]; return acc.
// Args: 0 = arr base, 1 = n.
func buildSumLoop(t testing.TB) *Fn {
	t.Helper()
	b := NewBuilder("sum", 2)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	base := b.Arg(0)
	n := b.Arg(1)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi()
	acc := b.Phi()
	cond := b.Bin(CmpLTU, i, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	eight := b.Const(8)
	off := b.Mul(i, eight)
	addr := b.Add(base, off)
	v := b.Load(addr, "arr")
	acc2 := b.Add(acc, v)
	one := b.Const(1)
	i2 := b.Add(i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	b.SetPhiArgs(i, zero, i2)
	b.SetPhiArgs(acc, zero, acc2)

	fn, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return fn
}

func drain(t testing.TB, it *Interp) []cpu.MicroOp {
	t.Helper()
	var ops []cpu.MicroOp
	for {
		op, ok := it.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

func TestSumLoopFunctional(t *testing.T) {
	fn := buildSumLoop(t)
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 100)
	var want uint64
	for i := uint64(0); i < 100; i++ {
		bk.Write64(arr.Base+i*8, i*3)
		want += i * 3
	}
	it := NewInterp(fn, bk, nil, new(int64), arr.Base, 100)
	ops := drain(t, it)
	got, ok := it.Result()
	if !ok || got != want {
		t.Errorf("sum = %d (ok=%v), want %d", got, ok, want)
	}
	loads := 0
	for _, op := range ops {
		if op.Kind == cpu.OpLoad {
			loads++
		}
	}
	if loads != 100 {
		t.Errorf("loads emitted = %d, want 100", loads)
	}
}

func TestLoadDependenceThreadsThroughAddress(t *testing.T) {
	fn := buildSumLoop(t)
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 4)
	it := NewInterp(fn, bk, nil, new(int64), arr.Base, 4)
	ops := drain(t, it)
	for _, op := range ops {
		if op.Kind == cpu.OpLoad {
			if op.Deps[0] == cpu.NoDep {
				t.Fatal("load has no address dependence")
			}
		}
	}
}

func TestVerifierCatchesMissingTerminator(t *testing.T) {
	b := NewBuilder("bad", 0)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	b.Const(1)
	if _, err := b.Finish(); err == nil {
		t.Error("missing terminator not caught")
	}
}

func TestVerifierCatchesPhiArity(t *testing.T) {
	b := NewBuilder("bad", 0)
	e := b.NewBlock("entry")
	l := b.NewBlock("loop")
	b.SetBlock(e)
	c := b.Const(1)
	b.Br(l)
	b.SetBlock(l)
	p := b.Phi()
	b.SetPhiArgs(p, c, c, c) // loop has preds {entry, loop} = 2, not 3
	b.Br(l)
	if _, err := b.Finish(); err == nil {
		t.Error("phi arity mismatch not caught")
	}
}

func TestVerifierCatchesUseBeforeDef(t *testing.T) {
	b := NewBuilder("bad", 0)
	e := b.NewBlock("entry")
	o := b.NewBlock("other")
	b.SetBlock(e)
	b.Br(o)
	b.SetBlock(o)
	// Manually force a use of a value defined later in the same block.
	x := b.Const(5)
	y := b.Add(x, x)
	b.fn.Block(o).Instrs[0], b.fn.Block(o).Instrs[1] = b.fn.Block(o).Instrs[1], b.fn.Block(o).Instrs[0]
	_ = y
	b.Ret(NoValue)
	if _, err := b.Finish(); err == nil {
		t.Error("use-before-def not caught")
	}
}

func TestDominators(t *testing.T) {
	fn := buildSumLoop(t)
	idom := fn.Dominators()
	// entry=0 head=1 body=2 exit=3
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Errorf("idom = %v, want [0/self, 0, 1, 1]", idom)
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 2, 3) {
		t.Error("Dominates relation wrong")
	}
}

func TestLoopAnalysisFindsInduction(t *testing.T) {
	fn := buildSumLoop(t)
	loops := fn.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || l.Latch != 2 {
		t.Errorf("loop header/latch = b%d/b%d, want b1/b2", l.Header, l.Latch)
	}
	if !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Errorf("loop body wrong: %v", l.Blocks)
	}
	if l.Induction == nil {
		t.Fatal("induction variable not found")
	}
	if l.Induction.Step != 1 {
		t.Errorf("induction step = %d, want 1", l.Induction.Step)
	}
}

func TestLoopInvariant(t *testing.T) {
	fn := buildSumLoop(t)
	l := fn.Loops()[0]
	db := fn.defBlocks()
	base := Value(0) // arg 0 in entry
	if !fn.LoopInvariant(l, base, db) {
		t.Error("arg not loop invariant")
	}
	// The load (inside the body) is not invariant.
	for _, b := range fn.Blocks {
		for _, v := range b.Instrs {
			if fn.Instr(v).Op == Load && fn.LoopInvariant(l, v, db) {
				t.Error("in-loop load reported invariant")
			}
		}
	}
}

func TestBranchMicroOpsCarryDirection(t *testing.T) {
	fn := buildSumLoop(t)
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 3)
	it := NewInterp(fn, bk, nil, new(int64), arr.Base, 3)
	var taken, notTaken int
	for _, op := range drain(t, it) {
		if op.Kind == cpu.OpBranch {
			if op.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 3 || notTaken != 1 {
		t.Errorf("branch directions taken=%d notTaken=%d, want 3/1", taken, notTaken)
	}
}

func TestCfgInstructionReachesSink(t *testing.T) {
	b := NewBuilder("cfg", 1)
	e := b.NewBlock("entry")
	b.SetBlock(e)
	lo := b.Arg(0)
	hi := b.Add(lo, b.Const(800))
	b.Cfg(CfgInfo{Kind: CfgBounds, Slot: 2, LoadKernel: 5, PFKernel: -1, EWMAGroup: -1}, lo, hi)
	b.Ret(NoValue)
	fn := b.MustFinish()

	var got *CfgInfo
	var gotArgs []uint64
	sink := sinkFunc(func(info CfgInfo, args []uint64) { got, gotArgs = &info, args })
	it := NewInterp(fn, mem.NewBacking(), sink, new(int64), 4096)
	ops := drain(t, it)
	if len(ops) == 0 {
		t.Fatal("no micro-ops emitted")
	}
	for _, op := range ops {
		if op.Kind == cpu.OpConfig {
			op.Do()
		}
	}
	if got == nil || got.Slot != 2 || got.LoadKernel != 5 {
		t.Fatalf("sink saw %+v", got)
	}
	if len(gotArgs) != 2 || gotArgs[0] != 4096 || gotArgs[1] != 4896 {
		t.Errorf("sink args = %v", gotArgs)
	}
}

type sinkFunc func(CfgInfo, []uint64)

func (f sinkFunc) Configure(info CfgInfo, args []uint64) { f(info, args) }

func TestMaxStepsGuard(t *testing.T) {
	b := NewBuilder("inf", 0)
	e := b.NewBlock("entry")
	l := b.NewBlock("loop")
	b.SetBlock(e)
	b.Br(l)
	b.SetBlock(l)
	c := b.Const(1)
	b.CondBr(c, l, l)
	fn := b.MustFinish()
	it := NewInterp(fn, mem.NewBacking(), nil, new(int64))
	it.SetMaxSteps(1000)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop not caught")
		}
	}()
	drain(t, it)
}

func TestPrinterMentionsStructure(t *testing.T) {
	fn := buildSumLoop(t)
	s := fn.String()
	for _, want := range []string{"func sum", "phi", "load", "condbr", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

// Property: interpreting a randomly generated straight-line expression DAG
// matches direct Go evaluation.
func TestInterpMatchesDirectEval(t *testing.T) {
	binOps := []Op{Add, Sub, Mul, And, Or, Xor, Shl, Shr, CmpEQ, CmpLTU}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("expr", 0)
		e := b.NewBlock("entry")
		b.SetBlock(e)

		var vals []Value
		var model []uint64
		for i := 0; i < 4; i++ {
			c := int64(rng.Uint32())
			vals = append(vals, b.Const(c))
			model = append(model, uint64(c))
		}
		for i := 0; i < 30; i++ {
			op := binOps[rng.Intn(len(binOps))]
			x := rng.Intn(len(vals))
			y := rng.Intn(len(vals))
			vals = append(vals, b.Bin(op, vals[x], vals[y]))
			model = append(model, evalBin(op, model[x], model[y]))
		}
		last := vals[len(vals)-1]
		b.Ret(last)
		fn := b.MustFinish()
		it := NewInterp(fn, mem.NewBacking(), nil, new(int64))
		drain(t, it)
		got, ok := it.Result()
		return ok && got == model[len(model)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: op IDs in the emitted stream are dense and deps always refer to
// earlier ops.
func TestStreamDepOrdering(t *testing.T) {
	fn := buildSumLoop(t)
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 50)
	it := NewInterp(fn, bk, nil, new(int64), arr.Base, 50)
	id := int64(0)
	for {
		op, ok := it.Next()
		if !ok {
			break
		}
		for _, d := range op.Deps {
			if d != cpu.NoDep && d >= id {
				t.Fatalf("op %d depends on future op %d", id, d)
			}
		}
		id++
	}
}
