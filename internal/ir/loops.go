package ir

// Loop describes one natural loop found in a function's CFG.
type Loop struct {
	Header BlockID
	Latch  BlockID // source of the back edge
	Blocks map[BlockID]bool

	// Induction describes the canonical induction variable, if one was
	// recognised: a phi in the header of the form
	//   iv = phi [init, preheader], [iv + step, latch]
	Induction *InductionVar
}

// InductionVar is a recognised affine induction variable.
type InductionVar struct {
	Phi    Value
	Init   Value // incoming value from outside the loop
	Step   int64 // constant increment per iteration
	Update Value // the add instruction producing the next value
}

// Contains reports whether the loop body includes block id.
func (l *Loop) Contains(id BlockID) bool { return l.Blocks[id] }

// Loops finds all natural loops (back edges a→h where h dominates a) and
// recognises their induction variables. Loops are returned headers-first in
// block order; nested loops appear as separate entries.
func (f *Fn) Loops() []*Loop {
	idom := f.Dominators()
	var loops []*Loop
	for _, b := range f.Blocks {
		if idom[b.ID] == -1 {
			continue
		}
		for _, s := range f.Succs(b) {
			if Dominates(idom, s, b.ID) {
				loops = append(loops, f.naturalLoop(s, b.ID))
			}
		}
	}
	for _, l := range loops {
		l.Induction = f.findInduction(l)
	}
	return loops
}

func (f *Fn) naturalLoop(header, latch BlockID) *Loop {
	l := &Loop{Header: header, Latch: latch, Blocks: map[BlockID]bool{header: true}}
	stack := []BlockID{latch}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Blocks[id] {
			continue
		}
		l.Blocks[id] = true
		for _, p := range f.Block(id).Preds {
			stack = append(stack, p)
		}
	}
	return l
}

// findInduction recognises iv = phi [init, out], [iv+const, in-loop].
func (f *Fn) findInduction(l *Loop) *InductionVar {
	header := f.Block(l.Header)
	for _, v := range header.Instrs {
		in := f.Instr(v)
		if in.Op != Phi {
			break
		}
		var init, update Value = NoValue, NoValue
		for pi, a := range in.Args {
			if l.Contains(header.Preds[pi]) {
				update = a
			} else {
				init = a
			}
		}
		if init == NoValue || update == NoValue {
			continue
		}
		u := f.Instr(update)
		if u.Op != Add {
			continue
		}
		var stepV Value
		switch {
		case u.A == v:
			stepV = u.B
		case u.B == v:
			stepV = u.A
		default:
			continue
		}
		s := f.Instr(stepV)
		if s.Op != Const {
			continue
		}
		return &InductionVar{Phi: v, Init: init, Step: s.Imm, Update: update}
	}
	return nil
}

// LoopInvariant reports whether v is invariant in loop l: a constant, an
// argument, or an instruction outside the loop body. (Instructions inside
// the loop whose operands are all invariant are conservatively treated as
// variant; the compiler passes hoist only whole values defined outside.)
func (f *Fn) LoopInvariant(l *Loop, v Value, defBlocks []BlockID) bool {
	in := f.Instr(v)
	if in.Op == Const || in.Op == Arg {
		return true
	}
	return !l.Contains(defBlocks[v])
}
