package ir

// Mutation helpers used by the compiler passes. They keep the SSA invariants
// the verifier checks; callers should re-run Verify in tests after a pass.

// DefBlocks returns, for each value, the id of the block defining it
// (-1 for values not placed in any block).
func (f *Fn) DefBlocks() []BlockID { return f.defBlocks() }

// NewInstr appends an instruction to the function's value table without
// placing it in a block; combine with InsertBeforeTerminator.
func (f *Fn) NewInstr(in Instr) Value {
	v := Value(len(f.Instrs))
	f.Instrs = append(f.Instrs, in)
	return v
}

// InsertBeforeTerminator places v (created with NewInstr) immediately
// before the terminator of block id.
func (f *Fn) InsertBeforeTerminator(id BlockID, v Value) {
	b := f.Blocks[id]
	n := len(b.Instrs)
	b.Instrs = append(b.Instrs, 0)
	copy(b.Instrs[n:], b.Instrs[n-1:n])
	b.Instrs[n-1] = v
}

// RemoveInstr turns v into a Nop, detaching its operands. The instruction
// stays in its block (the interpreter skips Nops), preserving value ids.
func (f *Fn) RemoveInstr(v Value) {
	f.Instrs[v] = Instr{Op: Nop, A: NoValue, B: NoValue}
}

// Preheader returns the unique out-of-loop predecessor of the loop header,
// or -1 if the loop has none (or more than one).
func (f *Fn) Preheader(l *Loop) BlockID {
	pre := BlockID(-1)
	for _, p := range f.Block(l.Header).Preds {
		if l.Contains(p) {
			continue
		}
		if pre != -1 {
			return -1
		}
		pre = p
	}
	return pre
}

// LoopBound recognises the canonical exit test
//
//	condbr (cmplt/cmpltu/cmpne iv, n), body, exit
//
// in the loop header with loop-invariant n, and returns n.
func (f *Fn) LoopBound(l *Loop) (Value, bool) {
	if l.Induction == nil {
		return NoValue, false
	}
	header := f.Block(l.Header)
	term := f.Instr(header.Instrs[len(header.Instrs)-1])
	if term.Op != CondBr {
		return NoValue, false
	}
	cmp := f.Instr(term.A)
	switch cmp.Op {
	case CmpLT, CmpLTU, CmpNE:
	default:
		return NoValue, false
	}
	if cmp.A != l.Induction.Phi {
		return NoValue, false
	}
	db := f.defBlocks()
	if !f.LoopInvariant(l, cmp.B, db) {
		return NoValue, false
	}
	return cmp.B, true
}

// DeadCodeElim removes instructions whose results are unused and which have
// no side effects (including loads whose values became dead after software
// prefetches were converted away). Returns how many instructions it removed.
func (f *Fn) DeadCodeElim() int {
	live := make([]bool, len(f.Instrs))
	var mark func(v Value)
	mark = func(v Value) {
		if v == NoValue || live[v] {
			return
		}
		live[v] = true
		in := f.Instr(v)
		mark(in.A)
		mark(in.B)
		for _, a := range in.Args {
			mark(a)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			switch f.Instr(v).Op {
			case Store, Cfg, SWPf, Br, CondBr, Ret:
				mark(v)
			}
		}
	}
	removed := 0
	for v := range f.Instrs {
		if !live[v] && f.Instrs[v].Op != Nop {
			f.RemoveInstr(Value(v))
			removed++
		}
	}
	return removed
}
