package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by (*Fn).String back into a
// function, enabling golden-file tests and hand-written textual kernels.
// Cfg instructions are not representable in the textual form and are
// rejected.
func Parse(src string) (*Fn, error) {
	p := &parser{}
	if err := p.run(src); err != nil {
		return nil, err
	}
	if err := p.fn.Verify(); err != nil {
		return nil, fmt.Errorf("ir: parsed function invalid: %w", err)
	}
	return p.fn, nil
}

type parser struct {
	fn  *Fn
	cur *Block
	// valueMap maps source value numbers to actual instruction indices.
	// Printer output allocates ids in build order, which need not match
	// block order, so operands are parsed as raw source numbers and
	// remapped once the whole function is read.
	valueMap map[int]Value
	// refs lists operand slots (instruction index, field) holding raw
	// source numbers to remap once parsing completes.
	refs []ref
}

type ref struct {
	instr Value
	field int // 0 = A, 1 = B, n+2 = Args[n]
}

func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	li := 0
	next := func() (string, bool) {
		for li < len(lines) {
			l := strings.TrimSpace(lines[li])
			li++
			if l != "" {
				return l, true
			}
		}
		return "", false
	}

	head, ok := next()
	if !ok || !strings.HasPrefix(head, "func ") {
		return fmt.Errorf("ir: expected function header, got %q", head)
	}
	name := head[len("func "):strings.Index(head, "(")]
	var nargs int
	if _, err := fmt.Sscanf(head[strings.Index(head, "("):], "(%d args) {", &nargs); err != nil {
		return fmt.Errorf("ir: bad header %q: %v", head, err)
	}
	p.fn = &Fn{Name: name, NArgs: nargs}
	p.valueMap = map[int]Value{}

	// First pass requires block declarations before use; pre-scan labels.
	for _, raw := range lines[li-0:] {
		l := strings.TrimSpace(raw)
		if strings.HasPrefix(l, "b") && strings.Contains(l, ":") && !strings.Contains(l, "=") &&
			!strings.HasPrefix(l, "br ") {
			idStr := l[1:]
			if i := strings.IndexAny(idStr, " :<"); i >= 0 {
				idStr = idStr[:i]
			}
			if n, err := strconv.Atoi(idStr); err == nil {
				for len(p.fn.Blocks) <= n {
					p.fn.Blocks = append(p.fn.Blocks, &Block{ID: BlockID(len(p.fn.Blocks))})
				}
			}
		}
	}
	if len(p.fn.Blocks) == 0 {
		return fmt.Errorf("ir: no blocks found")
	}

	for {
		line, ok := next()
		if !ok {
			return fmt.Errorf("ir: unexpected end of input (missing '}')")
		}
		if line == "}" {
			break
		}
		if strings.HasPrefix(line, "b") && strings.Contains(line, ":") &&
			!strings.Contains(line, "=") && !isInstrLine(line) {
			if err := p.blockHeader(line); err != nil {
				return err
			}
			continue
		}
		if p.cur == nil {
			return fmt.Errorf("ir: instruction before any block: %q", line)
		}
		if err := p.instr(line); err != nil {
			return fmt.Errorf("ir: %q: %w", line, err)
		}
	}
	for _, r := range p.refs {
		in := &p.fn.Instrs[r.instr]
		var slot *Value
		switch r.field {
		case 0:
			slot = &in.A
		case 1:
			slot = &in.B
		default:
			slot = &in.Args[r.field-2]
		}
		if *slot == NoValue {
			continue
		}
		v, ok := p.valueMap[int(*slot)]
		if !ok {
			return fmt.Errorf("ir: reference to undefined value v%d", int(*slot))
		}
		*slot = v
	}
	return nil
}

func isInstrLine(l string) bool {
	for _, prefix := range []string{"br ", "condbr ", "ret ", "store ", "swpf ", "cfg "} {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

func (p *parser) blockHeader(line string) error {
	// "b3 <exit>:  ; preds: b1 b2" — possibly with "#pragma prefetch".
	body := line
	comment := ""
	if i := strings.Index(line, ";"); i >= 0 {
		body, comment = strings.TrimSpace(line[:i]), line[i+1:]
	}
	pragma := strings.Contains(body, "#pragma prefetch")
	body = strings.TrimSpace(strings.Replace(body, "#pragma prefetch", "", 1))
	nameStart := strings.Index(body, "<")
	blkName := ""
	if nameStart >= 0 {
		blkName = body[nameStart+1 : strings.Index(body, ">")]
		body = body[:nameStart]
	}
	body = strings.TrimSuffix(strings.TrimSpace(body), ":")
	id, err := strconv.Atoi(strings.TrimPrefix(body, "b"))
	if err != nil {
		return fmt.Errorf("ir: bad block header %q", line)
	}
	blk := p.fn.Blocks[id]
	blk.Name = blkName
	blk.Pragma = pragma
	if i := strings.Index(comment, "preds:"); i >= 0 {
		for _, f := range strings.Fields(comment[i+len("preds:"):]) {
			pid, err := strconv.Atoi(strings.TrimPrefix(f, "b"))
			if err != nil {
				return fmt.Errorf("ir: bad pred %q", f)
			}
			blk.Preds = append(blk.Preds, BlockID(pid))
		}
	}
	p.cur = blk
	return nil
}

// val parses a value token into its raw source number; callers must pass
// the destination slot to ref() so it is remapped after parsing completes.
func (p *parser) val(tok string) (Value, error) {
	tok = strings.TrimSuffix(tok, ",")
	if tok == "_" {
		return NoValue, nil
	}
	n, err := strconv.Atoi(strings.TrimPrefix(tok, "v"))
	if err != nil || n < 0 {
		return NoValue, fmt.Errorf("bad value %q", tok)
	}
	return Value(n), nil
}

func (p *parser) emit(srcNum int, in Instr) {
	v := Value(len(p.fn.Instrs))
	p.fn.Instrs = append(p.fn.Instrs, in)
	p.cur.Instrs = append(p.cur.Instrs, v)
	if srcNum >= 0 {
		p.valueMap[srcNum] = v
	}
	// Register the operand slots of the just-appended instruction for the
	// end-of-parse remapping.
	p.refs = append(p.refs, ref{v, 0}, ref{v, 1})
	for i := range in.Args {
		p.refs = append(p.refs, ref{v, i + 2})
	}
}

func (p *parser) block(tok string) (BlockID, error) {
	tok = strings.TrimSuffix(tok, ",")
	n, err := strconv.Atoi(strings.TrimPrefix(tok, "b"))
	if err != nil || n < 0 || n >= len(p.fn.Blocks) {
		return -1, fmt.Errorf("bad block ref %q", tok)
	}
	return BlockID(n), nil
}

var parseOps = map[string]Op{
	"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
	"and": And, "or": Or, "xor": Xor, "shl": Shl, "shr": Shr,
	"cmpeq": CmpEQ, "cmpne": CmpNE, "cmplt": CmpLT, "cmpltu": CmpLTU,
	"cmpge": CmpGE, "cmpgeu": CmpGEU,
}

func (p *parser) instr(line string) error {
	sym := ""
	if i := strings.Index(line, ";"); i >= 0 {
		sym = strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
	}
	f := strings.Fields(strings.ReplaceAll(line, ",", " "))

	// Value-producing instructions: "vN = op ...".
	if len(f) >= 3 && f[1] == "=" {
		srcNum, err := strconv.Atoi(strings.TrimPrefix(f[0], "v"))
		if err != nil {
			return fmt.Errorf("bad result %q", f[0])
		}
		op := f[2]
		switch op {
		case "nop":
			p.emit(srcNum, Instr{Op: Nop, A: NoValue, B: NoValue})
		case "const":
			imm, err := strconv.ParseInt(f[3], 10, 64)
			if err != nil {
				return err
			}
			p.emit(srcNum, Instr{Op: Const, A: NoValue, B: NoValue, Imm: imm})
		case "arg":
			imm, err := strconv.ParseInt(f[3], 10, 64)
			if err != nil {
				return err
			}
			p.emit(srcNum, Instr{Op: Arg, A: NoValue, B: NoValue, Imm: imm})
		case "phi":
			// "vN = phi [v1, v2]"
			inner := line[strings.Index(line, "[")+1 : strings.Index(line, "]")]
			var args []Value
			for _, tok := range strings.Fields(strings.ReplaceAll(inner, ",", " ")) {
				v, err := p.val(tok)
				if err != nil {
					return err
				}
				args = append(args, v)
			}
			p.emit(srcNum, Instr{Op: Phi, A: NoValue, B: NoValue, Args: args})
		case "load":
			a, err := p.val(f[3])
			if err != nil {
				return err
			}
			p.emit(srcNum, Instr{Op: Load, A: a, B: NoValue, Sym: sym})
		default:
			o, ok := parseOps[op]
			if !ok {
				return fmt.Errorf("unknown op %q", op)
			}
			a, err := p.val(f[3])
			if err != nil {
				return err
			}
			b, err := p.val(f[4])
			if err != nil {
				return err
			}
			p.emit(srcNum, Instr{Op: o, A: a, B: b})
		}
		return nil
	}

	// Void instructions.
	switch f[0] {
	case "store":
		a, err := p.val(f[1])
		if err != nil {
			return err
		}
		b, err := p.val(f[2])
		if err != nil {
			return err
		}
		p.emit(-1, Instr{Op: Store, A: a, B: b, Sym: sym})
	case "swpf":
		a, err := p.val(f[1])
		if err != nil {
			return err
		}
		p.emit(-1, Instr{Op: SWPf, A: a, B: NoValue, Sym: sym})
	case "br":
		t, err := p.block(f[1])
		if err != nil {
			return err
		}
		p.emit(-1, Instr{Op: Br, A: NoValue, B: NoValue, Blocks: [2]BlockID{t, -1}})
	case "condbr":
		c, err := p.val(f[1])
		if err != nil {
			return err
		}
		t1, err := p.block(f[2])
		if err != nil {
			return err
		}
		t2, err := p.block(f[3])
		if err != nil {
			return err
		}
		p.emit(-1, Instr{Op: CondBr, A: c, B: NoValue, Blocks: [2]BlockID{t1, t2}})
	case "ret":
		a, err := p.val(f[1])
		if err != nil {
			return err
		}
		p.emit(-1, Instr{Op: Ret, A: a, B: NoValue, Blocks: [2]BlockID{-1, -1}})
	case "cfg":
		return fmt.Errorf("cfg instructions have no textual form")
	default:
		return fmt.Errorf("unknown instruction %q", f[0])
	}
	return nil
}
