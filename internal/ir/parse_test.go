package ir

import (
	"strings"
	"testing"

	"eventpf/internal/mem"
)

func TestParseRoundTripSumLoop(t *testing.T) {
	// Parsing renumbers values into block order, so the fixed point is
	// reached after one normalisation: print∘parse must be idempotent.
	fn := buildSumLoop(t)
	once, err := Parse(fn.String())
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, fn.String())
	}
	twice, err := Parse(once.String())
	if err != nil {
		t.Fatalf("Parse (second): %v", err)
	}
	if once.String() != twice.String() {
		t.Errorf("print∘parse not idempotent:\n--- once\n%s\n--- twice\n%s",
			once.String(), twice.String())
	}
}

func TestParsedFunctionExecutesIdentically(t *testing.T) {
	fn := buildSumLoop(t)
	back, err := Parse(fn.String())
	if err != nil {
		t.Fatal(err)
	}

	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 64)
	for i := uint64(0); i < 64; i++ {
		bk.Write64(arr.Base+i*8, i*i)
	}
	run := func(f *Fn) uint64 {
		it := NewInterp(f, bk, nil, new(int64), arr.Base, 64)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		v, _ := it.Result()
		return v
	}
	if a, b := run(fn), run(back); a != b {
		t.Errorf("original %d != reparsed %d", a, b)
	}
}

func TestParseTextualKernel(t *testing.T) {
	// A hand-written textual kernel: sum the first N words at base.
	src := `
func textsum(2 args) {
b0 <entry>:
  v0 = arg 0
  v1 = arg 1
  v2 = const 0
  br b1
b1 <head>:  ; preds: b0 b2
  v4 = phi [v2, v13]
  v5 = phi [v2, v11]
  v6 = cmpltu v4, v1
  condbr v6, b2, b3
b2 <body>:  ; preds: b1
  v8 = shl v4, v15
  v9 = add v0, v8
  v10 = load v9 ; arr
  v11 = add v5, v10
  v12 = const 1
  v13 = add v4, v12
  br b1
b3 <exit>:  ; preds: b1
  ret v5
}
`
	// v15 is used before definition — the parser maps it optimistically and
	// the verifier must reject it.
	if _, err := Parse(src); err == nil {
		t.Fatal("use of undefined value accepted")
	}
	fixed := strings.Replace(src, "v8 = shl v4, v15", "v7 = const 3\n  v8 = shl v4, v7", 1)
	fn, err := Parse(fixed)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("arr", 8)
	var want uint64
	for i := uint64(0); i < 8; i++ {
		bk.Write64(arr.Base+i*8, i+100)
		want += i + 100
	}
	it := NewInterp(fn, bk, nil, new(int64), arr.Base, 8)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if got, _ := it.Result(); got != want {
		t.Errorf("textual kernel sum = %d, want %d", got, want)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"func x(1 args) {\n}",                  // no blocks
		"func x(0 args) {\nb0:\n  bogus v1\n}", // unknown instr
		"func x(0 args) {\nb0:\n  v0 = wat v1, v2\n}",         // unknown op
		"func x(0 args) {\nb0:\n  v0 = const 1\n}",            // no terminator
		"func x(0 args) {\nb0:\n  br b7\n}",                   // bad block ref
		"func x(0 args) {\nb0:\n  cfg {} args=[]\n  ret _\n}", // cfg untextual
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParsePreservesPragmaAndNames(t *testing.T) {
	b := NewBuilder("p", 1)
	e := b.NewBlock("entry")
	l := b.NewBlock("loop")
	x := b.NewBlock("exit")
	b.SetBlock(e)
	n := b.Arg(0)
	zero := b.Const(0)
	b.Br(l)
	b.SetBlock(l)
	i := b.Phi()
	c := b.Bin(CmpLTU, i, n)
	b.CondBr(c, l, x)
	b.MarkPragma(l)
	b.SetBlock(x)
	b.Ret(NoValue)
	b.SetPhiArgs(i, zero, i)
	// NOTE: this function is a degenerate loop (i never advances) but is
	// structurally valid; we only check textual fidelity.
	fn := b.MustFinish()

	back, err := Parse(fn.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Block(1).Pragma {
		t.Error("pragma mark lost in round trip")
	}
	if back.Block(0).Name != "entry" || back.Block(2).Name != "exit" {
		t.Error("block names lost in round trip")
	}
}
