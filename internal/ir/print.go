package ir

import (
	"fmt"
	"strings"
)

// String renders the function in a readable assembly-like form, used by the
// compiler-demo example and in test failure output.
func (f *Fn) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d args) {\n", f.Name, f.NArgs)
	for _, b := range f.Blocks {
		label := fmt.Sprintf("b%d", b.ID)
		if b.Name != "" {
			label += " <" + b.Name + ">"
		}
		if b.Pragma {
			label += " #pragma prefetch"
		}
		fmt.Fprintf(&sb, "%s:", label)
		if len(b.Preds) > 0 {
			fmt.Fprintf(&sb, "  ; preds:")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " b%d", p)
			}
		}
		sb.WriteByte('\n')
		for _, v := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", f.instrString(v))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (f *Fn) instrString(v Value) string {
	in := f.Instr(v)
	val := func(x Value) string {
		if x == NoValue {
			return "_"
		}
		return fmt.Sprintf("v%d", x)
	}
	switch in.Op {
	case Nop:
		return fmt.Sprintf("v%d = nop", v)
	case Const:
		return fmt.Sprintf("v%d = const %d", v, in.Imm)
	case Arg:
		return fmt.Sprintf("v%d = arg %d", v, in.Imm)
	case Phi:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = val(a)
		}
		return fmt.Sprintf("v%d = phi [%s]", v, strings.Join(parts, ", "))
	case Load:
		s := fmt.Sprintf("v%d = load %s", v, val(in.A))
		if in.Sym != "" {
			s += " ; " + in.Sym
		}
		return s
	case Store:
		s := fmt.Sprintf("store %s, %s", val(in.A), val(in.B))
		if in.Sym != "" {
			s += " ; " + in.Sym
		}
		return s
	case SWPf:
		s := fmt.Sprintf("swpf %s", val(in.A))
		if in.Sym != "" {
			s += " ; " + in.Sym
		}
		return s
	case Cfg:
		return fmt.Sprintf("cfg %+v args=%v", *in.Info, in.Args)
	case Br:
		return fmt.Sprintf("br b%d", in.Blocks[0])
	case CondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", val(in.A), in.Blocks[0], in.Blocks[1])
	case Ret:
		return fmt.Sprintf("ret %s", val(in.A))
	default:
		return fmt.Sprintf("v%d = %s %s, %s", v, in.Op, val(in.A), val(in.B))
	}
}
