package ir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eventpf/internal/mem"
)

// randomCFGFn builds a random (but well-formed) function: a chain of blocks
// with random forward conditional branches and a random expression per
// block, always ending in a return. Used to cross-check the dominator
// computation against a brute-force definition.
func randomCFGFn(rng *rand.Rand) *Fn {
	b := NewBuilder("rand", 1)
	nBlocks := rng.Intn(6) + 3
	blocks := make([]BlockID, nBlocks)
	for i := range blocks {
		blocks[i] = b.NewBlock("")
	}
	b.SetBlock(blocks[0])
	x := b.Arg(0)
	for i := 0; i < nBlocks-1; i++ {
		b.SetBlock(blocks[i])
		v := b.Add(x, b.Const(int64(i)))
		if rng.Intn(2) == 0 && i+2 < nBlocks {
			t1 := blocks[i+1]
			t2 := blocks[i+2+rng.Intn(nBlocks-i-2)]
			b.CondBr(v, t1, t2)
		} else {
			b.Br(blocks[i+1])
		}
	}
	b.SetBlock(blocks[nBlocks-1])
	b.Ret(NoValue)
	return b.fn
}

// bruteDominates: a dominates b iff removing a from the CFG makes b
// unreachable from entry.
func bruteDominates(f *Fn, a, b BlockID) bool {
	if a == b {
		return true
	}
	seen := map[BlockID]bool{a: true} // block a is "removed"
	var dfs func(BlockID) bool
	dfs = func(id BlockID) bool {
		if id == b {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, s := range f.Succs(f.Block(id)) {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return !dfs(f.Entry)
}

func TestDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := randomCFGFn(rng)
		idom := fn.Dominators()
		// Reachability for filtering.
		reach := map[BlockID]bool{}
		var mark func(BlockID)
		mark = func(id BlockID) {
			if reach[id] {
				return
			}
			reach[id] = true
			for _, s := range fn.Succs(fn.Block(id)) {
				mark(s)
			}
		}
		mark(fn.Entry)
		for _, a := range fn.Blocks {
			for _, b := range fn.Blocks {
				if !reach[a.ID] || !reach[b.ID] {
					continue
				}
				if Dominates(idom, a.ID, b.ID) != bruteDominates(fn, a.ID, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: dead-code elimination never changes the function's observable
// behaviour (return value and stores).
func TestDCEPreservesBehaviour(t *testing.T) {
	f := func(seed int64) bool {
		build := func() *Fn {
			b := NewBuilder("p", 2)
			entry := b.NewBlock("entry")
			b.SetBlock(entry)
			base := b.Arg(0)
			n := b.Arg(1)
			vals := []Value{base, n}
			rng2 := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				op := []Op{Add, Sub, Mul, Xor, And, Or}[rng2.Intn(6)]
				x := vals[rng2.Intn(len(vals))]
				y := vals[rng2.Intn(len(vals))]
				vals = append(vals, b.Bin(op, x, y))
			}
			// A store of one random value (observable), the rest dead.
			addr := b.Add(base, b.Const(int64(rng2.Intn(8))*8))
			b.Store(addr, vals[len(vals)-1], "out")
			b.Ret(vals[rng2.Intn(len(vals))])
			return b.MustFinish()
		}

		run := func(fn *Fn) (uint64, uint64) {
			bk := mem.NewBacking()
			arena := mem.NewArena(bk)
			r := arena.AllocWords("out", 16)
			it := NewInterp(fn, bk, nil, new(int64), r.Base, 7)
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			ret, _ := it.Result()
			var sum uint64
			for i := uint64(0); i < 16; i++ {
				sum += bk.Read64(r.Base + i*8)
			}
			return ret, sum
		}

		plain := build()
		pruned := build()
		removed := pruned.DeadCodeElim()
		if err := pruned.Verify(); err != nil {
			return false
		}
		r1, s1 := run(plain)
		r2, s2 := run(pruned)
		_ = removed
		return r1 == r2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: DCE is idempotent.
func TestDCEIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := randomCFGFn(rng)
		fn.DeadCodeElim()
		return fn.DeadCodeElim() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSeqConcatenatesStreams(t *testing.T) {
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	arr := arena.AllocWords("a", 64)
	for i := uint64(0); i < 8; i++ {
		bk.Write64(arr.Base+i*8, i)
	}
	mk := func() *Fn {
		b := NewBuilder("s", 1)
		e := b.NewBlock("entry")
		b.SetBlock(e)
		v := b.Load(b.Arg(0), "a")
		b.Ret(v)
		return b.MustFinish()
	}
	counter := new(int64)
	i1 := NewInterp(mk(), bk, nil, counter, arr.Base)
	i2 := NewInterp(mk(), bk, nil, counter, arr.Base+8)
	s := Seq(i1, i2)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("stream produced %d ops, want 2", n)
	}
	if v, _ := i2.Result(); v != 1 {
		t.Errorf("second interp result = %d, want 1", v)
	}
	if *counter != 2 {
		t.Errorf("shared counter = %d, want 2 (ids must be global)", *counter)
	}
}
