package ir

import "fmt"

// Verify checks structural well-formedness: every block ends in exactly one
// terminator, phi argument counts match predecessor counts, operand indices
// are in range, and every use is dominated by its definition.
func (f *Fn) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("function %s has no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d is empty", b.ID)
		}
		for i, v := range b.Instrs {
			in := f.Instr(v)
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("block b%d: terminator placement wrong at v%d (%s)", b.ID, v, in.Op)
			}
			if in.Op == Phi {
				if i > 0 && f.Instr(b.Instrs[i-1]).Op != Phi {
					return fmt.Errorf("block b%d: phi v%d not at block start", b.ID, v)
				}
				if len(in.Args) != len(b.Preds) {
					return fmt.Errorf("block b%d: phi v%d has %d args for %d preds",
						b.ID, v, len(in.Args), len(b.Preds))
				}
			}
			var ops []Value
			ops = in.Operands(ops)
			for _, o := range ops {
				if o < 0 || int(o) >= len(f.Instrs) {
					return fmt.Errorf("v%d references out-of-range value v%d", v, o)
				}
			}
		}
	}
	return f.verifyDominance()
}

// Dominators computes the immediate dominator of every reachable block using
// the Cooper–Harvey–Kennedy iterative algorithm. idom[entry] = entry;
// unreachable blocks get -1.
func (f *Fn) Dominators() []BlockID {
	n := len(f.Blocks)
	// Reverse postorder over the CFG.
	order := make([]BlockID, 0, n)
	seen := make([]bool, n)
	var dfs func(BlockID)
	dfs = func(id BlockID) {
		seen[id] = true
		for _, s := range f.Succs(f.Block(id)) {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, id)
	}
	dfs(f.Entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, id := range order {
		rpoNum[id] = i
	}

	idom := make([]BlockID, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[f.Entry] = f.Entry

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, id := range order {
			if id == f.Entry {
				continue
			}
			var newIdom BlockID = -1
			for _, p := range f.Block(id).Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []BlockID, a, b BlockID) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

func (f *Fn) verifyDominance() error {
	idom := f.Dominators()
	db := f.defBlocks()
	for _, b := range f.Blocks {
		if idom[b.ID] == -1 {
			continue // unreachable; interpreter will never run it
		}
		for i, v := range b.Instrs {
			in := f.Instr(v)
			if in.Op == Phi {
				// Each incoming value must dominate the matching predecessor.
				for pi, a := range in.Args {
					if a == NoValue {
						continue
					}
					pred := b.Preds[pi]
					if db[a] == -1 {
						return fmt.Errorf("phi v%d arg v%d is not placed in any block", v, a)
					}
					if !Dominates(idom, db[a], pred) {
						return fmt.Errorf("phi v%d: incoming v%d (b%d) does not dominate pred b%d",
							v, a, db[a], pred)
					}
				}
				continue
			}
			var ops []Value
			ops = in.Operands(ops)
			for _, o := range ops {
				ob := db[o]
				if ob == -1 {
					return fmt.Errorf("v%d uses v%d which is in no block", v, o)
				}
				if ob == b.ID {
					// Must appear earlier in the same block.
					found := false
					for _, w := range b.Instrs[:i] {
						if w == o {
							found = true
							break
						}
					}
					if !found {
						return fmt.Errorf("v%d uses v%d before definition in b%d", v, o, b.ID)
					}
				} else if !Dominates(idom, ob, b.ID) {
					return fmt.Errorf("v%d (b%d) uses v%d (b%d) without dominance", v, b.ID, o, ob)
				}
			}
		}
	}
	return nil
}
