// Package mem models the memory system: a functional backing store holding
// the program's actual data, a virtual-address-space allocator, a TLB with a
// page-table walker, set-associative write-back caches with MSHRs, and a
// banked DDR3 DRAM. Timing and function are split: the backing store answers
// "what value lives here" immediately, while the cache/DRAM models answer
// "when would this access complete".
package mem

import "fmt"

// LineSize is the cache line size in bytes, fixed at 64 as in the paper.
const LineSize = 64

// PageSize is the virtual page size in bytes.
const PageSize = 4096

const (
	wordsPerPage = PageSize / 8
	wordsPerLine = LineSize / 8
)

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// PageAddr returns the page-aligned address containing addr.
func PageAddr(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// Backing is the functional memory: a sparse 64-bit virtual address space of
// 64-bit words. Reads of unallocated memory are a program error and panic,
// which catches workload bugs early.
type Backing struct {
	pages map[uint64]*[wordsPerPage]uint64
}

// NewBacking returns an empty backing store.
func NewBacking() *Backing {
	return &Backing{pages: make(map[uint64]*[wordsPerPage]uint64)}
}

// Mapped reports whether addr lies in an allocated page.
func (b *Backing) Mapped(addr uint64) bool {
	_, ok := b.pages[PageAddr(addr)]
	return ok
}

// MapPage allocates (zeroed) the page containing addr if not already mapped.
func (b *Backing) MapPage(addr uint64) {
	pa := PageAddr(addr)
	if _, ok := b.pages[pa]; !ok {
		b.pages[pa] = new([wordsPerPage]uint64)
	}
}

func (b *Backing) page(addr uint64) *[wordsPerPage]uint64 {
	p, ok := b.pages[PageAddr(addr)]
	if !ok {
		panic(fmt.Sprintf("mem: access to unmapped address %#x", addr))
	}
	return p
}

// Read64 returns the 8-byte word at addr. addr must be 8-byte aligned and
// mapped.
func (b *Backing) Read64(addr uint64) uint64 {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: misaligned read at %#x", addr))
	}
	return b.page(addr)[(addr%PageSize)/8]
}

// Write64 stores an 8-byte word at addr. addr must be 8-byte aligned and
// mapped.
func (b *Backing) Write64(addr uint64, v uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: misaligned write at %#x", addr))
	}
	b.page(addr)[(addr%PageSize)/8] = v
}

// ReadLine returns the 8 words of the cache line containing addr. This is
// what the prefetcher forwards to a PPU along with an observation.
func (b *Backing) ReadLine(addr uint64) [wordsPerLine]uint64 {
	var line [wordsPerLine]uint64
	base := LineAddr(addr)
	p := b.page(base)
	off := (base % PageSize) / 8
	copy(line[:], p[off:off+wordsPerLine])
	return line
}

// Arena allocates regions of the virtual address space, mapping their pages
// in the backing store. Allocation is a simple bump pointer with a guard gap
// between regions so an off-by-one in a workload faults instead of silently
// reading a neighbouring array.
type Arena struct {
	backing *Backing
	next    uint64
	regions []Region
}

// Region describes one named allocation, usable as prefetcher address-filter
// bounds and for compiler bounds inference.
type Region struct {
	Name string
	Base uint64
	Size uint64 // bytes requested (End-Base may be larger due to page rounding)
}

// End returns the first address past the requested extent of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr lies within the requested extent.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// NewArena returns an allocator over b starting at a non-zero base address.
func NewArena(b *Backing) *Arena {
	return &Arena{backing: b, next: 1 << 20}
}

// Alloc reserves size bytes (rounded up to whole pages, plus a guard page)
// and returns the region. The memory is zeroed.
func (a *Arena) Alloc(name string, size uint64) Region {
	if size == 0 {
		size = 8
	}
	base := a.next
	pages := (size + PageSize - 1) / PageSize
	for i := uint64(0); i < pages; i++ {
		a.backing.MapPage(base + i*PageSize)
	}
	a.next = base + (pages+1)*PageSize // one guard page between regions
	r := Region{Name: name, Base: base, Size: size}
	a.regions = append(a.regions, r)
	return r
}

// AllocWords is Alloc for a count of 8-byte words.
func (a *Arena) AllocWords(name string, words uint64) Region {
	return a.Alloc(name, words*8)
}

// Regions returns all allocations made so far, in order.
func (a *Arena) Regions() []Region { return a.regions }

// Lookup returns the region with the given name.
func (a *Arena) Lookup(name string) (Region, bool) {
	for _, r := range a.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}
