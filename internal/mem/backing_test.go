package mem

import (
	"testing"
	"testing/quick"
)

func TestBackingReadWrite(t *testing.T) {
	b := NewBacking()
	b.MapPage(0x1000)
	b.Write64(0x1008, 42)
	if got := b.Read64(0x1008); got != 42 {
		t.Errorf("Read64 = %d, want 42", got)
	}
	if got := b.Read64(0x1000); got != 0 {
		t.Errorf("unwritten word = %d, want 0", got)
	}
}

func TestBackingUnmappedPanics(t *testing.T) {
	b := NewBacking()
	defer func() {
		if recover() == nil {
			t.Error("read of unmapped address did not panic")
		}
	}()
	b.Read64(0x5000)
}

func TestBackingMisalignedPanics(t *testing.T) {
	b := NewBacking()
	b.MapPage(0x1000)
	defer func() {
		if recover() == nil {
			t.Error("misaligned read did not panic")
		}
	}()
	b.Read64(0x1004)
}

func TestReadLine(t *testing.T) {
	b := NewBacking()
	b.MapPage(0x1000)
	for i := uint64(0); i < 8; i++ {
		b.Write64(0x1040+i*8, 100+i)
	}
	line := b.ReadLine(0x1050) // any address inside the line
	for i := uint64(0); i < 8; i++ {
		if line[i] != 100+i {
			t.Errorf("line[%d] = %d, want %d", i, line[i], 100+i)
		}
	}
}

func TestArenaGuardGap(t *testing.T) {
	b := NewBacking()
	a := NewArena(b)
	r1 := a.Alloc("a", 100)
	r2 := a.Alloc("b", PageSize*2)
	if r1.Base%PageSize != 0 {
		t.Errorf("region base %#x not page aligned", r1.Base)
	}
	if r2.Base <= r1.Base {
		t.Error("regions not disjoint")
	}
	// The guard page between the regions must be unmapped.
	if b.Mapped(r1.Base + PageSize) {
		t.Error("guard page after region a is mapped")
	}
	if !b.Mapped(r2.Base + PageSize) {
		t.Error("second page of region b is unmapped")
	}
}

func TestArenaLookup(t *testing.T) {
	a := NewArena(NewBacking())
	a.AllocWords("keys", 10)
	r, ok := a.Lookup("keys")
	if !ok || r.Size != 80 {
		t.Errorf("Lookup(keys) = %+v, %v", r, ok)
	}
	if _, ok := a.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 64}
	if !r.Contains(0x1000) || !r.Contains(0x103f) {
		t.Error("Contains rejects in-range addresses")
	}
	if r.Contains(0x1040) || r.Contains(0xfff) {
		t.Error("Contains accepts out-of-range addresses")
	}
}

// Property: for any sequence of word writes within one region, reads return
// the last value written.
func TestBackingLastWriteWins(t *testing.T) {
	f := func(writes []uint16, values []uint64) bool {
		b := NewBacking()
		a := NewArena(b)
		r := a.AllocWords("arr", 1<<16)
		model := map[uint64]uint64{}
		for i, w := range writes {
			if i >= len(values) {
				break
			}
			addr := r.Base + uint64(w)*8
			b.Write64(addr, values[i])
			model[addr] = values[i]
		}
		for addr, want := range model {
			if b.Read64(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLineAndPageAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr = %#x", LineAddr(0x12345))
	}
	if PageAddr(0x12345) != 0x12000 {
		t.Errorf("PageAddr = %#x", PageAddr(0x12345))
	}
}
