package mem

import (
	"fmt"

	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	HitCycles int64 // lookup latency, in the cache's clock domain
	MSHRs     int
}

// CacheStats counts the events the paper's Figure 8 is built from.
type CacheStats struct {
	DemandLoads   int64 // demand read lookups
	DemandHits    int64 // demand read lookups that hit
	DemandStores  int64
	StoreHits     int64
	Misses        int64 // demand misses sent down (loads + stores)
	MSHRMerges    int64 // accesses merged into an in-flight miss
	LateMerges    int64 // demand accesses that merged into an in-flight prefetch
	MSHRStalls    int64 // demand misses that had to wait for a free MSHR
	PrefetchIssue int64 // prefetch requests accepted by this cache
	PrefetchHits  int64 // prefetches that found the line already present
	PrefetchFills int64 // prefetch fills that allocated a line
	PrefetchDrop  int64 // prefetches dropped for want of an MSHR
	PrefetchUsed  int64 // prefetched lines touched by demand before eviction
	PrefetchDead  int64 // prefetched lines evicted untouched
	Writebacks    int64
}

// ReadHitRate returns the demand-load hit rate (Figure 8b).
func (s CacheStats) ReadHitRate() float64 {
	if s.DemandLoads == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.DemandLoads)
}

// PrefetchUtilisation returns the fraction of prefetched lines that were
// used by a demand access before leaving the cache (Figure 8a). Call
// (*Cache).FinalizeStats first so resident lines are counted.
func (s CacheStats) PrefetchUtilisation() float64 {
	total := s.PrefetchUsed + s.PrefetchDead
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchUsed) / float64(total)
}

type cacheLine struct {
	tag        uint64 // line address
	valid      bool
	dirty      bool
	prefetched bool // brought in by a prefetch
	used       bool // prefetched line later touched by demand
	lastUse    int64
}

type mshrEntry struct {
	line         uint64
	slot         int32 // stable MSHR index for tracing, -1 when untraced
	demand       bool  // at least one demand access is waiting
	dirty        bool  // a store is among the merged accesses
	initPrefetch bool  // the miss was initiated by a prefetch
	waiters      []func(at sim.Ticks)
	tags         []tagged // prefetch-kernel tags to fire on fill (§4.7)
}

type tagged struct {
	tag     int
	timedAt sim.Ticks
}

// Cache is one set-associative, write-back, write-allocate cache level with
// a fixed number of MSHRs. It is non-blocking: demand misses beyond the MSHR
// count queue; prefetches beyond it are dropped (they are only hints).
type Cache struct {
	eng  *sim.Engine
	clk  sim.Clock
	cfg  CacheConfig
	next Level

	sets     int
	lines    [][]cacheLine
	useClock int64

	mshr        map[uint64]*mshrEntry
	pendingMiss []*Request

	// OnDemandAccess, if set, observes every demand load at lookup time:
	// this is the snoop feeding the programmable prefetcher's address
	// filter and the baseline prefetchers' training.
	OnDemandAccess func(addr uint64, pc int, hit bool)

	// OnPrefetchFill, if set, observes tagged prefetched data arriving
	// (or found already resident), feeding prefetch-completion events.
	// filled distinguishes a real memory fill from an already-resident hit.
	OnPrefetchFill func(line uint64, tag int, timedAt sim.Ticks, filled bool)

	// OnMSHRFree, if set, is called whenever an MSHR is released, so the
	// prefetch-request-queue drainer can try again.
	OnMSHRFree func()

	// OnPrefetchDrop, if set, is told when a tagged prefetch is discarded
	// inside the cache (MSHRs filled during the lookup), so the prefetcher
	// can abandon the pending chain.
	OnPrefetchDrop func(line uint64, tag int)

	// OnPrefetchDead, if set, observes prefetched lines evicted without
	// ever being used (diagnostics).
	OnPrefetchDead func(line uint64)

	// Bus, if set, receives CacheMiss/CacheFill/CacheMSHRFull/CachePFDrop
	// events labelled with Level. MSHR slot indices (for per-MSHR trace
	// tracks) are assigned only while a bus is attached.
	Bus      *trace.Bus
	Level    int32
	slotUsed []bool // lazily sized to cfg.MSHRs on first traced miss

	Stats CacheStats
}

// takeSlot returns the lowest free MSHR slot index, or -1 when untraced.
func (c *Cache) takeSlot() int32 {
	if c.Bus == nil {
		return -1
	}
	if c.slotUsed == nil {
		c.slotUsed = make([]bool, c.cfg.MSHRs)
	}
	for i, used := range c.slotUsed {
		if !used {
			c.slotUsed[i] = true
			return int32(i)
		}
	}
	return -1
}

// NewCache builds a cache in the given clock domain in front of next.
func NewCache(eng *sim.Engine, clk sim.Clock, cfg CacheConfig, next Level) *Cache {
	sets := cfg.SizeBytes / (LineSize * cfg.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d must be a positive power of two", cfg.Name, sets))
	}
	c := &Cache{
		eng:   eng,
		clk:   clk,
		cfg:   cfg,
		next:  next,
		sets:  sets,
		lines: make([][]cacheLine, sets),
		mshr:  make(map[uint64]*mshrEntry),
	}
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, cfg.Ways)
	}
	return c
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

func (c *Cache) setIndex(line uint64) int {
	return int((line / LineSize) % uint64(c.sets))
}

func (c *Cache) lookup(line uint64) *cacheLine {
	set := c.lines[c.setIndex(line)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// FreeMSHRs reports how many miss registers are available.
func (c *Cache) FreeMSHRs() int { return c.cfg.MSHRs - len(c.mshr) }

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool { return c.lookup(LineAddr(addr)) != nil }

// Access begins servicing a request. The lookup completes HitCycles later;
// Done fires at hit time or, on a miss, at fill time.
func (c *Cache) Access(req *Request) {
	if req.Line == 0 {
		req.Line = LineAddr(req.Addr)
	}
	if req.Kind == Writeback {
		// Posted dirty eviction from the level above: treat as a fill of
		// ours (write-allocate would be unusual here; just forward if the
		// line is absent, mark dirty if present).
		c.Stats.Writebacks++
		if l := c.lookup(req.Line); l != nil {
			l.dirty = true
			return
		}
		c.next.Access(&Request{Addr: req.Addr, Line: req.Line, Kind: Writeback, Tag: NoTag, TimedAt: -1})
		return
	}
	c.eng.After(c.clk.Cycles(c.cfg.HitCycles), func() { c.finishLookup(req) })
}

func (c *Cache) finishLookup(req *Request) {
	now := c.eng.Now()
	line := c.lookup(req.Line)
	hit := line != nil

	switch req.Kind {
	case Load:
		c.Stats.DemandLoads++
		if hit {
			c.Stats.DemandHits++
		}
	case Store:
		c.Stats.DemandStores++
		if hit {
			c.Stats.StoreHits++
		}
	case Prefetch:
		if hit {
			c.Stats.PrefetchHits++
		}
	}

	if req.Kind != Prefetch && c.OnDemandAccess != nil {
		c.OnDemandAccess(req.Addr, req.PC, hit)
	}

	if hit {
		c.touch(line, req)
		if req.Kind == Prefetch && req.Tag != NoTag && c.OnPrefetchFill != nil {
			// The data the chain needs is already resident: the
			// prefetch-completion event still fires so the chain continues.
			c.OnPrefetchFill(req.Line, req.Tag, req.TimedAt, false)
		}
		if req.Done != nil {
			req.Done(now)
		}
		return
	}
	c.miss(req)
}

func (c *Cache) touch(line *cacheLine, req *Request) {
	c.useClock++
	line.lastUse = c.useClock
	if req.Kind == Store {
		line.dirty = true
	}
	if req.Kind != Prefetch && line.prefetched && !line.used {
		line.used = true
	}
}

func (c *Cache) miss(req *Request) {
	if e, ok := c.mshr[req.Line]; ok {
		// Merge with the in-flight miss.
		c.Stats.MSHRMerges++
		if req.Kind != Prefetch {
			if e.initPrefetch && !e.demand {
				c.Stats.LateMerges++
			}
			e.demand = true
			if req.Kind == Store {
				e.dirty = true
			}
		} else if req.Tag != NoTag {
			e.tags = append(e.tags, tagged{req.Tag, req.TimedAt})
		}
		if req.Done != nil {
			e.waiters = append(e.waiters, req.Done)
		}
		return
	}
	if len(c.mshr) >= c.cfg.MSHRs {
		if req.Kind == Prefetch {
			c.Stats.PrefetchDrop++
			c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CachePFDrop,
				Addr: req.Line, A: c.Level, ID: int64(req.Tag)})
			if req.Tag != NoTag && c.OnPrefetchDrop != nil {
				c.OnPrefetchDrop(req.Line, req.Tag)
			}
			return
		}
		c.Stats.MSHRStalls++
		c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CacheMSHRFull,
			Addr: req.Line, A: c.Level})
		c.pendingMiss = append(c.pendingMiss, req)
		return
	}
	c.allocateMSHR(req)
}

func (c *Cache) allocateMSHR(req *Request) {
	c.Stats.Misses++
	e := &mshrEntry{
		line:         req.Line,
		slot:         c.takeSlot(),
		demand:       req.Kind != Prefetch,
		dirty:        req.Kind == Store,
		initPrefetch: req.Kind == Prefetch,
	}
	demandBit := int32(0)
	if e.demand {
		demandBit = 1
	}
	c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CacheMiss,
		Addr: req.Line, A: c.Level, B: e.slot, C: demandBit, ID: int64(req.Line)})
	if req.Kind == Prefetch {
		c.Stats.PrefetchIssue++
		if req.Tag != NoTag {
			e.tags = append(e.tags, tagged{req.Tag, req.TimedAt})
		}
	}
	if req.Done != nil {
		e.waiters = append(e.waiters, req.Done)
	}
	c.mshr[req.Line] = e

	down := &Request{
		Addr: req.Addr,
		Line: req.Line,
		Kind: Load,
		PC:   -1,
		Tag:  NoTag, TimedAt: -1,
		Done: func(at sim.Ticks) { c.fill(e) },
	}
	if req.Kind == Prefetch {
		down.Kind = Prefetch
	}
	c.next.Access(down)
}

func (c *Cache) fill(e *mshrEntry) {
	now := c.eng.Now()
	c.insert(e)
	delete(c.mshr, e.line)
	c.Bus.Emit(trace.Event{At: now, Kind: trace.CacheFill,
		Addr: e.line, A: c.Level, B: e.slot, ID: int64(e.line)})
	if e.slot >= 0 && int(e.slot) < len(c.slotUsed) {
		c.slotUsed[e.slot] = false
	}

	for _, w := range e.waiters {
		w(now)
	}
	if c.OnPrefetchFill != nil {
		for _, t := range e.tags {
			c.OnPrefetchFill(e.line, t.tag, t.timedAt, true)
		}
	}

	// A register just freed: admit a queued demand miss first, then let the
	// prefetch drainer know.
	if len(c.pendingMiss) > 0 && len(c.mshr) < c.cfg.MSHRs {
		next := c.pendingMiss[0]
		c.pendingMiss = c.pendingMiss[1:]
		c.miss(next)
	}
	if c.OnMSHRFree != nil && len(c.mshr) < c.cfg.MSHRs {
		c.OnMSHRFree()
	}
}

func (c *Cache) insert(e *mshrEntry) {
	set := c.lines[c.setIndex(e.line)]
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	c.evict(victim)

	c.useClock++
	*victim = cacheLine{
		tag:        e.line,
		valid:      true,
		dirty:      e.dirty,
		prefetched: e.initPrefetch,
		// A demand access merged into a prefetch-initiated miss means the
		// prefetched data was (late but) used.
		used:    e.initPrefetch && e.demand,
		lastUse: c.useClock,
	}
	if e.initPrefetch {
		c.Stats.PrefetchFills++
	}
}

func (c *Cache) evict(l *cacheLine) {
	if !l.valid {
		return
	}
	if l.prefetched {
		if l.used {
			c.Stats.PrefetchUsed++
		} else {
			c.Stats.PrefetchDead++
			if c.OnPrefetchDead != nil {
				c.OnPrefetchDead(l.tag)
			}
		}
	}
	if l.dirty {
		c.next.Access(&Request{Addr: l.tag, Line: l.tag, Kind: Writeback, PC: -1, Tag: NoTag, TimedAt: -1})
		c.Stats.Writebacks++
	}
	l.valid = false
}

// FinalizeStats folds lines still resident at end of run into the
// prefetch-utilisation counters. Call once, after simulation completes.
func (c *Cache) FinalizeStats() {
	for _, set := range c.lines {
		for i := range set {
			l := &set[i]
			if l.valid && l.prefetched {
				if l.used {
					c.Stats.PrefetchUsed++
				} else {
					c.Stats.PrefetchDead++
				}
				l.prefetched = false
			}
		}
	}
}

// LookupLatency returns the cache's hit-lookup latency in ticks.
func (c *Cache) LookupLatency() sim.Ticks { return c.clk.Cycles(c.cfg.HitCycles) }

// PendingMisses reports demand misses waiting for a free MSHR (diagnostics).
func (c *Cache) PendingMisses() int { return len(c.pendingMiss) }

// InFlightMSHRs reports occupied miss registers (diagnostics).
func (c *Cache) InFlightMSHRs() int { return len(c.mshr) }
