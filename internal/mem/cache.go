package mem

import (
	"fmt"

	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	HitCycles int64 // lookup latency, in the cache's clock domain
	MSHRs     int
}

// CacheStats counts the events the paper's Figure 8 is built from.
type CacheStats struct {
	DemandLoads   int64 // demand read lookups
	DemandHits    int64 // demand read lookups that hit
	DemandStores  int64
	StoreHits     int64
	Misses        int64 // demand misses sent down (loads + stores)
	MSHRMerges    int64 // accesses merged into an in-flight miss
	LateMerges    int64 // demand accesses that merged into an in-flight prefetch
	MSHRStalls    int64 // demand misses that had to wait for a free MSHR
	PrefetchIssue int64 // prefetch requests accepted by this cache
	PrefetchHits  int64 // prefetches that found the line already present
	PrefetchFills int64 // prefetch fills that allocated a line
	PrefetchDrop  int64 // prefetches dropped for want of an MSHR
	PrefetchUsed  int64 // prefetched lines touched by demand before eviction
	PrefetchDead  int64 // prefetched lines evicted untouched
	Writebacks    int64
}

// ReadHitRate returns the demand-load hit rate (Figure 8b).
func (s CacheStats) ReadHitRate() float64 {
	if s.DemandLoads == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.DemandLoads)
}

// PrefetchUtilisation returns the fraction of prefetched lines that were
// used by a demand access before leaving the cache (Figure 8a). Call
// (*Cache).FinalizeStats first so resident lines are counted.
func (s CacheStats) PrefetchUtilisation() float64 {
	total := s.PrefetchUsed + s.PrefetchDead
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchUsed) / float64(total)
}

type cacheLine struct {
	tag        uint64 // line address
	valid      bool
	dirty      bool
	prefetched bool // brought in by a prefetch
	used       bool // prefetched line later touched by demand
	lastUse    int64
}

// waiter is one completion target merged into an in-flight miss.
type waiter struct {
	h sim.Handler
	a uint64
}

// mshrEntry is one slot of the fixed miss-register file. Entries are never
// heap-allocated per miss: the slot array is sized to cfg.MSHRs at
// construction and the waiters/tags backing slices are recycled across
// misses ([:0] on allocate, capacity retained).
type mshrEntry struct {
	line         uint64
	active       bool
	demand       bool // at least one demand access is waiting
	dirty        bool // a store is among the merged accesses
	initPrefetch bool // the miss was initiated by a prefetch
	waiters      []waiter
	tags         []tagged // prefetch-kernel tags to fire on fill (§4.7)
}

type tagged struct {
	tag     int
	timedAt sim.Ticks
}

// Cache is one set-associative, write-back, write-allocate cache level with
// a fixed number of MSHRs. It is non-blocking: demand misses beyond the MSHR
// count queue; prefetches beyond it are dropped (they are only hints).
type Cache struct {
	eng  *sim.Engine
	clk  sim.Clock
	cfg  CacheConfig
	next Level

	sets     int
	lines    [][]cacheLine
	useClock int64

	// mshrSlots is the miss-register file: a fixed array scanned linearly.
	// At ≤32 entries a scan-and-compare beats map hashing, allocates nothing,
	// and the array index doubles as the stable slot id the trace bus labels
	// MSHR tracks with (replacing the old lazily-allocated slotUsed table).
	mshrSlots []mshrEntry
	mshrCount int

	// lookupQ holds requests whose lookup is in the cache pipeline. Every
	// lookup takes the same HitCycles delay, so completions are FIFO and the
	// scheduled event needs no payload: it pops the head.
	lookupQ []*Request

	pendingMiss []*Request

	// Pool, if set, is the machine-wide request free list this cache releases
	// serviced requests into (and draws writeback requests from). Nil (unit
	// tests) falls back to plain allocation.
	Pool *Pool

	// lookupH/fillH are the typed event/completion adapters; scheduling
	// through them allocates nothing.
	lookupH lookupHandler
	fillH   fillHandler

	// OnDemandAccess, if set, observes every demand load at lookup time:
	// this is the snoop feeding the programmable prefetcher's address
	// filter and the baseline prefetchers' training.
	OnDemandAccess func(addr uint64, pc int, hit bool)

	// OnPrefetchFill, if set, observes tagged prefetched data arriving
	// (or found already resident), feeding prefetch-completion events.
	// filled distinguishes a real memory fill from an already-resident hit.
	OnPrefetchFill func(line uint64, tag int, timedAt sim.Ticks, filled bool)

	// OnMSHRFree, if set, is called whenever an MSHR is released, so the
	// prefetch-request-queue drainer can try again.
	OnMSHRFree func()

	// OnPrefetchDrop, if set, is told when a tagged prefetch is discarded
	// inside the cache (MSHRs filled during the lookup), so the prefetcher
	// can abandon the pending chain.
	OnPrefetchDrop func(line uint64, tag int)

	// OnPrefetchDead, if set, observes prefetched lines evicted without
	// ever being used (diagnostics).
	OnPrefetchDead func(line uint64)

	// Bus, if set, receives CacheMiss/CacheFill/CacheMSHRFull/CachePFDrop
	// events labelled with Level. The MSHR slot index on miss/fill events is
	// the entry's position in the fixed slot array.
	Bus   *trace.Bus
	Level int32

	Stats CacheStats
}

// lookupHandler pops the oldest in-pipeline lookup; FIFO order matches event
// order because every lookup is scheduled with the same fixed delay.
type lookupHandler struct{ c *Cache }

func (h lookupHandler) Handle(sim.Ticks, uint64, uint64) {
	c := h.c
	req := c.lookupQ[0]
	n := copy(c.lookupQ, c.lookupQ[1:])
	c.lookupQ[n] = nil
	c.lookupQ = c.lookupQ[:n]
	c.finishLookup(req)
}

// fillHandler receives the next level's completion for MSHR slot a.
type fillHandler struct{ c *Cache }

func (h fillHandler) Handle(_ sim.Ticks, a, _ uint64) { h.c.fill(int32(a)) }

// NewCache builds a cache in the given clock domain in front of next.
func NewCache(eng *sim.Engine, clk sim.Clock, cfg CacheConfig, next Level) *Cache {
	sets := cfg.SizeBytes / (LineSize * cfg.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d must be a positive power of two", cfg.Name, sets))
	}
	c := &Cache{
		eng:       eng,
		clk:       clk,
		cfg:       cfg,
		next:      next,
		sets:      sets,
		lines:     make([][]cacheLine, sets),
		mshrSlots: make([]mshrEntry, cfg.MSHRs),
	}
	c.lookupH.c = c
	c.fillH.c = c
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, cfg.Ways)
	}
	return c
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

func (c *Cache) setIndex(line uint64) int {
	return int((line / LineSize) % uint64(c.sets))
}

func (c *Cache) lookup(line uint64) *cacheLine {
	set := c.lines[c.setIndex(line)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// findMSHR returns the active slot tracking line, or -1.
func (c *Cache) findMSHR(line uint64) int32 {
	for i := range c.mshrSlots {
		if c.mshrSlots[i].active && c.mshrSlots[i].line == line {
			return int32(i)
		}
	}
	return -1
}

// FreeMSHRs reports how many miss registers are available.
func (c *Cache) FreeMSHRs() int { return c.cfg.MSHRs - c.mshrCount }

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool { return c.lookup(LineAddr(addr)) != nil }

// Access begins servicing a request. The lookup completes HitCycles later;
// the completion target fires at hit time or, on a miss, at fill time. The
// cache takes ownership of req (see Level).
func (c *Cache) Access(req *Request) {
	if req.Line == 0 {
		req.Line = LineAddr(req.Addr)
	}
	if req.Kind == Writeback {
		// Posted dirty eviction from the level above: treat as a fill of
		// ours (write-allocate would be unusual here; just forward if the
		// line is absent, mark dirty if present).
		c.Stats.Writebacks++
		if l := c.lookup(req.Line); l != nil {
			l.dirty = true
			c.Pool.Put(req)
			return
		}
		// Forward the same request down; ownership transfers with it.
		req.Kind = Writeback
		req.Tag, req.TimedAt = NoTag, -1
		req.Done, req.Comp = nil, nil
		c.next.Access(req)
		return
	}
	c.lookupQ = append(c.lookupQ, req)
	c.eng.ScheduleAfter(c.clk.Cycles(c.cfg.HitCycles), c.lookupH, 0, 0)
}

func (c *Cache) finishLookup(req *Request) {
	now := c.eng.Now()
	line := c.lookup(req.Line)
	hit := line != nil

	switch req.Kind {
	case Load:
		c.Stats.DemandLoads++
		if hit {
			c.Stats.DemandHits++
		}
	case Store:
		c.Stats.DemandStores++
		if hit {
			c.Stats.StoreHits++
		}
	case Prefetch:
		if hit {
			c.Stats.PrefetchHits++
		}
	}

	if req.Kind != Prefetch && c.OnDemandAccess != nil {
		c.OnDemandAccess(req.Addr, req.PC, hit)
	}

	if hit {
		c.touch(line, req)
		if req.Kind == Prefetch && req.Tag != NoTag && c.OnPrefetchFill != nil {
			// The data the chain needs is already resident: the
			// prefetch-completion event still fires so the chain continues.
			c.OnPrefetchFill(req.Line, req.Tag, req.TimedAt, false)
		}
		req.Complete(now)
		c.Pool.Put(req)
		return
	}
	c.miss(req)
}

func (c *Cache) touch(line *cacheLine, req *Request) {
	c.useClock++
	line.lastUse = c.useClock
	if req.Kind == Store {
		line.dirty = true
	}
	if req.Kind != Prefetch && line.prefetched && !line.used {
		line.used = true
	}
}

// miss consumes req: it is merged, parked, dropped or sent down, and (except
// when parked waiting for an MSHR) released back to the pool before return.
func (c *Cache) miss(req *Request) {
	if s := c.findMSHR(req.Line); s >= 0 {
		// Merge with the in-flight miss.
		e := &c.mshrSlots[s]
		c.Stats.MSHRMerges++
		if req.Kind != Prefetch {
			if e.initPrefetch && !e.demand {
				c.Stats.LateMerges++
			}
			e.demand = true
			if req.Kind == Store {
				e.dirty = true
			}
		} else if req.Tag != NoTag {
			e.tags = append(e.tags, tagged{req.Tag, req.TimedAt})
		}
		if h := req.Completer(); h != nil {
			e.waiters = append(e.waiters, waiter{h, req.CompA})
		}
		c.Pool.Put(req)
		return
	}
	if c.mshrCount >= c.cfg.MSHRs {
		if req.Kind == Prefetch {
			c.Stats.PrefetchDrop++
			c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CachePFDrop,
				Addr: req.Line, A: c.Level, ID: int64(req.Tag)})
			if req.Tag != NoTag && c.OnPrefetchDrop != nil {
				c.OnPrefetchDrop(req.Line, req.Tag)
			}
			c.Pool.Put(req)
			return
		}
		c.Stats.MSHRStalls++
		c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CacheMSHRFull,
			Addr: req.Line, A: c.Level})
		c.pendingMiss = append(c.pendingMiss, req)
		return
	}
	c.allocateMSHR(req)
}

func (c *Cache) allocateMSHR(req *Request) {
	c.Stats.Misses++
	s := int32(0)
	for c.mshrSlots[s].active {
		s++
	}
	e := &c.mshrSlots[s]
	e.line = req.Line
	e.active = true
	e.demand = req.Kind != Prefetch
	e.dirty = req.Kind == Store
	e.initPrefetch = req.Kind == Prefetch
	e.waiters = e.waiters[:0]
	e.tags = e.tags[:0]
	c.mshrCount++

	demandBit := int32(0)
	if e.demand {
		demandBit = 1
	}
	c.Bus.Emit(trace.Event{At: c.eng.Now(), Kind: trace.CacheMiss,
		Addr: req.Line, A: c.Level, B: s, C: demandBit, ID: int64(req.Line)})
	if req.Kind == Prefetch {
		c.Stats.PrefetchIssue++
		if req.Tag != NoTag {
			e.tags = append(e.tags, tagged{req.Tag, req.TimedAt})
		}
	}
	if h := req.Completer(); h != nil {
		e.waiters = append(e.waiters, waiter{h, req.CompA})
	}

	down := c.Pool.Get()
	down.Addr, down.Line = req.Addr, req.Line
	down.Kind = Load
	if req.Kind == Prefetch {
		down.Kind = Prefetch
	}
	down.PC = -1
	down.Tag, down.TimedAt = NoTag, -1
	down.Comp, down.CompA = c.fillH, uint64(s)
	c.Pool.Put(req)
	c.next.Access(down)
}

func (c *Cache) fill(s int32) {
	now := c.eng.Now()
	e := &c.mshrSlots[s]
	c.insert(e)
	// The slot frees here (exactly where the old map entry was deleted), but
	// its contents stay readable below: nothing inside the waiter/tag
	// callbacks re-enters Access synchronously (core completions and
	// prefetcher kernels only *schedule* work), so the slot cannot be
	// re-allocated before this function returns.
	e.active = false
	c.mshrCount--
	c.Bus.Emit(trace.Event{At: now, Kind: trace.CacheFill,
		Addr: e.line, A: c.Level, B: s, ID: int64(e.line)})

	for i := range e.waiters {
		e.waiters[i].h.Handle(now, e.waiters[i].a, 0)
	}
	if c.OnPrefetchFill != nil {
		for _, t := range e.tags {
			c.OnPrefetchFill(e.line, t.tag, t.timedAt, true)
		}
	}
	for i := range e.waiters {
		e.waiters[i] = waiter{} // drop handler references eagerly
	}

	// A register just freed: admit a queued demand miss first, then let the
	// prefetch drainer know.
	if len(c.pendingMiss) > 0 && c.mshrCount < c.cfg.MSHRs {
		next := c.pendingMiss[0]
		n := copy(c.pendingMiss, c.pendingMiss[1:])
		c.pendingMiss[n] = nil
		c.pendingMiss = c.pendingMiss[:n]
		c.miss(next)
	}
	if c.OnMSHRFree != nil && c.mshrCount < c.cfg.MSHRs {
		c.OnMSHRFree()
	}
}

func (c *Cache) insert(e *mshrEntry) {
	set := c.lines[c.setIndex(e.line)]
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	c.evict(victim)

	c.useClock++
	*victim = cacheLine{
		tag:        e.line,
		valid:      true,
		dirty:      e.dirty,
		prefetched: e.initPrefetch,
		// A demand access merged into a prefetch-initiated miss means the
		// prefetched data was (late but) used.
		used:    e.initPrefetch && e.demand,
		lastUse: c.useClock,
	}
	if e.initPrefetch {
		c.Stats.PrefetchFills++
	}
}

func (c *Cache) evict(l *cacheLine) {
	if !l.valid {
		return
	}
	if l.prefetched {
		if l.used {
			c.Stats.PrefetchUsed++
		} else {
			c.Stats.PrefetchDead++
			if c.OnPrefetchDead != nil {
				c.OnPrefetchDead(l.tag)
			}
		}
	}
	if l.dirty {
		wb := c.Pool.Get()
		wb.Addr, wb.Line = l.tag, l.tag
		wb.Kind = Writeback
		wb.PC = -1
		wb.Tag, wb.TimedAt = NoTag, -1
		c.next.Access(wb)
		c.Stats.Writebacks++
	}
	l.valid = false
}

// FinalizeStats folds lines still resident at end of run into the
// prefetch-utilisation counters. Call once, after simulation completes.
func (c *Cache) FinalizeStats() {
	for _, set := range c.lines {
		for i := range set {
			l := &set[i]
			if l.valid && l.prefetched {
				if l.used {
					c.Stats.PrefetchUsed++
				} else {
					c.Stats.PrefetchDead++
				}
				l.prefetched = false
			}
		}
	}
}

// LookupLatency returns the cache's hit-lookup latency in ticks.
func (c *Cache) LookupLatency() sim.Ticks { return c.clk.Cycles(c.cfg.HitCycles) }

// PendingMisses reports demand misses waiting for a free MSHR (diagnostics).
func (c *Cache) PendingMisses() int { return len(c.pendingMiss) }

// InFlightMSHRs reports occupied miss registers (diagnostics).
func (c *Cache) InFlightMSHRs() int { return c.mshrCount }
