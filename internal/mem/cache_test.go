package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eventpf/internal/sim"
)

// fixedLevel is a next-level stub with constant latency.
type fixedLevel struct {
	eng     *sim.Engine
	latency sim.Ticks
	count   int64
}

func (f *fixedLevel) Access(req *Request) {
	f.count++
	if h := req.Completer(); h != nil {
		a := req.CompA
		f.eng.After(f.latency, func() { h.Handle(f.eng.Now()+f.latency, a, 0) })
	}
}

func newTestCache(eng *sim.Engine, mshrs int) (*Cache, *fixedLevel) {
	next := &fixedLevel{eng: eng, latency: 1000}
	clk := sim.ClockFromMHz(1000)
	c := NewCache(eng, clk, CacheConfig{
		Name: "L1", SizeBytes: 1024, Ways: 2, HitCycles: 2, MSHRs: mshrs,
	}, next)
	return c, next
}

func loadAt(eng *sim.Engine, c *Cache, addr uint64, done func(sim.Ticks)) {
	c.Access(&Request{Addr: addr, Kind: Load, PC: -1, Tag: NoTag, TimedAt: -1, Done: done})
}

func TestCacheMissThenHit(t *testing.T) {
	eng := sim.NewEngine()
	c, next := newTestCache(eng, 4)

	var missAt, hitAt sim.Ticks = -1, -1
	loadAt(eng, c, 0x40, func(at sim.Ticks) { missAt = at })
	eng.Run()
	if missAt < 1000 {
		t.Errorf("miss completed at %d, want ≥ next-level latency", missAt)
	}
	if c.Stats.DemandLoads != 1 || c.Stats.DemandHits != 0 {
		t.Errorf("stats after miss: %+v", c.Stats)
	}

	loadAt(eng, c, 0x48, func(at sim.Ticks) { hitAt = at }) // same line
	start := eng.Now()
	eng.Run()
	if hitAt != start+32 { // 2 cycles at 1 GHz = 32 ticks
		t.Errorf("hit completed at %d, want %d", hitAt, start+32)
	}
	if c.Stats.DemandHits != 1 {
		t.Errorf("hit not counted: %+v", c.Stats)
	}
	if next.count != 1 {
		t.Errorf("next level saw %d accesses, want 1", next.count)
	}
}

func TestCacheMSHRMerge(t *testing.T) {
	eng := sim.NewEngine()
	c, next := newTestCache(eng, 4)
	completions := 0
	loadAt(eng, c, 0x40, func(sim.Ticks) { completions++ })
	loadAt(eng, c, 0x48, func(sim.Ticks) { completions++ }) // same line, merges
	eng.Run()
	if completions != 2 {
		t.Errorf("completions = %d, want 2", completions)
	}
	if next.count != 1 {
		t.Errorf("next level saw %d accesses, want 1 (merge)", next.count)
	}
	if c.Stats.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", c.Stats.MSHRMerges)
	}
}

func TestCacheMSHRLimitQueuesDemand(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 2)
	done := 0
	for i := 0; i < 4; i++ {
		loadAt(eng, c, uint64(0x1000*(i+1)), func(sim.Ticks) { done++ })
	}
	eng.Run()
	if done != 4 {
		t.Errorf("done = %d, want 4 (queued misses must eventually complete)", done)
	}
	if c.Stats.MSHRStalls != 2 {
		t.Errorf("MSHRStalls = %d, want 2", c.Stats.MSHRStalls)
	}
}

func TestCachePrefetchDroppedWhenMSHRsFull(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 1)
	loadAt(eng, c, 0x1000, nil)
	c.Access(&Request{Addr: 0x2000, Kind: Prefetch, PC: -1, Tag: NoTag, TimedAt: -1})
	eng.Run()
	if c.Stats.PrefetchDrop != 1 {
		t.Errorf("PrefetchDrop = %d, want 1", c.Stats.PrefetchDrop)
	}
}

func TestCachePrefetchFillThenDemandHit(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 4)
	c.Access(&Request{Addr: 0x40, Kind: Prefetch, PC: -1, Tag: NoTag, TimedAt: -1})
	eng.Run()
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d, want 1", c.Stats.PrefetchFills)
	}
	hit := false
	loadAt(eng, c, 0x40, func(sim.Ticks) { hit = true })
	eng.Run()
	if !hit || c.Stats.DemandHits != 1 {
		t.Errorf("demand after prefetch: hit=%v stats=%+v", hit, c.Stats)
	}
	c.FinalizeStats()
	if c.Stats.PrefetchUsed != 1 || c.Stats.PrefetchDead != 0 {
		t.Errorf("utilisation counters: %+v", c.Stats)
	}
	if got := c.Stats.PrefetchUtilisation(); got != 1.0 {
		t.Errorf("PrefetchUtilisation = %v, want 1.0", got)
	}
}

func TestCacheDeadPrefetchCounted(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 4)
	c.Access(&Request{Addr: 0x40, Kind: Prefetch, PC: -1, Tag: NoTag, TimedAt: -1})
	eng.Run()
	c.FinalizeStats()
	if c.Stats.PrefetchDead != 1 {
		t.Errorf("PrefetchDead = %d, want 1", c.Stats.PrefetchDead)
	}
}

func TestCacheTaggedPrefetchFiresHook(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 4)
	var fired []int
	c.OnPrefetchFill = func(line uint64, tag int, timedAt sim.Ticks, filled bool) {
		fired = append(fired, tag)
	}
	c.Access(&Request{Addr: 0x40, Kind: Prefetch, PC: -1, Tag: 7, TimedAt: -1})
	eng.Run()
	if len(fired) != 1 || fired[0] != 7 {
		t.Fatalf("fill hook fired %v, want [7]", fired)
	}
	// Prefetch to a resident line must still fire the hook (chain continues).
	c.Access(&Request{Addr: 0x40, Kind: Prefetch, PC: -1, Tag: 9, TimedAt: -1})
	eng.Run()
	if len(fired) != 2 || fired[1] != 9 {
		t.Errorf("resident-line prefetch hook fired %v, want [7 9]", fired)
	}
}

func TestCacheDemandSnoopHook(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 4)
	type obs struct {
		addr uint64
		hit  bool
	}
	var seen []obs
	c.OnDemandAccess = func(addr uint64, pc int, hit bool) { seen = append(seen, obs{addr, hit}) }
	loadAt(eng, c, 0x44, nil)
	eng.Run()
	loadAt(eng, c, 0x44, nil)
	eng.Run()
	if len(seen) != 2 || seen[0].hit || !seen[1].hit {
		t.Errorf("snoop observations = %+v", seen)
	}
	if seen[0].addr != 0x44 {
		t.Errorf("snoop saw addr %#x, want exact address 0x44", seen[0].addr)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 8) // 1 KB, 2-way, 8 sets
	// Three lines mapping to set 0: 0x0, 0x200, 0x400 (stride = sets*64).
	loadAt(eng, c, 0x0, nil)
	eng.Run()
	loadAt(eng, c, 0x200, nil)
	eng.Run()
	loadAt(eng, c, 0x0, nil) // touch 0x0 so 0x200 is LRU
	eng.Run()
	loadAt(eng, c, 0x400, nil) // must evict 0x200
	eng.Run()
	if !c.Contains(0x0) || !c.Contains(0x400) || c.Contains(0x200) {
		t.Errorf("LRU eviction wrong: contains(0)=%v contains(400)=%v contains(200)=%v",
			c.Contains(0x0), c.Contains(0x400), c.Contains(0x200))
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	eng := sim.NewEngine()
	next := &fixedLevel{eng: eng, latency: 10}
	c := NewCache(eng, sim.ClockFromMHz(1000), CacheConfig{
		Name: "L1", SizeBytes: 128, Ways: 1, HitCycles: 1, MSHRs: 4,
	}, next)
	c.Access(&Request{Addr: 0x0, Kind: Store, PC: -1, Tag: NoTag, TimedAt: -1})
	eng.Run()
	before := next.count
	loadAt(eng, c, 0x80, nil) // conflicts with 0x0 in the 2-set direct-mapped cache
	eng.Run()
	// next sees: fill for 0x80 plus a writeback of dirty 0x0.
	if next.count != before+2 {
		t.Errorf("next level accesses = %d, want %d (fill+writeback)", next.count, before+2)
	}
	if c.Stats.Writebacks == 0 {
		t.Error("writeback not counted")
	}
}

func TestOnMSHRFreeKick(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCache(eng, 1)
	kicks := 0
	c.OnMSHRFree = func() { kicks++ }
	loadAt(eng, c, 0x1000, nil)
	eng.Run()
	if kicks != 1 {
		t.Errorf("OnMSHRFree fired %d times, want 1", kicks)
	}
}

// Property: a demand load to an address always completes, and a second load
// to the same line issued after the first completes always hits.
func TestCacheHitAfterFillProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := newTestCache(eng, 12)
		addrs := make([]uint64, 20)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1<<16)) &^ 7
		}
		for _, a := range addrs {
			done := false
			loadAt(eng, c, a, func(sim.Ticks) { done = true })
			eng.Run()
			if !done {
				return false
			}
			hit := false
			loadAt(eng, c, a, func(sim.Ticks) { hit = true })
			hits := c.Stats.DemandHits
			eng.Run()
			if !hit || c.Stats.DemandHits != hits+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
