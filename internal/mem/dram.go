package mem

import (
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// DRAMConfig gives DDR3-style timing in bus cycles. Defaults model
// DDR3-1600 11-11-11-28 on an 800 MHz bus, as in the paper's Table 1.
type DRAMConfig struct {
	BusMHz   int // data bus clock (DDR transfers twice per cycle)
	Banks    int
	TRCD     int // activate to column command, bus cycles
	TCAS     int // column command to first data, bus cycles
	TRP      int // precharge, bus cycles
	RowBytes uint64
	// BurstCycles is the bus occupancy of one 64-byte line: 8 beats at
	// double data rate = 4 bus cycles.
	BurstCycles int
	// CtrlCycles models controller front/back-end and interconnect
	// overhead added to every access, in bus cycles.
	CtrlCycles int
}

// DefaultDRAMConfig returns the Table 1 memory configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		BusMHz:      800,
		Banks:       8,
		TRCD:        11,
		TCAS:        11,
		TRP:         11,
		RowBytes:    8192,
		BurstCycles: 4,
		CtrlCycles:  16,
	}
}

// DRAMStats counts memory-bus traffic. Reads are the quantity the paper's
// "extra memory accesses" analysis uses.
type DRAMStats struct {
	Reads      int64
	Writes     int64
	RowHits    int64
	RowMisses  int64
	RowEmpties int64
	// LatencySum accumulates request→data-return delay for reads, in
	// ticks; LatencySum/Reads is the average read latency.
	LatencySum sim.Ticks
	// BankWaitSum accumulates time spent waiting for a busy bank.
	BankWaitSum sim.Ticks
}

// DRAM is a banked, open-page memory controller model. Each bank tracks its
// open row and busy-until time; the shared data bus serialises bursts.
type DRAM struct {
	eng  *sim.Engine
	cfg  DRAMConfig
	clk  sim.Clock
	bank []bankState

	busFreeAt sim.Ticks
	Stats     DRAMStats

	// Pool, if set, receives serviced requests back: DRAM is the last level,
	// so every request that reaches it dies here. The completion target is
	// resolved and scheduled before the request is recycled, so the event
	// carries no reference to it.
	Pool *Pool

	// Bus, if set, receives one DRAMAccess span per request, labelled with
	// the bank and row state and covering the bank-busy window.
	Bus *trace.Bus
}

type bankState struct {
	busyUntil sim.Ticks
	openRow   uint64
	hasRow    bool
}

// NewDRAM builds a DRAM model on the given engine.
func NewDRAM(eng *sim.Engine, cfg DRAMConfig) *DRAM {
	return &DRAM{
		eng:  eng,
		cfg:  cfg,
		clk:  sim.ClockFromMHz(cfg.BusMHz),
		bank: make([]bankState, cfg.Banks),
	}
}

func (d *DRAM) bankAndRow(line uint64) (int, uint64) {
	rowIdx := line / d.cfg.RowBytes
	return int(rowIdx % uint64(d.cfg.Banks)), rowIdx / uint64(d.cfg.Banks)
}

// Access services a line read or write. For reads, done is called when the
// full burst has arrived; writes are posted (done may be nil).
func (d *DRAM) Access(req *Request) {
	now := d.eng.Now()
	bi, row := d.bankAndRow(req.Line)
	b := &d.bank[bi]

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
		d.Stats.BankWaitSum += b.busyUntil - now
	}

	var access sim.Ticks
	var rowState int32
	switch {
	case b.hasRow && b.openRow == row:
		access = d.clk.Cycles(int64(d.cfg.TCAS))
		d.Stats.RowHits++
		rowState = trace.RowHit
	case b.hasRow:
		access = d.clk.Cycles(int64(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS))
		d.Stats.RowMisses++
		rowState = trace.RowMiss
	default:
		access = d.clk.Cycles(int64(d.cfg.TRCD + d.cfg.TCAS))
		d.Stats.RowEmpties++
		rowState = trace.RowEmpty
	}
	b.openRow, b.hasRow = row, true
	d.Bus.Emit(trace.Event{At: start, Dur: access, Kind: trace.DRAMAccess,
		Addr: req.Line, A: int32(bi), B: rowState})

	// The bank is occupied by the row operations only; controller overhead
	// and the data burst are pipeline/bus time and overlap with other
	// banks' row activity.
	b.busyUntil = start + access

	dataReady := start + access + d.clk.Cycles(int64(d.cfg.CtrlCycles))
	if d.busFreeAt > dataReady {
		dataReady = d.busFreeAt
	}
	burst := d.clk.Cycles(int64(d.cfg.BurstCycles))
	doneAt := dataReady + burst
	d.busFreeAt = doneAt

	if req.Kind == Writeback {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
		d.Stats.LatencySum += doneAt - now
	}
	if h := req.Completer(); h != nil {
		d.eng.Schedule(doneAt, h, req.CompA, 0)
	}
	d.Pool.Put(req)
}
