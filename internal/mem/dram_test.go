package mem

import (
	"testing"

	"eventpf/internal/sim"
)

func dramRead(eng *sim.Engine, d *DRAM, line uint64) sim.Ticks {
	var at sim.Ticks = -1
	d.Access(&Request{Addr: line, Line: line, Kind: Load, PC: -1, Tag: NoTag, TimedAt: -1,
		Done: func(t sim.Ticks) { at = t }})
	eng.Run()
	return at
}

func TestDRAMRowHitFasterThanMiss(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDRAM(eng, DefaultDRAMConfig())

	first := dramRead(eng, d, 0x0) // row empty
	base := eng.Now()
	hit := dramRead(eng, d, 0x40) - base // same row: row hit
	base = eng.Now()
	miss := dramRead(eng, d, 0x100000) - base // same bank, different row

	if first <= 0 {
		t.Fatalf("first access latency %d", first)
	}
	if hit >= miss {
		t.Errorf("row hit (%d ticks) not faster than row miss (%d ticks)", hit, miss)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 || d.Stats.RowEmpties != 1 {
		t.Errorf("row stats = %+v", d.Stats)
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	cfg := DefaultDRAMConfig()
	// Serial: two accesses to the same bank & row region but different rows.
	engA := sim.NewEngine()
	dA := NewDRAM(engA, cfg)
	var lastA sim.Ticks
	dA.Access(&Request{Line: 0, Kind: Load, Done: func(t sim.Ticks) { lastA = t }})
	dA.Access(&Request{Line: cfg.RowBytes * uint64(cfg.Banks), Kind: Load, Done: func(t sim.Ticks) { lastA = maxTicks(lastA, t) }})
	engA.Run()

	// Parallel: two accesses to different banks.
	engB := sim.NewEngine()
	dB := NewDRAM(engB, cfg)
	var lastB sim.Ticks
	dB.Access(&Request{Line: 0, Kind: Load, Done: func(t sim.Ticks) { lastB = t }})
	dB.Access(&Request{Line: cfg.RowBytes, Kind: Load, Done: func(t sim.Ticks) { lastB = maxTicks(lastB, t) }})
	engB.Run()

	if lastB >= lastA {
		t.Errorf("bank-parallel pair (%d) not faster than same-bank pair (%d)", lastB, lastA)
	}
}

func maxTicks(a, b sim.Ticks) sim.Ticks {
	if a > b {
		return a
	}
	return b
}

func TestDRAMBusSerialisesBursts(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDRAMConfig()
	d := NewDRAM(eng, cfg)
	var times []sim.Ticks
	for b := 0; b < 4; b++ {
		d.Access(&Request{Line: cfg.RowBytes * uint64(b), Kind: Load,
			Done: func(t sim.Ticks) { times = append(times, t) }})
	}
	eng.Run()
	burst := sim.ClockFromMHz(cfg.BusMHz).Cycles(int64(cfg.BurstCycles))
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < burst {
			t.Errorf("bursts %d and %d overlap on the bus: %v", i-1, i, times)
		}
	}
}

func TestDRAMWritePosted(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDRAM(eng, DefaultDRAMConfig())
	d.Access(&Request{Line: 0x40, Kind: Writeback})
	eng.Run()
	if d.Stats.Writes != 1 || d.Stats.Reads != 0 {
		t.Errorf("stats = %+v, want 1 write", d.Stats)
	}
}

func TestDRAMSequentialFasterThanRandom(t *testing.T) {
	cfg := DefaultDRAMConfig()

	run := func(stride uint64) sim.Ticks {
		eng := sim.NewEngine()
		d := NewDRAM(eng, cfg)
		var last sim.Ticks
		for i := uint64(0); i < 64; i++ {
			d.Access(&Request{Line: i * stride, Kind: Load,
				Done: func(t sim.Ticks) { last = maxTicks(last, t) }})
		}
		eng.Run()
		return last
	}

	seq := run(LineSize)                                  // walks one row at a time
	rnd := run(cfg.RowBytes*uint64(cfg.Banks) + LineSize) // new row in same bank every time
	if seq >= rnd {
		t.Errorf("sequential (%d ticks) not faster than row-thrashing (%d ticks)", seq, rnd)
	}
}
