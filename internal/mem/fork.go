package mem

import (
	"fmt"

	"eventpf/internal/sim"
)

// This file implements the memory system's half of machine forking (see
// system.Machine.Fork). Forking is two-phase: first every component of the
// fork registers its (parent, fork) handler pairs in a sim.Remap, then every
// component copies the parent's state with stored handlers translated through
// the completed table. The split matters because state frequently captures
// handlers owned by *other* components — an MSHR waiter list holds core
// completion adapters, a TLB record holds the prefetch pump's handler — so no
// state may be copied until every component has registered.
//
// Ownership rule for pooled requests: a fork never aliases its parent's
// *Request objects. Requests parked in a parent's queues (cache lookup
// pipeline, MSHR-full pending list) are cloned into the fork's own pool, so
// both machines can complete and recycle their copies independently.

// CopyFrom deep-copies src's pages into b. Existing page arrays in b are
// reused where the same page is mapped (the common warm-fork case); pages b
// has that src lacks are dropped.
func (b *Backing) CopyFrom(src *Backing) {
	for pa := range b.pages {
		if _, ok := src.pages[pa]; !ok {
			delete(b.pages, pa)
		}
	}
	for pa, pg := range src.pages {
		np, ok := b.pages[pa]
		if !ok {
			np = new([wordsPerPage]uint64)
			b.pages[pa] = np
		}
		*np = *pg
	}
}

// CopyFrom copies src's allocation state so address layout (and therefore
// every address-derived behaviour) matches the parent exactly. The backing
// pointer is left alone: the fork's arena maps pages into the fork's store.
func (a *Arena) CopyFrom(src *Arena) {
	a.next = src.next
	a.regions = append(a.regions[:0], src.regions...)
}

// cloneRequest copies src into a request drawn from pool — the fork's pool,
// never the parent's — translating the completion target. A request carrying
// a closure completion (Done) cannot be forked; steady-state issuers all use
// the typed Comp path.
func cloneRequest(pool *Pool, src *Request, remap *sim.Remap) (*Request, error) {
	if src.Done != nil {
		return nil, fmt.Errorf("mem: cannot fork an in-flight request with a closure completion")
	}
	dst := pool.Get()
	*dst = *src
	if src.Comp != nil {
		h, err := remap.Lookup(src.Comp)
		if err != nil {
			pool.Put(dst)
			return nil, err
		}
		dst.Comp = h
	}
	return dst, nil
}

// RegisterFork records the cache's handler adapters as counterparts of src's,
// so events and completions captured in the parent resolve to this cache.
func (c *Cache) RegisterFork(src *Cache, remap *sim.Remap) {
	remap.Register(src.lookupH, c.lookupH)
	remap.Register(src.fillH, c.fillH)
}

// CopyStateFrom makes c's timing state an exact copy of src's: line arrays,
// LRU clock, the MSHR file (waiter handlers translated through remap), and
// the in-pipeline lookup and MSHR-stalled request queues (cloned into c's
// pool). The two caches must have been built with the same geometry.
func (c *Cache) CopyStateFrom(src *Cache, remap *sim.Remap) error {
	if c.sets != src.sets || c.cfg.Ways != src.cfg.Ways || len(c.mshrSlots) != len(src.mshrSlots) {
		return fmt.Errorf("mem: fork of cache %s into different geometry", src.cfg.Name)
	}
	for i := range src.lines {
		copy(c.lines[i], src.lines[i])
	}
	c.useClock = src.useClock
	c.mshrCount = src.mshrCount
	for i := range src.mshrSlots {
		se, de := &src.mshrSlots[i], &c.mshrSlots[i]
		de.line = se.line
		de.active = se.active
		de.demand = se.demand
		de.dirty = se.dirty
		de.initPrefetch = se.initPrefetch
		de.waiters = de.waiters[:0]
		de.tags = de.tags[:0]
		if !se.active {
			// Inactive slots are re-initialised ([:0]) before reuse; their
			// residual contents are never read.
			continue
		}
		for _, w := range se.waiters {
			h, err := remap.Lookup(w.h)
			if err != nil {
				return fmt.Errorf("%s MSHR %d waiter: %w", src.cfg.Name, i, err)
			}
			de.waiters = append(de.waiters, waiter{h, w.a})
		}
		de.tags = append(de.tags, se.tags...)
	}
	var err error
	if c.lookupQ, err = cloneRequests(c.lookupQ, src.lookupQ, c.Pool, remap); err != nil {
		return fmt.Errorf("%s lookup pipeline: %w", src.cfg.Name, err)
	}
	if c.pendingMiss, err = cloneRequests(c.pendingMiss, src.pendingMiss, c.Pool, remap); err != nil {
		return fmt.Errorf("%s pending misses: %w", src.cfg.Name, err)
	}
	c.Stats = src.Stats
	return nil
}

func cloneRequests(dst, src []*Request, pool *Pool, remap *sim.Remap) ([]*Request, error) {
	for i := range dst {
		dst[i] = nil
	}
	dst = dst[:0]
	for _, r := range src {
		cl, err := cloneRequest(pool, r, remap)
		if err != nil {
			return dst, err
		}
		dst = append(dst, cl)
	}
	return dst, nil
}

// RegisterFork records the TLB's handler adapters as counterparts of src's.
func (t *TLB) RegisterFork(src *TLB, remap *sim.Remap) {
	remap.Register(src.l2HitH, t.l2HitH)
	remap.Register(src.walkDone, t.walkDone)
}

// CopyStateFrom copies src's translation state: both TLB levels, the
// in-flight translation record table (completion handlers translated), the
// walker queue and the LRU clock.
func (t *TLB) CopyStateFrom(src *TLB, remap *sim.Remap) error {
	if len(t.l1) != len(src.l1) || len(t.l2) != len(src.l2) {
		return fmt.Errorf("mem: fork of TLB into different geometry")
	}
	copy(t.l1, src.l1)
	for i := range src.l2 {
		copy(t.l2[i], src.l2[i])
	}
	t.activeWalks = src.activeWalks
	t.walkQueue = append(t.walkQueue[:0], src.walkQueue...)
	if cap(t.recs) < len(src.recs) {
		t.recs = make([]transRec, len(src.recs))
	}
	t.recs = t.recs[:len(src.recs)]
	for i, r := range src.recs {
		h, err := remap.Lookup(r.h)
		if err != nil {
			return fmt.Errorf("TLB record %d: %w", i, err)
		}
		r.h = h
		t.recs[i] = r
	}
	t.recFree = append(t.recFree[:0], src.recFree...)
	t.useClock = src.useClock
	t.Stats = src.Stats
	return nil
}

// CopyStateFrom copies src's bank timing, bus occupancy and counters. DRAM
// resolves and schedules each request's completion at Access time, so it
// holds no live requests and registers no handlers of its own.
func (d *DRAM) CopyStateFrom(src *DRAM) error {
	if len(d.bank) != len(src.bank) {
		return fmt.Errorf("mem: fork of DRAM into different bank count")
	}
	copy(d.bank, src.bank)
	d.busFreeAt = src.busFreeAt
	d.Stats = src.Stats
	return nil
}
