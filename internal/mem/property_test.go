package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eventpf/internal/sim"
)

// Property: the cache never holds the same line in two ways of a set, and
// never holds more valid lines than its capacity, under any access mix.
func TestCacheNoDuplicateLines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := newTestCache(eng, 8)
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(1 << 13))
			kind := Load
			switch rng.Intn(3) {
			case 1:
				kind = Store
			case 2:
				kind = Prefetch
			}
			c.Access(&Request{Addr: addr, Kind: kind, PC: -1, Tag: NoTag, TimedAt: -1})
			if rng.Intn(4) == 0 {
				eng.Run()
			}
		}
		eng.Run()
		seen := map[uint64]int{}
		valid := 0
		for _, set := range c.lines {
			for _, l := range set {
				if l.valid {
					valid++
					seen[l.tag]++
					if seen[l.tag] > 1 {
						return false
					}
				}
			}
		}
		return valid <= c.sets*c.cfg.Ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every demand access eventually completes, regardless of MSHR
// pressure and interleaving with prefetches.
func TestCacheAllDemandsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := newTestCache(eng, 3)
		want, got := 0, 0
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(1 << 14))
			if rng.Intn(3) == 0 {
				c.Access(&Request{Addr: addr, Kind: Prefetch, PC: -1, Tag: NoTag, TimedAt: -1})
				continue
			}
			want++
			c.Access(&Request{Addr: addr, Kind: Load, PC: -1, Tag: NoTag, TimedAt: -1,
				Done: func(sim.Ticks) { got++ }})
		}
		eng.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: prefetch accounting is conserved: fills are eventually
// classified as used or dead once finalized.
func TestCachePrefetchAccountingConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		c, _ := newTestCache(eng, 6)
		for i := 0; i < 250; i++ {
			addr := uint64(rng.Intn(1 << 13))
			kind := Prefetch
			if rng.Intn(2) == 0 {
				kind = Load
			}
			c.Access(&Request{Addr: addr, Kind: kind, PC: -1, Tag: NoTag, TimedAt: -1})
			if rng.Intn(3) == 0 {
				eng.Run()
			}
		}
		eng.Run()
		c.FinalizeStats()
		return c.Stats.PrefetchUsed+c.Stats.PrefetchDead == c.Stats.PrefetchFills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: DRAM completions are monotone per bank and never before the
// request plus its minimum service time.
func TestDRAMCompletionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cfg := DefaultDRAMConfig()
		d := NewDRAM(eng, cfg)
		clk := sim.ClockFromMHz(cfg.BusMHz)
		minService := clk.Cycles(int64(cfg.TCAS + cfg.CtrlCycles + cfg.BurstCycles))
		okAll := true
		for i := 0; i < 100; i++ {
			line := uint64(rng.Intn(1<<20)) &^ 63
			issued := eng.Now()
			d.Access(&Request{Line: line, Kind: Load, Done: func(at sim.Ticks) {
				if at-issued < minService {
					okAll = false
				}
			}})
			if rng.Intn(3) == 0 {
				eng.RunUntil(eng.Now() + sim.Ticks(rng.Intn(500)))
			}
		}
		eng.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: TLB translations always complete and report mapped pages
// correctly.
func TestTLBCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		tlb, bk := newTestTLB(eng)
		mapped := map[uint64]bool{}
		for i := 0; i < 20; i++ {
			page := uint64(rng.Intn(64)) * PageSize
			if rng.Intn(2) == 0 {
				bk.MapPage(page)
				mapped[page] = true
			}
		}
		okAll := true
		pending := 0
		for i := 0; i < 100; i++ {
			page := uint64(rng.Intn(64)) * PageSize
			want := mapped[page]
			pending++
			tlb.Translate(page+uint64(rng.Intn(PageSize)), func(ok bool) {
				pending--
				if ok != want {
					okAll = false
				}
			})
			if rng.Intn(3) == 0 {
				eng.Run()
			}
		}
		eng.Run()
		return okAll && pending == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
