package mem

import "eventpf/internal/sim"

// AccessKind distinguishes request types flowing through the hierarchy.
type AccessKind int

// Request kinds.
const (
	Load      AccessKind = iota // demand read from the core
	Store                       // demand write from the core
	Prefetch                    // prefetch fetch (programmable, stride or GHB)
	Writeback                   // dirty eviction travelling down
)

func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "unknown"
}

// NoTag marks a request that carries no prefetch-kernel tag.
const NoTag = -1

// Request is one memory transaction. Addr is the exact (virtual) byte
// address; caches operate on the containing line.
type Request struct {
	Addr uint64
	Line uint64
	Kind AccessKind

	// PC identifies the static instruction issuing a demand access, used by
	// the stride prefetcher's reference prediction table. -1 if untracked.
	PC int

	// Tag names the data structure a programmable prefetch targets; the
	// prefetcher runs the kernel registered for Tag when the fill arrives
	// (the paper's "memory request tags", §4.7). NoTag if none.
	Tag int

	// TimedAt carries the EWMA chain-start time through a prefetch chain
	// (§4.5); negative when the request is not being timed.
	TimedAt sim.Ticks

	// Done is invoked when the access completes, with the completion time.
	// May be nil for posted writes.
	Done func(at sim.Ticks)
}

// Level is anything that can service memory requests: a cache or DRAM.
type Level interface {
	Access(req *Request)
}
