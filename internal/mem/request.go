package mem

import "eventpf/internal/sim"

// AccessKind distinguishes request types flowing through the hierarchy.
type AccessKind int

// Request kinds.
const (
	Load      AccessKind = iota // demand read from the core
	Store                       // demand write from the core
	Prefetch                    // prefetch fetch (programmable, stride or GHB)
	Writeback                   // dirty eviction travelling down
)

func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "unknown"
}

// NoTag marks a request that carries no prefetch-kernel tag.
const NoTag = -1

// Request is one memory transaction. Addr is the exact (virtual) byte
// address; caches operate on the containing line.
type Request struct {
	Addr uint64
	Line uint64
	Kind AccessKind

	// PC identifies the static instruction issuing a demand access, used by
	// the stride prefetcher's reference prediction table. -1 if untracked.
	PC int

	// Tag names the data structure a programmable prefetch targets; the
	// prefetcher runs the kernel registered for Tag when the fill arrives
	// (the paper's "memory request tags", §4.7). NoTag if none.
	Tag int

	// TimedAt carries the EWMA chain-start time through a prefetch chain
	// (§4.5); negative when the request is not being timed.
	TimedAt sim.Ticks

	// Done is invoked when the access completes, with the completion time.
	// May be nil for posted writes. This is the closure compatibility path;
	// steady-state issuers set Comp/CompA instead so completing a request
	// allocates nothing.
	Done func(at sim.Ticks)

	// Comp, when non-nil, receives the completion as Comp.Handle(at, CompA, 0)
	// and takes precedence over Done.
	Comp  sim.Handler
	CompA uint64
}

// HasDone reports whether any completion target is attached.
func (r *Request) HasDone() bool { return r.Comp != nil || r.Done != nil }

// Completer returns the request's completion target as a Handler: Comp if
// set, otherwise the Done closure wrapped without allocating (func values are
// pointer-shaped), or nil when the request is posted.
func (r *Request) Completer() sim.Handler {
	if r.Comp != nil {
		return r.Comp
	}
	if r.Done != nil {
		return doneFunc(r.Done)
	}
	return nil
}

// Complete fires the completion target, if any, with the completion time.
func (r *Request) Complete(at sim.Ticks) {
	if r.Comp != nil {
		r.Comp.Handle(at, r.CompA, 0)
		return
	}
	if r.Done != nil {
		r.Done(at)
	}
}

// doneFunc adapts a Done closure onto the typed completion path.
type doneFunc func(at sim.Ticks)

func (f doneFunc) Handle(at sim.Ticks, _, _ uint64) { f(at) }

// Pool is a machine-wide free list of Requests. The engine (and every
// component built on it) is confined to one goroutine, so a plain slice —
// no sync.Pool, no locks — is safe; see DESIGN.md §15 for the ownership
// rules (the level that finishes servicing a request releases it).
//
// All methods are nil-receiver safe: components without a pool attached
// (unit tests building a Cache directly) fall back to plain allocation and
// let the GC collect retired requests, exactly the pre-pool behaviour.
type Pool struct {
	free []*Request
}

// NewPool returns an empty request pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed Request. Callers must set every field they need —
// including Kind, PC, Tag and TimedAt — exactly as if they had written a
// struct literal.
func (p *Pool) Get() *Request {
	if p == nil || len(p.free) == 0 {
		return &Request{}
	}
	n := len(p.free) - 1
	r := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	*r = Request{}
	return r
}

// Put recycles a request. The caller must hold the only live reference.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	r.Done, r.Comp = nil, nil // drop references eagerly
	p.free = append(p.free, r)
}

// Level is anything that can service memory requests: a cache or DRAM.
// Access takes ownership of req: the level (or the level it forwards to)
// releases the request to the machine pool once nothing references it.
type Level interface {
	Access(req *Request)
}
