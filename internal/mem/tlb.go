package mem

import (
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// TLBConfig sizes the two-level TLB of Table 1: a 64-entry fully-associative
// L1 and a 4096-entry 8-way L2 with an 8-cycle hit latency, backed by a
// walker with three concurrent walks.
type TLBConfig struct {
	L1Entries   int
	L2Entries   int
	L2Ways      int
	L2HitCycles int64 // in the core clock domain
	Walks       int   // concurrent page-table walks
	WalkCycles  int64 // latency of one walk, in the core clock domain
}

// DefaultTLBConfig returns the Table 1 TLB configuration. The walk latency
// approximates two cache-hierarchy accesses for the (mostly L2-resident)
// page-table levels.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{
		L1Entries:   64,
		L2Entries:   4096,
		L2Ways:      8,
		L2HitCycles: 8,
		Walks:       3,
		WalkCycles:  60,
	}
}

// TLBStats counts translation behaviour.
type TLBStats struct {
	Accesses  int64
	L1Hits    int64
	L2Hits    int64
	Walks     int64
	Faults    int64 // translations of unmapped pages (prefetches drop these)
	WalkQueue int64 // walks that waited for a free walker slot
}

// TLB models the two-level TLB plus a hardware page-table walker. Because
// our simulated address space is identity-mapped, "translation" produces no
// new address — only latency and page-fault information, which is exactly
// what the prefetch path needs (§5.3: the prefetcher walks page tables but
// discards prefetches that would fault).
type TLB struct {
	eng *sim.Engine
	clk sim.Clock
	cfg TLBConfig
	bk  *Backing

	l1 []tlbEntry // fully associative
	l2 [][]tlbEntry

	activeWalks int
	walkQueue   []int32 // indices into recs, FIFO of walks awaiting a walker

	// recs is the in-flight translation table: one record per translation
	// that could not complete synchronously (L2 hit delay or page walk).
	// Records are recycled through recFree, so steady-state translation
	// allocates nothing; events and the walk queue carry record indices.
	recs    []transRec
	recFree []int32

	l2HitH   tlbL2HitHandler
	walkDone tlbWalkDoneHandler

	// useClock orders LRU touches. It is per-TLB (not package-level) so
	// machines running on different goroutines never share mutable state;
	// only the relative order within one TLB's sets matters, so moving the
	// counter into the struct leaves every serial simulation bit-identical.
	useClock int64

	Stats TLBStats

	// Bus, if set, receives one TLBWalk span per page-table walk, labelled
	// with a stable walker slot. Slots are assigned only while tracing.
	Bus        *trace.Bus
	walkerBusy []bool // lazily sized to cfg.Walks on first traced walk

	// mWalkDepth samples the walk-queue depth on every transition; nil
	// unless AttachMetrics was called.
	mWalkDepth *trace.Hist
}

// AttachMetrics registers the walk-queue occupancy histogram with reg.
func (t *TLB) AttachMetrics(reg *trace.Registry) {
	t.mWalkDepth = reg.Hist("tlb/walk-queue-depth", 32)
}

// takeWalker returns the lowest free walker slot index, or -1 when untraced.
func (t *TLB) takeWalker() int32 {
	if t.Bus == nil {
		return -1
	}
	if t.walkerBusy == nil {
		t.walkerBusy = make([]bool, t.cfg.Walks)
	}
	for i, busy := range t.walkerBusy {
		if !busy {
			t.walkerBusy[i] = true
			return int32(i)
		}
	}
	return -1
}

type tlbEntry struct {
	page    uint64
	valid   bool
	lastUse int64
}

// transRec holds one in-flight translation: the page being resolved, the
// completion target, and (for walks) the trace slot and start time.
type transRec struct {
	page  uint64
	h     sim.Handler
	a     uint64
	slot  int32
	start sim.Ticks
}

func (t *TLB) allocRec(page uint64, h sim.Handler, a uint64) int32 {
	if n := len(t.recFree); n > 0 {
		ri := t.recFree[n-1]
		t.recFree = t.recFree[:n-1]
		t.recs[ri] = transRec{page: page, h: h, a: a}
		return ri
	}
	t.recs = append(t.recs, transRec{page: page, h: h, a: a})
	return int32(len(t.recs) - 1)
}

func (t *TLB) freeRec(ri int32) {
	t.recs[ri] = transRec{} // drop the handler reference eagerly
	t.recFree = append(t.recFree, ri)
}

// tlbL2HitHandler completes an L2 TLB hit after the L2 latency; a is the
// translation-record index.
type tlbL2HitHandler struct{ t *TLB }

func (hh tlbL2HitHandler) Handle(at sim.Ticks, a, _ uint64) {
	t := hh.t
	r := t.recs[a]
	t.freeRec(int32(a))
	t.insertLRU(t.l1, r.page)
	r.h.Handle(at, r.a, 1)
}

// tlbWalkDoneHandler finishes a page-table walk; a is the record index.
type tlbWalkDoneHandler struct{ t *TLB }

func (hh tlbWalkDoneHandler) Handle(at sim.Ticks, a, _ uint64) {
	t := hh.t
	r := t.recs[a]
	t.freeRec(int32(a)) // locals copied; the completion below may reuse the slot
	t.activeWalks--
	ok := t.bk.Mapped(r.page)
	okBit := int32(0)
	if ok {
		okBit = 1
	}
	t.Bus.Emit(trace.Event{At: r.start, Dur: t.clk.Cycles(t.cfg.WalkCycles),
		Kind: trace.TLBWalk, Addr: r.page, A: r.slot, B: okBit})
	if r.slot >= 0 && int(r.slot) < len(t.walkerBusy) {
		t.walkerBusy[r.slot] = false
	}
	if ok {
		t.insertLRU(t.l1, r.page)
		set := t.l2[(r.page/PageSize)%uint64(len(t.l2))]
		t.insertLRU(set, r.page)
	} else {
		t.Stats.Faults++
	}
	// Hand the freed walker slot to the queue head BEFORE running the
	// completion: the completion may synchronously request another
	// translation (the prefetch pump does), and letting it take the slot
	// first starves queued demand walks indefinitely.
	if len(t.walkQueue) > 0 && t.activeWalks < t.cfg.Walks {
		next := t.walkQueue[0]
		n := copy(t.walkQueue, t.walkQueue[1:])
		t.walkQueue = t.walkQueue[:n]
		t.mWalkDepth.Observe(len(t.walkQueue))
		t.startWalk(next)
	}
	r.h.Handle(at, r.a, uint64(okBit))
}

// NewTLB builds a TLB over the backing store's page map.
func NewTLB(eng *sim.Engine, clk sim.Clock, cfg TLBConfig, bk *Backing) *TLB {
	t := &TLB{eng: eng, clk: clk, cfg: cfg, bk: bk}
	t.l2HitH.t = t
	t.walkDone.t = t
	t.l1 = make([]tlbEntry, cfg.L1Entries)
	sets := cfg.L2Entries / cfg.L2Ways
	t.l2 = make([][]tlbEntry, sets)
	for i := range t.l2 {
		t.l2[i] = make([]tlbEntry, cfg.L2Ways)
	}
	return t
}

func (t *TLB) findAndTouch(set []tlbEntry, page uint64) bool {
	for i := range set {
		if set[i].valid && set[i].page == page {
			t.useClock++
			set[i].lastUse = t.useClock
			return true
		}
	}
	return false
}

func (t *TLB) insertLRU(set []tlbEntry, page uint64) {
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	t.useClock++
	*victim = tlbEntry{page: page, valid: true, lastUse: t.useClock}
}

// TranslateTo resolves the page containing addr, then fires h.Handle(at, a,
// ok) where ok is 1 if the page is mapped and 0 on a fault. The handler may
// run immediately (L1 TLB hit) or after L2/walk latency. This is the
// allocation-free path: in-flight translations live in a recycled record
// table and events carry record indices.
func (t *TLB) TranslateTo(addr uint64, h sim.Handler, a uint64) {
	t.Stats.Accesses++
	page := PageAddr(addr)

	if t.findAndTouch(t.l1, page) {
		t.Stats.L1Hits++
		h.Handle(t.eng.Now(), a, 1)
		return
	}

	set := t.l2[(page/PageSize)%uint64(len(t.l2))]
	if t.findAndTouch(set, page) {
		t.Stats.L2Hits++
		ri := t.allocRec(page, h, a)
		t.eng.ScheduleAfter(t.clk.Cycles(t.cfg.L2HitCycles), t.l2HitH, uint64(ri), 0)
		return
	}

	ri := t.allocRec(page, h, a)
	if t.activeWalks >= t.cfg.Walks {
		t.Stats.WalkQueue++
		t.walkQueue = append(t.walkQueue, ri)
		t.mWalkDepth.Observe(len(t.walkQueue))
		return
	}
	t.startWalk(ri)
}

func (t *TLB) startWalk(ri int32) {
	t.activeWalks++
	t.Stats.Walks++
	r := &t.recs[ri]
	r.slot = t.takeWalker()
	r.start = t.eng.Now()
	t.eng.ScheduleAfter(t.clk.Cycles(t.cfg.WalkCycles), t.walkDone, uint64(ri), 0)
}

// transFunc adapts a func(ok bool) callback onto the typed translation path
// without allocating (func values are pointer-shaped).
type transFunc func(ok bool)

func (f transFunc) Handle(_ sim.Ticks, _, b uint64) { f(b != 0) }

// Translate resolves the page containing addr, then calls done with whether
// the page is mapped. Closure compatibility shim over TranslateTo.
func (t *TLB) Translate(addr uint64, done func(ok bool)) {
	t.TranslateTo(addr, transFunc(done), 0)
}

// QueuedWalks reports translations waiting for a walker slot (diagnostics).
func (t *TLB) QueuedWalks() int { return len(t.walkQueue) }

// ActiveWalks reports walks in progress (diagnostics).
func (t *TLB) ActiveWalks() int { return t.activeWalks }
