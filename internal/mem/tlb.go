package mem

import (
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// TLBConfig sizes the two-level TLB of Table 1: a 64-entry fully-associative
// L1 and a 4096-entry 8-way L2 with an 8-cycle hit latency, backed by a
// walker with three concurrent walks.
type TLBConfig struct {
	L1Entries   int
	L2Entries   int
	L2Ways      int
	L2HitCycles int64 // in the core clock domain
	Walks       int   // concurrent page-table walks
	WalkCycles  int64 // latency of one walk, in the core clock domain
}

// DefaultTLBConfig returns the Table 1 TLB configuration. The walk latency
// approximates two cache-hierarchy accesses for the (mostly L2-resident)
// page-table levels.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{
		L1Entries:   64,
		L2Entries:   4096,
		L2Ways:      8,
		L2HitCycles: 8,
		Walks:       3,
		WalkCycles:  60,
	}
}

// TLBStats counts translation behaviour.
type TLBStats struct {
	Accesses  int64
	L1Hits    int64
	L2Hits    int64
	Walks     int64
	Faults    int64 // translations of unmapped pages (prefetches drop these)
	WalkQueue int64 // walks that waited for a free walker slot
}

// TLB models the two-level TLB plus a hardware page-table walker. Because
// our simulated address space is identity-mapped, "translation" produces no
// new address — only latency and page-fault information, which is exactly
// what the prefetch path needs (§5.3: the prefetcher walks page tables but
// discards prefetches that would fault).
type TLB struct {
	eng *sim.Engine
	clk sim.Clock
	cfg TLBConfig
	bk  *Backing

	l1 []tlbEntry // fully associative
	l2 [][]tlbEntry

	activeWalks int
	walkQueue   []func()

	// useClock orders LRU touches. It is per-TLB (not package-level) so
	// machines running on different goroutines never share mutable state;
	// only the relative order within one TLB's sets matters, so moving the
	// counter into the struct leaves every serial simulation bit-identical.
	useClock int64

	Stats TLBStats

	// Bus, if set, receives one TLBWalk span per page-table walk, labelled
	// with a stable walker slot. Slots are assigned only while tracing.
	Bus        *trace.Bus
	walkerBusy []bool // lazily sized to cfg.Walks on first traced walk

	// mWalkDepth samples the walk-queue depth on every transition; nil
	// unless AttachMetrics was called.
	mWalkDepth *trace.Hist
}

// AttachMetrics registers the walk-queue occupancy histogram with reg.
func (t *TLB) AttachMetrics(reg *trace.Registry) {
	t.mWalkDepth = reg.Hist("tlb/walk-queue-depth", 32)
}

// takeWalker returns the lowest free walker slot index, or -1 when untraced.
func (t *TLB) takeWalker() int32 {
	if t.Bus == nil {
		return -1
	}
	if t.walkerBusy == nil {
		t.walkerBusy = make([]bool, t.cfg.Walks)
	}
	for i, busy := range t.walkerBusy {
		if !busy {
			t.walkerBusy[i] = true
			return int32(i)
		}
	}
	return -1
}

type tlbEntry struct {
	page    uint64
	valid   bool
	lastUse int64
}

// NewTLB builds a TLB over the backing store's page map.
func NewTLB(eng *sim.Engine, clk sim.Clock, cfg TLBConfig, bk *Backing) *TLB {
	t := &TLB{eng: eng, clk: clk, cfg: cfg, bk: bk}
	t.l1 = make([]tlbEntry, cfg.L1Entries)
	sets := cfg.L2Entries / cfg.L2Ways
	t.l2 = make([][]tlbEntry, sets)
	for i := range t.l2 {
		t.l2[i] = make([]tlbEntry, cfg.L2Ways)
	}
	return t
}

func (t *TLB) findAndTouch(set []tlbEntry, page uint64) bool {
	for i := range set {
		if set[i].valid && set[i].page == page {
			t.useClock++
			set[i].lastUse = t.useClock
			return true
		}
	}
	return false
}

func (t *TLB) insertLRU(set []tlbEntry, page uint64) {
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	t.useClock++
	*victim = tlbEntry{page: page, valid: true, lastUse: t.useClock}
}

// Translate resolves the page containing addr, then calls done with whether
// the page is mapped. The callback may run immediately (L1 TLB hit) or
// after L2/walk latency.
func (t *TLB) Translate(addr uint64, done func(ok bool)) {
	t.Stats.Accesses++
	page := PageAddr(addr)

	if t.findAndTouch(t.l1, page) {
		t.Stats.L1Hits++
		done(true)
		return
	}

	set := t.l2[(page/PageSize)%uint64(len(t.l2))]
	if t.findAndTouch(set, page) {
		t.Stats.L2Hits++
		t.eng.After(t.clk.Cycles(t.cfg.L2HitCycles), func() {
			t.insertLRU(t.l1, page)
			done(true)
		})
		return
	}

	start := func() {
		t.activeWalks++
		t.Stats.Walks++
		slot := t.takeWalker()
		walkStart := t.eng.Now()
		t.eng.After(t.clk.Cycles(t.cfg.WalkCycles), func() {
			t.activeWalks--
			ok := t.bk.Mapped(page)
			okBit := int32(0)
			if ok {
				okBit = 1
			}
			t.Bus.Emit(trace.Event{At: walkStart, Dur: t.clk.Cycles(t.cfg.WalkCycles),
				Kind: trace.TLBWalk, Addr: page, A: slot, B: okBit})
			if slot >= 0 && int(slot) < len(t.walkerBusy) {
				t.walkerBusy[slot] = false
			}
			if ok {
				t.insertLRU(t.l1, page)
				t.insertLRU(set, page)
			} else {
				t.Stats.Faults++
			}
			// Hand the freed walker slot to the queue head BEFORE running
			// the completion: done() may synchronously request another
			// translation (the prefetch pump does), and letting it take
			// the slot first starves queued demand walks indefinitely.
			if len(t.walkQueue) > 0 && t.activeWalks < t.cfg.Walks {
				next := t.walkQueue[0]
				t.walkQueue = t.walkQueue[1:]
				t.mWalkDepth.Observe(len(t.walkQueue))
				next()
			}
			done(ok)
		})
	}
	if t.activeWalks >= t.cfg.Walks {
		t.Stats.WalkQueue++
		t.walkQueue = append(t.walkQueue, start)
		t.mWalkDepth.Observe(len(t.walkQueue))
		return
	}
	start()
}

// QueuedWalks reports translations waiting for a walker slot (diagnostics).
func (t *TLB) QueuedWalks() int { return len(t.walkQueue) }

// ActiveWalks reports walks in progress (diagnostics).
func (t *TLB) ActiveWalks() int { return t.activeWalks }
