package mem

import (
	"testing"

	"eventpf/internal/sim"
)

func newTestTLB(eng *sim.Engine) (*TLB, *Backing) {
	bk := NewBacking()
	cfg := TLBConfig{L1Entries: 4, L2Entries: 16, L2Ways: 2, L2HitCycles: 8, Walks: 2, WalkCycles: 60}
	return NewTLB(eng, sim.ClockFromMHz(1000), cfg, bk), bk
}

func translate(eng *sim.Engine, t *TLB, addr uint64) (ok bool, delay sim.Ticks) {
	start := eng.Now()
	done := false
	t.Translate(addr, func(o bool) { ok, done = o, true })
	eng.Run()
	if !done {
		panic("translate never completed")
	}
	return ok, eng.Now() - start
}

func TestTLBWalkThenHit(t *testing.T) {
	eng := sim.NewEngine()
	tlb, bk := newTestTLB(eng)
	bk.MapPage(0x4000)

	ok, d1 := translate(eng, tlb, 0x4008)
	if !ok || d1 == 0 {
		t.Fatalf("first translation ok=%v delay=%d, want walk latency", ok, d1)
	}
	ok, d2 := translate(eng, tlb, 0x4010)
	if !ok || d2 != 0 {
		t.Errorf("second translation ok=%v delay=%d, want L1 TLB hit (0)", ok, d2)
	}
	if tlb.Stats.Walks != 1 || tlb.Stats.L1Hits != 1 {
		t.Errorf("stats = %+v", tlb.Stats)
	}
}

func TestTLBFault(t *testing.T) {
	eng := sim.NewEngine()
	tlb, _ := newTestTLB(eng)
	ok, _ := translate(eng, tlb, 0xdead000)
	if ok {
		t.Error("translation of unmapped page succeeded")
	}
	if tlb.Stats.Faults != 1 {
		t.Errorf("Faults = %d, want 1", tlb.Stats.Faults)
	}
}

func TestTLBL2HitAfterL1Eviction(t *testing.T) {
	eng := sim.NewEngine()
	tlb, bk := newTestTLB(eng)
	// Fill well past the 4-entry L1 TLB.
	for i := uint64(0); i < 8; i++ {
		bk.MapPage(0x10000 + i*PageSize)
		translate(eng, tlb, 0x10000+i*PageSize)
	}
	walksBefore := tlb.Stats.Walks
	ok, d := translate(eng, tlb, 0x10000) // evicted from L1, should be in L2
	if !ok {
		t.Fatal("translation failed")
	}
	if tlb.Stats.Walks != walksBefore {
		t.Error("required a walk; expected L2 TLB hit")
	}
	if d == 0 {
		t.Error("L2 TLB hit had zero latency; expected L2HitCycles")
	}
}

func TestTLBWalkConcurrencyLimit(t *testing.T) {
	eng := sim.NewEngine()
	tlb, bk := newTestTLB(eng)
	for i := uint64(0); i < 4; i++ {
		bk.MapPage(0x20000 + i*0x10000)
	}
	var doneTimes []sim.Ticks
	for i := uint64(0); i < 4; i++ {
		tlb.Translate(0x20000+i*0x10000, func(bool) { doneTimes = append(doneTimes, eng.Now()) })
	}
	eng.Run()
	if tlb.Stats.WalkQueue != 2 {
		t.Errorf("WalkQueue = %d, want 2 (only 2 concurrent walks)", tlb.Stats.WalkQueue)
	}
	if len(doneTimes) != 4 {
		t.Fatalf("completions = %d, want 4", len(doneTimes))
	}
	if doneTimes[3] <= doneTimes[0] {
		t.Error("queued walks completed as fast as concurrent ones")
	}
}
