package mem

// Functional warming for SMARTS-style interval sampling: ops consumed during
// a fast-forward interval still update cache tag arrays, LRU state and TLB
// contents — otherwise every measurement interval would start from a
// cold-ish hierarchy and overstate miss rates — but touch no simulated time,
// schedule no events and count no stats (sampled statistics are estimated
// from the detailed intervals alone).

// WarmAccess applies the tag/LRU effect of one demand access without any
// timing: a hit touches the line, a miss installs it over the LRU victim.
// Dirty victims vanish silently (functional data lives in the backing store,
// which the interpreter keeps correct independently of the cache models).
// It reports whether the access hit, so callers can warm the next level on
// a miss.
func (c *Cache) WarmAccess(addr uint64, store bool) (hit bool) {
	line := LineAddr(addr)
	if l := c.lookup(line); l != nil {
		c.useClock++
		l.lastUse = c.useClock
		if store {
			l.dirty = true
		}
		if l.prefetched && !l.used {
			l.used = true
		}
		return true
	}
	set := c.lines[c.setIndex(line)]
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	// Keep the prefetch-utilisation classification honest for lines a warm
	// eviction displaces; everything else stays out of the stats.
	if victim.valid && victim.prefetched {
		if victim.used {
			c.Stats.PrefetchUsed++
		} else {
			c.Stats.PrefetchDead++
		}
	}
	c.useClock++
	*victim = cacheLine{tag: line, valid: true, dirty: store, lastUse: c.useClock}
	return false
}

// WarmAccess applies the effect of one translation on TLB contents without
// timing, walker occupancy or stats.
func (t *TLB) WarmAccess(addr uint64) {
	page := PageAddr(addr)
	if t.findAndTouch(t.l1, page) {
		return
	}
	set := t.l2[(page/PageSize)%uint64(len(t.l2))]
	if t.findAndTouch(set, page) {
		t.insertLRU(t.l1, page)
		return
	}
	if t.bk.Mapped(page) {
		t.insertLRU(t.l1, page)
		t.insertLRU(set, page)
	}
}
