package ppu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses kernel source text into instructions. The syntax is one
// instruction per line, with optional "label:" lines and ";" comments:
//
//	; on_A_load: prefetch two lines ahead (figure 4b)
//	        vaddr  r1
//	        addi   r1, r1, 128
//	        pf     r1
//	        halt
//
// Branch targets are labels. Registers are r0–r15, globals g0–g63 and EWMA
// groups e0–e7 where the instruction takes them.
func Assemble(src string) ([]Instr, error) {
	type fixup struct {
		instr int
		label string
		line  int
	}
	var prog []Instr
	labels := map[string]int{}
	var fixups []fixup

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(prog)
			continue
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mnem, args := fields[0], fields[1:]
		errf := func(format string, a ...interface{}) error {
			return fmt.Errorf("line %d (%q): %s", lineNo+1, strings.TrimSpace(raw), fmt.Sprintf(format, a...))
		}

		reg := func(s string) (uint8, error) {
			if !strings.HasPrefix(s, "r") {
				return 0, errf("expected register, got %q", s)
			}
			n, err := strconv.Atoi(s[1:])
			if err != nil || n < 0 || n >= NumRegs {
				return 0, errf("bad register %q", s)
			}
			return uint8(n), nil
		}
		num := func(s string) (int64, error) {
			n, err := strconv.ParseInt(s, 0, 64)
			if err != nil {
				return 0, errf("bad immediate %q", s)
			}
			return n, nil
		}
		prefixed := func(s, prefix string, limit int) (int64, error) {
			if !strings.HasPrefix(s, prefix) {
				return 0, errf("expected %s-operand, got %q", prefix, s)
			}
			n, err := strconv.Atoi(s[len(prefix):])
			if err != nil || n < 0 || n >= limit {
				return 0, errf("bad %s-operand %q", prefix, s)
			}
			return int64(n), nil
		}
		want := func(n int) error {
			if len(args) != n {
				return errf("want %d operands, got %d", n, len(args))
			}
			return nil
		}

		var in Instr
		var err error
		emit3R := func(op Opcode) {
			if err = want(3); err != nil {
				return
			}
			in.Op = op
			if in.Rd, err = reg(args[0]); err != nil {
				return
			}
			if in.Ra, err = reg(args[1]); err != nil {
				return
			}
			in.Rb, err = reg(args[2])
		}
		emit2RI := func(op Opcode) {
			if err = want(3); err != nil {
				return
			}
			in.Op = op
			if in.Rd, err = reg(args[0]); err != nil {
				return
			}
			if in.Ra, err = reg(args[1]); err != nil {
				return
			}
			in.Imm, err = num(args[2])
		}
		branch := func(op Opcode) {
			if err = want(3); err != nil {
				return
			}
			in.Op = op
			if in.Ra, err = reg(args[0]); err != nil {
				return
			}
			if in.Rb, err = reg(args[1]); err != nil {
				return
			}
			fixups = append(fixups, fixup{len(prog), args[2], lineNo + 1})
		}

		switch mnem {
		case "halt":
			if err = want(0); err == nil {
				in.Op = HALT
			}
		case "movi":
			if err = want(2); err == nil {
				in.Op = MOVI
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = num(args[1])
				}
			}
		case "mov":
			if err = want(2); err == nil {
				in.Op = MOV
				if in.Rd, err = reg(args[0]); err == nil {
					in.Ra, err = reg(args[1])
				}
			}
		case "add":
			emit3R(ADD)
		case "sub":
			emit3R(SUB)
		case "mul":
			emit3R(MUL)
		case "div":
			emit3R(DIV)
		case "and":
			emit3R(AND)
		case "or":
			emit3R(OR)
		case "xor":
			emit3R(XOR)
		case "shl":
			emit3R(SHL)
		case "shr":
			emit3R(SHR)
		case "addi":
			emit2RI(ADDI)
		case "andi":
			emit2RI(ANDI)
		case "muli":
			emit2RI(MULI)
		case "shli":
			emit2RI(SHLI)
		case "shri":
			emit2RI(SHRI)
		case "ldlinei":
			if err = want(2); err == nil {
				in.Op = LDLINEI
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = num(args[1])
				}
			}
		case "ldline":
			if err = want(2); err == nil {
				in.Op = LDLINE
				if in.Rd, err = reg(args[0]); err == nil {
					in.Ra, err = reg(args[1])
				}
			}
		case "lddata":
			if err = want(1); err == nil {
				in.Op = LDDATA
				in.Rd, err = reg(args[0])
			}
		case "vaddr":
			if err = want(1); err == nil {
				in.Op = VADDR
				in.Rd, err = reg(args[0])
			}
		case "ldg":
			if err = want(2); err == nil {
				in.Op = LDG
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = prefixed(args[1], "g", NumGlobals)
				}
			}
		case "stg":
			if err = want(2); err == nil {
				in.Op = STG
				if in.Imm, err = prefixed(args[0], "g", NumGlobals); err == nil {
					in.Ra, err = reg(args[1])
				}
			}
		case "ldewma":
			if err = want(2); err == nil {
				in.Op = LDEWMA
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = prefixed(args[1], "e", 8)
				}
			}
		case "pf":
			if err = want(1); err == nil {
				in.Op = PF
				in.Ra, err = reg(args[0])
			}
		case "pftag":
			if err = want(2); err == nil {
				in.Op = PFTAG
				if in.Ra, err = reg(args[0]); err == nil {
					in.Imm, err = num(args[1])
				}
			}
		case "beq":
			branch(BEQ)
		case "bne":
			branch(BNE)
		case "blt":
			branch(BLT)
		case "bge":
			branch(BGE)
		case "jmp":
			if err = want(1); err == nil {
				in.Op = JMP
				fixups = append(fixups, fixup{len(prog), args[0], lineNo + 1})
			}
		default:
			return nil, errf("unknown mnemonic %q", mnem)
		}
		if err != nil {
			return nil, err
		}
		prog = append(prog, in)
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(target)
	}
	return prog, nil
}

// MustAssemble is Assemble, panicking on error; for fixed kernels compiled
// into benchmark definitions.
func MustAssemble(src string) []Instr {
	prog, err := Assemble(src)
	if err != nil {
		panic("ppu: " + err.Error())
	}
	return prog
}
