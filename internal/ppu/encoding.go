package ppu

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of PPU instructions, used to measure real kernel sizes
// (the paper's §4.4 observes at most 1 KB of kernel code per application
// and sizes the shared instruction cache at 4 KiB accordingly).
//
// Most instructions encode in one 32-bit word:
//
//	[31:24] opcode  [23:20] rd  [19:16] ra  [15:12] rb  [11:0] imm12
//
// An imm12 of extFlag32/extFlag64 marks an extended immediate carried in
// the following one or two words, the way a microcontroller ISA splices
// large constants. Inline immediates that would collide with the marker
// values are promoted to the extended form.
const (
	extFlag32 = 0x7FE // one extension word follows (32-bit immediate)
	extFlag64 = 0x7FF // two extension words follow (64-bit immediate)

	immInlineMax = 0x7FD      // largest inline immediate
	immInlineMin = -(1 << 11) // most negative inline immediate (0x800..0xFFF)
)

// Encode serialises a kernel to its binary form.
func Encode(prog []Instr) []byte {
	out := make([]byte, 0, 4*len(prog))
	w := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	for _, in := range prog {
		head := uint32(in.Op)<<24 | uint32(in.Rd&0xF)<<20 | uint32(in.Ra&0xF)<<16 | uint32(in.Rb&0xF)<<12
		switch {
		case in.Imm >= immInlineMin && in.Imm <= immInlineMax:
			w(head | uint32(in.Imm)&0xFFF)
		case in.Imm == int64(int32(in.Imm)):
			w(head | extFlag32)
			w(uint32(in.Imm))
		default:
			w(head | extFlag64)
			w(uint32(in.Imm))
			w(uint32(uint64(in.Imm) >> 32))
		}
	}
	return out
}

// Decode parses a binary kernel back into instructions.
func Decode(b []byte) ([]Instr, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("ppu: binary length %d not word-aligned", len(b))
	}
	words := make([]uint32, len(b)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	var prog []Instr
	for i := 0; i < len(words); i++ {
		word := words[i]
		in := Instr{
			Op: Opcode(word >> 24),
			Rd: uint8(word >> 20 & 0xF),
			Ra: uint8(word >> 16 & 0xF),
			Rb: uint8(word >> 12 & 0xF),
		}
		if in.Op > JMP {
			return nil, fmt.Errorf("ppu: invalid opcode %d at word %d", in.Op, i)
		}
		switch imm12 := word & 0xFFF; imm12 {
		case extFlag32:
			if i+1 >= len(words) {
				return nil, fmt.Errorf("ppu: truncated 32-bit immediate at word %d", i)
			}
			i++
			in.Imm = int64(int32(words[i]))
		case extFlag64:
			if i+2 >= len(words) {
				return nil, fmt.Errorf("ppu: truncated 64-bit immediate at word %d", i)
			}
			in.Imm = int64(uint64(words[i+2])<<32 | uint64(words[i+1]))
			i += 2
		default:
			in.Imm = int64(int32(imm12<<20) >> 20) // sign-extend 12 bits
		}
		prog = append(prog, in)
	}
	return prog, nil
}

// EncodedSize returns the binary size of a kernel in bytes.
func EncodedSize(prog []Instr) int { return len(Encode(prog)) }
