package ppu

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := MustAssemble(`
		vaddr  r1
		addi   r1, r1, 128
		movi   r2, 4096
		ldg    r3, g7
		mul    r2, r2, r3
		ldewma r4, e1
		pftag  r1, 3
	loop:
		bge    r2, r4, loop
		pf     r2
		halt
	`)
	b := Encode(prog)
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("decoded %d instrs, want %d", len(back), len(prog))
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Errorf("instr %d: %v != %v", i, prog[i], back[i])
		}
	}
}

func TestEncodeImmediateWidths(t *testing.T) {
	cases := []struct {
		imm   int64
		words int
	}{
		{0, 1}, {100, 1}, {-100, 1}, {2045, 1}, {-2048, 1},
		{2046, 2}, {4096, 2}, {-3000, 2}, {1 << 30, 2}, {-(1 << 30), 2},
		{1 << 40, 3}, {-(1 << 40), 3}, {1<<63 - 1, 3},
	}
	for _, tc := range cases {
		prog := []Instr{{Op: MOVI, Rd: 1, Imm: tc.imm}}
		if got := len(Encode(prog)) / 4; got != tc.words {
			t.Errorf("imm %d encoded in %d words, want %d", tc.imm, got, tc.words)
		}
		back, err := Decode(Encode(prog))
		if err != nil {
			t.Fatalf("imm %d: %v", tc.imm, err)
		}
		if back[0].Imm != tc.imm {
			t.Errorf("imm %d decoded as %d", tc.imm, back[0].Imm)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned input accepted")
	}
	if _, err := Decode([]byte{0, 0, 0, 0xFF}); err == nil {
		t.Error("invalid opcode accepted")
	}
	// Extension marker with no following word.
	bad := Encode([]Instr{{Op: MOVI, Rd: 1, Imm: 1 << 40}})[:4]
	if _, err := Decode(bad); err == nil {
		t.Error("truncated immediate accepted")
	}
}

// Property: encode→decode is the identity for arbitrary valid instructions.
func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int64) bool {
		in := Instr{
			Op: Opcode(int(op) % (int(JMP) + 1)),
			Rd: rd % NumRegs, Ra: ra % NumRegs, Rb: rb % NumRegs,
			Imm: imm,
		}
		back, err := Decode(Encode([]Instr{in}))
		return err == nil && len(back) == 1 && back[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBenchmarkKernelsFitTheInstructionCache(t *testing.T) {
	// The paper: "a maximum of 1KB is fetched ... for the entirety of each
	// application". Check a representative kernel set stays well under the
	// 4 KiB shared instruction cache.
	kernels := [][]Instr{
		MustAssemble("vaddr r1\naddi r1, r1, 512\npftag r1, 2\nhalt"),
		MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g0
			add    r1, r1, r2
			pf     r1
			halt
		`),
		MustAssemble(`
			vaddr  r1
			lddata r2
			andi   r3, r1, 56
			movi   r4, 56
			beq    r3, r4, f
			addi   r5, r3, 8
			ldline r6, r5
			jmp    c
		f:
			addi   r6, r2, 16
		c:
			ldg    r8, g0
			mov    r9, r2
		l:
			bge    r9, r6, d
			shli   r10, r9, 3
			add    r10, r10, r8
			pftag  r10, 4
			addi   r9, r9, 8
			jmp    l
		d:
			halt
		`),
	}
	total := 0
	for _, k := range kernels {
		total += EncodedSize(k)
	}
	if total > 1024 {
		t.Errorf("representative kernels encode to %d bytes, expected ≤ 1 KiB", total)
	}
}
