// Package ppu implements the programmable prefetch units: a 64-bit RISC
// instruction set sized like the paper's Cortex-M0+-class cores, a small
// assembler for writing kernels by hand (and for the compiler to target),
// and a resumable virtual machine. PPUs have no access to memory: a kernel
// sees only the triggering virtual address, the captured cache line, 16
// local registers, the prefetcher's global registers and the EWMA
// look-ahead values — and its only side effect is emitting prefetches.
package ppu

import "fmt"

// Opcode is a PPU instruction opcode.
type Opcode int

// The PPU instruction set.
const (
	HALT Opcode = iota // end of kernel

	MOVI // rd = imm
	MOV  // rd = ra

	ADD // rd = ra + rb
	SUB // rd = ra - rb
	MUL // rd = ra * rb
	DIV // rd = ra / rb (rb==0 terminates the event, §5.1)
	AND // rd = ra & rb
	OR  // rd = ra | rb
	XOR // rd = ra ^ rb
	SHL // rd = ra << rb
	SHR // rd = ra >> rb (logical)

	ADDI // rd = ra + imm
	ANDI // rd = ra & imm
	MULI // rd = ra * imm
	SHLI // rd = ra << imm
	SHRI // rd = ra >> imm

	LDLINE  // rd = captured-line word at byte offset (ra & 63)
	LDLINEI // rd = captured-line word at byte offset (imm & 63)
	LDDATA  // rd = captured-line word at the trigger address's offset
	VADDR   // rd = triggering virtual address
	LDG     // rd = global register imm
	STG     // global register imm = ra
	LDEWMA  // rd = current look-ahead distance of EWMA group imm

	PF    // emit prefetch of address ra (end of chain: no further event)
	PFTAG // emit prefetch of address ra tagged imm: fill triggers that kernel

	BEQ // if ra == rb jump to absolute instruction index imm
	BNE // if ra != rb
	BLT // if ra <  rb (unsigned)
	BGE // if ra >= rb (unsigned)
	JMP // jump to absolute instruction index imm
)

var opNames = map[Opcode]string{
	HALT: "halt", MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", AND: "and",
	OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", ANDI: "andi", MULI: "muli", SHLI: "shli", SHRI: "shri",
	LDLINE: "ldline", LDLINEI: "ldlinei", LDDATA: "lddata", VADDR: "vaddr",
	LDG: "ldg", STG: "stg", LDEWMA: "ldewma",
	PF: "pf", PFTAG: "pftag",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", JMP: "jmp",
}

func (o Opcode) String() string { return opNames[o] }

// NumRegs is the number of PPU local registers.
const NumRegs = 16

// NumGlobals is the number of prefetcher global registers shared by all
// PPUs, written by configuration instructions on the main core.
const NumGlobals = 64

// Instr is one PPU instruction.
type Instr struct {
	Op         Opcode
	Rd, Ra, Rb uint8
	Imm        int64
}

func (in Instr) String() string {
	r := func(x uint8) string { return fmt.Sprintf("r%d", x) }
	switch in.Op {
	case HALT:
		return "halt"
	case MOVI:
		return fmt.Sprintf("movi %s, %d", r(in.Rd), in.Imm)
	case MOV, LDLINE, LDDATA, VADDR:
		if in.Op == LDDATA || in.Op == VADDR {
			return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
		}
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Rd), r(in.Ra))
	case ADD, SUB, MUL, DIV, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Ra), r(in.Rb))
	case ADDI, ANDI, MULI, SHLI, SHRI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.Imm)
	case LDLINEI:
		return fmt.Sprintf("ldlinei %s, %d", r(in.Rd), in.Imm)
	case LDG:
		return fmt.Sprintf("ldg %s, g%d", r(in.Rd), in.Imm)
	case STG:
		return fmt.Sprintf("stg g%d, %s", in.Imm, r(in.Ra))
	case LDEWMA:
		return fmt.Sprintf("ldewma %s, e%d", r(in.Rd), in.Imm)
	case PF:
		return fmt.Sprintf("pf %s", r(in.Ra))
	case PFTAG:
		return fmt.Sprintf("pftag %s, %d", r(in.Ra), in.Imm)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, r(in.Ra), r(in.Rb), in.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Imm)
	}
	return "?"
}

// Disassemble renders a kernel with instruction indices.
func Disassemble(prog []Instr) string {
	s := ""
	for i, in := range prog {
		s += fmt.Sprintf("%3d: %s\n", i, in)
	}
	return s
}
