package ppu

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

type emitted struct {
	addr  uint64
	tag   int
	cycle int64
}

func run(t *testing.T, src string, env *Env) (*VM, []emitted) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var out []emitted
	if env == nil {
		env = &Env{}
	}
	if env.Globals == nil {
		env.Globals = new([NumGlobals]uint64)
	}
	if env.EmitPF == nil {
		env.EmitPF = func(addr uint64, tag int, cycle int64) bool {
			out = append(out, emitted{addr, tag, cycle})
			return false
		}
	}
	vm := NewVM(prog, env)
	if vm.Run() != Done {
		t.Fatal("kernel did not run to completion")
	}
	return vm, out
}

func TestFigure4OnALoad(t *testing.T) {
	// Figure 4(b) on_A_load: prefetch two cache lines (128 bytes) ahead.
	src := `
		vaddr r1
		addi  r1, r1, 128
		pf    r1
		halt
	`
	_, out := run(t, src, &Env{VAddr: 0x4000})
	if len(out) != 1 || out[0].addr != 0x4080 || out[0].tag != NoTag {
		t.Errorf("emitted %+v, want one untagged prefetch of 0x4080", out)
	}
}

func TestFigure4OnAPrefetch(t *testing.T) {
	// Figure 4(b) on_A_prefetch: fetch = base(B) + data*8, tagged so the
	// fill runs the next kernel in the chain.
	src := `
		lddata r1
		shli   r1, r1, 3
		ldg    r2, g1
		add    r1, r1, r2
		pftag  r1, 2
		halt
	`
	env := &Env{VAddr: 0x4008, Globals: new([NumGlobals]uint64)}
	env.Line[1] = 77 // word at offset 8 within the line
	env.Globals[1] = 0x100000
	_, out := run(t, src, env)
	if len(out) != 1 || out[0].addr != 0x100000+77*8 || out[0].tag != 2 {
		t.Errorf("emitted %+v, want tagged prefetch of B base + 77*8", out)
	}
}

func TestLoopFirstN(t *testing.T) {
	// Prefetch the first 4 words starting at the trigger address — the
	// "first N hash buckets" idiom from §7.1.
	src := `
		vaddr r1
		movi  r2, 0
		movi  r3, 4
	loop:
		bge   r2, r3, done
		pf    r1
		addi  r1, r1, 8
		addi  r2, r2, 1
		jmp   loop
	done:
		halt
	`
	_, out := run(t, src, &Env{VAddr: 0x9000})
	if len(out) != 4 {
		t.Fatalf("emitted %d prefetches, want 4", len(out))
	}
	for i, e := range out {
		if e.addr != 0x9000+uint64(i)*8 {
			t.Errorf("prefetch %d to %#x", i, e.addr)
		}
	}
}

func TestCyclesCountInstructions(t *testing.T) {
	vm, _ := run(t, "movi r1, 5\naddi r1, r1, 1\nhalt", nil)
	if vm.Cycles() != 3 {
		t.Errorf("cycles = %d, want 3", vm.Cycles())
	}
}

func TestDivideByZeroTerminatesEvent(t *testing.T) {
	src := `
		movi r1, 10
		movi r2, 0
		div  r3, r1, r2
		pf   r1
		halt
	`
	vm, out := run(t, src, nil)
	if !vm.Faulted() {
		t.Error("divide by zero did not fault")
	}
	if len(out) != 0 {
		t.Error("instructions after the fault still executed")
	}
}

func TestRunawayKernelTerminated(t *testing.T) {
	vm, _ := run(t, "loop:\njmp loop", nil)
	if !vm.Faulted() {
		t.Error("runaway kernel not terminated")
	}
	if vm.Cycles() < MaxKernelInstrs {
		t.Errorf("cycles = %d, want ≥ budget", vm.Cycles())
	}
}

func TestEWMAAccess(t *testing.T) {
	src := `
		ldewma r1, e0
		muli   r1, r1, 8
		vaddr  r2
		add    r1, r1, r2
		pf     r1
		halt
	`
	env := &Env{VAddr: 0x1000, Lookahead: func(g int) uint64 {
		if g != 0 {
			t.Errorf("lookahead group %d, want 0", g)
		}
		return 6
	}}
	_, out := run(t, src, env)
	if len(out) != 1 || out[0].addr != 0x1000+48 {
		t.Errorf("emitted %+v, want prefetch at vaddr+6*8", out)
	}
}

func TestBlockedModeSuspendsAndResumes(t *testing.T) {
	prog := MustAssemble(`
		vaddr r1
		pftag r1, 3
		addi  r1, r1, 64
		pf    r1
		halt
	`)
	var out []emitted
	env := &Env{VAddr: 0x2000, Globals: new([NumGlobals]uint64)}
	env.EmitPF = func(addr uint64, tag int, cycle int64) bool {
		out = append(out, emitted{addr, tag, cycle})
		return tag != NoTag // block on tagged prefetches only
	}
	vm := NewVM(prog, env)
	if vm.Run() != Blocked {
		t.Fatal("tagged prefetch did not block")
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d before block, want 1", len(out))
	}
	if vm.Run() != Done {
		t.Fatal("resume did not finish")
	}
	if len(out) != 2 || out[1].addr != 0x2040 || out[1].tag != NoTag {
		t.Errorf("after resume emitted %+v", out)
	}
}

func TestStoreGlobalVisible(t *testing.T) {
	g := new([NumGlobals]uint64)
	run(t, "movi r1, 99\nstg g5, r1\nhalt", &Env{Globals: g})
	if g[5] != 99 {
		t.Errorf("global g5 = %d, want 99", g[5])
	}
}

func TestLineAccessVariants(t *testing.T) {
	env := &Env{VAddr: 0x1010, Globals: new([NumGlobals]uint64)}
	for i := range env.Line {
		env.Line[i] = uint64(i) * 11
	}
	src := `
		lddata  r1      ; word at trigger offset 0x10 -> index 2 -> 22
		ldlinei r2, 24  ; index 3 -> 33
		movi    r3, 40
		ldline  r4, r3  ; index 5 -> 55
		add     r5, r1, r2
		add     r5, r5, r4
		shli    r5, r5, 0
		pf      r5
		halt
	`
	_, out := run(t, src, env)
	if len(out) != 1 || out[0].addr != 22+33+55 {
		t.Errorf("line access sum = %v, want 110", out)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1",
		"movi r99, 1",
		"pf 42",
		"jmp nowhere",
		"ldg r1, g200",
		"addi r1, r2",
		"dup:\ndup:\nhalt",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

// Property: assemble → disassemble → reassemble produces identical programs,
// for the label-free subset of instructions.
func TestAssemblerRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		ops := []string{
			"movi r%d, %d", "addi r%d, r%d, %d", "shli r%d, r%d, %d",
		}
		var lines []string
		s := seed
		next := func(mod int) int { s = s*1664525 + 1013904223; return int(s>>16) % mod }
		for i := 0; i < 10; i++ {
			switch tmpl := ops[next(len(ops))]; tmpl {
			case "movi r%d, %d":
				lines = append(lines, fmt.Sprintf(tmpl, next(NumRegs), next(1000)))
			default:
				lines = append(lines, fmt.Sprintf(tmpl, next(NumRegs), next(NumRegs), next(64)))
			}
		}
		lines = append(lines, "halt")
		src := strings.Join(lines, "\n")
		p1, err := Assemble(src)
		if err != nil {
			return false
		}
		var dis []string
		for _, in := range p1 {
			dis = append(dis, in.String())
		}
		p2, err := Assemble(strings.Join(dis, "\n"))
		if err != nil {
			return false
		}
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: any random program terminates within the instruction budget and
// never touches state outside its environment.
func TestVMAlwaysTerminates(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((uint64(rng) >> 33) % uint64(mod))
			return v
		}
		prog := make([]Instr, next(40)+1)
		for i := range prog {
			prog[i] = Instr{
				Op:  Opcode(next(int(JMP) + 1)),
				Rd:  uint8(next(NumRegs)),
				Ra:  uint8(next(NumRegs)),
				Rb:  uint8(next(NumRegs)),
				Imm: int64(next(len(prog) + 8)), // branch targets may overshoot
			}
			// Keep global/ewma indices in range.
			switch prog[i].Op {
			case LDG, STG:
				prog[i].Imm = int64(next(NumGlobals))
			case LDEWMA:
				prog[i].Imm = int64(next(8))
			}
		}
		env := &Env{Globals: new([NumGlobals]uint64), Lookahead: func(int) uint64 { return 4 }}
		emitted := 0
		env.EmitPF = func(uint64, int, int64) bool { emitted++; return false }
		vm := NewVM(prog, env)
		if vm.Run() != Done {
			return false
		}
		return vm.Cycles() <= MaxKernelInstrs+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: blocked mode preserves the prefetch sequence — running the same
// kernel with block-on-tag and resuming yields exactly the prefetches of a
// non-blocking run.
func TestBlockedModeSameEmissions(t *testing.T) {
	prog := MustAssemble(`
		vaddr r1
		movi  r2, 0
		movi  r3, 5
	loop:
		bge   r2, r3, done
		pftag r1, 7
		addi  r1, r1, 64
		addi  r2, r2, 1
		jmp   loop
	done:
		pf    r1
		halt
	`)
	collect := func(block bool) []uint64 {
		var out []uint64
		env := &Env{VAddr: 0x1000, Globals: new([NumGlobals]uint64)}
		env.EmitPF = func(addr uint64, tag int, cycle int64) bool {
			out = append(out, addr)
			return block && tag != NoTag
		}
		vm := NewVM(prog, env)
		for vm.Run() == Blocked {
		}
		return out
	}
	a, b := collect(false), collect(true)
	if len(a) != len(b) {
		t.Fatalf("emission counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("emission %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}
