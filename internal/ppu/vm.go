package ppu

import "eventpf/internal/mem"

// Env is everything a kernel may read or affect while handling one event.
type Env struct {
	// VAddr is the virtual address that triggered the event.
	VAddr uint64
	// Line is the captured cache line (for prefetch-fill events, and for
	// load events where the snooped line is forwarded).
	Line [mem.LineSize / 8]uint64
	// Globals are the shared prefetcher global registers.
	Globals *[NumGlobals]uint64
	// Lookahead returns the current EWMA look-ahead distance for a group.
	Lookahead func(group int) uint64
	// EmitPF receives each generated prefetch: the target address, the
	// kernel tag to run on fill (NoTag for end-of-chain), and the kernel
	// cycle count at which the instruction executed, so the prefetcher can
	// timestamp the request. In blocked mode (§7.2, Figure 11) returning
	// block=true suspends the VM at this instruction.
	EmitPF func(addr uint64, tag int, cycle int64) (block bool)
}

// NoTag marks an untagged (end-of-chain) prefetch.
const NoTag = -1

// Status reports how a VM run ended.
type Status int

// VM run outcomes.
const (
	// Done: the kernel halted (or faulted — faults terminate events
	// silently per §5.1; see VM.Faulted).
	Done Status = iota
	// Blocked: EmitPF requested a stall (blocked mode); call Run again to
	// resume after the fill returns.
	Blocked
)

// MaxKernelInstrs bounds one event's execution; exceeding it terminates the
// event, standing in for the paper's trap-on-misbehaviour rule.
const MaxKernelInstrs = 4096

// VM executes one kernel invocation. A fresh VM is created per event (PPUs
// keep no state between events, §5.1); it is resumable only to support
// blocked mode.
type VM struct {
	prog []Instr
	env  *Env

	regs    [NumRegs]uint64
	pc      int
	cycles  int64
	faulted bool
}

// NewVM prepares a kernel invocation.
func NewVM(prog []Instr, env *Env) *VM {
	return &VM{prog: prog, env: env}
}

// Reset reinitialises m for a fresh invocation of prog, so one VM value can
// be reused across kernel runs that never suspend (the non-blocked mode).
func (m *VM) Reset(prog []Instr, env *Env) {
	*m = VM{prog: prog, env: env}
}

// Env returns the environment the VM is bound to, so a machine fork can read
// the trigger address and captured line of a suspended (blocked-mode) VM when
// rebuilding its environment against fork-owned state.
func (m *VM) Env() *Env { return m.env }

// Clone returns a copy of m suspended at the same instruction — registers,
// pc, cycle count and fault flag copy by value; the kernel program is
// immutable and shared. The clone is bound to env, which the caller builds
// against its own state (a forked VM must not emit prefetches into, or read
// globals from, the parent machine).
func (m *VM) Clone(env *Env) *VM {
	c := *m
	c.env = env
	return &c
}

// Cycles returns how many PPU cycles the kernel has consumed so far. Every
// instruction costs one cycle except DIV, which costs eight (the
// microcontroller-class cores have no fast divider).
func (m *VM) Cycles() int64 { return m.cycles }

// Faulted reports whether the event was terminated by a fault (division by
// zero or instruction-budget exhaustion).
func (m *VM) Faulted() bool { return m.faulted }

// Run executes until the kernel halts, faults, or blocks.
func (m *VM) Run() Status {
	for {
		if m.pc < 0 || m.pc >= len(m.prog) {
			return Done // running off the end behaves as halt
		}
		if m.cycles >= MaxKernelInstrs {
			m.faulted = true
			return Done
		}
		in := m.prog[m.pc]
		m.cycles++
		switch in.Op {
		case HALT:
			return Done
		case MOVI:
			m.regs[in.Rd] = uint64(in.Imm)
		case MOV:
			m.regs[in.Rd] = m.regs[in.Ra]
		case ADD:
			m.regs[in.Rd] = m.regs[in.Ra] + m.regs[in.Rb]
		case SUB:
			m.regs[in.Rd] = m.regs[in.Ra] - m.regs[in.Rb]
		case MUL:
			m.regs[in.Rd] = m.regs[in.Ra] * m.regs[in.Rb]
		case DIV:
			if m.regs[in.Rb] == 0 {
				m.faulted = true // divide by zero terminates the event (§5.1)
				return Done
			}
			m.cycles += 7
			m.regs[in.Rd] = m.regs[in.Ra] / m.regs[in.Rb]
		case AND:
			m.regs[in.Rd] = m.regs[in.Ra] & m.regs[in.Rb]
		case OR:
			m.regs[in.Rd] = m.regs[in.Ra] | m.regs[in.Rb]
		case XOR:
			m.regs[in.Rd] = m.regs[in.Ra] ^ m.regs[in.Rb]
		case SHL:
			m.regs[in.Rd] = m.regs[in.Ra] << (m.regs[in.Rb] & 63)
		case SHR:
			m.regs[in.Rd] = m.regs[in.Ra] >> (m.regs[in.Rb] & 63)
		case ADDI:
			m.regs[in.Rd] = m.regs[in.Ra] + uint64(in.Imm)
		case ANDI:
			m.regs[in.Rd] = m.regs[in.Ra] & uint64(in.Imm)
		case MULI:
			m.regs[in.Rd] = m.regs[in.Ra] * uint64(in.Imm)
		case SHLI:
			m.regs[in.Rd] = m.regs[in.Ra] << (uint64(in.Imm) & 63)
		case SHRI:
			m.regs[in.Rd] = m.regs[in.Ra] >> (uint64(in.Imm) & 63)
		case LDLINE:
			m.regs[in.Rd] = m.env.Line[(m.regs[in.Ra]&63)/8]
		case LDLINEI:
			m.regs[in.Rd] = m.env.Line[(uint64(in.Imm)&63)/8]
		case LDDATA:
			m.regs[in.Rd] = m.env.Line[(m.env.VAddr&63)/8]
		case VADDR:
			m.regs[in.Rd] = m.env.VAddr
		case LDG:
			m.regs[in.Rd] = m.env.Globals[in.Imm]
		case STG:
			m.env.Globals[in.Imm] = m.regs[in.Ra]
		case LDEWMA:
			m.regs[in.Rd] = m.env.Lookahead(int(in.Imm))
		case PF:
			m.pc++
			if m.env.EmitPF(m.regs[in.Ra], NoTag, m.cycles) {
				return Blocked
			}
			continue
		case PFTAG:
			m.pc++
			if m.env.EmitPF(m.regs[in.Ra], int(in.Imm), m.cycles) {
				return Blocked
			}
			continue
		case BEQ:
			if m.regs[in.Ra] == m.regs[in.Rb] {
				m.pc = int(in.Imm)
				continue
			}
		case BNE:
			if m.regs[in.Ra] != m.regs[in.Rb] {
				m.pc = int(in.Imm)
				continue
			}
		case BLT:
			if m.regs[in.Ra] < m.regs[in.Rb] {
				m.pc = int(in.Imm)
				continue
			}
		case BGE:
			if m.regs[in.Ra] >= m.regs[in.Rb] {
				m.pc = int(in.Imm)
				continue
			}
		case JMP:
			m.pc = int(in.Imm)
			continue
		}
		m.pc++
	}
}
