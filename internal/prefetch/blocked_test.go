package prefetch

// Regression tests for blocked-mode (Figure 11) PPU accounting: chained and
// resumed kernels must be charged for their cycles and checked for faults,
// the blocked path must emit the same kernel trace events as the event
// path, and a tagged prefetch dropped at any stage of the pipeline —
// request queue, TLB, MSHR — must resume its suspended PPU exactly once.

import (
	"testing"

	"eventpf/internal/ppu"
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

func blockedConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPPUs = 1
	cfg.Blocked = true
	return cfg
}

func countKind(tr *RingTracer, k TraceKind) int {
	n := 0
	for _, e := range tr.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// assertUnitIdle checks the single PPU ended the run free and was released
// exactly once — a drop that resumed it twice would free it twice, one that
// never resumed it would leave it busy forever.
func assertUnitIdle(t *testing.T, f *fixture, tr *RingTracer) {
	t.Helper()
	if f.pf.units[0].busy {
		t.Error("PPU 0 still busy after the run: suspended unit never resumed")
	}
	if got := countKind(tr, trace.PFUnitFree); got != 1 {
		t.Errorf("PPU freed %d times, want exactly 1", got)
	}
	if len(f.pf.pending) != 0 {
		t.Errorf("%d pending prefetches survive the run", len(f.pf.pending))
	}
}

// A chained kernel running on the blocked path must have its fault counted,
// exactly as a fresh event-path kernel would.
func TestBlockedChainedKernelFaultCounted(t *testing.T) {
	f := newFixture(t, blockedConfig())
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble(`
		movi r1, 1
		movi r2, 0
		div  r3, r1, r2
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.KernelRuns != 2 {
		t.Errorf("KernelRuns = %d, want 2", f.pf.Stats.KernelRuns)
	}
	if f.pf.Stats.KernelFaults != 1 {
		t.Errorf("KernelFaults = %d, want 1 (chained kernel divides by zero)", f.pf.Stats.KernelFaults)
	}
	assertUnitIdle(t, f, tr)
}

// A kernel that faults after being resumed (it blocked on a tagged prefetch
// first) must also be counted: the fault check has to run on the stack-pop
// path, not just on fresh invocations.
func TestBlockedResumedKernelFaultCounted(t *testing.T) {
	f := newFixture(t, blockedConfig())
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`))
	// Blocks on its own tagged prefetch, then divides by zero on resume.
	f.pf.RegisterKernel(2, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pftag r1, 3
		movi  r4, 1
		movi  r5, 0
		div   r6, r4, r5
		halt
	`))
	f.pf.RegisterKernel(3, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.KernelRuns != 3 {
		t.Errorf("KernelRuns = %d, want 3", f.pf.Stats.KernelRuns)
	}
	if f.pf.Stats.KernelFaults != 1 {
		t.Errorf("KernelFaults = %d, want 1 (resumed kernel divides by zero)", f.pf.Stats.KernelFaults)
	}
	assertUnitIdle(t, f, tr)
}

// A resumed VM burns PPU cycles like a fresh one: a kernel that spins for
// ~2000 cycles after its blocking prefetch returns must push the unit's
// busy time well past the bare fill wait (2000 cycles at the 1 GHz PPU
// clock is 32000 ticks; the stub memory fill is ~2000 ticks).
func TestBlockedResumeChargesPPUCycles(t *testing.T) {
	f := newFixture(t, blockedConfig())
	arr := f.arena.AllocWords("A", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		movi  r2, 0
		movi  r3, 1000
	loop:
		addi  r2, r2, 1
		blt   r2, r3, loop
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.KernelFaults != 0 {
		t.Fatalf("KernelFaults = %d, want 0", f.pf.Stats.KernelFaults)
	}
	if got := f.pf.units[0].busyTicks; got < sim.Ticks(30000) {
		t.Errorf("busyTicks = %d, want ≥ 30000 (resumed kernel's ~2000 PPU cycles not charged)", got)
	}
}

// The blocked path reports kernel invocations on the trace bus just like
// the event path: a two-kernel chain shows two PFKernel events.
func TestBlockedChainEmitsKernelTrace(t *testing.T) {
	f := newFixture(t, blockedConfig())
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if got := countKind(tr, TraceKernel); got != 2 {
		t.Fatalf("PFKernel events = %d, want 2 (chained kernel missing from trace)", got)
	}
	kernels := map[int32]bool{}
	for _, e := range tr.Events() {
		if e.Kind == TraceKernel {
			kernels[e.A] = true
		}
	}
	if !kernels[1] || !kernels[2] {
		t.Errorf("traced kernel ids = %v, want {1, 2}", kernels)
	}
}

// A tagged prefetch rejected by the full request queue must resume the
// suspended PPU exactly once. The queue is one deep and the pump is gated
// by exhausted MSHRs, so the kernel's second (tagged) request is rejected
// at enqueue.
func TestBlockedDropAtRequestQueueResumesOnce(t *testing.T) {
	cfg := blockedConfig()
	cfg.ReqQueue = 1
	f := newFixture(t, cfg)
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)
	fill := f.arena.AllocWords("F", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pf    r1
		addi  r1, r1, 64
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	// Occupy 11 of the 12 L1 MSHRs with demand misses outside the filter
	// range; the observed load takes the twelfth, so the pump stays gated
	// and the kernel's untagged request parks in the one queue slot.
	for i := uint64(0); i < 11; i++ {
		f.demandLoad(fill.Base + i*64)
	}
	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.ReqDropped != 1 {
		t.Fatalf("ReqDropped = %d, want 1; stats = %+v", f.pf.Stats.ReqDropped, f.pf.Stats)
	}
	if f.pf.Stats.KernelRuns != 1 {
		t.Errorf("KernelRuns = %d, want 1 (dropped chain must not run its kernel)", f.pf.Stats.KernelRuns)
	}
	dropped := false
	for _, e := range tr.Events() {
		if e.Kind == TraceDrop && e.A == trace.DropQueue {
			dropped = true
		}
	}
	if !dropped {
		t.Error("no PFDrop event with reason DropQueue")
	}
	assertUnitIdle(t, f, tr)
}

// A tagged prefetch to an unmapped page is discarded at translation (§5.3)
// and must resume the suspended PPU exactly once.
func TestBlockedDropAtTLBResumesOnce(t *testing.T) {
	f := newFixture(t, blockedConfig())
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 8)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		movi  r2, 1048576
		add   r1, r1, r2
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.TLBDrops != 1 {
		t.Fatalf("TLBDrops = %d, want 1", f.pf.Stats.TLBDrops)
	}
	if f.pf.Stats.Issued != 0 {
		t.Errorf("Issued = %d, want 0", f.pf.Stats.Issued)
	}
	if f.pf.Stats.KernelRuns != 1 {
		t.Errorf("KernelRuns = %d, want 1 (chained kernel must not run after a TLB drop)", f.pf.Stats.KernelRuns)
	}
	assertUnitIdle(t, f, tr)
}

// A tagged prefetch whose translation succeeds but finds no free MSHR is
// discarded and must resume the suspended PPU exactly once. The request
// passes the pump gate while MSHRs are free, then demand misses exhaust
// them during the ~300-tick page walk.
func TestBlockedDropAtMSHRResumesOnce(t *testing.T) {
	f := newFixture(t, blockedConfig())
	tr := NewRingTracer(256)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)
	fill := f.arena.AllocWords("F", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble("halt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	// The cold-started kernel emits its request at ~900 ticks and the
	// first-touch translation walks the page table for 300 more; fill the
	// remaining 11 MSHRs inside that window so the post-translate check
	// fails.
	f.eng.At(1000, func() {
		for i := uint64(0); i < 11; i++ {
			f.demandLoad(fill.Base + i*64)
		}
	})
	f.eng.Run()

	if f.pf.Stats.MSHRDrops == 0 {
		t.Fatalf("MSHRDrops = 0, want ≥ 1; stats = %+v", f.pf.Stats)
	}
	if f.pf.Stats.KernelRuns != 1 {
		t.Errorf("KernelRuns = %d, want 1 (chained kernel must not run after an MSHR drop)", f.pf.Stats.KernelRuns)
	}
	dropped := false
	for _, e := range tr.Events() {
		if e.Kind == TraceDrop && e.A == trace.DropMSHR {
			dropped = true
		}
	}
	if !dropped {
		t.Error("no PFDrop event with reason DropMSHR")
	}
	assertUnitIdle(t, f, tr)
}

// A prefetch whose target is already resident closes through the resident
// counters, not the fill-latency mean: resident lookups return in the
// cache's hit time and would make real fills look fast.
func TestResidentHitSplitFromRealFills(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1024)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pf    r1
		halt
	`))
	// Range covers only the first line so the warming load below does not
	// itself trigger the kernel.
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.Base + 64,
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	// Warm the kernel's target line with a demand miss…
	f.demandLoad(arr.Base + 128)
	f.eng.Run()
	// …then trigger the kernel: its prefetch hits the resident line.
	f.demandLoad(arr.Base)
	f.eng.Run()

	s := &f.pf.Stats
	if s.Issued != 1 {
		t.Fatalf("Issued = %d, want 1", s.Issued)
	}
	if s.ResidentHits != 1 || s.FillCount != 0 {
		t.Errorf("ResidentHits = %d, FillCount = %d; want 1, 0", s.ResidentHits, s.FillCount)
	}
	if s.ResidentLatSum <= 0 {
		t.Errorf("ResidentLatSum = %d, want > 0", s.ResidentLatSum)
	}
	if s.FillLatencySum != 0 {
		t.Errorf("FillLatencySum = %d, want 0 (resident hit leaked into fill stats)", s.FillLatencySum)
	}
}
