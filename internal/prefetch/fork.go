package prefetch

import (
	"fmt"

	"eventpf/internal/ppu"
	"eventpf/internal/sim"
)

// RegisterFork records the prefetcher's handler adapters as counterparts of
// src's, so pending enqueue/translation/inflight/unit-free events captured
// from the parent resolve to this prefetcher after a machine fork.
func (p *Prefetcher) RegisterFork(src *Prefetcher, remap *sim.Remap) {
	remap.Register(src.enqueueH, p.enqueueH)
	remap.Register(src.pumpH, p.pumpH)
	remap.Register(src.inflH, p.inflH)
	remap.Register(src.freeH, p.freeH)
}

// CopyStateFrom copies src's complete state: kernel registry (programs are
// immutable and shared), filter table, globals, queues, unit occupancy
// (suspended blocked-mode VMs are cloned and their EmitPF callbacks rebuilt
// against this prefetcher), the pending-prefetch table, pump records and
// EWMA state. The fork's clock may differ from src's — that is the sweep
// fan-out case — but the unit count must match.
func (p *Prefetcher) CopyStateFrom(src *Prefetcher) error {
	if len(p.units) != len(src.units) {
		return fmt.Errorf("prefetch: fork with different PPU count (%d vs %d)", len(p.units), len(src.units))
	}
	p.Enabled = src.Enabled
	for id, prog := range src.kernels {
		p.kernels[id] = prog
	}
	for id, w := range src.warmed {
		p.warmed[id] = w
	}
	p.filter = append(p.filter[:0], src.filter...)
	p.globals = src.globals
	p.obsQueue = append(p.obsQueue[:0], src.obsQueue...)
	p.reqQueue = append(p.reqQueue[:0], src.reqQueue...)
	for i := range src.units {
		su, du := &src.units[i], &p.units[i]
		du.busy = su.busy
		du.busyStart = su.busyStart
		du.busyTicks = su.busyTicks
		du.stack = du.stack[:0]
		for _, e := range su.stack {
			srcEnv := e.vm.Env()
			env := &ppu.Env{
				VAddr:     srcEnv.VAddr,
				Line:      srcEnv.Line,
				Globals:   &p.globals,
				Lookahead: p.lookahead,
			}
			vm := e.vm.Clone(env)
			env.EmitPF = p.emitFunc(i, e.kernel, e.start, e.timedAt, e.ewma)
			du.stack = append(du.stack, suspended{vm: vm, kernel: e.kernel, start: e.start, timedAt: e.timedAt, ewma: e.ewma})
		}
	}
	for id := range p.pending {
		delete(p.pending, id)
	}
	for id, q := range src.pending {
		cp := p.getPend()
		*cp = *q
		p.pending[id] = cp
	}
	p.nextObs = src.nextObs
	p.pumpRecs = append(p.pumpRecs[:0], src.pumpRecs...)
	p.pumpFree = append(p.pumpFree[:0], src.pumpFree...)
	p.ewma = src.ewma
	p.pumping = src.pumping
	p.inFlight = src.inFlight
	p.Stats = src.Stats
	return nil
}
