// Package prefetch implements the paper's contribution: the event-triggered
// programmable prefetcher attached to the L1 data cache (§4). Demand loads
// snooped from the core and prefetched data arriving at L1 pass through an
// address filter; matching events queue in a small observation queue; a
// scheduler hands them to the lowest-numbered free programmable prefetch
// unit (PPU); kernels running on the PPUs generate new — possibly tagged —
// prefetch requests, which drain through a FIFO request queue into free L1
// MSHRs after TLB translation. EWMA calculators provide dynamic look-ahead
// distances (§4.5); memory-request tags re-trigger kernels when fills for
// linked structures arrive (§4.7).
package prefetch

import (
	"eventpf/internal/mem"
	"eventpf/internal/ppu"
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// NoKernel marks an unset kernel slot in the filter table.
const NoKernel = -1

// Config sizes the prefetcher (Table 1 defaults: 12 PPUs at 1 GHz, 40-entry
// observation queue, 200-entry prefetch request queue).
type Config struct {
	NumPPUs  int
	PPUClock sim.Clock
	ObsQueue int
	ReqQueue int
	// Blocked switches to the Figure 11 comparison mode: a tagged (chained)
	// prefetch stalls its PPU until the data returns, and the chained
	// kernel runs on the same unit.
	Blocked bool
}

// DefaultConfig returns the Table 1 prefetcher configuration.
func DefaultConfig() Config {
	return Config{
		NumPPUs:  12,
		PPUClock: sim.ClockFromMHz(1000),
		ObsQueue: 40,
		ReqQueue: 200,
	}
}

// RangeConfig is one address-filter entry (§4.2): a virtual address range
// with the kernels to run on load and prefetch-fill observations, plus EWMA
// roles.
type RangeConfig struct {
	Lo, Hi     uint64
	LoadKernel int  // kernel run when the core loads in [Lo,Hi); NoKernel = none
	PFKernel   int  // kernel run when a prefetch fill lands in [Lo,Hi)
	EWMAGroup  int  // EWMA group for the flags below; -1 = none
	Interval   bool // demand loads here feed the group's inter-access EWMA
	TimedStart bool // load events here start a timed prefetch chain
	TimedEnd   bool // fills here close a timed chain into the load-time EWMA
}

// Stats counts prefetcher activity.
type Stats struct {
	LoadObservations int64 // filtered demand-load events
	FillObservations int64 // filtered prefetch-fill events
	ObsDropped       int64 // observation-queue overflow (oldest dropped)
	KernelRuns       int64
	KernelFaults     int64
	ICacheMisses     int64     // cold kernel starts (fetch from memory, §4.4)
	PFGenerated      int64     // prefetch addresses produced by kernels
	ReqDropped       int64     // request-queue overflow
	FillLatencySum   sim.Ticks // total generation→fill delay of real memory fills
	FillCount        int64     // prefetches that actually fetched from memory
	ResidentLatSum   sim.Ticks // generation→lookup delay of already-resident targets
	ResidentHits     int64     // prefetches whose target was already in the L1
	QueueDepthSum    int64     // request-queue depth observed at each enqueue
	PumpBusy         int64     // pump entered while a translation was in flight
	PumpGated        int64     // pump blocked by the MSHR-headroom gate
	IssueLatencySum  sim.Ticks // generation→L1-issue delay
	IssueCount       int64
	TLBDrops         int64 // prefetches dropped on page-table miss (§5.3)
	MSHRDrops        int64 // prefetches dropped at L1 for want of an MSHR
	Issued           int64 // prefetches issued into the L1
	Flushes          int64 // context-switch flushes
}

type observation struct {
	addr    uint64
	kernel  int
	timedAt sim.Ticks // chain start time, -1 if untimed
	ewma    int       // group whose chain this closes timing for, -1
}

type pendingPF struct {
	addr       uint64
	chain      int // kernel to run on fill (explicit tag), NoKernel if none
	timedAt    sim.Ticks
	ewma       int // EWMA group the timed chain reports to, -1 if none
	blockedPPU int // blocked mode: PPU suspended on this request, else -1
	createdAt  sim.Ticks
}

type request struct {
	addr  uint64
	obsID int
}

// suspended is one blocked-mode VM parked on a unit's stack, together with
// the invocation context its EmitPF callback was built from. Keeping the
// context explicit (rather than only inside the closure) is what makes a
// suspended VM forkable: a machine fork clones the VM and rebuilds the
// callback against its own prefetcher from these fields.
type suspended struct {
	vm      *ppu.VM
	kernel  int
	start   sim.Ticks
	timedAt sim.Ticks
	ewma    int
}

type unit struct {
	busy      bool
	busyStart sim.Ticks
	busyTicks sim.Ticks
	stack     []suspended // blocked mode: suspended kernels, innermost last
}

// Prefetcher wires the event machinery to an L1 cache and TLB.
type Prefetcher struct {
	eng *sim.Engine
	cfg Config
	bk  *mem.Backing
	l1  *mem.Cache
	tlb *mem.TLB

	Enabled bool

	// Tracer, if set, receives lifecycle events (see trace.go).
	Tracer Tracer
	// Bus, if set, receives the same lifecycle events as machine-wide
	// trace.Event values; nil (the default) costs one branch per event.
	Bus *trace.Bus

	// Queue-occupancy histograms, sampled on every enqueue AND dequeue so
	// the distribution covers the queue's whole life; nil unless
	// AttachMetrics was called.
	mObsDepth *trace.Hist
	mReqDepth *trace.Hist

	kernels map[int][]ppu.Instr
	warmed  map[int]bool // kernels already in the shared instruction cache
	filter  []RangeConfig
	globals [ppu.NumGlobals]uint64

	obsQueue []observation
	reqQueue []request
	units    []unit

	pending  map[int]*pendingPF
	pendFree []*pendingPF // recycled pendingPF structs
	nextObs  int

	// pumpRecs is the recycled table of requests whose TLB translation is in
	// flight (the address must outlive the pending entry: a flush or drop can
	// remove the pending mid-translation and the issue still needs the
	// address). Translation events carry table indices.
	pumpRecs []pumpRec
	pumpFree []int32

	// vm/env and the run* fields are the reused kernel-execution state for
	// the non-blocked mode, where kernels always run to completion inside
	// startKernel: one VM, one Env and one EmitPF closure (built in New)
	// serve every invocation. Blocked mode (Figure 11) allocates per run,
	// because a suspended VM's state must survive on the unit's stack.
	vm         ppu.VM
	env        ppu.Env
	runID      int
	runKernel  int
	runStart   sim.Ticks
	runTimedAt sim.Ticks
	runEwma    int

	enqueueH enqueueHandler
	pumpH    pumpDoneHandler
	inflH    inflightHandler
	freeH    unitFreeHandler

	ewma [8]ewmaGroup

	pumping  int // concurrent request translations (the L2 TLB is pipelined)
	inFlight int // prefetch lookups issued to L1 whose MSHR is not yet held

	Stats Stats
}

type pumpRec struct {
	addr  uint64
	obsID int
}

// enqueueHandler moves a generated prefetch into the request queue at its
// timestamp; a is the address, b the observation id.
type enqueueHandler struct{ p *Prefetcher }

func (h enqueueHandler) Handle(_ sim.Ticks, a, b uint64) {
	h.p.enqueueReq(request{addr: a, obsID: int(b)})
}

// inflightHandler releases a prefetch lookup's MSHR-headroom claim once the
// cache pipeline has resolved it, then restarts the drain.
type inflightHandler struct{ p *Prefetcher }

func (h inflightHandler) Handle(sim.Ticks, uint64, uint64) {
	h.p.inFlight--
	h.p.pump()
}

// unitFreeHandler frees PPU a at the event time and refills it.
type unitFreeHandler struct{ p *Prefetcher }

func (h unitFreeHandler) Handle(at sim.Ticks, a, _ uint64) {
	p := h.p
	u := &p.units[a]
	u.busy = false
	u.busyTicks += at - u.busyStart
	p.emit(trace.Event{Kind: trace.PFUnitFree, A: -1, C: int32(a)})
	p.schedule()
}

func (p *Prefetcher) getPend() *pendingPF {
	if n := len(p.pendFree); n > 0 {
		q := p.pendFree[n-1]
		p.pendFree[n-1] = nil
		p.pendFree = p.pendFree[:n-1]
		return q
	}
	return &pendingPF{}
}

func (p *Prefetcher) putPend(q *pendingPF) { p.pendFree = append(p.pendFree, q) }

func (p *Prefetcher) allocPumpRec(addr uint64, obsID int) int32 {
	if n := len(p.pumpFree); n > 0 {
		ri := p.pumpFree[n-1]
		p.pumpFree = p.pumpFree[:n-1]
		p.pumpRecs[ri] = pumpRec{addr: addr, obsID: obsID}
		return ri
	}
	p.pumpRecs = append(p.pumpRecs, pumpRec{addr: addr, obsID: obsID})
	return int32(len(p.pumpRecs) - 1)
}

// New builds a prefetcher and hooks it into the L1 cache's snoop, fill,
// drop and MSHR-free callbacks.
func New(eng *sim.Engine, cfg Config, bk *mem.Backing, l1 *mem.Cache, tlb *mem.TLB) *Prefetcher {
	p := &Prefetcher{
		eng:     eng,
		cfg:     cfg,
		bk:      bk,
		l1:      l1,
		tlb:     tlb,
		Enabled: true,
		kernels: make(map[int][]ppu.Instr),
		warmed:  make(map[int]bool),
		units:   make([]unit, cfg.NumPPUs),
		pending: make(map[int]*pendingPF),
	}
	for i := range p.ewma {
		p.ewma[i].init()
	}
	p.enqueueH.p = p
	p.pumpH.p = p
	p.inflH.p = p
	p.freeH.p = p
	p.env.Globals = &p.globals
	p.env.Lookahead = p.lookahead
	p.env.EmitPF = p.emitReused
	l1.OnDemandAccess = p.onDemandLoad
	l1.OnPrefetchFill = p.onPrefetchFill
	l1.OnMSHRFree = p.pump
	l1.OnPrefetchDrop = func(_ uint64, tag int) {
		p.Stats.MSHRDrops++
		p.dropPending(tag, trace.DropMSHR)
	}
	return p
}

// AttachMetrics registers the prefetcher's queue-occupancy histograms with
// reg. Depths are observed on every transition (enqueue and dequeue), not
// just at arrival instants.
func (p *Prefetcher) AttachMetrics(reg *trace.Registry) {
	p.mObsDepth = reg.Hist("pf/obs-queue-depth", p.cfg.ObsQueue)
	p.mReqDepth = reg.Hist("pf/req-queue-depth", p.cfg.ReqQueue)
}

// RegisterKernel installs a PPU kernel under an id; configuration
// instructions and tags refer to kernels by these ids.
func (p *Prefetcher) RegisterKernel(id int, prog []ppu.Instr) {
	p.kernels[id] = prog
}

// KernelBytes reports the total encoded size of registered kernels, the
// quantity behind the paper's "at most 1 KB fetched" observation (§4.4).
func (p *Prefetcher) KernelBytes() int {
	n := 0
	for _, k := range p.kernels {
		n += ppu.EncodedSize(k)
	}
	return n
}

// SetRange installs or replaces filter-table slot idx.
func (p *Prefetcher) SetRange(slot int, rc RangeConfig) {
	for slot >= len(p.filter) {
		p.filter = append(p.filter, RangeConfig{LoadKernel: NoKernel, PFKernel: NoKernel, EWMAGroup: -1})
	}
	p.filter[slot] = rc
}

// SetGlobal writes prefetcher global register idx.
func (p *Prefetcher) SetGlobal(idx int, val uint64) { p.globals[idx] = val }

// Global reads a prefetcher global register (tests and examples).
func (p *Prefetcher) Global(idx int) uint64 { return p.globals[idx] }

// Flush models a context switch (§5.3): all queued observations and
// requests are discarded, running events abort and EWMA state resets; only
// the filter table and global registers survive.
func (p *Prefetcher) Flush() {
	p.Stats.Flushes++
	p.emit(trace.Event{Kind: trace.PFFlush, A: -1, C: -1})
	p.obsQueue = p.obsQueue[:0]
	p.reqQueue = p.reqQueue[:0]
	now := p.eng.Now()
	for i := range p.units {
		u := &p.units[i]
		if u.busy {
			u.busyTicks += now - u.busyStart
			u.busy = false
		}
		u.stack = u.stack[:0]
	}
	for id, pend := range p.pending {
		delete(p.pending, id)
		p.putPend(pend)
	}
	for i := range p.ewma {
		p.ewma[i].init()
	}
}

// onDemandLoad is the L1 snoop: every demand access from the core.
func (p *Prefetcher) onDemandLoad(addr uint64, pc int, hit bool) {
	if !p.Enabled {
		return
	}
	now := p.eng.Now()
	for i := range p.filter {
		rc := &p.filter[i]
		if addr < rc.Lo || addr >= rc.Hi {
			continue
		}
		if rc.Interval && rc.EWMAGroup >= 0 {
			p.ewma[rc.EWMAGroup].observeInterval(now)
		}
		if rc.LoadKernel == NoKernel {
			continue
		}
		p.Stats.LoadObservations++
		timed := sim.Ticks(-1)
		group := -1
		if rc.TimedStart && rc.EWMAGroup >= 0 {
			timed = now
			group = rc.EWMAGroup
		}
		p.enqueueObs(observation{addr: addr, kernel: rc.LoadKernel, timedAt: timed, ewma: group})
	}
}

// onPrefetchFill handles prefetched data reaching the L1 (or found already
// resident). tag is the obsID of the pending request; filled distinguishes
// a real memory fill from a resident hit.
func (p *Prefetcher) onPrefetchFill(line uint64, tag int, _ sim.Ticks, filled bool) {
	pendPtr, ok := p.pending[tag]
	if !ok {
		return
	}
	delete(p.pending, tag)
	pend := *pendPtr // copy, then recycle: callees below may reuse the struct
	p.putPend(pendPtr)
	now := p.eng.Now()
	p.Stats.FillObservations++
	filledBit := int32(0)
	if filled {
		filledBit = 1
	}
	p.emit(trace.Event{Kind: trace.PFFill, Addr: pend.addr, ID: int64(tag),
		A: int32(pend.chain), B: filledBit, C: -1})
	// Resident hits return in the cache's lookup latency and say nothing
	// about memory; mixing them into the fill mean hides how slow real
	// fills are, so the two populations are counted apart.
	if filled {
		p.Stats.FillLatencySum += now - pend.createdAt
		p.Stats.FillCount++
	} else {
		p.Stats.ResidentLatSum += now - pend.createdAt
		p.Stats.ResidentHits++
	}

	kernel := pend.chain
	ewmaEnd := -1
	for i := range p.filter {
		rc := &p.filter[i]
		if pend.addr < rc.Lo || pend.addr >= rc.Hi {
			continue
		}
		if kernel == NoKernel && rc.PFKernel != NoKernel {
			kernel = rc.PFKernel
		}
		if rc.TimedEnd && rc.EWMAGroup >= 0 && pend.timedAt >= 0 {
			ewmaEnd = rc.EWMAGroup
		}
	}
	// A chain that ends (no further kernel) also closes its timing, so the
	// EWMA sees the full latency of the dependent-prefetch sequence even
	// when the final structure has no filter range of its own. Chains whose
	// final target was already resident carry no information about memory
	// latency and would drag the look-ahead into a too-shallow equilibrium,
	// so only real fills train the EWMA.
	if ewmaEnd < 0 && pend.timedAt >= 0 && kernel == NoKernel && pend.ewma >= 0 {
		ewmaEnd = pend.ewma
	}
	if ewmaEnd >= 0 && pend.timedAt >= 0 && filled {
		p.ewma[ewmaEnd].observeLoadTime(now - pend.timedAt)
	}

	if !p.Enabled {
		return
	}

	if pend.blockedPPU >= 0 {
		// Blocked mode: the issuing PPU has been stalled on this fill; run
		// the chained kernel (if any) on that same unit, then resume it.
		p.resumeBlocked(pend.blockedPPU, kernel, pend.addr, pend.timedAt, pend.ewma)
		return
	}
	if kernel == NoKernel {
		return
	}
	p.enqueueObs(observation{addr: pend.addr, kernel: kernel, timedAt: pend.timedAt, ewma: pend.ewma})
}

func (p *Prefetcher) enqueueObs(o observation) {
	p.emit(trace.Event{Kind: trace.PFObserve, Addr: o.addr, A: int32(o.kernel), C: -1})
	if len(p.obsQueue) >= p.cfg.ObsQueue {
		// Prefetches are only hints: drop the oldest observation (§4.3).
		p.Stats.ObsDropped++
		p.emit(trace.Event{Kind: trace.PFObsDrop, Addr: p.obsQueue[0].addr,
			A: int32(p.obsQueue[0].kernel), C: -1})
		copy(p.obsQueue, p.obsQueue[1:])
		p.obsQueue = p.obsQueue[:len(p.obsQueue)-1]
		p.mObsDepth.Observe(len(p.obsQueue))
	}
	p.obsQueue = append(p.obsQueue, o)
	p.mObsDepth.Observe(len(p.obsQueue))
	p.schedule()
}

// schedule assigns queued observations to free PPUs, lowest id first (§7.2).
func (p *Prefetcher) schedule() {
	for len(p.obsQueue) > 0 {
		id := -1
		for i := range p.units {
			if !p.units[i].busy {
				id = i
				break
			}
		}
		if id < 0 {
			return
		}
		o := p.obsQueue[0]
		copy(p.obsQueue, p.obsQueue[1:])
		p.obsQueue = p.obsQueue[:len(p.obsQueue)-1]
		p.mObsDepth.Observe(len(p.obsQueue))
		p.startKernel(id, o.kernel, o.addr, o.timedAt, o.ewma)
	}
}

// startKernel begins executing kernel on unit id at the next PPU clock edge.
func (p *Prefetcher) startKernel(id int, kernel int, addr uint64, timedAt sim.Ticks, ewma int) {
	prog, ok := p.kernels[kernel]
	if !ok {
		return
	}
	u := &p.units[id]
	u.busy = true
	now := p.eng.Now()
	start := p.cfg.PPUClock.NextEdge(now)
	u.busyStart = now

	// First execution of a kernel fetches it into the shared instruction
	// cache from memory (§4.4: ~1 KB total per application); model the
	// cold start as a fixed fetch delay.
	if !p.warmed[kernel] {
		p.warmed[kernel] = true
		p.Stats.ICacheMisses++
		start += p.cfg.PPUClock.Cycles(int64(ppu.EncodedSize(prog)/4) + 50)
	}

	if !p.cfg.Blocked {
		// Non-blocked kernels always run to completion right here, so the
		// single reused VM/Env pair (and the EmitPF closure built in New,
		// reading the run* fields) serves every invocation without allocating.
		p.env.VAddr = addr
		p.env.Line = p.captureLine(addr)
		p.runID, p.runKernel = id, kernel
		p.runStart, p.runTimedAt, p.runEwma = start, timedAt, ewma
		p.vm.Reset(prog, &p.env)
		p.Stats.KernelRuns++
		p.emit(trace.Event{Kind: trace.PFKernel, Addr: addr, A: int32(kernel), C: int32(id)})
		p.vm.Run()
		if p.vm.Faulted() {
			p.Stats.KernelFaults++
		}
		p.finishUnit(id, start+p.cfg.PPUClock.Cycles(p.vm.Cycles()))
		return
	}

	env := &ppu.Env{
		VAddr:     addr,
		Line:      p.captureLine(addr),
		Globals:   &p.globals,
		Lookahead: p.lookahead,
	}
	vm := ppu.NewVM(prog, env)
	env.EmitPF = p.emitFunc(id, kernel, start, timedAt, ewma)

	p.Stats.KernelRuns++
	p.emit(trace.Event{Kind: trace.PFKernel, Addr: addr, A: int32(kernel), C: int32(id)})
	status := vm.Run()
	if vm.Faulted() {
		p.Stats.KernelFaults++
	}
	if status == ppu.Blocked {
		// Unit stays busy; resumed by resumeBlocked on fill (or drop).
		u.stack = append(u.stack, suspended{vm: vm, kernel: kernel, start: start, timedAt: timedAt, ewma: ewma})
		return
	}
	p.finishUnit(id, start+p.cfg.PPUClock.Cycles(vm.Cycles()))
}

// emitReused is the EmitPF callback for the reused non-blocked VM; the
// invocation context lives in the run* fields, which are valid for the whole
// synchronous vm.Run.
func (p *Prefetcher) emitReused(addr uint64, tag int, cycle int64) bool {
	return p.emitPF(p.runID, p.runKernel, p.runStart, p.runTimedAt, p.runEwma, addr, tag, cycle)
}

// emitFunc builds the EmitPF callback for an invocation of kernel started
// at tick start on unit id.
func (p *Prefetcher) emitFunc(id, kernel int, start sim.Ticks, timedAt sim.Ticks, ewma int) func(uint64, int, int64) bool {
	return func(addr uint64, tag int, cycle int64) bool {
		return p.emitPF(id, kernel, start, timedAt, ewma, addr, tag, cycle)
	}
}

// emitPF registers one generated prefetch: a recycled pending entry plus a
// timestamped enqueue event carrying (addr, obsID) as payload words.
func (p *Prefetcher) emitPF(id, kernel int, start, timedAt sim.Ticks, ewma int, addr uint64, tag int, cycle int64) bool {
	p.Stats.PFGenerated++
	at := start + p.cfg.PPUClock.Cycles(cycle)
	if at < p.eng.Now() {
		at = p.eng.Now()
	}
	chain := NoKernel
	if tag != ppu.NoTag {
		chain = tag
	}
	obsID := p.nextObs
	p.nextObs++
	p.emit(trace.Event{Kind: trace.PFGenerate, Addr: addr, ID: int64(obsID),
		A: int32(kernel), B: int32(tag), C: int32(id)})
	pend := p.getPend()
	*pend = pendingPF{addr: addr, chain: chain, timedAt: timedAt, ewma: ewma, blockedPPU: -1, createdAt: p.eng.Now()}
	block := p.cfg.Blocked && chain != NoKernel
	if block {
		pend.blockedPPU = id
	}
	p.pending[obsID] = pend
	p.eng.Schedule(at, p.enqueueH, addr, uint64(obsID))
	return block
}

func (p *Prefetcher) enqueueReq(r request) {
	if len(p.reqQueue) >= p.cfg.ReqQueue {
		p.Stats.ReqDropped++
		p.dropPending(r.obsID, trace.DropQueue)
		return
	}
	p.Stats.QueueDepthSum += int64(len(p.reqQueue))
	p.reqQueue = append(p.reqQueue, r)
	p.mReqDepth.Observe(len(p.reqQueue))
	p.emit(trace.Event{Kind: trace.PFEnqueue, Addr: r.addr, ID: int64(r.obsID),
		A: int32(len(p.reqQueue)), C: -1})
	p.pump()
}

// mshrHeadroom keeps a couple of L1 MSHRs free for demand misses so the
// prefetcher cannot starve the core's own traffic.
const mshrHeadroom = 2

// pumpWays is how many request translations may overlap: the shared TLB is
// pipelined, so the drain rate is bounded by MSHR availability rather than
// one translation latency per request.
const pumpWays = 4

// pump drains the request queue into free L1 MSHRs, translating via the
// shared TLB (§4.6). Up to pumpWays translations overlap in the pipelined
// TLB, and every MSHR-free callback (l1.OnMSHRFree) restarts the drain, so
// requests leave the queue as fast as translation bandwidth and MSHR
// availability allow — there is no per-request serialisation. Lookups
// already racing through the cache pipeline (inFlight) count against the
// free MSHRs so the headroom gate cannot be overrun by requests whose MSHR
// claim has not landed yet.
func (p *Prefetcher) pump() {
	if len(p.reqQueue) == 0 {
		return
	}
	if p.pumping >= pumpWays {
		p.Stats.PumpBusy++
		return
	}
	if p.l1.FreeMSHRs()-p.inFlight-p.pumping <= mshrHeadroom {
		p.Stats.PumpGated++
		return
	}
	p.pumping++
	r := p.reqQueue[0]
	copy(p.reqQueue, p.reqQueue[1:])
	p.reqQueue = p.reqQueue[:len(p.reqQueue)-1]
	p.mReqDepth.Observe(len(p.reqQueue))

	ri := p.allocPumpRec(r.addr, r.obsID)
	p.tlb.TranslateTo(r.addr, p.pumpH, uint64(ri))
}

// pumpDoneHandler receives a prefetch request's translation; a is the pump
// record index, ok the mapped bit.
type pumpDoneHandler struct{ p *Prefetcher }

func (h pumpDoneHandler) Handle(_ sim.Ticks, a, ok uint64) {
	p := h.p
	r := p.pumpRecs[a]
	p.pumpRecs[a] = pumpRec{}
	p.pumpFree = append(p.pumpFree, int32(a))
	p.pumping--
	if ok == 0 {
		// Page-table miss: discard rather than fault (§5.3).
		p.Stats.TLBDrops++
		p.dropPending(r.obsID, trace.DropTLB)
	} else if p.l1.FreeMSHRs()-p.inFlight <= 0 {
		p.Stats.MSHRDrops++
		p.dropPending(r.obsID, trace.DropMSHR)
	} else {
		p.Stats.Issued++
		p.emit(trace.Event{Kind: trace.PFIssue, Addr: r.addr, ID: int64(r.obsID), C: -1})
		pend := p.pending[r.obsID]
		var timed sim.Ticks = -1
		if pend != nil {
			timed = pend.timedAt
			p.Stats.IssueLatencySum += p.eng.Now() - pend.createdAt
			p.Stats.IssueCount++
		}
		p.inFlight++
		req := p.l1.Pool.Get()
		req.Addr, req.Kind, req.PC = r.addr, mem.Prefetch, -1
		req.Tag, req.TimedAt = r.obsID, timed
		p.l1.Access(req)
		// The lookup holds its claim for the cache's hit latency;
		// afterwards the MSHR (or a hit) has resolved it.
		p.eng.ScheduleAfter(p.l1Lookup(), p.inflH, 0, 0)
	}
	p.pump()
}

// dropPending abandons a pending tagged request; in blocked mode the
// suspended PPU must be resumed or it would wait forever.
func (p *Prefetcher) dropPending(obsID int, reason int32) {
	pendPtr, ok := p.pending[obsID]
	if !ok {
		return
	}
	delete(p.pending, obsID)
	pend := *pendPtr
	p.putPend(pendPtr)
	p.emit(trace.Event{Kind: trace.PFDrop, Addr: pend.addr, ID: int64(obsID),
		A: reason, C: -1})
	if pend.blockedPPU >= 0 {
		p.resumeBlocked(pend.blockedPPU, NoKernel, 0, -1, -1)
	}
}

// resumeBlocked continues a suspended unit: first running the chained
// kernel (if any) for the arrived fill, then resuming the suspended VMs
// from innermost outwards until one blocks again or all finish.
func (p *Prefetcher) resumeBlocked(id int, kernel int, addr uint64, timedAt sim.Ticks, ewma int) {
	u := &p.units[id]
	now := p.eng.Now()
	start := p.cfg.PPUClock.NextEdge(now)

	if kernel != NoKernel {
		if prog, ok := p.kernels[kernel]; ok {
			env := &ppu.Env{
				VAddr:     addr,
				Line:      p.captureLine(addr),
				Globals:   &p.globals,
				Lookahead: p.lookahead,
			}
			vm := ppu.NewVM(prog, env)
			kernelStart := start // EmitPF's reference time; a fork rebuilds from it
			env.EmitPF = p.emitFunc(id, kernel, kernelStart, timedAt, ewma)
			p.Stats.KernelRuns++
			p.emit(trace.Event{Kind: trace.PFKernel, Addr: addr, A: int32(kernel), C: int32(id)})
			status := vm.Run()
			start += p.cfg.PPUClock.Cycles(vm.Cycles())
			if status == ppu.Blocked {
				u.stack = append(u.stack, suspended{vm: vm, kernel: kernel, start: kernelStart, timedAt: timedAt, ewma: ewma})
				return
			}
			if vm.Faulted() {
				p.Stats.KernelFaults++
			}
		}
	}
	// Resumed VMs burn PPU cycles too: charge each one's delta (Cycles() is
	// cumulative across resumes) into the unit's finish time, and a resumed
	// kernel can fault just like a fresh one.
	for len(u.stack) > 0 {
		e := u.stack[len(u.stack)-1]
		u.stack = u.stack[:len(u.stack)-1]
		before := e.vm.Cycles()
		status := e.vm.Run()
		start += p.cfg.PPUClock.Cycles(e.vm.Cycles() - before)
		if status == ppu.Blocked {
			u.stack = append(u.stack, e)
			return
		}
		if e.vm.Faulted() {
			p.Stats.KernelFaults++
		}
	}
	p.finishUnit(id, start)
}

// finishUnit frees unit id at time at and lets the scheduler refill it.
func (p *Prefetcher) finishUnit(id int, at sim.Ticks) {
	if at < p.eng.Now() {
		at = p.eng.Now()
	}
	p.eng.Schedule(at, p.freeH, uint64(id), 0)
}

func (p *Prefetcher) l1Lookup() sim.Ticks { return p.l1.LookupLatency() }

func (p *Prefetcher) captureLine(addr uint64) [mem.LineSize / 8]uint64 {
	if p.bk.Mapped(addr) {
		return p.bk.ReadLine(addr)
	}
	return [mem.LineSize / 8]uint64{}
}

func (p *Prefetcher) lookahead(group int) uint64 {
	if group < 0 || group >= len(p.ewma) {
		return 1
	}
	return p.ewma[group].lookahead()
}

// Lookahead exposes the EWMA-derived distance (tests, examples).
func (p *Prefetcher) Lookahead(group int) uint64 { return p.lookahead(group) }

// ActivityFactors returns each PPU's awake fraction over the elapsed
// runtime: the Figure 10 quantity. Call after the simulation completes.
func (p *Prefetcher) ActivityFactors() []float64 {
	total := p.eng.Now()
	out := make([]float64, len(p.units))
	if total == 0 {
		return out
	}
	for i := range p.units {
		busy := p.units[i].busyTicks
		if p.units[i].busy {
			busy += total - p.units[i].busyStart
		}
		out[i] = float64(busy) / float64(total)
	}
	return out
}

// ewmaGroup implements the §4.5 moving-average calculators with weight 1/8.
// The exposed look-ahead distance is quantised to powers of two with
// hysteresis: a raw ratio that wobbles between adjacent values would leave
// a gap of unprefetched iterations at every upward step, and those gaps
// become fully serialised misses.
type ewmaGroup struct {
	lastAccess sim.Ticks
	interval   float64
	loadTime   float64
	quantised  uint64
}

func (g *ewmaGroup) init() {
	g.lastAccess = -1
	g.interval = 0
	g.loadTime = 0
	g.quantised = 0
}

func (g *ewmaGroup) observeInterval(now sim.Ticks) {
	if g.lastAccess >= 0 {
		dt := float64(now - g.lastAccess)
		if g.interval == 0 {
			g.interval = dt
		} else {
			g.interval += (dt - g.interval) / 16
		}
	}
	g.lastAccess = now
}

func (g *ewmaGroup) observeLoadTime(d sim.Ticks) {
	dt := float64(d)
	if g.loadTime == 0 {
		g.loadTime = dt
	} else {
		g.loadTime += (dt - g.loadTime) / 16
	}
}

// lookahead returns loadTime/interval rounded up to a power of two in
// [4, 64], with hysteresis so the distance changes only when the ratio has
// clearly left its current bucket. With no samples yet it returns 4.
func (g *ewmaGroup) lookahead() uint64 {
	if g.interval <= 0 || g.loadTime <= 0 {
		return 4
	}
	raw := g.loadTime / g.interval
	cur := float64(g.quantised)
	if g.quantised == 0 || raw > cur*1.5 || raw < cur*0.375 {
		q := uint64(4)
		for float64(q) < raw && q < 64 {
			q <<= 1
		}
		g.quantised = q
	}
	return g.quantised
}
