package prefetch

import (
	"testing"

	"eventpf/internal/mem"
	"eventpf/internal/ppu"
	"eventpf/internal/sim"
)

type stubLevel struct {
	eng     *sim.Engine
	latency sim.Ticks
	reads   int64
}

func (s *stubLevel) Access(req *mem.Request) {
	if req.Kind == mem.Writeback {
		return
	}
	s.reads++
	if h := req.Completer(); h != nil {
		a := req.CompA
		s.eng.After(s.latency, func() { h.Handle(s.eng.Now(), a, 0) })
	}
}

type fixture struct {
	eng   *sim.Engine
	bk    *mem.Backing
	arena *mem.Arena
	l1    *mem.Cache
	tlb   *mem.TLB
	pf    *Prefetcher
	next  *stubLevel
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	bk := mem.NewBacking()
	arena := mem.NewArena(bk)
	next := &stubLevel{eng: eng, latency: 2000}
	clk := sim.ClockFromMHz(3200)
	l1 := mem.NewCache(eng, clk, mem.CacheConfig{
		Name: "L1", SizeBytes: 32 << 10, Ways: 2, HitCycles: 2, MSHRs: 12,
	}, next)
	tlb := mem.NewTLB(eng, clk, mem.DefaultTLBConfig(), bk)
	pf := New(eng, cfg, bk, l1, tlb)
	return &fixture{eng: eng, bk: bk, arena: arena, l1: l1, tlb: tlb, pf: pf, next: next}
}

func (f *fixture) demandLoad(addr uint64) {
	f.l1.Access(&mem.Request{Addr: addr, Kind: mem.Load, PC: -1, Tag: mem.NoTag, TimedAt: -1})
}

func TestLoadObservationTriggersPrefetch(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1024)

	// Figure 4(b) on_A_load: prefetch 128 bytes ahead of the observed load.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pf    r1
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(arr.Base)
	f.eng.Run()

	if f.pf.Stats.LoadObservations != 1 || f.pf.Stats.KernelRuns != 1 {
		t.Fatalf("stats = %+v", f.pf.Stats)
	}
	if f.pf.Stats.Issued != 1 {
		t.Fatalf("issued = %d, want 1", f.pf.Stats.Issued)
	}
	if !f.l1.Contains(arr.Base + 128) {
		t.Error("prefetched line not resident in L1")
	}
}

func TestChainedPrefetchFigure4(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	a := f.arena.AllocWords("A", 1024)
	b := f.arena.AllocWords("B", 1024)
	c := f.arena.AllocWords("C", 1024)

	// A[i] holds indices into B; B[x] holds indices into C.
	f.bk.Write64(a.Base+128, 17) // A two lines ahead of base
	f.bk.Write64(b.Base+17*8, 99)

	// Kernel 1 (on A load): prefetch A two lines ahead, tagged to kernel 2.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`))
	// Kernel 2 (A data arrived): fetch = B_base + dat*8, tagged to kernel 3.
	f.pf.RegisterKernel(2, ppu.MustAssemble(`
		lddata r1
		shli   r1, r1, 3
		ldg    r2, g1
		add    r1, r1, r2
		pftag  r1, 3
		halt
	`))
	// Kernel 3 (B data arrived): fetch = C_base + dat*8, end of chain.
	f.pf.RegisterKernel(3, ppu.MustAssemble(`
		lddata r1
		shli   r1, r1, 3
		ldg    r2, g2
		add    r1, r1, r2
		pf     r1
		halt
	`))
	f.pf.SetGlobal(1, b.Base)
	f.pf.SetGlobal(2, c.Base)
	f.pf.SetRange(0, RangeConfig{Lo: a.Base, Hi: a.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	f.demandLoad(a.Base)
	f.eng.Run()

	if !f.l1.Contains(a.Base + 128) {
		t.Error("A+128 not prefetched")
	}
	if !f.l1.Contains(b.Base + 17*8) {
		t.Error("B[A[x]] not prefetched (chain step 2)")
	}
	if !f.l1.Contains(c.Base + 99*8) {
		t.Error("C[B[A[x]]] not prefetched (chain step 3)")
	}
	if f.pf.Stats.KernelRuns != 3 {
		t.Errorf("kernel runs = %d, want 3", f.pf.Stats.KernelRuns)
	}
}

func TestRangeBasedFillKernel(t *testing.T) {
	// No explicit tag: the fill lands in a range whose PFKernel is set.
	f := newFixture(t, DefaultConfig())
	a := f.arena.AllocWords("A", 1024)
	b := f.arena.AllocWords("B", 1024)
	f.bk.Write64(a.Base+128, 5)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pf    r1
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble(`
		lddata r1
		shli   r1, r1, 3
		ldg    r2, g1
		add    r1, r1, r2
		pf     r1
		halt
	`))
	f.pf.SetGlobal(1, b.Base)
	f.pf.SetRange(0, RangeConfig{Lo: a.Base, Hi: a.End(),
		LoadKernel: 1, PFKernel: 2, EWMAGroup: -1})

	f.demandLoad(a.Base)
	f.eng.Run()

	if !f.l1.Contains(b.Base + 5*8) {
		t.Error("range-triggered fill kernel did not run")
	}
}

func TestObservationQueueDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPPUs = 1
	cfg.ObsQueue = 4
	f := newFixture(t, cfg)
	arr := f.arena.AllocWords("A", 1<<16)

	// A deliberately slow kernel so observations pile up.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		movi r1, 0
		movi r2, 200
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})

	for i := 0; i < 20; i++ {
		f.demandLoad(arr.Base + uint64(i)*64)
	}
	f.eng.Run()
	if f.pf.Stats.ObsDropped == 0 {
		t.Error("no observations dropped despite tiny queue")
	}
	if f.pf.Stats.KernelRuns+f.pf.Stats.ObsDropped != 20 {
		t.Errorf("runs (%d) + drops (%d) != 20", f.pf.Stats.KernelRuns, f.pf.Stats.ObsDropped)
	}
}

func TestRequestQueueOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReqQueue = 4
	f := newFixture(t, cfg)
	arr := f.arena.AllocWords("A", 1<<20)

	// One observation generates 64 prefetches; the queue holds 4 and the
	// 12 MSHRs bound what drains instantly.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		movi  r2, 0
		movi  r3, 64
	loop:
		addi  r1, r1, 64
		pf    r1
		addi  r2, r2, 1
		blt   r2, r3, loop
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	f.eng.Run()
	if f.pf.Stats.ReqDropped == 0 {
		t.Errorf("no request drops; stats = %+v", f.pf.Stats)
	}
}

func TestPrefetchToUnmappedPageDropped(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 8) // one page + guard

	// Kernel prefetches far past the allocation: unmapped.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		movi  r2, 1048576
		add   r1, r1, r2
		pf    r1
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	f.eng.Run()
	if f.pf.Stats.TLBDrops != 1 {
		t.Errorf("TLBDrops = %d, want 1 (§5.3 page-fault discard)", f.pf.Stats.TLBDrops)
	}
	if f.pf.Stats.Issued != 0 {
		t.Errorf("issued = %d, want 0", f.pf.Stats.Issued)
	}
}

func TestEWMALookahead(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1<<16)
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: NoKernel, PFKernel: NoKernel, EWMAGroup: 0, Interval: true})

	if got := f.pf.Lookahead(0); got != 4 {
		t.Errorf("default lookahead = %d, want 4", got)
	}
	// Demand loads every 100 ticks feed the interval EWMA.
	for i := 0; i < 32; i++ {
		addr := arr.Base + uint64(i)*8
		f.eng.At(sim.Ticks(i)*100, func() { f.pf.onDemandLoad(addr, -1, true) })
	}
	f.eng.Run()
	// Inject chain completion times of 1000 ticks: lookahead → 10.
	for i := 0; i < 32; i++ {
		f.pf.ewma[0].observeLoadTime(1000)
	}
	if got := f.pf.Lookahead(0); got != 16 {
		t.Errorf("lookahead = %d, want 16 (1000/100 rounded up to a power of two)", got)
	}
}

func TestEWMATimedChainMeasuresLatency(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	a := f.arena.AllocWords("A", 1024)
	b := f.arena.AllocWords("B", 1024)
	f.bk.Write64(a.Base+128, 3)

	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 128
		pftag r1, 2
		halt
	`))
	f.pf.RegisterKernel(2, ppu.MustAssemble(`
		lddata r1
		shli   r1, r1, 3
		ldg    r2, g1
		add    r1, r1, r2
		pf     r1
		halt
	`))
	f.pf.SetGlobal(1, b.Base)
	// Loads on A start timed chains; fills back into A end them.
	f.pf.SetRange(0, RangeConfig{Lo: a.Base, Hi: a.End(),
		LoadKernel: 1, PFKernel: NoKernel,
		EWMAGroup: 0, Interval: true, TimedStart: true, TimedEnd: true})

	f.demandLoad(a.Base)
	f.eng.Run()
	if f.pf.ewma[0].loadTime <= 0 {
		t.Error("timed chain did not record a load time")
	}
}

func TestSchedulerPrefersLowestID(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1<<16)
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pf    r1
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	for i := 0; i < 50; i++ {
		f.demandLoad(arr.Base + uint64(i)*512)
	}
	f.eng.Run()
	act := f.pf.ActivityFactors()
	if act[0] == 0 {
		t.Fatal("PPU 0 never ran")
	}
	for i := 1; i < len(act); i++ {
		if act[i] > act[0]+1e-9 {
			t.Errorf("PPU %d busier (%.4f) than PPU 0 (%.4f)", i, act[i], act[0])
		}
	}
}

func TestBlockedModeSerialisesChains(t *testing.T) {
	mkFixture := func(blocked bool) *fixture {
		cfg := DefaultConfig()
		cfg.NumPPUs = 1
		cfg.Blocked = blocked
		f := newFixture(t, cfg)
		return f
	}
	run := func(f *fixture) sim.Ticks {
		a := f.arena.AllocWords("A", 1<<16)
		b := f.arena.AllocWords("B", 1<<16)
		for i := uint64(0); i < 8; i++ {
			f.bk.Write64(a.Base+i*512+128, i*7)
		}
		f.pf.RegisterKernel(1, ppu.MustAssemble(`
			vaddr r1
			addi  r1, r1, 128
			pftag r1, 2
			halt
		`))
		f.pf.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g1
			add    r1, r1, r2
			pf     r1
			halt
		`))
		f.pf.SetGlobal(1, b.Base)
		f.pf.SetRange(0, RangeConfig{Lo: a.Base, Hi: a.End(),
			LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
		for i := 0; i < 8; i++ {
			f.demandLoad(a.Base + uint64(i)*512) // distinct lines, distinct targets
		}
		f.eng.Run()
		return f.eng.Now()
	}
	eventTime := run(mkFixture(false))
	blockedTime := run(mkFixture(true))
	if blockedTime <= eventTime {
		t.Errorf("blocked mode (%d ticks) not slower than event mode (%d ticks)",
			blockedTime, eventTime)
	}
}

func TestFlushClearsState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPPUs = 1
	f := newFixture(t, cfg)
	arr := f.arena.AllocWords("A", 1<<16)
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pftag r1, 1
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	for i := 0; i < 10; i++ {
		f.demandLoad(arr.Base + uint64(i)*8)
	}
	// Flush mid-flight.
	f.eng.At(100, func() { f.pf.Flush() })
	f.eng.Run()
	if f.pf.Stats.Flushes != 1 {
		t.Error("flush not recorded")
	}
	if len(f.pf.pending) != 0 && false {
		t.Error("pending entries survive flush")
	}
	// Configuration survives: a new load still triggers the kernel.
	runs := f.pf.Stats.KernelRuns
	f.demandLoad(arr.Base + 4096)
	f.eng.Run()
	if f.pf.Stats.KernelRuns == runs {
		t.Error("filter configuration lost by flush")
	}
}

func TestKernelFaultCounted(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1024)
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		movi r1, 1
		movi r2, 0
		div  r3, r1, r2
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	f.eng.Run()
	if f.pf.Stats.KernelFaults != 1 {
		t.Errorf("KernelFaults = %d, want 1", f.pf.Stats.KernelFaults)
	}
}

func TestDisabledPrefetcherIgnoresEvents(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1024)
	f.pf.RegisterKernel(1, ppu.MustAssemble("vaddr r1\npf r1\nhalt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.pf.Enabled = false
	f.demandLoad(arr.Base)
	f.eng.Run()
	if f.pf.Stats.KernelRuns != 0 {
		t.Error("disabled prefetcher still ran kernels")
	}
}

func TestKernelBytes(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.RegisterKernel(1, ppu.MustAssemble("vaddr r1\npf r1\nhalt"))
	if got := f.pf.KernelBytes(); got != 12 {
		t.Errorf("KernelBytes = %d, want 12", got)
	}
}

func TestLookaheadQuantisedToPowersOfTwo(t *testing.T) {
	var g ewmaGroup
	g.init()
	g.interval = 100
	for _, tc := range []struct {
		loadTime float64
		want     uint64
	}{
		{300, 4}, {500, 8}, {1500, 16}, {3100, 32}, {10000, 64}, {999999, 64},
	} {
		g.quantised = 0 // reset hysteresis
		g.loadTime = tc.loadTime
		if got := g.lookahead(); got != tc.want {
			t.Errorf("lookahead(load=%v) = %d, want %d", tc.loadTime, got, tc.want)
		}
	}
}

func TestLookaheadHysteresis(t *testing.T) {
	var g ewmaGroup
	g.init()
	g.interval = 100
	g.loadTime = 500 // ratio 5 → 8
	if got := g.lookahead(); got != 8 {
		t.Fatalf("initial lookahead = %d, want 8", got)
	}
	// Small wobble must not change the distance…
	g.loadTime = 700 // ratio 7, still within 8*1.5
	if got := g.lookahead(); got != 8 {
		t.Errorf("wobble moved lookahead to %d", got)
	}
	g.loadTime = 400 // ratio 4, above 8*0.375
	if got := g.lookahead(); got != 8 {
		t.Errorf("downward wobble moved lookahead to %d", got)
	}
	// …but a clear shift must.
	g.loadTime = 1400 // ratio 14 > 12
	if got := g.lookahead(); got != 16 {
		t.Errorf("clear increase gave %d, want 16", got)
	}
	g.loadTime = 200 // ratio 2 < 16*0.375
	if got := g.lookahead(); got != 4 {
		t.Errorf("clear decrease gave %d, want 4", got)
	}
}

func TestEWMATrainsOnRealFillsOnly(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	a := f.arena.AllocWords("A", 1<<14)
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		addi  r1, r1, 64
		pf    r1
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: a.Base, Hi: a.End(),
		LoadKernel: 1, PFKernel: NoKernel,
		EWMAGroup: 0, Interval: true, TimedStart: true})

	// First load: the prefetched line misses → real fill → trains.
	f.demandLoad(a.Base)
	f.eng.Run()
	trained := f.pf.ewma[0].loadTime
	if trained <= 0 {
		t.Fatal("real fill did not train the load-time EWMA")
	}
	// Second load to the same line: its prefetch target is now resident →
	// the chain closes via a hit and must NOT train.
	f.demandLoad(a.Base + 8)
	f.eng.Run()
	if f.pf.ewma[0].loadTime != trained {
		t.Errorf("resident-hit chain changed loadTime %v → %v", trained, f.pf.ewma[0].loadTime)
	}
}

func TestPumpOverlapsTranslations(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg)
	arr := f.arena.AllocWords("A", 1<<18)
	// A kernel that fans out 8 prefetches to distinct far-apart pages,
	// forcing L2-TLB latency on each.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		movi  r2, 0
		movi  r3, 8
	loop:
		movi  r4, 8192
		add   r1, r1, r4
		pf    r1
		addi  r2, r2, 1
		blt   r2, r3, loop
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	f.eng.Run()
	if f.pf.Stats.Issued != 8 {
		t.Errorf("issued = %d, want 8", f.pf.Stats.Issued)
	}
	if f.pf.Stats.PumpBusy == 0 {
		t.Log("pump never saturated; acceptable but unexpected with 8 distinct pages")
	}
}

func TestMSHRHeadroomReservedForDemand(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg)
	arr := f.arena.AllocWords("A", 1<<20)
	// Fan out many prefetches at once; the pump must keep `mshrHeadroom`
	// MSHRs free for demand traffic.
	f.pf.RegisterKernel(1, ppu.MustAssemble(`
		vaddr r1
		movi  r2, 0
		movi  r3, 32
	loop:
		movi  r4, 4096
		add   r1, r1, r4
		pf    r1
		addi  r2, r2, 1
		blt   r2, r3, loop
		halt
	`))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	// Drain partially, then check the invariant while prefetches are in flight.
	for i := 0; i < 200 && f.eng.Pending() > 0; i++ {
		f.eng.Step()
		if f.l1.FreeMSHRs() < 0 {
			t.Fatal("MSHR accounting went negative")
		}
	}
	f.eng.Run()
	if f.pf.Stats.PumpGated == 0 {
		t.Error("headroom gate never engaged despite 32-wide fan-out")
	}
}

func TestTracerSeesLifecycle(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	tr := NewRingTracer(64)
	f.pf.Tracer = tr
	arr := f.arena.AllocWords("A", 1024)
	f.pf.RegisterKernel(1, ppu.MustAssemble("vaddr r1\naddi r1, r1, 64\npf r1\nhalt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	f.demandLoad(arr.Base)
	f.eng.Run()

	kinds := map[TraceKind]bool{}
	for _, e := range tr.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []TraceKind{TraceObserve, TraceKernel, TraceGenerate, TraceIssue, TraceFill} {
		if !kinds[want] {
			t.Errorf("trace missing %s events; got %v", want, tr.Events())
		}
	}
}

func TestRingTracerWraps(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(TraceEvent{At: sim.Ticks(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.At != sim.Ticks(6+i) {
			t.Errorf("event %d at %d, want %d (oldest first)", i, e.At, 6+i)
		}
	}
}

func TestKernelColdStartCostsOnce(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	arr := f.arena.AllocWords("A", 1<<14)
	f.pf.RegisterKernel(1, ppu.MustAssemble("vaddr r1\naddi r1, r1, 64\npf r1\nhalt"))
	f.pf.SetRange(0, RangeConfig{Lo: arr.Base, Hi: arr.End(),
		LoadKernel: 1, PFKernel: NoKernel, EWMAGroup: -1})
	for i := 0; i < 5; i++ {
		f.demandLoad(arr.Base + uint64(i)*512)
		f.eng.Run()
	}
	if f.pf.Stats.ICacheMisses != 1 {
		t.Errorf("ICacheMisses = %d, want 1 (cold start only once)", f.pf.Stats.ICacheMisses)
	}
	if f.pf.Stats.KernelRuns != 5 {
		t.Errorf("KernelRuns = %d, want 5", f.pf.Stats.KernelRuns)
	}
}
