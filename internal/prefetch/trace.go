package prefetch

import (
	"fmt"
	"io"

	"eventpf/internal/sim"
)

// TraceKind classifies prefetcher trace events.
type TraceKind int

// Trace event kinds, in rough lifecycle order.
const (
	TraceObserve  TraceKind = iota // load/fill observation accepted
	TraceObsDrop                   // observation queue overflow
	TraceKernel                    // kernel started on a PPU
	TraceGenerate                  // kernel emitted a prefetch address
	TraceIssue                     // request issued into the L1
	TraceFill                      // prefetched data arrived (or was resident)
	TraceDrop                      // request dropped (queue/TLB/MSHR)
	TraceFlush                     // context-switch flush
)

var traceKindNames = map[TraceKind]string{
	TraceObserve: "observe", TraceObsDrop: "obs-drop", TraceKernel: "kernel",
	TraceGenerate: "generate", TraceIssue: "issue", TraceFill: "fill",
	TraceDrop: "drop", TraceFlush: "flush",
}

func (k TraceKind) String() string { return traceKindNames[k] }

// TraceEvent is one prefetcher lifecycle event.
type TraceEvent struct {
	At     sim.Ticks
	Kind   TraceKind
	Addr   uint64
	Kernel int // kernel id, -1 when not applicable
	PPU    int // unit id, -1 when not applicable
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%12d %-9s addr=%#x kernel=%d ppu=%d",
		e.At, e.Kind, e.Addr, e.Kernel, e.PPU)
}

// Tracer receives prefetcher events; implementations must be cheap, as they
// run inline with the simulation.
type Tracer interface {
	Event(TraceEvent)
}

// RingTracer keeps the most recent N events — the usual way to look at "what
// was the prefetcher doing just before things went wrong".
type RingTracer struct {
	buf  []TraceEvent
	next int
	full bool
}

// NewRingTracer creates a tracer holding the last n events.
func NewRingTracer(n int) *RingTracer { return &RingTracer{buf: make([]TraceEvent, n)} }

// Event implements Tracer.
func (r *RingTracer) Event(e TraceEvent) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *RingTracer) Events() []TraceEvent {
	if !r.full {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events to w.
func (r *RingTracer) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// trace is the internal emission helper; a nil tracer costs one branch.
func (p *Prefetcher) trace(kind TraceKind, addr uint64, kernel, unit int) {
	if p.Tracer == nil {
		return
	}
	p.Tracer.Event(TraceEvent{At: p.eng.Now(), Kind: kind, Addr: addr, Kernel: kernel, PPU: unit})
}
