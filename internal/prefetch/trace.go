package prefetch

import "eventpf/internal/trace"

// The prefetcher-only tracer grew into the simulator-wide bus in
// internal/trace; these aliases keep the original prefetch-package
// vocabulary working for existing callers. New code should attach a sink to
// the machine-wide trace.Bus instead of setting Prefetcher.Tracer.
type (
	// TraceKind classifies prefetcher lifecycle events.
	TraceKind = trace.Kind
	// TraceEvent is one prefetcher lifecycle event.
	TraceEvent = trace.Event
	// Tracer receives prefetcher events; implementations must be cheap, as
	// they run inline with the simulation.
	Tracer = trace.Sink
	// RingTracer keeps the most recent N events.
	RingTracer = trace.Ring
)

// Prefetcher lifecycle event kinds, in rough order.
const (
	TraceObserve  = trace.PFObserve
	TraceObsDrop  = trace.PFObsDrop
	TraceKernel   = trace.PFKernel
	TraceGenerate = trace.PFGenerate
	TraceIssue    = trace.PFIssue
	TraceFill     = trace.PFFill
	TraceDrop     = trace.PFDrop
	TraceFlush    = trace.PFFlush
)

// NewRingTracer creates a tracer holding the last n events.
func NewRingTracer(n int) *RingTracer { return trace.NewRing(n) }

// emit stamps e with the current time and delivers it to the legacy Tracer
// and the machine-wide bus; free when neither is attached.
func (p *Prefetcher) emit(e trace.Event) {
	if p.Tracer == nil && p.Bus == nil {
		return
	}
	e.At = p.eng.Now()
	if p.Tracer != nil {
		p.Tracer.Event(e)
	}
	p.Bus.Emit(e)
}
