package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eventpf/internal/harness"
)

// TestEventHistoryCompaction: with a small EventHistory cap, a long chain's
// prefix folds into one synthesized snapshot event, and a late subscriber
// still reconstructs the job's full state — snapshot first, then a dense,
// gap-free tail ending in the terminal event.
func TestEventHistoryCompaction(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 2, EventHistory: 8})
	srv.SetRunner(func(jb *Job) ([]byte, error) {
		for i := 1; i <= 40; i++ {
			jb.Publish(ProgressEvent{State: StateRunning, Phase: "simulating", Events: int64(i * 10), SimTicks: int64(i)})
		}
		return []byte("{\"stub\":true}\n"), nil
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, sr := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Chain published: queued(0), running/starting(1), 40 progress events
	// (2..41), done(42) — 43 events total, far over the cap of 8.
	resp2, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp2)

	if len(events) != 9 {
		t.Fatalf("late subscriber got %d events, want 9 (snapshot + 8 retained): %+v", len(events), events)
	}
	snap := events[0]
	if !snap.Snapshot {
		t.Fatalf("first replayed event is not the snapshot: %+v", snap)
	}
	if snap.Seq != 34 {
		t.Errorf("snapshot seq = %d, want 34 (covers events 0..34)", snap.Seq)
	}
	if snap.State != StateRunning || snap.Events != 330 {
		t.Errorf("snapshot did not fold the compacted prefix: state=%s events=%d, want running/330", snap.State, snap.Events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("gap in the replayed chain at %d: %+v", i, events)
		}
		if events[i].Snapshot {
			t.Errorf("retained tail contains a snapshot event at %d", i)
		}
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Seq != 42 {
		t.Errorf("chain ends with %s at seq %d, want done at 42", last.State, last.Seq)
	}
	// Reconstructed progress: the tail's freshest totals survive compaction.
	var maxEvents int64
	for _, ev := range events {
		if ev.Events > maxEvents {
			maxEvents = ev.Events
		}
	}
	if maxEvents != 400 {
		t.Errorf("reconstructed progress = %d events, want 400", maxEvents)
	}
	// Job status still reports the full (logical) chain length.
	st, err := http.Get(hs.URL + "/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(st.Body)
	st.Body.Close()
	if !strings.Contains(string(b), "\"progress_events\": 43") {
		t.Errorf("job status lost the logical chain length: %s", b)
	}
}

// TestCacheLRUEvictionOrder pins the eviction policy: least-recently-USED
// leaves first (a get refreshes recency), and every eviction increments the
// /metrics counter.
func TestCacheLRUEvictionOrder(t *testing.T) {
	srv := NewServer(Config{CacheEntries: 2})
	k1 := strings.Repeat("1", 64)
	k2 := strings.Repeat("2", 64)
	k3 := strings.Repeat("3", 64)

	srv.CachePut(k1, []byte("r1"))
	srv.CachePut(k2, []byte("r2"))
	if _, ok := srv.CacheGet(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	srv.CachePut(k3, []byte("r3")) // over the entry cap: k2 must go

	if _, ok := srv.CacheGet(k2); ok {
		t.Error("k2 survived eviction but was least recently used")
	}
	if _, ok := srv.CacheGet(k1); !ok {
		t.Error("k1 evicted despite being refreshed")
	}
	if _, ok := srv.CacheGet(k3); !ok {
		t.Error("k3 missing right after insertion")
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_cache_evictions"] != 1 {
		t.Errorf("cache_evictions = %d, want 1", m["ppfserve_cache_evictions"])
	}
	if m["ppfserve_cache_entries"] != 2 {
		t.Errorf("cache_entries = %d, want 2", m["ppfserve_cache_entries"])
	}
}

// TestCacheByteBound: the byte cap evicts LRU-last, but a single entry
// larger than the cap stays resident instead of thrashing.
func TestCacheByteBound(t *testing.T) {
	srv := NewServer(Config{CacheBytes: 10})
	big := strings.Repeat("b", 64)
	small := strings.Repeat("s", 64)

	srv.CachePut(big, bytes.Repeat([]byte("x"), 20)) // alone over the cap: retained
	if _, ok := srv.CacheGet(big); !ok {
		t.Fatal("oversized sole entry was evicted instead of retained")
	}
	srv.CachePut(small, []byte("tiny")) // now the total is over: big (LRU) goes
	if _, ok := srv.CacheGet(big); ok {
		t.Error("big entry survived the byte bound with a newer entry present")
	}
	if _, ok := srv.CacheGet(small); !ok {
		t.Error("small entry missing after eviction pass")
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_cache_bytes"] != 4 {
		t.Errorf("cache_bytes = %d, want 4", m["ppfserve_cache_bytes"])
	}
}

// TestCachePeerFillEndpoints: the GET/PUT /cache/{key} pair the cluster's
// peer-fill protocol rides on. A filled key turns the next submit of the
// matching spec into a cache hit — no simulation runs.
func TestCachePeerFillEndpoints(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 2})
	ran := false
	srv.SetRunner(func(jb *Job) ([]byte, error) {
		ran = true
		return []byte("{\"stub\":true}\n"), nil
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	spec := harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	key := resolved.Key()
	canonical := []byte("{\"peer\":\"filled\"}\n")

	// Missing key → 404; malformed key → 400.
	if resp, _ := http.Get(hs.URL + "/cache/" + key); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET of unfilled key: status %d, want 404", resp.StatusCode)
	}
	badPut, _ := http.NewRequest(http.MethodPut, hs.URL+"/cache/short", bytes.NewReader(canonical))
	if resp, err := http.DefaultClient.Do(badPut); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT with short key: %v status %d, want 400", err, resp.StatusCode)
	}

	put, _ := http.NewRequest(http.MethodPut, hs.URL+"/cache/"+key, bytes.NewReader(canonical))
	resp, err := http.DefaultClient.Do(put)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /cache: %v status %d", err, resp.StatusCode)
	}

	got, err := http.Get(hs.URL + "/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(got.Body)
	got.Body.Close()
	if !bytes.Equal(b, canonical) {
		t.Errorf("GET /cache returned %q, want the PUT bytes", b)
	}

	resp2, sr := postJob(t, hs.URL, spec, "")
	if resp2.StatusCode != http.StatusOK || !sr.Cached {
		t.Errorf("submit after peer fill: status %d cached=%v, want a cache hit", resp2.StatusCode, sr.Cached)
	}
	if ran {
		t.Error("simulation ran despite the peer-filled cache entry")
	}

	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_cache_fills"] != 1 {
		t.Errorf("cache_fills = %d, want 1", m["ppfserve_cache_fills"])
	}
}
