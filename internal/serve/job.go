// Package serve is the simulation-as-a-service layer: a long-running HTTP
// daemon that accepts benchmark×scheme×config jobs, runs them on a bounded
// worker pool layered on harness.Suite, serves results from a
// content-addressed cache, streams per-job progress over SSE, and exposes a
// /metrics endpoint combining server counters with the simulator's merged
// trace registries. Design-space exploration around programmable
// prefetchers is sweep-shaped; the service turns the one-shot CLI harness
// into an always-warm result store where identical in-flight and past
// requests never simulate twice.
package serve

import (
	"strconv"
	"sync"
	"time"

	"eventpf/internal/harness"
)

// State is a job's position in its lifecycle. Transitions only move
// forward: Queued → Running → one of the terminal states, or Queued
// directly to Rejected when a drain empties the queue.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateRejected State = "rejected" // dropped from the queue (drain or cancel)
)

// Terminal reports whether no further transitions can happen. Exported so
// the cluster coordinator can recognise the end of a proxied SSE stream.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRejected
}

// ProgressEvent is one entry of a job's ordered progress chain, streamed to
// SSE subscribers. Seq is dense and starts at 0 (the "queued" event), so a
// client can detect gaps; a late subscriber replays the retained chain,
// preceded by a synthesized snapshot event when the oldest entries have
// been compacted away (Snapshot true, Seq = last compacted seq).
type ProgressEvent struct {
	Seq   int64 `json:"seq"`
	State State `json:"state"`
	// Phase refines Running ("simulating") and carries the terminal detail
	// ("oracle-checked", "draining", …).
	Phase string `json:"phase,omitempty"`
	// Events is the number of machine trace events observed so far; SimTicks
	// is the simulated clock they reach. Zero outside Running progress.
	Events   int64  `json:"events,omitempty"`
	SimTicks int64  `json:"sim_ticks,omitempty"`
	Error    string `json:"error,omitempty"`
	// Snapshot marks a synthesized event folding every compacted entry up
	// to and including Seq: its State/Events/SimTicks are the latest values
	// the dropped prefix reached.
	Snapshot bool `json:"snapshot,omitempty"`
}

// Job is one admitted simulation request and its runtime state. The spec is
// immutable after admission; everything else is guarded by mu.
type Job struct {
	ID   string          `json:"id"`
	Key  string          `json:"key"` // content address of the resolved config
	Spec harness.JobSpec `json:"spec"`

	resolved harness.Job

	mu     sync.Mutex
	state  State
	errMsg string
	result []byte // canonical harness.EncodeResult bytes, set when done
	// events is the retained tail of the progress chain: seqs
	// [firstSeq, nextSeq). Older entries are folded into snap so a long
	// sweep cannot grow job memory without bound.
	events   []ProgressEvent
	firstSeq int64
	nextSeq  int64
	snap     *ProgressEvent // folded prefix [0, firstSeq); nil until compaction
	histCap  int
	subs     map[chan ProgressEvent]struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, spec harness.JobSpec, resolved harness.Job, now time.Time, histCap int) *Job {
	j := &Job{
		ID:       id,
		Key:      resolved.Key(),
		Spec:     spec,
		resolved: resolved,
		state:    StateQueued,
		histCap:  histCap,
		subs:     map[chan ProgressEvent]struct{}{},
		created:  now,
	}
	j.Publish(ProgressEvent{State: StateQueued})
	return j
}

// Publish appends the next event of the chain (assigning its Seq) and fans
// it out to subscribers. Callers must NOT hold j.mu. Exported so cluster
// tests and custom runners (SetRunner) can emit progress.
func (j *Job) Publish(ev ProgressEvent) {
	j.mu.Lock()
	ev.Seq = j.nextSeq
	j.nextSeq++
	j.events = append(j.events, ev)
	if ev.State != "" {
		j.state = ev.State
	}
	if ev.Error != "" {
		j.errMsg = ev.Error
	}
	if j.histCap > 0 && len(j.events) > j.histCap {
		j.compactLocked()
	}
	var subs []chan ProgressEvent
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	for _, ch := range subs {
		// Subscriber channels are buffered; a stalled client drops events
		// rather than stalling the simulation. The SSE handler resyncs from
		// the replay log on reconnect.
		select {
		case ch <- ev:
		default:
		}
	}
}

// compactLocked folds the oldest events beyond the history cap into the
// snapshot event, keeping the chain's tail exact and its prefix summarised.
// Callers hold j.mu.
func (j *Job) compactLocked() {
	drop := len(j.events) - j.histCap
	snap := ProgressEvent{}
	if j.snap != nil {
		snap = *j.snap
	}
	for _, ev := range j.events[:drop] {
		if ev.State != "" {
			snap.State = ev.State
		}
		if ev.Phase != "" && !ev.Snapshot {
			snap.Phase = ev.Phase
		}
		if ev.Events > snap.Events {
			snap.Events = ev.Events
		}
		if ev.SimTicks > snap.SimTicks {
			snap.SimTicks = ev.SimTicks
		}
		if ev.Error != "" {
			snap.Error = ev.Error
		}
	}
	j.firstSeq += int64(drop)
	snap.Seq = j.firstSeq - 1
	snap.Snapshot = true
	j.snap = &snap
	j.events = append(j.events[:0], j.events[drop:]...)
}

// replayFromLocked returns every retained event with seq >= from, preceded
// by the snapshot event when `from` predates the retained tail. Callers
// hold j.mu; the returned slice is freshly allocated.
func (j *Job) replayFromLocked(from int64) []ProgressEvent {
	var out []ProgressEvent
	if j.snap != nil && from <= j.snap.Seq {
		out = append(out, *j.snap)
		from = j.firstSeq
	}
	if from < j.firstSeq {
		from = j.firstSeq
	}
	if idx := from - j.firstSeq; idx < int64(len(j.events)) {
		out = append(out, j.events[idx:]...)
	}
	return out
}

// replayFrom is replayFromLocked with locking.
func (j *Job) replayFrom(from int64) []ProgressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayFromLocked(from)
}

// subscribe registers a new subscriber and returns the replay of everything
// retained so far; the channel receives all later events.
func (j *Job) subscribe() (<-chan ProgressEvent, []ProgressEvent, func()) {
	ch := make(chan ProgressEvent, 64)
	j.mu.Lock()
	replay := j.replayFromLocked(0)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, replay, cancel
}

// snapshot returns the job's externally visible status.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Key:    j.Key,
		Spec:   j.Spec,
		State:  j.state,
		Error:  j.errMsg,
		Events: j.nextSeq,
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// JobStatus is the GET /jobs/{id} response body.
type JobStatus struct {
	ID         string          `json:"id"`
	Key        string          `json:"key"`
	Spec       harness.JobSpec `json:"spec"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Events     int64           `json:"progress_events"`
	RunSeconds float64         `json:"run_seconds,omitempty"`
}

// currentState returns the current state under the lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setResult stores the canonical result bytes (called once, on done).
func (j *Job) setResult(b []byte) {
	j.mu.Lock()
	j.result = b
	j.mu.Unlock()
}

// resultBytes returns the stored canonical bytes, or nil if not done.
func (j *Job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func jobID(prefix string, n uint64) string { return prefix + strconv.FormatUint(n, 10) }
