// Package serve is the simulation-as-a-service layer: a long-running HTTP
// daemon that accepts benchmark×scheme×config jobs, runs them on a bounded
// worker pool layered on harness.Suite, serves results from a
// content-addressed cache, streams per-job progress over SSE, and exposes a
// /metrics endpoint combining server counters with the simulator's merged
// trace registries. Design-space exploration around programmable
// prefetchers is sweep-shaped; the service turns the one-shot CLI harness
// into an always-warm result store where identical in-flight and past
// requests never simulate twice.
package serve

import (
	"fmt"
	"sync"
	"time"

	"eventpf/internal/harness"
)

// State is a job's position in its lifecycle. Transitions only move
// forward: Queued → Running → one of the terminal states, or Queued
// directly to Rejected when a drain empties the queue.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateRejected State = "rejected" // dropped from the queue (drain or cancel)
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRejected
}

// ProgressEvent is one entry of a job's ordered progress chain, streamed to
// SSE subscribers. Seq is dense and starts at 0 (the "queued" event), so a
// client can detect gaps; a late subscriber replays the whole chain.
type ProgressEvent struct {
	Seq   int64 `json:"seq"`
	State State `json:"state"`
	// Phase refines Running ("simulating") and carries the terminal detail
	// ("oracle-checked", "draining", …).
	Phase string `json:"phase,omitempty"`
	// Events is the number of machine trace events observed so far; SimTicks
	// is the simulated clock they reach. Zero outside Running progress.
	Events   int64  `json:"events,omitempty"`
	SimTicks int64  `json:"sim_ticks,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Job is one admitted simulation request and its runtime state. The spec is
// immutable after admission; everything else is guarded by mu.
type Job struct {
	ID   string          `json:"id"`
	Key  string          `json:"key"` // content address of the resolved config
	Spec harness.JobSpec `json:"spec"`

	resolved harness.Job

	mu       sync.Mutex
	state    State
	errMsg   string
	result   []byte // canonical harness.EncodeResult bytes, set when done
	events   []ProgressEvent
	subs     map[chan ProgressEvent]struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, spec harness.JobSpec, resolved harness.Job, now time.Time) *Job {
	j := &Job{
		ID:       id,
		Key:      resolved.Key(),
		Spec:     spec,
		resolved: resolved,
		state:    StateQueued,
		subs:     map[chan ProgressEvent]struct{}{},
		created:  now,
	}
	j.publish(ProgressEvent{State: StateQueued})
	return j
}

// publish appends the next event of the chain (assigning its Seq) and fans
// it out to subscribers. Callers must NOT hold j.mu.
func (j *Job) publish(ev ProgressEvent) {
	j.mu.Lock()
	ev.Seq = int64(len(j.events))
	j.events = append(j.events, ev)
	if ev.State != "" {
		j.state = ev.State
	}
	if ev.Error != "" {
		j.errMsg = ev.Error
	}
	var subs []chan ProgressEvent
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	for _, ch := range subs {
		// Subscriber channels are buffered; a stalled client drops events
		// rather than stalling the simulation. The SSE handler resyncs from
		// the replay log on reconnect.
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a new subscriber and returns the replay of everything
// published so far; the channel receives all later events.
func (j *Job) subscribe() (<-chan ProgressEvent, []ProgressEvent, func()) {
	ch := make(chan ProgressEvent, 64)
	j.mu.Lock()
	replay := append([]ProgressEvent(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, replay, cancel
}

// snapshot returns the job's externally visible status.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Key:    j.Key,
		Spec:   j.Spec,
		State:  j.state,
		Error:  j.errMsg,
		Events: int64(len(j.events)),
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// JobStatus is the GET /jobs/{id} response body.
type JobStatus struct {
	ID         string          `json:"id"`
	Key        string          `json:"key"`
	Spec       harness.JobSpec `json:"spec"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Events     int64           `json:"progress_events"`
	RunSeconds float64         `json:"run_seconds,omitempty"`
}

// state returns the current state under the lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setResult stores the canonical result bytes (called once, on done).
func (j *Job) setResult(b []byte) {
	j.mu.Lock()
	j.result = b
	j.mu.Unlock()
}

// resultBytes returns the stored canonical bytes, or nil if not done.
func (j *Job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func jobID(n uint64) string { return fmt.Sprintf("j%d", n) }
