package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eventpf/internal/trace"
)

// metrics holds the server-level counters exposed at /metrics. All fields
// are atomics so the scrape path never contends with the serving path.
type metrics struct {
	submitted            atomic.Int64 // POST /jobs bodies that decoded
	completed            atomic.Int64 // jobs that reached done
	failed               atomic.Int64 // jobs that reached failed
	rejectedValidation   atomic.Int64 // 400: bad bench/scheme/scale
	rejectedBackpressure atomic.Int64 // 429: admission queue full
	rejectedDraining     atomic.Int64 // 503: submitted during drain
	deduped              atomic.Int64 // coalesced onto an in-flight job
	cacheHits            atomic.Int64 // served straight from the result cache
	cacheMisses          atomic.Int64 // admitted for simulation
	cacheEvictions       atomic.Int64 // entries pushed out by the LRU bound
	cacheFills           atomic.Int64 // entries inserted via PUT /cache (peer fill / replication)
	inflight             atomic.Int64 // jobs currently simulating
	draining             atomic.Bool
}

// simAggregate accumulates the per-run trace registries of completed jobs.
// Each run's registry is confined to its simulation goroutine; the finished
// snapshot is merged here under the lock.
type simAggregate struct {
	mu  sync.Mutex
	reg *trace.Registry
}

func newSimAggregate() *simAggregate {
	return &simAggregate{reg: trace.NewRegistry()}
}

func (a *simAggregate) merge(r *trace.Registry) {
	a.mu.Lock()
	a.reg.Merge(r)
	a.mu.Unlock()
}

// writeTo renders the aggregate as exposition lines with a sim_ prefix,
// sorted by name. Histograms expose count/sum plus p50/p99/max summaries.
func (a *simAggregate) writeTo(w io.Writer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var lines []string
	for _, c := range a.reg.Counters() {
		lines = append(lines, fmt.Sprintf("sim_%s %d", metricName(c.Name), c.N))
	}
	for _, h := range a.reg.Hists() {
		n := metricName(h.Name)
		lines = append(lines,
			fmt.Sprintf("sim_%s_count %d", n, h.N),
			fmt.Sprintf("sim_%s_sum %d", n, h.Sum),
			fmt.Sprintf("sim_%s_p50 %d", n, h.Quantile(0.5)),
			fmt.Sprintf("sim_%s_p99 %d", n, h.Quantile(0.99)),
			fmt.Sprintf("sim_%s_max %d", n, h.Max()),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// metricName folds a registry name ("pf.req.queue") into exposition form
// ("pf_req_queue").
func metricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '-', ' ', '/':
			return '_'
		}
		return r
	}, s)
}
