package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"eventpf/internal/harness"
	"eventpf/internal/trace"
)

// startWorkers launches the bounded pool. The pool is the only place
// simulations run, so goroutine growth is bounded by Workers regardless of
// request volume — saturation turns into 429s at admission, never into
// unbounded concurrency.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for jb := range s.queue {
				s.dispatch(jb)
			}
		}()
	}
}

// dispatch runs one popped job, or rejects it if it was cancelled while
// queued or the server is draining (drain semantics: in-flight jobs finish,
// queued jobs are rejected).
func (s *Server) dispatch(jb *Job) {
	if jb.currentState() != StateQueued {
		return // cancelled while queued; already terminal
	}
	if s.m.draining.Load() {
		s.finishJob(jb, StateRejected, "server draining: queued job rejected")
		return
	}
	s.m.inflight.Add(1)
	jb.mu.Lock()
	jb.started = time.Now()
	jb.mu.Unlock()
	jb.Publish(ProgressEvent{State: StateRunning, Phase: "starting"})

	result, err := s.runJob(jb)

	jb.mu.Lock()
	jb.finished = time.Now()
	dur := jb.finished.Sub(jb.started)
	jb.mu.Unlock()
	s.observeRunDuration(dur)
	s.m.inflight.Add(-1)

	switch {
	case err != nil && errors.Is(err, harness.ErrUnsupported):
		s.finishJob(jb, StateFailed, fmt.Sprintf("scheme %s is not applicable to %s (the paper's missing bars)",
			jb.resolved.Scheme, jb.resolved.Bench.Name))
	case err != nil:
		s.finishJob(jb, StateFailed, err.Error())
	default:
		jb.setResult(result)
		s.storeResult(jb, result)
		s.m.completed.Add(1)
		jb.Publish(ProgressEvent{State: StateDone, Phase: "oracle-checked"})
	}
}

// finishJob moves a job to a terminal failure/rejection state and clears
// its in-flight registration.
func (s *Server) finishJob(jb *Job, st State, msg string) {
	s.mu.Lock()
	if s.byKey[jb.Key] == jb {
		delete(s.byKey, jb.Key)
	}
	s.mu.Unlock()
	if st == StateFailed {
		s.m.failed.Add(1)
	}
	jb.Publish(ProgressEvent{State: st, Error: msg})
}

// simulate is the production runJob: one suite measurement with the job's
// own progress sink and metrics registry attached. The registry is confined
// to the simulation goroutine until the run finishes, then merged into the
// server-wide aggregate.
func (s *Server) simulate(jb *Job) ([]byte, error) {
	reg := trace.NewRegistry()
	sink := &progressSink{job: jb, every: s.cfg.ProgressEvery}
	inst := &harness.Instrument{
		Sink:    sink,
		Metrics: reg,
		Started: func() { jb.Publish(ProgressEvent{State: StateRunning, Phase: "simulating"}) },
	}
	res, err := s.suite.RunInstrumented(context.Background(), jb.resolved.Pair(), inst)
	if err != nil {
		return nil, err
	}
	s.sim.merge(reg)
	var buf bytes.Buffer
	if err := harness.EncodeResult(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// observeRunDuration feeds the Retry-After estimator (stats.EWMA, α=1/4).
func (s *Server) observeRunDuration(d time.Duration) {
	s.mu.Lock()
	s.ewmaRun.Observe(d.Nanoseconds())
	s.mu.Unlock()
}

// retryAfterLocked estimates how long a rejected client should wait for a
// queue slot: the queued work divided by the worker pool, clamped to
// [1s, 30s]. Callers hold s.mu.
func (s *Server) retryAfterLocked() int {
	est := time.Duration(s.ewmaRun.Value()) * time.Duration(len(s.queue)+1) / time.Duration(s.cfg.Workers)
	sec := int(est / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// Drain gracefully shuts the daemon down: new submissions are refused,
// queued jobs are rejected, in-flight jobs run to completion. It returns
// when the workers have drained or ctx expires (a second SIGTERM path
// force-exits without waiting; see HandleSignals).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		select {
		case <-s.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.draining = true
	s.m.draining.Store(true)
	close(s.queue) // submissions check draining under s.mu before sending
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(s.drained)
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
