package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"eventpf/internal/harness"
)

const testScale = 0.02

func postJob(t *testing.T, url string, spec harness.JobSpec, query string) (*http.Response, submitResponse) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp, sr
}

func scrapeMetrics(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var name string
		var v int64
		if _, err := fmt.Sscanf(sc.Text(), "%s %d", &name, &v); err == nil {
			m[name] = v
		}
	}
	return m
}

// waitState polls until the job reaches want (or any terminal state).
func waitState(t *testing.T, jb *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := jb.currentState()
		if st == want {
			return
		}
		if st.Terminal() {
			t.Fatalf("job reached terminal state %s while waiting for %s", st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for state %s (at %s)", want, jb.currentState())
}

// TestSubmitCacheHitAndDeterminism is the end-to-end acceptance path: a
// real (small) simulation through the full HTTP stack, a second submission
// served from the content-addressed cache without re-simulating, and the
// served bytes byte-identical to what ppfsim -json prints for the config.
func TestSubmitCacheHitAndDeterminism(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 8, ProgressEvery: 1000})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	spec := harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: testScale}
	resp, sr := postJob(t, hs.URL, spec, "?wait=1")
	if resp.StatusCode != http.StatusOK || sr.State != StateDone || sr.Cached {
		t.Fatalf("first submit: status=%d state=%s cached=%v err=%q", resp.StatusCode, sr.State, sr.Cached, sr.Error)
	}
	if len(sr.Result) == 0 {
		t.Fatal("first submit returned no result")
	}

	// Same config, different spelling: must be a cache hit on the same key.
	resp2, sr2 := postJob(t, hs.URL, harness.JobSpec{Bench: "hj2", Scheme: "stride", Scale: testScale}, "")
	if resp2.StatusCode != http.StatusOK || !sr2.Cached || sr2.Key != sr.Key {
		t.Fatalf("second submit: status=%d cached=%v key=%s (want hit on %s)", resp2.StatusCode, sr2.Cached, sr2.Key, sr.Key)
	}

	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_cache_hits"] != 1 || m["ppfserve_cache_misses"] != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m["ppfserve_cache_hits"], m["ppfserve_cache_misses"])
	}
	if m["ppfserve_memo_misses"] != 1 {
		t.Errorf("memo misses = %d, want 1 (exactly one simulation)", m["ppfserve_memo_misses"])
	}
	if _, ok := m["sim_core_ops"]; len(srv.sim.reg.Counters()) > 0 && !ok {
		// The merged sim registry is exposed with a sim_ prefix; which
		// counters exist depends on the machine, so only check the scrape
		// carried some sim_ lines when the aggregate is non-empty.
		found := false
		for k := range m {
			if strings.HasPrefix(k, "sim_") {
				found = true
				break
			}
		}
		if !found {
			t.Error("metrics scrape carried no sim_ lines despite a merged registry")
		}
	}

	// Byte-identical serving: /result must equal EncodeResult of a direct
	// harness run of the same resolved config.
	res, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	j, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := harness.Run(j.Bench, j.Scheme, harness.Options{Scale: j.Scale})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := harness.EncodeResult(&want, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), want.Bytes()) {
		t.Errorf("served result differs from direct harness encoding:\nserved: %.120s\ndirect: %.120s",
			served.String(), want.String())
	}
}

func TestValidationErrorsListMenus(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for _, tc := range []struct {
		spec harness.JobSpec
		want string
	}{
		{harness.JobSpec{Bench: "nope", Scheme: "manual"}, "hj2"},
		// Extra benches must appear in the menu too: the duplicated All/Extra
		// lookup loops once dropped them from the 400 response's list.
		{harness.JobSpec{Bench: "nope", Scheme: "manual"}, "phasemix"},
		{harness.JobSpec{Bench: "nope", Scheme: "manual"}, "spmv"},
		{harness.JobSpec{Bench: "HJ-2", Scheme: "nope"}, "manual-blocked"},
		{harness.JobSpec{Bench: "HJ-2", Scheme: "manual", Scale: 99}, "exceeds"},
	} {
		body, _ := json.Marshal(tc.spec)
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", tc.spec, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%+v: body %q does not mention %q", tc.spec, buf.String(), tc.want)
		}
	}
	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_jobs_rejected_validation"] != 5 {
		t.Errorf("rejected_validation = %d, want 5", m["ppfserve_jobs_rejected_validation"])
	}
}

// blockingServer builds a server whose runner blocks until released,
// returning the release function.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	srv := NewServer(cfg)
	block := make(chan struct{})
	srv.runJob = func(jb *Job) ([]byte, error) {
		<-block
		return []byte("{\"stub\":true}\n"), nil
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	var once sync.Once
	return srv, hs, func() { once.Do(func() { close(block) }) }
}

// TestBackpressure429 saturates the admission queue and checks the
// explicit-backpressure contract: 429 + Retry-After, no queue growth, no
// goroutine growth.
func TestBackpressure429(t *testing.T) {
	srv, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})
	defer release()

	// First job: admitted, popped by the worker, blocks in runJob.
	_, srA := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "")
	jbA, ok := srv.lookup(srA.ID)
	if !ok {
		t.Fatal("job A not found")
	}
	waitState(t, jbA, StateRunning)

	// Second job fills the queue.
	respB, _ := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.01}, "")
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d, want 202", respB.StatusCode)
	}

	// Everything beyond is rejected with 429 + Retry-After; goroutines stay
	// bounded (rejections allocate nothing that lives on).
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		resp, _ := postJob(t, hs.URL, harness.JobSpec{Bench: "RandAcc", Scheme: "manual", Scale: 0.01, PPUs: 2 + i%7}, "")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated submit %d: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
	runtime.GC()
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Errorf("goroutines grew from %d to %d under saturation", before, after)
	}
	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_jobs_rejected_backpressure"] != 100 {
		t.Errorf("rejected_backpressure = %d, want 100", m["ppfserve_jobs_rejected_backpressure"])
	}
	if m["ppfserve_queue_depth"] != 1 || m["ppfserve_jobs_inflight"] != 1 {
		t.Errorf("queue_depth=%d inflight=%d, want 1/1", m["ppfserve_queue_depth"], m["ppfserve_jobs_inflight"])
	}
	release()
}

// TestInflightDedup: a duplicate of a queued/running job coalesces onto it
// instead of consuming a queue slot.
func TestInflightDedup(t *testing.T) {
	srv, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
	defer release()
	spec := harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}
	_, sr1 := postJob(t, hs.URL, spec, "")
	jb, _ := srv.lookup(sr1.ID)
	waitState(t, jb, StateRunning)
	resp2, sr2 := postJob(t, hs.URL, spec, "")
	if resp2.StatusCode != http.StatusAccepted || !sr2.Dedup || sr2.ID != sr1.ID {
		t.Fatalf("duplicate submit: status=%d dedup=%v id=%s (want %s)", resp2.StatusCode, sr2.Dedup, sr2.ID, sr1.ID)
	}
	m := scrapeMetrics(t, hs.URL)
	if m["ppfserve_jobs_deduped"] != 1 {
		t.Errorf("deduped = %d, want 1", m["ppfserve_jobs_deduped"])
	}
}

// TestGracefulShutdown pins the drain contract: the in-flight job
// completes, the queued job is rejected, new submissions get 503, and
// Drain returns.
func TestGracefulShutdown(t *testing.T) {
	srv, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})

	_, srA := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "")
	jbA, _ := srv.lookup(srA.ID)
	waitState(t, jbA, StateRunning)
	_, srB := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.01}, "")
	jbB, _ := srv.lookup(srB.ID)

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()

	// New work is refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJob(t, hs.URL, harness.JobSpec{Bench: "RandAcc", Scheme: "no-pf", Scale: 0.01}, "")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions during drain never saw 503 (last status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	release() // let the in-flight job finish
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := jbA.currentState(); st != StateDone {
		t.Errorf("in-flight job ended %s, want done", st)
	}
	if jbA.resultBytes() == nil {
		t.Error("in-flight job lost its result")
	}
	if st := jbB.currentState(); st != StateRejected {
		t.Errorf("queued job ended %s, want rejected", st)
	}
	// Drain is idempotent once drained.
	if err := srv.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestSignalPolicy: first signal drains gracefully; a second signal while
// the drain hangs forces exit(1).
func TestSignalPolicy(t *testing.T) {
	t.Run("graceful", func(t *testing.T) {
		srv, _, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})
		release()
		sigc := make(chan os.Signal, 2)
		exitCode := -1
		shutdownCalled := false
		done := make(chan struct{})
		go func() {
			HandleSignals(srv, sigc, func() { shutdownCalled = true }, func(c int) { exitCode = c })
			close(done)
		}()
		sigc <- syscall.SIGTERM
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("graceful shutdown did not complete")
		}
		if !shutdownCalled || exitCode != -1 {
			t.Errorf("graceful path: shutdown=%v exit=%d, want true/-1", shutdownCalled, exitCode)
		}
	})
	t.Run("forced", func(t *testing.T) {
		srv, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})
		defer release()
		// An in-flight blocked job makes the drain hang until released.
		_, sr := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "")
		jb, _ := srv.lookup(sr.ID)
		waitState(t, jb, StateRunning)
		sigc := make(chan os.Signal, 2)
		exited := make(chan int, 1)
		done := make(chan struct{})
		go func() {
			HandleSignals(srv, sigc, nil, func(c int) { exited <- c })
			close(done)
		}()
		sigc <- syscall.SIGTERM
		sigc <- syscall.SIGTERM
		select {
		case code := <-exited:
			if code != 1 {
				t.Errorf("forced exit code %d, want 1", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("second signal did not force exit")
		}
		release()
		<-done
	})
}

// TestSSEChainOrder: progress events arrive strictly seq-ordered with the
// lifecycle states in chain order, for both a live subscriber and a late
// one that replays.
func TestSSEChainOrder(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	srv.runJob = func(jb *Job) ([]byte, error) {
		<-gate // hold until the subscriber attached
		for i := 1; i <= 5; i++ {
			jb.Publish(ProgressEvent{State: StateRunning, Phase: "simulating", Events: int64(i * 100)})
		}
		return []byte("{\"stub\":true}\n"), nil
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	_, sr := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "")

	check := func(t *testing.T, events []ProgressEvent) {
		t.Helper()
		if len(events) < 4 {
			t.Fatalf("only %d events streamed", len(events))
		}
		for i, ev := range events {
			if ev.Seq != int64(i) {
				t.Fatalf("event %d has seq %d: chain broken (%+v)", i, ev.Seq, events)
			}
		}
		order := map[State]int{StateQueued: 0, StateRunning: 1, StateDone: 2, StateFailed: 2, StateRejected: 2}
		for i := 1; i < len(events); i++ {
			if order[events[i].State] < order[events[i-1].State] {
				t.Fatalf("state went backwards: %s after %s", events[i].State, events[i-1].State)
			}
		}
		if events[0].State != StateQueued {
			t.Errorf("chain starts with %s, want queued", events[0].State)
		}
		if last := events[len(events)-1]; last.State != StateDone {
			t.Errorf("chain ends with %s, want done", last.State)
		}
	}

	// Live subscriber: attach before the job makes progress, then open the gate.
	resp, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	live := readSSE(t, resp)
	check(t, live)

	// Late subscriber: the job is long done; the whole chain replays.
	resp2, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	check(t, readSSE(t, resp2))
}

// readSSE consumes one SSE stream until it closes, returning the data
// payloads in arrival order.
func readSSE(t *testing.T, resp *http.Response) []ProgressEvent {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q, want text/event-stream", ct)
	}
	var events []ProgressEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev ProgressEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	return events
}

// TestCancelQueuedJob: DELETE on a queued job rejects it; the worker skips
// it when popped.
func TestCancelQueuedJob(t *testing.T) {
	srv, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	defer release()
	_, srA := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "no-pf", Scale: 0.01}, "")
	jbA, _ := srv.lookup(srA.ID)
	waitState(t, jbA, StateRunning)
	_, srB := postJob(t, hs.URL, harness.JobSpec{Bench: "HJ-2", Scheme: "stride", Scale: 0.01}, "")

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+srB.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	jbB, _ := srv.lookup(srB.ID)
	if st := jbB.currentState(); st != StateRejected {
		t.Errorf("cancelled job state %s, want rejected", st)
	}
	// Running jobs cannot be cancelled.
	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+srA.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancelling a running job: status %d, want 409", resp.StatusCode)
	}
	release()
	// The worker must skip the cancelled job and stay healthy: submit one
	// more and see it complete.
	_, srC := postJob(t, hs.URL, harness.JobSpec{Bench: "RandAcc", Scheme: "no-pf", Scale: 0.01}, "")
	jbC, _ := srv.lookup(srC.ID)
	deadline := time.Now().Add(5 * time.Second)
	for jbC.currentState() != StateDone && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if st := jbC.currentState(); st != StateDone {
		t.Errorf("post-cancel job state %s, want done", st)
	}
}

// TestUnsupportedPairFails: the paper's missing bars surface as a failed
// job with a helpful message, not a hung request.
func TestUnsupportedPairFails(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, sr := postJob(t, hs.URL, harness.JobSpec{Bench: "PageRank", Scheme: "software", Scale: 0.01}, "?wait=1")
	if resp.StatusCode != http.StatusUnprocessableEntity || sr.State != StateFailed {
		t.Fatalf("unsupported pair: status=%d state=%s", resp.StatusCode, sr.State)
	}
	if !strings.Contains(sr.Error, "not applicable") {
		t.Errorf("error %q does not explain unsupportedness", sr.Error)
	}
}
