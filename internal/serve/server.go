package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"eventpf/internal/harness"
	"eventpf/internal/stats"
	"eventpf/internal/workloads"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production-minded default.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// a Retry-After hint instead of growing without bound (default 64).
	QueueDepth int
	// DefaultScale is substituted when a job omits scale (default 0.05 — a
	// serving-sized input, not the full paper input).
	DefaultScale float64
	// MaxScale rejects jobs above this input scale so one request cannot
	// monopolise the service (default 1.0).
	MaxScale float64
	// CacheEntries caps the content-addressed result cache entry count
	// (default 4096; eviction is LRU).
	CacheEntries int
	// CacheBytes caps the cache's total stored bytes (default 256 MiB;
	// eviction is LRU, but a single entry larger than the cap is retained
	// rather than thrashed).
	CacheBytes int64
	// JobHistory caps how many terminal jobs stay queryable by ID
	// (default 1024).
	JobHistory int
	// EventHistory caps each job's retained progress chain; older events
	// fold into one synthesized snapshot event (default 256).
	EventHistory int
	// ProgressEvery publishes one SSE progress event per this many machine
	// trace events (default 65536).
	ProgressEvery int64
	// IDPrefix prefixes every job ID (default "j"). Cluster workers use
	// their worker name so IDs stay unique across the fleet.
	IDPrefix string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 0.05
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.EventHistory <= 0 {
		c.EventHistory = 256
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1 << 16
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "j"
	}
	return c
}

// cacheEntry is one content-addressed result: the canonical bytes plus the
// job that produced them (empty for peer-filled entries).
type cacheEntry struct {
	key   string
	bytes []byte
	jobID string
}

// Server is the simulation-as-a-service daemon. One Server owns one
// harness.Suite, so the suite's singleflight memo is the second layer of
// the cache: even if the serve-level cache evicted an entry, re-simulating
// it hits the memo.
type Server struct {
	cfg   Config
	suite *harness.Suite
	mux   *http.ServeMux
	m     metrics
	sim   *simAggregate

	// runJob performs one admitted simulation; tests and cluster stubs
	// substitute it via SetRunner so queue/drain/SSE behaviour is checkable
	// without real simulations.
	runJob func(*Job) ([]byte, error)

	mu         sync.Mutex
	seq        uint64
	jobs       map[string]*Job
	jobOrder   []string
	byKey      map[string]*Job // queued or running job per content key
	cache      map[string]*list.Element
	cacheLRU   *list.List // front = most recently used *cacheEntry
	cacheBytes int64
	queue      chan *Job
	draining   bool
	drained    chan struct{} // closed when Drain finishes
	ewmaRun    stats.EWMA    // smoothed job duration, feeds Retry-After

	workerWG sync.WaitGroup
}

// NewServer builds a daemon and starts its workers.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		suite:    harness.NewSuite(harness.Options{Parallel: cfg.Workers}),
		jobs:     map[string]*Job{},
		byKey:    map[string]*Job{},
		cache:    map[string]*list.Element{},
		cacheLRU: list.New(),
		queue:    make(chan *Job, cfg.QueueDepth),
		ewmaRun:  stats.NewEWMA(4),
		drained:  make(chan struct{}),
		sim:      newSimAggregate(),
	}
	s.runJob = s.simulate
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.startWorkers()
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetRunner replaces the function that executes admitted jobs. Production
// keeps the built-in simulator; cluster and queue tests substitute stubs
// (which may call Job.Publish to emit progress). Call before serving
// traffic.
func (s *Server) SetRunner(run func(*Job) ([]byte, error)) { s.runJob = run }

// submitResponse is the POST /jobs response body.
type submitResponse struct {
	ID     string          `json:"id,omitempty"`
	Key    string          `json:"key"`
	State  State           `json:"state"`
	Cached bool            `json:"cached"`
	Dedup  bool            `json:"dedup,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// errorResponse is every non-2xx JSON body. The valid-value lists turn a
// typo'd request into a menu (satellite: surface workloads.ByName's list).
type errorResponse struct {
	Error           string   `json:"error"`
	ValidBenchmarks []string `json:"valid_benchmarks,omitempty"`
	ValidSchemes    []string `json:"valid_schemes,omitempty"`
	RetryAfter      int      `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit admits one job: cache hit → immediate result; duplicate of
// an in-flight job → coalesce; queue full → 429 + Retry-After; draining →
// 503; otherwise enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec harness.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.m.rejectedValidation.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	s.m.submitted.Add(1)
	if spec.Scale == 0 {
		spec.Scale = s.cfg.DefaultScale
	}
	resolved, err := spec.Resolve()
	if err != nil {
		s.m.rejectedValidation.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:           err.Error(),
			ValidBenchmarks: workloads.MenuNames(),
			ValidSchemes:    harness.SchemeNames(),
		})
		return
	}
	if resolved.Scale > s.cfg.MaxScale {
		s.m.rejectedValidation.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("scale %g exceeds this server's maximum %g", resolved.Scale, s.cfg.MaxScale),
		})
		return
	}
	key := resolved.Key()

	s.mu.Lock()
	if e, ok := s.cacheGetLocked(key); ok {
		s.m.cacheHits.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, submitResponse{
			ID: e.jobID, Key: key, State: StateDone, Cached: true, Result: e.bytes,
		})
		return
	}
	if jb, ok := s.byKey[key]; ok {
		s.m.deduped.Add(1)
		s.mu.Unlock()
		s.respondMaybeWait(w, r, jb, submitResponse{ID: jb.ID, Key: key, State: jb.currentState(), Dedup: true})
		return
	}
	if s.draining {
		s.m.rejectedDraining.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining; not accepting jobs"})
		return
	}
	s.seq++
	jb := newJob(jobID(s.cfg.IDPrefix, s.seq), spec, resolved, time.Now(), s.cfg.EventHistory)
	select {
	case s.queue <- jb:
		s.m.cacheMisses.Add(1)
		s.jobs[jb.ID] = jb
		s.jobOrder = append(s.jobOrder, jb.ID)
		s.byKey[key] = jb
		s.evictJobsLocked()
		s.mu.Unlock()
		s.respondMaybeWait(w, r, jb, submitResponse{ID: jb.ID, Key: key, State: StateQueued})
	default:
		s.m.rejectedBackpressure.Add(1)
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:      "admission queue full",
			RetryAfter: retry,
		})
	}
}

// respondMaybeWait answers immediately, or — with ?wait=1 — blocks until
// the job is terminal and answers like a cache hit would have.
func (s *Server) respondMaybeWait(w http.ResponseWriter, r *http.Request, jb *Job, resp submitResponse) {
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	ch, replay, cancel := jb.subscribe()
	defer cancel()
	st := jb.currentState()
	for _, ev := range replay {
		if ev.State != "" {
			st = ev.State
		}
	}
	for !st.Terminal() {
		select {
		case ev := <-ch:
			if ev.State != "" {
				st = ev.State
			}
		case <-r.Context().Done():
			writeJSON(w, http.StatusAccepted, resp)
			return
		}
	}
	snap := jb.snapshot()
	resp.State = snap.State
	resp.Error = snap.Error
	resp.Result = jb.resultBytes()
	code := http.StatusOK
	if snap.State != StateDone {
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, resp)
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	return jb, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	type statusWithResult struct {
		JobStatus
		Result json.RawMessage `json:"result,omitempty"`
	}
	writeJSON(w, http.StatusOK, statusWithResult{JobStatus: jb.snapshot(), Result: jb.resultBytes()})
}

// handleResult serves the stored canonical result bytes verbatim — the
// byte-identical-to-ppfsim guarantee lives here.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	b := jb.resultBytes()
	if b == nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job is %s, not done", jb.currentState())})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	if jb.currentState() != StateQueued {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "only queued jobs can be cancelled"})
		return
	}
	s.finishJob(jb, StateRejected, "cancelled by client")
	writeJSON(w, http.StatusOK, jb.snapshot())
}

// handleCacheGet serves the raw cached bytes for a content key — the peer
// half of the cluster's peer-fill protocol. A hit refreshes LRU recency.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.CacheGet(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no cached result for that key"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// handleCachePut inserts externally produced canonical bytes under a
// content key. The cluster coordinator uses it to replicate results and to
// fill a newly-responsible worker from the previous owner, so rebalancing
// never re-runs a sweep.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if len(key) != 64 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "key must be a hex SHA-256 content address"})
		return
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil || len(b) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty or unreadable body"})
		return
	}
	s.CachePut(key, b)
	s.m.cacheFills.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// CacheGet returns the cached canonical bytes for a content key, if
// present, refreshing its LRU recency.
func (s *Server) CacheGet(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cacheGetLocked(key)
	if !ok {
		return nil, false
	}
	return e.bytes, true
}

// CachePut inserts canonical bytes under a content key (first write wins).
func (s *Server) CachePut(key string, b []byte) {
	s.mu.Lock()
	s.cachePutLocked(key, b, "")
	s.mu.Unlock()
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"benchmarks": workloads.MenuNames(),
		"schemes":    harness.SchemeNames(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.m.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders every server counter plus the suite memo counters
// and the merged per-run simulator registries as "name value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	queueDepth := len(s.queue)
	cacheEntries := s.cacheLRU.Len()
	cacheBytes := s.cacheBytes
	s.mu.Unlock()
	memoHits, memoMisses := s.suite.MemoStats()
	drain := int64(0)
	if s.m.draining.Load() {
		drain = 1
	}
	for _, kv := range []struct {
		name string
		v    int64
	}{
		{"ppfserve_jobs_submitted", s.m.submitted.Load()},
		{"ppfserve_jobs_completed", s.m.completed.Load()},
		{"ppfserve_jobs_failed", s.m.failed.Load()},
		{"ppfserve_jobs_rejected_validation", s.m.rejectedValidation.Load()},
		{"ppfserve_jobs_rejected_backpressure", s.m.rejectedBackpressure.Load()},
		{"ppfserve_jobs_rejected_draining", s.m.rejectedDraining.Load()},
		{"ppfserve_jobs_deduped", s.m.deduped.Load()},
		{"ppfserve_jobs_inflight", s.m.inflight.Load()},
		{"ppfserve_cache_hits", s.m.cacheHits.Load()},
		{"ppfserve_cache_misses", s.m.cacheMisses.Load()},
		{"ppfserve_cache_evictions", s.m.cacheEvictions.Load()},
		{"ppfserve_cache_fills", s.m.cacheFills.Load()},
		{"ppfserve_cache_entries", int64(cacheEntries)},
		{"ppfserve_cache_bytes", cacheBytes},
		{"ppfserve_queue_depth", int64(queueDepth)},
		{"ppfserve_queue_capacity", int64(s.cfg.QueueDepth)},
		{"ppfserve_workers", int64(s.cfg.Workers)},
		{"ppfserve_draining", drain},
		{"ppfserve_memo_hits", memoHits},
		{"ppfserve_memo_misses", memoMisses},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
	s.sim.writeTo(w)
}

// evictJobsLocked trims terminal jobs beyond the history cap, oldest first.
// Callers hold s.mu.
func (s *Server) evictJobsLocked() {
	for len(s.jobOrder) > s.cfg.JobHistory {
		evicted := false
		for i, id := range s.jobOrder {
			jb := s.jobs[id]
			if jb != nil && !jb.currentState().Terminal() {
				continue
			}
			delete(s.jobs, id)
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // everything live; cap is soft in that case
		}
	}
}

// cacheGetLocked looks a key up and refreshes its recency. Callers hold s.mu.
func (s *Server) cacheGetLocked(key string) (*cacheEntry, bool) {
	el, ok := s.cache[key]
	if !ok {
		return nil, false
	}
	s.cacheLRU.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// cachePutLocked inserts an entry (first write wins) and evicts LRU-last
// past the entry and byte caps. A single entry above the byte cap stays
// resident rather than thrashing. Callers hold s.mu.
func (s *Server) cachePutLocked(key string, b []byte, jobID string) {
	if el, ok := s.cache[key]; ok {
		s.cacheLRU.MoveToFront(el)
		return
	}
	el := s.cacheLRU.PushFront(&cacheEntry{key: key, bytes: b, jobID: jobID})
	s.cache[key] = el
	s.cacheBytes += int64(len(b))
	for s.cacheLRU.Len() > 1 &&
		(s.cacheLRU.Len() > s.cfg.CacheEntries || s.cacheBytes > s.cfg.CacheBytes) {
		back := s.cacheLRU.Back()
		e := back.Value.(*cacheEntry)
		s.cacheLRU.Remove(back)
		delete(s.cache, e.key)
		s.cacheBytes -= int64(len(e.bytes))
		s.m.cacheEvictions.Add(1)
	}
}

// storeResult publishes a completed job's canonical bytes into the
// content-addressed cache.
func (s *Server) storeResult(jb *Job, b []byte) {
	s.mu.Lock()
	s.cachePutLocked(jb.Key, b, jb.ID)
	delete(s.byKey, jb.Key)
	s.mu.Unlock()
}
