package serve

import (
	"context"
	"os"
	"time"
)

// HandleSignals implements the daemon's shutdown policy: the first signal
// starts a graceful drain (in-flight jobs finish, queued jobs are rejected,
// new submissions get 503) and then calls shutdown; a second signal — the
// operator lost patience — force-exits via exit(1) without waiting for the
// drain. Returns when the graceful path completes. cmd/ppfserve wires real
// SIGINT/SIGTERM into sigc; tests inject a fake channel and exit func.
func HandleSignals(s *Server, sigc <-chan os.Signal, shutdown func(), exit func(int)) {
	<-sigc
	done := make(chan struct{})
	go func() {
		// The drain itself is unbounded (a simulation finishes when it
		// finishes); the escape hatch is the second signal, not a timer.
		_ = s.Drain(context.Background())
		if shutdown != nil {
			shutdown()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-sigc:
		exit(1)
		// In production exit never returns; in tests it records the code,
		// so give the drain a beat and fall through either way.
		select {
		case <-done:
		case <-time.After(50 * time.Millisecond):
		}
	}
}
