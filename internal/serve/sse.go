package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"eventpf/internal/trace"
)

// progressSink turns the machine-wide trace bus into job progress: it
// counts every event the simulation emits and publishes a progress entry
// each `every` events with the running totals and the simulated clock. It
// runs inline on the simulation goroutine (harness.Instrument confines it),
// so the per-event cost is one increment; publishing amortises to nothing.
type progressSink struct {
	job   *Job
	every int64
	n     int64
	fills int64
}

func (p *progressSink) Event(e trace.Event) {
	p.n++
	if e.Kind == trace.PFFill {
		p.fills++
	}
	if p.n%p.every == 0 {
		p.job.Publish(ProgressEvent{
			State:    StateRunning,
			Phase:    "simulating",
			Events:   p.n,
			SimTicks: e.At,
		})
	}
}

// handleEvents streams a job's progress chain as Server-Sent Events. The
// retained chain replays first (preceded by a snapshot event when old
// entries were compacted), so a subscriber attaching at any point can
// reconstruct the job's state; the stream ends after the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ch, replay, cancel := jb.subscribe()
	defer cancel()

	// next is the lowest seq the client still needs; replay covers
	// everything retained, the channel everything after. Events the buffered
	// channel dropped for a slow client are resent from the job's log (or
	// summarised by its snapshot if they were compacted meanwhile).
	next := int64(0)
	send := func(ev ProgressEvent) bool {
		if ev.Seq < next {
			return false // duplicate of a replayed event
		}
		WriteSSE(w, ev)
		next = ev.Seq + 1
		return ev.State.Terminal()
	}
	for _, ev := range replay {
		if send(ev) {
			fl.Flush()
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev := <-ch:
			if ev.Seq > next {
				// The channel dropped events while we weren't listening;
				// refetch the gap (and ev itself) from the job's log.
				for _, g := range jb.replayFrom(next) {
					if send(g) {
						fl.Flush()
						return
					}
				}
				fl.Flush()
				continue
			}
			terminal := send(ev)
			fl.Flush()
			if terminal {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// WriteSSE renders one event in SSE wire format: id is the chain seq,
// event the job state, data the full JSON record. Exported so the cluster
// coordinator re-emits proxied events in the identical format.
func WriteSSE(w http.ResponseWriter, ev ProgressEvent) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.State, data)
}
