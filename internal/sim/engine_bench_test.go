package sim

import "testing"

// The engine sits under every load, store, cache fill and PPU cycle of the
// simulator, so its per-event cost bounds whole-suite wall clock. These
// benchmarks pin the two properties the typed heap was introduced for:
// zero allocations per Push/Pop in steady state, and cheap churn at the
// queue depths the machine actually reaches (tens to a few thousand
// in-flight events).

func prefilled(n int) (*Engine, func()) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < n; i++ {
		e.At(Ticks(i), fn)
	}
	return e, fn
}

// BenchmarkEnginePushPop measures one schedule + one dispatch with the queue
// held at a steady depth. It must report 0 allocs/op: the backing slice is
// warm, so push appends into retained capacity and pop only shrinks it.
func BenchmarkEnginePushPop(b *testing.B) {
	e, fn := prefilled(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(100, fn)
		e.Step()
	}
}

// BenchmarkEngineChurn sweeps queue depth: sift cost is logarithmic, so the
// per-op time should grow gently from 64 to 8192 pending events.
func BenchmarkEngineChurn(b *testing.B) {
	for _, depth := range []int{64, 512, 8192} {
		b.Run(itoa(depth), func(b *testing.B) {
			e, fn := prefilled(depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(Ticks(1+i%97), fn)
				e.Step()
			}
		})
	}
}

// BenchmarkEngineCascade models the simulator's real pattern: every
// dispatched event schedules its successor (a cache fill scheduling the
// response, a PPU cycle scheduling the next).
func BenchmarkEngineCascade(b *testing.B) {
	e := NewEngine()
	var kick func()
	kick = func() { e.After(7, kick) }
	for i := 0; i < 32; i++ {
		e.After(Ticks(i), kick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestEngineSteadyStateZeroAllocs enforces the benchmark's headline property
// in the ordinary test run, so an accidental reintroduction of boxing fails
// `go test` rather than waiting for someone to read benchmark output.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e, fn := prefilled(1024)
	for i := 0; i < 512; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		e.After(100, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state push+pop allocates %v allocs/op, want 0", allocs)
	}
}
