package sim

import (
	"fmt"
	"reflect"
)

// Remap translates the event handlers owned by one machine into their
// counterparts on a fork of that machine. Forking rebuilds every component
// (and therefore every handler adapter) from scratch, so events captured in
// the parent's queue point at parent-owned state; before the copied queue can
// run on the fork, each stored Handler must be swapped for the fork's
// equivalent. Components register their (parent, fork) handler pairs here
// while the fork is being assembled.
//
// Handlers are typically small adapter structs carrying one pointer back to
// their component, scheduled by value — two copies of the same adapter
// compare equal, so plain map lookup finds the registered pair regardless of
// which copy the event captured.
type Remap struct {
	m map[Handler]Handler
}

// NewRemap returns an empty handler translation table.
func NewRemap() *Remap { return &Remap{m: make(map[Handler]Handler)} }

// Register records that dst (fork-owned) is the counterpart of src
// (parent-owned). Registering nil handlers panics: it would mask a
// half-initialised component.
func (r *Remap) Register(src, dst Handler) {
	if src == nil || dst == nil {
		panic("sim: Remap.Register with nil handler")
	}
	r.m[src] = dst
}

// Lookup translates a parent-owned handler into the fork's counterpart. nil
// maps to nil. A handler whose dynamic type is not comparable (a closure
// scheduled through the At/After compatibility shims, or a func-typed
// completion callback) cannot be translated — such events are inherently
// bound to parent state, so forking a machine with one pending is an error
// rather than a silent corruption. An unregistered comparable handler is an
// error too: it means a component forgot to register its pairs.
func (r *Remap) Lookup(h Handler) (Handler, error) {
	if h == nil {
		return nil, nil
	}
	if !reflect.TypeOf(h).Comparable() {
		return nil, fmt.Errorf("sim: cannot fork a pending closure event (%T); only typed handlers survive a fork", h)
	}
	d, ok := r.m[h]
	if !ok {
		return nil, fmt.Errorf("sim: no fork counterpart registered for handler %T", h)
	}
	return d, nil
}

// Seq exposes the schedule sequence counter (total events ever scheduled).
// Forks copy it so tie-breaking of same-tick events stays byte-identical,
// and checkpoints fold it into their state digest.
func (e *Engine) Seq() uint64 { return e.seq }

// CopyFrom makes e an exact copy of src's scheduling state — current time,
// schedule sequence counter, and the pending event queue — with every stored
// handler translated through remap. The queue's backing array is copied in
// heap order, so the fork pops events in byte-identically the same order the
// parent would have. Payload words are copied verbatim: they name slots and
// indices in component state the caller is responsible for copying in
// parallel.
func (e *Engine) CopyFrom(src *Engine, remap *Remap) error {
	e.now = src.now
	e.seq = src.seq
	e.queue.ev = append(e.queue.ev[:0], src.queue.ev...)
	for i := range e.queue.ev {
		h, err := remap.Lookup(e.queue.ev[i].h)
		if err != nil {
			return fmt.Errorf("event at t=%d: %w", e.queue.ev[i].at, err)
		}
		e.queue.ev[i].h = h
	}
	return nil
}
