// Package sim provides the discrete-event simulation engine shared by every
// timed component in the system: the main core, the cache hierarchy, DRAM,
// and the programmable prefetcher.
//
// Time is kept as an integer number of ticks. One tick is 62.5 ps, chosen so
// that every clock frequency used in the paper's evaluation divides evenly:
// the 3.2 GHz main core has a 5-tick period, the 1 GHz PPUs 16 ticks, the
// 800 MHz DDR3 bus 20 ticks, and the PPU sweep frequencies from 125 MHz
// (128 ticks) to 4 GHz (4 ticks) are all exact.
package sim

import "container/heap"

// Ticks is a point in (or span of) simulated time. One tick is 62.5 ps.
type Ticks = int64

// TicksPerNs is the number of ticks in one nanosecond.
const TicksPerNs = 16

// Clock describes a clock domain by its period in ticks.
type Clock struct {
	// Period is the length of one cycle in ticks. It must be positive.
	Period Ticks
}

// ClockFromMHz builds a Clock for the given frequency in MHz. The frequency
// must divide 16 GHz so that the period is a whole number of ticks; every
// frequency in the paper does.
func ClockFromMHz(mhz int) Clock {
	const tickRateMHz = 16000 // 16 ticks/ns = 16 GHz tick rate
	if mhz <= 0 || tickRateMHz%mhz != 0 {
		panic("sim: frequency must be a positive divisor of 16 GHz")
	}
	return Clock{Period: Ticks(tickRateMHz / mhz)}
}

// Cycles converts a cycle count in this domain to ticks.
func (c Clock) Cycles(n int64) Ticks { return n * c.Period }

// ToCycles converts a tick span to whole cycles in this domain, rounding up.
func (c Clock) ToCycles(t Ticks) int64 { return (t + c.Period - 1) / c.Period }

// NextEdge returns the first clock edge at or after time t.
func (c Clock) NextEdge(t Ticks) Ticks {
	r := t % c.Period
	if r == 0 {
		return t
	}
	return t + c.Period - r
}

type event struct {
	at  Ticks
	seq uint64 // tie-break so simultaneous events run in schedule order
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. Events scheduled for
// the same tick run in the order they were scheduled, which keeps runs
// deterministic.
type Engine struct {
	now   Ticks
	seq   uint64
	queue eventQueue
}

// NewEngine returns an engine with the clock at tick zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Ticks { return e.now }

// At schedules fn to run at time t. Scheduling in the past panics: it would
// silently corrupt causality.
func (e *Engine) At(t Ticks, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Ticks, fn func()) { e.At(e.now+d, fn) }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.queue) }

// Step runs the next event, returning false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Ticks) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
