// Package sim provides the discrete-event simulation engine shared by every
// timed component in the system: the main core, the cache hierarchy, DRAM,
// and the programmable prefetcher.
//
// Time is kept as an integer number of ticks. One tick is 62.5 ps, chosen so
// that every clock frequency used in the paper's evaluation divides evenly:
// the 3.2 GHz main core has a 5-tick period, the 1 GHz PPUs 16 ticks, the
// 800 MHz DDR3 bus 20 ticks, and the PPU sweep frequencies from 125 MHz
// (128 ticks) to 4 GHz (4 ticks) are all exact.
package sim

// Ticks is a point in (or span of) simulated time. One tick is 62.5 ps.
type Ticks = int64

// TicksPerNs is the number of ticks in one nanosecond.
const TicksPerNs = 16

// Clock describes a clock domain by its period in ticks.
type Clock struct {
	// Period is the length of one cycle in ticks. It must be positive.
	Period Ticks
}

// ClockFromMHz builds a Clock for the given frequency in MHz. The frequency
// must divide 16 GHz so that the period is a whole number of ticks; every
// frequency in the paper does.
func ClockFromMHz(mhz int) Clock {
	const tickRateMHz = 16000 // 16 ticks/ns = 16 GHz tick rate
	if mhz <= 0 || tickRateMHz%mhz != 0 {
		panic("sim: frequency must be a positive divisor of 16 GHz")
	}
	return Clock{Period: Ticks(tickRateMHz / mhz)}
}

// Cycles converts a cycle count in this domain to ticks.
func (c Clock) Cycles(n int64) Ticks { return n * c.Period }

// ToCycles converts a tick span to whole cycles in this domain, rounding up.
func (c Clock) ToCycles(t Ticks) int64 { return (t + c.Period - 1) / c.Period }

// NextEdge returns the first clock edge at or after time t.
func (c Clock) NextEdge(t Ticks) Ticks {
	r := t % c.Period
	if r == 0 {
		return t
	}
	return t + c.Period - r
}

// Handler is the closure-free event target: the steady-state scheduling path
// carries a Handler plus two payload words instead of a heap-allocated
// closure. Implementations are typically two-word adapter structs embedded by
// value in a component, so taking their address converts to Handler without
// allocating, and the payload words name a pool slot, a queue entry, an
// address, or an id — whatever the handler needs to find its state.
//
// The same interface doubles as the memory system's completion callback type
// (mem.Request routes completions through it), so one mechanism covers both
// "run this later" and "tell me when this finishes".
type Handler interface {
	// Handle runs the event. at is the firing time (the engine's Now for
	// scheduled events, the completion time for request completions); a and b
	// carry payload whose meaning the handler defines.
	Handle(at Ticks, a, b uint64)
}

// funcHandler adapts the legacy closure API onto the typed path. func values
// are pointer-shaped, so the interface conversion itself does not allocate —
// only the closure the caller already built does.
type funcHandler func()

func (f funcHandler) Handle(Ticks, uint64, uint64) { f() }

type event struct {
	at   Ticks
	seq  uint64 // tie-break so simultaneous events run in schedule order
	a, b uint64 // handler payload
	h    Handler
}

// before is the heap ordering: earliest time first, schedule order within a
// tick. (at, seq) is a total order, so the pop sequence is unique and any
// correct heap yields bit-identical simulations.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a concrete binary min-heap over a reusable backing slice.
// It deliberately avoids container/heap: the interface{} boxing there costs
// one allocation per Push and per Pop, which dominates the scheduler on the
// simulator's hot path. Here Push appends into retained capacity and Pop
// shrinks the length, so steady-state operation allocates nothing.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// min returns the earliest event without removing it; the queue must be
// non-empty.
func (q *eventQueue) min() event { return q.ev[0] }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.ev[i].before(q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // release the handler so finished events can be GC'd
	q.ev = q.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && q.ev[r].before(q.ev[l]) {
			c = r
		}
		if !q.ev[c].before(q.ev[i]) {
			break
		}
		q.ev[i], q.ev[c] = q.ev[c], q.ev[i]
		i = c
	}
	return top
}

// Engine is a single-threaded discrete-event scheduler. Events scheduled for
// the same tick run in the order they were scheduled, which keeps runs
// deterministic. An Engine (and the Machine built around it) is confined to
// one goroutine; the harness runs many engines in parallel, never one engine
// from two goroutines.
type Engine struct {
	now   Ticks
	seq   uint64
	queue eventQueue
}

// NewEngine returns an engine with the clock at tick zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Ticks { return e.now }

// Schedule arranges for h.Handle(t, a, b) to run at time t. This is the
// allocation-free path: the event carries the handler and payload words
// directly, so steady-state scheduling touches no heap. Scheduling in the
// past panics: it would silently corrupt causality.
func (e *Engine) Schedule(t Ticks, h Handler, a, b uint64) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, a: a, b: b, h: h})
}

// ScheduleAfter is Schedule at d ticks from now.
func (e *Engine) ScheduleAfter(d Ticks, h Handler, a, b uint64) {
	e.Schedule(e.now+d, h, a, b)
}

// At schedules fn to run at time t. This is the closure compatibility shim
// over Schedule: each call costs the closure allocation the caller built, so
// hot paths should implement Handler and call Schedule instead.
func (e *Engine) At(t Ticks, fn func()) {
	e.Schedule(t, funcHandler(fn), 0, 0)
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Ticks, fn func()) { e.At(e.now+d, fn) }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return e.queue.len() }

// Step runs the next event, returning false if the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	ev.h.Handle(ev.at, ev.a, ev.b)
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Ticks) {
	for e.queue.len() > 0 && e.queue.min().at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
