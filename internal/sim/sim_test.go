package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockFromMHz(t *testing.T) {
	cases := []struct {
		mhz    int
		period Ticks
	}{
		{3200, 5}, {1000, 16}, {800, 20}, {500, 32},
		{250, 64}, {125, 128}, {2000, 8}, {4000, 4},
	}
	for _, c := range cases {
		if got := ClockFromMHz(c.mhz).Period; got != c.period {
			t.Errorf("ClockFromMHz(%d).Period = %d, want %d", c.mhz, got, c.period)
		}
	}
}

func TestClockFromMHzRejectsNonDivisors(t *testing.T) {
	for _, mhz := range []int{0, -5, 3000, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClockFromMHz(%d) did not panic", mhz)
				}
			}()
			ClockFromMHz(mhz)
		}()
	}
}

func TestClockNextEdge(t *testing.T) {
	c := Clock{Period: 5}
	cases := []struct{ in, want Ticks }{{0, 0}, {1, 5}, {4, 5}, {5, 5}, {6, 10}}
	for _, tc := range cases {
		if got := c.NextEdge(tc.in); got != tc.want {
			t.Errorf("NextEdge(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockCycles(t *testing.T) {
	c := ClockFromMHz(1000)
	if c.Cycles(3) != 48 {
		t.Errorf("Cycles(3) = %d, want 48", c.Cycles(3))
	}
	if c.ToCycles(48) != 3 {
		t.Errorf("ToCycles(48) = %d, want 3", c.ToCycles(48))
	}
	if c.ToCycles(49) != 4 {
		t.Errorf("ToCycles(49) = %d, want 4 (rounds up)", c.ToCycles(49))
	}
}

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Ticks
	for _, at := range []Ticks{30, 10, 20} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("events ran in order %v, want [10 20 30]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d after run, want 30", e.Now())
	}
}

func TestEngineSameTickFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick events ran out of schedule order: %v", got)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var trace []Ticks
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Errorf("trace = %v, want [10 15]", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := map[Ticks]bool{}
	for _, at := range []Ticks{5, 10, 15} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(10)
	if !ran[5] || !ran[10] || ran[15] {
		t.Errorf("RunUntil(10) ran %v", ran)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %d, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now() = %d, want 100", e.Now())
	}
}

// Property: however events are scheduled, they are observed in nondecreasing
// time order and every scheduled event runs exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		want := make([]Ticks, count)
		var got []Ticks
		for i := 0; i < count; i++ {
			at := Ticks(rng.Intn(1000))
			want[i] = at
			e.At(at, func() { got = append(got, e.Now()) })
		}
		e.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
