// Package stats holds the small shared statistics helpers used across the
// simulator and its serving layer: currently the integer EWMA that smooths
// job durations for ppfserve's 429 backpressure and smooths the adaptive
// controller's sensor and reward streams.
package stats

// EWMA is an integer exponentially-weighted moving average with smoothing
// factor 1/Div: each observation moves the value by (x - value) / Div,
// using Go's truncating integer division (which is what the serving layer's
// estimator always did — truncation, not floor, so negative deltas round
// toward zero).
//
// The first observation sets the value directly (warm-up), so the average
// is never dragged from an arbitrary zero start; before any observation
// Value is 0 and Warm reports false, and callers that can see an unwarmed
// estimator must decide what a missing estimate means (ppfserve clamps its
// Retry-After to a floor, the adaptive policy treats unwarmed rewards as
// "never tried").
//
// The zero value with Div 0 is not usable; construct with NewEWMA.
type EWMA struct {
	// Div is the inverse smoothing weight (α = 1/Div). Div 1 tracks the
	// last sample exactly.
	div int64
	v   int64
	n   int64
}

// NewEWMA returns an estimator with smoothing factor 1/div. div must be
// at least 1.
func NewEWMA(div int64) EWMA {
	if div < 1 {
		panic("stats: NewEWMA: div must be >= 1")
	}
	return EWMA{div: div}
}

// Observe folds one sample into the average. The first sample sets the
// value directly.
func (e *EWMA) Observe(x int64) {
	e.n++
	if e.n == 1 {
		e.v = x
		return
	}
	e.v += (x - e.v) / e.div
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() int64 { return e.v }

// Warm reports whether at least one sample has been observed.
func (e *EWMA) Warm() bool { return e.n > 0 }

// Samples returns how many observations have been folded in.
func (e *EWMA) Samples() int64 { return e.n }

// Reset forgets all state; the next observation warms up afresh. The
// smoothing factor is kept.
func (e *EWMA) Reset() {
	e.v = 0
	e.n = 0
}
