package stats

import "testing"

// TestEWMAWarmup pins the warm-up contract: the first observation sets the
// value directly instead of averaging against the zero start.
func TestEWMAWarmup(t *testing.T) {
	e := NewEWMA(4)
	if e.Warm() {
		t.Fatal("estimator warm before any observation")
	}
	if got := e.Value(); got != 0 {
		t.Fatalf("zero-sample Value() = %d, want 0", got)
	}
	e.Observe(1000)
	if !e.Warm() {
		t.Fatal("estimator not warm after an observation")
	}
	if got := e.Value(); got != 1000 {
		t.Fatalf("first observation: Value() = %d, want 1000 (set directly)", got)
	}
}

// TestEWMADecay pins the exact integer arithmetic: each sample moves the
// value by (x - v) / div with truncating division — the serving layer's
// historical behaviour, which golden Retry-After expectations depend on.
func TestEWMADecay(t *testing.T) {
	e := NewEWMA(4)
	e.Observe(1000)
	e.Observe(2000) // 1000 + (2000-1000)/4 = 1250
	if got := e.Value(); got != 1250 {
		t.Fatalf("after 1000,2000: Value() = %d, want 1250", got)
	}
	e.Observe(2000) // 1250 + 750/4 = 1250 + 187 = 1437 (truncating)
	if got := e.Value(); got != 1437 {
		t.Fatalf("after 1000,2000,2000: Value() = %d, want 1437", got)
	}
	// Negative deltas truncate toward zero, not toward -inf.
	e = NewEWMA(4)
	e.Observe(1000)
	e.Observe(999) // 1000 + (-1)/4 = 1000, not 999
	if got := e.Value(); got != 1000 {
		t.Fatalf("small negative delta: Value() = %d, want 1000 (truncation toward zero)", got)
	}
}

// TestEWMAConverges checks the average approaches a steady input.
func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(4)
	e.Observe(0)
	for i := 0; i < 64; i++ {
		e.Observe(4000)
	}
	// Converges to just under the target (truncation loses < div per step).
	if got := e.Value(); got < 3990 || got > 4000 {
		t.Fatalf("after 64 steady samples: Value() = %d, want ~4000", got)
	}
}

// TestEWMAZeroSample covers the behaviours a caller can see before any
// sample arrives and after a Reset.
func TestEWMAZeroSample(t *testing.T) {
	e := NewEWMA(2)
	if e.Samples() != 0 || e.Value() != 0 || e.Warm() {
		t.Fatalf("fresh estimator: n=%d v=%d warm=%v, want 0/0/false", e.Samples(), e.Value(), e.Warm())
	}
	e.Observe(500)
	e.Observe(700)
	e.Reset()
	if e.Samples() != 0 || e.Value() != 0 || e.Warm() {
		t.Fatalf("after Reset: n=%d v=%d warm=%v, want 0/0/false", e.Samples(), e.Value(), e.Warm())
	}
	// Reset keeps the smoothing factor and warms up afresh.
	e.Observe(300)
	if got := e.Value(); got != 300 {
		t.Fatalf("first observation after Reset: Value() = %d, want 300", got)
	}
}

// TestEWMADivOne tracks the last sample exactly.
func TestEWMADivOne(t *testing.T) {
	e := NewEWMA(1)
	for _, x := range []int64{10, 500, -3} {
		e.Observe(x)
		if got := e.Value(); got != x {
			t.Fatalf("div=1: Value() = %d, want %d", got, x)
		}
	}
}

func TestEWMABadDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEWMA(0) did not panic")
		}
	}()
	NewEWMA(0)
}
