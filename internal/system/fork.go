package system

import (
	"fmt"

	"eventpf/internal/cpu"
	"eventpf/internal/sim"
)

// Forking a machine builds a complete second machine with New (so every
// component, handler adapter and callback chain is wired exactly as the
// constructor wires it) and then copies the parent's state into it in two
// phases: first every component registers its (parent, fork) handler pairs
// into a sim.Remap, then state is copied with any captured handlers — in the
// event queue, in MSHR waiter lists, in TLB translation records, in the
// load-record table — translated through that table. The fork owns all of
// its pooled objects: parked requests are cloned through the fork's own
// pool, never aliased, so parent and fork can run concurrently.

// ForkableStream is a micro-op stream that can clone itself for a forked
// machine. ForkStream must return a stream positioned at exactly the same
// dynamic op, re-bound to the fork's backing store, config sink and micro-op
// counter. Machines running a plain stream cannot be forked mid-run.
type ForkableStream interface {
	cpu.Stream
	// ForkStream clones the stream for machine f.
	ForkStream(f *Machine) (cpu.Stream, error)
}

// StreamCloner is a leaf micro-op stream that can open a second cursor over
// its source for a forked machine — e.g. a trace replayer re-opening its
// file. Composite streams (the harness's run sequence) implement
// ForkableStream directly and delegate member cloning to this interface.
type StreamCloner interface {
	cpu.Stream
	// CloneStream returns an independent stream positioned at the same
	// dynamic op, bound to f's backing store.
	CloneStream(f *Machine) (cpu.Stream, error)
}

// Fork returns a deep copy of the machine: same configuration, same point in
// simulated time, same pending events, independent state. See ForkWith.
func (m *Machine) Fork() (*Machine, error) { return m.ForkWith(m.Cfg) }

// Stream returns the machine's current micro-op stream: the one Start was
// given, or on a fork the clone ForkWith produced (nil if the parent's
// stream was already exhausted). Callers use it to reach their own stream
// wrappers — e.g. the harness's final interpreter for oracle checks.
func (m *Machine) Stream() cpu.Stream { return m.stream }

// ForkWith returns a deep copy of the machine built under cfg, which may
// change the programmable prefetcher's clock, queue limits and the
// context-switch period (the sweep fan-out case) but no structural sizing —
// state copied slot-for-slot must land in identically-shaped components.
// With cfg identical to m.Cfg, running the fork produces byte-identical
// results to running the parent.
func (m *Machine) ForkWith(cfg Config) (*Machine, error) {
	if err := forkCompatible(m.Cfg, cfg); err != nil {
		return nil, err
	}
	f := New(cfg, m.Scheme)

	// Phase 1: register every handler pair before any state is copied, so
	// cross-component references (e.g. MSHR waiters holding core handlers)
	// always resolve.
	remap := sim.NewRemap()
	f.Core.RegisterFork(m.Core, remap)
	f.L1.RegisterFork(m.L1, remap)
	f.L2.RegisterFork(m.L2, remap)
	f.TLB.RegisterFork(m.TLB, remap)
	f.glue.registerFork(m.glue, remap)
	remap.Register(m.ctxH, f.ctxH)
	if m.PF != nil {
		f.PF.RegisterFork(m.PF, remap)
	}
	if m.Baseline != nil {
		if err := f.Baseline.RegisterFork(m.Baseline, remap); err != nil {
			return nil, fmt.Errorf("system: fork: %w", err)
		}
	}

	// Phase 2: copy state, functional memory first (stream cloning below
	// needs the fork's backing store populated).
	f.Backing.CopyFrom(m.Backing)
	f.Arena.CopyFrom(m.Arena)
	if err := f.DRAM.CopyStateFrom(m.DRAM); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	if err := f.L2.CopyStateFrom(m.L2, remap); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	if err := f.L1.CopyStateFrom(m.L1, remap); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	if err := f.TLB.CopyStateFrom(m.TLB, remap); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	if err := f.glue.copyStateFrom(m.glue, remap); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	if m.PF != nil {
		if err := f.PF.CopyStateFrom(m.PF); err != nil {
			return nil, fmt.Errorf("system: fork: %w", err)
		}
	}
	if m.Baseline != nil {
		if err := f.Baseline.CopyStateFrom(m.Baseline); err != nil {
			return nil, fmt.Errorf("system: fork: %w", err)
		}
	}
	*f.Counter = *m.Counter
	f.coreDone = m.coreDone
	f.runDone = m.runDone

	var cs cpu.Stream
	if m.Core.StreamActive() {
		fs, ok := m.stream.(ForkableStream)
		if !ok {
			return nil, fmt.Errorf("system: stream %T does not support forking", m.stream)
		}
		var err error
		cs, err = fs.ForkStream(f)
		if err != nil {
			return nil, fmt.Errorf("system: fork: %w", err)
		}
	}
	f.stream = cs
	f.Core.CopyStateFrom(m.Core, cs, f.onCoreDone)

	// The event queue goes last, once the remap table is complete.
	if err := f.Eng.CopyFrom(m.Eng, remap); err != nil {
		return nil, fmt.Errorf("system: fork: %w", err)
	}
	return f, nil
}

// forkCompatible rejects configuration changes that would alter the shape of
// state a fork copies slot-for-slot.
func forkCompatible(old, new Config) error {
	switch {
	case new.CoreMHz != old.CoreMHz, new.Width != old.Width, new.ROB != old.ROB,
		new.LQ != old.LQ, new.SQ != old.SQ, new.MispredictPenalty != old.MispredictPenalty:
		return fmt.Errorf("system: fork cannot change core sizing")
	case new.L1 != old.L1, new.L2 != old.L2:
		return fmt.Errorf("system: fork cannot change cache geometry")
	case new.TLB != old.TLB:
		return fmt.Errorf("system: fork cannot change TLB geometry")
	case new.DRAM != old.DRAM:
		return fmt.Errorf("system: fork cannot change DRAM geometry")
	case new.Stride != old.Stride, new.GHB != old.GHB, new.RPT != old.RPT,
		new.Delta != old.Delta, new.TSKID != old.TSKID:
		return fmt.Errorf("system: fork cannot change baseline prefetcher sizing")
	case new.Adaptive != old.Adaptive:
		// The controller's pending tick was armed under the parent's
		// interval, and its policy state is shaped by the parent's menu.
		return fmt.Errorf("system: fork cannot change the adaptive controller configuration")
	case new.Prefetcher.NumPPUs != old.Prefetcher.NumPPUs:
		return fmt.Errorf("system: fork cannot change the PPU count")
	case new.Prefetcher.Blocked != old.Prefetcher.Blocked:
		return fmt.Errorf("system: fork cannot change blocked-mode execution")
	case new.ContextSwitchTicks != old.ContextSwitchTicks:
		// The pending flush event was armed under the parent's period; a
		// different period would neither honour the old schedule nor the new.
		return fmt.Errorf("system: fork cannot change the context-switch period")
	}
	return nil
}

func (g *portGlue) registerFork(src *portGlue, remap *sim.Remap) {
	remap.Register(src.loadH, g.loadH)
	remap.Register(src.swpfH, g.swpfH)
}

// copyStateFrom copies the in-flight demand-load record table; each record's
// completion handler (a core adapter) is translated through remap.
func (g *portGlue) copyStateFrom(src *portGlue, remap *sim.Remap) error {
	if cap(g.recs) < len(src.recs) {
		g.recs = make([]loadRec, len(src.recs))
	}
	g.recs = g.recs[:len(src.recs)]
	for i, r := range src.recs {
		h, err := remap.Lookup(r.h)
		if err != nil {
			return fmt.Errorf("load record %d: %w", i, err)
		}
		r.h = h
		g.recs[i] = r
	}
	g.free = append(g.free[:0], src.free...)
	return nil
}

// Digest returns a cheap deterministic fingerprint of the machine's
// execution state (FNV-1a over the event-engine clocks and the major
// component counters). Checkpoints store it so a resume can verify that
// deterministic replay reached exactly the same point.
func (m *Machine) Digest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(m.Eng.Now()))
	mix(m.Eng.Seq())
	mix(uint64(m.Eng.Pending()))
	mix(uint64(*m.Counter))
	cs := m.Core.Stats
	mix(uint64(cs.Ops))
	mix(uint64(cs.Loads))
	mix(uint64(cs.Stores))
	mix(uint64(cs.Branches))
	mix(uint64(cs.Mispredicts))
	mix(uint64(m.L1.Stats.DemandLoads))
	mix(uint64(m.L1.Stats.Misses))
	mix(uint64(m.L2.Stats.Misses))
	mix(uint64(m.DRAM.Stats.Reads))
	mix(uint64(m.DRAM.Stats.Writes))
	mix(uint64(m.TLB.Stats.Accesses))
	mix(uint64(m.TLB.Stats.Walks))
	return h
}
