package system

import "testing"

// runUntilSetup builds a machine mid-run: started, not yet drained.
func runUntilSetup(t *testing.T) (*Machine, uint64) {
	t.Helper()
	m := New(DefaultConfig(), NoPF)
	aB, bB, cB, want := setupData(m)
	fn := buildIndirectSum(t, false)
	m.Start(m.NewInterp(fn, aB, bB, cB, testN))
	return m, want
}

// A target of zero (or negative) must return without advancing simulated
// time: the core has retired zero ops, which already satisfies the bound.
func TestRunUntilOpsNonPositiveTarget(t *testing.T) {
	m, _ := runUntilSetup(t)
	for _, n := range []int64{0, -1} {
		m.RunUntilOps(n)
		if now := m.Eng.Now(); now != 0 {
			t.Fatalf("RunUntilOps(%d) advanced the engine to tick %d", n, now)
		}
		if ops := m.Core.Stats.Ops; ops != 0 {
			t.Fatalf("RunUntilOps(%d) retired %d ops", n, ops)
		}
	}
}

// A target at or below the current retired count must be a no-op, however
// far the run has already progressed.
func TestRunUntilOpsTargetAlreadyRetired(t *testing.T) {
	m, _ := runUntilSetup(t)
	m.RunUntilOps(500)
	ops, now := m.Core.Stats.Ops, m.Eng.Now()
	if ops < 500 {
		t.Fatalf("RunUntilOps(500) stopped at %d ops", ops)
	}
	m.RunUntilOps(ops) // exactly the current count
	m.RunUntilOps(1)   // far below it
	if m.Core.Stats.Ops != ops || m.Eng.Now() != now {
		t.Fatalf("satisfied target advanced the run: %d ops @%d -> %d ops @%d",
			ops, now, m.Core.Stats.Ops, m.Eng.Now())
	}
}

// A target beyond the program's length must stop at run completion rather
// than spin on a drained engine, and the finished machine must produce the
// same answer as an uninterrupted Run.
func TestRunUntilOpsTargetBeyondProgram(t *testing.T) {
	m, _ := runUntilSetup(t)
	m.RunUntilOps(1 << 62)
	if !m.Done() {
		t.Fatal("RunUntilOps(huge) returned before the run completed")
	}
	m.Drain() // engine still holds post-retirement events; must not panic
	if res := m.Finish(); res.Core.Ops == 0 {
		t.Fatal("no ops retired")
	}
}

// After Drain, any further RunUntilOps call must be a no-op: runDone stays
// set and the drained engine is never stepped (stepping it would panic).
func TestRunUntilOpsAfterDrain(t *testing.T) {
	m, _ := runUntilSetup(t)
	m.Drain()
	now := m.Eng.Now()
	m.RunUntilOps(1 << 62)
	if m.Eng.Now() != now {
		t.Fatalf("RunUntilOps after Drain advanced the engine: %d -> %d", now, m.Eng.Now())
	}
	if !m.Done() {
		t.Fatal("Done() flipped back after Drain")
	}
}

// RunUntilOps in small increments must retire exactly the same run as one
// uninterrupted Drain: same cycle count, same retired ops (determinism is
// what the fork/checkpoint machinery leans on).
func TestRunUntilOpsIncrementalMatchesStraightRun(t *testing.T) {
	straight, _ := runUntilSetup(t)
	straight.Drain()
	sres := straight.Finish()

	step, _ := runUntilSetup(t)
	for n := int64(1000); !step.Done(); n += 1000 {
		step.RunUntilOps(n)
	}
	step.Drain()
	res := step.Finish()

	if res.Cycles != sres.Cycles || res.Core.Ops != sres.Core.Ops {
		t.Fatalf("incremental run diverged: %d cycles/%d ops vs %d cycles/%d ops",
			res.Cycles, res.Core.Ops, sres.Cycles, sres.Core.Ops)
	}
}
