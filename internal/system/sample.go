package system

import (
	"fmt"

	"eventpf/internal/cpu"
)

// SMARTS-style interval sampling (Wunderlich et al., ISCA 2003): instead of
// simulating every micro-op in timing detail, the machine alternates short
// detailed intervals (a cache/predictor warmup prefix plus a measurement
// window) with long fast-forward gaps. Fast-forwarded ops still execute
// functionally — the interpreter updates the backing store at Next() time,
// and the wrapper below warms the caches, TLB and branch predictor from
// their addresses — but cost no simulated cycles. Whole-program cycles are
// then estimated by scaling the detailed CPI to the full dynamic op count.

// SampleConfig sizes the sampling intervals, all in dynamic micro-ops.
type SampleConfig struct {
	// WarmupOps is the detailed prefix run before each measurement window
	// to refill the core window, MSHRs and prefetcher queues after a
	// fast-forward gap.
	WarmupOps int64
	// MeasureOps is the length of each detailed measurement window.
	MeasureOps int64
	// FFOps is the fast-forward gap between detailed intervals.
	FFOps int64
}

// DefaultSampleConfig returns intervals suited to the harness workloads:
// 10k-op detailed intervals (2k warmup + 8k measured) every 50k ops, i.e. a
// 5x simulation-rate gain at roughly percent-level CPI error.
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{WarmupOps: 2_000, MeasureOps: 8_000, FFOps: 40_000}
}

// SampledStats reports what a sampled run actually simulated.
type SampledStats struct {
	TotalOps    int64 // dynamic ops in the full program
	DetailedOps int64 // ops simulated in timing detail (incl. warmup)
	Intervals   int64 // detailed intervals executed
	// EstimatedCycles extrapolates the detailed-interval CPI to the whole
	// program: Cycles * TotalOps / DetailedOps. Compare against a full
	// run's Cycles to measure sampling error.
	EstimatedCycles int64
}

// RunSampled executes the stream under interval sampling and returns the
// collected statistics with Result.Sampled set. Result.Cycles still counts
// only detailed execution; Sampled.EstimatedCycles is the whole-program
// estimate.
func (m *Machine) RunSampled(stream cpu.Stream, cfg SampleConfig) Result {
	if cfg.MeasureOps <= 0 || cfg.FFOps <= 0 || cfg.WarmupOps < 0 {
		panic(fmt.Sprintf("system: invalid sample config %+v", cfg))
	}
	ss := newSampledStream(m, stream, cfg)
	m.Start(ss)
	m.Drain()
	res := m.Finish()
	st := ss.stats
	if st.DetailedOps > 0 {
		st.EstimatedCycles = int64(float64(res.Cycles) * float64(st.TotalOps) / float64(st.DetailedOps))
	}
	res.Sampled = &st
	return res
}

// depRing sizes the dynamic-id translation window; it only needs to cover
// ids still referenced by in-flight deps, i.e. a little over the ROB size.
const depRing = 4096

// warmFilter is the shared machinery of every stream wrapper that swallows
// some inner-stream ops (executing them functionally) and passes others to
// the core in timing detail: interval sampling (sampledStream) and
// time-parallel slice fast-forward (sliceStream). Two jobs:
//
//   - Dep renumbering. MicroOp.Deps name producer ops by their inner-stream
//     order; the core assigns its own ids to the ops it actually receives.
//     Swallowing ops would desynchronise the two, so deps on pass-through
//     ops are rewritten to core ids via a ring map. A dep on a swallowed (or
//     long-retired) producer maps to NoDep — its result counts as long since
//     available, which is part of the approximation.
//
//   - Functional warming. Swallowed loads/stores touch the TLB and caches
//     (hit/LRU/insert only, no timing), branches train the predictor, and
//     configuration ops apply their side effect so the prefetcher is
//     programmed identically to a full run.
//
// Inner-stream ids are counted locally (pulled): every stream the harness
// feeds a core assigns ids in pull order starting at zero, so the count is
// the id of the next inner op whether the producer is an interpreter (which
// also advances the machine Counter) or a trace replayer (which does not).
type warmFilter struct {
	m      *Machine
	pulled int64 // inner ops pulled so far == inner-stream id of the next op
	outOps int64 // ops delivered to the core == next core-assigned id

	depSrc [depRing]int64 // inner-stream id each slot maps (-1 = empty)
	depMap [depRing]int64 // corresponding core-assigned id
}

func (w *warmFilter) init(m *Machine) {
	w.m = m
	for i := range w.depSrc {
		w.depSrc[i] = -1
	}
}

// deliver renumbers op's deps to core ids and records the mapping for the
// inner-stream id srcID. Call exactly once per op passed through to the core.
func (w *warmFilter) deliver(op *cpu.MicroOp, srcID int64) {
	for i, d := range op.Deps {
		op.Deps[i] = w.translateDep(d)
	}
	slot := srcID % depRing
	w.depSrc[slot] = srcID
	w.depMap[slot] = w.outOps
	w.outOps++
}

func (w *warmFilter) translateDep(d int64) int64 {
	if d == cpu.NoDep {
		return cpu.NoDep
	}
	slot := d % depRing
	if w.depSrc[slot] == d {
		return w.depMap[slot]
	}
	return cpu.NoDep
}

// warm executes a swallowed op functionally against the machine.
func (w *warmFilter) warm(op cpu.MicroOp) {
	m := w.m
	switch op.Kind {
	case cpu.OpLoad:
		m.TLB.WarmAccess(op.Addr)
		if !m.L1.WarmAccess(op.Addr, false) {
			m.L2.WarmAccess(op.Addr, false)
		}
	case cpu.OpStore:
		m.TLB.WarmAccess(op.Addr)
		if !m.L1.WarmAccess(op.Addr, true) {
			m.L2.WarmAccess(op.Addr, false)
		}
	case cpu.OpBranch:
		m.Core.WarmBranch(op.PC, op.Taken)
	case cpu.OpConfig:
		if op.Do != nil {
			op.Do() // the prefetcher must see configuration regardless of phase
		}
	}
	// Software prefetches in a fast-forward gap are dropped: they only
	// affect timing, which functional warming deliberately skips.
}

// sampledStream filters an inner micro-op stream into alternating detailed
// and fast-forward phases (see warmFilter for the renumbering and warming
// rules shared with time-parallel slicing).
type sampledStream struct {
	warmFilter
	inner cpu.Stream
	cfg   SampleConfig

	measuring bool
	left      int64 // ops remaining in the current phase

	stats SampledStats
}

func newSampledStream(m *Machine, inner cpu.Stream, cfg SampleConfig) *sampledStream {
	s := &sampledStream{
		inner: inner, cfg: cfg,
		measuring: true,
		left:      cfg.WarmupOps + cfg.MeasureOps,
	}
	s.warmFilter.init(m)
	s.stats.Intervals = 1
	return s
}

// Next implements cpu.Stream.
func (s *sampledStream) Next() (cpu.MicroOp, bool) {
	for {
		if s.left == 0 {
			if s.measuring {
				s.measuring = false
				s.left = s.cfg.FFOps
			} else {
				s.measuring = true
				s.left = s.cfg.WarmupOps + s.cfg.MeasureOps
				s.stats.Intervals++
			}
		}
		srcID := s.pulled // id the inner stream assigns this op
		op, ok := s.inner.Next()
		if !ok {
			return cpu.MicroOp{}, false
		}
		s.pulled++
		s.stats.TotalOps++
		s.left--
		if !s.measuring {
			s.warm(op)
			continue
		}
		s.stats.DetailedOps++
		s.deliver(&op, srcID)
		return op, true
	}
}
