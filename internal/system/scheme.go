package system

import (
	"fmt"

	"eventpf/internal/adaptive"
	"eventpf/internal/baseline"
	"eventpf/internal/mem"
	"eventpf/internal/prefetch"
	"eventpf/internal/sim"
)

// Scheme selects which hardware prefetcher (if any) the machine carries.
// Software prefetching is not a machine property: it is a property of the
// benchmark variant being run (extra SWPf instructions in the IR).
//
// Schemes are registry entries, not switch cases: RegisterScheme installs a
// SchemeSpec describing how the scheme is named, whether it carries the
// programmable prefetcher, and how its baseline unit is constructed. New
// assembles whatever the spec says; fork, stats collection and the trace
// layout are generic over the baseline.Unit interface, so adding a scheme
// touches exactly one registration.
type Scheme int

// SchemeSpec describes one machine prefetching scheme.
type SchemeSpec struct {
	// Name is the scheme's diagnostic name.
	Name string
	// Programmable schemes carry the paper's programmable prefetcher
	// (PPUs, filter table, observation queue) instead of a baseline unit.
	Programmable bool
	// NewUnit, if non-nil, constructs the scheme's hardware prefetch unit
	// from the machine configuration. The unit must take every sizing knob
	// from cfg — never from package-level defaults — so explicit Config
	// overrides always take effect. pf is the machine's programmable
	// prefetcher if the scheme also set Programmable (the adaptive
	// controller hosts it as an arm), nil otherwise; it is built first, so
	// its L1 hooks are already installed when NewUnit runs.
	NewUnit func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, pf *prefetch.Prefetcher) baseline.Unit
}

var schemeSpecs []SchemeSpec

// RegisterScheme adds a machine scheme to the registry and returns its id.
// Ids are assigned in registration order; the built-in schemes register at
// package init, keeping their historical values (NoPF=0 … Programmable=4).
func RegisterScheme(spec SchemeSpec) Scheme {
	if spec.Name == "" {
		panic("system: RegisterScheme: scheme needs a name")
	}
	schemeSpecs = append(schemeSpecs, spec)
	return Scheme(len(schemeSpecs) - 1)
}

// Machine prefetching schemes. The first five keep the ids they had as enum
// constants; the competitors added with the registry follow.
var (
	// NoPF carries no hardware prefetcher.
	NoPF = RegisterScheme(SchemeSpec{Name: "nopf"})
	// StridePF carries the Table 1 degree-8 stride prefetcher.
	StridePF = RegisterScheme(SchemeSpec{
		Name: "stride",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewStride(eng, cfg.Stride, l1, tlb)
		},
	})
	// GHBRegular carries the SRAM-sized Markov GHB prefetcher.
	GHBRegular = RegisterScheme(SchemeSpec{
		Name: "ghb-regular",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewGHB(eng, cfg.GHB, l1, tlb)
		},
	})
	// GHBLarge is the 1 GiB-state Markov GHB study variant. It builds from
	// cfg.GHB exactly like GHBRegular — the large sizing is a *default*
	// (baseline.LargeGHBConfig, applied by harness.ConfigFor when no
	// explicit Config is given), not a constructor override, so a caller's
	// cfg.GHB is always honoured.
	GHBLarge = RegisterScheme(SchemeSpec{
		Name: "ghb-large",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewGHB(eng, cfg.GHB, l1, tlb)
		},
	})
	// Programmable carries the paper's event-triggered prefetcher.
	Programmable = RegisterScheme(SchemeSpec{Name: "programmable", Programmable: true})
	// RPT carries the Chen–Baer four-state reference prediction table.
	RPT = RegisterScheme(SchemeSpec{
		Name: "rpt",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewRPT(eng, cfg.RPT, l1, tlb)
		},
	})
	// GHBDelta carries the delta-correlating (G/DC) history prefetcher.
	GHBDelta = RegisterScheme(SchemeSpec{
		Name: "ghb-delta",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewGHBDelta(eng, cfg.Delta, l1, tlb)
		},
	})
	// TSKID carries the trigger/target timing prefetcher.
	TSKID = RegisterScheme(SchemeSpec{
		Name: "tskid",
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, _ *prefetch.Prefetcher) baseline.Unit {
			return baseline.NewTSKID(eng, cfg.TSKID, l1, tlb)
		},
	})
	// Adaptive carries the online adaptive controller: the programmable
	// prefetcher plus a menu of baseline units, with one active at a time
	// (internal/adaptive). Programmable and NewUnit together make New build
	// both halves; the controller's builder maps menu names to candidate
	// constructors sized from cfg, including degree-knob variants.
	Adaptive = RegisterScheme(SchemeSpec{
		Name:         "adaptive",
		Programmable: true,
		NewUnit: func(eng *sim.Engine, cfg *Config, l1 *mem.Cache, tlb *mem.TLB, pf *prefetch.Prefetcher) baseline.Unit {
			return adaptive.New(eng, cfg.Adaptive, l1, pf, func(name string) baseline.Unit {
				switch name {
				case "stride":
					return baseline.NewStride(eng, cfg.Stride, l1, tlb)
				case "stride-d2":
					c := cfg.Stride
					c.Degree = 2
					return baseline.NewStride(eng, c, l1, tlb)
				case "ghb":
					return baseline.NewGHB(eng, cfg.GHB, l1, tlb)
				case "ghb-delta":
					return baseline.NewGHBDelta(eng, cfg.Delta, l1, tlb)
				case "rpt":
					return baseline.NewRPT(eng, cfg.RPT, l1, tlb)
				case "tskid":
					return baseline.NewTSKID(eng, cfg.TSKID, l1, tlb)
				}
				return nil
			})
		},
	})
)

// Valid reports whether s names a registered scheme.
func (s Scheme) Valid() bool { return s >= 0 && int(s) < len(schemeSpecs) }

// Spec returns the scheme's registry entry.
func (s Scheme) Spec() (SchemeSpec, bool) {
	if !s.Valid() {
		return SchemeSpec{}, false
	}
	return schemeSpecs[s], true
}

// IsProgrammable reports whether the scheme carries the programmable
// prefetcher (so PPU sizing can affect it).
func (s Scheme) IsProgrammable() bool {
	spec, ok := s.Spec()
	return ok && spec.Programmable
}

func (s Scheme) String() string {
	if spec, ok := s.Spec(); ok {
		return spec.Name
	}
	return fmt.Sprintf("unknown(%d)", int(s))
}
