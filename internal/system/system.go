// Package system assembles the complete simulated machine of Table 1: the
// out-of-order core, two cache levels, TLB, DDR3 DRAM, and exactly one of
// the prefetching schemes under comparison (none, stride, GHB Markov, or
// the programmable prefetcher). It also implements the ir.ConfigSink that
// routes configuration instructions dispatched on the core into the
// programmable prefetcher's filter table and global registers.
package system

import (
	"fmt"

	"eventpf/internal/adaptive"
	"eventpf/internal/baseline"
	"eventpf/internal/cpu"
	"eventpf/internal/ir"
	"eventpf/internal/mem"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// Config collects every sizing knob of the simulated machine. The zero
// value is not usable; start from DefaultConfig.
type Config struct {
	CoreMHz            int
	Width, ROB, LQ, SQ int
	MispredictPenalty  int64

	L1, L2 mem.CacheConfig
	TLB    mem.TLBConfig
	DRAM   mem.DRAMConfig

	Prefetcher prefetch.Config
	Stride     baseline.StrideConfig
	GHB        baseline.GHBConfig
	RPT        baseline.RPTConfig
	Delta      baseline.DeltaConfig
	TSKID      baseline.TSKIDConfig
	Adaptive   adaptive.Config

	// ContextSwitchTicks, if positive, flushes the programmable prefetcher
	// on this period, modelling context switches (§5.3).
	ContextSwitchTicks sim.Ticks
}

// DefaultConfig reproduces Table 1.
func DefaultConfig() Config {
	return Config{
		CoreMHz: 3200, Width: 3, ROB: 40, LQ: 16, SQ: 32,
		MispredictPenalty: 12,
		L1:                mem.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 2, HitCycles: 2, MSHRs: 12},
		L2:                mem.CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, HitCycles: 12, MSHRs: 16},
		TLB:               mem.DefaultTLBConfig(),
		DRAM:              mem.DefaultDRAMConfig(),
		Prefetcher:        prefetch.DefaultConfig(),
		Stride:            baseline.DefaultStrideConfig(),
		GHB:               baseline.RegularGHBConfig(),
		RPT:               baseline.DefaultRPTConfig(),
		Delta:             baseline.DefaultDeltaConfig(),
		TSKID:             baseline.DefaultTSKIDConfig(),
		Adaptive:          adaptive.DefaultConfig(),
	}
}

// Machine is one assembled simulation instance. Build the workload's data
// through Arena/Backing, install kernels with RegisterKernel, then Run.
type Machine struct {
	Scheme  Scheme
	Cfg     Config
	Eng     *sim.Engine
	Backing *mem.Backing
	Arena   *mem.Arena
	L1      *mem.Cache
	L2      *mem.Cache
	DRAM    *mem.DRAM
	TLB     *mem.TLB
	Core    *cpu.Core
	PF      *prefetch.Prefetcher // nil unless the scheme is programmable
	// Baseline is the scheme's hardware prefetch unit, built by the scheme
	// spec's NewUnit hook (nil for no-pf and programmable schemes).
	Baseline baseline.Unit

	// Counter is the shared dynamic micro-op counter for interpreters
	// feeding this machine's core.
	Counter *int64

	glue     *portGlue
	ctxH     ctxSwitchHandler
	stream   cpu.Stream
	coreDone bool
	runDone  bool
}

// ctxSwitchHandler fires the periodic context-switch flush (§5.3) and
// re-arms itself. A typed handler rather than a recursive closure so the
// pending flush event survives a machine fork.
type ctxSwitchHandler struct{ m *Machine }

// Handle implements sim.Handler.
func (h ctxSwitchHandler) Handle(sim.Ticks, uint64, uint64) {
	m := h.m
	if m.coreDone {
		return // let the engine drain once the program ends
	}
	m.PF.Flush()
	m.Eng.ScheduleAfter(m.Cfg.ContextSwitchTicks, m.ctxH, 0, 0)
}

// New assembles a machine for the given scheme.
func New(cfg Config, scheme Scheme) *Machine {
	eng := sim.NewEngine()
	bk := mem.NewBacking()
	coreClk := sim.ClockFromMHz(cfg.CoreMHz)

	dram := mem.NewDRAM(eng, cfg.DRAM)
	l2 := mem.NewCache(eng, coreClk, cfg.L2, dram)
	l1 := mem.NewCache(eng, coreClk, cfg.L1, l2)
	tlb := mem.NewTLB(eng, coreClk, cfg.TLB, bk)

	m := &Machine{
		Scheme:  scheme,
		Cfg:     cfg,
		Eng:     eng,
		Backing: bk,
		Arena:   mem.NewArena(bk),
		L1:      l1,
		L2:      l2,
		DRAM:    dram,
		TLB:     tlb,
		Counter: new(int64),
	}

	m.ctxH.m = m

	spec, ok := scheme.Spec()
	if !ok {
		panic(fmt.Sprintf("system: New: unregistered scheme %d", int(scheme)))
	}
	// Programmable and NewUnit are not exclusive: the adaptive scheme sets
	// both, hosting the programmable prefetcher as one arm of its menu. The
	// prefetcher is built first so its L1 hooks are in place when the unit
	// constructor captures them.
	if spec.Programmable {
		m.PF = prefetch.New(eng, cfg.Prefetcher, bk, l1, tlb)
		if cfg.ContextSwitchTicks > 0 {
			eng.ScheduleAfter(cfg.ContextSwitchTicks, m.ctxH, 0, 0)
		}
	}
	if spec.NewUnit != nil {
		m.Baseline = spec.NewUnit(eng, &cfg, l1, tlb, m.PF)
	}

	g := newPortGlue(tlb, l1)
	m.glue = g
	l1.Pool, l2.Pool, dram.Pool = g.pool, g.pool, g.pool
	ports := cpu.Ports{
		Load: func(addr uint64, pc int, h sim.Handler, a uint64) {
			ri := g.alloc(addr, pc, h, a)
			tlb.TranslateTo(addr, g.loadH, uint64(ri))
		},
		Store: func(addr uint64, pc int) {
			req := g.pool.Get()
			req.Addr, req.Kind, req.PC = addr, mem.Store, pc
			req.Tag, req.TimedAt = mem.NoTag, -1
			l1.Access(req)
		},
		SWPrefetch: func(addr uint64) {
			tlb.TranslateTo(addr, g.swpfH, addr)
		},
	}
	m.Core = cpu.New(eng, cpu.Config{
		Clock: coreClk, Width: cfg.Width, ROB: cfg.ROB, LQ: cfg.LQ, SQ: cfg.SQ,
		MispredictPenalty: cfg.MispredictPenalty,
	}, ports)
	// A unit that wants host taps (the adaptive controller's reward and
	// end-of-run signals) gets them once the core exists. The structural
	// interface keeps the dependency one-way: this package imports adaptive,
	// never the reverse.
	if hb, ok := m.Baseline.(hostBound); ok {
		hb.BindHost(func() int64 { return m.Core.Stats.Ops }, func() bool { return m.coreDone })
	}
	return m
}

// hostBound is implemented by units that need taps into the host machine
// (currently adaptive.Unit). BindHost also arms the unit's first periodic
// event.
type hostBound interface {
	BindHost(ops func() int64, done func() bool)
}

// portGlue is the allocation-free bridge between the core's memory ports and
// the TLB/L1. It owns the machine-wide request pool and a recycled table of
// in-flight demand loads (the address, PC and completion target that must
// survive the TLB latency); translation events carry table indices.
type portGlue struct {
	tlb  *mem.TLB
	l1   *mem.Cache
	pool *mem.Pool

	recs []loadRec
	free []int32

	loadH loadTransHandler
	swpfH swpfTransHandler
}

type loadRec struct {
	addr uint64
	pc   int
	h    sim.Handler
	a    uint64
}

func newPortGlue(tlb *mem.TLB, l1 *mem.Cache) *portGlue {
	g := &portGlue{tlb: tlb, l1: l1, pool: mem.NewPool()}
	g.loadH.g = g
	g.swpfH.g = g
	return g
}

func (g *portGlue) alloc(addr uint64, pc int, h sim.Handler, a uint64) int32 {
	if n := len(g.free); n > 0 {
		ri := g.free[n-1]
		g.free = g.free[:n-1]
		g.recs[ri] = loadRec{addr: addr, pc: pc, h: h, a: a}
		return ri
	}
	g.recs = append(g.recs, loadRec{addr: addr, pc: pc, h: h, a: a})
	return int32(len(g.recs) - 1)
}

func (g *portGlue) freeRec(ri int32) {
	g.recs[ri] = loadRec{} // drop the handler reference eagerly
	g.free = append(g.free, ri)
}

// loadTransHandler receives a demand load's translation (a = record index)
// and forwards the load into L1.
type loadTransHandler struct{ g *portGlue }

func (h loadTransHandler) Handle(_ sim.Ticks, a, ok uint64) {
	g := h.g
	r := g.recs[a]
	g.freeRec(int32(a))
	if ok == 0 {
		panic(fmt.Sprintf("system: demand load to unmapped address %#x", r.addr))
	}
	req := g.pool.Get()
	req.Addr, req.Kind, req.PC = r.addr, mem.Load, r.pc
	req.Tag, req.TimedAt = mem.NoTag, -1
	req.Comp, req.CompA = r.h, r.a
	g.l1.Access(req)
}

// swpfTransHandler receives a software prefetch's translation (a = address);
// faulting or MSHR-less prefetches are silently dropped, as in hardware.
type swpfTransHandler struct{ g *portGlue }

func (h swpfTransHandler) Handle(_ sim.Ticks, a, ok uint64) {
	g := h.g
	if ok == 0 || g.l1.FreeMSHRs() == 0 {
		return
	}
	req := g.pool.Get()
	req.Addr, req.Kind, req.PC = a, mem.Prefetch, -1
	req.Tag, req.TimedAt = mem.NoTag, -1
	g.l1.Access(req)
}

// AttachTrace points every timed component at bus. Call before Run; the
// machine must be used from a single goroutine while a bus is attached
// (sinks are not synchronised). With no bus attached, event emission costs
// one branch per site.
func (m *Machine) AttachTrace(bus *trace.Bus) {
	m.L1.Bus, m.L1.Level = bus, 1
	m.L2.Bus, m.L2.Level = bus, 2
	m.DRAM.Bus = bus
	m.TLB.Bus = bus
	m.Core.Bus = bus
	if m.PF != nil {
		m.PF.Bus = bus
	}
	if tb, ok := m.Baseline.(interface{ AttachTrace(*trace.Bus) }); ok {
		tb.AttachTrace(bus)
	}
}

// AttachOpTrace points the core's per-op dispatch feed at bus: one
// trace.CoreDispatch event per dispatched micro-op. This is the capture path
// of the trace front end (internal/tracein); it is deliberately separate
// from AttachTrace so component tracing and op capture compose freely.
// Call before Run.
func (m *Machine) AttachOpTrace(bus *trace.Bus) { m.Core.OpBus = bus }

// AttachMetrics registers the machine's queue-occupancy histograms
// (observation, request and walk queues) with reg. Call before Run.
func (m *Machine) AttachMetrics(reg *trace.Registry) {
	m.TLB.AttachMetrics(reg)
	if m.PF != nil {
		m.PF.AttachMetrics(reg)
	}
	if mb, ok := m.Baseline.(interface{ AttachMetrics(*trace.Registry) }); ok {
		mb.AttachMetrics(reg)
	}
}

// TraceLayout describes the machine's traced resources for the Chrome
// exporter: one track per PPU, DRAM bank, MSHR and TLB walker.
func (m *Machine) TraceLayout() trace.Layout {
	lay := trace.Layout{
		DRAMBanks:  m.Cfg.DRAM.Banks,
		L1MSHRs:    m.Cfg.L1.MSHRs,
		L2MSHRs:    m.Cfg.L2.MSHRs,
		TLBWalkers: m.Cfg.TLB.Walks,
	}
	if m.PF != nil {
		lay.PPUs = m.Cfg.Prefetcher.NumPPUs
	}
	return lay
}

// RegisterKernel installs a PPU kernel (no-op on machines without the
// programmable prefetcher, so benchmark setup code is scheme-agnostic).
func (m *Machine) RegisterKernel(id int, prog []ppu.Instr) {
	if m.PF != nil {
		m.PF.RegisterKernel(id, prog)
	}
}

// Configure implements ir.ConfigSink: configuration instructions dispatched
// by the core program the prefetcher's filter table and global registers.
func (m *Machine) Configure(info ir.CfgInfo, args []uint64) {
	if m.PF == nil {
		return
	}
	switch info.Kind {
	case ir.CfgBounds:
		if len(args) != 2 {
			panic("system: CfgBounds expects [lo, hi]")
		}
		m.PF.SetRange(info.Slot, prefetch.RangeConfig{
			Lo: args[0], Hi: args[1],
			LoadKernel: info.LoadKernel,
			PFKernel:   info.PFKernel,
			EWMAGroup:  info.EWMAGroup,
			Interval:   info.Interval,
			TimedStart: info.TimedStart,
			TimedEnd:   info.TimedEnd,
		})
	case ir.CfgGlobal:
		if len(args) != 1 {
			panic("system: CfgGlobal expects [value]")
		}
		m.PF.SetGlobal(info.GReg, args[0])
	}
}

// NewInterp builds an interpreter for fn wired to this machine's backing
// store, configuration sink and micro-op counter.
func (m *Machine) NewInterp(fn *ir.Fn, args ...uint64) *ir.Interp {
	return ir.NewInterp(fn, m.Backing, m, m.Counter, args...)
}

// Result captures everything the harness reports about one run.
type Result struct {
	Scheme   Scheme
	Core     cpu.Stats
	L1       mem.CacheStats
	L2       mem.CacheStats
	DRAM     mem.DRAMStats
	TLB      mem.TLBStats
	PF       prefetch.Stats
	Activity []float64 // per-PPU awake fractions (programmable only)
	// Lookaheads are the EWMA look-ahead distances at end of run.
	Lookaheads [8]uint64
	Baseline   baseline.IssuerStats
	Ticks      sim.Ticks
	Cycles     int64
	// Sampled is set only on RunSampled runs, so full-run result encodings
	// are byte-identical to earlier versions.
	Sampled *SampledStats `json:",omitempty"`
	// Adaptive is set only for the adaptive scheme (same reason).
	Adaptive *adaptive.Stats `json:",omitempty"`
	// TimeParallel is set only on RunTimeParallel runs that actually
	// sliced, keeping serial encodings byte-stable.
	TimeParallel *TimeParallelStats `json:",omitempty"`
}

// Run executes the micro-op stream to completion and returns the collected
// statistics. It is Start + Drain + Finish; callers that want to pause at an
// op boundary (to Fork or checkpoint) use the pieces directly.
func (m *Machine) Run(stream cpu.Stream) Result {
	m.Start(stream)
	m.Drain()
	return m.Finish()
}

func (m *Machine) onCoreDone() { m.runDone = true; m.coreDone = true }

// Start begins executing the micro-op stream on the core without advancing
// simulated time. The stream is retained so a later Fork can clone it (if it
// implements ForkableStream).
func (m *Machine) Start(stream cpu.Stream) {
	m.stream = stream
	m.runDone = false
	m.Core.Run(stream, m.onCoreDone)
}

// Drain runs the engine until no events remain, panicking if the core did
// not finish (a deadlock in the memory system).
func (m *Machine) Drain() {
	m.Eng.Run()
	if !m.runDone {
		panic("system: simulation deadlocked: engine drained before the core finished")
	}
}

// RunUntilOps advances the simulation until the core has retired at least n
// micro-ops (or the run completes). The machine is left between events — a
// consistent point to Fork or digest. Start must have been called.
func (m *Machine) RunUntilOps(n int64) {
	for !m.runDone && m.Core.Stats.Ops < n {
		if !m.Eng.Step() {
			panic("system: simulation deadlocked: engine drained before the core finished")
		}
	}
}

// Done reports whether the started run has completed.
func (m *Machine) Done() bool { return m.runDone }

// Finish finalises statistics and builds the Result for a drained run.
func (m *Machine) Finish() Result {
	m.L1.FinalizeStats()
	m.L2.FinalizeStats()

	r := Result{
		Scheme: m.Scheme,
		Core:   m.Core.Stats,
		L1:     m.L1.Stats,
		L2:     m.L2.Stats,
		DRAM:   m.DRAM.Stats,
		TLB:    m.TLB.Stats,
		Ticks:  m.Core.Stats.FinishTick,
		Cycles: m.Core.Stats.Cycles,
	}
	if m.PF != nil {
		r.PF = m.PF.Stats
		r.Activity = m.PF.ActivityFactors()
		for g := range r.Lookaheads {
			r.Lookaheads[g] = m.PF.Lookahead(g)
		}
	}
	if m.Baseline != nil {
		r.Baseline = m.Baseline.Stats()
	}
	if au, ok := m.Baseline.(*adaptive.Unit); ok {
		cs := au.ControllerStats()
		r.Adaptive = &cs
	}
	return r
}
