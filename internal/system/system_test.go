package system

import (
	"testing"

	"eventpf/internal/ir"
	"eventpf/internal/ppu"
)

// buildIndirectSum builds the figure 4(a) loop: acc += C[B[A[x]]].
// Args: 0=A base, 1=B base, 2=C base, 3=N.
func buildIndirectSum(t testing.TB, withSWPf bool) *ir.Fn {
	t.Helper()
	b := ir.NewBuilder("indirect-sum", 4)
	entry := b.NewBlock("entry")
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	aBase, bBase, cBase, n := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
	zero := b.Const(0)
	b.Br(head)

	b.SetBlock(head)
	x := b.Phi()
	acc := b.Phi()
	cmp := b.Bin(ir.CmpLTU, x, n)
	b.CondBr(cmp, body, exit)

	b.SetBlock(body)
	eight := b.Const(8)
	if withSWPf {
		// swpf(&C[B[A[x+dist]]]) is impossible without stalling; standard
		// practice (figure 5a) prefetches one indirection level.
		dist := b.Const(16)
		xd := b.Add(x, dist)
		aAddrD := b.Add(aBase, b.Mul(xd, eight))
		avD := b.Load(aAddrD, "A")
		bAddrD := b.Add(bBase, b.Mul(avD, eight))
		b.SWPf(bAddrD, "B")
	}
	aAddr := b.Add(aBase, b.Mul(x, eight))
	av := b.Load(aAddr, "A")
	bAddr := b.Add(bBase, b.Mul(av, eight))
	bv := b.Load(bAddr, "B")
	cAddr := b.Add(cBase, b.Mul(bv, eight))
	cv := b.Load(cAddr, "C")
	acc2 := b.Add(acc, cv)
	x2 := b.Add(x, b.Const(1))
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	b.SetPhiArgs(x, zero, x2)
	b.SetPhiArgs(acc, zero, acc2)
	return b.MustFinish()
}

const testN = 4096

// setupData fills A with sequential indices (so A is perfectly strided) and
// B with a pseudo-random permutation-ish indirection, C with payloads.
func setupData(m *Machine) (aB, bB, cB uint64, want uint64) {
	a := m.Arena.AllocWords("A", testN+64)
	bb := m.Arena.AllocWords("B", testN+64)
	c := m.Arena.AllocWords("C", testN+64)
	seed := uint64(42)
	for i := uint64(0); i < testN+64; i++ {
		// A holds a scattered index so the B accesses are truly irregular.
		seed = seed*6364136223846793005 + 1442695040888963407
		m.Backing.Write64(a.Base+i*8, (seed>>17)%testN)
		m.Backing.Write64(bb.Base+i*8, (seed>>33)%testN)
		m.Backing.Write64(c.Base+i*8, i*3)
	}
	for i := uint64(0); i < testN; i++ {
		av := m.Backing.Read64(a.Base + i*8)
		bv := m.Backing.Read64(bb.Base + av*8)
		want += m.Backing.Read64(c.Base + bv*8)
	}
	return a.Base, bb.Base, c.Base, want
}

func runScheme(t *testing.T, scheme Scheme, withSWPf, withKernels bool) Result {
	t.Helper()
	cfg := DefaultConfig()
	m := New(cfg, scheme)
	aB, bB, cB, want := setupData(m)

	fn := buildIndirectSum(t, withSWPf)

	if withKernels && scheme == Programmable {
		// Manual kernels mirroring figure 4(b).
		m.RegisterKernel(1, ppu.MustAssemble(`
			vaddr r1
			addi  r1, r1, 256
			pftag r1, 2
			halt
		`))
		m.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g1
			add    r1, r1, r2
			pftag  r1, 3
			halt
		`))
		m.RegisterKernel(3, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g2
			add    r1, r1, r2
			pf     r1
			halt
		`))
		m.Configure(ir.CfgInfo{Kind: ir.CfgGlobal, GReg: 1}, []uint64{bB})
		m.Configure(ir.CfgInfo{Kind: ir.CfgGlobal, GReg: 2}, []uint64{cB})
		m.Configure(ir.CfgInfo{Kind: ir.CfgBounds, Slot: 0, LoadKernel: 1,
			PFKernel: -1, EWMAGroup: -1}, []uint64{aB, aB + testN*8})
	}

	it := m.NewInterp(fn, aB, bB, cB, testN)
	res := m.Run(it)
	got, ok := it.Result()
	if !ok || got != want {
		t.Fatalf("%v: result = %d (ok=%v), want %d — prefetching must not change answers",
			scheme, got, ok, want)
	}
	return res
}

func TestAllSchemesComputeSameAnswer(t *testing.T) {
	runScheme(t, NoPF, false, false)
	runScheme(t, StridePF, false, false)
	runScheme(t, GHBRegular, false, false)
	runScheme(t, GHBLarge, false, false)
	runScheme(t, RPT, false, false)
	runScheme(t, GHBDelta, false, false)
	runScheme(t, TSKID, false, false)
	runScheme(t, NoPF, true, false)         // software prefetch variant
	runScheme(t, Programmable, false, true) // manual events
}

func TestProgrammableBeatsNoPFOnIndirect(t *testing.T) {
	base := runScheme(t, NoPF, false, false)
	prog := runScheme(t, Programmable, false, true)
	speedup := float64(base.Cycles) / float64(prog.Cycles)
	if speedup < 1.5 {
		t.Errorf("programmable speedup = %.2fx, want ≥ 1.5x (base %d vs prog %d cycles)",
			speedup, base.Cycles, prog.Cycles)
	}
	if prog.L1.ReadHitRate() <= base.L1.ReadHitRate() {
		t.Errorf("L1 hit rate did not improve: %.3f vs %.3f",
			base.L1.ReadHitRate(), prog.L1.ReadHitRate())
	}
}

func TestSoftwarePrefetchHelpsButAddsInstructions(t *testing.T) {
	base := runScheme(t, NoPF, false, false)
	sw := runScheme(t, NoPF, true, false)
	if sw.Cycles >= base.Cycles {
		t.Errorf("software prefetch did not help: %d vs %d cycles", sw.Cycles, base.Cycles)
	}
	if sw.Core.Ops <= base.Core.Ops {
		t.Errorf("software prefetch added no instructions: %d vs %d", sw.Core.Ops, base.Core.Ops)
	}
}

func TestStrideHelpsLittleOnIndirect(t *testing.T) {
	base := runScheme(t, NoPF, false, false)
	st := runScheme(t, StridePF, false, false)
	speedup := float64(base.Cycles) / float64(st.Cycles)
	if speedup > 2.0 {
		t.Errorf("stride speedup %.2fx is implausibly high for an indirect pattern", speedup)
	}
}

func TestGHBRegularNoHelpOnSinglePass(t *testing.T) {
	base := runScheme(t, NoPF, false, false)
	gh := runScheme(t, GHBRegular, false, false)
	speedup := float64(base.Cycles) / float64(gh.Cycles)
	if speedup > 1.2 {
		t.Errorf("regular GHB speedup %.2fx on non-repeating accesses", speedup)
	}
}

func TestConfigInstructionsProgramThePrefetcher(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, Programmable)
	m.RegisterKernel(1, ppu.MustAssemble("vaddr r1\naddi r1, r1, 64\npf r1\nhalt"))

	// IR function that configures bounds via Cfg instructions, then loads.
	b := ir.NewBuilder("cfgrun", 2)
	e := b.NewBlock("entry")
	b.SetBlock(e)
	lo := b.Arg(0)
	hi := b.Arg(1)
	b.Cfg(ir.CfgInfo{Kind: ir.CfgBounds, Slot: 0, LoadKernel: 1, PFKernel: -1, EWMAGroup: -1}, lo, hi)
	v := b.Load(lo, "A")
	b.Ret(v)
	fn := b.MustFinish()

	arr := m.Arena.AllocWords("A", 128)
	it := m.NewInterp(fn, arr.Base, arr.End())
	res := m.Run(it)
	if res.PF.KernelRuns == 0 {
		t.Error("config instruction did not arm the filter (no kernel ran)")
	}
	if !m.L1.Contains(arr.Base + 64) {
		t.Error("prefetch from config-armed kernel missing")
	}
}

func TestContextSwitchFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContextSwitchTicks = 50_000
	m := New(cfg, Programmable)
	aB, bB, cB, _ := setupData(m)
	fn := buildIndirectSum(t, false)
	m.RegisterKernel(1, ppu.MustAssemble("vaddr r1\naddi r1, r1, 256\npf r1\nhalt"))
	m.Configure(ir.CfgInfo{Kind: ir.CfgBounds, Slot: 0, LoadKernel: 1,
		PFKernel: -1, EWMAGroup: -1}, []uint64{aB, aB + testN*8})
	it := m.NewInterp(fn, aB, bB, cB, testN)
	res := m.Run(it)
	if res.PF.Flushes == 0 {
		t.Error("no context-switch flushes occurred")
	}
	if res.PF.KernelRuns == 0 {
		t.Error("prefetcher dead after flushes; configuration must survive")
	}
}
