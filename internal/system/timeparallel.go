package system

import (
	"fmt"
	"io"
	"reflect"
	"sync"

	"eventpf/internal/cpu"
)

// Time-parallel simulation: one run is split into K contiguous op-count
// slices, each simulated in timing detail on its own forked machine while
// every op before the slice executes functionally (backing-store update plus
// cache/TLB/predictor warming, no simulated time). The slices run
// concurrently — the whole point — and their statistics are stitched into
// one Result. The composition is approximate versus a serial run (each
// slice starts with warm caches but an empty window, idle MSHRs and idle
// DRAM banks), but deterministic: boundaries are a pure function of
// (TotalOps, Slices), warming is deterministic, and forked machines share
// no mutable state, so two sliced runs of the same config are
// byte-identical however the goroutines are scheduled.

// MinSliceOps is the smallest detailed window worth forking a machine for:
// below this the per-slice cold-start transient (window refill, first-miss
// overlap) dominates and the parallelism cannot pay for the fork. Slicing
// requests are clamped so every slice has at least this many ops; programs
// shorter than 2*MinSliceOps run serially.
const MinSliceOps = 1024

// TimeParallelConfig sizes a time-parallel run.
type TimeParallelConfig struct {
	// Slices is the requested slice count K. Values below 2 run serially.
	Slices int
	// TotalOps is the program's dynamic op count, from a functional
	// counting pass. Boundaries are TotalOps*i/K; the last slice runs to
	// the true end of the stream, so a slightly-off count only skews the
	// final slice's length, never drops or duplicates ops.
	TotalOps int64
}

// TimeParallelStats records what a time-parallel run actually did; it is
// attached to Result.TimeParallel (omitted entirely on serial runs, keeping
// serial encodings byte-stable).
type TimeParallelStats struct {
	// Slices is the effective slice count after clamping.
	Slices int
	// WarmOps[i] counts the ops slice i fast-forwarded functionally.
	WarmOps []int64
	// DetailOps[i] counts the ops slice i simulated in timing detail.
	DetailOps []int64
	// SliceCycles[i] is slice i's detailed core cycles; the stitched
	// Result.Cycles is their sum.
	SliceCycles []int64
}

// RunTimeParallel executes the stream across cfg.Slices concurrent slices
// and returns the stitched Result plus the machine that simulated the final
// slice — the one holding the complete functional execution (backing store,
// final stream position), which callers need for end-of-run oracle checks.
//
// Serial execution is forced — and the returned machine is m itself, with a
// Result identical to m.Run(stream) — when the effective slice count after
// clamping against MinSliceOps is below 2, or when the stream cannot be
// forked (it does not implement ForkableStream, or a member stream is not
// cloneable). The fallback is silent by design: slicing is a performance
// hint, not a semantic request.
func (m *Machine) RunTimeParallel(stream cpu.Stream, cfg TimeParallelConfig) (Result, *Machine, error) {
	k := cfg.Slices
	if cfg.TotalOps > 0 && int64(k) > cfg.TotalOps/MinSliceOps {
		k = int(cfg.TotalOps / MinSliceOps)
	}
	if k < 2 || cfg.TotalOps <= 0 {
		return m.Run(stream), m, nil
	}

	// Fork K-1 machines at op zero. Start has installed the stream but no
	// event has run, so every fork is a byte-exact copy of the initial
	// machine with its own stream clone positioned at op zero.
	m.Start(stream)
	machines := make([]*Machine, k)
	machines[0] = m
	for i := 1; i < k; i++ {
		f, err := m.Fork()
		if err != nil {
			// Not forkable: close the clones already made and run the
			// untouched parent serially (Start already happened).
			for _, fm := range machines[1:i] {
				closeStream(fm.stream)
			}
			m.Drain()
			return m.Finish(), m, nil
		}
		machines[i] = f
	}

	// Wrap every machine's stream in its slice window. Slice i warms
	// [0, start_i) and detail-simulates [start_i, end_i); the last slice
	// runs to the true end of the stream.
	slices := make([]*sliceStream, k)
	for i, mi := range machines {
		start := cfg.TotalOps * int64(i) / int64(k)
		count := cfg.TotalOps*int64(i+1)/int64(k) - start
		if i == k-1 {
			count = -1 // to end of stream
		}
		ss := &sliceStream{inner: mi.stream, skip: start, count: count}
		ss.warmFilter.init(mi)
		slices[i] = ss
		mi.swapStream(ss)
	}

	// Detail-simulate all slices concurrently. Each machine is confined to
	// its goroutine; results are read only after the join.
	var wg sync.WaitGroup
	for _, mi := range machines {
		wg.Add(1)
		go func(mi *Machine) {
			defer wg.Done()
			mi.Drain()
		}(mi)
	}
	wg.Wait()

	results := make([]Result, k)
	for i, mi := range machines {
		results[i] = mi.Finish()
	}
	// Abandoned mid-stream clones (every slice but the last stops short of
	// its stream's end) may hold open trace files; release them.
	for _, ss := range slices[:k-1] {
		closeStream(ss)
	}

	last := machines[k-1]
	// Expose the final slice's inner stream (the clone that actually
	// reached end of program) so Machine.Stream() hands callers their own
	// stream type back, exactly as after a serial run.
	last.stream = slices[k-1].inner

	out := stitch(results, slices)
	return out, last, nil
}

// stitch composes per-slice results into one whole-program Result. Counter
// and duration fields sum (each dynamic op was detail-simulated in exactly
// one slice, and every slice's clock starts at zero, so per-slice times are
// chunk durations); end-of-run gauges — EWMA look-ahead distances, the
// adaptive controller's final arm and sensors — come from the last slice;
// per-PPU activity fractions average weighted by slice duration.
func stitch(results []Result, slices []*sliceStream) Result {
	out := results[len(results)-1]
	tp := &TimeParallelStats{Slices: len(results)}
	var totalTicks int64
	activity := make([]float64, len(out.Activity))
	for i, r := range results {
		tp.WarmOps = append(tp.WarmOps, slices[i].warmed)
		tp.DetailOps = append(tp.DetailOps, slices[i].delivered)
		tp.SliceCycles = append(tp.SliceCycles, r.Cycles)
		totalTicks += int64(r.Ticks)
		for p := range activity {
			if p < len(r.Activity) {
				activity[p] += r.Activity[p] * float64(r.Ticks)
			}
		}
		if i < len(results)-1 {
			addNumeric(reflect.ValueOf(&out).Elem(), reflect.ValueOf(&results[i]).Elem())
		}
	}
	if totalTicks > 0 {
		for p := range activity {
			activity[p] /= float64(totalTicks)
		}
	}
	if len(activity) > 0 {
		out.Activity = activity
	}
	out.TimeParallel = tp
	return out
}

// statFields names the Result fields stitch sums across slices. Scheme,
// Activity, Lookaheads and the omitempty sub-structs are composed by hand.
var statFields = []string{"Core", "L1", "L2", "DRAM", "TLB", "PF", "Baseline", "Ticks", "Cycles"}

// addNumeric adds src's counter fields into dst. Both are Result values;
// within the selected sub-structs every integer and float field accumulates
// (they are all counters, sums or durations), nested structs recurse, and
// anything else (strings, slices) keeps dst's value — the last slice's.
func addNumeric(dst, src reflect.Value) {
	for _, name := range statFields {
		d := dst.FieldByName(name)
		s := src.FieldByName(name)
		if !d.IsValid() || !s.IsValid() {
			panic(fmt.Sprintf("system: stitch: Result has no field %s", name))
		}
		addValue(d, s)
	}
	// Adaptive is a pointer sub-struct; sum its counters when both slices
	// carry it (the adaptive scheme), keeping the last slice's strings and
	// per-arm breakdown.
	d, s := dst.FieldByName("Adaptive"), src.FieldByName("Adaptive")
	if !d.IsNil() && !s.IsNil() {
		addValue(d.Elem(), s.Elem())
	}
}

func addValue(d, s reflect.Value) {
	switch d.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d.SetInt(d.Int() + s.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		d.SetUint(d.Uint() + s.Uint())
	case reflect.Float32, reflect.Float64:
		d.SetFloat(d.Float() + s.Float())
	case reflect.Struct:
		for i := 0; i < d.NumField(); i++ {
			addValue(d.Field(i), s.Field(i))
		}
	}
}

// swapStream replaces the machine's (and core's) micro-op stream. Only legal
// between Start and the first engine step, i.e. before the core has pulled
// any op.
func (m *Machine) swapStream(s cpu.Stream) {
	m.stream = s
	m.Core.SwapStream(s)
}

// closeStream releases a stream abandoned mid-run (a non-final slice's
// clone): trace replayers hold open file handles that only a clean
// end-of-stream would otherwise close.
func closeStream(s cpu.Stream) {
	if c, ok := s.(io.Closer); ok {
		c.Close() // best effort; the stream is abandoned
	}
}

// sliceStream feeds a core one time-parallel slice of its inner stream:
// the first skip ops execute functionally (warmFilter), the next count ops
// pass through in timing detail with renumbered deps, and the stream then
// reports end-of-program even if the inner stream has more — the next slice
// covers those.
type sliceStream struct {
	warmFilter
	inner cpu.Stream
	skip  int64 // ops to fast-forward before the detailed window
	count int64 // detailed ops to deliver; negative = to end of stream

	warmed    int64
	delivered int64
}

// Next implements cpu.Stream.
func (s *sliceStream) Next() (cpu.MicroOp, bool) {
	for s.warmed < s.skip {
		op, ok := s.inner.Next()
		if !ok {
			return cpu.MicroOp{}, false
		}
		s.pulled++
		s.warmed++
		s.warm(op)
	}
	if s.count >= 0 && s.delivered >= s.count {
		return cpu.MicroOp{}, false
	}
	srcID := s.pulled
	op, ok := s.inner.Next()
	if !ok {
		return cpu.MicroOp{}, false
	}
	s.pulled++
	s.delivered++
	s.deliver(&op, srcID)
	return op, true
}

// Close implements io.Closer for abandoned slices, releasing the inner
// stream's resources (trace replayer file handles).
func (s *sliceStream) Close() error {
	if c, ok := s.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Inner returns the wrapped stream (the final slice's clone reaches end of
// program and carries the run's functional result).
func (s *sliceStream) Inner() cpu.Stream { return s.inner }
