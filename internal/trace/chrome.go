package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Layout tells the Chrome exporter how many of each resource the simulated
// machine had, so every PPU, MSHR, DRAM bank and TLB walker gets its own
// named track even if it never emitted an event.
type Layout struct {
	PPUs       int
	DRAMBanks  int
	L1MSHRs    int
	L2MSHRs    int
	TLBWalkers int
}

// Track id bases. Every resource instance is pid 1, tid base+index; the
// ppftrace analyzer and the metadata below rely on these staying stable.
const (
	tidCoreBase = 10  // + stall reason
	tidPrefetch = 50  // prefetcher lifecycle instants
	tidAdaptive = 51  // adaptive controller decisions
	tidPPUBase  = 100 // + PPU id
	tidBankBase = 200 // + DRAM bank
	tidL1MSHR   = 300 // + MSHR slot
	tidL2MSHR   = 400 // + MSHR slot
	tidWalker   = 500 // + walker slot
)

type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// us converts ticks (62.5 ps each) to Chrome's microsecond timestamps.
func us(t int64) float64 { return float64(t) / 16000.0 }

func meta(tid int, name string) chromeEvent {
	return chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": name}}
}

func complete(tid int, name string, at, dur int64, args map[string]any) chromeEvent {
	d := us(dur)
	return chromeEvent{Name: name, Ph: "X", Ts: us(at), Dur: &d, Pid: 1, Tid: tid, Args: args}
}

func instant(tid int, name string, at int64, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Ph: "i", Ts: us(at), Pid: 1, Tid: tid, Scope: "t", Args: args}
}

// openSlice is a begun-but-unfinished track span during conversion.
type openSlice struct {
	at   int64
	name string
	args map[string]any
}

// WriteChrome converts collected events into Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing): one track per PPU, per L1/L2
// MSHR, per DRAM bank and per TLB walker, plus instant tracks for the
// prefetcher lifecycle and core stalls. Span-shaped events (DRAM, TLB
// walks) carry their duration; PPU busy spans are reconstructed from
// PFKernel/PFUnitFree pairs and MSHR residency from CacheMiss/CacheFill.
func WriteChrome(w io.Writer, events []Event, lay Layout) error {
	out := chromeFile{DisplayTimeUnit: "ns"}
	add := func(e chromeEvent) { out.TraceEvents = append(out.TraceEvents, e) }

	add(meta(tidPrefetch, "prefetcher"))
	add(meta(tidAdaptive, "adaptive controller"))
	stallNames := [...]string{
		StallLQ: "core stall: LQ full", StallSQ: "core stall: SQ full",
		StallRedirect: "core stall: redirect", StallRetire: "core stall: retire",
	}
	for r, n := range stallNames {
		add(meta(tidCoreBase+r, n))
	}
	for i := 0; i < lay.PPUs; i++ {
		add(meta(tidPPUBase+i, fmt.Sprintf("PPU %d", i)))
	}
	for i := 0; i < lay.DRAMBanks; i++ {
		add(meta(tidBankBase+i, fmt.Sprintf("DRAM bank %d", i)))
	}
	for i := 0; i < lay.L1MSHRs; i++ {
		add(meta(tidL1MSHR+i, fmt.Sprintf("L1 MSHR %d", i)))
	}
	for i := 0; i < lay.L2MSHRs; i++ {
		add(meta(tidL2MSHR+i, fmt.Sprintf("L2 MSHR %d", i)))
	}
	for i := 0; i < lay.TLBWalkers; i++ {
		add(meta(tidWalker+i, fmt.Sprintf("TLB walker %d", i)))
	}

	ppu := map[int32]openSlice{}   // PPU id → running kernel span
	mshr := map[int64]openSlice{}  // level<<32|slot → miss span
	stall := map[int32]openSlice{} // stall reason → span
	var last int64

	closeSlice := func(tid int, s openSlice, end int64) {
		if end < s.at {
			end = s.at
		}
		add(complete(tid, s.name, s.at, end-s.at, s.args))
	}

	for _, e := range events {
		if e.At > last {
			last = e.At
		}
		if end := e.At + e.Dur; end > last {
			last = end
		}
		switch e.Kind {
		case PFKernel:
			tid := tidPPUBase + int(e.C)
			if s, ok := ppu[e.C]; ok {
				closeSlice(tid, s, e.At)
			}
			ppu[e.C] = openSlice{at: e.At, name: fmt.Sprintf("kernel %d", e.A),
				args: map[string]any{"kernel": e.A, "addr": fmt.Sprintf("%#x", e.Addr)}}
		case PFUnitFree:
			if s, ok := ppu[e.C]; ok {
				closeSlice(tidPPUBase+int(e.C), s, e.At)
				delete(ppu, e.C)
			}
		case PFObserve, PFObsDrop, PFFlush:
			add(instant(tidPrefetch, e.Kind.String(), e.At, map[string]any{"kernel": e.A}))
		case PFGenerate:
			add(instant(tidPrefetch, "generate", e.At, map[string]any{
				"id": e.ID, "kernel": e.A, "tag": e.B, "ppu": e.C, "addr": fmt.Sprintf("%#x", e.Addr)}))
		case PFEnqueue:
			add(instant(tidPrefetch, "enqueue", e.At, map[string]any{"id": e.ID, "depth": e.A}))
		case PFIssue:
			add(instant(tidPrefetch, "issue", e.At, map[string]any{"id": e.ID}))
		case PFFill:
			add(instant(tidPrefetch, "fill", e.At, map[string]any{
				"id": e.ID, "kernel": e.A, "filled": e.B == 1}))
		case PFDrop:
			reason := [...]string{DropQueue: "queue", DropTLB: "tlb", DropMSHR: "mshr"}
			name := "unknown"
			if int(e.A) < len(reason) && e.A >= 0 {
				name = reason[e.A]
			}
			add(instant(tidPrefetch, "drop", e.At, map[string]any{"id": e.ID, "reason": name}))
		case CacheMiss:
			key := int64(e.A)<<32 | int64(e.B)
			kind := "prefetch"
			if e.C == 1 {
				kind = "demand"
			}
			mshr[key] = openSlice{at: e.At, name: fmt.Sprintf("%s %#x", kind, e.Addr),
				args: map[string]any{"line": fmt.Sprintf("%#x", e.Addr)}}
		case CacheFill:
			base := tidL1MSHR
			if e.A == 2 {
				base = tidL2MSHR
			}
			key := int64(e.A)<<32 | int64(e.B)
			if s, ok := mshr[key]; ok {
				closeSlice(base+int(e.B), s, e.At)
				delete(mshr, key)
			}
		case CacheMSHRFull:
			add(instant(tidPrefetch, fmt.Sprintf("L%d mshr-full", e.A), e.At, nil))
		case CachePFDrop:
			add(instant(tidPrefetch, "drop", e.At, map[string]any{"id": e.ID, "reason": "mshr"}))
		case DRAMAccess:
			states := [...]string{RowHit: "row-hit", RowMiss: "row-miss", RowEmpty: "row-empty"}
			name := "access"
			if int(e.A) >= 0 && int(e.B) < len(states) && e.B >= 0 {
				name = states[e.B]
			}
			add(complete(tidBankBase+int(e.A), name, e.At, e.Dur,
				map[string]any{"line": fmt.Sprintf("%#x", e.Addr)}))
		case TLBWalk:
			add(complete(tidWalker+int(e.A), "walk", e.At, e.Dur,
				map[string]any{"page": fmt.Sprintf("%#x", e.Addr), "mapped": e.B == 1}))
		case CoreStall:
			if _, ok := stall[e.A]; !ok {
				name := "core stall"
				if int(e.A) >= 0 && int(e.A) < len(stallNames) {
					name = stallNames[e.A]
				}
				stall[e.A] = openSlice{at: e.At, name: name}
			}
		case AdaptiveSwitch:
			reasons := [...]string{SwitchSweep: "sweep", SwitchExploit: "exploit", SwitchExplore: "explore"}
			name := "switch"
			if int(e.C) >= 0 && int(e.C) < len(reasons) {
				name = "switch: " + reasons[e.C]
			}
			add(instant(tidAdaptive, name, e.At, map[string]any{"from": e.A, "to": e.B}))
		case AdaptivePhase:
			name := "phase: rising"
			if e.C > 0 {
				name = "phase: pf-idle"
			}
			add(instant(tidAdaptive, name, e.At, map[string]any{"fast": e.A, "slow": e.B}))
		case CoreStallEnd:
			if s, ok := stall[e.A]; ok {
				closeSlice(tidCoreBase+int(e.A), s, e.At)
				delete(stall, e.A)
			}
		}
	}
	// Close anything still open at the end of the run, in key order so the
	// exported file is deterministic.
	for _, id := range sortedKeys(ppu) {
		closeSlice(tidPPUBase+int(id), ppu[id], last)
	}
	for _, key := range sortedKeys(mshr) {
		base := tidL1MSHR
		if key>>32 == 2 {
			base = tidL2MSHR
		}
		closeSlice(base+int(key&0xffffffff), mshr[key], last)
	}
	for _, r := range sortedKeys(stall) {
		closeSlice(tidCoreBase+int(r), stall[r], last)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[K int32 | int64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
