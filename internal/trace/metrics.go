package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Registry holds named counters and occupancy histograms for one simulated
// machine. Like the Bus it is single-goroutine (one registry per Machine)
// and free when absent: Counter and Hist methods are nil-safe, so
// components hold possibly-nil handles and update unconditionally.
type Registry struct {
	counters []*Counter
	hists    []*Hist
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotonically increasing named count.
type Counter struct {
	Name string
	N    int64
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	for _, c := range r.counters {
		if c.Name == name {
			return c
		}
	}
	c := &Counter{Name: name}
	r.counters = append(r.counters, c)
	return c
}

// Add increments the counter; nil-safe.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.N += d
	}
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Hist is an occupancy histogram over the integer range [0, max]: bucket i
// counts samples of value i, with values above max clamped into the last
// bucket. Queue depths are sampled on every transition (enqueue AND
// dequeue), so the distribution reflects how full the queue was across its
// whole life, not just at arrival instants.
type Hist struct {
	Name    string
	Buckets []int64
	N       int64
	Sum     int64
	Clamped int64 // samples above max, folded into the last bucket
}

// Hist returns the histogram with the given name, creating it with range
// [0, max] if needed.
func (r *Registry) Hist(name string, max int) *Hist {
	for _, h := range r.hists {
		if h.Name == name {
			return h
		}
	}
	if max < 1 {
		max = 1
	}
	h := &Hist{Name: name, Buckets: make([]int64, max+1)}
	r.hists = append(r.hists, h)
	return h
}

// Observe records one sample; nil-safe and allocation-free.
func (h *Hist) Observe(v int) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
		h.Clamped++
	}
	h.Buckets[v]++
	h.N++
	h.Sum += int64(v)
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	if h == nil || h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns the smallest value v such that at least q of the samples
// are ≤ v (q in [0,1]).
func (h *Hist) Quantile(q float64) int {
	if h == nil || h.N == 0 {
		return 0
	}
	want := int64(q * float64(h.N))
	if want < 1 {
		want = 1
	}
	var seen int64
	for v, n := range h.Buckets {
		seen += n
		if seen >= want {
			return v
		}
	}
	return len(h.Buckets) - 1
}

// Max returns the largest observed value.
func (h *Hist) Max() int {
	if h == nil {
		return 0
	}
	for v := len(h.Buckets) - 1; v >= 0; v-- {
		if h.Buckets[v] > 0 {
			return v
		}
	}
	return 0
}

// Merge folds another registry's counts into this one: counters add, and
// histograms add bucket-wise (growing this registry's bucket range if the
// source observed a wider one). The serving layer uses it to aggregate the
// per-run registries of completed jobs — each run's registry stays confined
// to its simulation goroutine, and the finished snapshot is merged under the
// server's lock — so Merge itself needs no synchronisation beyond the
// caller's.
func (r *Registry) Merge(o *Registry) {
	if o == nil {
		return
	}
	for _, c := range o.counters {
		r.Counter(c.Name).Add(c.N)
	}
	for _, h := range o.hists {
		dst := r.Hist(h.Name, len(h.Buckets)-1)
		if len(dst.Buckets) < len(h.Buckets) {
			dst.Buckets = append(dst.Buckets, make([]int64, len(h.Buckets)-len(dst.Buckets))...)
		}
		for v, n := range h.Buckets {
			dst.Buckets[v] += n
		}
		dst.N += h.N
		dst.Sum += h.Sum
		dst.Clamped += h.Clamped
	}
}

// Counters returns the registered counters in registration order; the
// serving layer's /metrics endpoint walks this to render each one.
func (r *Registry) Counters() []*Counter { return r.counters }

// Hists returns the registered histograms in registration order.
func (r *Registry) Hists() []*Hist { return r.hists }

// Format renders the registry as an aligned text report, counters first,
// then one summary line per histogram, both sorted by name.
func (r *Registry) Format() string {
	var sb strings.Builder
	names := func(n int, name func(int) string) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return name(idx[a]) < name(idx[b]) })
		return idx
	}
	for _, i := range names(len(r.counters), func(i int) string { return r.counters[i].Name }) {
		c := r.counters[i]
		fmt.Fprintf(&sb, "%-28s %12d\n", c.Name, c.N)
	}
	for _, i := range names(len(r.hists), func(i int) string { return r.hists[i].Name }) {
		h := r.hists[i]
		fmt.Fprintf(&sb, "%-28s n=%-10d mean=%-8.2f p50=%-4d p99=%-4d max=%-4d\n",
			h.Name, h.N, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
	return sb.String()
}
