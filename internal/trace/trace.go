// Package trace is the simulator-wide trace bus: every timed component —
// the core, both cache levels, the TLB, DRAM and the programmable
// prefetcher — emits typed lifecycle events onto one Bus, and sinks attached
// to the bus observe the merged stream in simulation order. The package
// grew out of the prefetcher-only tracer (it keeps that package's ring
// buffer and event vocabulary) and adds the rest of the machine, a metrics
// registry (metrics.go) and a Chrome trace-event exporter (chrome.go).
//
// Cost discipline: tracing must be free when off. Components hold a *Bus
// that is nil unless a sink was attached, and Emit on a nil bus is a single
// branch; events are plain value structs, so an enabled bus with a
// preallocated sink still allocates nothing per event. The zero-overhead
// property is pinned by TestEmitDisabledZeroAllocs.
package trace

import (
	"fmt"
	"io"
	"sync"

	"eventpf/internal/sim"
)

// Kind classifies trace events. The PF* kinds are the prefetcher lifecycle
// (in rough order); the rest cover the memory system and the core.
type Kind int32

// Trace event kinds. The comment after each kind documents how the
// kind-specific Event fields A, B, C and ID are used.
const (
	PFObserve  Kind = iota // load/fill observation accepted; A=kernel
	PFObsDrop              // observation queue overflow; A=kernel of dropped obs
	PFKernel               // kernel started on a PPU; A=kernel, C=ppu
	PFGenerate             // kernel emitted a prefetch; A=kernel, B=chain tag, C=ppu, ID=request
	PFEnqueue              // request entered the request queue; A=depth after, ID=request
	PFIssue                // request issued into the L1; ID=request
	PFFill                 // prefetched data arrived; A=chain kernel, B=1 real fill/0 resident, ID=request
	PFDrop                 // request dropped; A=reason (DropQueue/DropTLB/DropMSHR), ID=request
	PFFlush                // context-switch flush
	PFUnitFree             // PPU finished and went idle; C=ppu

	CacheMiss     // MSHR allocated; A=cache level, B=MSHR slot, C=1 demand/0 prefetch, ID=line
	CacheFill     // MSHR filled and released; A=cache level, B=MSHR slot, ID=line
	CacheMSHRFull // demand miss queued behind a full MSHR file; A=cache level
	CachePFDrop   // prefetch discarded inside the cache; A=cache level, ID=tag
	DRAMAccess    // bank activity; A=bank, B=row state (RowHit/RowMiss/RowEmpty), Dur=bank busy
	TLBWalk       // page-table walk; A=walker slot, B=1 mapped/0 fault, Dur=walk latency
	CoreStall     // dispatch/retire stall began; A=stall reason (Stall*)
	CoreStallEnd  // the stall reason cleared; A=stall reason

	AdaptiveSwitch // adaptive controller changed the active arm; A=from arm, B=to arm, C=reason (Switch*)
	AdaptivePhase  // adaptive phase detector fired; A=fast miss-rate EWMA (per-mille), B=slow

	// CoreDispatch is one micro-op entering the core's window, the feed the
	// trace-capture sink (internal/tracein) records: ID=dynamic op id,
	// A=cpu.OpKind, B=PC, C bit0=branch taken, Dur=the two dependence
	// distances (id minus producer id, 0 = none) packed as uint32 halves.
	// It is emitted on the core's dedicated OpBus, never the machine bus,
	// so ordinary -trace-out exports are not flooded with per-op events.
	CoreDispatch
)

// AdaptiveSwitch reasons (Event.C).
const (
	SwitchSweep   int32 = iota // trialling arms after a phase change / at start
	SwitchExploit              // settled on the best-reward arm
	SwitchExplore              // epsilon-greedy exploration interval
)

// PFDrop reasons (Event.A).
const (
	DropQueue int32 = iota // request-queue overflow
	DropTLB                // page-table miss during translation
	DropMSHR               // no free L1 MSHR
)

// DRAMAccess row states (Event.B).
const (
	RowHit int32 = iota
	RowMiss
	RowEmpty
)

// CoreStall reasons (Event.A).
const (
	StallLQ       int32 = iota // load-queue full at dispatch
	StallSQ                    // store-queue full at dispatch
	StallRedirect              // branch mispredict redirect
	StallRetire                // retirement blocked on an incomplete memory op
)

var kindNames = [...]string{
	PFObserve: "observe", PFObsDrop: "obs-drop", PFKernel: "kernel",
	PFGenerate: "generate", PFEnqueue: "enqueue", PFIssue: "issue",
	PFFill: "fill", PFDrop: "drop", PFFlush: "flush", PFUnitFree: "unit-free",
	CacheMiss: "cache-miss", CacheFill: "cache-fill",
	CacheMSHRFull: "mshr-full", CachePFDrop: "cache-pf-drop",
	DRAMAccess: "dram", TLBWalk: "tlb-walk",
	CoreStall: "core-stall", CoreStallEnd: "core-stall-end",
	AdaptiveSwitch: "adapt-switch", AdaptivePhase: "adapt-phase",
	CoreDispatch: "dispatch",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one component lifecycle event. Only At, Kind and Addr are
// universal; A, B, C and ID are kind-specific (see the Kind constants), with
// -1 meaning "not applicable". Dur is nonzero only for span-shaped events
// (DRAMAccess, TLBWalk) whose extent is known at emission time.
type Event struct {
	At   sim.Ticks
	Dur  sim.Ticks
	Addr uint64
	ID   int64
	Kind Kind
	A    int32
	B    int32
	C    int32
}

func (e Event) String() string {
	switch e.Kind {
	case PFObserve, PFObsDrop:
		return fmt.Sprintf("%12d %-9s addr=%#x kernel=%d ppu=%d", e.At, e.Kind, e.Addr, e.A, e.C)
	case PFKernel:
		return fmt.Sprintf("%12d %-9s addr=%#x kernel=%d ppu=%d", e.At, e.Kind, e.Addr, e.A, e.C)
	case PFGenerate:
		return fmt.Sprintf("%12d %-9s addr=%#x kernel=%d tag=%d ppu=%d id=%d", e.At, e.Kind, e.Addr, e.A, e.B, e.C, e.ID)
	case PFEnqueue, PFIssue, PFFill, PFDrop:
		return fmt.Sprintf("%12d %-9s addr=%#x id=%d a=%d b=%d", e.At, e.Kind, e.Addr, e.ID, e.A, e.B)
	case DRAMAccess:
		return fmt.Sprintf("%12d %-9s line=%#x bank=%d row=%d dur=%d", e.At, e.Kind, e.Addr, e.A, e.B, e.Dur)
	case TLBWalk:
		return fmt.Sprintf("%12d %-9s page=%#x walker=%d ok=%d dur=%d", e.At, e.Kind, e.Addr, e.A, e.B, e.Dur)
	default:
		return fmt.Sprintf("%12d %-9s addr=%#x a=%d b=%d c=%d id=%d", e.At, e.Kind, e.Addr, e.A, e.B, e.C, e.ID)
	}
}

// Sink receives events. Implementations must be cheap: they run inline with
// the simulation, on the simulation's goroutine.
type Sink interface {
	Event(Event)
}

// Bus fans component events out to its sinks. A nil *Bus is the disabled
// bus: Emit on it is a single branch, so components can hold a possibly-nil
// bus and emit unconditionally.
type Bus struct {
	sinks []Sink
}

// NewBus builds a bus delivering to the given sinks.
func NewBus(sinks ...Sink) *Bus {
	return &Bus{sinks: sinks}
}

// Attach adds a sink to the bus.
func (b *Bus) Attach(s Sink) { b.sinks = append(b.sinks, s) }

// Emit delivers e to every sink; nil-safe and allocation-free.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	for _, s := range b.sinks {
		s.Event(e)
	}
}

// Locked wraps a sink with a mutex so several machines simulating in
// parallel can share it. Sinks are otherwise single-goroutine (they run
// inline on the simulation goroutine); wrap with Locked before putting one
// sink in the Options of a parallel Suite, or before letting a serving-layer
// reader observe a sink while a simulation is still writing to it. Events
// from concurrent runs interleave in lock-acquisition order; within one run
// they stay in simulation order.
func Locked(s Sink) Sink { return &lockedSink{inner: s} }

type lockedSink struct {
	mu    sync.Mutex
	inner Sink
}

func (l *lockedSink) Event(e Event) {
	l.mu.Lock()
	l.inner.Event(e)
	l.mu.Unlock()
}

// Ring keeps the most recent N events — the usual way to look at "what was
// the machine doing just before things went wrong".
type Ring struct {
	buf  []Event
	next int
	full bool
}

// NewRing creates a sink holding the last n events.
func NewRing(n int) *Ring { return &Ring{buf: make([]Event, n)} }

// Event implements Sink.
func (r *Ring) Event(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events to w.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// Collector retains every event, for exporters that need the full run
// (chrome.go). Appends amortise; for long runs prefer a Ring.
type Collector struct {
	events []Event
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Event implements Sink.
func (c *Collector) Event(e Event) { c.events = append(c.events, e) }

// Events returns everything collected, in emission order.
func (c *Collector) Events() []Event { return c.events }
