package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEmitDisabledZeroAllocs(t *testing.T) {
	var bus *Bus // the disabled bus is the nil bus
	ev := Event{At: 100, Kind: PFGenerate, Addr: 0x1000, ID: 7, A: 1, B: 2, C: 3}
	if n := testing.AllocsPerRun(1000, func() { bus.Emit(ev) }); n != 0 {
		t.Errorf("disabled bus: %v allocs/event, want 0", n)
	}
}

func TestEmitRingSinkZeroAllocs(t *testing.T) {
	bus := NewBus(NewRing(64))
	ev := Event{At: 100, Kind: PFIssue, Addr: 0x1000, ID: 7}
	if n := testing.AllocsPerRun(1000, func() { bus.Emit(ev) }); n != 0 {
		t.Errorf("ring-sink bus: %v allocs/event, want 0", n)
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Event(Event{At: int64(i)})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.At != int64(6+i) {
			t.Errorf("event %d at %d, want %d (oldest first)", i, e.At, 6+i)
		}
	}
}

func TestBusFansOutToAllSinks(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	bus := NewBus(a)
	bus.Attach(b)
	bus.Emit(Event{Kind: PFFlush})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("sinks saw %d/%d events, want 1/1", len(a.Events()), len(b.Events()))
	}
}

func TestRegistryCountersAndHists(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pf/drops")
	c.Inc()
	c.Add(2)
	if c.N != 3 {
		t.Errorf("counter = %d, want 3", c.N)
	}
	if r.Counter("pf/drops") != c {
		t.Error("Counter did not return the existing counter")
	}
	h := r.Hist("pf/req-queue-depth", 8)
	for _, v := range []int{0, 1, 1, 2, 100} {
		h.Observe(v)
	}
	if h.N != 5 || h.Clamped != 1 {
		t.Errorf("hist N=%d clamped=%d, want 5, 1", h.N, h.Clamped)
	}
	if h.Max() != 8 {
		t.Errorf("hist max = %d, want 8 (clamped)", h.Max())
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	out := r.Format()
	for _, want := range []string{"pf/drops", "pf/req-queue-depth", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestNilMetricsHandlesAreFree(t *testing.T) {
	var c *Counter
	var h *Hist
	if n := testing.AllocsPerRun(100, func() { c.Inc(); h.Observe(3) }); n != 0 {
		t.Errorf("nil metric handles allocated %v/op", n)
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("nil hist accessors should return zero")
	}
}

func TestWriteChromeProducesValidJSON(t *testing.T) {
	events := []Event{
		{At: 0, Kind: PFObserve, Addr: 0x1000, A: 1},
		{At: 16, Kind: PFKernel, Addr: 0x1000, A: 1, C: 0},
		{At: 20, Kind: PFGenerate, Addr: 0x1040, ID: 0, A: 1, B: 2, C: 0},
		{At: 24, Kind: PFEnqueue, ID: 0, A: 1},
		{At: 30, Kind: PFIssue, ID: 0},
		{At: 32, Kind: PFUnitFree, C: 0},
		{At: 40, Kind: CacheMiss, Addr: 0x1040, A: 1, B: 0, C: 0, ID: 0x1040},
		{At: 50, Kind: DRAMAccess, Addr: 0x1040, A: 3, B: RowMiss, Dur: 420},
		{At: 60, Kind: TLBWalk, Addr: 0x1000, A: 0, B: 1, Dur: 300},
		{At: 500, Kind: CacheFill, Addr: 0x1040, A: 1, B: 0, ID: 0x1040},
		{At: 500, Kind: PFFill, ID: 0, A: 2, B: 1},
		{At: 510, Kind: CoreStall, A: StallLQ},
		{At: 600, Kind: CoreStallEnd, A: StallLQ},
		{At: 620, Kind: AdaptiveSwitch, A: 0, B: 4, C: SwitchSweep},
		{At: 640, Kind: AdaptivePhase, A: 300, B: 100, C: -1},
	}
	lay := Layout{PPUs: 2, DRAMBanks: 8, L1MSHRs: 12, L2MSHRs: 16, TLBWalkers: 3}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, lay); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	var kernelSlices, metas, fills, adapts int
	for _, e := range parsed.TraceEvents {
		switch {
		case e.Ph == "M":
			metas++
		case e.Ph == "X" && strings.HasPrefix(e.Name, "kernel"):
			kernelSlices++
		case e.Name == "fill":
			fills++
		case strings.HasPrefix(e.Name, "switch:") || strings.HasPrefix(e.Name, "phase:"):
			adapts++
		}
	}
	// 2 PPUs + 8 banks + 12 + 16 MSHRs + 3 walkers + prefetcher +
	// adaptive controller + 4 stalls.
	if want := 2 + 8 + 12 + 16 + 3 + 1 + 1 + 4; metas != want {
		t.Errorf("thread_name metadata events = %d, want %d", metas, want)
	}
	if kernelSlices != 1 {
		t.Errorf("kernel slices = %d, want 1 (PFKernel..PFUnitFree pair)", kernelSlices)
	}
	if fills != 1 {
		t.Errorf("fill instants = %d, want 1", fills)
	}
	if adapts != 2 {
		t.Errorf("adaptive controller instants = %d, want 2", adapts)
	}
}

func TestWriteChromeClosesOpenSlices(t *testing.T) {
	// A kernel that never frees (blocked at end of run) still gets a slice.
	events := []Event{
		{At: 16, Kind: PFKernel, A: 4, C: 2},
		{At: 900, Kind: PFIssue, ID: 1},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, Layout{PPUs: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel 4") {
		t.Error("open PPU slice was not closed out at end of trace")
	}
}

func TestKindStrings(t *testing.T) {
	for k := PFObserve; k <= AdaptivePhase; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestLockedSinkConcurrentWriters hammers one Locked collector from many
// goroutines (the shape of a parallel Suite sharing one Options.TraceSink);
// under -race this pins the concurrent-writer guarantee, and the count
// check pins that no event is lost.
func TestLockedSinkConcurrentWriters(t *testing.T) {
	c := NewCollector()
	s := Locked(c)
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Event(Event{At: int64(i), Kind: PFIssue, A: int32(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := len(c.Events()); got != writers*perWriter {
		t.Errorf("locked collector kept %d events, want %d", got, writers*perWriter)
	}
	// Per-writer order must survive the interleaving.
	last := make(map[int32]int64)
	for _, e := range c.Events() {
		if prev, ok := last[e.A]; ok && e.At <= prev {
			t.Fatalf("writer %d events out of order: %d after %d", e.A, e.At, prev)
		}
		last[e.A] = e.At
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(3)
	a.Counter("only-a").Add(1)
	b.Counter("x").Add(4)
	b.Counter("only-b").Add(9)
	ha := a.Hist("q", 4)
	for _, v := range []int{0, 2, 4} {
		ha.Observe(v)
	}
	hb := b.Hist("q", 8) // wider range: merge must grow a's buckets
	for _, v := range []int{2, 8, 20} {
		hb.Observe(v)
	}

	a.Merge(b)
	for _, want := range []struct {
		name string
		n    int64
	}{{"x", 7}, {"only-a", 1}, {"only-b", 9}} {
		if got := a.Counter(want.name).N; got != want.n {
			t.Errorf("merged counter %s = %d, want %d", want.name, got, want.n)
		}
	}
	h := a.Hist("q", 4) // lookup by name; max ignored for existing hists
	if h.N != 6 || h.Sum != 2+4+2+8+8 {
		t.Errorf("merged hist: n=%d sum=%d, want n=6 sum=%d", h.N, h.Sum, 2+4+2+8+8)
	}
	if len(h.Buckets) != 9 {
		t.Errorf("merged hist has %d buckets, want 9 (grown to source range)", len(h.Buckets))
	}
	if h.Buckets[2] != 2 || h.Buckets[8] != 2 || h.Clamped != 1 {
		t.Errorf("merged buckets wrong: b2=%d b8=%d clamped=%d", h.Buckets[2], h.Buckets[8], h.Clamped)
	}
	// Merging into an empty registry is a deep count copy.
	c := NewRegistry()
	c.Merge(a)
	if c.Counter("x").N != 7 || c.Hist("q", 1).N != 6 {
		t.Error("merge into empty registry lost counts")
	}
	// Nil source is a no-op.
	c.Merge(nil)
}
