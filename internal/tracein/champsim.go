package tracein

import (
	"bufio"
	"encoding/binary"
	"io"

	"eventpf/internal/cpu"
)

// ChampSim input_instr records: 64 bytes, little-endian, the layout the
// DPC/ChampSim ecosystem's *.champsim traces use.
//
//	ip                       8 bytes
//	is_branch                1 byte
//	branch_taken             1 byte
//	destination_registers    2 bytes
//	source_registers         4 bytes
//	destination_memory       2 × 8 bytes
//	source_memory            4 × 8 bytes
//
// Each instruction expands into micro-ops in our model: one OpLoad per
// non-zero source_memory slot, then one body op (OpBranch if is_branch, else
// OpInt), then one OpStore per non-zero destination_memory slot. Data flow
// is reconstructed from the register fields: a load depends on the last
// writers of the instruction's first source registers, the body op depends
// on the instruction's loads (or, lacking loads, on source-register
// writers), stores depend on the body op, and the body op becomes the last
// writer of every destination register. That yields the dependence shape
// the core model cares about — pointer-chase traces serialise
// (load → body → next load), streaming traces overlap — without needing
// values the trace does not carry.
const champsimRecordLen = 64

const (
	champsimDests   = 2
	champsimSources = 4
	champsimDestMem = 2
	champsimSrcMem  = 4
)

type champsimDecoder struct {
	br   *bufio.Reader
	meta Meta
	off  int64

	// regWriter maps a ChampSim register number to the id of the op that
	// last wrote it (-1 = never written). Register 0 is ChampSim's "no
	// register" and stays unwritten.
	regWriter [256]int64
	nextID    int64

	// queue holds the micro-ops of the record being drained.
	queue []Op
	qpos  int
}

func newChampSimDecoder(br *bufio.Reader) *champsimDecoder {
	d := &champsimDecoder{br: br, meta: Meta{Tool: "champsim"}}
	for i := range d.regWriter {
		d.regWriter[i] = -1
	}
	return d
}

func (d *champsimDecoder) Meta() Meta { return d.meta }

func (d *champsimDecoder) Next() (Op, error) {
	for d.qpos >= len(d.queue) {
		if err := d.fill(); err != nil {
			return Op{}, err
		}
	}
	op := d.queue[d.qpos]
	d.qpos++
	return op, nil
}

// rel converts an absolute producer id to a distance from the op about to be
// assigned id; 0 means no dependence.
func rel(id, producer int64) uint64 {
	if producer < 0 {
		return 0
	}
	return uint64(id - producer)
}

// fill decodes one 64-byte instruction into the queue.
func (d *champsimDecoder) fill() error {
	var rec [champsimRecordLen]byte
	n, err := io.ReadFull(d.br, rec[:])
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return &FormatError{Offset: d.off + int64(n),
			Reason: "truncated ChampSim record (file length not a multiple of 64)"}
	}
	d.off += champsimRecordLen

	ip := binary.LittleEndian.Uint64(rec[0:])
	isBranch := rec[8] != 0
	taken := rec[9] != 0
	var dstRegs [champsimDests]uint8
	copy(dstRegs[:], rec[10:12])
	var srcRegs [champsimSources]uint8
	copy(srcRegs[:], rec[12:16])
	pc := int(uint32(ip)) // folded to the width the predictor and PC tables use

	d.queue = d.queue[:0]
	d.qpos = 0

	// Source-register producers, in slot order, for deps below.
	var srcDep [champsimSources]int64
	for i, r := range srcRegs {
		srcDep[i] = -1
		if r != 0 {
			srcDep[i] = d.regWriter[r]
		}
	}

	var loadIDs []int64
	for i := 0; i < champsimSrcMem; i++ {
		addr := binary.LittleEndian.Uint64(rec[32+8*i:])
		if addr == 0 {
			continue
		}
		id := d.nextID
		d.nextID++
		d.queue = append(d.queue, Op{
			Kind: cpu.OpLoad, PC: pc, Addr: addr,
			Rel: [2]uint64{rel(id, srcDep[0]), rel(id, srcDep[1])},
		})
		loadIDs = append(loadIDs, id)
	}

	// Body op: the instruction's own execution.
	bodyID := d.nextID
	d.nextID++
	var bodyDeps [2]int64
	bodyDeps[0], bodyDeps[1] = -1, -1
	switch {
	case len(loadIDs) >= 2:
		bodyDeps[0] = loadIDs[len(loadIDs)-2]
		bodyDeps[1] = loadIDs[len(loadIDs)-1]
	case len(loadIDs) == 1:
		bodyDeps[0] = loadIDs[0]
		bodyDeps[1] = srcDep[0]
	default:
		bodyDeps[0] = srcDep[0]
		bodyDeps[1] = srcDep[1]
	}
	body := Op{Kind: cpu.OpInt, PC: pc,
		Rel: [2]uint64{rel(bodyID, bodyDeps[0]), rel(bodyID, bodyDeps[1])}}
	if isBranch {
		body.Kind = cpu.OpBranch
		body.Taken = taken
	}
	d.queue = append(d.queue, body)
	for _, r := range dstRegs {
		if r != 0 {
			d.regWriter[r] = bodyID
		}
	}

	for i := 0; i < champsimDestMem; i++ {
		addr := binary.LittleEndian.Uint64(rec[16+8*i:])
		if addr == 0 {
			continue
		}
		id := d.nextID
		d.nextID++
		d.queue = append(d.queue, Op{
			Kind: cpu.OpStore, PC: pc, Addr: addr,
			Rel: [2]uint64{rel(id, bodyID), 0},
		})
	}
	return nil
}
