// Package tracein is the trace-driven workload front end: it captures the
// core's demand micro-op stream to a self-describing binary format, decodes
// that format (and ChampSim-style instruction traces) as a stream, and
// replays decoded ops through the simulated machine as a workloads.Instance
// — so a captured trace runs under every registered prefetching scheme with
// zero registry changes.
//
// # Native format (PPFT)
//
// A native trace is, in order:
//
//	magic   "PPFT"                (4 bytes)
//	version 1 byte                (FormatVersion)
//	flags   1 byte                (reserved, 0)
//	metaLen 4 bytes little-endian
//	meta    metaLen bytes of JSON (Meta: benchmark, scheme, memory regions …)
//	records variable              (one per micro-op, below)
//	trailer 0x80 + uvarint count  (total records, truncation check)
//
// Each record starts with a tag byte: bits 0–2 the cpu.OpKind, bit 3 the
// branch direction, bit 4 "has address", bits 5/6 "has dependence 1/2", and
// bit 7 zero — a set bit 7 marks the trailer instead. The tag is followed by
// the PC as a zig-zag varint delta from the previous record's PC, then (if
// present) the address as a zig-zag varint delta from the previous address,
// then each present dependence distance (dispatch id minus producer id,
// always ≥ 1) as a plain uvarint. Delta coding keeps loop-heavy streams
// around 3–6 bytes per op before gzip.
//
// The whole file may be gzip-compressed; Open sniffs the two-byte gzip
// magic and decompresses transparently. A stream without the PPFT magic is
// decoded as a ChampSim instruction trace (champsim.go).
package tracein

import "fmt"

// FormatVersion is the native format's current version byte. Readers reject
// other versions with a *HeaderError rather than guessing.
const FormatVersion = 1

// magic opens every native trace file.
const magic = "PPFT"

// trailerTag marks the end-of-records trailer (tag byte with bit 7 set).
const trailerTag = 0x80

// Tag byte layout.
const (
	tagKindMask = 0x07
	tagTaken    = 1 << 3
	tagHasAddr  = 1 << 4
	tagHasDep1  = 1 << 5
	tagHasDep2  = 1 << 6
)

// Meta is the native header's JSON payload: enough to replay the trace on a
// fresh machine (the memory regions that must be mapped) plus provenance.
type Meta struct {
	// Bench names the benchmark the trace was captured from.
	Bench string `json:"bench,omitempty"`
	// Scheme names the prefetching scheme active during capture. The demand
	// op stream is scheme-independent for plain-variant runs, so a no-pf
	// capture replays bit-identically against any non-programmable scheme.
	Scheme string `json:"scheme,omitempty"`
	// Scale is the input scale the capture ran at.
	Scale float64 `json:"scale,omitempty"`
	// Regions are the arena allocations of the captured machine. Replay maps
	// every region page before the first op, reproducing the capture
	// machine's exact page map — prefetches to mapped-but-untouched pages
	// must survive translation on replay just as they did live.
	Regions []RegionMeta `json:"regions,omitempty"`
	// Tool records what wrote the trace.
	Tool string `json:"tool,omitempty"`
}

// RegionMeta mirrors mem.Region in the header.
type RegionMeta struct {
	Name string `json:"name,omitempty"`
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// HeaderError reports a stream that cannot be a usable trace: missing or
// foreign magic where one was required, an unsupported version, or a
// malformed header. It is typed so front ends can turn it into "bad request"
// rather than a simulation failure.
type HeaderError struct {
	Reason string
}

func (e *HeaderError) Error() string {
	return "tracein: bad trace header: " + e.Reason
}

// FormatError reports a corrupt or truncated record stream at a byte offset
// (counted over the decompressed stream, records only).
type FormatError struct {
	Offset int64
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("tracein: corrupt trace at byte %d: %s", e.Offset, e.Reason)
}
