package tracein

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"eventpf/internal/cpu"
)

// Op is one decoded trace record in machine-neutral form.
type Op struct {
	Kind  cpu.OpKind
	PC    int
	Addr  uint64
	Taken bool
	// Rel are the dependence distances (dispatch id minus producer id,
	// 0 = no dependence in that slot).
	Rel [2]uint64
}

// Decoder streams ops out of a trace. Next returns io.EOF at a clean end of
// trace; any other error is a *FormatError (or the underlying I/O error).
type Decoder interface {
	Meta() Meta
	Next() (Op, error)
}

// Open wraps r and returns a streaming decoder for it. Gzip input is
// detected by its two-byte magic and decompressed transparently; a stream
// that then starts with the native PPFT magic gets the native decoder, and
// anything else is decoded as a raw ChampSim instruction trace. Nothing is
// ever loaded whole: both decoders read record by record through a small
// buffer.
func Open(r io.Reader) (Decoder, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, &HeaderError{Reason: fmt.Sprintf("gzip: %v", err)}
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	head, err := br.Peek(len(magic))
	if err != nil {
		return nil, &HeaderError{Reason: fmt.Sprintf("stream shorter than the %d-byte magic: %v", len(magic), err)}
	}
	if string(head) == magic {
		return newNativeDecoder(br)
	}
	return newChampSimDecoder(br), nil
}

// countingReader is a byte reader that tracks its offset for FormatError.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

type nativeDecoder struct {
	r        countingReader
	meta     Meta
	prevPC   int64
	prevAddr uint64
	count    uint64
	done     bool
}

func newNativeDecoder(br *bufio.Reader) (*nativeDecoder, error) {
	var head [10]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, &HeaderError{Reason: fmt.Sprintf("truncated header: %v", err)}
	}
	if string(head[:4]) != magic {
		return nil, &HeaderError{Reason: "bad magic"}
	}
	if head[4] != FormatVersion {
		return nil, &HeaderError{Reason: fmt.Sprintf("unsupported format version %d (want %d)", head[4], FormatVersion)}
	}
	metaLen := binary.LittleEndian.Uint32(head[6:])
	if metaLen > 1<<20 {
		return nil, &HeaderError{Reason: fmt.Sprintf("implausible metadata length %d", metaLen)}
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, &HeaderError{Reason: fmt.Sprintf("truncated metadata: %v", err)}
	}
	d := &nativeDecoder{r: countingReader{br: br}}
	if err := json.Unmarshal(metaJSON, &d.meta); err != nil {
		return nil, &HeaderError{Reason: fmt.Sprintf("metadata: %v", err)}
	}
	return d, nil
}

func (d *nativeDecoder) Meta() Meta { return d.meta }

func (d *nativeDecoder) Next() (Op, error) {
	if d.done {
		return Op{}, io.EOF
	}
	start := d.r.off
	tag, err := d.r.ReadByte()
	if err == io.EOF {
		return Op{}, &FormatError{Offset: start, Reason: "stream ends without a trailer (truncated trace)"}
	}
	if err != nil {
		return Op{}, err
	}
	if tag&trailerTag != 0 {
		return Op{}, d.finish(tag, start)
	}
	var op Op
	op.Kind = cpu.OpKind(tag & tagKindMask)
	op.Taken = tag&tagTaken != 0
	dpc, err := binary.ReadVarint(&d.r)
	if err != nil {
		return Op{}, d.corrupt(start, "pc", err)
	}
	d.prevPC += dpc
	op.PC = int(d.prevPC)
	if tag&tagHasAddr != 0 {
		if !kindHasAddr(op.Kind) {
			return Op{}, &FormatError{Offset: start, Reason: fmt.Sprintf("address on op kind %d", int(op.Kind))}
		}
		daddr, err := binary.ReadVarint(&d.r)
		if err != nil {
			return Op{}, d.corrupt(start, "address", err)
		}
		d.prevAddr += uint64(daddr)
		op.Addr = d.prevAddr
	}
	if tag&tagHasDep1 != 0 {
		if op.Rel[0], err = binary.ReadUvarint(&d.r); err != nil {
			return Op{}, d.corrupt(start, "dependence 1", err)
		}
	}
	if tag&tagHasDep2 != 0 {
		if op.Rel[1], err = binary.ReadUvarint(&d.r); err != nil {
			return Op{}, d.corrupt(start, "dependence 2", err)
		}
	}
	d.count++
	return op, nil
}

// finish validates the trailer and the bytes after it, then reports a clean
// io.EOF so streaming callers stop naturally.
func (d *nativeDecoder) finish(tag byte, start int64) error {
	if tag != trailerTag {
		return &FormatError{Offset: start, Reason: fmt.Sprintf("unknown tag byte %#02x", tag)}
	}
	want, err := binary.ReadUvarint(&d.r)
	if err != nil {
		return d.corrupt(start, "trailer count", err)
	}
	if want != d.count {
		return &FormatError{Offset: start,
			Reason: fmt.Sprintf("trailer records %d ops, decoded %d (truncated or spliced trace)", want, d.count)}
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return &FormatError{Offset: d.r.off, Reason: "data after the trailer"}
	}
	d.done = true
	return io.EOF
}

func (d *nativeDecoder) corrupt(start int64, what string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return &FormatError{Offset: start, Reason: fmt.Sprintf("record %s field truncated", what)}
	}
	return &FormatError{Offset: start, Reason: fmt.Sprintf("record %s field: %v", what, err)}
}
