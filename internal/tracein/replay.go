package tracein

import (
	"fmt"
	"io"
	"os"

	"eventpf/internal/cpu"
	"eventpf/internal/mem"
	"eventpf/internal/system"
	"eventpf/internal/workloads"
)

// Replayer adapts a Decoder to cpu.Stream: each decoded record becomes one
// micro-op with freshly assigned sequential ids (matching the core's
// dispatch numbering, which is stream order). Decode errors cannot surface
// through Next — the stream just ends — so they are latched and reported by
// Err, which the replay instance's oracle check consults after the run.
type Replayer struct {
	dec     Decoder
	backing *mem.Backing
	closer  io.Closer
	path    string // set by OpenReplayer; enables CloneAt
	nextID  int64
	err     error
}

// OpenReplayer opens the trace at path and builds a Replayer that remembers
// where it came from, so the stream can be cloned (CloneAt / CloneStream)
// for machine forks and time-parallel slicing. Prefer this over NewReplayer
// for file-backed traces.
func OpenReplayer(path string, backing *mem.Backing) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracein: %w", err)
	}
	dec, err := Open(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracein: %s: %w", path, err)
	}
	r := NewReplayer(dec, backing, f)
	r.path = path
	return r, nil
}

// NewReplayer builds a replay stream over dec feeding a machine's backing
// store. Every page of every header region is mapped up front, reproducing
// the capture machine's page map exactly (a replayed prefetch must survive
// or fault in translation just as it did live); pages demanded outside the
// regions — ChampSim traces carry no region table — are mapped lazily.
// closer, if non-nil, is closed when the stream is exhausted.
func NewReplayer(dec Decoder, backing *mem.Backing, closer io.Closer) *Replayer {
	for _, r := range dec.Meta().Regions {
		size := r.Size
		if size == 0 {
			size = 8
		}
		pages := (size + mem.PageSize - 1) / mem.PageSize
		for i := uint64(0); i < pages; i++ {
			backing.MapPage(r.Base + i*mem.PageSize)
		}
	}
	return &Replayer{dec: dec, backing: backing, closer: closer}
}

// Next implements cpu.Stream.
func (r *Replayer) Next() (cpu.MicroOp, bool) {
	if r.err != nil || r.dec == nil {
		return cpu.MicroOp{}, false
	}
	rec, err := r.dec.Next()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		r.close()
		return cpu.MicroOp{}, false
	}
	id := r.nextID
	r.nextID++
	op := cpu.MicroOp{Kind: rec.Kind, PC: rec.PC, Addr: rec.Addr, Taken: rec.Taken}
	for i, rel := range rec.Rel {
		op.Deps[i] = cpu.NoDep
		if rel != 0 {
			// A distance reaching past the start of the trace still resolves:
			// the core treats producers older than the window as retired.
			op.Deps[i] = id - int64(rel)
		}
	}
	if op.Kind == cpu.OpLoad {
		// A demand load to an unmapped page panics in the machine glue;
		// traces without a region table fault pages in as they appear.
		r.backing.MapPage(op.Addr)
	}
	return op, true
}

func (r *Replayer) close() {
	r.dec = nil
	if r.closer != nil {
		if cerr := r.closer.Close(); cerr != nil && r.err == nil {
			r.err = cerr
		}
		r.closer = nil
	}
}

// Close implements io.Closer, releasing the trace file of a replayer
// abandoned mid-stream (a non-final time-parallel slice). Safe after a
// natural end of trace, which already closed the file.
func (r *Replayer) Close() error {
	r.close()
	return r.err
}

// CloneAt opens a second decode cursor over the same trace, positioned just
// before dynamic op (the clone's next Next returns the record with id op).
// The prefix is decoded and discarded against backing, so lazily-faulted
// pages exist in the clone's machine exactly as in the original's. Only
// replayers built by OpenReplayer know their source and can clone.
func (r *Replayer) CloneAt(backing *mem.Backing, op int64) (*Replayer, error) {
	if r.path == "" {
		return nil, fmt.Errorf("tracein: replayer has no file path; cannot clone")
	}
	c, err := OpenReplayer(r.path, backing)
	if err != nil {
		return nil, err
	}
	for c.nextID < op {
		if _, ok := c.Next(); !ok {
			err := c.Err()
			if err == nil {
				err = fmt.Errorf("tracein: %s: trace ends before op %d", r.path, op)
			}
			return nil, err
		}
	}
	return c, nil
}

// CloneStream implements system.StreamCloner: a cursor at the current
// position for a forked machine.
func (r *Replayer) CloneStream(f *system.Machine) (cpu.Stream, error) {
	return r.CloneAt(f.Backing, r.nextID)
}

// Err returns the first decode error hit during replay (nil after a clean
// end of trace, including trailer validation for native traces).
func (r *Replayer) Err() error { return r.err }

// Ops returns how many ops have been replayed so far.
func (r *Replayer) Ops() int64 { return r.nextID }

// Bench wraps a trace file as a workloads.Benchmark, the shape every
// front end (harness.Run, Suite pairs, JobSpec, ppfsim) already consumes, so
// replay needs zero registry changes. The name embeds the path — distinct
// traces stay distinct in memo and content-hash keys.
func Bench(path string) *workloads.Benchmark {
	return &workloads.Benchmark{
		Name:    "trace:" + path,
		Source:  "trace replay",
		Pattern: "Captured demand stream",
		Input:   path,
		Build: func(m *system.Machine, _ float64) *workloads.Instance {
			var rep *Replayer
			return &workloads.Instance{
				StreamFn: func() (cpu.Stream, error) {
					r, err := OpenReplayer(path, m.Backing)
					if err != nil {
						return nil, err
					}
					rep = r
					return rep, nil
				},
				// The oracle of a replayed trace is the trace itself: the run
				// only counts if every record decoded cleanly through the
				// trailer. A mid-stream decode failure otherwise just looks
				// like a short program.
				Check: func(*system.Machine, uint64, bool) error {
					if rep == nil {
						return fmt.Errorf("tracein: %s: replay stream was never built", path)
					}
					return rep.Err()
				},
			}
		},
	}
}
