package tracein

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"eventpf/internal/cpu"
	"eventpf/internal/mem"
	"eventpf/internal/sim"
	"eventpf/internal/trace"
)

// emit feeds one op into a Writer the way the core's dispatch stage does:
// packed as a trace.CoreDispatch event with the two dependence distances in
// the Dur halves.
func emit(w *Writer, op Op) {
	var flags int32
	if op.Taken {
		flags = 1
	}
	w.Event(trace.Event{
		Kind: trace.CoreDispatch, Addr: op.Addr,
		A: int32(op.Kind), B: int32(op.PC), C: flags,
		Dur: sim.Ticks(op.Rel[0] | op.Rel[1]<<32),
	})
}

// sampleOps exercises every kind, backwards PC deltas, large address jumps
// and both dependence slots.
var sampleOps = []Op{
	{Kind: cpu.OpInt, PC: 100},
	{Kind: cpu.OpLoad, PC: 104, Addr: 0x10000, Rel: [2]uint64{1, 0}},
	{Kind: cpu.OpMul, PC: 108, Rel: [2]uint64{1, 2}},
	{Kind: cpu.OpLoad, PC: 112, Addr: 0xFFFF0000, Rel: [2]uint64{1, 0}},
	{Kind: cpu.OpStore, PC: 116, Addr: 0x10008, Rel: [2]uint64{1, 0}},
	{Kind: cpu.OpBranch, PC: 120, Taken: true, Rel: [2]uint64{4, 0}},
	{Kind: cpu.OpBranch, PC: 100, Taken: false},
	{Kind: cpu.OpSWPf, PC: 104, Addr: 0x8000, Rel: [2]uint64{2, 0}},
	{Kind: cpu.OpDiv, PC: 108, Rel: [2]uint64{1 << 20, 7}},
	{Kind: cpu.OpConfig, PC: 112},
}

func encode(t *testing.T, meta Meta, ops []Op) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, meta)
	for _, op := range ops {
		emit(w, op)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func decodeAll(dec Decoder) ([]Op, error) {
	var ops []Op
	for {
		op, err := dec.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

func TestNativeRoundTrip(t *testing.T) {
	meta := Meta{Bench: "RandAcc", Scheme: "no-pf", Scale: 0.25, Tool: "test",
		Regions: []RegionMeta{{Name: "table", Base: 0x10000, Size: 4096}}}
	raw := encode(t, meta, sampleOps)

	dec, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := dec.Meta(); got.Bench != "RandAcc" || got.Scheme != "no-pf" ||
		got.Scale != 0.25 || len(got.Regions) != 1 || got.Regions[0].Base != 0x10000 {
		t.Errorf("meta did not round-trip: %+v", got)
	}
	got, err := decodeAll(dec)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(sampleOps) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(sampleOps))
	}
	for i, op := range got {
		if op != sampleOps[i] {
			t.Errorf("op %d = %+v, want %+v", i, op, sampleOps[i])
		}
	}
	// A second Next after the clean EOF stays EOF.
	if _, err := dec.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestWriterCounts(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Meta{})
	for _, op := range sampleOps {
		emit(w, op)
	}
	// Non-dispatch events must be ignored (the writer may share a bus).
	w.Event(trace.Event{Kind: trace.DRAMAccess})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(sampleOps)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(sampleOps))
	}
	if w.KindCount(cpu.OpLoad) != 2 || w.KindCount(cpu.OpBranch) != 2 {
		t.Errorf("KindCount(load)=%d KindCount(branch)=%d, want 2 and 2",
			w.KindCount(cpu.OpLoad), w.KindCount(cpu.OpBranch))
	}
}

func TestGzipDecodesIdentically(t *testing.T) {
	raw := encode(t, Meta{Bench: "HJ-2"}, sampleOps)
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw)
	zw.Close()

	plain, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	zipped, err := Open(bytes.NewReader(zbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pops, perr := decodeAll(plain)
	zops, zerr := decodeAll(zipped)
	if perr != nil || zerr != nil {
		t.Fatalf("decode: plain %v, gzip %v", perr, zerr)
	}
	if len(pops) != len(zops) {
		t.Fatalf("plain %d ops, gzip %d", len(pops), len(zops))
	}
	for i := range pops {
		if pops[i] != zops[i] {
			t.Errorf("op %d: plain %+v, gzip %+v", i, pops[i], zops[i])
		}
	}
	if zipped.Meta().Bench != "HJ-2" {
		t.Errorf("gzip meta = %+v", zipped.Meta())
	}
}

func TestEmptyTraceIsValid(t *testing.T) {
	raw := encode(t, Meta{}, nil)
	dec, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := decodeAll(dec)
	if err != nil || len(ops) != 0 {
		t.Errorf("empty trace decoded to %d ops, err %v", len(ops), err)
	}
}

func TestTruncatedTraceIsFormatError(t *testing.T) {
	raw := encode(t, Meta{}, sampleOps)
	// Chop the trailer and half the last record off.
	dec, err := Open(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeAll(dec)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("truncated trace error = %v, want *FormatError", err)
	}
}

func TestHeaderErrors(t *testing.T) {
	raw := encode(t, Meta{Bench: "x"}, sampleOps)

	version := append([]byte(nil), raw...)
	version[4] = FormatVersion + 1

	metaLen := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(metaLen[6:], 1<<24)

	badJSON := append([]byte(nil), raw...)
	badJSON[10] = '{' + 1 // corrupt the first metadata byte

	short := raw[:7]

	for name, b := range map[string][]byte{
		"version": version, "metaLen": metaLen, "badJSON": badJSON, "short": short,
	} {
		_, err := Open(bytes.NewReader(b))
		var he *HeaderError
		if !errors.As(err, &he) {
			t.Errorf("%s: Open error = %v, want *HeaderError", name, err)
		}
	}
}

func TestTrailerCountMismatch(t *testing.T) {
	raw := encode(t, Meta{}, sampleOps)
	// The trailer of a small trace is its last two bytes: 0x80 then the count
	// as a single-byte uvarint.
	if raw[len(raw)-2] != trailerTag || raw[len(raw)-1] != byte(len(sampleOps)) {
		t.Fatalf("unexpected trailer bytes % x", raw[len(raw)-2:])
	}
	spliced := append([]byte(nil), raw...)
	spliced[len(spliced)-1]++
	dec, err := Open(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeAll(dec)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("count mismatch error = %v, want *FormatError", err)
	}
}

func TestDataAfterTrailerIsFormatError(t *testing.T) {
	raw := encode(t, Meta{}, sampleOps)
	dec, err := Open(bytes.NewReader(append(raw, 0)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeAll(dec)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("data-after-trailer error = %v, want *FormatError", err)
	}
}

func TestUnknownTagByteIsFormatError(t *testing.T) {
	raw := encode(t, Meta{}, nil)
	// Insert a tag with bit 7 set that is not the trailer before the trailer.
	bad := append(raw[:len(raw)-2:len(raw)-2], 0x81)
	bad = append(bad, raw[len(raw)-2:]...)
	dec, err := Open(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeAll(dec)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("unknown tag error = %v, want *FormatError", err)
	}
}

// champsimRecord builds one 64-byte ChampSim input_instr.
func champsimRecord(ip uint64, isBranch, taken bool, dst, src []uint8, dstMem, srcMem []uint64) []byte {
	rec := make([]byte, champsimRecordLen)
	binary.LittleEndian.PutUint64(rec[0:], ip)
	if isBranch {
		rec[8] = 1
	}
	if taken {
		rec[9] = 1
	}
	copy(rec[10:12], dst)
	copy(rec[12:16], src)
	for i, a := range dstMem {
		binary.LittleEndian.PutUint64(rec[16+8*i:], a)
	}
	for i, a := range srcMem {
		binary.LittleEndian.PutUint64(rec[32+8*i:], a)
	}
	return rec
}

func TestChampSimDecode(t *testing.T) {
	var buf bytes.Buffer
	// i0: load r5 <- [0x2000]
	buf.Write(champsimRecord(0x1000, false, false, []uint8{5}, nil, nil, []uint64{0x2000}))
	// i1: store [0x3000] <- f(r5)
	buf.Write(champsimRecord(0x1008, false, false, nil, []uint8{5}, []uint64{0x3000}, nil))
	// i2: taken branch on r5
	buf.Write(champsimRecord(0x1010, true, true, nil, []uint8{5}, nil, nil))

	dec, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Meta().Tool != "champsim" {
		t.Errorf("Tool = %q, want champsim", dec.Meta().Tool)
	}
	ops, err := decodeAll(dec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		// i0 → load (id 0), body int (id 1, dep on the load).
		{Kind: cpu.OpLoad, PC: 0x1000, Addr: 0x2000},
		{Kind: cpu.OpInt, PC: 0x1000, Rel: [2]uint64{1, 0}},
		// i1 → body int (id 2, dep on i0's body = id 1), store (id 3, dep body).
		{Kind: cpu.OpInt, PC: 0x1008, Rel: [2]uint64{1, 0}},
		{Kind: cpu.OpStore, PC: 0x1008, Addr: 0x3000, Rel: [2]uint64{1, 0}},
		// i2 → branch (id 4, dep on i0's body = id 1, distance 3).
		{Kind: cpu.OpBranch, PC: 0x1010, Taken: true, Rel: [2]uint64{3, 0}},
	}
	if len(ops) != len(want) {
		t.Fatalf("decoded %d ops, want %d: %+v", len(ops), len(want), ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestChampSimTruncatedRecord(t *testing.T) {
	rec := champsimRecord(0x1000, false, false, nil, nil, nil, []uint64{0x2000})
	dec, err := Open(bytes.NewReader(append(rec, rec[:10]...)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeAll(dec)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("truncated ChampSim error = %v, want *FormatError", err)
	}
}

// TestReplayerCloneAt opens a second decode cursor mid-stream: the clone's
// remaining ops must be exactly the original's from that position — same
// record payloads, same absolute dynamic ids (so dependence distances keep
// resolving identically) — and a clean end of trace on both cursors. An op
// index past the end of the trace must error rather than return a short
// stream, and a replayer without a file path (NewReplayer) must refuse to
// clone.
func TestReplayerCloneAt(t *testing.T) {
	meta := Meta{Bench: "RandAcc", Scheme: "no-pf", Scale: 0.25, Tool: "test",
		Regions: []RegionMeta{{Name: "table", Base: 0x10000, Size: 4096}}}
	raw := encode(t, meta, sampleOps)
	path := filepath.Join(t.TempDir(), "clone.ppft")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	orig, err := OpenReplayer(path, mem.NewBacking())
	if err != nil {
		t.Fatal(err)
	}
	const split = 4
	for i := 0; i < split; i++ {
		if _, ok := orig.Next(); !ok {
			t.Fatalf("original stream ended at op %d", i)
		}
	}
	clone, err := orig.CloneAt(mem.NewBacking(), orig.Ops())
	if err != nil {
		t.Fatalf("CloneAt: %v", err)
	}
	if clone.Ops() != orig.Ops() {
		t.Fatalf("clone positioned at op %d, want %d", clone.Ops(), orig.Ops())
	}
	for i := split; ; i++ {
		a, aok := orig.Next()
		b, bok := clone.Next()
		if aok != bok {
			t.Fatalf("op %d: original ok=%v, clone ok=%v", i, aok, bok)
		}
		if !aok {
			break
		}
		// MicroOp carries a func field (Do, always nil on replay), so
		// compare the replay-visible fields directly.
		if a.Kind != b.Kind || a.PC != b.PC || a.Addr != b.Addr || a.Taken != b.Taken || a.Deps != b.Deps {
			t.Fatalf("op %d differs:\noriginal %+v\nclone    %+v", i, a, b)
		}
	}
	if orig.Err() != nil || clone.Err() != nil {
		t.Fatalf("decode errors: original %v, clone %v", orig.Err(), clone.Err())
	}

	if _, err := orig.CloneAt(mem.NewBacking(), int64(len(sampleOps))+5); err == nil {
		t.Error("CloneAt past end of trace did not error")
	}
	plain := NewReplayer(mustOpenDecoder(t, raw), mem.NewBacking(), nil)
	if _, err := plain.CloneAt(mem.NewBacking(), 0); err == nil {
		t.Error("pathless replayer cloned itself")
	}
}

func mustOpenDecoder(t *testing.T, raw []byte) Decoder {
	t.Helper()
	dec, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}
