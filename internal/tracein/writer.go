package tracein

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"eventpf/internal/cpu"
	"eventpf/internal/mem"
	"eventpf/internal/trace"
)

// Writer is the capture sink: attach it to a machine's op-trace bus
// (harness.Options.OpSink) and it streams every dispatched micro-op to w in
// the native format. The header is written lazily before the first record so
// BeginCapture can still amend the metadata after construction; Close writes
// the trailer. Writer is not safe for concurrent use — like every trace
// sink it runs on the simulation goroutine.
type Writer struct {
	bw       *bufio.Writer
	meta     Meta
	header   bool
	err      error
	count    uint64
	kinds    [8]uint64
	prevPC   int64
	prevAddr uint64
	scratch  [3 * binary.MaxVarintLen64]byte
}

// NewWriter builds a capture sink over w with the given metadata. The caller
// keeps ownership of w (and of any gzip layer around it); Close flushes the
// Writer's buffer but does not close w.
func NewWriter(w io.Writer, meta Meta) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), meta: meta}
}

// BeginCapture implements the harness capture hook: it records the machine's
// arena regions in the header so replay can reproduce the page map. It must
// be called before the first op is captured.
func (t *Writer) BeginCapture(regions []mem.Region) {
	if t.header {
		t.fail(fmt.Errorf("tracein: BeginCapture after the first record"))
		return
	}
	t.meta.Regions = t.meta.Regions[:0]
	for _, r := range regions {
		t.meta.Regions = append(t.meta.Regions, RegionMeta{Name: r.Name, Base: r.Base, Size: r.Size})
	}
}

// Event implements trace.Sink, encoding CoreDispatch events and ignoring
// every other kind (so the writer could share a bus with other emitters).
func (t *Writer) Event(e trace.Event) {
	if e.Kind != trace.CoreDispatch || t.err != nil {
		return
	}
	if !t.header {
		t.writeHeader()
		if t.err != nil {
			return
		}
	}
	kind := int(e.A) & tagKindMask
	tag := byte(kind)
	if e.C&1 != 0 {
		tag |= tagTaken
	}
	hasAddr := kindHasAddr(cpu.OpKind(kind))
	if hasAddr {
		tag |= tagHasAddr
	}
	rel1 := uint64(e.Dur) & 0xFFFFFFFF
	rel2 := uint64(e.Dur) >> 32
	if rel1 != 0 {
		tag |= tagHasDep1
	}
	if rel2 != 0 {
		tag |= tagHasDep2
	}
	buf := t.scratch[:0]
	buf = append(buf, tag)
	pc := int64(e.B)
	buf = binary.AppendVarint(buf, pc-t.prevPC)
	t.prevPC = pc
	if hasAddr {
		buf = binary.AppendVarint(buf, int64(e.Addr-t.prevAddr))
		t.prevAddr = e.Addr
	}
	if rel1 != 0 {
		buf = binary.AppendUvarint(buf, rel1)
	}
	if rel2 != 0 {
		buf = binary.AppendUvarint(buf, rel2)
	}
	if _, err := t.bw.Write(buf); err != nil {
		t.fail(err)
		return
	}
	t.count++
	t.kinds[kind]++
}

// kindHasAddr reports whether records of this kind carry an address field.
func kindHasAddr(k cpu.OpKind) bool {
	return k == cpu.OpLoad || k == cpu.OpStore || k == cpu.OpSWPf
}

func (t *Writer) writeHeader() {
	metaJSON, err := json.Marshal(t.meta)
	if err != nil {
		t.fail(err)
		return
	}
	var head [10]byte
	copy(head[:4], magic)
	head[4] = FormatVersion
	head[5] = 0 // flags
	binary.LittleEndian.PutUint32(head[6:], uint32(len(metaJSON)))
	if _, err := t.bw.Write(head[:]); err == nil {
		_, err = t.bw.Write(metaJSON)
		if err != nil {
			t.fail(err)
			return
		}
	} else {
		t.fail(err)
		return
	}
	t.header = true
}

func (t *Writer) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Count returns the number of ops captured so far.
func (t *Writer) Count() uint64 { return t.count }

// KindCount returns how many ops of the given kind were captured.
func (t *Writer) KindCount(k cpu.OpKind) uint64 { return t.kinds[int(k)&7] }

// Close writes the trailer and flushes. It reports the first error hit
// anywhere during capture, so a full-disk failure mid-run is not silent.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	if !t.header {
		t.writeHeader() // an empty trace is still a valid trace
	}
	if t.err == nil {
		buf := t.scratch[:0]
		buf = append(buf, trailerTag)
		buf = binary.AppendUvarint(buf, t.count)
		if _, err := t.bw.Write(buf); err != nil {
			t.fail(err)
		}
	}
	if t.err == nil {
		t.fail(t.bw.Flush())
	}
	return t.err
}
