package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/system"
)

// BTree is an index join over a fixed-depth B-tree: a stream of probe keys
// each descends a fanout-8 tree (the ROADMAP's second synthetic irregular
// workload, modelled on database index-nested-loop joins). Each node is two
// cache lines — a line of separator keys and a line of child pointers — so
// every level costs one dependent line for the keys plus one for the chosen
// child: a pointer chase whose next address depends on comparisons over
// loaded data. No stride exists anywhere past the probe array, and the
// descent is branchless (comparison sums pick the child), so the branch
// predictor cannot hide it either. There is no manual kernel: computing the
// child index needs seven comparisons over the fetched line plus a second
// line for the pointers, beyond what a single fill-triggered PPU event can
// carry — the "manual" scheme reports unsupported, like software prefetch
// on PageRank.
var BTree = &Benchmark{
	Name:    "BTree",
	Source:  "synthetic",
	Pattern: "Key-compare pointer chase (index join)",
	Input:   "262 k keys, depth-6 fanout-8 tree",
	Build:   buildBTree,
}

const (
	btreeFanout     = 8
	btreeDepth      = 6 // 8^6 = 262144 keys; ~4.6 MiB of nodes, beyond L2
	btreeBaseProbes = 25000
)

func buildBTree(m *system.Machine, scale float64) *Instance {
	probesN := uint64(scaled(btreeBaseProbes, scale))

	// A perfect tree: level d holds 8^d nodes; level btreeDepth-1 nodes are
	// leaves. Node i of level d covers keys [i*span, (i+1)*span) where
	// span = 8^(btreeDepth-d). A node is 16 words: words 0–7 the minimum key
	// of each child's subtree (for leaves: the keys themselves), words 8–15
	// the child node addresses (for leaves: the values).
	levelNodes := make([]uint64, btreeDepth)
	levelOff := make([]uint64, btreeDepth)
	var totalNodes uint64
	for d := 0; d < btreeDepth; d++ {
		levelOff[d] = totalNodes
		levelNodes[d] = pow8(d)
		totalNodes += levelNodes[d]
	}
	totalKeys := pow8(btreeDepth)

	tree := m.Arena.AllocWords("tree", totalNodes*16)
	probes := m.Arena.AllocWords("probes", probesN)

	key := func(i uint64) uint64 { return 2 * (i + 1) } // sorted, nonzero
	value := func(i uint64) uint64 { return i*0x9E3779B9 + 0x7F4A7C15 }
	nodeAddr := func(d int, i uint64) uint64 { return tree.Base + (levelOff[d]+i)*128 }

	for d := 0; d < btreeDepth; d++ {
		childSpan := pow8(btreeDepth - 1 - d)
		leaf := d == btreeDepth-1
		for i := uint64(0); i < levelNodes[d]; i++ {
			na := nodeAddr(d, i)
			for s := uint64(0); s < btreeFanout; s++ {
				childFirstKey := (i*btreeFanout + s) * childSpan
				m.Backing.Write64(na+s*8, key(childFirstKey))
				if leaf {
					m.Backing.Write64(na+64+s*8, value(i*btreeFanout+s))
				} else {
					m.Backing.Write64(na+64+s*8, nodeAddr(d+1, i*btreeFanout+s))
				}
			}
		}
	}

	rng := splitmix64(0xB7EE)
	var wantAcc uint64
	for p := uint64(0); p < probesN; p++ {
		ki := rng.next() % totalKeys
		m.Backing.Write64(probes.Base+p*8, key(ki))
		wantAcc += value(ki) & 0xFFFF
	}

	fn := func(v Variant) *ir.Fn {
		if v != Plain {
			// No software-prefetch or pragma form: the next node address only
			// exists after seven comparisons over loaded keys, so there is no
			// address expression for the compiler passes to hoist.
			return nil
		}
		b := ir.NewBuilder("btree", 4)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		probesB, probesNV, rootV, depthV := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
		zero := b.Const(0)

		outer := newLoop(b, "probes", probesNV, []ir.Value{zero}, false)
		accO := outer.Carried[0]
		p := b.Load(wordAddr(b, probesB, outer.IV), "probes")

		// Branchless descent: idx = Σ (node.key[s] <= probe) over s=1..7,
		// then follow child idx. After the last (leaf) level the "child" is
		// the value.
		desc := newLoop(b, "descend", depthV, []ir.Value{rootV}, false)
		node := desc.Carried[0]
		idx := zero
		for s := int64(1); s < btreeFanout; s++ {
			ks := b.Load(b.Add(node, b.Const(s*8)), "tree")
			idx = b.Add(idx, b.Bin(ir.CmpGEU, p, ks))
		}
		next := b.Load(wordAddr(b, b.Add(node, b.Const(64)), idx), "tree")
		desc.end(next)

		val := desc.Carried[0]
		outer.end(b.Add(accO, b.And(val, b.Const(0xFFFF))))
		b.Ret(accO)
		return b.MustFinish()
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("btree probe checksum", ret, wantAcc)
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{probes.Base, probesN, nodeAddr(0, 0), btreeDepth}}},
		Check:   check,
	}
}

func pow8(n int) uint64 { return uint64(1) << (3 * uint(n)) }
