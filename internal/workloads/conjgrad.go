package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// ConjGrad is the NAS CG inner kernel: repeated sparse matrix–vector
// products q = A·p where the column indices scatter reads across the dense
// vector (Table 2: stride-indirect). Because the same matrix is traversed
// on every iteration, the access sequence repeats — this is one of the two
// benchmarks where the paper's "large" Markov GHB finds traction.
var ConjGrad = &Benchmark{
	Name:    "ConjGrad",
	Source:  "NAS",
	Pattern: "Stride-indirect",
	Input:   "B",
	Build:   buildConjGrad,
}

const (
	cgRows   = 1 << 15
	cgPerRow = 16
	cgReps   = 2
)

func buildConjGrad(m *system.Machine, scale float64) *Instance {
	rows := uint64(scaled(cgRows, scale))
	nnz := rows * cgPerRow

	rowptr := m.Arena.AllocWords("rowptr", rows+1)
	cols := m.Arena.AllocWords("cols", nnz+16) // +swpf distance padding
	vals := m.Arena.AllocWords("vals", nnz+16)
	vecA := m.Arena.AllocWords("vecA", rows)
	vecB := m.Arena.AllocWords("vecB", rows)

	rng := splitmix64(0xC6)
	for i := uint64(0); i <= rows; i++ {
		m.Backing.Write64(rowptr.Base+i*8, i*cgPerRow)
	}
	for j := uint64(0); j < nnz; j++ {
		m.Backing.Write64(cols.Base+j*8, rng.next()%rows)
		m.Backing.Write64(vals.Base+j*8, rng.next()&0xFF)
	}
	for i := uint64(0); i < rows; i++ {
		m.Backing.Write64(vecA.Base+i*8, rng.next()&0xFFFF)
	}

	// Oracle: cgReps products, ping-ponging between the two vectors.
	oracle := func() uint64 {
		src := make([]uint64, rows)
		dst := make([]uint64, rows)
		for i := range src {
			src[i] = m.Backing.Read64(vecA.Base + uint64(i)*8)
		}
		var acc uint64
		for rep := 0; rep < cgReps; rep++ {
			for r := uint64(0); r < rows; r++ {
				var sum uint64
				for j := r * cgPerRow; j < (r+1)*cgPerRow; j++ {
					c := m.Backing.Read64(cols.Base + j*8)
					v := m.Backing.Read64(vals.Base + j*8)
					sum += v * src[c]
				}
				dst[r] = sum
				acc += sum
			}
			src, dst = dst, src
		}
		return acc
	}
	want := oracle()

	fn := func(v Variant) *ir.Fn {
		b := ir.NewBuilder("conjgrad", 7)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		rowptrB, colsB, valsB := b.Arg(0), b.Arg(1), b.Arg(2)
		vecAB, vecBB := b.Arg(3), b.Arg(4)
		rowsV, repsV := b.Arg(5), b.Arg(6)
		zero := b.Const(0)

		// for rep < reps { for r < rows { for j in [rowptr[r],rowptr[r+1]) } }
		reps := newLoop(b, "reps", repsV, []ir.Value{zero, vecAB, vecBB}, false)
		accR, srcV, dstV := reps.Carried[0], reps.Carried[1], reps.Carried[2]
		// Tell the prefetcher which vector is the source this repetition
		// (global register 2); a no-op without the programmable prefetcher.
		b.Cfg(ir.CfgInfo{Kind: ir.CfgGlobal, GReg: 2}, srcV)

		rl := newLoop(b, "rows", rowsV, []ir.Value{accR}, false)
		accRow := rl.Carried[0]
		rs := b.Load(wordAddr(b, rowptrB, rl.IV), "rowptr")
		one := b.Const(1)
		re := b.Load(wordAddr(b, rowptrB, b.Add(rl.IV, one)), "rowptr")

		// Inner loop over nonzeros: custom bounds [rs, re).
		head := b.NewBlock("nnz.head")
		body := b.NewBlock("nnz.body")
		exit := b.NewBlock("nnz.exit")
		b.Br(head)
		b.SetBlock(head)
		j := b.Phi()
		sum := b.Phi()
		cond := b.Bin(ir.CmpLTU, j, re)
		b.CondBr(cond, body, exit)
		if v == Pragma {
			b.MarkPragma(head)
		}

		b.SetBlock(body)
		if v == SWPf {
			// Index-array prefetches at 2x distance plus the indirect
			// target at 1x [CGO'17].
			dist := b.Const(16)
			jd := b.Add(j, dist)
			j2d := b.Add(jd, dist)
			b.SWPf(wordAddr(b, colsB, j2d), "cols")
			b.SWPf(wordAddr(b, valsB, j2d), "vals")
			cd := b.Load(wordAddr(b, colsB, jd), "cols")
			b.SWPf(wordAddr(b, srcV, cd), "vec")
		}
		c := b.Load(wordAddr(b, colsB, j), "cols")
		val := b.Load(wordAddr(b, valsB, j), "vals")
		x := b.Load(wordAddr(b, srcV, c), "vec")
		sum2 := b.Add(sum, b.Mul(val, x))
		j2 := b.Add(j, one)
		b.Br(head)
		b.SetPhiArgs(j, rs, j2)
		b.SetPhiArgs(sum, zero, sum2)

		b.SetBlock(exit)
		b.Store(wordAddr(b, dstV, rl.IV), sum, "vec")
		accRow2 := b.Add(accRow, sum)
		rl.end(accRow2)

		reps.end(rl.Carried[0], dstV, srcV) // swap vectors each repetition
		b.Ret(accR)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// Event 1 on column-index loads: fetch the index and the matching
		// value a hand-tuned distance ahead; the index fill triggers event 2.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256    ; &cols[j+dist]
			ldg    r3, g0         ; cols base
			sub    r4, r1, r3     ; byte offset of cols[j+la]
			ldg    r5, g1         ; vals base
			add    r5, r5, r4     ; &vals[j+la]
			pf     r5
			pftag  r1, 2
			halt
		`))
		// Event 2, column index arrived: fetch the dense-vector element of
		// the repetition's source vector (g2, updated by a configuration
		// instruction at the top of each repetition).
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g2
			add    r1, r1, r2
			pf     r1
			halt
		`))
		mc.PF.SetGlobal(0, cols.Base)
		mc.PF.SetGlobal(1, vals.Base)
		mc.PF.SetGlobal(2, vecA.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: cols.Base, Hi: cols.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("conjgrad checksum", ret, want)
	}

	return &Instance{
		BuildFn: fn,
		Runs: []Run{{Args: []uint64{rowptr.Base, cols.Base, vals.Base,
			vecA.Base, vecB.Base, rows, cgReps}}},
		Manual: manual,
		Check:  check,
	}
}
