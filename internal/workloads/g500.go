package workloads

import (
	"sort"

	"eventpf/internal/ir"
	"eventpf/internal/mem"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// G500CSR is the Graph500 breadth-first search over compressed-sparse-row
// arrays: the level-synchronised traversal reads the frontier queue
// (strided), vertex offsets (indirect), the edge array (data-dependent
// ranges) and the parent array (indirect) — Table 2: "BFS (arrays)".
var G500CSR = &Benchmark{
	Name:    "G500-CSR",
	Source:  "Graph500",
	Pattern: "BFS (arrays)",
	Input:   "-s 21 -e 10",
	Build: func(m *system.Machine, scale float64) *Instance {
		return buildG500(m, scale, false)
	},
}

// G500List is the same search where each vertex's edges live in a linked
// list of scattered nodes (Table 2: "BFS (lists)"). Edge discovery is a
// pointer chase, so there is no fine-grained parallelism to mine — the
// paper's hardest case.
var G500List = &Benchmark{
	Name:    "G500-List",
	Source:  "Graph500",
	Pattern: "BFS (lists)",
	Input:   "-s 16 -e 10",
	Build: func(m *system.Machine, scale float64) *Instance {
		return buildG500(m, scale, true)
	},
}

const (
	g500CSRScaleLg  = 16 // 64 k vertices at scale 1.0
	g500ListScaleLg = 13 // 8 k vertices at scale 1.0
	g500EdgeFactor  = 10
	g500Empty       = ^uint64(0)
	// The list variant runs the same root twice (Graph500 searches many
	// roots); the repetition is what lets a big-history Markov prefetcher
	// learn the traversal, matching the paper's GHB-large result.
	g500ListRoots = 2
)

// rmat generates an R-MAT edge list (A=0.57 B=0.19 C=0.19, Graph500
// parameters), symmetrised.
func rmat(rng *splitmix64, scaleLg uint, ef int) [][2]uint64 {
	nv := uint64(1) << scaleLg
	ne := nv * uint64(ef)
	edges := make([][2]uint64, 0, 2*ne)
	for i := uint64(0); i < ne; i++ {
		var u, v uint64
		for b := uint(0); b < scaleLg; b++ {
			r := rng.next() % 100
			switch {
			case r < 57: // A: top-left
			case r < 76: // B: top-right
				v |= 1 << b
			case r < 95: // C: bottom-left
				u |= 1 << b
			default: // D: bottom-right
				u |= 1 << b
				v |= 1 << b
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]uint64{u, v}, [2]uint64{v, u})
	}
	return edges
}

// bfsOracle replicates the kernel's exact traversal order.
func bfsOracle(rowptr, adj []uint64, root uint64) (visited uint64, parent []uint64) {
	nv := uint64(len(rowptr) - 1)
	parent = make([]uint64, nv)
	for i := range parent {
		parent[i] = g500Empty
	}
	parent[root] = root
	cur := []uint64{root}
	visited = 1
	for len(cur) > 0 {
		var next []uint64
		for _, v := range cur {
			for e := rowptr[v]; e < rowptr[v+1]; e++ {
				w := adj[e]
				if parent[w] == g500Empty {
					parent[w] = v
					next = append(next, w)
					visited++
				}
			}
		}
		cur = next
	}
	return visited, parent
}

func buildG500(m *system.Machine, scale float64, list bool) *Instance {
	scaleLg := uint(0)
	base := g500CSRScaleLg
	if list {
		base = g500ListScaleLg
	}
	nv := uint64(scaled(1<<base, scale))
	for (uint64(1) << scaleLg) < nv {
		scaleLg++
	}
	nv = uint64(1) << scaleLg

	rng := splitmix64(0x65)
	edges := rmat(&rng, scaleLg, g500EdgeFactor)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})

	// CSR arrays (built for both variants: the oracle and the list build
	// use them).
	rowptrH := make([]uint64, nv+1)
	adjH := make([]uint64, len(edges))
	{
		idx := 0
		for v := uint64(0); v <= nv; v++ {
			rowptrH[v] = uint64(idx)
			for idx < len(edges) && edges[idx][0] == v {
				adjH[idx] = edges[idx][1]
				idx++
			}
		}
	}

	// Root: a vertex with a decent degree so the search covers the graph.
	root := uint64(0)
	for v := uint64(0); v < nv; v++ {
		if rowptrH[v+1]-rowptrH[v] > g500EdgeFactor {
			root = v
			break
		}
	}
	wantVisited, wantParent := bfsOracle(rowptrH, adjH, root)

	parent := m.Arena.AllocWords("parent", nv)
	q1 := m.Arena.AllocWords("q1", nv+8) // +swpf distance padding
	q2 := m.Arena.AllocWords("q2", nv+8)

	resetParent := func(mc *system.Machine) {
		for v := uint64(0); v < nv; v++ {
			mc.Backing.Write64(parent.Base+v*8, g500Empty)
		}
	}

	var rowptrR, adjR, headR, nodesR mem.Region
	if list {
		headR = m.Arena.AllocWords("head", nv)
		// Nodes are 2 words [target, next] padded to a full line, placed
		// in shuffled order: list walks have no locality. Each node is
		// line-aligned so a PPU kernel can read both words from the fill.
		nodesR = m.Arena.AllocWords("nodes", uint64(len(edges))*nodeStride)
		perm := rng.perm(uint64(len(edges)))
		slot := func(i uint64) uint64 { return nodesR.Base + perm[i]*nodeStride*8 }
		// Build per-vertex lists preserving adjacency order: inserting at
		// the head in reverse keeps forward walk order equal to CSR order,
		// so the oracle is shared.
		for v := uint64(0); v < nv; v++ {
			var head uint64 // 0 = nil
			for e := int64(rowptrH[v+1]) - 1; e >= int64(rowptrH[v]); e-- {
				s := slot(uint64(e))
				m.Backing.Write64(s, adjH[e])
				m.Backing.Write64(s+8, head)
				head = s
			}
			m.Backing.Write64(headR.Base+v*8, head)
		}
	} else {
		rowptrR = m.Arena.AllocWords("rowptr", nv+1)
		adjR = m.Arena.AllocWords("adj", uint64(len(adjH))+1)
		for v := uint64(0); v <= nv; v++ {
			m.Backing.Write64(rowptrR.Base+v*8, rowptrH[v])
		}
		for i, w := range adjH {
			m.Backing.Write64(adjR.Base+uint64(i)*8, w)
		}
	}

	fn := func(v Variant) *ir.Fn {
		if list {
			return buildBFSListFn(v)
		}
		return buildBFSCSRFn(v)
	}

	var runs []Run
	nRoots := 1
	if list {
		nRoots = g500ListRoots
	}
	for r := 0; r < nRoots; r++ {
		var args []uint64
		if list {
			args = []uint64{headR.Base, parent.Base, q1.Base, q2.Base, root}
		} else {
			args = []uint64{rowptrR.Base, adjR.Base, parent.Base, q1.Base, q2.Base, root}
		}
		runs = append(runs, Run{Args: args, Before: resetParent})
	}

	manual := func(mc *system.Machine) {
		setupG500Manual(mc, list, g500ManualState{
			rowptr: rowptrR, adj: adjR, head: headR,
			parent: parent, q1: q1, q2: q2,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		if err := checkEq("bfs visited count", ret, wantVisited); err != nil {
			return err
		}
		for v := uint64(0); v < nv; v++ {
			if got := mc.Backing.Read64(parent.Base + v*8); got != wantParent[v] {
				return checkEq("parent entry", got, wantParent[v])
			}
		}
		return nil
	}

	return &Instance{BuildFn: fn, Runs: runs, Manual: manual, Check: check}
}

// buildBFSCSRFn builds the level-synchronised BFS over CSR arrays.
// Args: 0=rowptr 1=adj 2=parent 3=q1 4=q2 5=root.
func buildBFSCSRFn(variant Variant) *ir.Fn {
	b := ir.NewBuilder("bfs-csr", 6)
	entry := b.NewBlock("entry")
	outerHead := b.NewBlock("level.head")
	innerPre := b.NewBlock("frontier.pre")
	innerHead := b.NewBlock("frontier.head")
	innerBody := b.NewBlock("frontier.body")
	eHead := b.NewBlock("edges.head")
	eBody := b.NewBlock("edges.body")
	visit := b.NewBlock("visit")
	eLatch := b.NewBlock("edges.latch")
	innerLatch := b.NewBlock("frontier.latch")
	outerLatch := b.NewBlock("level.latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	rowptrB, adjB, parentB := b.Arg(0), b.Arg(1), b.Arg(2)
	q1B, q2B, root := b.Arg(3), b.Arg(4), b.Arg(5)
	zero := b.Const(0)
	one := b.Const(1)
	b.Store(wordAddr(b, parentB, root), root, "parent")
	b.Store(q1B, root, "queue")
	b.Br(outerHead)

	b.SetBlock(outerHead)
	cur := b.Phi()
	nxt := b.Phi()
	curlen := b.Phi()
	visited := b.Phi()
	alive := b.Bin(ir.CmpNE, curlen, zero)
	b.CondBr(alive, innerPre, exit)

	b.SetBlock(innerPre)
	b.Br(innerHead)

	b.SetBlock(innerHead)
	i := b.Phi()
	qtail := b.Phi()
	vis := b.Phi()
	ic := b.Bin(ir.CmpLTU, i, curlen)
	b.CondBr(ic, innerBody, outerLatch)
	if variant == Pragma {
		b.MarkPragma(innerHead)
	}

	b.SetBlock(innerBody)
	if variant == SWPf {
		// swpf(&rowptr[cur[i+dist]]): the only level software prefetching
		// can reach — edge ranges and parents are loads-of-loads.
		dist := b.Const(8)
		vd := b.Load(wordAddr(b, cur, b.Add(i, dist)), "queue")
		b.SWPf(wordAddr(b, rowptrB, vd), "rowptr")
	}
	v := b.Load(wordAddr(b, cur, i), "queue")
	rs := b.Load(wordAddr(b, rowptrB, v), "rowptr")
	re := b.Load(wordAddr(b, rowptrB, b.Add(v, one)), "rowptr")
	b.Br(eHead)

	b.SetBlock(eHead)
	e := b.Phi()
	qt := b.Phi()
	vs := b.Phi()
	ec := b.Bin(ir.CmpLTU, e, re)
	b.CondBr(ec, eBody, innerLatch)

	b.SetBlock(eBody)
	w := b.Load(wordAddr(b, adjB, e), "adj")
	pw := b.Load(wordAddr(b, parentB, w), "parent")
	empty := b.Const(-1)
	isEmpty := b.Bin(ir.CmpEQ, pw, empty)
	b.CondBr(isEmpty, visit, eLatch)

	b.SetBlock(visit)
	b.Store(wordAddr(b, parentB, w), v, "parent")
	b.Store(wordAddr(b, nxt, qt), w, "queue")
	qtv := b.Add(qt, one)
	vsv := b.Add(vs, one)
	b.Br(eLatch)

	b.SetBlock(eLatch)
	qt2 := b.Phi()
	vs2 := b.Phi()
	b.SetPhiArgs(qt2, qt, qtv)
	b.SetPhiArgs(vs2, vs, vsv)
	e2 := b.Add(e, one)
	b.Br(eHead)
	b.SetPhiArgs(e, rs, e2)
	b.SetPhiArgs(qt, qtail, qt2)
	b.SetPhiArgs(vs, vis, vs2)

	b.SetBlock(innerLatch)
	i2 := b.Add(i, one)
	b.Br(innerHead)
	b.SetPhiArgs(i, zero, i2)
	b.SetPhiArgs(qtail, zero, qt)
	b.SetPhiArgs(vis, visited, vs)

	b.SetBlock(outerLatch)
	b.Br(outerHead)
	b.SetPhiArgs(cur, q1B, nxt)
	b.SetPhiArgs(nxt, q2B, cur)
	b.SetPhiArgs(curlen, one, qtail)
	b.SetPhiArgs(visited, one, vis)

	b.SetBlock(exit)
	b.Ret(visited)
	return b.MustFinish()
}

// buildBFSListFn builds the list-based BFS.
// Args: 0=head 1=parent 2=q1 3=q2 4=root.
func buildBFSListFn(variant Variant) *ir.Fn {
	b := ir.NewBuilder("bfs-list", 5)
	entry := b.NewBlock("entry")
	outerHead := b.NewBlock("level.head")
	innerPre := b.NewBlock("frontier.pre")
	innerHead := b.NewBlock("frontier.head")
	innerBody := b.NewBlock("frontier.body")
	wHead := b.NewBlock("walk.head")
	wBody := b.NewBlock("walk.body")
	visit := b.NewBlock("visit")
	wLatch := b.NewBlock("walk.latch")
	innerLatch := b.NewBlock("frontier.latch")
	outerLatch := b.NewBlock("level.latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	headB, parentB := b.Arg(0), b.Arg(1)
	q1B, q2B, root := b.Arg(2), b.Arg(3), b.Arg(4)
	zero := b.Const(0)
	one := b.Const(1)
	b.Store(wordAddr(b, parentB, root), root, "parent")
	b.Store(q1B, root, "queue")
	b.Br(outerHead)

	b.SetBlock(outerHead)
	cur := b.Phi()
	nxt := b.Phi()
	curlen := b.Phi()
	visited := b.Phi()
	alive := b.Bin(ir.CmpNE, curlen, zero)
	b.CondBr(alive, innerPre, exit)

	b.SetBlock(innerPre)
	b.Br(innerHead)

	b.SetBlock(innerHead)
	i := b.Phi()
	qtail := b.Phi()
	vis := b.Phi()
	ic := b.Bin(ir.CmpLTU, i, curlen)
	b.CondBr(ic, innerBody, outerLatch)
	if variant == Pragma {
		b.MarkPragma(innerHead)
	}

	b.SetBlock(innerBody)
	if variant == SWPf {
		dist := b.Const(8)
		vd := b.Load(wordAddr(b, cur, b.Add(i, dist)), "queue")
		b.SWPf(wordAddr(b, headB, vd), "head")
	}
	v := b.Load(wordAddr(b, cur, i), "queue")
	p0 := b.Load(wordAddr(b, headB, v), "head")
	b.Br(wHead)

	b.SetBlock(wHead)
	p := b.Phi()
	qt := b.Phi()
	vs := b.Phi()
	aliveW := b.Bin(ir.CmpNE, p, zero)
	b.CondBr(aliveW, wBody, innerLatch)

	b.SetBlock(wBody)
	w := b.Load(p, "nodes")
	pw := b.Load(wordAddr(b, parentB, w), "parent")
	empty := b.Const(-1)
	isEmpty := b.Bin(ir.CmpEQ, pw, empty)
	b.CondBr(isEmpty, visit, wLatch)

	b.SetBlock(visit)
	b.Store(wordAddr(b, parentB, w), v, "parent")
	b.Store(wordAddr(b, nxt, qt), w, "queue")
	qtv := b.Add(qt, one)
	vsv := b.Add(vs, one)
	b.Br(wLatch)

	b.SetBlock(wLatch)
	qt2 := b.Phi()
	vs2 := b.Phi()
	b.SetPhiArgs(qt2, qt, qtv)
	b.SetPhiArgs(vs2, vs, vsv)
	pn := b.Load(b.Add(p, b.Const(8)), "nodes")
	b.Br(wHead)
	b.SetPhiArgs(p, p0, pn)
	b.SetPhiArgs(qt, qtail, qt2)
	b.SetPhiArgs(vs, vis, vs2)

	b.SetBlock(innerLatch)
	i2 := b.Add(i, one)
	b.Br(innerHead)
	b.SetPhiArgs(i, zero, i2)
	b.SetPhiArgs(qtail, zero, qt)
	b.SetPhiArgs(vis, visited, vs)

	b.SetBlock(outerLatch)
	b.Br(outerHead)
	b.SetPhiArgs(cur, q1B, nxt)
	b.SetPhiArgs(nxt, q2B, cur)
	b.SetPhiArgs(curlen, one, qtail)
	b.SetPhiArgs(visited, one, vis)

	b.SetBlock(exit)
	b.Ret(visited)
	return b.MustFinish()
}

type g500ManualState struct {
	rowptr, adj, head, parent, q1, q2 mem.Region
}

// setupG500Manual installs the hand-written BFS event kernels: queue
// look-ahead → vertex metadata → edge discovery → parent prefetch, with
// the edge stage looping inside the kernel (CSR) or self-chaining down the
// node list (List).
func setupG500Manual(mc *system.Machine, list bool, st g500ManualState) {
	// Kernel 1, on frontier-queue loads: prefetch the queue entry the EWMA
	// distance ahead; its fill carries the vertex id to kernel 2.
	mc.RegisterKernel(1, ppu.MustAssemble(`
		vaddr  r1
		addi   r1, r1, 64  ; fixed 8-vertex look-ahead: each queue entry
		pftag  r1, 2       ; fans out to ~20 edges plus their parents, so a
		halt               ; deep window would thrash the 32 KB L1
	`))
	if !list {
		// Kernel 2: vertex id arrived; fetch its rowptr cell (start and
		// end are usually in the same line — the trick the paper notes
		// compiler passes cannot exploit, §7.1).
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g2      ; rowptr base
			add    r1, r1, r2
			pftag  r1, 3
			halt
		`))
		// Kernel 3: rowptr line arrived. Read rowstart; read rowend if it
		// sits in the same line, else assume a two-line span. Prefetch up
		// to 4 edge lines, each tagged to kernel 4.
		mc.RegisterKernel(3, ppu.MustAssemble(`
			vaddr  r1
			lddata r2          ; rs = rowptr[v]
			andi   r3, r1, 56  ; word offset of v within the line
			movi   r4, 56
			beq    r3, r4, fallback
			addi   r5, r3, 8
			ldline r6, r5      ; re = rowptr[v+1]
			jmp    clamp
		fallback:
			addi   r6, r2, 16  ; end unknown: assume a modest degree
		clamp:
			addi   r7, r2, 32  ; cap at 4 lines of edges (first-N approach)
			blt    r7, r6, capped
			jmp    havecap
		capped:
			mov    r6, r7
		havecap:
			ldg    r8, g0      ; adj base
			mov    r9, r2
		loop:
			bge    r9, r6, done
			shli   r10, r9, 3
			add    r10, r10, r8
			pftag  r10, 4
			addi   r9, r9, 8   ; next line of 8 edges
			jmp    loop
		done:
			halt
		`))
		// Kernel 4: an edge line arrived; prefetch the parent word of all
		// eight targets.
		mc.RegisterKernel(4, ppu.MustAssemble(`
			movi   r2, 0
			ldg    r3, g1      ; parent base
		loop:
			ldline r4, r2
			shli   r5, r4, 3
			add    r5, r5, r3
			pf     r5
			addi   r2, r2, 8
			movi   r6, 64
			blt    r2, r6, loop
			halt
		`))
		mc.PF.SetGlobal(0, st.adj.Base)
		mc.PF.SetGlobal(1, st.parent.Base)
		mc.PF.SetGlobal(2, st.rowptr.Base)
	} else {
		// Kernel 2: vertex id arrived; fetch its list-head pointer cell.
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g2      ; head base
			add    r1, r1, r2
			pftag  r1, 3
			halt
		`))
		// Kernel 3: head pointer arrived; chase the first node.
		mc.RegisterKernel(3, ppu.MustAssemble(`
			lddata r1
			movi   r2, 0
			beq    r1, r2, done
			pftag  r1, 4
		done:
			halt
		`))
		// Kernel 4: a node arrived; prefetch its target's parent word and
		// self-chain to the next node. The chain is inherently serial —
		// the reason this benchmark caps at a modest speedup (§7.1).
		mc.RegisterKernel(4, ppu.MustAssemble(`
			lddata r1          ; node.target
			shli   r2, r1, 3
			ldg    r3, g1      ; parent base
			add    r2, r2, r3
			pf     r2
			ldlinei r4, 8      ; node.next
			movi   r5, 0
			beq    r4, r5, done
			pftag  r4, 4
		done:
			halt
		`))
		mc.PF.SetGlobal(1, st.parent.Base)
		mc.PF.SetGlobal(2, st.head.Base)
	}
	mc.PF.SetRange(0, prefetch.RangeConfig{
		Lo: st.q1.Base, Hi: st.q1.End(),
		LoadKernel: 1, PFKernel: prefetch.NoKernel,
		EWMAGroup: 0, Interval: true, TimedStart: true,
	})
	mc.PF.SetRange(1, prefetch.RangeConfig{
		Lo: st.q2.Base, Hi: st.q2.End(),
		LoadKernel: 1, PFKernel: prefetch.NoKernel,
		EWMAGroup: 0, Interval: true, TimedStart: true,
	})
}
