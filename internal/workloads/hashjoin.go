package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/mem"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// HJ2 is the hash-join probe kernel with inline buckets (at most one tuple
// per slot, load factor ½): a strided key scan, a multiplicative hash, and
// one indirect bucket access (Table 2: stride-hash-indirect).
var HJ2 = &Benchmark{
	Name:    "HJ-2",
	Source:  "Hash Join",
	Pattern: "Stride-hash-indirect",
	Input:   "-r 12800000 -s 12800000",
	Build: func(m *system.Machine, scale float64) *Instance {
		return buildHashJoin(m, scale, false)
	},
}

// HJ8 is the hash-join probe with chained buckets averaging eight tuples:
// the paper's motivating kernel (Figure 1), adding linked-list walks after
// the hashed bucket access (Table 2: stride-hash-indirect, linked lists).
var HJ8 = &Benchmark{
	Name:    "HJ-8",
	Source:  "Hash Join",
	Pattern: "Stride-hash-indirect, linked-list walks",
	Input:   "-r 12800000 -s 12800000",
	Build: func(m *system.Machine, scale float64) *Instance {
		return buildHashJoin(m, scale, true)
	},
}

const (
	hjTuples   = 1 << 19 // HJ-2 (the chained HJ-8 uses a quarter of this)
	hjChain    = 8       // average tuples per bucket in HJ-8
	nodeKey    = 0       // node layout: words 0..2 of a 64-byte node
	nodeVal    = 8
	nodeNext   = 16
	nodeStride = 8 // words per node (one cache line)
)

func buildHashJoin(m *system.Machine, scale float64, chained bool) *Instance {
	n := uint64(scaled(hjTuples, scale))

	// Bucket count: power of two, load factor ½ for HJ-2, chain length 8
	// for HJ-8.
	var logNB uint
	var target uint64
	if chained {
		target = n / hjChain
	} else {
		target = 2 * n
	}
	logNB = 1
	for (uint64(1) << logNB) < target {
		logNB++
	}
	nb := uint64(1) << logNB
	shift := 64 - logNB

	// HJ-8 probes a shuffled 1-in-8 subset of the build keys so each bucket
	// chain is walked about once — at full scale no history prefetcher can
	// memorise the walks, and the subset keeps that true at reduced scale.
	nprobe := n
	if chained {
		nprobe = n / hjChain
	}
	skey := m.Arena.AllocWords("skey", nprobe+16) // +swpf distance padding

	rng := splitmix64(0x47)
	keys := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range keys {
		k := rng.next() | 1
		for seen[k] {
			k = rng.next() | 1
		}
		seen[k] = true
		keys[i] = k
	}
	probeKeys := keys
	if chained {
		perm := rng.perm(n)
		probeKeys = make([]uint64, nprobe)
		for i := range probeKeys {
			probeKeys[i] = keys[perm[i]]
		}
	}

	hash := func(k uint64) uint64 { return (k * hashMul) >> shift }

	var htab, nodes mem.Region
	var want uint64
	if chained {
		htab = m.Arena.AllocWords("htab", nb)
		nodes = m.Arena.AllocWords("nodes", n*nodeStride)
		// Insert every key; nodes are placed in shuffled order so list
		// walks have no spatial locality.
		perm := rng.perm(n)
		for i, k := range keys {
			slot := nodes.Base + perm[i]*nodeStride*8
			h := hash(k)
			head := htab.Base + h*8
			m.Backing.Write64(slot+nodeKey, k)
			m.Backing.Write64(slot+nodeVal, k&0xFFFF)
			m.Backing.Write64(slot+nodeNext, m.Backing.Read64(head))
			m.Backing.Write64(head, slot)
		}
		for _, k := range probeKeys {
			want += k & 0xFFFF // every probe finds its tuple
		}
	} else {
		htab = m.Arena.AllocWords("htab", nb*2)
		inserted := map[uint64]bool{}
		for _, k := range keys {
			h := hash(k)
			slot := htab.Base + h*16
			if m.Backing.Read64(slot) == 0 {
				m.Backing.Write64(slot, k)
				m.Backing.Write64(slot+8, k&0xFFFF)
				inserted[k] = true
			}
		}
		for _, k := range probeKeys {
			if inserted[k] {
				want += k & 0xFFFF
			}
		}
	}
	for i, k := range probeKeys {
		m.Backing.Write64(skey.Base+uint64(i)*8, k)
	}

	fn := func(v Variant) *ir.Fn {
		if chained {
			return buildHJ8Fn(v, shift)
		}
		return buildHJ2Fn(v, shift)
	}

	manual := func(mc *system.Machine) {
		// Event 1 on probe-key loads: fetch the key stream ahead.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256  ; hand-tuned look-ahead distance
			pftag  r1, 2
			halt
		`))
		if !chained {
			// Event 2: hash the key, fetch the inline bucket. End of chain.
			mc.RegisterKernel(2, ppu.MustAssemble(`
				lddata r1
				ldg    r2, g0      ; hash multiplier
				mul    r1, r1, r2
				ldg    r3, g1      ; shift
				shr    r1, r1, r3
				shli   r1, r1, 4   ; 16-byte buckets
				ldg    r4, g2      ; htab base
				add    r1, r1, r4
				pf     r1
				halt
			`))
		} else {
			// Event 2: hash the key, fetch the bucket-head pointer cell.
			mc.RegisterKernel(2, ppu.MustAssemble(`
				lddata r1
				ldg    r2, g0
				mul    r1, r1, r2
				ldg    r3, g1
				shr    r1, r1, r3
				shli   r1, r1, 3
				ldg    r4, g2
				add    r1, r1, r4
				pftag  r1, 3
				halt
			`))
			// Event 3: pointer cell arrived; walk to the first node.
			mc.RegisterKernel(3, ppu.MustAssemble(`
				lddata r1
				movi   r2, 0
				beq    r1, r2, done
				pftag  r1, 4
			done:
				halt
			`))
			// Event 4: a node arrived; prefetch the next node in the chain
			// — the control-flow loop only manual events can express (§7.1).
			mc.RegisterKernel(4, ppu.MustAssemble(`
				ldlinei r1, 16    ; node.next
				movi    r2, 0
				beq     r1, r2, done
				pftag   r1, 4
			done:
				halt
			`))
		}
		mc.PF.SetGlobal(0, hashMul)
		mc.PF.SetGlobal(1, uint64(shift))
		mc.PF.SetGlobal(2, htab.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: skey.Base, Hi: skey.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("hash-join match sum", ret, want)
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{skey.Base, htab.Base, nprobe, hashMul, uint64(shift)}}},
		Manual:  manual,
		Check:   check,
	}
}

// buildHJ2Fn: for x<n: k=skey[x]; h=hash(k); if htab[2h]==k: acc+=htab[2h+1].
func buildHJ2Fn(v Variant, shift uint) *ir.Fn {
	b := ir.NewBuilder("hj2", 5)
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	skeyB, htabB, nV := b.Arg(0), b.Arg(1), b.Arg(2)
	mulV, shiftV := b.Arg(3), b.Arg(4)
	zero := b.Const(0)

	l := newLoop(b, "probe", nV, []ir.Value{zero}, v == Pragma)
	acc := l.Carried[0]
	if v == SWPf {
		dist := b.Const(16)
		id := b.Add(l.IV, dist)
		b.SWPf(wordAddr(b, skeyB, b.Add(id, dist)), "skey")
		kd := b.Load(wordAddr(b, skeyB, id), "skey")
		hd := b.Shr(b.Mul(kd, mulV), shiftV)
		b.SWPf(b.Add(htabB, b.Shl(hd, b.Const(4))), "htab")
	}
	k := b.Load(wordAddr(b, skeyB, l.IV), "skey")
	h := b.Shr(b.Mul(k, mulV), shiftV)
	baddr := b.Add(htabB, b.Shl(h, b.Const(4)))
	bk := b.Load(baddr, "htab")

	match := b.NewBlock("match")
	latch := b.NewBlock("latch")
	isMatch := b.Bin(ir.CmpEQ, bk, k)
	b.CondBr(isMatch, match, latch)
	body := l.Body
	_ = body

	b.SetBlock(match)
	bv := b.Load(b.Add(baddr, b.Const(8)), "htab")
	accM := b.Add(acc, bv)
	b.Br(latch)

	b.SetBlock(latch)
	accJ := b.Phi()
	b.SetPhiArgs(accJ, acc, accM)
	l.end(accJ)

	b.Ret(acc)
	return b.MustFinish()
}

// buildHJ8Fn adds the bucket list walk of Figure 1.
func buildHJ8Fn(v Variant, shift uint) *ir.Fn {
	b := ir.NewBuilder("hj8", 5)
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	skeyB, htabB, nV := b.Arg(0), b.Arg(1), b.Arg(2)
	mulV, shiftV := b.Arg(3), b.Arg(4)
	zero := b.Const(0)

	l := newLoop(b, "probe", nV, []ir.Value{zero}, v == Pragma)
	acc := l.Carried[0]
	if v == SWPf {
		// The "reads prefetched data" form (§7.1): load the bucket head
		// for a future probe, then prefetch the node it points at. In
		// software the head load stalls; converted to events it becomes a
		// latency-tolerant chain.
		dist := b.Const(16)
		id := b.Add(l.IV, dist)
		b.SWPf(wordAddr(b, skeyB, b.Add(id, dist)), "skey")
		kd := b.Load(wordAddr(b, skeyB, id), "skey")
		hd := b.Shr(b.Mul(kd, mulV), shiftV)
		headD := b.Load(b.Add(htabB, b.Shl(hd, b.Const(3))), "htab")
		b.SWPf(headD, "nodes")
	}
	k := b.Load(wordAddr(b, skeyB, l.IV), "skey")
	h := b.Shr(b.Mul(k, mulV), shiftV)
	head := b.Load(b.Add(htabB, b.Shl(h, b.Const(3))), "htab")

	// while (p != 0) { if node.key == k: acc += node.val; p = node.next }
	whead := b.NewBlock("walk.head")
	wbody := b.NewBlock("walk.body")
	wmatch := b.NewBlock("walk.match")
	wlatch := b.NewBlock("walk.latch")
	wexit := b.NewBlock("walk.exit")
	b.Br(whead)

	b.SetBlock(whead)
	p := b.Phi()
	wacc := b.Phi()
	alive := b.Bin(ir.CmpNE, p, zero)
	b.CondBr(alive, wbody, wexit)

	b.SetBlock(wbody)
	nk := b.Load(p, "nodes")
	isMatch := b.Bin(ir.CmpEQ, nk, k)
	b.CondBr(isMatch, wmatch, wlatch)

	b.SetBlock(wmatch)
	nv := b.Load(b.Add(p, b.Const(nodeVal)), "nodes")
	waccM := b.Add(wacc, nv)
	b.Br(wlatch)

	b.SetBlock(wlatch)
	waccJ := b.Phi()
	b.SetPhiArgs(waccJ, wacc, waccM)
	next := b.Load(b.Add(p, b.Const(nodeNext)), "nodes")
	b.Br(whead)
	b.SetPhiArgs(p, head, next)
	b.SetPhiArgs(wacc, acc, waccJ)

	b.SetBlock(wexit)
	l.end(wacc)

	b.Ret(acc)
	return b.MustFinish()
}
