package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// HotCold is a memcached-style skewed hash-table lookup (the ROADMAP's
// third synthetic irregular workload): a query stream where 90% of lookups
// hit a small hot set of keys — whose table lines stay cache-resident — and
// 10% scatter uniformly over a table far larger than L2. The interesting
// behaviour is the mix: a stride unit sees only the sequential query
// stream, a Markov unit learns the hot lines, and the programmable
// prefetcher can hash each upcoming query on the fly and cover the cold
// misses too. Extra (not Table 2), and a trace-corpus seed for
// internal/tracein.
var HotCold = &Benchmark{
	Name:    "HotCold",
	Source:  "synthetic",
	Pattern: "Skewed hash lookup (90/10 hot/cold)",
	Input:   "256 k-slot table, 64 hot keys",
	Build:   buildHotCold,
}

const (
	hotcoldTableLg     = 18 // 256 k words = 2 MiB, twice L2
	hotcoldHotKeys     = 64
	hotcoldBaseQueries = 60000
	// hotcoldLookahead is the manual-kernel prefetch distance in queries;
	// the query array is padded by this much so look-ahead loads of the tail
	// stay in bounds.
	hotcoldLookahead = 32
)

func buildHotCold(m *system.Machine, scale float64) *Instance {
	queriesN := uint64(scaled(hotcoldBaseQueries, scale))
	tableWords := uint64(1) << hotcoldTableLg
	shift := uint64(64 - hotcoldTableLg)

	table := m.Arena.AllocWords("table", tableWords)
	queries := m.Arena.AllocWords("queries", queriesN+hotcoldLookahead)

	gen := splitmix64(0xC01D)
	tableH := make([]uint64, tableWords)
	for i := range tableH {
		tableH[i] = gen.next()
		m.Backing.Write64(table.Base+uint64(i)*8, tableH[i])
	}
	hot := make([]uint64, hotcoldHotKeys)
	for i := range hot {
		hot[i] = gen.next() | 1
	}

	hash := func(k uint64) uint64 { return (k * hashMul) >> shift }

	var wantAcc uint64
	for q := uint64(0); q < queriesN; q++ {
		k := hot[gen.next()%hotcoldHotKeys]
		if gen.next()%10 == 0 {
			k = gen.next() | 1 // cold: uniform over the whole key space
		}
		m.Backing.Write64(queries.Base+q*8, k)
		wantAcc += (tableH[hash(k)] ^ k) & 0xFF
	}

	fn := func(v Variant) *ir.Fn {
		if v != Plain {
			// Like PhaseMix and SpMV: plain build only.
			return nil
		}
		b := ir.NewBuilder("hotcold", 5)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		queriesB, tableB, nV := b.Arg(0), b.Arg(1), b.Arg(2)
		mulV, shiftV := b.Arg(3), b.Arg(4)
		zero := b.Const(0)

		l := newLoop(b, "queries", nV, []ir.Value{zero}, false)
		acc := l.Carried[0]
		q := b.Load(wordAddr(b, queriesB, l.IV), "queries")
		slot := b.Shr(b.Mul(q, mulV), shiftV)
		val := b.Load(wordAddr(b, tableB, slot), "table")
		l.end(b.Add(acc, b.And(b.Xor(val, q), b.Const(0xFF))))
		b.Ret(l.Carried[0])
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// Event 1 on loads of the query stream: fetch the query a fixed
		// distance ahead (padded array, no wrap needed); event 2 hashes the
		// fetched key exactly as the main program will and prefetches its
		// table line — the hash-join kernel idiom on a skewed stream.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256  ; 32 queries ahead
			pftag  r1, 2
			halt
		`))
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1           ; query key
			ldg    r2, g0       ; hash multiplier
			mul    r1, r1, r2
			shri   r1, r1, 46   ; 64 - hotcoldTableLg
			shli   r1, r1, 3
			ldg    r2, g1       ; table base
			add    r1, r1, r2
			pf     r1
			halt
		`))
		mc.PF.SetGlobal(0, hashMul)
		mc.PF.SetGlobal(1, table.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: queries.Base, Hi: queries.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("hotcold checksum", ret, wantAcc)
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{queries.Base, table.Base, queriesN, hashMul, shift}}},
		Manual:  manual,
		Check:   check,
	}
}
