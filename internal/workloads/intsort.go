package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// IntSort is the NAS IS counting-sort kernel: a strided sweep over a key
// array driving indirect increments of a bucket-count array (Table 2:
// stride-indirect). The count array is far larger than L2, so each
// increment is a dependent load+store miss.
var IntSort = &Benchmark{
	Name:    "IntSort",
	Source:  "NAS",
	Pattern: "Stride-indirect",
	Input:   "B",
	Build:   buildIntSort,
}

const (
	intsortKeys     = 1 << 19
	intsortBucketLg = 17
)

func buildIntSort(m *system.Machine, scale float64) *Instance {
	n := uint64(scaled(intsortKeys, scale))
	buckets := uint64(1) << intsortBucketLg

	// Padded by the software-prefetch distance so key[i+dist] never
	// overruns (real software-prefetch code pads or guards the same way).
	keys := m.Arena.AllocWords("keys", n+64)
	count := m.Arena.AllocWords("count", buckets)

	rng := splitmix64(0x15)
	want := make(map[uint64]uint64)
	var wantAcc uint64
	for i := uint64(0); i < n; i++ {
		k := rng.next() & (buckets - 1)
		m.Backing.Write64(keys.Base+i*8, k)
		want[k]++
		wantAcc += k
	}

	fn := func(v Variant) *ir.Fn {
		b := ir.NewBuilder("intsort", 3)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		keysB, countB, nV := b.Arg(0), b.Arg(1), b.Arg(2)
		zero := b.Const(0)

		l := newLoop(b, "hist", nV, []ir.Value{zero}, v == Pragma)
		acc := l.Carried[0]
		if v == SWPf {
			// The standard software-prefetch insertion for stride-indirect
			// loops [Ainsworth & Jones, CGO'17]: prefetch the index array at
			// twice the look-ahead and the indirect target at one look-ahead.
			// The duplicated key load and address arithmetic are the source
			// of the dynamic-instruction increase the paper reports (§7.1).
			dist := b.Const(64)
			id := b.Add(l.IV, dist)
			b.SWPf(wordAddr(b, keysB, b.Add(id, dist)), "keys")
			kd := b.Load(wordAddr(b, keysB, id), "keys")
			b.SWPf(wordAddr(b, countB, kd), "count")
		}
		k := b.Load(wordAddr(b, keysB, l.IV), "keys")
		caddr := wordAddr(b, countB, k)
		c := b.Load(caddr, "count")
		one := b.Const(1)
		b.Store(caddr, b.Add(c, one), "count")
		acc2 := b.Add(acc, k)
		l.end(acc2)

		b.Ret(acc)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// Event 1, on demand loads of the key array: prefetch the key the
		// EWMA says we will need, chained so its arrival triggers event 2.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 512  ; hand-tuned look-ahead distance
			pftag  r1, 2
			halt
		`))
		// Event 2, key data arrived: fetch the bucket counter it indexes.
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g0
			add    r1, r1, r2
			pf     r1
			halt
		`))
		mc.PF.SetGlobal(0, count.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: keys.Base, Hi: keys.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		if err := checkEq("intsort key checksum", ret, wantAcc); err != nil {
			return err
		}
		for k, c := range want {
			if got := mc.Backing.Read64(count.Base + k*8); got != c {
				return checkEq("count bucket", got, c)
			}
		}
		return nil
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{keys.Base, count.Base, n}}},
		Manual:  manual,
		Check:   check,
	}
}
