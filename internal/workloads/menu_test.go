package workloads

import (
	"strings"
	"testing"

	"eventpf/internal/ir"
)

// TestMenuCoversAllAndExtra pins the merged-lookup contract: Menu/MenuNames
// list every Table 2 row followed by every Extra bench, while Names stays
// Table 2 only (figure sweeps must never pick extras up).
func TestMenuCoversAllAndExtra(t *testing.T) {
	names := MenuNames()
	if len(names) != len(All)+len(Extra) {
		t.Fatalf("MenuNames has %d entries, want %d", len(names), len(All)+len(Extra))
	}
	for i, b := range append(append([]*Benchmark{}, All...), Extra...) {
		if names[i] != b.Name {
			t.Errorf("MenuNames[%d] = %q, want %q", i, names[i], b.Name)
		}
	}
	if got := len(Names()); got != len(All) {
		t.Errorf("Names has %d entries, want Table 2's %d", got, len(All))
	}
	for _, b := range Extra {
		if !IsExtra(b) {
			t.Errorf("IsExtra(%s) = false", b.Name)
		}
	}
	if IsExtra(RandAcc) {
		t.Error("IsExtra(RandAcc) = true")
	}
}

// TestByNameResolvesExtras is the regression for the duplicated-loop bug:
// ByName must resolve Extra benches and its unknown-name error must list
// them, so CLI and server menus show the whole menu (PhaseMix was missing
// from the 400 response's list when All and Extra were looked up by two
// hand-copied loops).
func TestByNameResolvesExtras(t *testing.T) {
	for _, b := range Extra {
		got, err := ByName(b.Name)
		if err != nil || got != b {
			t.Errorf("ByName(%s) = %v, %v", b.Name, got, err)
		}
	}
	if b, err := ByName("phase_mix"); err != nil || b != PhaseMix {
		t.Errorf("ByName(phase_mix) = %v, %v", b, err)
	}
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	for _, b := range Extra {
		if !strings.Contains(err.Error(), fold(b.Name)) {
			t.Errorf("ByName error %q does not mention extra bench %q", err, fold(b.Name))
		}
	}
}

// TestExtraPlainRunsMatchOracle executes each Extra bench's plain kernel
// functionally and validates it against its oracle, like
// TestPlainRunMatchesOracle does for Table 2.
func TestExtraPlainRunsMatchOracle(t *testing.T) {
	for _, b := range Extra {
		m, inst := buildAll(t, b)
		fn := inst.BuildFn(Plain)
		if fn == nil {
			t.Errorf("%s: no plain variant", b.Name)
			continue
		}
		if err := fn.Verify(); err != nil {
			t.Errorf("%s: invalid IR: %v", b.Name, err)
			continue
		}
		var last *ir.Interp
		for _, run := range inst.Runs {
			if run.Before != nil {
				run.Before(m)
			}
			it := m.NewInterp(fn, run.Args...)
			last = it
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		}
		ret, hasRet := last.Result()
		if err := inst.Check(m, ret, hasRet); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}
