package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// PageRank is the BGL-style edge-centric rank propagation sweep: edges are
// visited in destination order (strided), while the source-rank reads
// scatter across the rank vector (Table 2: stride-indirect). As in the
// paper, there is no software-prefetch variant: the original code works on
// templated iterators that never expose element addresses, so BuildFn
// returns nil for SWPf — only the pragma pass (which sees the IR) and
// manual events can target it.
var PageRank = &Benchmark{
	Name:    "PageRank",
	Source:  "BGL",
	Pattern: "Stride-indirect",
	Input:   "web-Google",
	Build:   buildPageRank,
}

const (
	prVertices = 1 << 18
	prDegree   = 3
	prIters    = 1
)

func buildPageRank(m *system.Machine, scale float64) *Instance {
	nv := uint64(scaled(prVertices, scale))
	ne := nv * prDegree

	src := m.Arena.AllocWords("src", ne)
	dst := m.Arena.AllocWords("dst", ne)
	rankOld := m.Arena.AllocWords("rankOld", nv)
	rankNew := m.Arena.AllocWords("rankNew", nv)

	rng := splitmix64(0x93)
	for e := uint64(0); e < ne; e++ {
		// Destinations ascend (edges grouped by target vertex); sources
		// are skewed random, like a web graph's in-link distribution.
		m.Backing.Write64(dst.Base+e*8, e/prDegree)
		s := rng.next() % nv
		if rng.next()%4 == 0 {
			s = rng.next() % (nv/16 + 1) // a popular core of vertices
		}
		m.Backing.Write64(src.Base+e*8, s)
	}
	for v := uint64(0); v < nv; v++ {
		m.Backing.Write64(rankOld.Base+v*8, rng.next()&0xFFFF)
	}

	oracle := func() uint64 {
		old := make([]uint64, nv)
		niu := make([]uint64, nv)
		for i := range old {
			old[i] = m.Backing.Read64(rankOld.Base + uint64(i)*8)
		}
		var acc uint64
		for it := 0; it < prIters; it++ {
			for e := uint64(0); e < ne; e++ {
				s := m.Backing.Read64(src.Base + e*8)
				d := m.Backing.Read64(dst.Base + e*8)
				niu[d] += old[s]
				acc += old[s]
			}
			old, niu = niu, old
		}
		return acc
	}
	want := oracle()

	fn := func(v Variant) *ir.Fn {
		if v == SWPf {
			return nil // no direct memory address access (§7.1)
		}
		b := ir.NewBuilder("pagerank", 6)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		srcB, dstB := b.Arg(0), b.Arg(1)
		oldB, newB := b.Arg(2), b.Arg(3)
		neV, itersV := b.Arg(4), b.Arg(5)
		zero := b.Const(0)

		outer := newLoop(b, "iters", itersV, []ir.Value{zero, oldB, newB}, false)
		accO, oldV, newV := outer.Carried[0], outer.Carried[1], outer.Carried[2]

		inner := newLoop(b, "edges", neV, []ir.Value{accO}, v == Pragma)
		acc := inner.Carried[0]
		e := inner.IV
		s := b.Load(wordAddr(b, srcB, e), "src")
		d := b.Load(wordAddr(b, dstB, e), "dst")
		rs := b.Load(wordAddr(b, oldV, s), "rank")
		naddr := wordAddr(b, newV, d)
		rn := b.Load(naddr, "rank")
		b.Store(naddr, b.Add(rn, rs), "rank")
		acc2 := b.Add(acc, rs)
		inner.end(acc2)

		outer.end(inner.Carried[0], newV, oldV)
		b.Ret(accO)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256  ; hand-tuned look-ahead distance
			pftag  r1, 2
			halt
		`))
		// Source vertex arrived: fetch its rank.
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g0
			add    r3, r1, r2
			pf     r3
			halt
		`))
		// Events 3/4: the same chain for the destination array and the
		// output rank vector.
		mc.RegisterKernel(3, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256
			pftag  r1, 4
			halt
		`))
		mc.RegisterKernel(4, ppu.MustAssemble(`
			lddata r1
			shli   r1, r1, 3
			ldg    r2, g1
			add    r3, r1, r2
			pf     r3
			halt
		`))
		mc.PF.SetGlobal(0, rankOld.Base)
		mc.PF.SetGlobal(1, rankNew.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: src.Base, Hi: src.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
		mc.PF.SetRange(1, prefetch.RangeConfig{
			Lo: dst.Base, Hi: dst.End(),
			LoadKernel: 3, PFKernel: prefetch.NoKernel,
			EWMAGroup: -1,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("pagerank checksum", ret, want)
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{src.Base, dst.Base, rankOld.Base, rankNew.Base, ne, prIters}}},
		Manual:  manual,
		Check:   check,
	}
}
