package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// PhaseMix is a synthetic phase-alternation benchmark built for the
// adaptive-controller study (Figure 12): it interleaves long sequential
// array scans (ideal for a stride prefetcher, useless for the hand-written
// PPU kernels) with long linked-list chases (ideal for the PPU chase
// kernel, opaque to a stride unit). No single static scheme is right for
// both halves, so it isolates exactly the behaviour the adaptive controller
// exists for: detecting the phase change and swapping the active scheme at
// run time. It is not part of the paper's Table 2, so it lives in Extra,
// not All — ByName resolves it, figure sweeps over All do not.
var PhaseMix = &Benchmark{
	Name:    "PhaseMix",
	Source:  "synthetic",
	Pattern: "Alternating scan / pointer-chase",
	Input:   "1 MiB array + 3.5 k-node list per phase pair",
	Build:   buildPhaseMix,
}

const (
	phasemixArrWords  = 131072 // 1 MiB: the scan streams through all of L2
	phasemixNodes     = 3500   // chase length per phase, one node per line
	phasemixSlotsLg   = 15     // nodes scattered over 32 k line slots (2 MiB)
	phasemixBasePairs = 10     // scan+chase pairs at scale 1.0
)

func buildPhaseMix(m *system.Machine, scale float64) *Instance {
	pairs := uint64(float64(phasemixBasePairs) * scale)
	if pairs < 2 {
		pairs = 2
	}
	// Scale shrinks the number of phase pairs, not the phases themselves:
	// each phase must stay long against the controller's decision interval
	// or there is nothing to adapt to. Only below scale 0.1 — smoke-test
	// territory, where a switch merely has to happen, not pay off — do the
	// phases themselves shrink.
	arrWords, chaseNodes := uint64(phasemixArrWords), phasemixNodes
	if scale < 0.1 {
		f := scale * 10
		arrWords = uint64(scaled(phasemixArrWords, f))
		chaseNodes = scaled(phasemixNodes, f)
	}

	arr := m.Arena.AllocWords("scan", arrWords)
	slots := uint64(1) << phasemixSlotsLg
	nodes := m.Arena.AllocWords("nodes", slots*8) // one 64 B line per slot

	rng := splitmix64(0x9A5E)
	for i := uint64(0); i < arrWords; i++ {
		m.Backing.Write64(arr.Base+i*8, rng.next())
	}

	// Chain phasemixNodes nodes through a random subset of the line slots,
	// null-terminated. Each node is the first word of its line and holds the
	// byte address of the next node.
	order := rng.perm(slots)[:chaseNodes]
	addrOf := func(slot uint64) uint64 { return nodes.Base + slot*64 }
	for i, slot := range order {
		next := uint64(0)
		if i+1 < len(order) {
			next = addrOf(order[i+1])
		}
		m.Backing.Write64(addrOf(slot), next)
	}
	head := addrOf(order[0])

	// Oracle: the kernel's arithmetic, replayed in Go.
	var wantAcc uint64
	for p := uint64(0); p < pairs; p++ {
		for i := uint64(0); i < arrWords; i++ {
			wantAcc += m.Backing.Read64(arr.Base + i*8)
		}
		for ptr := head; ptr != 0; {
			next := m.Backing.Read64(ptr)
			wantAcc += (next >> 6) & 0xFFFF
			ptr = next
		}
	}

	fn := func(v Variant) *ir.Fn {
		if v != Plain {
			// Like PageRank's missing Figure 7 bars: no software-prefetch or
			// pragma form. The chase loop has no induction variable for the
			// compiler passes to work from, and a scan-only variant would
			// misrepresent the benchmark.
			return nil
		}
		b := ir.NewBuilder("phasemix", 4)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		arrB, arrN, headV, pairsV := b.Arg(0), b.Arg(1), b.Arg(2), b.Arg(3)
		zero := b.Const(0)

		outer := newLoop(b, "pairs", pairsV, []ir.Value{zero}, false)
		accO := outer.Carried[0]

		scan := newLoop(b, "scan", arrN, []ir.Value{accO}, false)
		val := b.Load(wordAddr(b, arrB, scan.IV), "scan")
		scan.end(b.Add(scan.Carried[0], val))

		// while (p != 0) { next = *p; acc += (next>>6) & 0xFFFF; p = next }
		chaseHead := b.NewBlock("chase.head")
		chaseBody := b.NewBlock("chase.body")
		chaseExit := b.NewBlock("chase.exit")
		b.Br(chaseHead)

		b.SetBlock(chaseHead)
		p := b.Phi()
		accC := b.Phi()
		alive := b.Bin(ir.CmpNE, p, zero)
		b.CondBr(alive, chaseBody, chaseExit)

		b.SetBlock(chaseBody)
		next := b.Load(p, "nodes")
		acc2 := b.Add(accC, b.And(b.Shr(next, b.Const(6)), b.Const(0xFFFF)))
		b.Br(chaseHead)
		b.SetPhiArgs(p, headV, next)
		b.SetPhiArgs(accC, scan.Carried[0], acc2)

		b.SetBlock(chaseExit)
		outer.end(accC)
		b.Ret(accO)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// One kernel, covering the node region only: chase ahead of the
		// core down the list, self-chaining on each prefetched node's fill
		// (the G500-List idiom). The scan region is deliberately uncovered —
		// the hand-written kernels know nothing about the scan phase, which
		// is what gives the static "manual" scheme its blind spot here.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			lddata r1          ; node.next (byte address)
			movi   r2, 0
			beq    r1, r2, done
			pftag  r1, 1
		done:
			halt
		`))
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: nodes.Base, Hi: nodes.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		return checkEq("phasemix accumulator", ret, wantAcc)
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{arr.Base, arrWords, head, pairs}}},
		Manual:  manual,
		Check:   check,
	}
}
