package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// RandAcc is the HPCC RandomAccess (GUPS) kernel: 128 independent
// pseudo-random streams XOR-update a table far larger than the caches
// (Table 2: stride-hash-indirect). The per-stream LCG state lives in a
// small resident array, which is exactly the structure the prefetch events
// hook: observing a stream's state is enough to compute its next update
// address.
var RandAcc = &Benchmark{
	Name:    "RandAcc",
	Source:  "HPCC",
	Pattern: "Stride-hash-indirect",
	Input:   "100000000",
	Build:   buildRandAcc,
}

const (
	randaccTableLg = 21 // 2 M words = 16 MiB
	randaccRounds  = 2048
	randaccStreams = 128
	randaccPoly    = 7
)

// lcgStep is the HPCC polynomial LCG over GF(2):
// s' = (s << 1) ^ (s topbit ? POLY : 0).
func lcgStep(s uint64) uint64 {
	t := (s >> 63) * randaccPoly
	return (s << 1) ^ t
}

func buildRandAcc(m *system.Machine, scale float64) *Instance {
	rounds := uint64(scaled(randaccRounds, scale))
	tableWords := uint64(1) << randaccTableLg
	mask := tableWords - 1

	table := m.Arena.AllocWords("table", tableWords)
	ran := m.Arena.AllocWords("ran", randaccStreams)

	rng := splitmix64(0x6A)
	states := make([]uint64, randaccStreams)
	for j := range states {
		states[j] = rng.next() | 1
		m.Backing.Write64(ran.Base+uint64(j)*8, states[j])
	}

	// Oracle over a model table (sparse: only touched slots).
	model := map[uint64]uint64{}
	var wantAcc uint64
	oracleStates := append([]uint64(nil), states...)
	for r := uint64(0); r < rounds; r++ {
		for j := 0; j < randaccStreams; j++ {
			s2 := lcgStep(oracleStates[j])
			oracleStates[j] = s2
			idx := s2 & mask
			old := model[idx]
			model[idx] = old ^ s2
			wantAcc += old & 0xFF
		}
	}

	fn := func(v Variant) *ir.Fn {
		b := ir.NewBuilder("randacc", 4)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		tableB, ranB, roundsV := b.Arg(0), b.Arg(1), b.Arg(2)
		streamsV := b.Arg(3)
		zero := b.Const(0)

		outer := newLoop(b, "rounds", roundsV, []ir.Value{zero}, false)
		accO := outer.Carried[0]

		inner := newLoop(b, "streams", streamsV, []ir.Value{accO}, v == Pragma)
		acc := inner.Carried[0]
		j := inner.IV

		ranAddr := wordAddr(b, ranB, j)
		s := b.Load(ranAddr, "ran")
		// s2 = (s<<1) ^ ((s>>63)*POLY)
		one := b.Const(1)
		top := b.Shr(s, b.Const(63))
		poly := b.Const(randaccPoly)
		s2 := b.Xor(b.Shl(s, one), b.Mul(top, poly))
		b.Store(ranAddr, s2, "ran")

		maskC := b.Const(int64(mask))
		idx := b.And(s2, maskC)
		taddr := wordAddr(b, tableB, idx)
		if v == SWPf {
			// Prefetch this stream's next-round target: one more LCG step.
			top2 := b.Shr(s2, b.Const(63))
			s3 := b.Xor(b.Shl(s2, one), b.Mul(top2, poly))
			b.SWPf(wordAddr(b, tableB, b.And(s3, maskC)), "table")
		}
		old := b.Load(taddr, "table")
		b.Store(taddr, b.Xor(old, s2), "table")
		acc2 := b.Add(acc, b.And(old, b.Const(0xFF)))
		inner.end(acc2)

		outer.end(inner.Carried[0])
		b.Ret(accO)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// Event 1 on loads of the stream-state array: prefetch the state
		// EWMA-many streams ahead; its (usually resident) fill triggers
		// event 2 with the state value.
		// The look-ahead wraps around the 128-entry state array — the
		// manual-only trick the paper notes for RandAcc (§7.1): compiler
		// passes cannot discover the wrap, so they leave the array's start
		// unprefetched each round.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			ldg    r3, g2       ; state-array base
			sub    r1, r1, r3
			addi   r1, r1, 256  ; hand-tuned look-ahead distance
			andi   r1, r1, 1023 ; wrap within the 128-entry array
			add    r1, r1, r3
			pftag  r1, 2
			halt
		`))
		// Event 2: recompute the stream's next update address — the same
		// LCG step the main program will take — and fetch the table line.
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1           ; s
			shri   r2, r1, 63
			muli   r2, r2, 7
			shli   r1, r1, 1
			xor    r1, r1, r2   ; s2
			ldg    r3, g0       ; mask
			and    r1, r1, r3
			shli   r1, r1, 3
			ldg    r4, g1       ; table base
			add    r1, r1, r4
			pf     r1
			halt
		`))
		mc.PF.SetGlobal(0, mask)
		mc.PF.SetGlobal(1, table.Base)
		mc.PF.SetGlobal(2, ran.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: ran.Base, Hi: ran.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		if err := checkEq("randacc accumulator", ret, wantAcc); err != nil {
			return err
		}
		for idx, v := range model {
			if got := mc.Backing.Read64(table.Base + idx*8); got != v {
				return checkEq("table slot", got, v)
			}
		}
		return nil
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{table.Base, ran.Base, rounds, randaccStreams}}},
		Manual:  manual,
		Check:   check,
	}
}
