package workloads

import (
	"eventpf/internal/ir"
	"eventpf/internal/ppu"
	"eventpf/internal/prefetch"
	"eventpf/internal/system"
)

// SpMV is sparse matrix–vector multiply over CSR: the ROADMAP's first
// synthetic irregular workload and a staple of the prefetching literature
// (it is the access pattern inside ConjGrad, isolated). The row-pointer and
// value arrays stream sequentially — stride territory — while the gather
// x[colidx[k]] is data-dependent and random, which only an indirection-aware
// prefetcher covers. Not a Table 2 row, so it lives in Extra; it doubles as
// a trace-corpus seed for the trace front end (internal/tracein).
var SpMV = &Benchmark{
	Name:    "SpMV",
	Source:  "synthetic",
	Pattern: "Stream + data-dependent gather (CSR)",
	Input:   "20 k × 20 k, ~8 nnz/row",
	Build:   buildSpMV,
}

const (
	spmvBaseRows  = 20000
	spmvMinPerRow = 4
	spmvMaxPerRow = 12 // average 8 nonzeros per row
	// spmvLookahead is the software/manual prefetch distance in colidx
	// elements; the colidx array is padded by this much so the look-ahead
	// loads of the last rows stay in bounds.
	spmvLookahead = 32
)

func buildSpMV(m *system.Machine, scale float64) *Instance {
	rows := uint64(scaled(spmvBaseRows, scale))
	cols := rows

	rng := splitmix64(0x5B37)
	rowptrH := make([]uint64, rows+1)
	var colidxH []uint64
	for r := uint64(0); r < rows; r++ {
		rowptrH[r] = uint64(len(colidxH))
		nnz := spmvMinPerRow + rng.next()%(spmvMaxPerRow-spmvMinPerRow+1)
		for k := uint64(0); k < nnz; k++ {
			colidxH = append(colidxH, rng.next()%cols)
		}
	}
	rowptrH[rows] = uint64(len(colidxH))
	nnz := uint64(len(colidxH))

	rowptr := m.Arena.AllocWords("rowptr", rows+1)
	colidx := m.Arena.AllocWords("colidx", nnz+spmvLookahead)
	vals := m.Arena.AllocWords("vals", nnz)
	x := m.Arena.AllocWords("x", cols)
	y := m.Arena.AllocWords("y", rows)

	for i, v := range rowptrH {
		m.Backing.Write64(rowptr.Base+uint64(i)*8, v)
	}
	for i, c := range colidxH {
		m.Backing.Write64(colidx.Base+uint64(i)*8, c)
	}
	valsH := make([]uint64, nnz)
	xH := make([]uint64, cols)
	for i := range valsH {
		valsH[i] = rng.next() & 0xFFFF
		m.Backing.Write64(vals.Base+uint64(i)*8, valsH[i])
	}
	for i := range xH {
		xH[i] = rng.next() & 0xFFFF
		m.Backing.Write64(x.Base+uint64(i)*8, xH[i])
	}

	// Oracle: y = A·x and the checksum the kernel returns.
	yH := make([]uint64, rows)
	var wantAcc uint64
	for r := uint64(0); r < rows; r++ {
		var sum uint64
		for k := rowptrH[r]; k < rowptrH[r+1]; k++ {
			sum += valsH[k] * xH[colidxH[k]]
		}
		yH[r] = sum
		wantAcc += sum & 0xFFFF
	}

	fn := func(v Variant) *ir.Fn {
		if v != Plain {
			// Like PhaseMix: no software-prefetch or pragma form. The trace
			// front end and the adaptive study only consume the plain build,
			// and a hand-tuned SWPf variant would be a separate study.
			return nil
		}
		b := ir.NewBuilder("spmv", 6)
		entry := b.NewBlock("entry")
		b.SetBlock(entry)
		rowptrB, colidxB, valsB := b.Arg(0), b.Arg(1), b.Arg(2)
		xB, yB, rowsV := b.Arg(3), b.Arg(4), b.Arg(5)
		zero := b.Const(0)
		one := b.Const(1)

		outer := newLoop(b, "rows", rowsV, []ir.Value{zero}, false)
		accO := outer.Carried[0]
		r := outer.IV

		lo := b.Load(wordAddr(b, rowptrB, r), "rowptr")
		hi := b.Load(wordAddr(b, rowptrB, b.Add(r, one)), "rowptr")
		cnt := b.Sub(hi, lo)

		inner := newLoop(b, "nnz", cnt, []ir.Value{zero}, false)
		k := b.Add(lo, inner.IV)
		c := b.Load(wordAddr(b, colidxB, k), "colidx")
		val := b.Load(wordAddr(b, valsB, k), "vals")
		xv := b.Load(wordAddr(b, xB, c), "x")
		inner.end(b.Add(inner.Carried[0], b.Mul(val, xv)))

		sum := inner.Carried[0]
		b.Store(wordAddr(b, yB, r), sum, "y")
		outer.end(b.Add(accO, b.And(sum, b.Const(0xFFFF))))
		b.Ret(accO)
		return b.MustFinish()
	}

	manual := func(mc *system.Machine) {
		// Event 1 on loads of colidx: fetch the column index a fixed distance
		// ahead (the array is padded, so the look-ahead never faults); its
		// fill triggers event 2 with the index value, which gathers the x
		// element — the paper's two-stage array-indirection idiom.
		mc.RegisterKernel(1, ppu.MustAssemble(`
			vaddr  r1
			addi   r1, r1, 256  ; 32 elements ahead
			pftag  r1, 2
			halt
		`))
		mc.RegisterKernel(2, ppu.MustAssemble(`
			lddata r1           ; colidx[k+32]
			shli   r1, r1, 3
			ldg    r2, g0       ; x base
			add    r1, r1, r2
			pf     r1
			halt
		`))
		mc.PF.SetGlobal(0, x.Base)
		mc.PF.SetRange(0, prefetch.RangeConfig{
			Lo: colidx.Base, Hi: colidx.End(),
			LoadKernel: 1, PFKernel: prefetch.NoKernel,
			EWMAGroup: 0, Interval: true, TimedStart: true,
		})
	}

	check := func(mc *system.Machine, ret uint64, hasRet bool) error {
		if err := checkEq("spmv checksum", ret, wantAcc); err != nil {
			return err
		}
		for r := uint64(0); r < rows; r++ {
			if got := mc.Backing.Read64(y.Base + r*8); got != yH[r] {
				return checkEq("y row", got, yH[r])
			}
		}
		return nil
	}

	return &Instance{
		BuildFn: fn,
		Runs:    []Run{{Args: []uint64{rowptr.Base, colidx.Base, vals.Base, x.Base, y.Base, rows}}},
		Manual:  manual,
		Check:   check,
	}
}
