// Package workloads implements the eight memory-bound benchmarks of the
// paper's Table 2 at reduced, flag-adjustable scale. Each benchmark builds
// its data in a machine's functional memory, provides its timed kernel in
// IR (plus a software-prefetch variant and a pragma-annotated variant for
// the two compiler passes), supplies hand-written PPU event kernels for the
// "manual" scheme, and validates the simulated run against a pure-Go
// oracle: prefetching must never change answers.
package workloads

import (
	"fmt"
	"strings"

	"eventpf/internal/cpu"
	"eventpf/internal/ir"
	"eventpf/internal/system"
)

// Variant selects which form of a benchmark's kernel to run.
type Variant int

// Kernel variants.
const (
	// Plain is the unmodified kernel.
	Plain Variant = iota
	// SWPf carries explicit software-prefetch instructions.
	SWPf
	// Pragma is the plain kernel with "#pragma prefetch" loop annotations.
	Pragma
)

func (v Variant) String() string {
	switch v {
	case Plain:
		return "plain"
	case SWPf:
		return "swpf"
	case Pragma:
		return "pragma"
	}
	return "unknown"
}

// Run is one invocation of a benchmark's kernel. Before, if set, runs
// functionally (outside simulated time) when the invocation starts, like
// the initialisation phases the paper fast-forwards past — Graph500 uses it
// to reset the parent array between search roots.
type Run struct {
	Args   []uint64
	Before func(m *system.Machine)
}

// Instance is one prepared benchmark: data resides in the machine's backing
// store and the kernel closures build fresh IR on demand (the compiler
// passes mutate IR, so every consumer gets its own copy).
type Instance struct {
	// BuildFn returns a fresh copy of the kernel in the given variant, or
	// nil if the variant does not exist (e.g. PageRank has no software-
	// prefetch form, mirroring the paper's missing bars in Figure 7).
	BuildFn func(v Variant) *ir.Fn
	// Runs are the kernel invocations, executed back to back on the core
	// (Graph500 searches several roots; the others have a single run).
	Runs []Run
	// Manual installs the hand-written PPU kernels and filter/global
	// configuration on a programmable-prefetcher machine.
	Manual func(m *system.Machine)
	// Check validates the whole instance: ret is the last invocation's
	// return value. It may also inspect the backing store for outputs.
	Check func(m *system.Machine, ret uint64, hasRet bool) error
	// StreamFn, if set, supplies the micro-op stream directly instead of
	// through an IR kernel: the instance has no BuildFn and no Runs, and the
	// harness feeds the stream straight to the core. This is the shape trace
	// replay (internal/tracein) uses; Check still runs afterwards, with no
	// return value.
	StreamFn func() (cpu.Stream, error)
}

// Benchmark is one Table 2 row.
type Benchmark struct {
	Name    string
	Source  string // suite the paper took it from
	Pattern string // Table 2 "pattern" column
	Input   string // the paper's input description
	// Build allocates and initialises the data at the given scale
	// (1.0 = this reproduction's default reduced input) and returns the
	// runnable instance.
	Build func(m *system.Machine, scale float64) *Instance
}

// All lists the benchmarks in the paper's presentation order.
var All = []*Benchmark{
	G500CSR,
	G500List,
	HJ2,
	HJ8,
	PageRank,
	RandAcc,
	IntSort,
	ConjGrad,
}

// Extra lists benchmarks that are not Table 2 rows: ByName resolves them
// (so CLIs and experiments can ask for them explicitly) but figure sweeps
// over All never pick them up. The adaptive-controller study's synthetic
// phase-alternation workload, plus the ROADMAP's three synthetic irregular
// workloads that double as trace-corpus seeds.
var Extra = []*Benchmark{
	PhaseMix,
	SpMV,
	BTree,
	HotCold,
}

// menu is the single merged lookup slice (All then Extra, built once) that
// ByName, Menu and MenuNames all consult, and byFold is its folded-name
// index. Package-level init runs after the benchmark variables above are
// initialised.
var (
	menu   []*Benchmark
	byFold map[string]*Benchmark
	extras map[*Benchmark]bool
)

func init() {
	menu = make([]*Benchmark, 0, len(All)+len(Extra))
	menu = append(menu, All...)
	menu = append(menu, Extra...)
	byFold = make(map[string]*Benchmark, len(menu))
	extras = make(map[*Benchmark]bool, len(Extra))
	for _, b := range menu {
		byFold[fold(b.Name)] = b
	}
	for _, b := range Extra {
		extras[b] = true
	}
}

// fold normalises a benchmark name for matching: lower case, punctuation
// stripped, so "hj8" and "g500csr" resolve to "HJ-8" and "G500-CSR".
func fold(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "")
	return strings.ReplaceAll(s, "_", "")
}

// Names lists the canonical Table 2 benchmark names in presentation order.
func Names() []string {
	names := make([]string, len(All))
	for i, b := range All {
		names[i] = b.Name
	}
	return names
}

// Menu lists every resolvable benchmark: Table 2 rows in presentation
// order, then the Extra set. The returned slice is shared; do not mutate.
func Menu() []*Benchmark { return menu }

// MenuNames lists every resolvable benchmark name (All then Extra) — the
// menu servers and CLIs should present, where Names covers only Table 2.
func MenuNames() []string {
	names := make([]string, len(menu))
	for i, b := range menu {
		names[i] = b.Name
	}
	return names
}

// IsExtra reports whether b is an Extra (non-Table 2) benchmark.
func IsExtra(b *Benchmark) bool { return extras[b] }

// ByName finds a benchmark by name — Table 2 rows and Extra alike.
// Matching ignores case and punctuation. On an unknown name the error lists
// every valid name, so CLIs and the job server can surface the whole menu
// instead of a bare failure.
func ByName(name string) (*Benchmark, error) {
	if b, ok := byFold[fold(name)]; ok {
		return b, nil
	}
	folded := make([]string, len(menu))
	for i, b := range menu {
		folded[i] = fold(b.Name)
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q; valid names (case and punctuation ignored): %s",
		name, strings.Join(folded, ", "))
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 16 {
		n = 16
	}
	return n
}

func checkEq(what string, got, want uint64) error {
	if got != want {
		return fmt.Errorf("%s = %d, want %d", what, got, want)
	}
	return nil
}

// splitmix64 is the deterministic RNG used by all generators.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashMul is the multiplicative hashing constant shared by the hash-join
// kernels, their PPU kernels and the oracles.
const hashMul = 0x9E3779B97F4A7C15

// perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *splitmix64) perm(n uint64) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := s.next() % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// loop is a helper for building the canonical counted loop
//
//	for (iv = 0; iv < n; iv++) { body }
//
// with any number of extra loop-carried values. Blocks are created and the
// builder is left positioned in the body; call end from the latch block.
type loop struct {
	b                *ir.Builder
	Head, Body, Exit ir.BlockID
	IV               ir.Value
	Carried          []ir.Value
	inits            []ir.Value
}

// newLoop emits the preheader branch from the builder's current block. The
// carried values' initial values must already be defined.
func newLoop(b *ir.Builder, name string, n ir.Value, carriedInit []ir.Value, pragma bool) *loop {
	l := &loop{b: b, inits: append([]ir.Value(nil), carriedInit...)}
	l.Head = b.NewBlock(name + ".head")
	l.Body = b.NewBlock(name + ".body")
	l.Exit = b.NewBlock(name + ".exit")
	zero := b.Const(0)
	b.Br(l.Head)

	b.SetBlock(l.Head)
	l.IV = b.Phi()
	for range carriedInit {
		l.Carried = append(l.Carried, b.Phi())
	}
	cond := b.Bin(ir.CmpLTU, l.IV, n)
	b.CondBr(cond, l.Body, l.Exit)
	if pragma {
		b.MarkPragma(l.Head)
	}

	l.inits = append([]ir.Value{zero}, l.inits...)
	b.SetBlock(l.Body)
	return l
}

// end closes the loop from the current (latch) block, wiring the phis: the
// induction variable advances by one and each carried value takes the
// supplied next value. The builder is left in the exit block.
func (l *loop) end(carriedNext ...ir.Value) {
	if len(carriedNext) != len(l.Carried) {
		panic("workloads: carried value count mismatch")
	}
	one := l.b.Const(1)
	iv2 := l.b.Add(l.IV, one)
	l.b.Br(l.Head)

	l.b.SetPhiArgs(l.IV, l.inits[0], iv2)
	for i, c := range l.Carried {
		l.b.SetPhiArgs(c, l.inits[i+1], carriedNext[i])
	}
	l.b.SetBlock(l.Exit)
}

// wordAddr emits base + idx*8.
func wordAddr(b *ir.Builder, base, idx ir.Value) ir.Value {
	return b.Add(base, b.Shl(idx, b.Const(3)))
}
