package workloads

import (
	"strings"
	"testing"

	"eventpf/internal/ir"
	"eventpf/internal/system"
)

const tinyScale = 0.01

func buildAll(t *testing.T, b *Benchmark) (*system.Machine, *Instance) {
	t.Helper()
	m := system.New(system.DefaultConfig(), system.NoPF)
	return m, b.Build(m, tinyScale)
}

func TestEveryBenchmarkBuildsAllVariants(t *testing.T) {
	for _, b := range All {
		m, inst := buildAll(t, b)
		_ = m
		for _, v := range []Variant{Plain, SWPf, Pragma} {
			fn := inst.BuildFn(v)
			if fn == nil {
				if b.Name == "PageRank" && v == SWPf {
					continue
				}
				t.Errorf("%s: variant %s missing", b.Name, v)
				continue
			}
			if err := fn.Verify(); err != nil {
				t.Errorf("%s/%s: invalid IR: %v", b.Name, v, err)
			}
		}
		if len(inst.Runs) == 0 {
			t.Errorf("%s: no runs", b.Name)
		}
	}
}

func TestVariantsDifferAsDocumented(t *testing.T) {
	count := func(fn *ir.Fn, op ir.Op) int {
		n := 0
		for _, blk := range fn.Blocks {
			for _, v := range blk.Instrs {
				if fn.Instr(v).Op == op {
					n++
				}
			}
		}
		return n
	}
	for _, b := range All {
		_, inst := buildAll(t, b)
		plain := inst.BuildFn(Plain)
		if n := count(plain, ir.SWPf); n != 0 {
			t.Errorf("%s: plain variant has %d software prefetches", b.Name, n)
		}
		if sw := inst.BuildFn(SWPf); sw != nil {
			if n := count(sw, ir.SWPf); n == 0 {
				t.Errorf("%s: swpf variant has no software prefetch", b.Name)
			}
		}
		pr := inst.BuildFn(Pragma)
		marked := false
		for _, blk := range pr.Blocks {
			if blk.Pragma {
				marked = true
			}
		}
		if !marked {
			t.Errorf("%s: pragma variant has no marked loop", b.Name)
		}
	}
}

func TestPlainRunMatchesOracle(t *testing.T) {
	for _, b := range All {
		m, inst := buildAll(t, b)
		fn := inst.BuildFn(Plain)
		counter := m.Counter
		_ = counter
		var last *ir.Interp
		for _, run := range inst.Runs {
			if run.Before != nil {
				run.Before(m)
			}
			it := m.NewInterp(fn, run.Args...)
			last = it
			m.Core = nil // ensure we do not accidentally use the core here
			// functional-only execution:
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		}
		ret, hasRet := last.Result()
		if err := inst.Check(m, ret, hasRet); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestRMATGeneratorProperties(t *testing.T) {
	rng := splitmix64(1)
	edges := rmat(&rng, 8, 10)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	if len(edges)%2 != 0 {
		t.Error("edges not symmetrised in pairs")
	}
	nv := uint64(1) << 8
	deg := map[uint64]int{}
	for _, e := range edges {
		if e[0] >= nv || e[1] >= nv {
			t.Fatalf("edge %v out of range", e)
		}
		if e[0] == e[1] {
			t.Error("self loop survived")
		}
		deg[e[0]]++
	}
	// R-MAT skew: the maximum degree is far above the average.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := len(edges) / len(deg)
	if maxDeg < 3*avg {
		t.Errorf("degree distribution not skewed: max %d avg %d", maxDeg, avg)
	}
}

func TestBFSOracleOnKnownGraph(t *testing.T) {
	// 0-1, 0-2, 2-3; vertex 4 isolated.
	rowptr := []uint64{0, 2, 3, 5, 6, 6}
	adj := []uint64{1, 2, 0, 0, 3, 2}
	visited, parent := bfsOracle(rowptr, adj, 0)
	if visited != 4 {
		t.Errorf("visited = %d, want 4", visited)
	}
	if parent[4] != g500Empty {
		t.Error("isolated vertex got a parent")
	}
	if parent[0] != 0 || parent[1] != 0 || parent[2] != 0 || parent[3] != 2 {
		t.Errorf("parents = %v", parent[:4])
	}
}

func TestSplitmixPermIsPermutation(t *testing.T) {
	rng := splitmix64(7)
	p := rng.perm(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestLCGStepMatchesHPCCDefinition(t *testing.T) {
	// Top bit set → shift and XOR with POLY; clear → plain shift.
	if got := lcgStep(1 << 63); got != randaccPoly {
		t.Errorf("lcgStep(msb) = %#x, want POLY", got)
	}
	if got := lcgStep(3); got != 6 {
		t.Errorf("lcgStep(3) = %d, want 6", got)
	}
}

func TestLoopHelperBuildsValidLoop(t *testing.T) {
	b := ir.NewBuilder("l", 1)
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	n := b.Arg(0)
	zero := b.Const(0)
	l := newLoop(b, "x", n, []ir.Value{zero}, true)
	acc2 := b.Add(l.Carried[0], b.Const(2))
	l.end(acc2)
	b.Ret(l.Carried[0])
	fn, err := b.Finish()
	if err != nil {
		t.Fatalf("loop helper produced invalid IR: %v", err)
	}
	loops := fn.Loops()
	if len(loops) != 1 || loops[0].Induction == nil {
		t.Fatal("loop not recognised by analysis")
	}
	if !fn.Block(l.Head).Pragma {
		t.Error("pragma mark lost")
	}
}

func TestByName(t *testing.T) {
	for _, b := range All {
		got, err := ByName(b.Name)
		if err != nil || got != b {
			t.Errorf("ByName(%s) failed: %v", b.Name, err)
		}
	}
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	// The error must list every valid (folded) name so callers can surface
	// the whole menu (e.g. the job server's 400 response).
	for _, b := range All {
		if !strings.Contains(err.Error(), fold(b.Name)) {
			t.Errorf("ByName error %q does not mention %q", err, fold(b.Name))
		}
	}
}

func TestScaledFloor(t *testing.T) {
	if scaled(1000, 0.0001) != 16 {
		t.Errorf("scaled floor = %d, want 16", scaled(1000, 0.0001))
	}
	if scaled(1000, 0.5) != 500 {
		t.Errorf("scaled(1000,0.5) = %d", scaled(1000, 0.5))
	}
}

// TestKernelTextRoundTrip checks that every benchmark kernel (in every
// variant) survives a print→parse→print round trip, except where Cfg
// instructions (which have no textual form) are present.
func TestKernelTextRoundTrip(t *testing.T) {
	for _, b := range All {
		_, inst := buildAll(t, b)
		for _, v := range []Variant{Plain, SWPf, Pragma} {
			fn := inst.BuildFn(v)
			if fn == nil {
				continue
			}
			hasCfg := false
			for _, blk := range fn.Blocks {
				for _, val := range blk.Instrs {
					if fn.Instr(val).Op == ir.Cfg {
						hasCfg = true
					}
				}
			}
			if hasCfg {
				continue
			}
			once, err := ir.Parse(fn.String())
			if err != nil {
				t.Errorf("%s/%s: parse: %v", b.Name, v, err)
				continue
			}
			twice, err := ir.Parse(once.String())
			if err != nil {
				t.Errorf("%s/%s: reparse: %v", b.Name, v, err)
				continue
			}
			if once.String() != twice.String() {
				t.Errorf("%s/%s: print∘parse not idempotent", b.Name, v)
			}
		}
	}
}
