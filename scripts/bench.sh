#!/usr/bin/env sh
# bench.sh — run the paper-evaluation benchmarks and record the results as
# machine-readable JSON, starting the repo's performance trajectory.
#
# Usage:
#   scripts/bench.sh                 # all benchmarks, 1 iteration each
#   scripts/bench.sh 'BenchmarkFig7' # filter by regexp
#   BENCHTIME=3x scripts/bench.sh    # more iterations
#
# Output: BENCH_<yyyymmdd>.json in the repo root, an array of
# {"name", "iterations", "metrics": {"ns/op": ..., "allocs/op": ..., ...}}
# objects, one per benchmark line, plus the raw text alongside it.
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${BENCHTIME:-1x}"
stamp="$(date +%Y%m%d)"
raw="BENCH_${stamp}.txt"
out="BENCH_${stamp}.json"

go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -benchmem . | tee "$raw"

awk '
/^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", sep, $1, $2
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\":%s", msep, $(i+1), $i
        msep = ","
    }
    printf "}}"
    sep = ",\n"
}
BEGIN { print "[" }
END   { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
