#!/usr/bin/env sh
# bench.sh — run the paper-evaluation benchmarks and record the results as
# machine-readable JSON, starting the repo's performance trajectory.
#
# Usage:
#   scripts/bench.sh                 # all benchmarks, 1 iteration each
#   scripts/bench.sh 'BenchmarkFig7' # filter by regexp
#   BENCHTIME=3x scripts/bench.sh    # more iterations
#
# Output: BENCH_<yyyymmdd>.json in the repo root:
# {"meta": {"git_sha", "date", "go_version"},
#  "benchmarks": [{"name", "iterations", "metrics": {"ns/op": ...}}, ...]}
# plus the raw benchmark text alongside it. The meta block makes any two
# BENCH files comparable without consulting the shell history that made them.
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${BENCHTIME:-1x}"
stamp="$(date +%Y%m%d)"
raw="BENCH_${stamp}.txt"
out="BENCH_${stamp}.json"

git_sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    git_sha="${git_sha}-dirty"
fi
iso_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
go_version="$(go env GOVERSION)"

go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -benchmem . | tee "$raw"

awk -v git_sha="$git_sha" -v iso_date="$iso_date" -v go_version="$go_version" '
BEGIN {
    printf "{\"meta\":{\"git_sha\":\"%s\",\"date\":\"%s\",\"go_version\":\"%s\"},\n", git_sha, iso_date, go_version
    print "\"benchmarks\":["
}
/^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", sep, $1, $2
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\":%s", msep, $(i+1), $i
        msep = ","
    }
    printf "}}"
    sep = ",\n"
}
END { print "\n]}" }
' "$raw" > "$out"

echo "wrote $out"
