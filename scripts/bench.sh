#!/usr/bin/env sh
# bench.sh — run the paper-evaluation benchmarks and record the results as
# machine-readable JSON, starting the repo's performance trajectory.
#
# Usage:
#   scripts/bench.sh                 # all benchmarks, 1 iteration each
#   scripts/bench.sh 'BenchmarkFig7' # filter by regexp
#   BENCHTIME=3x scripts/bench.sh    # more iterations
#   SHORT=1 scripts/bench.sh         # -short: reduced-scale figures (CI perf job)
#   SLICES=4 scripts/bench.sh        # time-parallel: 4 slices per simulation
#                                    # (approximate; only comparable to other
#                                    # SLICES=4 stamps — recorded in meta)
#   STAMP=20260806b scripts/bench.sh # override the output stamp (e.g. a second
#                                    # measurement on the same day)
#
# Output: BENCH_<stamp>.json in the repo root (stamp defaults to yyyymmdd,
# with "-short" appended under SHORT=1 so short runs are never mistaken for
# full-scale baselines):
# {"meta": {"git_sha", "dirty", "date", "go_version", "short", "slices", "schemes"},
#  "benchmarks": [{"name", "iterations", "metrics": {"ns/op": ..., "wall_s": ...}}, ...]}
# plus the raw benchmark text alongside it. The meta block makes any two
# BENCH files comparable without consulting the shell history that made them.
# wall_s is the total wall-clock seconds the benchmark spent across all its
# iterations (iterations x ns/op), so harness-level wins — shared warmups,
# memoisation — are visible per figure, not just per iteration.
set -eu
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${BENCHTIME:-1x}"
slices="${SLICES:-0}"
short="${SHORT:-}"
shortflag=""
shortmeta="false"
defstamp="$(date +%Y%m%d)"
if [ -n "$short" ]; then
    shortflag="-short"
    shortmeta="true"
    defstamp="${defstamp}-short"
fi
stamp="${STAMP:-$defstamp}"
raw="BENCH_${stamp}.txt"
out="BENCH_${stamp}.json"

git_sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
dirty="false"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    git_sha="${git_sha}-dirty"
    dirty="true"
    echo "=======================================================================" >&2
    echo "WARNING: working tree is DIRTY — this stamp measures uncommitted code." >&2
    echo "         meta records sha=${git_sha} and dirty: true; do NOT commit it" >&2
    echo "         as a baseline. Stash or commit first for a clean stamp." >&2
    echo "=======================================================================" >&2
fi
iso_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
go_version="$(go env GOVERSION)"
# The scheme menu the binary under test carries (registry-derived): two BENCH
# files are only comparable figure-for-figure if they ran the same schemes.
schemes="$(go run ./cmd/ppfsim -list-schemes | awk '{printf "%s\"%s\"", sep, $1; sep=","} END{print ""}')"
# The adaptive controller's effective policy knobs: two BENCH files that ran
# the adaptive figure are only comparable if the controller they measured was
# configured identically.
adaptive_line="$(go run ./cmd/ppfsim -show-adaptive)"
adaptive_policy="$(printf '%s\n' "$adaptive_line" | tr ' ' '\n' | sed -n 's/^policy=//p')"
adaptive_interval="$(printf '%s\n' "$adaptive_line" | tr ' ' '\n' | sed -n 's/^interval=//p')"
adaptive_seed="$(printf '%s\n' "$adaptive_line" | tr ' ' '\n' | sed -n 's/^seed=//p')"
# The native trace-format version the binary under test writes and reads:
# BENCH files bracket which captured corpora the measured tree can consume.
trace_format="$(go run ./cmd/ppftracegen -format-version)"

# shellcheck disable=SC2086 # $shortflag is deliberately empty or "-short"
EVENTPF_SLICES="$slices" go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -benchmem $shortflag . | tee "$raw"

awk -v git_sha="$git_sha" -v dirty="$dirty" -v iso_date="$iso_date" -v go_version="$go_version" -v short="$shortmeta" -v slices="$slices" -v schemes="$schemes" \
    -v apolicy="$adaptive_policy" -v ainterval="$adaptive_interval" -v aseed="$adaptive_seed" -v trace_format="$trace_format" '
BEGIN {
    printf "{\"meta\":{\"git_sha\":\"%s\",\"dirty\":%s,\"date\":\"%s\",\"go_version\":\"%s\",\"short\":%s,\"slices\":%s,\"schemes\":[%s],", git_sha, dirty, iso_date, go_version, short, slices, schemes
    printf "\"trace_format\":%s,", trace_format
    printf "\"adaptive\":{\"policy\":\"%s\",\"interval\":%s,\"seed\":%s}},\n", apolicy, ainterval, aseed
    print "\"benchmarks\":["
}
/^Benchmark/ {
    printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", sep, $1, $2
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\":%s", msep, $(i+1), $i
        msep = ","
        if ($(i+1) == "ns/op") {
            printf "%s\"wall_s\":%.6g", msep, $2 * $i / 1e9
        }
    }
    printf "}}"
    sep = ",\n"
}
END { print "\n]}" }
' "$raw" > "$out"

echo "wrote $out"
