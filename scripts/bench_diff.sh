#!/usr/bin/env sh
# bench_diff.sh — compare two BENCH_*.json files produced by scripts/bench.sh
# and print per-benchmark metric deltas, so the bench trajectory recorded in
# the repo root is actually consumable.
#
# Usage:
#   scripts/bench_diff.sh BENCH_20260101.json BENCH_20260806.json
#   scripts/bench_diff.sh -gate 10 OLD.json NEW.json   # exit 1 on >10% regression
#
# The meta stamp (git SHA, date, Go version) of both files heads the report;
# a non-matching Go version is called out, since allocation counts and
# timings are only honestly comparable on the same toolchain, and a stamp
# taken from a dirty working tree (meta dirty: true, sha suffixed -dirty) is
# flagged as untrustworthy for a baseline. Wall-clock seconds per benchmark
# (wall_s, falling back to iterations x ns/op for old files) lead the table,
# with a total-suite line at the bottom; deltas beyond ±2% are marked.
# Paper-fidelity metrics (geomeans, hit rates, …) are printed whenever both
# files carry them. With -gate PCT, the script exits nonzero if any
# benchmark's wall-clock regressed more than PCT percent.
set -eu

gate=""
if [ "${1:-}" = "-gate" ]; then
    if [ $# -lt 3 ]; then
        echo "usage: $0 [-gate PCT] OLD.json NEW.json" >&2
        exit 2
    fi
    gate="$2"
    shift 2
fi

if [ $# -ne 2 ]; then
    echo "usage: $0 [-gate PCT] OLD.json NEW.json" >&2
    exit 2
fi

python3 - "$1" "$2" "$gate" <<'EOF'
import json, sys

old_path, new_path = sys.argv[1:3]
gate = float(sys.argv[3]) if len(sys.argv) > 3 and sys.argv[3] else None

def load(path):
    doc = json.load(open(path))
    if isinstance(doc, list):  # pre-meta-stamp format: a bare benchmark list
        return {"meta": {}, "benchmarks": doc}
    return doc

old, new = load(old_path), load(new_path)

def is_dirty(doc):
    m = doc.get("meta", {})
    return m.get("dirty") or str(m.get("git_sha", "")).endswith("-dirty")

def meta_line(path, doc):
    m = doc.get("meta", {})
    line = f"  {path}: sha={m.get('git_sha', '?')} date={m.get('date', '?')} go={m.get('go_version', '?')}"
    if m.get("slices", 0) and m["slices"] > 1:
        line += f" slices={m['slices']}"
    if is_dirty(doc):
        line += "  [DIRTY]"
    return line

print("bench_diff:")
print(meta_line(old_path, old))
print(meta_line(new_path, new))
for path, doc in ((old_path, old), (new_path, new)):
    if is_dirty(doc):
        print(f"  WARNING: {path} was stamped from a DIRTY working tree — "
              "it measures uncommitted code and is unfit as a committed baseline")
og, ng = old.get("meta", {}).get("go_version"), new.get("meta", {}).get("go_version")
if og and ng and og != ng:
    print(f"  WARNING: different Go versions ({og} vs {ng}) — deltas include toolchain drift")
osl = old.get("meta", {}).get("slices", 0) or 0
nsl = new.get("meta", {}).get("slices", 0) or 0
if osl != nsl:
    print(f"  WARNING: different time-parallel slicing (slices={osl} vs {nsl}) — "
          "wall-clock deltas mostly measure the slicing, not the code")
oa, na = old.get("meta", {}).get("adaptive"), new.get("meta", {}).get("adaptive")
if oa and na and oa != na:
    print(f"  WARNING: different adaptive controller configs ({oa} vs {na}) — "
          "Fig12 deltas reflect the policy change, not just the code")
print()

by_name_old = {b["name"]: b for b in old.get("benchmarks", [])}
by_name_new = {b["name"]: b for b in new.get("benchmarks", [])}

def fmt_s(s):
    if s >= 1: return f"{s:.2f}s"
    if s >= 1e-3: return f"{s*1e3:.2f}ms"
    if s >= 1e-6: return f"{s*1e6:.2f}µs"
    return f"{s*1e9:.0f}ns"

def wall_s(bench):
    # Old files predate the wall_s stamp; reconstruct it from ns/op.
    m = bench["metrics"]
    if "wall_s" in m:
        return m["wall_s"]
    if "ns/op" in m:
        return bench.get("iterations", 1) * m["ns/op"] / 1e9
    return None

width = max((len(n) for n in by_name_new), default=10)
print(f"{'benchmark':<{width}}  {'old wall':>10}  {'new wall':>10}  {'delta':>8}  other metric deltas")
tot_old = tot_new = 0.0
regressions = []
for name in sorted(set(by_name_old) | set(by_name_new)):
    if name not in by_name_old:
        print(f"{name:<{width}}  {'-':>10}  {fmt_s(wall_s(by_name_new[name]) or 0):>10}  {'NEW':>8}")
        continue
    if name not in by_name_new:
        print(f"{name:<{width}}  {fmt_s(wall_s(by_name_old[name]) or 0):>10}  {'-':>10}  {'GONE':>8}")
        continue
    om, nm = by_name_old[name]["metrics"], by_name_new[name]["metrics"]
    o_s, n_s = wall_s(by_name_old[name]), wall_s(by_name_new[name])
    if o_s and n_s:
        tot_old += o_s
        tot_new += n_s
        pct = (n_s - o_s) / o_s * 100
        if pct > 0:
            regressions.append((name, pct))
        mark = "" if abs(pct) <= 2 else ("  <-- slower" if pct > 0 else "  <-- faster")
        delta = f"{pct:+.1f}%"
    else:
        delta, mark = "?", ""
    extras = []
    for k in sorted(set(om) & set(nm)):
        if k in ("ns/op", "wall_s") or not isinstance(om[k], (int, float)) or om[k] == 0:
            continue
        epct = (nm[k] - om[k]) / om[k] * 100
        if abs(epct) > 0.05:
            extras.append(f"{k} {epct:+.1f}%")
    print(f"{name:<{width}}  {fmt_s(o_s or 0):>10}  {fmt_s(n_s or 0):>10}  {delta:>8}{mark}  {' '.join(extras)}")
if tot_old > 0:
    tpct = (tot_new - tot_old) / tot_old * 100
    print(f"{'TOTAL':<{width}}  {fmt_s(tot_old):>10}  {fmt_s(tot_new):>10}  {tpct:+8.1f}%")

if gate is not None:
    print(f"\ngate: failing on any wall-clock regression beyond +{gate:g}%")
    failed = [(n, p) for n, p in regressions if p > gate]
    if failed:
        for n, p in failed:
            print(f"  GATE FAIL: {n} {p:+.1f}% > +{gate:g}%")
        sys.exit(1)
    print("  ok: no benchmark regressed beyond the threshold")
EOF
